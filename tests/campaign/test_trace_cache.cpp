// The campaign trace-replay subsystem: byte-identity of replayed campaigns
// (the golden guarantee), LRU eviction under a byte cap, single-flight
// materialization, and the grouped runner schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign_test_util.hpp"
#include "reap/campaign/journal.hpp"
#include "reap/campaign/result_sink.hpp"
#include "reap/campaign/runner.hpp"
#include "reap/campaign/spec.hpp"
#include "reap/campaign/trace_cache.hpp"
#include "reap/core/experiment.hpp"
#include "reap/trace/trace_io.hpp"
#include "reap/trace/trace_store.hpp"

namespace reap::campaign {
namespace {

using testutil::fake_run;
using testutil::file_bytes;
using testutil::temp_path;

// A short but real grid over the full policy axis: every policy replays
// the same two traces (2 workloads x 1 seed).
CampaignSpec policy_grid() {
  CampaignSpec spec;
  spec.workloads = {"mcf", "h264ref"};
  spec.policies = core::all_policies();
  spec.base.instructions = 20'000;
  spec.base.warmup_instructions = 2'000;
  return spec;
}

// The production replay run_point_fn, minus the CLI: materialize through
// `cache`, replay through run_experiment_replay.
RunnerOptions replay_options(TraceCache& cache, unsigned threads = 1) {
  RunnerOptions opts;
  opts.threads = threads;
  opts.group_key = [](const CampaignPoint& pt) { return pt.trace_key; };
  opts.run_point_fn = [&cache](const CampaignPoint& pt) {
    const std::uint64_t budget =
        pt.config.warmup_instructions + pt.config.instructions;
    const auto trace = cache.acquire(pt.trace_key, [&] {
      trace::WorkloadTraceSource gen(pt.config.workload);
      return trace::MaterializedTrace::materialize(gen, budget);
    });
    trace::ReplayTraceSource source(*trace);
    return core::run_experiment_replay(pt.config, source);
  };
  return opts;
}

struct CampaignFiles {
  std::string csv, jsonl, journal;
};

// Runs `points` through the full sink + journal pipeline, the way
// reap_campaign does: journal rows in completion order, then the merge
// emits CSV/JSONL in index order.
CampaignFiles run_pipeline(const CampaignSpec& spec,
                           const std::vector<CampaignPoint>& points,
                           RunnerOptions opts, const char* tag) {
  CampaignFiles files{temp_path((std::string(tag) + ".csv").c_str()),
                      temp_path((std::string(tag) + ".jsonl").c_str()),
                      temp_path((std::string(tag) + ".journal").c_str())};
  std::vector<JournalRow> rows;
  JournalWriter journal(files.journal,
                        JournalHeader::for_run(spec, points.size(), 0, 1));
  EXPECT_TRUE(journal.ok());
  opts.on_result = [&](const CampaignPoint& pt,
                       const core::ExperimentResult& r) {
    auto cells = result_cells(pt, r);
    journal.add(pt.key, cells);
    rows.push_back({pt.key, pt.index, std::move(cells)});
  };
  CampaignRunner(opts).run(points);

  CsvResultSink csv(files.csv);
  JsonlResultSink jsonl(files.jsonl);
  MultiSink sinks;
  sinks.attach(&csv);
  sinks.attach(&jsonl);
  const auto merged = merge_journal_rows(std::move(rows), {});
  emit_rows(merged, sinks);
  return files;
}

// --- Golden byte-identity -------------------------------------------------

// The acceptance pin: a full policy grid run with trace replay produces
// CSV, JSONL, and journal *content* identical to the regenerate-per-point
// path. CSV/JSONL are byte-compared (the merge path is index-ordered
// either way); journal rows are completion-ordered by design — grouped
// scheduling legitimately reorders completions — so journals are compared
// as key->line maps, which must match byte-for-byte per row.
TEST(TraceReplayGolden, FullPolicyGridByteIdenticalToRegenerate) {
  const auto spec = policy_grid();
  const auto points = expand(spec);
  ASSERT_EQ(points.size(), 10u);  // 2 workloads x 5 policies

  RunnerOptions plain;
  plain.threads = 1;
  const auto ref = run_pipeline(spec, points, plain, "replay_off");

  TraceCache cache(std::size_t{512} << 20);
  const auto got =
      run_pipeline(spec, points, replay_options(cache), "replay_on");

  EXPECT_EQ(file_bytes(got.csv), file_bytes(ref.csv));
  EXPECT_EQ(file_bytes(got.jsonl), file_bytes(ref.jsonl));
  EXPECT_FALSE(file_bytes(got.csv).empty());

  const auto rows_by_key = [](const std::string& path) {
    auto j = read_journal(path);
    EXPECT_TRUE(j.has_value());
    std::map<std::string, std::vector<std::string>> rows;
    for (auto& row : j->rows) rows[row.key] = row.cells;
    return rows;
  };
  EXPECT_EQ(rows_by_key(got.journal), rows_by_key(ref.journal));

  // Every point of a paired group after the first was a cache hit: 2
  // materializations serve 10 points.
  EXPECT_EQ(cache.stats().misses.load(), 2u);
  EXPECT_EQ(cache.stats().hits.load(), 8u);
  EXPECT_EQ(cache.stats().evictions.load(), 0u);
}

// Multi-threaded replay stays byte-identical too (the runner's positional
// results contract is schedule-independent).
TEST(TraceReplayGolden, FourThreadReplayMatchesSerialRegenerate) {
  const auto spec = policy_grid();
  const auto points = expand(spec);

  RunnerOptions plain;
  plain.threads = 1;
  const auto ref = run_pipeline(spec, points, plain, "mt_ref");

  TraceCache cache(std::size_t{512} << 20);
  const auto got =
      run_pipeline(spec, points, replay_options(cache, 4), "mt_replay");

  EXPECT_EQ(file_bytes(got.csv), file_bytes(ref.csv));
  EXPECT_EQ(file_bytes(got.jsonl), file_bytes(ref.jsonl));
}

// --- Eviction under a tight cap ------------------------------------------

TEST(TraceCacheEviction, TightCapEvictsAndStaysUnderCapWithIdenticalResults) {
  const auto spec = policy_grid();
  const auto points = expand(spec);

  // Reference: regenerate per point.
  RunnerOptions plain;
  plain.threads = 1;
  plain.run_fn = core::run_experiment;
  const auto ref = CampaignRunner(plain).run(points);

  // Size the cap to hold EITHER of the two traces but not both: the
  // second group's admission must evict the first. Real arena bytes,
  // measured per workload (their op mixes differ).
  std::size_t big = 0, small = SIZE_MAX;
  for (const auto& wl : spec.workloads) {
    for (const auto& pt : points) {
      if (pt.config.workload.name != wl) continue;
      trace::WorkloadTraceSource gen(pt.config.workload);
      const auto probe = trace::MaterializedTrace::materialize(
          gen,
          pt.config.warmup_instructions + pt.config.instructions);
      big = std::max(big, probe.bytes());
      small = std::min(small, probe.bytes());
      break;
    }
  }
  const std::size_t cap = big + small / 2;

  TraceCache cache(cap);
  const auto got =
      CampaignRunner(replay_options(cache)).run(points);

  ASSERT_EQ(got.size(), ref.size());
  std::ostringstream a, b;
  for (std::size_t i = 0; i < points.size(); ++i)
    for (const auto& cell : result_cells(points[i], ref[i])) a << cell << '|';
  for (std::size_t i = 0; i < points.size(); ++i)
    for (const auto& cell : result_cells(points[i], got[i])) b << cell << '|';
  EXPECT_EQ(a.str(), b.str());

  // The grouped schedule runs each group en bloc, so a one-trace cap still
  // yields one miss per group; the group switch evicts.
  EXPECT_EQ(cache.stats().misses.load(), 2u);
  EXPECT_GE(cache.stats().evictions.load(), 1u);
  // The accounting invariant the --trace-cache-mb contract promises: peak
  // accounted bytes never exceeded the cap.
  EXPECT_LE(cache.stats().peak_bytes.load(), cap);
  EXPECT_GT(cache.stats().peak_bytes.load(), 0u);
}

TEST(TraceCacheEviction, CapSmallerThanOneTraceStillCompletes) {
  // A cap smaller than any single trace: every acquire is an uncached
  // bypass, nothing is ever retained, results are still identical.
  const auto spec = policy_grid();
  const auto points = expand(spec);

  RunnerOptions plain;
  plain.threads = 1;
  plain.run_fn = core::run_experiment;
  const auto ref = CampaignRunner(plain).run(points);

  TraceCache cache(1024);  // 1 KB: far below any real trace
  const auto got = CampaignRunner(replay_options(cache)).run(points);

  std::ostringstream a, b;
  for (std::size_t i = 0; i < points.size(); ++i)
    for (const auto& cell : result_cells(points[i], ref[i])) a << cell << '|';
  for (std::size_t i = 0; i < points.size(); ++i)
    for (const auto& cell : result_cells(points[i], got[i])) b << cell << '|';
  EXPECT_EQ(a.str(), b.str());

  EXPECT_EQ(cache.stats().hits.load(), 0u);
  EXPECT_EQ(cache.stats().uncached.load(), points.size());
  EXPECT_EQ(cache.stats().bytes.load(), 0u);
  EXPECT_EQ(cache.stats().peak_bytes.load(), 0u);
}

// --- Cache mechanics ------------------------------------------------------

trace::MaterializedTrace tiny_trace(std::uint64_t seed, std::size_t ops) {
  std::vector<trace::MemOp> v;
  for (std::size_t i = 0; i < ops; ++i)
    v.push_back({trace::OpType::inst_fetch, (seed + i) * 64});
  trace::VectorTraceSource src(std::move(v));
  return trace::MaterializedTrace::materialize(src, ops + 1);
}

TEST(TraceCache, LruEvictsColdestIdleEntry) {
  const std::size_t one = tiny_trace(1, 100).bytes();
  TraceCache cache(2 * one + one / 2);  // room for two traces

  auto a = cache.acquire("a", [] { return tiny_trace(1, 100); });
  auto b = cache.acquire("b", [] { return tiny_trace(2, 100); });
  a.reset();
  b.reset();
  // Touch "a" so "b" is coldest, then admit "c": "b" must go.
  EXPECT_EQ(cache.acquire("a", [] { return tiny_trace(9, 100); }).get(),
            cache.acquire("a", [] { return tiny_trace(9, 100); }).get());
  auto c = cache.acquire("c", [] { return tiny_trace(3, 100); });
  c.reset();
  EXPECT_EQ(cache.stats().evictions.load(), 1u);
  // "a" and "c" still hit; "b" re-materializes.
  const auto hits_before = cache.stats().hits.load();
  cache.acquire("a", [] { return tiny_trace(9, 100); });
  cache.acquire("c", [] { return tiny_trace(9, 100); });
  EXPECT_EQ(cache.stats().hits.load(), hits_before + 2);
  const auto misses_before = cache.stats().misses.load();
  cache.acquire("b", [] { return tiny_trace(2, 100); });
  EXPECT_EQ(cache.stats().misses.load(), misses_before + 1);
}

TEST(TraceCache, InUseTracesAreNeverEvicted) {
  const std::size_t one = tiny_trace(1, 100).bytes();
  TraceCache cache(one + one / 2);  // room for one

  auto pinned = cache.acquire("a", [] { return tiny_trace(1, 100); });
  // Admitting "b" wants to evict "a", but "a" is in use: the cache keeps
  // accounting it (over cap) rather than dropping a live arena's entry.
  auto b = cache.acquire("b", [] { return tiny_trace(2, 100); });
  EXPECT_EQ(pinned->size(), 100u);  // arena untouched
  b.reset();
  // Once "a" is released, the next admission can evict down to cap.
  pinned.reset();
  auto c = cache.acquire("c", [] { return tiny_trace(3, 100); });
  EXPECT_LE(cache.stats().bytes.load(), cache.cap_bytes() + one);
  EXPECT_GE(cache.stats().evictions.load(), 1u);
}

TEST(TraceCache, ConcurrentAcquiresMaterializeOnce) {
  TraceCache cache(std::size_t{64} << 20);
  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<TraceCache::TracePtr> got(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      got[t] = cache.acquire("shared", [&] {
        builds.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return tiny_trace(7, 1000);
      });
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(builds.load(), 1);  // single flight
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(got[t].get(), got[0].get());
  EXPECT_EQ(cache.stats().misses.load(), 1u);
  EXPECT_EQ(cache.stats().hits.load(), kThreads - 1u);
}

TEST(TraceCache, BorrowedMappedTracesAreRetainedAtZeroCost) {
  // --trace-dir's contract: a trace borrowed from an mmapped store file
  // accounts zero bytes (the pages are the kernel's to reclaim), so even
  // a cap-0 cache — --trace-dir without --trace-cache-mb — retains every
  // mapped trace instead of treating it as an oversize bypass.
  const auto path = temp_path("cache_borrow.reaptrace");
  const auto owned = tiny_trace(4, 256);
  std::string error;
  ASSERT_TRUE(trace::write_trace_file(path, owned, "k", {}, &error)) << error;
  auto mapped = trace::MappedTraceFile::open(path, &error);
  ASSERT_NE(mapped, nullptr) << error;

  TraceCache cache(0);
  int builds = 0;
  const auto borrow = [&] {
    ++builds;
    return mapped->borrow(mapped);
  };
  auto a = cache.acquire("k", borrow);
  a.reset();
  auto b = cache.acquire("k", borrow);
  EXPECT_EQ(builds, 1);  // retained across a full release, cap 0
  EXPECT_EQ(cache.stats().hits.load(), 1u);
  EXPECT_EQ(cache.stats().uncached.load(), 0u);
  EXPECT_EQ(cache.stats().bytes.load(), 0u);
  EXPECT_EQ(b->bytes(), 0u);
  EXPECT_EQ(b->size(), owned.size());
  std::remove(path.c_str());
}

// --- Grouped scheduling ---------------------------------------------------

TEST(RunnerGrouping, GroupKeyRunsGroupsContiguouslyOnOneThread) {
  const auto spec = testutil::grid_24();
  const auto points = expand(spec);

  std::vector<std::string> completion_order;
  RunnerOptions opts;
  opts.threads = 1;
  opts.run_fn = fake_run;
  opts.group_key = [](const CampaignPoint& pt) { return pt.trace_key; };
  opts.on_result = [&](const CampaignPoint& pt,
                       const core::ExperimentResult&) {
    completion_order.push_back(pt.trace_key);
  };
  const auto results = CampaignRunner(opts).run(points);

  // Results stay positionally aligned regardless of the schedule.
  ASSERT_EQ(results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(results[i].workload, points[i].config.workload.name);

  // Every group's points completed en bloc: a trace_key never reappears
  // after a different one has been seen.
  std::set<std::string> closed;
  std::string current;
  for (const auto& key : completion_order) {
    if (key == current) continue;
    EXPECT_FALSE(closed.count(key)) << "group " << key << " was split";
    if (!current.empty()) closed.insert(current);
    current = key;
  }
  // And groups are visited in first-appearance (grid index) order.
  std::vector<std::string> first_appearance;
  for (const auto& pt : points)
    if (first_appearance.empty() ||
        std::find(first_appearance.begin(), first_appearance.end(),
                  pt.trace_key) == first_appearance.end())
      first_appearance.push_back(pt.trace_key);
  std::vector<std::string> visited;
  for (const auto& key : completion_order)
    if (visited.empty() || visited.back() != key) visited.push_back(key);
  EXPECT_EQ(visited, first_appearance);
}

TEST(RunnerGrouping, NoGroupKeyPreservesInputOrderOnOneThread) {
  const auto spec = testutil::grid_24();
  const auto points = expand(spec);
  std::vector<std::size_t> completion;
  RunnerOptions opts;
  opts.threads = 1;
  opts.run_fn = fake_run;
  opts.on_result = [&](const CampaignPoint& pt,
                       const core::ExperimentResult&) {
    completion.push_back(pt.index);
  };
  CampaignRunner(opts).run(points);
  ASSERT_EQ(completion.size(), points.size());
  for (std::size_t i = 0; i < completion.size(); ++i)
    EXPECT_EQ(completion[i], i);
}

TEST(RunnerGrouping, RunPointFnReceivesTheGridPoint) {
  const auto spec = testutil::grid_24();
  const auto points = expand(spec);
  std::atomic<std::size_t> calls{0};
  RunnerOptions opts;
  opts.threads = 4;
  opts.run_fn = [](const core::ExperimentConfig&) {
    ADD_FAILURE() << "run_fn must lose to run_point_fn";
    core::ExperimentResult r;
    return r;
  };
  opts.run_point_fn = [&](const CampaignPoint& pt) {
    calls.fetch_add(1);
    EXPECT_FALSE(pt.trace_key.empty());
    return fake_run(pt.config);
  };
  const auto results = CampaignRunner(opts).run(points);
  EXPECT_EQ(calls.load(), points.size());
  ASSERT_EQ(results.size(), points.size());
}

}  // namespace
}  // namespace reap::campaign

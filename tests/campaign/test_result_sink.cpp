// Result rows: header/cell alignment, sink output, and the config kv
// round-trip that makes every row self-describing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "reap/campaign/result_sink.hpp"
#include "reap/core/config_kv.hpp"

namespace reap::campaign {
namespace {

CampaignPoint sample_point() {
  CampaignPoint pt;
  pt.index = 3;
  const auto cfg = core::config_from_kv(
      "workload=mcf policy=reap ecc_t=2 instructions=1234 seed=77");
  EXPECT_TRUE(cfg);
  pt.config = *cfg;
  return pt;
}

core::ExperimentResult sample_result() {
  core::ExperimentResult r;
  r.workload = "mcf";
  r.policy = core::PolicyKind::reap;
  r.instructions = 1234;
  r.cycles = 4321;
  r.ipc = 0.2856;
  r.sim_seconds = 2.1605e-6;
  r.mttf.mttf_seconds = 3.7e11;
  r.energy.ecc_decode_j = 1.25e-7;
  r.p_rd = 1e-8;
  return r;
}

TEST(ResultRow, HeaderAndCellsAlign) {
  const auto header = result_header();
  const auto cells = result_cells(sample_point(), sample_result());
  EXPECT_EQ(header.size(), cells.size());
  EXPECT_EQ(header.front(), "index");
  EXPECT_EQ(header.back(), "config");
  EXPECT_EQ(cells[0], "3");
  EXPECT_EQ(cells[1], "mcf");
  EXPECT_EQ(cells[2], "reap");
}

TEST(ResultRow, ConfigColumnRoundTrips) {
  const auto pt = sample_point();
  const auto cells = result_cells(pt, sample_result());
  std::string error;
  const auto cfg = core::config_from_kv(cells.back(), &error);
  ASSERT_TRUE(cfg) << error;
  EXPECT_EQ(cfg->workload.name, pt.config.workload.name);
  EXPECT_EQ(cfg->workload.seed, pt.config.workload.seed);
  EXPECT_EQ(cfg->policy, pt.config.policy);
  EXPECT_EQ(cfg->ecc_t, pt.config.ecc_t);
  EXPECT_EQ(cfg->instructions, pt.config.instructions);
  EXPECT_EQ(cfg->seed, pt.config.seed);
  // And the re-serialized form is byte-identical (a fixed point).
  EXPECT_EQ(core::to_kv_string(*cfg), cells.back());
}

TEST(ConfigKv, DefaultConfigRoundTripsBitForBit) {
  core::ExperimentConfig cfg;
  const auto wl = core::config_from_kv("workload=perlbench");
  ASSERT_TRUE(wl);
  cfg = *wl;
  cfg.policy = core::PolicyKind::scrub_piggyback;
  cfg.ecc_t = 3;
  cfg.clock_ghz = 3.7;
  cfg.scrub_every = 17;
  cfg.check_on_dirty_eviction = true;
  cfg.hierarchy.l2.ways = 16;
  cfg.mtj = mtj::with_read_ratio(0.75);

  const std::string kv = core::to_kv_string(cfg);
  std::string error;
  const auto back = core::config_from_kv(kv, &error);
  ASSERT_TRUE(back) << error;
  EXPECT_EQ(core::to_kv_string(*back), kv);
  EXPECT_EQ(back->policy, cfg.policy);
  EXPECT_EQ(back->ecc_t, cfg.ecc_t);
  EXPECT_DOUBLE_EQ(back->clock_ghz, cfg.clock_ghz);
  EXPECT_EQ(back->scrub_every, cfg.scrub_every);
  EXPECT_EQ(back->check_on_dirty_eviction, cfg.check_on_dirty_eviction);
  EXPECT_EQ(back->hierarchy.l2.ways, cfg.hierarchy.l2.ways);
  EXPECT_DOUBLE_EQ(back->mtj.read_current.value, cfg.mtj.read_current.value);
}

TEST(ConfigKv, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(core::config_from_kv("", &error));
  EXPECT_FALSE(core::config_from_kv("policy=reap", &error))
      << "workload is mandatory";
  EXPECT_FALSE(core::config_from_kv("workload=nope", &error));
  EXPECT_FALSE(core::config_from_kv("workload=mcf policy=bogus", &error));
  EXPECT_FALSE(core::config_from_kv("workload=mcf ecc_t=abc", &error));
  EXPECT_FALSE(core::config_from_kv("workload=mcf surprise=1", &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos);
}

TEST(CsvSink, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/reap_sink_test.csv";
  {
    CsvResultSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.add(sample_point(), sample_result());
  }
  std::ifstream in(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_EQ(header.rfind("index,workload,policy", 0), 0u);
  EXPECT_EQ(row.rfind("3,mcf,reap", 0), 0u);
  std::remove(path.c_str());
}

TEST(JsonlSink, WritesOneObjectPerLine) {
  const std::string path = ::testing::TempDir() + "/reap_sink_test.jsonl";
  {
    JsonlResultSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.add(sample_point(), sample_result());
    sink.add(sample_point(), sample_result());
  }
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"workload\":\"mcf\""), std::string::npos);
    EXPECT_NE(line.find("\"config\":\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

TEST(JsonlSink, QuotesNonFiniteAndBigIntValues) {
  const std::string path = ::testing::TempDir() + "/reap_sink_inf.jsonl";
  {
    JsonlResultSink sink(path);
    ASSERT_TRUE(sink.ok());
    auto pt = sample_point();
    pt.config.seed = 13354106692959041800ULL;  // > 2^53
    auto r = sample_result();
    r.mttf.mttf_seconds =
        std::numeric_limits<double>::infinity();  // no failure mass
    sink.add(pt, r);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  // Bare inf is invalid JSON; it must be quoted.
  EXPECT_EQ(line.find("\"mttf_seconds\":inf"), std::string::npos);
  EXPECT_NE(line.find("\"mttf_seconds\":\"inf\""), std::string::npos);
  // 64-bit seeds exceed 2^53 and would be rounded by double-based JSON
  // parsers; they must be quoted too.
  EXPECT_NE(line.find("\"seed\":\"13354106692959041800\""),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(MultiSink, FansOut) {
  const std::string p1 = ::testing::TempDir() + "/reap_multi1.csv";
  const std::string p2 = ::testing::TempDir() + "/reap_multi2.jsonl";
  {
    CsvResultSink csv(p1);
    JsonlResultSink jsonl(p2);
    MultiSink multi;
    multi.attach(&csv);
    multi.attach(&jsonl);
    multi.attach(nullptr);  // ignored
    multi.add(sample_point(), sample_result());
  }
  std::ifstream a(p1), b(p2);
  std::string line;
  std::size_t a_lines = 0, b_lines = 0;
  while (std::getline(a, line)) ++a_lines;
  while (std::getline(b, line)) ++b_lines;
  EXPECT_EQ(a_lines, 2u);  // header + row
  EXPECT_EQ(b_lines, 1u);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

}  // namespace
}  // namespace reap::campaign

// Multi-host dispatch, driven end to end against the real reap_campaign
// binary with tools/fake_ssh.sh standing in for ssh: a two-transport
// fleet merges byte-identical to a single-process run; a host killed
// mid-campaign (dropped stream, injected at transport.stream) is
// quarantined and its shards redistribute, with the run exiting as
// host_lost but the merge still byte-identical; a garbled frame and a
// stalled stream recover through the ordinary restart machinery; a
// reconnect after a drop never duplicates a journal row; the handshake
// refuses a mismatched worker build outright and degrades past an
// unreachable host; a missing remote trace store is a one-note fallback,
// not a divergence.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "campaign_test_util.hpp"
#include "reap/campaign/dispatch.hpp"
#include "reap/campaign/result_sink.hpp"
#include "reap/campaign/transport.hpp"
#include "reap/campaign/version.hpp"
#include "reap/common/fault.hpp"
#include "reap/common/frame.hpp"
#include "reap/common/subprocess.hpp"

namespace reap::campaign {
namespace {

using testutil::file_bytes;
using testutil::temp_path;

constexpr char kFakeSsh[] = REAP_SOURCE_DIR "/tools/fake_ssh.sh";

// Disarms on scope exit so an armed fault cannot leak into later tests.
struct ArmedFault {
  explicit ArmedFault(const std::string& spec) {
    std::string error;
    EXPECT_TRUE(common::fault::arm(spec, &error)) << error;
  }
  ~ArmedFault() { common::fault::disarm(); }
};

std::map<std::string, std::string> spec_kv(std::uint64_t instructions) {
  return {{"name", "transport-test"},
          {"workloads", "mcf,h264ref"},
          {"policies", "conventional,reap"},
          {"seeds", "0,1"},
          {"instructions", std::to_string(instructions)},
          {"warmup", "2000"}};
}

std::string fresh_dir(const char* name) {
  const auto dir = temp_path(name);
  std::filesystem::remove_all(dir);
  return dir;
}

std::string reference_csv(const std::map<std::string, std::string>& kv,
                          const char* name) {
  const auto csv = temp_path(name);
  std::vector<std::string> argv = {REAP_CAMPAIGN_BIN};
  for (const auto& [k, v] : kv) argv.push_back("--" + k + "=" + v);
  argv.push_back("--threads=2");
  argv.push_back("--csv=" + csv);
  argv.push_back("--baseline=none");
  argv.push_back("--quiet");
  auto child = common::Child::spawn(argv, "");
  EXPECT_TRUE(child);
  if (child) {
    EXPECT_TRUE(child->wait().success());
  }
  return csv;
}

HostSpec stub_host(const std::string& work_dir) {
  HostSpec h;
  h.name = "stub-b";
  h.slots = 1;
  h.remote_binary = REAP_CAMPAIGN_BIN;
  h.remote_dir = work_dir + "/remote-stub-b";
  h.ssh_command = kFakeSsh;
  return h;
}

// A local slot plus one stub-ssh slot: the smallest real fleet.
DispatchOptions fleet_opts(const std::string& work_dir) {
  DispatchOptions opts;
  opts.campaign_binary = REAP_CAMPAIGN_BIN;
  opts.work_dir = work_dir;
  opts.poll_interval = std::chrono::milliseconds(5);
  opts.backoff_base = std::chrono::milliseconds(10);
  opts.transports.push_back(
      std::make_shared<LocalTransport>(REAP_CAMPAIGN_BIN, 1));
  opts.transports.push_back(std::make_shared<SshTransport>(stub_host(work_dir)));
  opts.expected_worker_version = build_info_line("reap_campaign");
  return opts;
}

std::string merged_csv_of(const DispatchResult& result, const char* name) {
  std::string error;
  const auto merged = merge_dispatch_journals(result.journal_paths(), &error);
  EXPECT_TRUE(merged) << error;
  EXPECT_TRUE(covers_all_indices(*merged));
  const auto path = temp_path(name);
  CsvResultSink csv(path);
  for (const auto& row : merged->rows) csv.add_cells(row);
  return path;
}

// Row keys duplicated inside any one shard journal would merge away
// silently (the merge dedupes); assert the journals never contain them.
void expect_no_duplicate_rows(const DispatchResult& result) {
  for (const auto& path : result.journal_paths()) {
    std::ifstream in(path);
    std::set<std::string> keys;
    std::string line;
    while (std::getline(in, line)) {
      const auto pos = line.find("\"key\":\"");
      if (pos == std::string::npos) continue;  // header
      const auto start = pos + 7;
      const auto end = line.find('"', start);
      ASSERT_NE(end, std::string::npos);
      const auto key = line.substr(start, end - start);
      EXPECT_TRUE(keys.insert(key).second)
          << path << " journals row '" << key << "' twice";
    }
  }
}

TEST(HostsFile, ParsesSlotsOptionsAndComments) {
  const auto hosts = parse_hosts(
      "# fleet\n"
      "local 2\n"
      "fast-a 4 binary=/opt/reap_campaign dir=/scratch/reap  # big box\n"
      "slow-b ssh=/usr/bin/ssh\n"
      "\n");
  ASSERT_TRUE(hosts);
  ASSERT_EQ(hosts->size(), 3u);
  EXPECT_EQ((*hosts)[0].name, "local");
  EXPECT_EQ((*hosts)[0].slots, 2u);
  EXPECT_EQ((*hosts)[1].name, "fast-a");
  EXPECT_EQ((*hosts)[1].slots, 4u);
  EXPECT_EQ((*hosts)[1].remote_binary, "/opt/reap_campaign");
  EXPECT_EQ((*hosts)[1].remote_dir, "/scratch/reap");
  EXPECT_EQ((*hosts)[2].name, "slow-b");
  EXPECT_EQ((*hosts)[2].slots, 1u);
  EXPECT_EQ((*hosts)[2].ssh_command, "/usr/bin/ssh");
}

TEST(HostsFile, RejectsBadGrammarWithLineNumbers) {
  const struct {
    const char* text;
    const char* want;
  } cases[] = {
      {"hosta 0\n", "bad slot count"},
      {"hosta nope=1\n", "unknown option"},
      {"hosta binary\n", "bad slot count"},
      {"hosta\nhosta\n", "line 2"},
      {"# only comments\n", "no hosts"},
  };
  for (const auto& c : cases) {
    std::string error;
    EXPECT_FALSE(parse_hosts(c.text, &error)) << c.text;
    EXPECT_NE(error.find(c.want), std::string::npos)
        << "'" << c.text << "' -> '" << error << "'";
  }
}

TEST(Transport, VersionFlagPrintsTheHandshakeLine) {
  const struct {
    const char* bin;
    const char* tool;
  } tools[] = {{REAP_CAMPAIGN_BIN, "reap_campaign"},
               {REAP_DISPATCH_BIN, "reap_dispatch"},
               {REAP_REPORT_BIN, "reap_report"},
               {REAP_TRACE_BIN, "reap_trace"}};
  for (const auto& t : tools) {
    const auto out = temp_path("version_out.txt");
    std::filesystem::remove(out);
    auto child = common::Child::spawn({t.bin, "--version"}, out);
    ASSERT_TRUE(child) << t.tool;
    EXPECT_TRUE(child->wait().success()) << t.tool;
    EXPECT_EQ(file_bytes(out), build_info_line(t.tool) + "\n") << t.tool;
  }
}

TEST(Transport, JournalStdoutMirrorsEveryJournalLineFramed) {
  // Run a worker with --journal-stdout and capture stdout alone: the
  // framed stream must decode to exactly the journal file's bytes.
  const auto dir = fresh_dir("journal_stdout");
  std::filesystem::create_directories(dir);
  const auto journal = dir + "/w.journal";
  const auto stdout_path = dir + "/w.stdout";
  std::string cmd = std::string(REAP_CAMPAIGN_BIN) +
                    " --name=transport-test --workloads=mcf --policies=reap"
                    " --seeds=0,1 --instructions=20000 --warmup=2000"
                    " --baseline=none --quiet --journal=" +
                    journal + " --journal-stdout > " + stdout_path;
  auto child = common::Child::spawn({"/bin/sh", "-c", cmd}, dir + "/w.log");
  ASSERT_TRUE(child);
  EXPECT_TRUE(child->wait().success());

  common::FrameParser parser;
  parser.feed(file_bytes(stdout_path));
  const auto payloads = parser.take_payloads();
  EXPECT_EQ(parser.frames_corrupt(), 0u);
  EXPECT_EQ(parser.buffered(), 0u);
  std::string reassembled;
  for (const auto& p : payloads) reassembled += p + "\n";
  EXPECT_EQ(reassembled, file_bytes(journal));
  ASSERT_GE(payloads.size(), 3u);  // header + 2 rows
  EXPECT_EQ(payloads[0].rfind("{\"format\":", 0), 0u);
}

TEST(Transport, JournalStdoutRequiresJournal) {
  auto child = common::Child::spawn(
      {REAP_CAMPAIGN_BIN, "--workloads=mcf", "--policies=reap", "--seeds=0",
       "--instructions=2000", "--journal-stdout", "--quiet"},
      temp_path("js_requires.log"));
  ASSERT_TRUE(child);
  const auto status = child->wait();
  ASSERT_TRUE(status.exited);
  EXPECT_EQ(status.code, 1);
}

TEST(Transport, TwoTransportFleetMatchesSingleProcessRun) {
  const auto kv = spec_kv(20000);
  const auto ref = reference_csv(kv, "fleet_ref.csv");
  auto opts = fleet_opts(fresh_dir("fleet_ok"));
  opts.jobs = 2;
  const auto result = Dispatcher(kv, opts).run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, DispatchStatus::ok);
  EXPECT_TRUE(result.lost_hosts.empty());
  EXPECT_EQ(result.points, 8u);
  EXPECT_EQ(file_bytes(ref), file_bytes(merged_csv_of(result, "fleet_m.csv")));
}

TEST(Transport, HostKilledMidCampaignDegradesAndMergeIsByteIdentical) {
  // Every stream pump on stub-b severs the connection: the host dies on
  // its first tick, fails its budget, and is drained; the local slot
  // picks up its shards. The run must still complete every row, report
  // the loss, and merge byte-identical. Budget 1 so the loss does not
  // race the shard migrating to the local slot.
  const auto kv = spec_kv(20000);
  const auto ref = reference_csv(kv, "lost_ref.csv");
  auto opts = fleet_opts(fresh_dir("fleet_lost"));
  opts.jobs = 2;
  opts.host_max_failures = 1;
  ArmedFault fault("transport.stream:drop:*:key=stub-b");
  const auto result = Dispatcher(kv, opts).run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, DispatchStatus::host_lost);
  ASSERT_EQ(result.lost_hosts.size(), 1u);
  EXPECT_EQ(result.lost_hosts[0], "stub-b");
  EXPECT_GE(result.restarts, 1u);
  EXPECT_EQ(file_bytes(ref), file_bytes(merged_csv_of(result, "lost_m.csv")));
}

TEST(Transport, UnreachableHostAtHandshakeDegradesPastIt) {
  const auto kv = spec_kv(20000);
  const auto ref = reference_csv(kv, "unreach_ref.csv");
  auto opts = fleet_opts(fresh_dir("fleet_unreach"));
  opts.jobs = 2;
  ArmedFault fault("transport.connect:drop:*:key=stub-b");
  const auto result = Dispatcher(kv, opts).run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, DispatchStatus::host_lost);
  ASSERT_EQ(result.lost_hosts.size(), 1u);
  EXPECT_EQ(result.lost_hosts[0], "stub-b");
  EXPECT_EQ(file_bytes(ref),
            file_bytes(merged_csv_of(result, "unreach_m.csv")));
}

TEST(Transport, GarbledFrameIsDroppedAndRowRerun) {
  // One corrupted chunk on the wire: the frame fails its CRC, the row is
  // never written locally, and the ordinary relaunch re-runs it. The
  // host survives (corruption is not a machine failure).
  const auto kv = spec_kv(20000);
  const auto ref = reference_csv(kv, "garble_ref.csv");
  auto opts = fleet_opts(fresh_dir("fleet_garble"));
  opts.jobs = 2;
  ArmedFault fault("transport.stream:garble:1:key=stub-b");
  const auto result = Dispatcher(kv, opts).run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, DispatchStatus::ok);
  EXPECT_TRUE(result.lost_hosts.empty());
  expect_no_duplicate_rows(result);
  EXPECT_EQ(file_bytes(ref),
            file_bytes(merged_csv_of(result, "garble_m.csv")));
}

TEST(Transport, StalledStreamCountsAsHostFailureAndRecovers) {
  // The stream freezes open (bytes stop, nothing closes): when the
  // worker exits, the stalled stream marks the attempt a host failure
  // and the shard relaunches. One stall is under the host budget, so the
  // host stays in the pool and the run ends clean.
  const auto kv = spec_kv(20000);
  const auto ref = reference_csv(kv, "stall_ref.csv");
  auto opts = fleet_opts(fresh_dir("fleet_stall"));
  opts.jobs = 2;
  ArmedFault fault("transport.stream:stall:1:key=stub-b");
  const auto result = Dispatcher(kv, opts).run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, DispatchStatus::ok);
  EXPECT_TRUE(result.lost_hosts.empty());
  EXPECT_GE(result.restarts, 1u);
  EXPECT_EQ(file_bytes(ref), file_bytes(merged_csv_of(result, "stall_m.csv")));
}

TEST(Transport, ReconnectAfterDropNeverDuplicatesRows) {
  // Sever the stream on its Nth pump, after rows have already landed in
  // the local journal: the relaunch must skip exactly those rows (the
  // fresh remote attempt is told them via --skip-rows) and the journals
  // must contain each key once.
  const auto kv = spec_kv(600000);  // ~45 ms per point: rows land mid-stream
  const auto ref = reference_csv(kv, "reconn_ref.csv");
  auto opts = fleet_opts(fresh_dir("fleet_reconn"));
  opts.jobs = 2;
  ArmedFault fault("transport.stream:drop:20:key=stub-b");
  const auto result = Dispatcher(kv, opts).run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.lost_hosts.empty());
  EXPECT_GE(result.restarts, 1u);
  expect_no_duplicate_rows(result);
  EXPECT_EQ(file_bytes(ref),
            file_bytes(merged_csv_of(result, "reconn_m.csv")));
}

TEST(Transport, HandshakeRefusesMismatchedWorkerBuild) {
  // A host running a different build answers --version with a different
  // line: fleet skew would corrupt the byte-identical merge, so this is
  // a hard error, never a degrade.
  auto spec = stub_host(fresh_dir("hs_mismatch"));
  spec.remote_binary = "/bin/echo";  // prints its args, not our line
  SshTransport transport(spec);
  std::string error, note;
  EXPECT_EQ(transport.handshake(build_info_line("reap_campaign"), "", &error,
                                &note),
            HandshakeStatus::mismatch);
  EXPECT_NE(error.find("version skew"), std::string::npos) << error;

  // And through the dispatcher: the whole run refuses to start.
  auto opts = fleet_opts(fresh_dir("hs_mismatch_run"));
  auto bad = stub_host(opts.work_dir);
  bad.remote_binary = "/bin/echo";
  opts.transports[1] = std::make_shared<SshTransport>(bad);
  const auto result = Dispatcher(spec_kv(2000), opts).run();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("version skew"), std::string::npos)
      << result.error;
}

TEST(Transport, UnreachableSshCommandReportsUnreachable) {
  auto spec = stub_host(fresh_dir("hs_unreach"));
  spec.ssh_command = "/nonexistent/ssh-binary";
  SshTransport transport(spec);
  std::string error, note;
  EXPECT_EQ(transport.handshake(build_info_line("reap_campaign"), "", &error,
                                &note),
            HandshakeStatus::unreachable);
  EXPECT_FALSE(error.empty());
}

TEST(Transport, MissingRemoteTraceStoreFallsBackWithOneNote) {
  auto spec = stub_host(fresh_dir("hs_tracedir"));
  SshTransport transport(spec);
  std::string error, note;
  EXPECT_EQ(transport.handshake(build_info_line("reap_campaign"),
                                "/nonexistent-trace-store", &error, &note),
            HandshakeStatus::ok);
  EXPECT_NE(note.find("stub-b"), std::string::npos) << note;
  EXPECT_NE(note.find("fall back"), std::string::npos) << note;

  // A present trace dir probes clean: no note.
  const auto present = fresh_dir("hs_tracedir_ok");
  std::filesystem::create_directories(present);
  SshTransport transport2(stub_host(present));
  note.clear();
  EXPECT_EQ(transport2.handshake(build_info_line("reap_campaign"), present,
                                 &error, &note),
            HandshakeStatus::ok);
  EXPECT_TRUE(note.empty()) << note;
}

}  // namespace
}  // namespace reap::campaign

// Chaos drills: the robustness layer exercised end-to-end against the
// real reap_campaign / reap_dispatch binaries, with failures *injected*
// (REAP_FAULT / --inject-fault) rather than hoped for. Each drill pins
// one leg of the contract in docs/robustness.md: a poisoned grid point
// is bisected to and quarantined while the rest of the campaign is
// delivered; a hung worker is caught by the watchdog (SIGTERM, then
// SIGKILL) and its poison pinned; journal ENOSPC/EIO and torn-write
// crashes exit with their distinct codes and resume losslessly; SIGTERM
// stops a run at a row boundary; and the dispatch CLI maps every outcome
// onto its documented exit code.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "campaign_test_util.hpp"
#include "reap/campaign/dispatch.hpp"
#include "reap/campaign/exit_codes.hpp"
#include "reap/campaign/journal.hpp"
#include "reap/campaign/result_sink.hpp"
#include "reap/campaign/spec.hpp"
#include "reap/common/fault.hpp"
#include "reap/common/subprocess.hpp"

namespace reap::campaign {
namespace {

using testutil::file_bytes;
using testutil::temp_path;

// Sets REAP_FAULT for the duration of a scope. Only spawned children act
// on it (they arm_from_env at startup); this process never arms.
class EnvFault {
 public:
  explicit EnvFault(const std::string& spec) {
    ::setenv(common::fault::kEnvVar, spec.c_str(), 1);
  }
  ~EnvFault() { ::unsetenv(common::fault::kEnvVar); }
};

// 2 workloads x 2 policies x 2 seeds = 8 points, ~instant per point.
std::map<std::string, std::string> grid8(const char* name) {
  return {{"name", name},
          {"workloads", "mcf,h264ref"},
          {"policies", "conventional,reap"},
          {"seeds", "0,1"},
          {"instructions", "20000"},
          {"warmup", "2000"}};
}

// 1 workload x 2 policies x 2 seeds = 4 points.
std::map<std::string, std::string> grid4(const char* name) {
  auto kv = grid8(name);
  kv["workloads"] = "mcf";
  return kv;
}

std::vector<CampaignPoint> points_of(
    const std::map<std::string, std::string>& kv) {
  std::string error;
  const auto spec = CampaignSpec::from_kv(kv, &error);
  EXPECT_TRUE(spec) << error;
  return expand(*spec);
}

std::string fresh_dir(const char* name) {
  const auto dir = temp_path(name);
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<std::string> flag_argv(
    const std::string& bin, const std::map<std::string, std::string>& kv,
    std::vector<std::string> extra) {
  std::vector<std::string> argv = {bin};
  for (const auto& [k, v] : kv) argv.push_back("--" + k + "=" + v);
  for (auto& f : extra) argv.push_back(std::move(f));
  return argv;
}

common::ExitStatus run_to_exit(const std::vector<std::string>& argv,
                               const std::string& log) {
  std::string error;
  auto child = common::Child::spawn(argv, log, &error);
  EXPECT_TRUE(child) << error;
  if (!child) return {};
  return child->wait();
}

// Clean single-process reference run (the byte-identity yardstick).
std::string reference_csv(const std::map<std::string, std::string>& kv,
                          const char* name) {
  const auto csv = temp_path(name);
  const auto status = run_to_exit(
      flag_argv(REAP_CAMPAIGN_BIN, kv,
                {"--threads=2", "--csv=" + csv, "--baseline=none",
                 "--quiet"}),
      "");
  EXPECT_TRUE(status.success()) << status.describe();
  return csv;
}

std::vector<std::string> lines_of(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// `full` minus the rows whose leading `index` cell is in `dropped`.
std::vector<std::string> without_indices(
    const std::vector<std::string>& full,
    const std::vector<std::uint64_t>& dropped) {
  std::vector<std::string> kept;
  for (const auto& line : full) {
    bool drop = false;
    for (const auto idx : dropped)
      drop = drop || line.rfind(std::to_string(idx) + ",", 0) == 0;
    if (!drop) kept.push_back(line);
  }
  return kept;
}

DispatchOptions chaos_opts(const std::string& work_dir) {
  DispatchOptions opts;
  opts.campaign_binary = REAP_CAMPAIGN_BIN;
  opts.work_dir = work_dir;
  opts.workers = 2;
  opts.max_attempts = 2;
  opts.poll_interval = std::chrono::milliseconds(5);
  opts.backoff_base = std::chrono::milliseconds(1);
  return opts;
}

// A grid point whose worker crashes every time it is attempted is
// bisected down to, quarantined (sidecar + result), and every other row
// is still delivered -- byte-identical to a clean run minus that row.
// A re-dispatch over the same work dir honors the sidecar instead of
// re-poisoning itself.
TEST(Chaos, PoisonedPointIsQuarantinedAndTheRestDelivered) {
  const auto kv = grid8("chaos-poison");
  const auto ref = lines_of(reference_csv(kv, "chaos_poison_ref.csv"));
  const auto points = points_of(kv);
  ASSERT_EQ(points.size(), 8u);
  // Index 3: lands in shard 1 of 2, *not* first in its shard, so the
  // first attempt makes progress before dying -- the general case.
  const auto& poison = points[3];

  auto opts = chaos_opts(fresh_dir("chaos_poison"));
  opts.jobs = 2;
  std::vector<std::string> quarantine_calls;
  opts.on_quarantine = [&](const std::string& key, std::uint64_t index,
                           std::size_t shard) {
    quarantine_calls.push_back(key);
    EXPECT_EQ(index, poison.index);
    EXPECT_EQ(shard, 1u);
  };

  DispatchResult result;
  {
    EnvFault fault("runner.point:crash:*:key=" + poison.key);
    result = Dispatcher(kv, opts).run();
  }
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, DispatchStatus::quarantined);
  ASSERT_EQ(result.quarantined.size(), 1u);
  EXPECT_EQ(result.quarantined[0].key, poison.key);
  EXPECT_EQ(result.quarantined[0].index, poison.index);
  EXPECT_EQ(quarantine_calls, std::vector<std::string>{poison.key});
  EXPECT_GE(result.restarts, 1u);

  // Sidecar names the poisoned point.
  const auto sidecar = file_bytes(opts.work_dir + "/quarantine.jsonl");
  EXPECT_NE(sidecar.find(poison.key), std::string::npos) << sidecar;
  EXPECT_NE(sidecar.find("\"reason\""), std::string::npos) << sidecar;

  // Merged output = clean run minus exactly the quarantined row.
  std::string error;
  const auto merged = merge_dispatch_journals(result.journal_paths(), &error);
  ASSERT_TRUE(merged) << error;
  EXPECT_EQ(merged->rows.size(), 7u);
  const auto csv = temp_path("chaos_poison_merged.csv");
  {
    CsvResultSink sink(csv);
    for (const auto& row : merged->rows) sink.add_cells(row);
  }
  EXPECT_EQ(lines_of(csv), without_indices(ref, {poison.index}));

  // Re-dispatch, fault disarmed: the sidecar keeps the point quarantined
  // (nothing re-runs it) and the outcome is still `quarantined`.
  const auto rerun = Dispatcher(kv, opts).run();
  ASSERT_TRUE(rerun.ok) << rerun.error;
  EXPECT_EQ(rerun.status, DispatchStatus::quarantined);
  ASSERT_EQ(rerun.quarantined.size(), 1u);
  EXPECT_EQ(rerun.quarantined[0].key, poison.key);
}

// A worker wedged forever on one point journals nothing; the watchdog
// declares the stall, SIGTERMs it (which a wedged worker ignores),
// SIGKILLs it after the grace period, and the ordinary retry/bisect
// machinery then pins and quarantines the hanging point.
TEST(Chaos, HangingWorkerIsCaughtByTheWatchdogAndItsPointQuarantined) {
  const auto kv = grid4("chaos-hang");
  const auto points = points_of(kv);
  ASSERT_EQ(points.size(), 4u);
  const auto& poison = points[0];  // first in its (only) shard

  auto opts = chaos_opts(fresh_dir("chaos_hang"));
  opts.jobs = 1;
  opts.stall_timeout = std::chrono::milliseconds(300);
  opts.kill_grace = std::chrono::milliseconds(150);
  std::size_t stall_calls = 0;
  opts.on_stall = [&](std::size_t shard, std::size_t /*attempt*/) {
    EXPECT_EQ(shard, 0u);
    stall_calls++;
  };

  DispatchResult result;
  {
    EnvFault fault("runner.point:hang:*:key=" + poison.key);
    result = Dispatcher(kv, opts).run();
  }
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, DispatchStatus::quarantined);
  ASSERT_EQ(result.quarantined.size(), 1u);
  EXPECT_EQ(result.quarantined[0].key, poison.key);
  EXPECT_GE(result.stalls, 1u);
  EXPECT_GE(stall_calls, 1u);

  // The three healthy rows were all delivered.
  std::string error;
  const auto merged = merge_dispatch_journals(result.journal_paths(), &error);
  ASSERT_TRUE(merged) << error;
  EXPECT_EQ(merged->rows.size(), 3u);
}

// ENOSPC on the third journal append: the worker stops claiming rows,
// exits with the distinct journal-I/O code, and the journal holds
// exactly the rows that were durable. --resume finishes the run and the
// final CSV is byte-identical to an unfaulted one.
TEST(Chaos, JournalEnospcStopsCleanlyAndResumeCompletes) {
  const auto kv = grid4("chaos-enospc");
  const auto ref = reference_csv(kv, "chaos_enospc_ref.csv");
  const auto journal_path = temp_path("chaos_enospc.journal");
  std::filesystem::remove(journal_path);
  const auto log = temp_path("chaos_enospc.log");

  const auto status = run_to_exit(
      flag_argv(REAP_CAMPAIGN_BIN, kv,
                {"--journal=" + journal_path, "--threads=1",
                 "--baseline=none", "--quiet",
                 "--inject-fault=journal.write:enospc:3"}),
      log);
  ASSERT_TRUE(status.exited);
  EXPECT_EQ(status.code, kExitJournalIo);
  EXPECT_NE(file_bytes(log).find("journal append failed"),
            std::string::npos);

  std::string error;
  auto journal = read_journal(journal_path, &error);
  ASSERT_TRUE(journal) << error;
  EXPECT_EQ(journal->rows.size(), 2u);  // rows 1-2 durable, 3rd was ENOSPC
  EXPECT_FALSE(journal->truncated_tail);
  EXPECT_TRUE(journal->corrupt.empty());

  const auto csv = temp_path("chaos_enospc_resumed.csv");
  const auto resumed = run_to_exit(
      flag_argv(REAP_CAMPAIGN_BIN, kv,
                {"--journal=" + journal_path, "--resume", "--threads=1",
                 "--csv=" + csv, "--baseline=none", "--quiet"}),
      log);
  EXPECT_TRUE(resumed.success()) << resumed.describe();
  EXPECT_EQ(file_bytes(ref), file_bytes(csv));
}

// A torn write (partial row + crash, as a power cut leaves it) exits
// with the injected-crash code; the reader classifies the fragment as a
// torn tail, --resume heals it, and nothing is lost or doubled.
TEST(Chaos, TornWriteCrashLeavesAHealableTail) {
  const auto kv = grid4("chaos-torn");
  const auto ref = reference_csv(kv, "chaos_torn_ref.csv");
  const auto journal_path = temp_path("chaos_torn.journal");
  std::filesystem::remove(journal_path);
  const auto log = temp_path("chaos_torn.log");

  const auto status = run_to_exit(
      flag_argv(REAP_CAMPAIGN_BIN, kv,
                {"--journal=" + journal_path, "--threads=1",
                 "--baseline=none", "--quiet",
                 "--inject-fault=journal.write:torn-write:2"}),
      log);
  ASSERT_TRUE(status.exited);
  EXPECT_EQ(status.code, common::fault::kCrashExit);

  std::string error;
  auto journal = read_journal(journal_path, &error);
  ASSERT_TRUE(journal) << error;
  EXPECT_EQ(journal->rows.size(), 1u);
  EXPECT_TRUE(journal->truncated_tail);

  const auto csv = temp_path("chaos_torn_resumed.csv");
  const auto resumed = run_to_exit(
      flag_argv(REAP_CAMPAIGN_BIN, kv,
                {"--journal=" + journal_path, "--resume", "--threads=1",
                 "--csv=" + csv, "--baseline=none", "--quiet"}),
      log);
  EXPECT_TRUE(resumed.success()) << resumed.describe();
  EXPECT_NE(file_bytes(log).find("torn line"), std::string::npos);
  EXPECT_EQ(file_bytes(ref), file_bytes(csv));

  const auto healed = read_journal(journal_path, &error);
  ASSERT_TRUE(healed) << error;
  EXPECT_FALSE(healed->truncated_tail);
  EXPECT_EQ(healed->rows.size(), 4u);
}

// SIGTERM mid-run: the worker finishes the row in hand, flushes the
// journal at a row boundary (no torn tail by construction), and exits
// with the distinct interrupted code; --resume completes byte-identically.
// An injected `slow` fault holds the 5th point open for seconds so the
// signal deterministically lands mid-run.
TEST(Chaos, SigtermStopsAtARowBoundaryAndResumeIsByteIdentical) {
  const auto kv = grid8("chaos-sigterm");
  const auto ref = reference_csv(kv, "chaos_sigterm_ref.csv");
  const auto journal_path = temp_path("chaos_sigterm.journal");
  std::filesystem::remove(journal_path);
  const auto log = temp_path("chaos_sigterm.log");

  std::string error;
  auto child = common::Child::spawn(
      flag_argv(REAP_CAMPAIGN_BIN, kv,
                {"--journal=" + journal_path, "--threads=1",
                 "--baseline=none", "--quiet",
                 "--inject-fault=runner.point:slow:5:3000"}),
      log, &error);
  ASSERT_TRUE(child) << error;

  // Wait until 4 rows are durable; the worker is then inside the 5th
  // point's 3 s sleep -- a wide, deterministic window for the signal.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto journal = read_journal(journal_path);
    if (journal && journal->rows.size() >= 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  child->kill(SIGTERM);
  const auto status = child->wait();
  ASSERT_TRUE(status.exited) << status.describe();
  EXPECT_EQ(status.code, kExitInterrupted);
  EXPECT_NE(file_bytes(log).find("interrupted"), std::string::npos);

  auto journal = read_journal(journal_path, &error);
  ASSERT_TRUE(journal) << error;
  EXPECT_FALSE(journal->truncated_tail);
  EXPECT_TRUE(journal->corrupt.empty());
  // The row in hand was finished, later rows were never claimed.
  EXPECT_GE(journal->rows.size(), 5u);
  EXPECT_LT(journal->rows.size(), 8u);

  const auto csv = temp_path("chaos_sigterm_resumed.csv");
  const auto resumed = run_to_exit(
      flag_argv(REAP_CAMPAIGN_BIN, kv,
                {"--journal=" + journal_path, "--resume", "--threads=1",
                 "--csv=" + csv, "--baseline=none", "--quiet"}),
      log);
  EXPECT_TRUE(resumed.success()) << resumed.describe();
  EXPECT_EQ(file_bytes(ref), file_bytes(csv));
}

// The dispatch CLI's exit-code contract, quarantine leg: a poisoned
// point yields exit 3, the merged CSV is still written (minus exactly
// that row), and the sidecar names it.
TEST(Chaos, DispatchCliExitsQuarantinedAndStillWritesMergedOutput) {
  const auto kv = grid8("chaos-cli-q");
  const auto ref = lines_of(reference_csv(kv, "chaos_cliq_ref.csv"));
  const auto points = points_of(kv);
  const auto& poison = points[3];
  const auto dir = fresh_dir("chaos_cliq");
  const auto csv = temp_path("chaos_cliq.csv");
  const auto log = temp_path("chaos_cliq.log");

  common::ExitStatus status;
  {
    EnvFault fault("runner.point:crash:*:key=" + poison.key);
    status = run_to_exit(
        flag_argv(REAP_DISPATCH_BIN, kv,
                  {"--campaign-bin=" REAP_CAMPAIGN_BIN, "--work-dir=" + dir,
                   "--workers=2", "--jobs=2", "--max-attempts=2",
                   "--backoff-ms=1", "--csv=" + csv, "--baseline=none",
                   "--quiet"}),
        log);
  }
  ASSERT_TRUE(status.exited) << status.describe();
  EXPECT_EQ(status.code, kDispatchQuarantined);
  const auto output = file_bytes(log);
  EXPECT_NE(output.find("quarantined: " + poison.key), std::string::npos)
      << output;
  EXPECT_NE(file_bytes(dir + "/quarantine.jsonl").find(poison.key),
            std::string::npos);
  EXPECT_EQ(lines_of(csv), without_indices(ref, {poison.index}));
}

// The dispatch CLI's exit-code contract, abandoned and spec-mismatch
// legs: --fail-fast + a worker that always dies => exit 4 (no merged
// outputs); a work dir belonging to a different spec => exit 2.
TEST(Chaos, DispatchCliExitsAbandonedAndSpecMismatchDistinctly) {
  const auto kv = grid4("chaos-cli-codes");

  const auto abandoned = run_to_exit(
      flag_argv(REAP_DISPATCH_BIN, kv,
                {"--campaign-bin=/bin/false",
                 "--work-dir=" + fresh_dir("chaos_cli_abandon"),
                 "--workers=2", "--jobs=1", "--max-attempts=1",
                 "--fail-fast", "--backoff-ms=1", "--quiet"}),
      temp_path("chaos_cli_abandon.log"));
  ASSERT_TRUE(abandoned.exited) << abandoned.describe();
  EXPECT_EQ(abandoned.code, kDispatchAbandoned);

  const auto dir = fresh_dir("chaos_cli_mismatch");
  const auto ok = run_to_exit(
      flag_argv(REAP_DISPATCH_BIN, kv,
                {"--campaign-bin=" REAP_CAMPAIGN_BIN, "--work-dir=" + dir,
                 "--workers=2", "--jobs=2", "--baseline=none", "--quiet"}),
      temp_path("chaos_cli_ok.log"));
  ASSERT_TRUE(ok.exited) << ok.describe();
  EXPECT_EQ(ok.code, kDispatchOk);

  auto other = kv;
  other["seeds"] = "0,1,2";
  const auto log = temp_path("chaos_cli_mismatch.log");
  const auto mismatch = run_to_exit(
      flag_argv(REAP_DISPATCH_BIN, other,
                {"--campaign-bin=" REAP_CAMPAIGN_BIN, "--work-dir=" + dir,
                 "--workers=2", "--jobs=2", "--baseline=none", "--quiet"}),
      log);
  ASSERT_TRUE(mismatch.exited) << mismatch.describe();
  EXPECT_EQ(mismatch.code, kDispatchSpecMismatch);
  EXPECT_NE(file_bytes(log).find("different spec"), std::string::npos);
}

}  // namespace
}  // namespace reap::campaign

// The CLI reference cannot rot: docs/cli.md must document, per tool,
// exactly the set of --flags that tool's --help text (the shared usage
// strings in cli_usage.hpp, printed verbatim by the binaries) mentions --
// in both directions. Also pins the README links to the docs and the
// layer coverage of docs/architecture.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <string>
#include <utility>

#include "reap/campaign/cli_usage.hpp"
#include "reap/campaign/exit_codes.hpp"
#include "reap/common/fault.hpp"

namespace reap::campaign {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// Every distinct "--flag" token: "--" followed by a lowercase letter,
// then [a-z0-9-]* (trailing hyphens trimmed so a line-wrapped "--foo-"
// cannot occur -- flags never end in '-'). A " -- " em-dash does not
// match (no letter follows).
std::set<std::string> extract_flags(const std::string& text) {
  std::set<std::string> flags;
  for (std::size_t i = 0; i + 2 < text.size(); ++i) {
    if (text[i] != '-' || text[i + 1] != '-') continue;
    if (i > 0 && text[i - 1] == '-') continue;  // inside a longer dash run
    std::size_t end = i + 2;
    if (end >= text.size() || text[end] < 'a' || text[end] > 'z') continue;
    while (end < text.size() &&
           ((text[end] >= 'a' && text[end] <= 'z') ||
            (text[end] >= '0' && text[end] <= '9') || text[end] == '-'))
      ++end;
    while (text[end - 1] == '-') --end;
    flags.insert(text.substr(i, end - i));
    i = end - 1;
  }
  return flags;
}

// The "## `tool`" section of a markdown file: from its heading to the
// next "## " heading (or EOF).
std::string section_of(const std::string& markdown, const std::string& tool) {
  const auto heading = "## `" + tool + "`";
  const auto start = markdown.find(heading);
  EXPECT_NE(start, std::string::npos)
      << "docs/cli.md has no section " << heading;
  if (start == std::string::npos) return "";
  auto end = markdown.find("\n## ", start + heading.size());
  if (end == std::string::npos) end = markdown.size();
  return markdown.substr(start, end - start);
}

void expect_flags_match(const char* tool, const std::string& doc_section,
                        const std::string& usage) {
  const auto documented = extract_flags(doc_section);
  const auto in_help = extract_flags(usage);
  for (const auto& flag : in_help)
    EXPECT_TRUE(documented.count(flag))
        << tool << ": " << flag
        << " is in --help but missing from docs/cli.md";
  for (const auto& flag : documented)
    EXPECT_TRUE(in_help.count(flag))
        << tool << ": docs/cli.md mentions " << flag
        << " which is not in --help";
}

const std::string kSourceDir = REAP_SOURCE_DIR;

TEST(Docs, CliReferenceMatchesHelpOutputPerTool) {
  const auto cli_md = read_file(kSourceDir + "/docs/cli.md");
  expect_flags_match("reap_campaign", section_of(cli_md, "reap_campaign"),
                     kCampaignUsage);
  expect_flags_match("reap_report", section_of(cli_md, "reap_report"),
                     kReportUsage);
  expect_flags_match("reap_dispatch", section_of(cli_md, "reap_dispatch"),
                     kDispatchUsage);
  expect_flags_match("reap_trace", section_of(cli_md, "reap_trace"),
                     kTraceUsage);
}

TEST(Docs, ReadmeLinksTheDocSet) {
  const auto readme = read_file(kSourceDir + "/README.md");
  for (const char* doc :
       {"docs/architecture.md", "docs/cli.md", "docs/campaign.md",
        "docs/performance.md", "docs/robustness.md"})
    EXPECT_NE(readme.find(doc), std::string::npos)
        << "README.md does not link " << doc;
}

// docs/robustness.md is the contract page for the fault/quarantine
// layer; pin it to the compiled-in reality so neither can drift.
TEST(Docs, RobustnessContractMatchesTheCode) {
  const auto doc = read_file(kSourceDir + "/docs/robustness.md");
  // Every compiled-in fault site must be documented by name.
  for (const auto& site : common::fault::known_sites())
    EXPECT_NE(doc.find("`" + site + "`"), std::string::npos)
        << "docs/robustness.md does not document fault site " << site;
  // Every fault kind, by its spec-grammar name.
  for (const auto kind :
       {common::fault::Kind::crash, common::fault::Kind::hang,
        common::fault::Kind::eio, common::fault::Kind::enospc,
        common::fault::Kind::torn_write, common::fault::Kind::slow,
        common::fault::Kind::drop, common::fault::Kind::stall,
        common::fault::Kind::garble})
    EXPECT_NE(doc.find("`" + std::string(common::fault::to_string(kind)) +
                       "`"),
              std::string::npos)
        << "docs/robustness.md does not document fault kind "
        << common::fault::to_string(kind);
  // The arming channel, the sidecar, and the journal format tag.
  for (const char* token : {"REAP_FAULT", "quarantine.jsonl",
                            "reap-journal-v2", "--inject-fault",
                            "--stall-timeout", "--skip-rows", "--hosts",
                            "--journal-stdout", "REAPF1",
                            "fake_ssh.sh"})
    EXPECT_NE(doc.find(token), std::string::npos)
        << "docs/robustness.md does not mention " << token;
  EXPECT_NE(doc.find("CRC32C"), std::string::npos);
  // The exit-code tables must name each constant next to its number.
  const std::pair<const char*, int> codes[] = {
      {"kExitOk", kExitOk},
      {"kExitError", kExitError},
      {"kExitJournalIo", kExitJournalIo},
      {"kExitInterrupted", kExitInterrupted},
      {"kDispatchOk", kDispatchOk},
      {"kDispatchError", kDispatchError},
      {"kDispatchSpecMismatch", kDispatchSpecMismatch},
      {"kDispatchQuarantined", kDispatchQuarantined},
      {"kDispatchAbandoned", kDispatchAbandoned},
      {"kDispatchHostLost", kDispatchHostLost},
  };
  for (const auto& [name, value] : codes) {
    const auto row = "| " + std::to_string(value) + " | `" + name + "` |";
    EXPECT_NE(doc.find(row), std::string::npos)
        << "docs/robustness.md exit-code table lacks the row '" << row
        << "'";
  }
  EXPECT_NE(doc.find(std::to_string(common::fault::kCrashExit)),
            std::string::npos)
      << "docs/robustness.md does not document the injected-crash exit "
         "code";
}

TEST(Docs, ArchitectureCoversEveryLayer) {
  const auto arch = read_file(kSourceDir + "/docs/architecture.md");
  for (const char* layer :
       {"src/common", "src/mtj", "src/ecc", "src/trace", "src/nvsim",
        "src/reliability", "src/sim", "src/core", "src/campaign"})
    EXPECT_NE(arch.find(layer), std::string::npos)
        << "docs/architecture.md does not mention " << layer;
  // The determinism contract section must point at the tests pinning it.
  for (const char* pin :
       {"test_runner_determinism", "test_shard_resume", "test_dispatch"})
    EXPECT_NE(arch.find(pin), std::string::npos)
        << "docs/architecture.md does not reference " << pin;
  // Invariant 7: the SIMD/scalar build split must be documented with the
  // option that selects it and the pins that hold it.
  for (const char* token :
       {"REAP_SIMD", "sim/simd.hpp", "test_simd", "scalar-fallback"})
    EXPECT_NE(arch.find(token), std::string::npos)
        << "docs/architecture.md does not mention " << token;
}

// docs/performance.md must describe the vectorized hot loop in terms
// that match the code: the kernel entry points, the build option, the
// bench series CI gates, and the gate tool syntax.
TEST(Docs, PerformanceCoversTheVectorizedHotLoop) {
  const auto perf = read_file(kSourceDir + "/docs/performance.md");
  for (const char* token :
       {"sim/simd.hpp", "find_way", "victim_min", "accumulate_valid",
        "predecode", "REAP_SIMD", "kPrefetchAhead", "E2E/simd",
        "BM_CacheFindWay", "BM_BatchAddrDecode",
        "--gate replay/static=1.3", "--gate simd/static=1.0"})
    EXPECT_NE(perf.find(token), std::string::npos)
        << "docs/performance.md does not mention " << token;
}

}  // namespace
}  // namespace reap::campaign

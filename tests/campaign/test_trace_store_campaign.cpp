// The trace store end to end, driven through the real binaries
// (REAP_TRACE_BIN / REAP_CAMPAIGN_BIN, baked in by CMake): a campaign
// replaying materialized .reaptrace files via --trace-dir must produce
// CSV/JSONL byte-identical to in-memory generation — across the full
// policy axis, on a multi-threaded runner, through the journal-merge
// path, and through a dump -> import round trip. A corrupted store file
// must refuse the run up front (exit 1, no output file), never produce
// wrong bytes; a garbage text trace must refuse the import.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "campaign_test_util.hpp"
#include "reap/campaign/dispatch.hpp"
#include "reap/campaign/journal.hpp"
#include "reap/campaign/report.hpp"
#include "reap/campaign/result_sink.hpp"
#include "reap/common/subprocess.hpp"

namespace reap::campaign {
namespace {

using testutil::file_bytes;
using testutil::temp_path;

// 2 workloads x the full policy axis x 1 seed; small but real runs.
std::vector<std::string> spec_flags() {
  return {"--workloads=mcf,h264ref", "--policies=all", "--seeds=0",
          "--instructions=20000",    "--warmup=2000"};
}

common::ExitStatus run(std::vector<std::string> argv,
                       const std::string& log = "") {
  auto child = common::Child::spawn(argv, log);
  EXPECT_TRUE(child) << argv[0];
  if (!child) return {};
  return child->wait();
}

// Materializes the spec's traces into a fresh directory via reap_trace.
std::string materialized_dir(const char* name) {
  const auto dir = temp_path(name);
  std::filesystem::remove_all(dir);
  std::vector<std::string> argv = {REAP_TRACE_BIN, "--materialize",
                                   "--out-dir=" + dir};
  for (const auto& f : spec_flags()) argv.push_back(f);
  EXPECT_TRUE(run(argv).success());
  return dir;
}

// Runs reap_campaign over the spec, optionally replaying from `trace_dir`,
// and returns the output paths.
struct RunFiles {
  std::string csv, jsonl;
};
RunFiles run_campaign(const char* tag, const std::string& trace_dir = "",
                      const std::string& extra = "") {
  RunFiles files{temp_path((std::string(tag) + ".csv").c_str()),
                 temp_path((std::string(tag) + ".jsonl").c_str())};
  std::vector<std::string> argv = {REAP_CAMPAIGN_BIN};
  for (const auto& f : spec_flags()) argv.push_back(f);
  argv.push_back("--csv=" + files.csv);
  argv.push_back("--jsonl=" + files.jsonl);
  argv.push_back("--baseline=none");
  argv.push_back("--quiet");
  if (!trace_dir.empty()) argv.push_back("--trace-dir=" + trace_dir);
  if (!extra.empty()) argv.push_back(extra);
  EXPECT_TRUE(run(argv).success());
  return files;
}

TEST(TraceStoreCampaign, TraceDirRunIsByteIdenticalToGeneration) {
  const auto ref = run_campaign("store_ref");
  const auto dir = materialized_dir("store_traces");
  const auto got = run_campaign("store_replay", dir);
  EXPECT_FALSE(file_bytes(ref.csv).empty());
  EXPECT_EQ(file_bytes(got.csv), file_bytes(ref.csv));
  EXPECT_EQ(file_bytes(got.jsonl), file_bytes(ref.jsonl));
}

TEST(TraceStoreCampaign, FourThreadTraceDirRunStaysByteIdentical) {
  const auto ref = run_campaign("store_mt_ref");
  const auto dir = materialized_dir("store_mt_traces");
  const auto got = run_campaign("store_mt_replay", dir, "--threads=4");
  EXPECT_EQ(file_bytes(got.csv), file_bytes(ref.csv));
  EXPECT_EQ(file_bytes(got.jsonl), file_bytes(ref.jsonl));
}

TEST(TraceStoreCampaign, ShardedTraceDirJournalsMergeByteIdentically) {
  // Two --shard workers share one store directory; merging their journals
  // must reproduce the un-sharded CSV byte for byte (the journal-merge
  // path is how reap_dispatch assembles fleet output).
  const auto ref = run_campaign("store_shard_ref");
  const auto dir = materialized_dir("store_shard_traces");
  std::vector<std::string> journals;
  for (int s = 0; s < 2; ++s) {
    const auto journal =
        temp_path(("store_shard_j" + std::to_string(s)).c_str());
    std::filesystem::remove(journal);
    std::vector<std::string> argv = {REAP_CAMPAIGN_BIN};
    for (const auto& f : spec_flags()) argv.push_back(f);
    argv.push_back("--shard=" + std::to_string(s) + "/2");
    argv.push_back("--journal=" + journal);
    argv.push_back("--trace-dir=" + dir);
    argv.push_back("--baseline=none");
    argv.push_back("--quiet");
    ASSERT_TRUE(run(argv).success());
    journals.push_back(journal);
  }
  std::string error;
  const auto merged = merge_dispatch_journals(journals, &error);
  ASSERT_TRUE(merged) << error;
  EXPECT_TRUE(covers_all_indices(*merged));
  const auto csv = temp_path("store_shard_merged.csv");
  {
    CsvResultSink sink(csv);
    ASSERT_TRUE(sink.ok());
    for (const auto& row : merged->rows) sink.add_cells(row);
  }
  EXPECT_EQ(file_bytes(csv), file_bytes(ref.csv));
}

TEST(TraceStoreCampaign, DumpImportRoundTripStaysByteIdentical) {
  // generator -> store file -> text dump -> import -> store file: the
  // re-imported trace must drive the campaign to the same bytes, proving
  // the text format and the importer lose nothing.
  const auto ref = run_campaign("store_imp_ref");
  const auto dir = materialized_dir("store_imp_traces");
  const auto redir = temp_path("store_imp_reimported");
  std::filesystem::remove_all(redir);
  std::filesystem::create_directories(redir);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const auto file = entry.path().string();
    const auto text = file + ".txt";
    // --dump prints ops in the text trace format; '#' headers are
    // comments to the importer.
    ASSERT_TRUE(run({REAP_TRACE_BIN, "--dump", file}, text).success());
    // Recover the key from the original file name: the importer records
    // whatever --trace-key says.
    auto key = entry.path().stem().string();
    for (auto& c : key)
      if (c == '_') c = '/';
    const auto out = redir + "/" + entry.path().filename().string();
    ASSERT_TRUE(run({REAP_TRACE_BIN, "--import=" + text, "--out=" + out,
                     "--trace-key=" + key})
                    .success());
  }
  ASSERT_TRUE(run({REAP_TRACE_BIN, "--verify",
                   redir + "/mcf_rr-_s0.reaptrace"})
                  .success());
  const auto got = run_campaign("store_imp_replay", redir);
  EXPECT_EQ(file_bytes(got.csv), file_bytes(ref.csv));
  EXPECT_EQ(file_bytes(got.jsonl), file_bytes(ref.jsonl));
}

TEST(TraceStoreCampaign, CorruptStoreFileRefusesTheRunUpFront) {
  const auto dir = materialized_dir("store_bad_traces");
  // Flip one body byte of one trace file.
  const auto victim = dir + "/mcf_rr-_s0.reaptrace";
  {
    auto bytes = file_bytes(victim);
    ASSERT_GT(bytes.size(), 17u);
    bytes[bytes.size() - 17] =
        static_cast<char>(bytes[bytes.size() - 17] ^ 0x08);
    std::ofstream f(victim, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  // reap_trace --verify names the damage...
  const auto vlog = temp_path("store_bad_verify.log");
  const auto vstatus = run({REAP_TRACE_BIN, "--verify", victim}, vlog);
  EXPECT_TRUE(vstatus.exited);
  EXPECT_EQ(vstatus.code, 1);
  EXPECT_NE(file_bytes(vlog).find("body CRC mismatch"), std::string::npos);

  // ...and the campaign refuses before any output exists: exit 1, the
  // reason on stderr, and the CSV never created — wrong bytes are not an
  // available outcome.
  const auto csv = temp_path("store_bad.csv");
  std::filesystem::remove(csv);
  const auto clog = temp_path("store_bad_campaign.log");
  std::vector<std::string> argv = {REAP_CAMPAIGN_BIN};
  for (const auto& f : spec_flags()) argv.push_back(f);
  argv.push_back("--csv=" + csv);
  argv.push_back("--baseline=none");
  argv.push_back("--quiet");
  argv.push_back("--trace-dir=" + dir);
  const auto status = run(argv, clog);
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.code, 1);
  EXPECT_NE(file_bytes(clog).find("body CRC mismatch"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(csv));
}

TEST(TraceStoreCampaign, ImporterRefusesAGarbageTail) {
  const auto text = temp_path("store_garbage.txt");
  {
    std::ofstream f(text);
    f << "I 400000\nL 10\nthis is not a trace line\nS 20\n";
  }
  const auto out = temp_path("store_garbage.reaptrace");
  std::filesystem::remove(out);
  const auto log = temp_path("store_garbage.log");
  const auto status =
      run({REAP_TRACE_BIN, "--import=" + text, "--out=" + out}, log);
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.code, 1);
  EXPECT_NE(file_bytes(log).find("import refused"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(out));  // nothing half-written
}

TEST(TraceStoreCampaign, MissingFilesFallBackToGeneration) {
  // A store directory holding only one of the grid's traces: the run
  // must still complete (the other keys generate) and stay byte-identical.
  const auto ref = run_campaign("store_partial_ref");
  const auto full = materialized_dir("store_partial_full");
  const auto partial = temp_path("store_partial_dir");
  std::filesystem::remove_all(partial);
  std::filesystem::create_directories(partial);
  std::filesystem::copy_file(full + "/mcf_rr-_s0.reaptrace",
                             partial + "/mcf_rr-_s0.reaptrace");
  const auto got = run_campaign("store_partial_replay", partial);
  EXPECT_EQ(file_bytes(got.csv), file_bytes(ref.csv));
  EXPECT_EQ(file_bytes(got.jsonl), file_bytes(ref.jsonl));
}

}  // namespace
}  // namespace reap::campaign

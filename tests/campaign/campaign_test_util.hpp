// Shared scaffolding for the campaign test suites: a cheap deterministic
// stand-in for run_experiment, the 24-point acceptance grid, and file
// helpers. One definition so the fake result model cannot silently
// diverge between suites.
#pragma once

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "reap/campaign/spec.hpp"
#include "reap/core/experiment.hpp"

namespace reap::campaign::testutil {

// Cheap stand-in for run_experiment: a pure function of the config that
// still exercises every field the sinks/aggregates read.
inline core::ExperimentResult fake_run(const core::ExperimentConfig& cfg) {
  core::ExperimentResult r;
  r.workload = cfg.workload.name;
  r.policy = cfg.policy;
  r.instructions = cfg.instructions;
  r.cycles = cfg.seed % 100000 + cfg.ecc_t;
  r.ipc = 1.0 + double(cfg.seed % 7) / 10.0;
  r.sim_seconds = 0.001 * double(cfg.seed % 13 + 1);
  r.mttf.failure_prob_sum = 1e-9 * double(cfg.seed % 97 + 1);
  r.mttf.sim_seconds = r.sim_seconds;
  r.mttf.failure_rate_per_s = r.mttf.failure_prob_sum / r.sim_seconds;
  r.mttf.mttf_seconds = 1.0 / r.mttf.failure_rate_per_s;
  r.energy.data_read_j = 1e-6 * double(cfg.seed % 11 + 1);
  r.energy.ecc_decode_j = 1e-7 * double(cfg.ecc_t);
  r.p_rd = 1e-8;
  return r;
}

// The acceptance-criteria grid: 2 workloads x 3 policies x 2 ecc x 2
// seeds = 24 points.
inline CampaignSpec grid_24() {
  CampaignSpec spec;
  spec.workloads = {"mcf", "h264ref"};
  spec.policies = {core::PolicyKind::conventional_parallel,
                   core::PolicyKind::reap,
                   core::PolicyKind::serial_tag_then_data};
  spec.ecc_ts = {1, 2};
  spec.seeds = {0, 1};
  return spec;
}

inline std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

inline std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

}  // namespace reap::campaign::testutil

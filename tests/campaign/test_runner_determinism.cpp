// The campaign determinism contract: a K-thread run is bit-identical to a
// serial run of the same spec -- per-experiment results, emitted rows, and
// rendered aggregates alike.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "campaign_test_util.hpp"
#include "reap/campaign/aggregate.hpp"
#include "reap/campaign/result_sink.hpp"
#include "reap/campaign/runner.hpp"
#include "reap/campaign/spec.hpp"

namespace reap::campaign {
namespace {

using testutil::fake_run;
using testutil::grid_24;

std::string render_run(const CampaignSpec& spec, unsigned threads) {
  const auto points = expand(spec);
  RunnerOptions opts;
  opts.threads = threads;
  opts.run_fn = fake_run;
  const auto results = CampaignRunner(opts).run(points);

  std::ostringstream out;
  for (std::size_t i = 0; i < points.size(); ++i)
    for (const auto& cell : result_cells(points[i], results[i]))
      out << cell << '|';
  const auto agg = aggregate(spec, points, results,
                             core::PolicyKind::conventional_parallel);
  if (agg) out << agg->render();
  return out.str();
}

TEST(CampaignRunner, FourThreadsByteIdenticalToOneThread) {
  const auto spec = grid_24();
  ASSERT_GE(spec.size(), 24u);
  const std::string serial = render_run(spec, 1);
  const std::string parallel = render_run(spec, 4);
  EXPECT_EQ(serial, parallel);
  // More threads than points must also be identical.
  EXPECT_EQ(serial, render_run(spec, 64));
}

TEST(CampaignRunner, RunsEveryPointExactlyOnce) {
  const auto spec = grid_24();
  const auto points = expand(spec);
  std::vector<std::atomic<int>> hits(points.size());
  RunnerOptions opts;
  opts.threads = 8;
  opts.run_fn = [&hits](const core::ExperimentConfig& cfg) {
    // Recover the point index from the instruction count we stash below.
    hits[cfg.instructions]++;
    core::ExperimentResult r;
    return r;
  };
  auto tagged = points;
  for (std::size_t i = 0; i < tagged.size(); ++i)
    tagged[i].config.instructions = i;
  CampaignRunner(opts).run(tagged);
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "point " << i;
}

TEST(CampaignRunner, ResultsIndexedByGridIndex) {
  const auto spec = grid_24();
  const auto points = expand(spec);
  RunnerOptions opts;
  opts.threads = 4;
  opts.run_fn = fake_run;
  const auto results = CampaignRunner(opts).run(points);
  ASSERT_EQ(results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(results[i].workload, points[i].config.workload.name);
    EXPECT_EQ(results[i].policy, points[i].config.policy);
  }
}

TEST(CampaignRunner, ProgressReachesTotal) {
  const auto spec = grid_24();
  const auto points = expand(spec);
  RunnerOptions opts;
  opts.threads = 4;
  opts.run_fn = fake_run;
  std::size_t last_done = 0, calls = 0;
  opts.on_progress = [&](std::size_t done, std::size_t total) {
    ++calls;
    last_done = std::max(last_done, done);
    EXPECT_EQ(total, points.size());
  };
  CampaignRunner(opts).run(points);
  EXPECT_EQ(calls, points.size());
  EXPECT_EQ(last_done, points.size());
}

TEST(CampaignRunner, HandlesEmptyAndTinyGrids) {
  RunnerOptions opts;
  opts.run_fn = fake_run;
  CampaignRunner runner(opts);
  EXPECT_TRUE(runner.run({}).empty());

  CampaignSpec spec;
  spec.workloads = {"mcf"};
  spec.policies = {core::PolicyKind::reap};
  const auto points = expand(spec);
  ASSERT_EQ(points.size(), 1u);
  const auto results = runner.run(points);
  EXPECT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].workload, "mcf");
}

// End-to-end determinism through the real simulator on a tiny grid. This
// is the expensive test in the suite (~a few seconds): real experiments,
// 1 vs 4 threads, byte-compared aggregate reports.
TEST(CampaignRunnerEndToEnd, RealExperimentsDeterministicAcrossThreads) {
  CampaignSpec spec;
  spec.workloads = {"mcf", "h264ref"};
  spec.policies = {core::PolicyKind::conventional_parallel,
                   core::PolicyKind::reap};
  spec.seeds = {0, 1};
  spec.base.instructions = 30'000;
  spec.base.warmup_instructions = 3'000;

  const auto points = expand(spec);
  ASSERT_EQ(points.size(), 8u);

  RunnerOptions serial_opts;
  serial_opts.threads = 1;
  RunnerOptions parallel_opts;
  parallel_opts.threads = 4;

  const auto serial = CampaignRunner(serial_opts).run(points);
  const auto parallel = CampaignRunner(parallel_opts).run(points);

  std::ostringstream a, b;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (const auto& cell : result_cells(points[i], serial[i])) a << cell << '|';
    for (const auto& cell : result_cells(points[i], parallel[i]))
      b << cell << '|';
  }
  const auto agg_a = aggregate(spec, points, serial,
                               core::PolicyKind::conventional_parallel);
  const auto agg_b = aggregate(spec, points, parallel,
                               core::PolicyKind::conventional_parallel);
  ASSERT_TRUE(agg_a && agg_b);
  a << agg_a->render();
  b << agg_b->render();
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace reap::campaign

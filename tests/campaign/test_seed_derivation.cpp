// Seed derivation must be stable across releases: emitted rows record the
// derived seeds, and re-running an old row must reproduce it bit-for-bit.
// The golden values below pin the exact splitmix64 construction.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "reap/campaign/seed.hpp"
#include "reap/campaign/spec.hpp"

namespace reap::campaign {
namespace {

TEST(SeedDerivation, Splitmix64GoldenValues) {
  // Reference vector from the splitmix64 description (state 0 -> first
  // output), plus pins for our derive construction.
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(derive_seed(0x5EEDCA3DULL, 0, 0), 0x2d8096a54dcd5dd6ULL);
  EXPECT_EQ(derive_seed(0x5EEDCA3DULL, 1, 0), 0xb2393a93a02be4e9ULL);
  EXPECT_EQ(derive_seed(0x5EEDCA3DULL, 0, 1), 0x0d872442ae67c46bULL);
  EXPECT_EQ(derive_seed(42, 7, 3), 0x0a4886199ce2300dULL);
  EXPECT_EQ(derive_companion_seed(derive_seed(42, 7, 3)),
            0xd78ab3c06c0719c0ULL);
}

TEST(SeedDerivation, IsAPureFunction) {
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
  EXPECT_EQ(derive_companion_seed(99), derive_companion_seed(99));
}

TEST(SeedDerivation, DistinctAcrossGridIndicesAndReplicas) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t index = 0; index < 256; ++index)
    for (std::uint64_t replica = 0; replica < 4; ++replica)
      seen.insert(derive_seed(0xC0FFEE, index, replica));
  EXPECT_EQ(seen.size(), 256u * 4u);
}

TEST(SeedDerivation, CampaignSeedSelectsDifferentStreams) {
  for (std::uint64_t index = 0; index < 64; ++index)
    EXPECT_NE(derive_seed(1, index, 0), derive_seed(2, index, 0));
}

TEST(SeedDerivation, CompanionSeedDecorrelates) {
  for (std::uint64_t index = 0; index < 64; ++index) {
    const auto s = derive_seed(7, index, 0);
    EXPECT_NE(derive_companion_seed(s), s);
  }
}

// The trace cache keys sharing on CampaignPoint::trace_key, trusting that
// distinct trace keys imply distinct trace *seeds* — a companion-seed
// collision across workloads would make two different workloads replay
// correlated streams and would be invisible in any per-point check. That
// was only implicitly impossible; pin it against the real figure specs so
// a seed-rule change that introduces a collision fails loudly here.
TEST(SeedDerivation, FigureSpecTraceKeysMapToDistinctTraceSeeds) {
  const std::string source_dir = REAP_SOURCE_DIR;
  for (const char* rel : {"/specs/fig5.spec", "/specs/fig6.spec"}) {
    SCOPED_TRACE(rel);
    std::string error;
    const auto kv = parse_spec_file(source_dir + rel, &error);
    ASSERT_TRUE(kv.has_value()) << error;
    const auto spec = CampaignSpec::from_kv(*kv, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    const auto points = expand(*spec);
    ASSERT_FALSE(points.empty());

    // trace_key -> (workload seed, hierarchy seed) must be injective both
    // ways: equal keys share seeds (the paired-comparison contract),
    // distinct keys never collide on either seed.
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> by_key;
    std::map<std::uint64_t, std::string> by_trace_seed;
    for (const auto& pt : points) {
      const auto seeds =
          std::make_pair(pt.config.workload.seed, pt.config.seed);
      const auto [it, fresh] = by_key.emplace(pt.trace_key, seeds);
      if (!fresh) {
        EXPECT_EQ(it->second, seeds) << pt.key;
      }
      const auto [ts, ts_fresh] =
          by_trace_seed.emplace(pt.config.workload.seed, pt.trace_key);
      if (!ts_fresh) {
        EXPECT_EQ(ts->second, pt.trace_key)
            << "companion-seed collision: " << pt.key << " vs "
            << ts->second;
      }
    }
    // The full workload set produces one group per workload here (single
    // seed replica, no ratio axis).
    EXPECT_EQ(by_key.size(), spec->workloads.size());
  }
}

}  // namespace
}  // namespace reap::campaign

// Seed derivation must be stable across releases: emitted rows record the
// derived seeds, and re-running an old row must reproduce it bit-for-bit.
// The golden values below pin the exact splitmix64 construction.
#include <gtest/gtest.h>

#include <set>

#include "reap/campaign/seed.hpp"

namespace reap::campaign {
namespace {

TEST(SeedDerivation, Splitmix64GoldenValues) {
  // Reference vector from the splitmix64 description (state 0 -> first
  // output), plus pins for our derive construction.
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(derive_seed(0x5EEDCA3DULL, 0, 0), 0x2d8096a54dcd5dd6ULL);
  EXPECT_EQ(derive_seed(0x5EEDCA3DULL, 1, 0), 0xb2393a93a02be4e9ULL);
  EXPECT_EQ(derive_seed(0x5EEDCA3DULL, 0, 1), 0x0d872442ae67c46bULL);
  EXPECT_EQ(derive_seed(42, 7, 3), 0x0a4886199ce2300dULL);
  EXPECT_EQ(derive_companion_seed(derive_seed(42, 7, 3)),
            0xd78ab3c06c0719c0ULL);
}

TEST(SeedDerivation, IsAPureFunction) {
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
  EXPECT_EQ(derive_companion_seed(99), derive_companion_seed(99));
}

TEST(SeedDerivation, DistinctAcrossGridIndicesAndReplicas) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t index = 0; index < 256; ++index)
    for (std::uint64_t replica = 0; replica < 4; ++replica)
      seen.insert(derive_seed(0xC0FFEE, index, replica));
  EXPECT_EQ(seen.size(), 256u * 4u);
}

TEST(SeedDerivation, CampaignSeedSelectsDifferentStreams) {
  for (std::uint64_t index = 0; index < 64; ++index)
    EXPECT_NE(derive_seed(1, index, 0), derive_seed(2, index, 0));
}

TEST(SeedDerivation, CompanionSeedDecorrelates) {
  for (std::uint64_t index = 0; index < 64; ++index) {
    const auto s = derive_seed(7, index, 0);
    EXPECT_NE(derive_companion_seed(s), s);
  }
}

}  // namespace
}  // namespace reap::campaign

// Execution journal: round trip, torn-tail tolerance, per-row CRC
// classification (torn vs corrupt), v1 compatibility, append/rewrite,
// compatibility checks, row merging, and the progress line.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <fstream>

#include "reap/campaign/journal.hpp"
#include "reap/campaign/progress.hpp"
#include "reap/campaign/spec.hpp"
#include "reap/common/fault.hpp"

namespace reap::campaign {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.workloads = {"mcf", "h264ref"};
  spec.policies = {core::PolicyKind::conventional_parallel,
                   core::PolicyKind::reap};
  spec.seeds = {0, 1};
  return spec;
}

// A rendered row does not need a real experiment: any cell vector aligned
// with result_header() journals fine. Cell 0 must be the grid index.
std::vector<std::string> fake_cells(std::size_t index) {
  std::vector<std::string> cells(result_header().size(), "0");
  cells[0] = std::to_string(index);
  cells[1] = "mcf";                        // workload
  cells.back() = "workload=mcf seed=" + std::to_string(index);  // config
  return cells;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::string> file_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const auto& line : lines) out << line << "\n";
}

TEST(Journal, HeaderAndRowsRoundTrip) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_roundtrip.jsonl");
  const auto header = JournalHeader::for_run(spec, 8, 1, 2);
  {
    JournalWriter writer(path, header);
    ASSERT_TRUE(writer.ok());
    writer.add("mcf/reap/t1/sc-/rr-/s0", fake_cells(4));
    writer.add("mcf/reap/t1/sc-/rr-/s1", fake_cells(6));
  }
  std::string error;
  const auto journal = read_journal(path, &error);
  ASSERT_TRUE(journal) << error;
  EXPECT_FALSE(journal->truncated_tail);
  EXPECT_EQ(journal->header.name, spec.name);
  EXPECT_EQ(journal->header.spec_hash, spec_hash(spec));
  EXPECT_EQ(journal->header.points, 8u);
  EXPECT_EQ(journal->header.shard_index, 1u);
  EXPECT_EQ(journal->header.shard_count, 2u);
  EXPECT_EQ(journal->header.columns, result_header());
  ASSERT_EQ(journal->rows.size(), 2u);
  EXPECT_EQ(journal->rows[0].key, "mcf/reap/t1/sc-/rr-/s0");
  EXPECT_EQ(journal->rows[0].index, 4u);
  EXPECT_EQ(journal->rows[0].cells, fake_cells(4));
  EXPECT_EQ(journal->rows[1].index, 6u);
  std::remove(path.c_str());
}

TEST(Journal, ToleratesTornFinalLine) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_torn.jsonl");
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
    writer.add("k1", fake_cells(1));
  }
  {
    // A mid-write kill leaves an unterminated fragment.
    std::ofstream out(path, std::ios::app);
    out << "{\"key\":\"k2\",\"index\":2,\"work";
  }
  std::string error;
  const auto journal = read_journal(path, &error);
  ASSERT_TRUE(journal) << error;
  EXPECT_TRUE(journal->truncated_tail);
  ASSERT_EQ(journal->rows.size(), 2u);
  EXPECT_EQ(journal->rows[1].key, "k1");
}

// Mid-file damage no longer poisons the whole journal: the reader
// classifies each row and reports the damaged lines so resume can heal
// them and re-run exactly the lost rows.
TEST(Journal, ClassifiesMidFileGarbageAsCorruptAndKeepsGoodRows) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_corrupt.jsonl");
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "garbage mid-file\n";
  }
  {
    JournalWriter writer(path);  // append a valid row after the damage
    writer.add("k1", fake_cells(1));
  }
  std::string error;
  const auto journal = read_journal(path, &error);
  ASSERT_TRUE(journal) << error;
  EXPECT_FALSE(journal->truncated_tail);
  ASSERT_EQ(journal->rows.size(), 2u);
  EXPECT_EQ(journal->rows[0].key, "k0");
  EXPECT_EQ(journal->rows[1].key, "k1");
  ASSERT_EQ(journal->corrupt.size(), 1u);
  EXPECT_EQ(journal->corrupt[0].line_no, 3u);  // header=1, k0=2
  EXPECT_EQ(journal->corrupt[0].reason, "malformed row");

  // Healing drops the damaged line for good.
  ASSERT_TRUE(rewrite_journal(path, *journal, &error)) << error;
  const auto healed = read_journal(path, &error);
  ASSERT_TRUE(healed) << error;
  EXPECT_TRUE(healed->corrupt.empty());
  EXPECT_EQ(healed->rows.size(), 2u);
  std::remove(path.c_str());
}

// Every v2 row carries a CRC32C suffix; a single flipped bit inside a
// structurally valid row is caught by the checksum, not mistaken for a
// torn tail -- even when it is the final line.
TEST(Journal, BitFlippedRowFailsItsChecksumAndIsReported) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_bitflip.jsonl");
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
    writer.add("k1", fake_cells(1));
    writer.add("k2", fake_cells(2));
  }
  auto lines = file_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  // The on-disk format pin: rows end with the checksum suffix.
  EXPECT_NE(lines[2].rfind(",\"crc\":\""), std::string::npos) << lines[2];
  // Flip one payload byte of row k1: still perfectly valid JSON.
  const auto at = lines[2].find("mcf");
  ASSERT_NE(at, std::string::npos);
  lines[2].replace(at, 3, "mcg");
  write_lines(path, lines);

  std::string error;
  const auto journal = read_journal(path, &error);
  ASSERT_TRUE(journal) << error;
  EXPECT_FALSE(journal->truncated_tail);
  ASSERT_EQ(journal->rows.size(), 2u);
  EXPECT_EQ(journal->rows[0].key, "k0");
  EXPECT_EQ(journal->rows[1].key, "k2");
  ASSERT_EQ(journal->corrupt.size(), 1u);
  EXPECT_EQ(journal->corrupt[0].line_no, 3u);
  EXPECT_EQ(journal->corrupt[0].reason, "CRC mismatch");

  // Same damage on the *last* line (k1 is still damaged too):
  // corruption, not a tear, even at the tail.
  lines = file_lines(path);
  {
    const auto pos = lines.back().find("mcf");
    ASSERT_NE(pos, std::string::npos);
    lines.back().replace(pos, 3, "mcg");
  }
  write_lines(path, lines);
  const auto again = read_journal(path, &error);
  ASSERT_TRUE(again) << error;
  EXPECT_FALSE(again->truncated_tail);
  ASSERT_EQ(again->corrupt.size(), 2u);
  EXPECT_EQ(again->corrupt[1].line_no, 4u);
  EXPECT_EQ(again->corrupt[1].reason, "CRC mismatch");
  std::remove(path.c_str());
}

// A row truncated in the *middle* of the file (a partial overwrite, not
// a mid-write kill) is corruption; only a torn FINAL line is a tail.
TEST(Journal, TruncatedMiddleRowIsCorruptNotATornTail) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_midtrunc.jsonl");
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
    writer.add("k1", fake_cells(1));
    writer.add("k2", fake_cells(2));
  }
  auto lines = file_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  lines[2] = lines[2].substr(0, lines[2].size() / 2);
  write_lines(path, lines);

  std::string error;
  const auto journal = read_journal(path, &error);
  ASSERT_TRUE(journal) << error;
  EXPECT_FALSE(journal->truncated_tail);
  ASSERT_EQ(journal->rows.size(), 2u);
  EXPECT_EQ(journal->rows[1].key, "k2");
  ASSERT_EQ(journal->corrupt.size(), 1u);
  EXPECT_EQ(journal->corrupt[0].line_no, 3u);
  std::remove(path.c_str());
}

// A duplicated row (a replayed write, a copy-paste repair) parses fine;
// dedup is the merge layer's job, and it keeps the first occurrence.
TEST(Journal, DuplicatedRowIsDedupedByTheMergeNotTheReader) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_dup.jsonl");
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
    writer.add("k1", fake_cells(1));
  }
  auto lines = file_lines(path);
  lines.push_back(lines[2]);  // duplicate k0, checksum intact
  write_lines(path, lines);

  std::string error;
  const auto journal = read_journal(path, &error);
  ASSERT_TRUE(journal) << error;
  EXPECT_TRUE(journal->corrupt.empty());
  ASSERT_EQ(journal->rows.size(), 3u);  // the reader reports what is there
  const auto merged = merge_journal_rows(journal->rows, {});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].key, "k0");
  EXPECT_EQ(merged[1].key, "k1");
  std::remove(path.c_str());
}

// v1 journals (pre-CRC) remain readable -- rows are self-describing --
// and a rewrite upgrades the file to checksummed v2.
TEST(Journal, V1FilesStayReadableAndRewriteUpgradesToV2) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_v1.jsonl");
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
    writer.add("k1", fake_cells(1));
  }
  // Regress the file to v1 by hand: v1 header tag, rows without the
  // checksum suffix (the v1 serialization is exactly the CRC'd body).
  auto lines = file_lines(path);
  const auto tag = lines[0].find("reap-journal-v2");
  ASSERT_NE(tag, std::string::npos);
  lines[0].replace(tag, 15, "reap-journal-v1");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto crc = lines[i].rfind(",\"crc\":\"");
    ASSERT_NE(crc, std::string::npos);
    lines[i] = lines[i].substr(0, crc) + "}";
  }
  write_lines(path, lines);

  std::string error;
  const auto journal = read_journal(path, &error);
  ASSERT_TRUE(journal) << error;
  EXPECT_TRUE(journal->corrupt.empty());
  ASSERT_EQ(journal->rows.size(), 2u);
  EXPECT_EQ(journal->rows[0].cells, fake_cells(0));

  ASSERT_TRUE(rewrite_journal(path, *journal, &error)) << error;
  const auto header = read_journal_header(path, &error);
  ASSERT_TRUE(header) << error;
  EXPECT_EQ(header->format, "reap-journal-v2");
  const auto upgraded = file_lines(path);
  for (std::size_t i = 1; i < upgraded.size(); ++i)
    EXPECT_NE(upgraded[i].rfind(",\"crc\":\""), std::string::npos);
  std::remove(path.c_str());
}

// Injected journal I/O faults surface as a sticky errno: the first
// failed append records the cause and every later add() is a no-op, so
// the on-disk journal stays a clean durable prefix.
TEST(Journal, InjectedIoFaultMakesTheWriterStickyWithItsErrno) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_eio.jsonl");
  common::fault::disarm();
  ASSERT_TRUE(common::fault::arm("journal.write:eio:2"));
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
    EXPECT_EQ(writer.io_errno(), 0);
    writer.add("k1", fake_cells(1));  // injected EIO: row not written
    EXPECT_EQ(writer.io_errno(), EIO);
    writer.add("k2", fake_cells(2));  // sticky: no-op
    EXPECT_EQ(writer.io_errno(), EIO);
  }
  common::fault::disarm();
  const auto journal = read_journal(path);
  ASSERT_TRUE(journal);
  EXPECT_TRUE(journal->corrupt.empty());
  ASSERT_EQ(journal->rows.size(), 1u);
  EXPECT_EQ(journal->rows[0].key, "k0");

  ASSERT_TRUE(common::fault::arm("journal.fsync:enospc:1"));
  {
    JournalWriter writer(path);
    writer.add("k1", fake_cells(1));  // lands, then the flush "fails"
    EXPECT_EQ(writer.io_errno(), ENOSPC);
  }
  common::fault::disarm();
  std::remove(path.c_str());
}

TEST(Journal, AppendModeContinuesAnExistingFile) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_append.jsonl");
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
  }
  {
    JournalWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.add("k1", fake_cells(1));
  }
  const auto journal = read_journal(path);
  ASSERT_TRUE(journal);
  ASSERT_EQ(journal->rows.size(), 2u);
  EXPECT_EQ(journal->rows[1].key, "k1");
  std::remove(path.c_str());
}

TEST(Journal, RewriteDropsTornTailSoAppendsStayClean) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_rewrite.jsonl");
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"key\":\"torn";  // no newline
  }
  auto journal = read_journal(path);
  ASSERT_TRUE(journal && journal->truncated_tail);
  std::string error;
  ASSERT_TRUE(rewrite_journal(path, *journal, &error)) << error;
  {
    JournalWriter writer(path);  // appending after rewrite must be safe
    writer.add("k1", fake_cells(1));
  }
  const auto again = read_journal(path, &error);
  ASSERT_TRUE(again) << error;
  EXPECT_FALSE(again->truncated_tail);
  ASSERT_EQ(again->rows.size(), 2u);
  EXPECT_EQ(again->rows[0].key, "k0");
  EXPECT_EQ(again->rows[1].key, "k1");
  std::remove(path.c_str());
}

TEST(Journal, CompatibilityRefusesADifferentCampaign) {
  const auto spec = small_spec();
  const auto header = JournalHeader::for_run(spec, 8, 1, 2);
  std::string why;
  EXPECT_TRUE(journal_compatible(header, spec, 8, 1, 2, &why)) << why;

  auto grown = spec;
  grown.seeds = {0, 1, 2};  // different grid
  EXPECT_FALSE(journal_compatible(header, grown, 12, 1, 2, &why));
  EXPECT_NE(why.find("different spec"), std::string::npos);

  auto reseeded = spec;
  reseeded.campaign_seed ^= 1;  // same shape, different traces
  EXPECT_FALSE(journal_compatible(header, reseeded, 8, 1, 2, &why));

  auto retuned = spec;
  retuned.base.instructions += 1;  // binary-relevant base config
  EXPECT_FALSE(journal_compatible(header, retuned, 8, 1, 2, &why));

  EXPECT_FALSE(journal_compatible(header, spec, 8, 0, 2, &why));
  EXPECT_NE(why.find("shard"), std::string::npos);
  EXPECT_FALSE(journal_compatible(header, spec, 8, 1, 4, &why));
}

TEST(Journal, MergeRowsDedupesByKeyAndSortsByIndex) {
  std::vector<JournalRow> a = {{"k5", 5, fake_cells(5)},
                               {"k1", 1, fake_cells(1)}};
  std::vector<JournalRow> b = {{"k1", 1, fake_cells(999)},  // dup key: dropped
                               {"k3", 3, fake_cells(3)}};
  const auto merged = merge_journal_rows(a, b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].index, 1u);
  EXPECT_EQ(merged[0].cells, fake_cells(1));  // first occurrence won
  EXPECT_EQ(merged[1].index, 3u);
  EXPECT_EQ(merged[2].index, 5u);
}

TEST(JournalTailer, ReportsRowsIncrementallyAndHoldsBackTornTail) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_tail.jsonl");
  std::remove(path.c_str());

  JournalTailer tailer(path);
  EXPECT_TRUE(tailer.poll().empty());  // no file yet
  EXPECT_EQ(tailer.rows_seen(), 0u);

  JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
  EXPECT_TRUE(tailer.poll().empty());  // header only: no rows
  writer.add("k0", fake_cells(0));
  writer.add("k1", fake_cells(1));
  EXPECT_EQ(tailer.poll(), (std::vector<std::string>{"k0", "k1"}));
  EXPECT_TRUE(tailer.poll().empty());  // nothing new

  {
    std::ofstream torn(path, std::ios::app);
    torn << "{\"key\":\"k2\",\"ind";  // in-flight line, no newline yet
  }
  EXPECT_TRUE(tailer.poll().empty());  // torn tail is not a row yet
  {
    std::ofstream torn(path, std::ios::app);
    torn << "ex\":2}\n";  // the rest of the line lands
  }
  EXPECT_EQ(tailer.poll(), (std::vector<std::string>{"k2"}));
  EXPECT_EQ(tailer.rows_seen(), 3u);
  std::remove(path.c_str());
}

// The live tailer applies the same checksum discipline as the reader: a
// damaged row is not progress, and a duplicated row counts once.
TEST(JournalTailer, SkipsChecksumFailuresAndCountsDuplicatesOnce) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_tail_crc.jsonl");
  std::remove(path.c_str());
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
    writer.add("k1", fake_cells(1));
  }
  auto lines = file_lines(path);
  {
    const auto at = lines[1].find("mcf");  // flip a byte of k0's row
    ASSERT_NE(at, std::string::npos);
    lines[1].replace(at, 3, "mcg");
  }
  lines.push_back(lines[2]);  // and duplicate k1's row verbatim
  write_lines(path, lines);

  JournalTailer tailer(path);
  EXPECT_EQ(tailer.poll(), (std::vector<std::string>{"k1"}));
  EXPECT_EQ(tailer.rows_seen(), 1u);
  std::remove(path.c_str());
}

TEST(JournalTailer, SurvivesResumeStyleShrinkWithoutDoubleCounting) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_tail_shrink.jsonl");
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
    writer.add("k1", fake_cells(1));
    std::ofstream torn(path, std::ios::app);
    torn << "{\"key\":\"torn";
  }
  JournalTailer tailer(path);
  EXPECT_EQ(tailer.poll().size(), 2u);

  // A resuming worker rewrites the journal without the torn tail (the
  // file shrinks), then appends fresh rows.
  auto journal = read_journal(path);
  ASSERT_TRUE(journal && journal->truncated_tail);
  std::string error;
  ASSERT_TRUE(rewrite_journal(path, *journal, &error)) << error;
  {
    JournalWriter writer(path);
    writer.add("k2", fake_cells(2));
  }
  EXPECT_EQ(tailer.poll(), (std::vector<std::string>{"k2"}));
  EXPECT_EQ(tailer.rows_seen(), 3u);
  std::remove(path.c_str());
}

TEST(Progress, ReportsRateElapsedAndEta) {
  const auto path = temp_path("progress_out.txt");
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  {
    ProgressReporter progress(out);
    progress(1, 2);
    progress(2, 2);  // final update always prints
  }
  std::fclose(out);
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("rows/s"), std::string::npos);
  EXPECT_NE(text.find("elapsed"), std::string::npos);
  EXPECT_NE(text.find("eta"), std::string::npos);
  EXPECT_NE(text.find("2/2 (100%)"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace reap::campaign

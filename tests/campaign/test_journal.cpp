// Execution journal: round trip, torn-tail tolerance, append/rewrite,
// compatibility checks, row merging, and the progress line.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "reap/campaign/journal.hpp"
#include "reap/campaign/progress.hpp"
#include "reap/campaign/spec.hpp"

namespace reap::campaign {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.workloads = {"mcf", "h264ref"};
  spec.policies = {core::PolicyKind::conventional_parallel,
                   core::PolicyKind::reap};
  spec.seeds = {0, 1};
  return spec;
}

// A rendered row does not need a real experiment: any cell vector aligned
// with result_header() journals fine. Cell 0 must be the grid index.
std::vector<std::string> fake_cells(std::size_t index) {
  std::vector<std::string> cells(result_header().size(), "0");
  cells[0] = std::to_string(index);
  cells[1] = "mcf";                        // workload
  cells.back() = "workload=mcf seed=" + std::to_string(index);  // config
  return cells;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Journal, HeaderAndRowsRoundTrip) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_roundtrip.jsonl");
  const auto header = JournalHeader::for_run(spec, 8, 1, 2);
  {
    JournalWriter writer(path, header);
    ASSERT_TRUE(writer.ok());
    writer.add("mcf/reap/t1/sc-/rr-/s0", fake_cells(4));
    writer.add("mcf/reap/t1/sc-/rr-/s1", fake_cells(6));
  }
  std::string error;
  const auto journal = read_journal(path, &error);
  ASSERT_TRUE(journal) << error;
  EXPECT_FALSE(journal->truncated_tail);
  EXPECT_EQ(journal->header.name, spec.name);
  EXPECT_EQ(journal->header.spec_hash, spec_hash(spec));
  EXPECT_EQ(journal->header.points, 8u);
  EXPECT_EQ(journal->header.shard_index, 1u);
  EXPECT_EQ(journal->header.shard_count, 2u);
  EXPECT_EQ(journal->header.columns, result_header());
  ASSERT_EQ(journal->rows.size(), 2u);
  EXPECT_EQ(journal->rows[0].key, "mcf/reap/t1/sc-/rr-/s0");
  EXPECT_EQ(journal->rows[0].index, 4u);
  EXPECT_EQ(journal->rows[0].cells, fake_cells(4));
  EXPECT_EQ(journal->rows[1].index, 6u);
  std::remove(path.c_str());
}

TEST(Journal, ToleratesTornFinalLine) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_torn.jsonl");
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
    writer.add("k1", fake_cells(1));
  }
  {
    // A mid-write kill leaves an unterminated fragment.
    std::ofstream out(path, std::ios::app);
    out << "{\"key\":\"k2\",\"index\":2,\"work";
  }
  std::string error;
  const auto journal = read_journal(path, &error);
  ASSERT_TRUE(journal) << error;
  EXPECT_TRUE(journal->truncated_tail);
  ASSERT_EQ(journal->rows.size(), 2u);
  EXPECT_EQ(journal->rows[1].key, "k1");
}

TEST(Journal, RejectsCorruptionBeforeTheTail) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_corrupt.jsonl");
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "garbage mid-file\n";
  }
  {
    JournalWriter writer(path);  // append a valid row after the damage
    writer.add("k1", fake_cells(1));
  }
  std::string error;
  EXPECT_FALSE(read_journal(path, &error));
  EXPECT_NE(error.find("corrupt"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Journal, AppendModeContinuesAnExistingFile) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_append.jsonl");
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
  }
  {
    JournalWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.add("k1", fake_cells(1));
  }
  const auto journal = read_journal(path);
  ASSERT_TRUE(journal);
  ASSERT_EQ(journal->rows.size(), 2u);
  EXPECT_EQ(journal->rows[1].key, "k1");
  std::remove(path.c_str());
}

TEST(Journal, RewriteDropsTornTailSoAppendsStayClean) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_rewrite.jsonl");
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"key\":\"torn";  // no newline
  }
  auto journal = read_journal(path);
  ASSERT_TRUE(journal && journal->truncated_tail);
  std::string error;
  ASSERT_TRUE(rewrite_journal(path, *journal, &error)) << error;
  {
    JournalWriter writer(path);  // appending after rewrite must be safe
    writer.add("k1", fake_cells(1));
  }
  const auto again = read_journal(path, &error);
  ASSERT_TRUE(again) << error;
  EXPECT_FALSE(again->truncated_tail);
  ASSERT_EQ(again->rows.size(), 2u);
  EXPECT_EQ(again->rows[0].key, "k0");
  EXPECT_EQ(again->rows[1].key, "k1");
  std::remove(path.c_str());
}

TEST(Journal, CompatibilityRefusesADifferentCampaign) {
  const auto spec = small_spec();
  const auto header = JournalHeader::for_run(spec, 8, 1, 2);
  std::string why;
  EXPECT_TRUE(journal_compatible(header, spec, 8, 1, 2, &why)) << why;

  auto grown = spec;
  grown.seeds = {0, 1, 2};  // different grid
  EXPECT_FALSE(journal_compatible(header, grown, 12, 1, 2, &why));
  EXPECT_NE(why.find("different spec"), std::string::npos);

  auto reseeded = spec;
  reseeded.campaign_seed ^= 1;  // same shape, different traces
  EXPECT_FALSE(journal_compatible(header, reseeded, 8, 1, 2, &why));

  auto retuned = spec;
  retuned.base.instructions += 1;  // binary-relevant base config
  EXPECT_FALSE(journal_compatible(header, retuned, 8, 1, 2, &why));

  EXPECT_FALSE(journal_compatible(header, spec, 8, 0, 2, &why));
  EXPECT_NE(why.find("shard"), std::string::npos);
  EXPECT_FALSE(journal_compatible(header, spec, 8, 1, 4, &why));
}

TEST(Journal, MergeRowsDedupesByKeyAndSortsByIndex) {
  std::vector<JournalRow> a = {{"k5", 5, fake_cells(5)},
                               {"k1", 1, fake_cells(1)}};
  std::vector<JournalRow> b = {{"k1", 1, fake_cells(999)},  // dup key: dropped
                               {"k3", 3, fake_cells(3)}};
  const auto merged = merge_journal_rows(a, b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].index, 1u);
  EXPECT_EQ(merged[0].cells, fake_cells(1));  // first occurrence won
  EXPECT_EQ(merged[1].index, 3u);
  EXPECT_EQ(merged[2].index, 5u);
}

TEST(JournalTailer, ReportsRowsIncrementallyAndHoldsBackTornTail) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_tail.jsonl");
  std::remove(path.c_str());

  JournalTailer tailer(path);
  EXPECT_TRUE(tailer.poll().empty());  // no file yet
  EXPECT_EQ(tailer.rows_seen(), 0u);

  JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
  EXPECT_TRUE(tailer.poll().empty());  // header only: no rows
  writer.add("k0", fake_cells(0));
  writer.add("k1", fake_cells(1));
  EXPECT_EQ(tailer.poll(), (std::vector<std::string>{"k0", "k1"}));
  EXPECT_TRUE(tailer.poll().empty());  // nothing new

  {
    std::ofstream torn(path, std::ios::app);
    torn << "{\"key\":\"k2\",\"ind";  // in-flight line, no newline yet
  }
  EXPECT_TRUE(tailer.poll().empty());  // torn tail is not a row yet
  {
    std::ofstream torn(path, std::ios::app);
    torn << "ex\":2}\n";  // the rest of the line lands
  }
  EXPECT_EQ(tailer.poll(), (std::vector<std::string>{"k2"}));
  EXPECT_EQ(tailer.rows_seen(), 3u);
  std::remove(path.c_str());
}

TEST(JournalTailer, SurvivesResumeStyleShrinkWithoutDoubleCounting) {
  const auto spec = small_spec();
  const auto path = temp_path("journal_tail_shrink.jsonl");
  {
    JournalWriter writer(path, JournalHeader::for_run(spec, 8, 0, 1));
    writer.add("k0", fake_cells(0));
    writer.add("k1", fake_cells(1));
    std::ofstream torn(path, std::ios::app);
    torn << "{\"key\":\"torn";
  }
  JournalTailer tailer(path);
  EXPECT_EQ(tailer.poll().size(), 2u);

  // A resuming worker rewrites the journal without the torn tail (the
  // file shrinks), then appends fresh rows.
  auto journal = read_journal(path);
  ASSERT_TRUE(journal && journal->truncated_tail);
  std::string error;
  ASSERT_TRUE(rewrite_journal(path, *journal, &error)) << error;
  {
    JournalWriter writer(path);
    writer.add("k2", fake_cells(2));
  }
  EXPECT_EQ(tailer.poll(), (std::vector<std::string>{"k2"}));
  EXPECT_EQ(tailer.rows_seen(), 3u);
  std::remove(path.c_str());
}

TEST(Progress, ReportsRateElapsedAndEta) {
  const auto path = temp_path("progress_out.txt");
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  {
    ProgressReporter progress(out);
    progress(1, 2);
    progress(2, 2);  // final update always prints
  }
  std::fclose(out);
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("rows/s"), std::string::npos);
  EXPECT_NE(text.find("elapsed"), std::string::npos);
  EXPECT_NE(text.find("eta"), std::string::npos);
  EXPECT_NE(text.find("2/2 (100%)"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace reap::campaign

// Dispatcher fault paths, driven against the real reap_campaign binary
// (REAP_CAMPAIGN_BIN, baked in by CMake): a healthy pool merges to output
// byte-identical to a single-process run; a worker killed mid-shard is
// restarted with --resume and changes nothing; a pre-existing torn
// journal resumes instead of re-running; a persistently dying worker gets
// its shard reassigned to another slot and then fails the dispatch with
// its log named; an exit-0 worker that journaled nothing counts as a
// failure, not a success.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <map>
#include <vector>

#include "campaign_test_util.hpp"
#include "reap/campaign/dispatch.hpp"
#include "reap/campaign/journal.hpp"
#include "reap/campaign/result_sink.hpp"
#include "reap/common/subprocess.hpp"

namespace reap::campaign {
namespace {

using testutil::file_bytes;
using testutil::temp_path;

// 2 workloads x 2 policies x 2 seeds = 8 points. `instructions` scales
// per-point runtime: ~20k runs in a few ms (fast-path tests), a few
// hundred k gives a kill window of many poll intervals.
std::map<std::string, std::string> spec_kv(std::uint64_t instructions) {
  return {{"name", "dispatch-test"},
          {"workloads", "mcf,h264ref"},
          {"policies", "conventional,reap"},
          {"seeds", "0,1"},
          {"instructions", std::to_string(instructions)},
          {"warmup", "2000"}};
}

// A fresh work dir per test so journals cannot leak across tests.
std::string fresh_dir(const char* name) {
  const auto dir = temp_path(name);
  std::filesystem::remove_all(dir);
  return dir;
}

// Single-process reference run of the same spec via the real binary.
std::string reference_csv(const std::map<std::string, std::string>& kv,
                          const char* name) {
  const auto csv = temp_path(name);
  std::vector<std::string> argv = {REAP_CAMPAIGN_BIN};
  for (const auto& [k, v] : kv) argv.push_back("--" + k + "=" + v);
  argv.push_back("--threads=2");
  argv.push_back("--csv=" + csv);
  argv.push_back("--baseline=none");
  argv.push_back("--quiet");
  auto child = common::Child::spawn(argv, "");
  EXPECT_TRUE(child);
  if (child) {
    EXPECT_TRUE(child->wait().success());
  }
  return csv;
}

DispatchOptions base_opts(const std::string& work_dir) {
  DispatchOptions opts;
  opts.campaign_binary = REAP_CAMPAIGN_BIN;
  opts.work_dir = work_dir;
  opts.workers = 2;
  opts.poll_interval = std::chrono::milliseconds(5);
  return opts;
}

std::string merged_csv_of(const DispatchResult& result, const char* name) {
  std::string error;
  const auto merged = merge_dispatch_journals(result.journal_paths(), &error);
  EXPECT_TRUE(merged) << error;
  EXPECT_TRUE(covers_all_indices(*merged));
  const auto path = temp_path(name);
  CsvResultSink csv(path);
  for (const auto& row : merged->rows) csv.add_cells(row);
  return path;
}

TEST(Dispatch, MergedOutputByteIdenticalToSingleProcess) {
  const auto kv = spec_kv(20000);
  const auto ref = reference_csv(kv, "dispatch_ref.csv");

  auto opts = base_opts(fresh_dir("dispatch_ok"));
  opts.jobs = 3;  // more shards than workers: exercises queue backfill
  std::size_t last_done = 0, last_total = 0;
  opts.on_progress = [&](std::size_t done, std::size_t total) {
    last_done = done;
    last_total = total;
  };
  const auto result = Dispatcher(kv, opts).run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.points, 8u);
  EXPECT_EQ(result.restarts, 0u);
  EXPECT_EQ(last_done, 8u);
  EXPECT_EQ(last_total, 8u);
  ASSERT_EQ(result.shards.size(), 3u);
  std::size_t rows = 0;
  for (const auto& s : result.shards) {
    EXPECT_TRUE(s.completed);
    EXPECT_EQ(s.attempts, 1u);
    rows += s.rows;
  }
  EXPECT_EQ(rows, 8u);

  const auto merged = merged_csv_of(result, "dispatch_merged.csv");
  EXPECT_EQ(file_bytes(ref), file_bytes(merged));
}

TEST(Dispatch, WorkerKilledMidShardResumesAndOutputUnchanged) {
  // ~45 ms per point, 4 points per shard: the first row lands with most
  // of the shard still to run, so the SIGKILL below is mid-shard by many
  // poll intervals.
  const auto kv = spec_kv(600000);
  const auto ref = reference_csv(kv, "dispatch_kill_ref.csv");

  auto opts = base_opts(fresh_dir("dispatch_kill"));
  std::map<std::size_t, long> pid_of_shard;
  std::map<std::size_t, std::size_t> attempt_of_shard;
  opts.on_spawn = [&](std::size_t shard, std::size_t attempt,
                      std::size_t /*slot*/, long pid) {
    pid_of_shard[shard] = pid;
    attempt_of_shard[shard] = attempt;
  };
  bool killed = false;
  opts.on_shard_rows = [&](std::size_t shard, std::size_t rows) {
    if (shard == 1 && rows >= 1 && attempt_of_shard[1] == 0 && !killed) {
      killed = true;
      ::kill(static_cast<pid_t>(pid_of_shard[1]), SIGKILL);
    }
  };
  const auto result = Dispatcher(kv, opts).run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(killed);
  EXPECT_GE(result.restarts, 1u);
  ASSERT_EQ(result.shards.size(), 2u);
  EXPECT_EQ(result.shards[1].attempts, 2u);
  EXPECT_TRUE(result.shards[1].completed);

  // The restarted worker resumed the journal rather than starting over:
  // its log records both the fresh start and the resume.
  const auto log = file_bytes(result.shards[1].log_path);
  EXPECT_NE(log.find("resuming:"), std::string::npos) << log;

  const auto merged = merged_csv_of(result, "dispatch_kill_merged.csv");
  EXPECT_EQ(file_bytes(ref), file_bytes(merged));
}

TEST(Dispatch, ResumesPreexistingTornJournalWithoutRerunningRows) {
  const auto kv = spec_kv(20000);
  const auto ref = reference_csv(kv, "dispatch_resume_ref.csv");
  const auto dir = fresh_dir("dispatch_resume");

  // First dispatch completes and leaves full journals behind.
  const auto first = Dispatcher(kv, base_opts(dir)).run();
  ASSERT_TRUE(first.ok) << first.error;

  // Cut shard 0's journal down to header + one completed row + a torn
  // fragment -- the on-disk state a machine crash leaves.
  const auto journal_path = first.shards[0].journal_path;
  auto journal = read_journal(journal_path);
  ASSERT_TRUE(journal);
  ASSERT_GE(journal->rows.size(), 2u);
  journal->rows.resize(1);
  std::string error;
  ASSERT_TRUE(rewrite_journal(journal_path, *journal, &error)) << error;
  {
    std::ofstream torn(journal_path, std::ios::app);
    torn << "{\"key\":\"torn-mid-write";
  }
  std::filesystem::remove(first.shards[0].log_path);

  // Re-dispatch over the same work dir: shard 0 resumes past its one
  // journaled row, shard 1 finds its journal complete and runs nothing.
  const auto second = Dispatcher(kv, base_opts(dir)).run();
  ASSERT_TRUE(second.ok) << second.error;
  const auto log = file_bytes(second.shards[0].log_path);
  EXPECT_NE(log.find("resuming: 1 of"), std::string::npos) << log;
  EXPECT_NE(log.find("torn line"), std::string::npos) << log;

  const auto merged = merged_csv_of(second, "dispatch_resume_merged.csv");
  EXPECT_EQ(file_bytes(ref), file_bytes(merged));
}

TEST(Dispatch, RerunAdoptsTheJournalsShardSplitAndRefusesOtherSpecs) {
  const auto kv = spec_kv(20000);
  const auto ref = reference_csv(kv, "dispatch_adopt_ref.csv");
  const auto dir = fresh_dir("dispatch_adopt");

  auto opts = base_opts(dir);
  opts.jobs = 2;
  ASSERT_TRUE(Dispatcher(kv, opts).run().ok);

  // Re-running with a different shard plan must adopt the 2-way split
  // the journals record (shards are meaningless under a different N):
  // nothing re-runs, and the merge still matches.
  opts.jobs = 3;
  const auto rerun = Dispatcher(kv, opts).run();
  ASSERT_TRUE(rerun.ok) << rerun.error;
  EXPECT_EQ(rerun.shards.size(), 2u);
  EXPECT_EQ(rerun.restarts, 0u);
  const auto merged = merged_csv_of(rerun, "dispatch_adopt_merged.csv");
  EXPECT_EQ(file_bytes(ref), file_bytes(merged));

  // A different spec over the same work dir fails fast, before any
  // worker burns its attempts on 'cannot resume' exits.
  auto other = kv;
  other["seeds"] = "0,1,2";
  const auto refused = Dispatcher(other, opts).run();
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.error.find("different spec"), std::string::npos)
      << refused.error;
  EXPECT_NE(refused.error.find("--work-dir"), std::string::npos);

  // So does a *mixed* work dir where only a later shard's journal is
  // stale (the scan validates every journal, not just the first).
  const auto other_spec = CampaignSpec::from_kv(other);
  ASSERT_TRUE(other_spec);
  {
    JournalWriter stale(dir + "/shard_1.journal",
                        JournalHeader::for_run(*other_spec, 12, 1, 2));
  }
  const auto mixed = Dispatcher(kv, opts).run();
  EXPECT_FALSE(mixed.ok);
  EXPECT_NE(mixed.error.find("different spec"), std::string::npos)
      << mixed.error;
}

TEST(Dispatch, PersistentFailureReassignsSlotsThenFailsWithLog) {
  auto opts = base_opts(fresh_dir("dispatch_false"));
  opts.campaign_binary = "/bin/false";  // dies instantly, every time
  opts.jobs = 1;                        // both slots free for reassignment
  opts.max_attempts = 3;
  std::vector<std::size_t> slots;
  opts.on_spawn = [&](std::size_t /*shard*/, std::size_t /*attempt*/,
                      std::size_t slot, long /*pid*/) {
    slots.push_back(slot);
  };
  std::size_t failures = 0;
  std::vector<bool> retries;
  opts.on_worker_exit = [&](std::size_t /*shard*/, std::size_t /*attempt*/,
                            bool ok, bool will_retry) {
    EXPECT_FALSE(ok);
    failures++;
    retries.push_back(will_retry);
  };
  const auto result = Dispatcher(spec_kv(20000), opts).run();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("shard 0 failed 3/3"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find(result.shards[0].log_path), std::string::npos)
      << result.error;
  EXPECT_EQ(failures, 3u);
  EXPECT_EQ(result.restarts, 2u);
  // The first two failures retry; the last one abandons the shard.
  EXPECT_EQ(retries, (std::vector<bool>{true, true, false}));
  EXPECT_FALSE(result.shards[0].completed);
  // Reassignment: every retry ran on a different slot than the attempt
  // before it (both slots are free each time -- the shard must move).
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_NE(slots[1], slots[0]);
  EXPECT_NE(slots[2], slots[1]);
}

TEST(Dispatch, CleanExitWithoutJournalIsAFailureNotSilentDataLoss) {
  auto opts = base_opts(fresh_dir("dispatch_true"));
  opts.campaign_binary = "/bin/true";  // exit 0, journals nothing
  opts.jobs = 1;
  opts.max_attempts = 2;
  const auto result = Dispatcher(spec_kv(20000), opts).run();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("exit 0"), std::string::npos) << result.error;
  EXPECT_EQ(result.shards[0].rows, 0u);
}

TEST(Dispatch, MissingWorkerBinaryIsAnImmediateError) {
  auto opts = base_opts(fresh_dir("dispatch_nobin"));
  opts.campaign_binary = "/no/such/reap_campaign";
  const auto result = Dispatcher(spec_kv(20000), opts).run();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("cannot exec"), std::string::npos)
      << result.error;
}

TEST(Dispatch, RejectsABadSpecBeforeLaunchingAnything) {
  auto kv = spec_kv(20000);
  kv["workloads"] = "no-such-workload";
  const auto result = Dispatcher(kv, base_opts(fresh_dir("dispatch_badspec")))
                          .run();
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace reap::campaign

// Grid expansion: count, ordering, axis assignment, spec parsing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "reap/campaign/seed.hpp"
#include "reap/campaign/spec.hpp"
#include "reap/common/strings.hpp"

namespace reap::campaign {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.workloads = {"mcf", "h264ref"};
  spec.policies = {core::PolicyKind::conventional_parallel,
                   core::PolicyKind::reap,
                   core::PolicyKind::serial_tag_then_data};
  spec.ecc_ts = {1, 2};
  spec.seeds = {0, 1};
  return spec;
}

TEST(CampaignGrid, SizeIsTheAxisProduct) {
  const auto spec = small_spec();
  EXPECT_EQ(spec.size(), 2u * 3u * 2u * 2u);
  const auto points = expand(spec);
  EXPECT_EQ(points.size(), spec.size());
}

TEST(CampaignGrid, RowMajorOrderSeedsFastest) {
  const auto spec = small_spec();
  const auto points = expand(spec);
  // index 0: first value on every axis.
  EXPECT_EQ(points[0].config.workload.name, "mcf");
  EXPECT_EQ(points[0].config.policy, core::PolicyKind::conventional_parallel);
  EXPECT_EQ(points[0].config.ecc_t, 1u);
  // Seeds are the fastest axis.
  EXPECT_EQ(points[1].seed_i, 1u);
  EXPECT_EQ(points[1].ecc_i, 0u);
  // Then ecc.
  EXPECT_EQ(points[2].ecc_i, 1u);
  EXPECT_EQ(points[2].config.ecc_t, 2u);
  // Then policy: one policy block spans ecc * seeds = 4 points.
  EXPECT_EQ(points[4].config.policy, core::PolicyKind::reap);
  // Then workload: one workload block spans 3 * 4 = 12 points.
  EXPECT_EQ(points[12].config.workload.name, "h264ref");
  // Indices are dense and sequential.
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(points[i].index, i);
}

TEST(CampaignGrid, DerivedSeedsMatchTheSeedModule) {
  const auto spec = small_spec();
  const auto points = expand(spec);
  for (const auto& pt : points) {
    // Environment index: (workload, ratio, seed) -- ratio axis is empty
    // here, so it collapses to workload-major, seed-minor.
    const std::uint64_t env_index =
        pt.workload_i * spec.seeds.size() + pt.seed_i;
    const auto expected =
        derive_seed(spec.campaign_seed, env_index, spec.seeds[pt.seed_i]);
    EXPECT_EQ(pt.config.seed, expected);
    EXPECT_EQ(pt.config.workload.seed, derive_companion_seed(expected));
  }
}

TEST(CampaignGrid, PairedPointsShareSeedsAcrossDesignAxes) {
  // Points that differ only in policy or ecc_t must replay the exact same
  // trace: same hierarchy seed, same workload seed.
  const auto points = expand(small_spec());
  for (const auto& a : points)
    for (const auto& b : points)
      if (a.workload_i == b.workload_i && a.ratio_i == b.ratio_i &&
          a.seed_i == b.seed_i) {
        EXPECT_EQ(a.config.seed, b.config.seed);
        EXPECT_EQ(a.config.workload.seed, b.config.workload.seed);
      }
}

TEST(CampaignGrid, TraceKeyIsTheEnvironmentCoordinateSubset) {
  CampaignSpec spec = small_spec();
  spec.read_ratios = {0.55, 0.8};
  spec.scrub_everys = {16, 64};
  const auto points = expand(spec);
  for (const auto& pt : points) {
    // trace_key = row key minus the design axes: workload + rr + s fields.
    const auto expected = spec.workloads[pt.workload_i] + "/rr" +
                          common::fmt_double(spec.read_ratios[pt.ratio_i]) +
                          "/s" + std::to_string(spec.seeds[pt.seed_i]);
    EXPECT_EQ(pt.trace_key, expected);
    // And the invariant it names: equal trace_key <=> identical trace
    // seeds (same generator, same stream).
    for (const auto& other : points) {
      if (other.trace_key == pt.trace_key) {
        EXPECT_EQ(other.config.workload.seed, pt.config.workload.seed);
        EXPECT_EQ(other.config.seed, pt.config.seed);
      } else {
        EXPECT_NE(other.config.workload.seed, pt.config.workload.seed);
      }
    }
  }
}

TEST(CampaignGrid, DistinctEnvironmentsGetDistinctSeeds) {
  const auto points = expand(small_spec());
  for (const auto& a : points)
    for (const auto& b : points)
      if (a.workload_i != b.workload_i || a.seed_i != b.seed_i) {
        EXPECT_NE(a.config.seed, b.config.seed);
      }
}

TEST(CampaignGrid, ReadRatioAxisOverridesMtj) {
  auto spec = small_spec();
  spec.read_ratios = {0.55, 0.8};
  const auto points = expand(spec);
  EXPECT_EQ(points.size(), 2u * 3u * 2u * 2u * 2u);
  for (const auto& pt : points) {
    const double ratio = pt.config.mtj.read_current.value /
                         pt.config.mtj.critical_current.value;
    EXPECT_NEAR(ratio, spec.read_ratios[pt.ratio_i], 1e-12);
  }
}

TEST(CampaignGrid, ScrubAxisOverridesPeriodAndKeepsSeeds) {
  auto spec = small_spec();
  spec.policies = {core::PolicyKind::scrub_piggyback};
  spec.scrub_everys = {256, 16, 1};
  const auto points = expand(spec);
  EXPECT_EQ(points.size(), 2u * 1u * 2u * 3u * 2u);
  for (const auto& pt : points) {
    EXPECT_EQ(pt.config.scrub_every, spec.scrub_everys[pt.scrub_i]);
  }
  // Design axis: the scrub period must not perturb the derived seeds, so
  // sweep points replay the trace of their reference campaign.
  for (const auto& a : points)
    for (const auto& b : points)
      if (a.workload_i == b.workload_i && a.seed_i == b.seed_i) {
        EXPECT_EQ(a.config.seed, b.config.seed);
        EXPECT_EQ(a.config.workload.seed, b.config.workload.seed);
      }
}

TEST(CampaignGrid, EmptyScrubAxisKeepsBasePeriod) {
  auto spec = small_spec();
  spec.base.scrub_every = 99;
  const auto points = expand(spec);
  for (const auto& pt : points) {
    EXPECT_EQ(pt.config.scrub_every, 99u);
    EXPECT_EQ(pt.scrub_i, 0u);
  }
}

TEST(CampaignGrid, ExpansionIsDeterministic) {
  const auto a = expand(small_spec());
  const auto b = expand(small_spec());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].config.seed, b[i].config.seed);
    EXPECT_EQ(a[i].config.workload.name, b[i].config.workload.name);
  }
}

TEST(CampaignGrid, RejectsBadSpecs) {
  CampaignSpec spec;
  EXPECT_THROW(expand(spec), std::invalid_argument);  // no axes at all
  spec = small_spec();
  spec.workloads = {"not_a_workload"};
  EXPECT_THROW(expand(spec), std::invalid_argument);
}

TEST(CampaignGrid, RejectsDuplicateAxisValues) {
  // Row keys are value-derived: duplicate axis values would alias two
  // grid points onto one key (and the journal would drop one row).
  auto spec = small_spec();
  spec.seeds = {0, 0};
  EXPECT_THROW(expand(spec), std::invalid_argument);
  spec = small_spec();
  spec.workloads = {"mcf", "mcf"};
  EXPECT_THROW(expand(spec), std::invalid_argument);
  spec = small_spec();
  spec.policies.push_back(spec.policies.front());
  EXPECT_THROW(expand(spec), std::invalid_argument);
  spec = small_spec();
  spec.read_ratios = {0.55, 0.55};
  EXPECT_THROW(expand(spec), std::invalid_argument);
}

TEST(CampaignSpecKv, ParsesListsAndScalars) {
  std::map<std::string, std::string> kv{
      {"workloads", "mcf,h264ref"},
      {"policies", "conventional,reap"},
      {"ecc", "1,2"},
      {"seeds", "0,1,2"},
      {"read_ratios", "0.55,0.8"},
      {"scrub_every", "64,16"},
      {"instructions", "1000"},
      {"campaign_seed", "99"},
  };
  std::string error;
  const auto spec = CampaignSpec::from_kv(kv, &error);
  ASSERT_TRUE(spec) << error;
  EXPECT_EQ(spec->workloads.size(), 2u);
  EXPECT_EQ(spec->policies.size(), 2u);
  EXPECT_EQ(spec->ecc_ts, (std::vector<unsigned>{1, 2}));
  EXPECT_EQ(spec->seeds.size(), 3u);
  EXPECT_EQ(spec->read_ratios.size(), 2u);
  EXPECT_EQ(spec->scrub_everys, (std::vector<std::uint64_t>{64, 16}));
  EXPECT_EQ(spec->base.instructions, 1000u);
  EXPECT_EQ(spec->campaign_seed, 99u);
  EXPECT_EQ(spec->size(), 2u * 2u * 2u * 2u * 2u * 3u);
}

TEST(CampaignSpecKv, RejectsGarbageNumericValues) {
  std::string error;
  const std::map<std::string, std::string> base{{"workloads", "mcf"},
                                                {"policies", "reap"}};
  auto with = [&](const std::string& k, const std::string& v) {
    auto kv = base;
    kv[k] = v;
    return CampaignSpec::from_kv(kv, &error);
  };
  // strtoull would silently stop at 'e' and run 1-instruction experiments.
  EXPECT_FALSE(with("instructions", "1e6"));
  EXPECT_NE(error.find("instructions"), std::string::npos);
  EXPECT_FALSE(with("ecc", "two"));
  EXPECT_FALSE(with("ecc", ""));  // empty list must not clear the axis
  EXPECT_FALSE(with("seeds", "1,x"));
  EXPECT_FALSE(with("read_ratios", "0.5,oops"));
  EXPECT_FALSE(with("campaign_seed", "0x12"));
  EXPECT_FALSE(with("clock_ghz", "fast"));
  // Sanity: the strict parser still accepts well-formed values.
  EXPECT_TRUE(with("instructions", "1000000"));
  EXPECT_TRUE(with("read_ratios", "0.55,0.8"));
}

TEST(CampaignSpecKv, RejectsUnknownKeysAndPolicies) {
  std::string error;
  EXPECT_FALSE(CampaignSpec::from_kv({{"wat", "1"}}, &error));
  EXPECT_NE(error.find("unknown spec key"), std::string::npos);
  EXPECT_FALSE(CampaignSpec::from_kv({{"workloads", "mcf"},
                                      {"policies", "warp_drive"}},
                                     &error));
  EXPECT_FALSE(CampaignSpec::from_kv({{"policies", "reap"}}, &error))
      << "workloads are mandatory";
}

TEST(CampaignSpecFile, ParsesCommentsAndWhitespace) {
  const std::string path = ::testing::TempDir() + "/reap_campaign_test.spec";
  {
    std::ofstream out(path);
    out << "# a campaign\n"
        << "workloads = mcf,h264ref   # two workloads\n"
        << "\n"
        << "policies=conventional,reap\n"
        << "seeds = 0,1\n";
  }
  std::string error;
  const auto kv = parse_spec_file(path, &error);
  ASSERT_TRUE(kv) << error;
  const auto spec = CampaignSpec::from_kv(*kv, &error);
  ASSERT_TRUE(spec) << error;
  EXPECT_EQ(spec->size(), 2u * 2u * 1u * 1u * 2u);
  std::remove(path.c_str());
}

TEST(CampaignSpecFile, ReportsBadLinesWithLineNumbers) {
  const std::string path = ::testing::TempDir() + "/reap_campaign_bad.spec";
  {
    std::ofstream out(path);
    out << "workloads = mcf\n"
        << "this line has no equals\n";
  }
  std::string error;
  EXPECT_FALSE(parse_spec_file(path, &error));
  EXPECT_NE(error.find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace reap::campaign

// Offline post-processing: loading rows back from CSV/JSONL, merging shard
// outputs, and recomputing aggregates that match the in-memory path
// byte-for-byte.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "campaign_test_util.hpp"
#include "reap/campaign/aggregate.hpp"
#include "reap/campaign/journal.hpp"
#include "reap/campaign/report.hpp"
#include "reap/campaign/result_sink.hpp"
#include "reap/campaign/runner.hpp"

namespace reap::campaign {
namespace {

using testutil::fake_run;
using testutil::file_bytes;
using testutil::grid_24;
using testutil::temp_path;

struct Campaign {
  std::vector<CampaignPoint> points;
  std::vector<core::ExperimentResult> results;
};

Campaign run_fake(const CampaignSpec& spec) {
  Campaign c;
  c.points = expand(spec);
  RunnerOptions opts;
  opts.threads = 1;
  opts.run_fn = fake_run;
  c.results = CampaignRunner(opts).run(c.points);
  return c;
}

TEST(Report, CsvRowsLoadBackVerbatim) {
  const auto c = run_fake(grid_24());
  const auto path = temp_path("report_load.csv");
  {
    CsvResultSink sink(path);
    emit_all(c.points, c.results, sink);
  }
  std::string error;
  const auto table = load_rows(path, &error);
  ASSERT_TRUE(table) << error;
  EXPECT_EQ(table->header, result_header());
  ASSERT_EQ(table->rows.size(), c.points.size());
  for (std::size_t i = 0; i < c.points.size(); ++i)
    EXPECT_EQ(table->rows[i], result_cells(c.points[i], c.results[i]));
  EXPECT_TRUE(covers_all_indices(*table));
  std::remove(path.c_str());
}

TEST(Report, JsonlRowsLoadBackVerbatim) {
  const auto c = run_fake(grid_24());
  const auto path = temp_path("report_load.jsonl");
  {
    JsonlResultSink sink(path);
    emit_all(c.points, c.results, sink);
  }
  std::string error;
  const auto table = load_rows(path, &error);  // sniffed as JSONL
  ASSERT_TRUE(table) << error;
  EXPECT_EQ(table->header, result_header());
  ASSERT_EQ(table->rows.size(), c.points.size());
  for (std::size_t i = 0; i < c.points.size(); ++i)
    EXPECT_EQ(table->rows[i], result_cells(c.points[i], c.results[i]));
  std::remove(path.c_str());
}

TEST(Report, JournalsLoadAsRowTables) {
  const auto spec = grid_24();
  const auto c = run_fake(spec);
  const auto path = temp_path("report_journal.jsonl");
  {
    JournalWriter writer(
        path, JournalHeader::for_run(spec, c.points.size(), 0, 1));
    // Completion order scrambled: odd rows first.
    for (std::size_t i = 1; i < c.points.size(); i += 2)
      writer.add(c.points[i].key, result_cells(c.points[i], c.results[i]));
    for (std::size_t i = 0; i < c.points.size(); i += 2)
      writer.add(c.points[i].key, result_cells(c.points[i], c.results[i]));
  }
  std::string error;
  auto table = load_rows(path, &error);
  ASSERT_TRUE(table) << error;
  EXPECT_EQ(table->header, result_header());  // header line + key stripped
  EXPECT_EQ(table->rows.size(), c.points.size());
  auto merged = merge_tables({std::move(*table)}, &error);
  ASSERT_TRUE(merged) << error;
  EXPECT_TRUE(covers_all_indices(*merged));
  std::remove(path.c_str());
}

TEST(Report, JournalGridSizeCatchesADensePrefix) {
  // A single-threaded run killed after k rows journals a dense 0..k-1
  // prefix; without the journal's recorded grid size that is
  // indistinguishable from a complete smaller campaign.
  const auto spec = grid_24();
  const auto c = run_fake(spec);
  const auto path = temp_path("report_prefix.jsonl");
  {
    JournalWriter writer(
        path, JournalHeader::for_run(spec, c.points.size(), 0, 1));
    for (std::size_t i = 0; i < 5; ++i)  // dense prefix, then "killed"
      writer.add(c.points[i].key, result_cells(c.points[i], c.results[i]));
    std::ofstream torn(path, std::ios::app);
    torn << "{\"key\":\"torn";
  }
  std::string error;
  auto table = load_rows(path, &error);
  ASSERT_TRUE(table) << error;
  EXPECT_TRUE(table->truncated_tail);
  ASSERT_TRUE(table->expected_points);
  EXPECT_EQ(*table->expected_points, c.points.size());
  const auto merged = merge_tables({std::move(*table)}, &error);
  ASSERT_TRUE(merged) << error;
  EXPECT_TRUE(merged->truncated_tail);
  EXPECT_FALSE(covers_all_indices(*merged));  // prefix != complete
  std::remove(path.c_str());
}

TEST(Report, MergedShardCsvIsByteIdenticalToSingleRun) {
  const auto c = run_fake(grid_24());
  const auto full = temp_path("report_full.csv");
  const auto s0 = temp_path("report_s0.csv");
  const auto s1 = temp_path("report_s1.csv");
  {
    CsvResultSink sink(full);
    emit_all(c.points, c.results, sink);
  }
  {
    CsvResultSink sink0(s0);
    CsvResultSink sink1(s1);
    for (std::size_t i = 0; i < c.points.size(); ++i)
      (i % 2 ? sink1 : sink0).add(c.points[i], c.results[i]);
  }
  std::string error;
  auto t0 = load_rows(s0, &error);
  auto t1 = load_rows(s1, &error);
  ASSERT_TRUE(t0 && t1) << error;
  EXPECT_FALSE(covers_all_indices(*t0));  // a lone shard is partial
  std::vector<RowTable> tables;
  tables.push_back(std::move(*t1));  // reversed order: merge must re-sort
  tables.push_back(std::move(*t0));
  const auto merged = merge_tables(std::move(tables), &error);
  ASSERT_TRUE(merged) << error;
  EXPECT_TRUE(covers_all_indices(*merged));

  const auto remerged = temp_path("report_merged.csv");
  {
    CsvResultSink sink(remerged);
    for (const auto& row : merged->rows) sink.add_cells(row);
  }
  EXPECT_EQ(file_bytes(full), file_bytes(remerged));
  for (const auto& p : {full, s0, s1, remerged}) std::remove(p.c_str());
}

TEST(Report, MergeRejectsConflictingDuplicates) {
  const auto c = run_fake(grid_24());
  RowTable a, b;
  a.header = b.header = result_header();
  a.rows.push_back(result_cells(c.points[0], c.results[0]));
  b.rows.push_back(result_cells(c.points[0], c.results[1]));  // same index 0
  std::string error;
  EXPECT_FALSE(merge_tables({a, b}, &error));
  EXPECT_NE(error.find("conflicting"), std::string::npos);
  // Byte-identical duplicates collapse silently.
  b.rows[0] = a.rows[0];
  const auto merged = merge_tables({a, b}, &error);
  ASSERT_TRUE(merged) << error;
  EXPECT_EQ(merged->rows.size(), 1u);
}

// The headline parity pin: aggregates recomputed from CSV cells alone
// render the exact bytes the in-memory aggregation prints. (Shortest
// round-trip cell formatting makes the parsed doubles exact, and both
// paths share compare_metrics/summarize_comparisons.)
TEST(Report, AggregateRowsMatchesInMemoryAggregateByteForByte) {
  for (const bool with_ratio_axis : {false, true}) {
    auto spec = grid_24();
    if (with_ratio_axis) spec.read_ratios = {0.55, 0.8};
    const auto c = run_fake(spec);
    const auto baseline = core::PolicyKind::conventional_parallel;
    const auto in_memory = aggregate(spec, c.points, c.results, baseline);
    ASSERT_TRUE(in_memory);

    const auto path = temp_path("report_parity.csv");
    {
      CsvResultSink sink(path);
      emit_all(c.points, c.results, sink);
    }
    std::string error;
    const auto table = load_rows(path, &error);
    ASSERT_TRUE(table) << error;
    const auto offline = aggregate_rows(*table, baseline, &error);
    ASSERT_TRUE(offline) << error;

    EXPECT_EQ(in_memory->render(), offline->render());
    EXPECT_EQ(in_memory->comparisons.size(), offline->comparisons.size());
    for (std::size_t i = 0; i < in_memory->comparisons.size(); ++i) {
      EXPECT_EQ(in_memory->comparisons[i].index,
                offline->comparisons[i].index);
      EXPECT_EQ(in_memory->comparisons[i].mttf_gain,
                offline->comparisons[i].mttf_gain);
      EXPECT_EQ(in_memory->comparisons[i].energy_ratio,
                offline->comparisons[i].energy_ratio);
      EXPECT_EQ(in_memory->comparisons[i].speedup,
                offline->comparisons[i].speedup);
    }
    std::remove(path.c_str());
  }
}

TEST(Report, AggregateRowsNeedsBaselineRows) {
  auto spec = grid_24();
  spec.policies = {core::PolicyKind::reap};
  const auto c = run_fake(spec);
  RowTable table;
  table.header = result_header();
  for (std::size_t i = 0; i < c.points.size(); ++i)
    table.rows.push_back(result_cells(c.points[i], c.results[i]));
  std::string error;
  EXPECT_FALSE(aggregate_rows(
      table, core::PolicyKind::conventional_parallel, &error));
  EXPECT_NE(error.find("baseline"), std::string::npos);
}

TEST(Report, WritesFigureDataAndGnuplotScripts) {
  const auto spec = grid_24();
  const auto c = run_fake(spec);
  const auto agg = aggregate(spec, c.points, c.results,
                             core::PolicyKind::conventional_parallel);
  ASSERT_TRUE(agg);
  const auto dir = temp_path("report_figures");
  std::string error;
  const auto written = write_figure_data(*agg, dir, &error);
  ASSERT_TRUE(written) << error;
  for (const char* name : {"fig5_mttf.csv", "fig6_energy.csv",
                           "policy_summary.csv", "fig5.gp", "fig6.gp"})
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / name))
        << name;
  // fig5 bar data: workload rows x policy columns.
  std::ifstream fig5(std::filesystem::path(dir) / "fig5_mttf.csv");
  std::string header;
  ASSERT_TRUE(std::getline(fig5, header));
  EXPECT_EQ(header, "workload,reap,serial");
  std::string row;
  std::size_t rows = 0;
  while (std::getline(fig5, row)) ++rows;
  EXPECT_EQ(rows, spec.workloads.size());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace reap::campaign

// Shard/resume invariants: shards partition the grid exactly; row keys are
// stable coordinates, not positions; and a killed-and-resumed run merges
// to output byte-identical to an uninterrupted one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <random>
#include <unordered_set>

#include "campaign_test_util.hpp"
#include "reap/campaign/journal.hpp"
#include "reap/campaign/result_sink.hpp"
#include "reap/campaign/runner.hpp"
#include "reap/campaign/spec.hpp"

namespace reap::campaign {
namespace {

using testutil::fake_run;
using testutil::file_bytes;
using testutil::grid_24;
using testutil::temp_path;

TEST(Shard, PartitionsTheGridExactly) {
  const auto points = expand(grid_24());
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{5}, std::size_t{24},
                              std::size_t{40}}) {
    std::unordered_set<std::size_t> seen;
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto part = shard(points, i, n);
      EXPECT_EQ(shard_size(points.size(), i, n), part.size())
          << "i=" << i << " n=" << n;
      for (const auto& pt : part) {
        EXPECT_TRUE(seen.insert(pt.index).second)
            << "index " << pt.index << " in two shards (n=" << n << ")";
        EXPECT_EQ(pt.index % n, i);
      }
      // Expansion order is preserved within a shard.
      EXPECT_TRUE(std::is_sorted(part.begin(), part.end(),
                                 [](const auto& a, const auto& b) {
                                   return a.index < b.index;
                                 }));
      total += part.size();
    }
    EXPECT_EQ(total, points.size()) << "n=" << n;
    EXPECT_EQ(seen.size(), points.size()) << "n=" << n;
  }
}

TEST(Shard, RejectsBadArguments) {
  const auto points = expand(grid_24());
  EXPECT_THROW(shard(points, 0, 0), std::invalid_argument);
  EXPECT_THROW(shard(points, 2, 2), std::invalid_argument);
}

TEST(RowKey, IsAStableCoordinateNotAPosition) {
  const auto spec = grid_24();
  const auto points = expand(spec);

  // Appending values to any axis must not change existing keys, even
  // though it renumbers every index after the insertion point.
  auto grown = spec;
  grown.workloads.push_back("perlbench");
  grown.ecc_ts.push_back(3);
  grown.seeds.push_back(7);
  const auto grown_points = expand(grown);

  std::unordered_set<std::string> grown_keys;
  for (const auto& pt : grown_points) grown_keys.insert(pt.key);
  for (const auto& pt : points)
    EXPECT_TRUE(grown_keys.count(pt.key)) << pt.key;

  // Keys are unique within a grid.
  std::unordered_set<std::string> keys;
  for (const auto& pt : points)
    EXPECT_TRUE(keys.insert(pt.key).second) << pt.key;

  // And encode the design coordinates: paired points (same environment,
  // different policy) must have different keys.
  EXPECT_EQ(points[0].config.seed, points[4].config.seed);  // paired
  EXPECT_NE(points[0].key, points[4].key);
}

TEST(SpecHash, TracksEveryBinaryRelevantField) {
  const auto spec = grid_24();
  EXPECT_EQ(spec_hash(spec), spec_hash(grid_24()));  // deterministic

  auto changed = spec;
  changed.read_ratios = {0.55};
  EXPECT_NE(spec_hash(changed), spec_hash(spec));
  changed = spec;
  changed.campaign_seed ^= 1;
  EXPECT_NE(spec_hash(changed), spec_hash(spec));
  changed = spec;
  changed.base.warmup_instructions += 1;
  EXPECT_NE(spec_hash(changed), spec_hash(spec));
  changed = spec;
  changed.base.hierarchy.l2.ways = 16;
  EXPECT_NE(spec_hash(changed), spec_hash(spec));
}

// The golden pipeline pin: completion-order journaling followed by the
// index-ordered merge produces CSV and JSONL byte-identical to the
// original "run everything, then emit_all" path.
TEST(StreamingPipeline, MergedOutputByteIdenticalToDirectSinks) {
  const auto points = expand(grid_24());

  RunnerOptions direct_opts;
  direct_opts.threads = 1;
  direct_opts.run_fn = fake_run;
  const auto results = CampaignRunner(direct_opts).run(points);

  const auto direct_csv = temp_path("direct.csv");
  const auto direct_jsonl = temp_path("direct.jsonl");
  {
    CsvResultSink csv(direct_csv);
    JsonlResultSink jsonl(direct_jsonl);
    MultiSink sinks;
    sinks.attach(&csv);
    sinks.attach(&jsonl);
    emit_all(points, results, sinks);
  }

  // Streaming path, completion order deliberately scrambled.
  RunnerOptions stream_opts;
  stream_opts.threads = 1;
  stream_opts.run_fn = fake_run;
  std::vector<JournalRow> rows;
  stream_opts.on_result = [&](const CampaignPoint& pt,
                              const core::ExperimentResult& r) {
    rows.push_back({pt.key, pt.index, result_cells(pt, r)});
  };
  CampaignRunner(stream_opts).run(points);
  std::shuffle(rows.begin(), rows.end(), std::mt19937{1234});

  const auto merged_csv = temp_path("merged.csv");
  const auto merged_jsonl = temp_path("merged.jsonl");
  {
    CsvResultSink csv(merged_csv);
    JsonlResultSink jsonl(merged_jsonl);
    MultiSink sinks;
    sinks.attach(&csv);
    sinks.attach(&jsonl);
    emit_rows(merge_journal_rows(std::move(rows), {}), sinks);
  }

  EXPECT_EQ(file_bytes(direct_csv), file_bytes(merged_csv));
  EXPECT_EQ(file_bytes(direct_jsonl), file_bytes(merged_jsonl));
  for (const auto& p : {direct_csv, direct_jsonl, merged_csv, merged_jsonl})
    std::remove(p.c_str());
}

// Kill-mid-run simulation at the library level: journal a prefix of a
// shard plus a torn line, then resume (skip completed, run the rest,
// merge). The shard's CSV must be byte-identical to an uninterrupted run.
TEST(Resume, KillMidRunThenResumeIsByteIdentical) {
  const auto spec = grid_24();
  const auto points = expand(spec);
  const auto mine = shard(points, 1, 2);
  ASSERT_GE(mine.size(), 4u);

  RunnerOptions opts;
  opts.threads = 1;
  opts.run_fn = fake_run;

  // Uninterrupted reference.
  const auto ref_csv = temp_path("resume_ref.csv");
  {
    const auto results = CampaignRunner(opts).run(mine);
    CsvResultSink csv(ref_csv);
    emit_all(mine, results, csv);
  }

  // "Crashed" journal: first 3 completed rows + a torn tail.
  const auto journal_path = temp_path("resume_crash.jsonl");
  {
    std::vector<JournalRow> rows;
    auto stream = opts;
    stream.on_result = [&](const CampaignPoint& pt,
                           const core::ExperimentResult& r) {
      rows.push_back({pt.key, pt.index, result_cells(pt, r)});
    };
    CampaignRunner(stream).run(mine);
    JournalWriter writer(journal_path,
                         JournalHeader::for_run(spec, points.size(), 1, 2));
    for (std::size_t i = 0; i < 3; ++i) writer.add(rows[i].key, rows[i].cells);
    std::ofstream torn(journal_path, std::ios::app);
    torn << "{\"key\":\"" << rows[3].key << "\",\"index\":";
  }

  // Resume: load, verify, skip completed, run the remainder, merge.
  std::string error;
  auto journal = read_journal(journal_path, &error);
  ASSERT_TRUE(journal) << error;
  EXPECT_TRUE(journal->truncated_tail);
  std::string why;
  ASSERT_TRUE(journal_compatible(journal->header, spec, points.size(), 1, 2,
                                 &why))
      << why;
  ASSERT_TRUE(rewrite_journal(journal_path, *journal, &error)) << error;

  std::unordered_set<std::string> completed;
  for (const auto& row : journal->rows) completed.insert(row.key);
  EXPECT_EQ(completed.size(), 3u);
  std::vector<CampaignPoint> to_run;
  for (const auto& pt : mine)
    if (!completed.count(pt.key)) to_run.push_back(pt);
  EXPECT_EQ(to_run.size(), mine.size() - 3);

  std::vector<JournalRow> fresh;
  auto resume_opts = opts;
  resume_opts.on_result = [&](const CampaignPoint& pt,
                              const core::ExperimentResult& r) {
    auto cells = result_cells(pt, r);
    JournalWriter appender(journal_path);
    appender.add(pt.key, cells);
    fresh.push_back({pt.key, pt.index, std::move(cells)});
  };
  CampaignRunner(resume_opts).run(to_run);

  const auto resumed_csv = temp_path("resume_merged.csv");
  {
    CsvResultSink csv(resumed_csv);
    emit_rows(merge_journal_rows(std::move(journal->rows), std::move(fresh)),
              csv);
  }
  EXPECT_EQ(file_bytes(ref_csv), file_bytes(resumed_csv));

  // The journal on disk is now complete and clean: a second resume would
  // have nothing to run.
  const auto final_journal = read_journal(journal_path, &error);
  ASSERT_TRUE(final_journal) << error;
  EXPECT_FALSE(final_journal->truncated_tail);
  EXPECT_EQ(final_journal->rows.size(), mine.size());

  for (const auto& p : {ref_csv, journal_path, resumed_csv})
    std::remove(p.c_str());
}

}  // namespace
}  // namespace reap::campaign

#include "reap/sim/cpu.hpp"

#include <gtest/gtest.h>

#include "reap/trace/trace_io.hpp"

namespace reap::sim {
namespace {

HierarchyConfig tiny_cfg() {
  HierarchyConfig cfg;
  cfg.l1i = {.name = "L1I", .capacity_bytes = 256, .ways = 2, .block_bytes = 64};
  cfg.l1d = {.name = "L1D", .capacity_bytes = 256, .ways = 2, .block_bytes = 64};
  cfg.l2 = {.name = "L2", .capacity_bytes = 512, .ways = 2, .block_bytes = 64};
  cfg.l2_hit_cycles = 10;
  cfg.mem_cycles = 100;
  return cfg;
}

TEST(TraceCpu, CountsInstructionsNotDataOps) {
  trace::VectorTraceSource src({
      {trace::OpType::inst_fetch, 0x400000},
      {trace::OpType::load, 0x1000},
      {trace::OpType::inst_fetch, 0x400004},
      {trace::OpType::store, 0x2000},
      {trace::OpType::inst_fetch, 0x400008},
  });
  MemoryHierarchy mem(tiny_cfg());
  TraceCpu cpu(src, mem);
  EXPECT_EQ(cpu.run(100), 3u);
  EXPECT_EQ(cpu.instructions(), 3u);
}

TEST(TraceCpu, StopsAtInstructionBudget) {
  std::vector<trace::MemOp> ops;
  for (int i = 0; i < 100; ++i)
    ops.push_back({trace::OpType::inst_fetch, 0x400000u + i * 4u});
  trace::VectorTraceSource src(ops);
  MemoryHierarchy mem(tiny_cfg());
  TraceCpu cpu(src, mem);
  EXPECT_EQ(cpu.run(30), 30u);
  EXPECT_EQ(cpu.run(30), 30u);
  EXPECT_EQ(cpu.run(100), 40u);  // trace exhausted
}

TEST(TraceCpu, CyclesIncludeMemoryStalls) {
  trace::VectorTraceSource src({
      {trace::OpType::inst_fetch, 0x400000},
      {trace::OpType::load, 0x1000},
  });
  MemoryHierarchy mem(tiny_cfg());
  TraceCpu cpu(src, mem);
  cpu.run(10);
  // 1 cycle for the instruction + I-fetch cold miss (100) + load cold miss
  // (100).
  EXPECT_EQ(cpu.cycles(), 201u);
  EXPECT_LT(cpu.ipc(), 1.0);
}

TEST(TraceCpu, PerfectL1GivesIpcNearOne) {
  std::vector<trace::MemOp> ops;
  for (int i = 0; i < 1000; ++i)
    ops.push_back({trace::OpType::inst_fetch, 0x400000});  // same block
  trace::VectorTraceSource src(ops);
  MemoryHierarchy mem(tiny_cfg());
  TraceCpu cpu(src, mem);
  cpu.run(1000);
  EXPECT_GT(cpu.ipc(), 0.9);
}

TEST(TraceCpu, SecondsUsesClock) {
  trace::VectorTraceSource src({{trace::OpType::inst_fetch, 0x400000}});
  MemoryHierarchy mem(tiny_cfg());
  TraceCpu cpu(src, mem, /*clock_ghz=*/1.0);
  cpu.run(1);
  // 1 + 100 cycles at 1 GHz = 101 ns.
  EXPECT_NEAR(cpu.seconds(), 101e-9, 1e-12);
}

TEST(TraceCpu, ResetCountersKeepsCacheState) {
  trace::VectorTraceSource src({
      {trace::OpType::inst_fetch, 0x400000},
      {trace::OpType::load, 0x1000},
      {trace::OpType::inst_fetch, 0x400004},
      {trace::OpType::load, 0x1000},
  });
  MemoryHierarchy mem(tiny_cfg());
  TraceCpu cpu(src, mem);
  cpu.run(1);  // first instruction + cold load
  cpu.reset_counters();
  EXPECT_EQ(cpu.instructions(), 0u);
  cpu.run(1);  // second instruction: warm load, few cycles
  EXPECT_LT(cpu.cycles(), 10u);
}

}  // namespace
}  // namespace reap::sim

#include "reap/sim/cpu.hpp"

#include <gtest/gtest.h>

#include "reap/trace/trace_io.hpp"

namespace reap::sim {
namespace {

HierarchyConfig tiny_cfg() {
  HierarchyConfig cfg;
  cfg.l1i = {.name = "L1I", .capacity_bytes = 256, .ways = 2, .block_bytes = 64};
  cfg.l1d = {.name = "L1D", .capacity_bytes = 256, .ways = 2, .block_bytes = 64};
  cfg.l2 = {.name = "L2", .capacity_bytes = 512, .ways = 2, .block_bytes = 64};
  cfg.l2_hit_cycles = 10;
  cfg.mem_cycles = 100;
  return cfg;
}

TEST(TraceCpu, CountsInstructionsNotDataOps) {
  trace::VectorTraceSource src({
      {trace::OpType::inst_fetch, 0x400000},
      {trace::OpType::load, 0x1000},
      {trace::OpType::inst_fetch, 0x400004},
      {trace::OpType::store, 0x2000},
      {trace::OpType::inst_fetch, 0x400008},
  });
  MemoryHierarchy mem(tiny_cfg());
  TraceCpu cpu(src, mem);
  EXPECT_EQ(cpu.run(100), 3u);
  EXPECT_EQ(cpu.instructions(), 3u);
}

TEST(TraceCpu, StopsAtInstructionBudget) {
  std::vector<trace::MemOp> ops;
  for (int i = 0; i < 100; ++i)
    ops.push_back({trace::OpType::inst_fetch, 0x400000u + i * 4u});
  trace::VectorTraceSource src(ops);
  MemoryHierarchy mem(tiny_cfg());
  TraceCpu cpu(src, mem);
  EXPECT_EQ(cpu.run(30), 30u);
  EXPECT_EQ(cpu.run(30), 30u);
  EXPECT_EQ(cpu.run(100), 40u);  // trace exhausted
}

TEST(TraceCpu, CyclesIncludeMemoryStalls) {
  trace::VectorTraceSource src({
      {trace::OpType::inst_fetch, 0x400000},
      {trace::OpType::load, 0x1000},
  });
  MemoryHierarchy mem(tiny_cfg());
  TraceCpu cpu(src, mem);
  cpu.run(10);
  // 1 cycle for the instruction + I-fetch cold miss (100) + load cold miss
  // (100).
  EXPECT_EQ(cpu.cycles(), 201u);
  EXPECT_LT(cpu.ipc(), 1.0);
}

TEST(TraceCpu, PerfectL1GivesIpcNearOne) {
  std::vector<trace::MemOp> ops;
  for (int i = 0; i < 1000; ++i)
    ops.push_back({trace::OpType::inst_fetch, 0x400000});  // same block
  trace::VectorTraceSource src(ops);
  MemoryHierarchy mem(tiny_cfg());
  TraceCpu cpu(src, mem);
  cpu.run(1000);
  EXPECT_GT(cpu.ipc(), 0.9);
}

TEST(TraceCpu, SecondsUsesClock) {
  trace::VectorTraceSource src({{trace::OpType::inst_fetch, 0x400000}});
  MemoryHierarchy mem(tiny_cfg());
  TraceCpu cpu(src, mem, /*clock_ghz=*/1.0);
  cpu.run(1);
  // 1 + 100 cycles at 1 GHz = 101 ns.
  EXPECT_NEAR(cpu.seconds(), 101e-9, 1e-12);
}

TEST(TraceCpu, ResetCountersKeepsCacheState) {
  trace::VectorTraceSource src({
      {trace::OpType::inst_fetch, 0x400000},
      {trace::OpType::load, 0x1000},
      {trace::OpType::inst_fetch, 0x400004},
      {trace::OpType::load, 0x1000},
  });
  MemoryHierarchy mem(tiny_cfg());
  TraceCpu cpu(src, mem);
  cpu.run(1);  // first instruction + cold load
  cpu.reset_counters();
  EXPECT_EQ(cpu.instructions(), 0u);
  cpu.run(1);  // second instruction: warm load, few cycles
  EXPECT_LT(cpu.cycles(), 10u);
}

// A pseudo-random but deterministic op mix that misses, hits, and writes
// back across both L1s and the L2 -- enough traffic that a divergence in
// the drive loops would show up in cycles or hierarchy stats.
std::vector<trace::MemOp> mixed_ops(std::size_t n) {
  std::vector<trace::MemOp> ops;
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t addr = (x % 64) * 64;
    if (i % 3 == 0)
      ops.push_back({trace::OpType::inst_fetch, 0x400000u + (x % 512) * 4});
    else if (i % 3 == 1)
      ops.push_back({trace::OpType::load, addr});
    else
      ops.push_back({trace::OpType::store, addr + 0x8000});
  }
  return ops;
}

void expect_same_run(const TraceCpu& a, const MemoryHierarchy& ma,
                     const TraceCpu& b, const MemoryHierarchy& mb) {
  EXPECT_EQ(a.instructions(), b.instructions());
  EXPECT_EQ(a.cycles(), b.cycles());
  const HierarchyStats sa = ma.stats();
  const HierarchyStats sb = mb.stats();
  EXPECT_EQ(sa.l2.read_lookups, sb.l2.read_lookups);
  EXPECT_EQ(sa.l2.read_hits, sb.l2.read_hits);
  EXPECT_EQ(sa.l2.write_lookups, sb.l2.write_lookups);
  EXPECT_EQ(sa.l2.fills, sb.l2.fills);
  EXPECT_EQ(sa.l2.evictions, sb.l2.evictions);
  EXPECT_EQ(sa.mem_reads, sb.mem_reads);
  EXPECT_EQ(sa.mem_writes, sb.mem_writes);
}

TEST(TraceCpu, VectorizedLoopMatchesBatchedLoop) {
  const auto ops = mixed_ops(20'000);
  trace::VectorTraceSource src_a(ops), src_b(ops);
  MemoryHierarchy mem_a(tiny_cfg()), mem_b(tiny_cfg());
  TraceCpu cpu_a(src_a, mem_a), cpu_b(src_b, mem_b);
  NullHooks hooks;
  EXPECT_EQ(cpu_a.run(100'000, hooks), cpu_b.run_vectorized(100'000, hooks));
  expect_same_run(cpu_a, mem_a, cpu_b, mem_b);
}

TEST(TraceCpu, VectorizedLoopHonoursInstructionBudget) {
  const auto ops = mixed_ops(20'000);
  trace::VectorTraceSource src_a(ops), src_b(ops);
  MemoryHierarchy mem_a(tiny_cfg()), mem_b(tiny_cfg());
  TraceCpu cpu_a(src_a, mem_a), cpu_b(src_b, mem_b);
  NullHooks hooks;
  EXPECT_EQ(cpu_a.run(1'000, hooks), cpu_b.run_vectorized(1'000, hooks));
  expect_same_run(cpu_a, mem_a, cpu_b, mem_b);
  // Resume both to trace end.
  EXPECT_EQ(cpu_a.run(100'000, hooks), cpu_b.run_vectorized(100'000, hooks));
  expect_same_run(cpu_a, mem_a, cpu_b, mem_b);
}

TEST(TraceCpu, BatchedStylesHandOffMidBatch) {
  // The two batched styles share the batch buffer; switching styles with a
  // partially consumed batch must lose no ops and change no result. (The
  // vectorized loop re-decodes an inherited batch; the plain loop just
  // ignores the decode arrays.)
  const auto ops = mixed_ops(20'000);
  trace::VectorTraceSource src_a(ops), src_b(ops);
  MemoryHierarchy mem_a(tiny_cfg()), mem_b(tiny_cfg());
  TraceCpu cpu_a(src_a, mem_a), cpu_b(src_b, mem_b);
  NullHooks hooks;
  std::uint64_t done_a = 0, done_b = 0;
  // 100-instruction slices are far smaller than kBatchOps, so every switch
  // happens mid-batch.
  for (int slice = 0; ; ++slice) {
    const std::uint64_t got_b = (slice % 2 == 0)
                                    ? cpu_b.run(100, hooks)
                                    : cpu_b.run_vectorized(100, hooks);
    done_a += cpu_a.run(100, hooks);
    done_b += got_b;
    if (got_b == 0) break;
  }
  EXPECT_EQ(done_a, done_b);
  expect_same_run(cpu_a, mem_a, cpu_b, mem_b);
}

}  // namespace
}  // namespace reap::sim

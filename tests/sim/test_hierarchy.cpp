#include "reap/sim/hierarchy.hpp"

#include <gtest/gtest.h>

namespace reap::sim {
namespace {

HierarchyConfig tiny_cfg() {
  HierarchyConfig cfg;
  // Shrink for directed tests: L1 = 2 sets x 2 ways, L2 = 4 sets x 2 ways.
  cfg.l1i = {.name = "L1I", .capacity_bytes = 256, .ways = 2, .block_bytes = 64};
  cfg.l1d = {.name = "L1D", .capacity_bytes = 256, .ways = 2, .block_bytes = 64};
  cfg.l2 = {.name = "L2", .capacity_bytes = 512, .ways = 2, .block_bytes = 64};
  cfg.l2_hit_cycles = 10;
  cfg.mem_cycles = 100;
  return cfg;
}

TEST(Hierarchy, TableOneDefaults) {
  const HierarchyConfig cfg;
  EXPECT_EQ(cfg.l1i.capacity_bytes, 32u * 1024u);
  EXPECT_EQ(cfg.l1i.ways, 4u);
  EXPECT_EQ(cfg.l1d.capacity_bytes, 32u * 1024u);
  EXPECT_EQ(cfg.l1d.ways, 4u);
  EXPECT_EQ(cfg.l2.capacity_bytes, 1024u * 1024u);
  EXPECT_EQ(cfg.l2.ways, 8u);
  EXPECT_EQ(cfg.l2.block_bytes, 64u);
}

TEST(Hierarchy, ColdLoadMissesToMemory) {
  MemoryHierarchy h(tiny_cfg());
  const auto stall = h.load(0x10000);
  EXPECT_EQ(stall, 100u);  // mem_cycles
  const auto s = h.stats();
  EXPECT_EQ(s.l1d.read_lookups, 1u);
  EXPECT_EQ(s.l1d.read_hits, 0u);
  EXPECT_EQ(s.l2.read_lookups, 1u);
  EXPECT_EQ(s.mem_reads, 1u);
}

TEST(Hierarchy, SecondLoadHitsL1) {
  MemoryHierarchy h(tiny_cfg());
  h.load(0x10000);
  EXPECT_EQ(h.load(0x10000), 0u);
  EXPECT_EQ(h.load(0x10020), 0u);  // same block
  const auto s = h.stats();
  EXPECT_EQ(s.l1d.read_hits, 2u);
  EXPECT_EQ(s.l2.read_lookups, 1u);  // only the first miss
}

TEST(Hierarchy, L1EvictionHitsL2) {
  MemoryHierarchy h(tiny_cfg());
  // L1D: 2 sets. Addresses with the same L1 set: stride 128.
  h.load(0x0000);
  h.load(0x0080);
  h.load(0x0100);  // evicts 0x0000 from L1 (clean): no L2 write
  EXPECT_EQ(h.stats().l2.write_lookups, 0u);
  // Re-load 0x0000: L1 miss, L2 must still hold it if L2 retained it.
  const auto stall = h.load(0x0000);
  EXPECT_EQ(stall, 10u);  // L2 hit
}

TEST(Hierarchy, DirtyL1EvictionWritesBackToL2) {
  MemoryHierarchy h(tiny_cfg());
  h.store(0x0000);  // dirty in L1
  h.load(0x0080);
  h.load(0x0100);  // evicts dirty 0x0000 -> L2 write
  const auto s = h.stats();
  EXPECT_GE(s.l2.write_lookups, 1u);
}

TEST(Hierarchy, StoreAllocatesAndDirties) {
  MemoryHierarchy h(tiny_cfg());
  const auto stall = h.store(0x4000);
  EXPECT_EQ(stall, 100u);  // cold miss
  EXPECT_EQ(h.store(0x4000), 0u);
  EXPECT_EQ(h.stats().l1d.write_hits, 2u);  // allocate-then-write + hit
}

TEST(Hierarchy, InstFetchSequentialBlocksCoalesce) {
  MemoryHierarchy h(tiny_cfg());
  h.inst_fetch(0x400000);
  const auto before = h.stats().l1i.read_lookups;
  // 15 more fetches within the same 64B block: no further L1I lookups.
  for (int i = 1; i < 16; ++i) h.inst_fetch(0x400000 + i * 4);
  EXPECT_EQ(h.stats().l1i.read_lookups, before);
  h.inst_fetch(0x400040);  // next block
  EXPECT_EQ(h.stats().l1i.read_lookups, before + 1);
}

TEST(Hierarchy, L2MissFillsAndEvicts) {
  MemoryHierarchy h(tiny_cfg());
  // L2: 4 sets, 2 ways. Same L2 set: stride 256. Fill 3 blocks in set 0.
  h.load(0x0000);
  h.load(0x0100);
  h.load(0x0200);  // L2 set 0 overflows: eviction
  const auto s = h.stats();
  EXPECT_EQ(s.l2.fills, 3u);
  EXPECT_EQ(s.l2.evictions, 1u);
}

TEST(Hierarchy, WriteAllocateOnL2WriteMiss) {
  MemoryHierarchy h(tiny_cfg());
  // Dirty a line in L1, then force its eviction after L2 also evicted it.
  h.store(0x0000);
  // Thrash L2 set 0 (stride = 256 for 4-set L2) so 0x0000 leaves L2.
  h.load(0x0100);
  h.load(0x0200);
  h.load(0x0300);
  // Now push 0x0000 out of L1 (L1 stride 128, set 0).
  h.load(0x0080);
  h.load(0x0100);
  // The dirty writeback of 0x0000 missed L2 -> write-allocate: mem read.
  const auto s = h.stats();
  EXPECT_GT(s.mem_reads, 4u);
  EXPECT_EQ(s.l2.write_lookups, 1u);
  EXPECT_EQ(s.l2.write_hits, 0u);
}

TEST(Hierarchy, L2DirtyEvictionReachesMemory) {
  MemoryHierarchy h(tiny_cfg());
  h.store(0x0000);
  // Evict 0x0000 from L1 so L2 holds it dirty.
  h.store(0x0080);
  h.store(0x0100);
  // 0x0000 written back to L2 (dirty). Now thrash L2 set 0.
  h.load(0x0200);
  h.load(0x0300);
  h.load(0x0400);
  EXPECT_GE(h.stats().mem_writes, 1u);
}

TEST(Hierarchy, ResetStatsZeroesEverything) {
  MemoryHierarchy h(tiny_cfg());
  h.load(0x10000);
  h.store(0x20000);
  h.inst_fetch(0x400000);
  h.reset_stats();
  const auto s = h.stats();
  EXPECT_EQ(s.l1d.read_lookups, 0u);
  EXPECT_EQ(s.l2.read_lookups, 0u);
  EXPECT_EQ(s.mem_reads, 0u);
  EXPECT_EQ(s.mem_writes, 0u);
}

TEST(Hierarchy, OnesModelAppliedToL2Lines) {
  MemoryHierarchy h(tiny_cfg());
  h.set_l2_ones_provider(OnesProvider::fixed(123));
  h.load(0x0000);
  bool found = false;
  for (std::size_t w = 0; w < h.l2().config().ways; ++w) {
    const auto line = h.l2().line_info(0, w);
    if (line.valid) {
      EXPECT_EQ(line.ones, 123u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Hierarchy, L2HitLatencyOverride) {
  MemoryHierarchy h(tiny_cfg());
  h.set_l2_hit_cycles(33);
  h.load(0x0000);
  h.load(0x0080);
  h.load(0x0100);       // evict 0x0000 from L1 (clean)
  EXPECT_EQ(h.load(0x0000), 33u);  // L2 hit at the overridden latency
}

}  // namespace
}  // namespace reap::sim

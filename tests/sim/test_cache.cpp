#include "reap/sim/cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace reap::sim {
namespace {

CacheConfig small_cfg() {
  // 4 sets x 2 ways x 64B = 512B.
  return {.name = "t",
          .capacity_bytes = 512,
          .ways = 2,
          .block_bytes = 64,
          .replacement = ReplacementKind::lru};
}

// Builds an address with the given tag and set for a 64B-block, 4-set cache.
std::uint64_t mk_addr(std::uint64_t tag, std::uint64_t set) {
  return (tag << (6 + 2)) | (set << 6);
}

TEST(Cache, GeometryChecks) {
  SetAssocCache c(small_cfg());
  EXPECT_EQ(c.config().sets(), 4u);
  EXPECT_EQ(c.set_of(mk_addr(5, 3)), 3u);
  EXPECT_EQ(c.tag_of(mk_addr(5, 3)), 5u);
  EXPECT_EQ(c.line_addr(5, 3), mk_addr(5, 3));
}

TEST(Cache, ColdMissesThenHits) {
  SetAssocCache c(small_cfg());
  const auto a = mk_addr(1, 0);
  EXPECT_FALSE(c.read(a));
  c.fill(a, false);
  EXPECT_TRUE(c.read(a));
  EXPECT_EQ(c.stats().read_lookups, 2u);
  EXPECT_EQ(c.stats().read_hits, 1u);
  EXPECT_EQ(c.stats().fills, 1u);
}

TEST(Cache, OffsetBitsIgnored) {
  SetAssocCache c(small_cfg());
  c.fill(mk_addr(1, 0), false);
  EXPECT_TRUE(c.read(mk_addr(1, 0) + 63));
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  SetAssocCache c(small_cfg());
  const auto a = mk_addr(1, 0), b = mk_addr(2, 0), d = mk_addr(3, 0);
  c.fill(a, false);
  c.fill(b, false);
  EXPECT_TRUE(c.read(a));  // a is now MRU
  const auto ev = c.fill(d, false);
  ASSERT_TRUE(ev.any);
  EXPECT_EQ(ev.addr, b);  // b was LRU
  EXPECT_TRUE(c.probe(a));
  EXPECT_FALSE(c.probe(b));
  EXPECT_TRUE(c.probe(d));
}

TEST(Cache, FifoEvictsOldestFill) {
  CacheConfig cfg = small_cfg();
  cfg.replacement = ReplacementKind::fifo;
  SetAssocCache c(cfg);
  const auto a = mk_addr(1, 0), b = mk_addr(2, 0), d = mk_addr(3, 0);
  c.fill(a, false);
  c.fill(b, false);
  EXPECT_TRUE(c.read(a));  // touching does not save a under FIFO
  const auto ev = c.fill(d, false);
  ASSERT_TRUE(ev.any);
  EXPECT_EQ(ev.addr, a);
}

TEST(Cache, RandomReplacementEvictsSomething) {
  CacheConfig cfg = small_cfg();
  cfg.replacement = ReplacementKind::random_repl;
  SetAssocCache c(cfg, 99);
  c.fill(mk_addr(1, 0), false);
  c.fill(mk_addr(2, 0), false);
  const auto ev = c.fill(mk_addr(3, 0), false);
  EXPECT_TRUE(ev.any);
  EXPECT_TRUE(ev.addr == mk_addr(1, 0) || ev.addr == mk_addr(2, 0));
}

TEST(Cache, LerEvictsMostAccumulatedLine) {
  CacheConfig cfg = small_cfg();
  cfg.replacement = ReplacementKind::least_error_rate;
  SetAssocCache c(cfg);
  const auto a = mk_addr(1, 0), b = mk_addr(2, 0), d = mk_addr(3, 0);
  c.fill(a, false);
  c.fill(b, false);
  // Simulate accumulation via a hooks-free read pattern: directly bump the
  // counter through repeated reads is not possible without hooks, so use
  // the public surface: reads touch LRU only. Force distinct accumulation
  // through a policy-style mutation is internal; instead verify the LRU
  // tie-break first (equal counters -> LRU victim).
  EXPECT_TRUE(c.read(a));  // a becomes MRU; counters equal (0)
  const auto ev = c.fill(d, false);
  ASSERT_TRUE(ev.any);
  EXPECT_EQ(ev.addr, b);  // tie on accumulation -> LRU (b) leaves
}

TEST(Cache, LerPrefersAccumulationOverRecency) {
  CacheConfig cfg = small_cfg();
  cfg.replacement = ReplacementKind::least_error_rate;
  SetAssocCache c(cfg);

  // Attach a hook that marks way 0 as heavily accumulated.
  class Bumper : public L2PolicyHooks {
   public:
    void on_read_lookup(CacheSetView set, int hit_way) override {
      if (hit_way >= 0) set.rel(0).reads_since_check = 100;
    }
    void on_write_lookup(CacheSetView, int) override {}
    void on_fill(LineRel&) override {}
    void on_evict(LineRel&, bool) override {}
  } bumper;

  const auto a = mk_addr(1, 0), b = mk_addr(2, 0), d = mk_addr(3, 0);
  c.fill(a, false);  // way 0
  c.fill(b, false);  // way 1
  c.set_hooks(&bumper);
  EXPECT_TRUE(c.read(a));  // bumps way 0's accumulation, a is MRU
  c.set_hooks(nullptr);

  // LRU would evict b; LER must evict the accumulated a despite recency.
  const auto ev = c.fill(d, false);
  ASSERT_TRUE(ev.any);
  EXPECT_EQ(ev.addr, a);
}

TEST(Cache, InvalidWaysFillFirst) {
  SetAssocCache c(small_cfg());
  c.fill(mk_addr(1, 0), false);
  const auto ev = c.fill(mk_addr(2, 0), false);
  EXPECT_FALSE(ev.any);  // second way was free
}

TEST(Cache, DirtyEvictionReported) {
  SetAssocCache c(small_cfg());
  c.fill(mk_addr(1, 0), true);
  c.fill(mk_addr(2, 0), false);
  const auto ev = c.fill(mk_addr(3, 0), false);
  ASSERT_TRUE(ev.any);
  EXPECT_TRUE(ev.dirty);
  EXPECT_EQ(ev.addr, mk_addr(1, 0));
  EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

TEST(Cache, WriteHitDirtiesClearsAccumulationAndKeepsOnes) {
  SetAssocCache c(small_cfg());
  c.set_ones_provider(OnesProvider::fixed(100));
  c.fill(mk_addr(1, 0), false);
  EXPECT_EQ(c.line_info(0, 0).ones, 100u);
  EXPECT_FALSE(c.line_info(0, 0).dirty);

  // Providers are address-deterministic (the OnesProvider contract), so a
  // write hit keeps the count installed at fill rather than re-deriving
  // the same value -- even across a mid-run provider swap, which real
  // experiments never do.
  c.set_ones_provider(OnesProvider::fixed(200));
  EXPECT_TRUE(c.write(mk_addr(1, 0)));
  EXPECT_TRUE(c.line_info(0, 0).dirty);
  EXPECT_EQ(c.line_info(0, 0).ones, 100u);
  EXPECT_EQ(c.line_info(0, 0).reads_since_check, 0u);

  // The next fill of the line derives from the current provider.
  c.invalidate(mk_addr(1, 0));
  c.fill(mk_addr(1, 0), false);
  EXPECT_EQ(c.line_info(0, 0).ones, 200u);
}

TEST(Cache, WriteMissDoesNotAllocate) {
  SetAssocCache c(small_cfg());
  EXPECT_FALSE(c.write(mk_addr(1, 0)));
  EXPECT_FALSE(c.probe(mk_addr(1, 0)));
  EXPECT_EQ(c.stats().write_lookups, 1u);
  EXPECT_EQ(c.stats().write_hits, 0u);
}

TEST(Cache, InvalidateClearsLine) {
  SetAssocCache c(small_cfg());
  c.fill(mk_addr(1, 0), true);
  EXPECT_TRUE(c.invalidate(mk_addr(1, 0)));  // was dirty
  EXPECT_FALSE(c.probe(mk_addr(1, 0)));
  EXPECT_FALSE(c.invalidate(mk_addr(1, 0)));
}

TEST(Cache, DefaultOnesIsHalfBlockBits) {
  SetAssocCache c(small_cfg());
  c.fill(mk_addr(1, 2), false);
  EXPECT_EQ(c.line_info(2, 0).ones, 256u);
}

// Hook recording for interface verification.
class RecordingHooks : public L2PolicyHooks {
 public:
  void on_read_lookup(CacheSetView set, int hit_way) override {
    ++reads;
    last_ways = set.size();
    last_hit = hit_way;
  }
  void on_write_lookup(CacheSetView, int hit_way) override {
    ++writes;
    last_hit = hit_way;
  }
  void on_fill(LineRel&) override { ++fills; }
  void on_evict(LineRel& rel, bool dirty) override {
    ++evicts;
    last_evicted_ones = rel.ones;
    last_evicted_dirty = dirty;
  }

  int reads = 0, writes = 0, fills = 0, evicts = 0;
  std::size_t last_ways = 0;
  int last_hit = -2;
  std::uint32_t last_evicted_ones = 0;
  bool last_evicted_dirty = false;
};

TEST(CacheHooks, ReadLookupSeesAllWaysAndHitIndex) {
  SetAssocCache c(small_cfg());
  RecordingHooks h;
  c.set_hooks(&h);
  c.read(mk_addr(1, 0));
  EXPECT_EQ(h.reads, 1);
  EXPECT_EQ(h.last_ways, 2u);
  EXPECT_EQ(h.last_hit, -1);
  c.fill(mk_addr(1, 0), false);
  EXPECT_EQ(h.fills, 1);
  c.read(mk_addr(1, 0));
  EXPECT_EQ(h.last_hit, 0);
}

TEST(CacheHooks, EvictFiresBeforeInvalidation) {
  SetAssocCache c(small_cfg());
  RecordingHooks h;
  c.set_hooks(&h);
  c.set_ones_provider(OnesProvider::fixed(77));
  c.fill(mk_addr(1, 0), false);
  c.fill(mk_addr(2, 0), false);
  c.fill(mk_addr(3, 0), false);  // evicts one
  EXPECT_EQ(h.evicts, 1);
  EXPECT_EQ(h.last_evicted_ones, 77u);  // still populated at evict time
  EXPECT_FALSE(h.last_evicted_dirty);
  EXPECT_EQ(h.fills, 3);
}

TEST(CacheHooks, WriteLookupFiresOnMissToo) {
  SetAssocCache c(small_cfg());
  RecordingHooks h;
  c.set_hooks(&h);
  c.write(mk_addr(9, 1));
  EXPECT_EQ(h.writes, 1);
  EXPECT_EQ(h.last_hit, -1);
}

TEST(Cache, StatsResetKeepsContents) {
  SetAssocCache c(small_cfg());
  c.fill(mk_addr(1, 0), false);
  c.read(mk_addr(1, 0));
  c.reset_stats();
  EXPECT_EQ(c.stats().read_lookups, 0u);
  EXPECT_TRUE(c.probe(mk_addr(1, 0)));  // contents survive
}

TEST(Cache, RejectsNonPowerOfTwoGeometry) {
  CacheConfig cfg = small_cfg();
  cfg.block_bytes = 48;
  EXPECT_DEATH(SetAssocCache c(cfg), "");
}

}  // namespace
}  // namespace reap::sim

// Scalar-vs-vector equivalence for the sim::simd kernels.
//
// Every kernel in sim/simd.hpp ships with an always-compiled scalar
// reference; these tests fuzz the vector forms against them (and against
// the cache's own address arithmetic for predecode) so that architecture
// invariant 7 -- SIMD and scalar builds are byte-identical -- rests on a
// checked kernel contract, not just code review. The same binary runs
// under both REAP_SIMD settings in CI: with the vector path compiled out,
// the comparisons are trivially scalar-vs-scalar and still pin the shared
// layout (padded_ways, AlignedVec) both builds use.

#include "reap/sim/simd.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "reap/sim/cache.hpp"

namespace reap::sim::simd {
namespace {

// Way counts the fuzzers sweep: vector-width multiples, sub-vector sets,
// and unaligned counts that exercise the padding lanes.
const std::size_t kWayCounts[] = {1, 2, 3, 4, 5, 7, 8, 12, 16};

TEST(Simd, PaddedWaysRoundsUpToVectorWidth) {
  EXPECT_EQ(padded_ways(1), 4u);
  EXPECT_EQ(padded_ways(4), 4u);
  EXPECT_EQ(padded_ways(5), 8u);
  EXPECT_EQ(padded_ways(8), 8u);
  EXPECT_EQ(padded_ways(16), 16u);
}

TEST(Simd, AlignedVecIsLineAlignedAndZeroed) {
  AlignedVec<std::uint64_t> v(13);
  ASSERT_NE(v.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kLineBytes, 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], 0u);
}

// Fills a padded tag column: entries past `ways` stay zero, as the cache
// guarantees. `p_hit` controls how often the key is planted.
struct TagColumnFuzzer {
  std::mt19937_64 rng{0x51D5EEDu};

  std::vector<std::uint64_t> make_column(std::size_t ways, std::uint64_t key,
                                         double p_hit) {
    std::vector<std::uint64_t> col(padded_ways(ways), 0);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_int_distribution<std::uint64_t> tag(0, 1u << 20);
    for (std::size_t w = 0; w < ways; ++w) {
      const double c = coin(rng);
      if (c < p_hit) {
        col[w] = key;  // planted match (possibly duplicated across ways)
      } else if (c < 0.85) {
        col[w] = (tag(rng) << 1) | 1;  // some other valid tag
      } else {
        col[w] = 0;  // invalid way
      }
    }
    return col;
  }
};

TEST(Simd, FindWayMatchesScalarUnderFuzz) {
  TagColumnFuzzer fz;
  for (std::size_t ways : kWayCounts) {
    for (int iter = 0; iter < 2000; ++iter) {
      const std::uint64_t key =
          ((fz.rng() & ((1u << 20) - 1)) << 1) | 1;  // odd by construction
      // Sweep hit probability so misses, single hits, and duplicate hits
      // (first-match semantics) all occur.
      const double p_hit = (iter % 4) * 0.15;
      const auto col = fz.make_column(ways, key, p_hit);
      EXPECT_EQ(find_way(col.data(), ways, key),
                find_way_scalar(col.data(), ways, key))
          << "ways=" << ways << " iter=" << iter;
    }
  }
}

TEST(Simd, FindWayNeverMatchesPaddingOrInvalid) {
  // A column of only invalid (zero) entries -- including the padding lanes
  // the vector form also scans -- must miss for any valid (odd) key.
  for (std::size_t ways : kWayCounts) {
    std::vector<std::uint64_t> col(padded_ways(ways), 0);
    EXPECT_EQ(find_way(col.data(), ways, 1), -1);
    EXPECT_EQ(find_way(col.data(), ways, (std::uint64_t{7} << 1) | 1), -1);
  }
}

TEST(Simd, FindWayFirstMatchWins) {
  const std::uint64_t key = (std::uint64_t{42} << 1) | 1;
  for (std::size_t ways : kWayCounts) {
    if (ways < 2) continue;
    std::vector<std::uint64_t> col(padded_ways(ways), 0);
    for (std::size_t w = 1; w < ways; ++w) col[w] = key;  // all but way 0
    EXPECT_EQ(find_way(col.data(), ways, key), 1) << "ways=" << ways;
  }
}

TEST(Simd, AccumulateValidMatchesScalarUnderFuzz) {
  TagColumnFuzzer fz;
  std::mt19937_64 rng{0xACC5EEDu};
  for (std::size_t ways : kWayCounts) {
    for (int iter = 0; iter < 500; ++iter) {
      const std::size_t stride = padded_ways(ways);
      const auto col = fz.make_column(ways, (std::uint64_t{9} << 1) | 1, 0.2);
      // Random LineRel columns, including counters at the uint32 edge so
      // the wrap behaviour is compared too.
      std::vector<LineRel> a(stride), b(stride);
      for (std::size_t w = 0; w < stride; ++w) {
        a[w].ones = static_cast<std::uint32_t>(rng());
        a[w].reads_since_check =
            (iter % 5 == 0) ? 0xFFFFFFFFu : static_cast<std::uint32_t>(rng());
        b[w] = a[w];
      }
      accumulate_valid(col.data(), a.data(), ways);
      accumulate_valid_scalar(col.data(), b.data(), ways);
      EXPECT_EQ(std::memcmp(a.data(), b.data(), stride * sizeof(LineRel)), 0)
          << "ways=" << ways << " iter=" << iter;
      // The vector form may touch padding lanes but must not change them
      // by value, and must never touch `ones`.
      for (std::size_t w = ways; w < stride; ++w) {
        EXPECT_EQ(a[w].reads_since_check, b[w].reads_since_check);
        EXPECT_EQ(a[w].ones, b[w].ones);
      }
    }
  }
}

TEST(Simd, PredecodeMatchesCacheAddressArithmetic) {
  // The pre-pass must reproduce set_of/tagv_of for the L2 geometry (and
  // any other power-of-two geometry).
  const CacheConfig cfgs[] = {
      {.name = "L2", .capacity_bytes = 1024 * 1024, .ways = 8,
       .block_bytes = 64},
      {.name = "t", .capacity_bytes = 512, .ways = 2, .block_bytes = 64},
  };
  std::mt19937_64 rng{0xDECDE5EEDu};
  for (const auto& cfg : cfgs) {
    SetAssocCache c(cfg);
    std::vector<trace::MemOp> ops(257);
    for (auto& op : ops)
      op = {trace::OpType::load, rng() & ((std::uint64_t{1} << 48) - 1)};
    std::vector<std::uint32_t> set(ops.size());
    std::vector<std::uint64_t> tagv(ops.size());
    predecode(ops.data(), ops.size(), c.offset_bits(), c.index_bits(),
              set.data(), tagv.data());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      EXPECT_EQ(set[i], c.set_of(ops[i].addr));
      EXPECT_EQ(tagv[i], c.tagv_of(ops[i].addr));
    }
  }
}

}  // namespace
}  // namespace reap::sim::simd

#include "reap/ecc/gf2.hpp"

#include <gtest/gtest.h>

namespace reap::ecc {
namespace {

class GfFields : public ::testing::TestWithParam<unsigned> {};

TEST_P(GfFields, ExpLogAreInverse) {
  GaloisField gf(GetParam());
  for (std::uint32_t x = 1; x < gf.size(); ++x) {
    EXPECT_EQ(gf.alpha_pow(gf.log(x)), x);
  }
}

TEST_P(GfFields, MultiplicationByInverseIsOne) {
  GaloisField gf(GetParam());
  for (std::uint32_t x = 1; x < gf.size(); ++x) {
    EXPECT_EQ(gf.mul(x, gf.inv(x)), 1u);
  }
}

TEST_P(GfFields, AlphaHasFullOrder) {
  GaloisField gf(GetParam());
  // alpha^i != 1 for 0 < i < order (primitivity).
  for (std::uint32_t i = 1; i < gf.order(); ++i) {
    ASSERT_NE(gf.alpha_pow(i), 1u) << "i=" << i;
  }
  EXPECT_EQ(gf.alpha_pow(gf.order()), 1u);
}

INSTANTIATE_TEST_SUITE_P(SmallFields, GfFields,
                         ::testing::Values(3u, 4u, 5u, 6u, 8u, 10u));

TEST(GaloisField, MulCommutesAndDistributes) {
  GaloisField gf(5);
  for (std::uint32_t a = 0; a < gf.size(); ++a) {
    for (std::uint32_t b = 0; b < gf.size(); ++b) {
      EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
      for (std::uint32_t c = 0; c < gf.size(); c += 7) {
        EXPECT_EQ(gf.mul(a, GaloisField::add(b, c)),
                  GaloisField::add(gf.mul(a, b), gf.mul(a, c)));
      }
    }
  }
}

TEST(GaloisField, ZeroAbsorbsAndOneIsIdentity) {
  GaloisField gf(8);
  for (std::uint32_t x = 0; x < gf.size(); ++x) {
    EXPECT_EQ(gf.mul(x, 0), 0u);
    EXPECT_EQ(gf.mul(x, 1), x);
  }
}

TEST(GaloisField, DivIsMulByInverse) {
  GaloisField gf(6);
  for (std::uint32_t a = 0; a < gf.size(); a += 3) {
    for (std::uint32_t b = 1; b < gf.size(); b += 5) {
      EXPECT_EQ(gf.div(a, b), gf.mul(a, gf.inv(b)));
    }
  }
}

TEST(GaloisField, NegativeExponentsWrap) {
  GaloisField gf(4);
  EXPECT_EQ(gf.alpha_pow(-1), gf.alpha_pow(gf.order() - 1));
  EXPECT_EQ(gf.alpha_pow(-static_cast<std::int64_t>(gf.order())),
            gf.alpha_pow(0));
}

TEST(GaloisField, EvalPolyHorner) {
  GaloisField gf(4);
  // p(x) = x^2 + x + 1 at alpha: alpha^2 ^ alpha ^ 1.
  const std::vector<std::uint32_t> poly = {1, 1, 1};
  const std::uint32_t a = gf.alpha_pow(1);
  const std::uint32_t expected =
      GaloisField::add(GaloisField::add(gf.mul(a, a), a), 1);
  EXPECT_EQ(gf.eval_poly(poly, a), expected);
}

TEST(GaloisField, MinimalPolynomialOfAlphaIsPrimitivePoly) {
  for (unsigned m : {3u, 4u, 5u, 8u, 10u}) {
    GaloisField gf(m);
    EXPECT_EQ(gf.minimal_polynomial(1), gf.primitive_poly()) << "m=" << m;
  }
}

TEST(GaloisField, MinimalPolynomialHasRootAlphaPowE) {
  GaloisField gf(6);
  for (std::uint32_t e : {1u, 3u, 5u, 9u}) {
    const std::uint64_t mp = gf.minimal_polynomial(e);
    // Evaluate the GF(2)-coefficient polynomial at alpha^e over GF(2^m).
    std::vector<std::uint32_t> poly;
    for (std::uint64_t mask = mp; mask; mask >>= 1) poly.push_back(mask & 1);
    EXPECT_EQ(gf.eval_poly(poly, gf.alpha_pow(e)), 0u) << "e=" << e;
  }
}

}  // namespace
}  // namespace reap::ecc

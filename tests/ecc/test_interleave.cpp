#include "reap/ecc/interleave.hpp"

#include <gtest/gtest.h>

#include "reap/common/rng.hpp"
#include "reap/ecc/secded.hpp"

namespace reap::ecc {
namespace {

std::unique_ptr<Code> make_secded(std::size_t k) {
  return std::make_unique<SecDedCode>(k);
}

common::BitVec random_data(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  common::BitVec v(n);
  for (std::size_t i = 0; i < n; ++i)
    if (rng.chance(0.5)) v.set(i);
  return v;
}

TEST(Interleave, GeometryIs8x72For512) {
  InterleavedCode c(512, 8, make_secded);
  EXPECT_EQ(c.ways(), 8u);
  EXPECT_EQ(c.data_bits(), 512u);
  EXPECT_EQ(c.parity_bits(), 8u * 8u);  // 8 chunks x (72,64)+parity = 8 bits
  EXPECT_EQ(c.codeword_bits(), 512u + 64u);
  EXPECT_EQ(c.correctable_bits(), 1u);  // worst case: all errors in one chunk
}

TEST(Interleave, CleanRoundTrip) {
  InterleavedCode c(512, 8, make_secded);
  const auto data = random_data(512, 40);
  const auto res = c.decode(c.encode(data));
  EXPECT_EQ(res.status, DecodeStatus::clean);
  EXPECT_EQ(res.data, data);
}

TEST(Interleave, CorrectsEverySingleBitError) {
  InterleavedCode c(128, 4, make_secded);
  const auto data = random_data(128, 41);
  const auto cw = c.encode(data);
  for (std::size_t i = 0; i < cw.size(); ++i) {
    auto bad = cw;
    bad.flip(i);
    const auto res = c.decode(bad);
    ASSERT_EQ(res.status, DecodeStatus::corrected) << i;
    ASSERT_EQ(res.data, data) << i;
  }
}

TEST(Interleave, CorrectsOneErrorPerChunk) {
  // The interleaving payoff: k errors are fixable when spread across
  // chunks, which a single (523,512) SEC-DED could never do.
  InterleavedCode c(512, 8, make_secded);
  const auto data = random_data(512, 42);
  auto cw = c.encode(data);
  // Flip bit 0 of each chunk's data region: chunk i starts at i * 72.
  for (std::size_t chunk = 0; chunk < 8; ++chunk) cw.flip(chunk * 72);
  const auto res = c.decode(cw);
  EXPECT_EQ(res.status, DecodeStatus::corrected);
  EXPECT_EQ(res.corrected_bits, 8u);
  EXPECT_EQ(res.data, data);
}

TEST(Interleave, DoubleErrorInOneChunkDetected) {
  InterleavedCode c(512, 8, make_secded);
  const auto data = random_data(512, 43);
  auto cw = c.encode(data);
  cw.flip(10);
  cw.flip(20);  // both inside chunk 0
  EXPECT_EQ(c.decode(cw).status, DecodeStatus::detected_uncorrectable);
}

TEST(Interleave, RejectsIndivisibleGeometry) {
  EXPECT_DEATH(InterleavedCode(100, 8, make_secded), "");
}

}  // namespace
}  // namespace reap::ecc

#include "reap/ecc/bch.hpp"

#include <gtest/gtest.h>

#include "reap/common/rng.hpp"

namespace reap::ecc {
namespace {

common::BitVec random_data(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  common::BitVec v(n);
  for (std::size_t i = 0; i < n; ++i)
    if (rng.chance(0.5)) v.set(i);
  return v;
}

TEST(Bch, GeometryFor512T2) {
  BchCode c(512, 2);
  EXPECT_EQ(c.field_m(), 10u);
  EXPECT_EQ(c.data_bits(), 512u);
  EXPECT_EQ(c.parity_bits(), 20u);  // 2 * m
  EXPECT_EQ(c.correctable_bits(), 2u);
}

TEST(Bch, CleanRoundTrip) {
  for (unsigned t : {1u, 2u, 3u}) {
    BchCode c(64, t);
    const auto data = random_data(64, 30 + t);
    const auto res = c.decode(c.encode(data));
    EXPECT_EQ(res.status, DecodeStatus::clean) << "t=" << t;
    EXPECT_EQ(res.data, data) << "t=" << t;
  }
}

TEST(Bch, SystematicLayout) {
  BchCode c(32, 2);
  const auto data = random_data(32, 33);
  const auto cw = c.encode(data);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(cw.test(i), data.test(i));
}

struct BchParam {
  std::size_t k;
  unsigned t;
};

class BchCorrects : public ::testing::TestWithParam<BchParam> {};

TEST_P(BchCorrects, EverySingleBitError) {
  const auto [k, t] = GetParam();
  BchCode c(k, t);
  const auto data = random_data(k, k * 3 + t);
  const auto cw = c.encode(data);
  for (std::size_t i = 0; i < cw.size(); ++i) {
    auto bad = cw;
    bad.flip(i);
    const auto res = c.decode(bad);
    ASSERT_EQ(res.status, DecodeStatus::corrected) << "bit " << i;
    ASSERT_EQ(res.data, data) << "bit " << i;
    ASSERT_EQ(res.corrected_bits, 1u);
  }
}

TEST_P(BchCorrects, SampledDoubleErrorsWhenT2Plus) {
  const auto [k, t] = GetParam();
  if (t < 2) GTEST_SKIP() << "needs t >= 2";
  BchCode c(k, t);
  const auto data = random_data(k, k * 5 + t);
  const auto cw = c.encode(data);
  common::Rng rng(35);
  for (int trial = 0; trial < 300; ++trial) {
    auto bad = cw;
    const auto i = rng.below(bad.size());
    auto j = rng.below(bad.size());
    while (j == i) j = rng.below(bad.size());
    bad.flip(i);
    bad.flip(j);
    const auto res = c.decode(bad);
    ASSERT_EQ(res.status, DecodeStatus::corrected) << i << "," << j;
    ASSERT_EQ(res.data, data) << i << "," << j;
    ASSERT_EQ(res.corrected_bits, 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BchCorrects,
    ::testing::Values(BchParam{16, 1}, BchParam{16, 2}, BchParam{64, 2},
                      BchParam{128, 2}, BchParam{512, 2}, BchParam{64, 3}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.k) + "_t" +
             std::to_string(info.param.t);
    });

TEST(Bch, TripleErrorsOnT2DetectedOrMiscorrected) {
  // Beyond-capability patterns must never be returned as "corrected into
  // the original data"; they either get flagged or miscorrect to a
  // *different* codeword. Count that detection is the common outcome.
  BchCode c(128, 2);
  const auto data = random_data(128, 36);
  const auto cw = c.encode(data);
  common::Rng rng(37);
  int detected = 0, silent_ok = 0;
  for (int trial = 0; trial < 400; ++trial) {
    auto bad = cw;
    std::size_t a = rng.below(bad.size()), b = a, d = a;
    while (b == a) b = rng.below(bad.size());
    while (d == a || d == b) d = rng.below(bad.size());
    bad.flip(a);
    bad.flip(b);
    bad.flip(d);
    const auto res = c.decode(bad);
    if (res.status == DecodeStatus::detected_uncorrectable) {
      ++detected;
    } else if (res.data == data) {
      ++silent_ok;  // would be a decoder bug
    }
  }
  EXPECT_EQ(silent_ok, 0);
  EXPECT_GT(detected, 200);
}

TEST(Bch, UnidirectionalDoubleErrorsCorrected512) {
  // The exact paper failure mode on a t=2 code: two read-disturb (1 -> 0)
  // flips in a 512-bit line must be fully corrected.
  BchCode c(512, 2);
  const auto data = random_data(512, 38);
  const auto cw = c.encode(data);
  const auto ones = cw.one_positions();
  ASSERT_GE(ones.size(), 2u);
  common::Rng rng(39);
  for (int trial = 0; trial < 100; ++trial) {
    auto bad = cw;
    const auto a = ones[rng.below(ones.size())];
    auto b = ones[rng.below(ones.size())];
    while (b == a) b = ones[rng.below(ones.size())];
    bad.reset(a);
    bad.reset(b);
    const auto res = c.decode(bad);
    ASSERT_EQ(res.status, DecodeStatus::corrected);
    ASSERT_EQ(res.data, data);
  }
}

TEST(Bch, AllZeroCodewordStable) {
  BchCode c(64, 2);
  common::BitVec zeros(64);
  const auto cw = c.encode(zeros);
  EXPECT_EQ(cw.count_ones(), 0u);
  EXPECT_EQ(c.decode(cw).status, DecodeStatus::clean);
}

}  // namespace
}  // namespace reap::ecc

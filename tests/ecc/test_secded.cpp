#include "reap/ecc/secded.hpp"

#include <gtest/gtest.h>

#include "reap/common/rng.hpp"

namespace reap::ecc {
namespace {

common::BitVec random_data(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  common::BitVec v(n);
  for (std::size_t i = 0; i < n; ++i)
    if (rng.chance(0.5)) v.set(i);
  return v;
}

TEST(SecDed, GeometryFor64And512) {
  SecDedCode c64(64);
  EXPECT_EQ(c64.parity_bits(), 8u);       // (72,64)
  EXPECT_EQ(c64.codeword_bits(), 72u);
  SecDedCode c512(512);
  EXPECT_EQ(c512.parity_bits(), 11u);     // (523,512)
  EXPECT_EQ(c512.codeword_bits(), 523u);
  EXPECT_EQ(c512.correctable_bits(), 1u);
  EXPECT_EQ(c512.detectable_bits(), 2u);
}

TEST(SecDed, CleanRoundTrip) {
  SecDedCode c(512);
  const auto data = random_data(512, 20);
  const auto res = c.decode(c.encode(data));
  EXPECT_EQ(res.status, DecodeStatus::clean);
  EXPECT_EQ(res.data, data);
}

class SecDedWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SecDedWidths, CorrectsEverySingleBitError) {
  const std::size_t k = GetParam();
  SecDedCode c(k);
  const auto data = random_data(k, k + 21);
  const auto cw = c.encode(data);
  for (std::size_t i = 0; i < cw.size(); ++i) {
    auto bad = cw;
    bad.flip(i);
    const auto res = c.decode(bad);
    EXPECT_EQ(res.status, DecodeStatus::corrected) << "bit " << i;
    EXPECT_EQ(res.data, data) << "bit " << i;
    EXPECT_EQ(res.codeword, cw) << "bit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SecDedWidths,
                         ::testing::Values(8, 16, 32, 64, 128, 256, 512));

TEST(SecDed, DetectsEveryDoubleBitErrorExhaustive64) {
  // Exhaustive over all C(73,2) pairs for the (72,64)+1 code: every double
  // error must be flagged uncorrectable, never miscorrected -- this is the
  // DED guarantee the cache's uncorrectable-error accounting relies on.
  SecDedCode c(64);
  const auto data = random_data(64, 22);
  const auto cw = c.encode(data);
  for (std::size_t i = 0; i < cw.size(); ++i) {
    for (std::size_t j = i + 1; j < cw.size(); ++j) {
      auto bad = cw;
      bad.flip(i);
      bad.flip(j);
      const auto res = c.decode(bad);
      ASSERT_EQ(res.status, DecodeStatus::detected_uncorrectable)
          << i << "," << j;
    }
  }
}

TEST(SecDed, DetectsSampledDoubleErrors512) {
  SecDedCode c(512);
  const auto data = random_data(512, 23);
  const auto cw = c.encode(data);
  common::Rng rng(24);
  for (int trial = 0; trial < 2000; ++trial) {
    auto bad = cw;
    const auto i = rng.below(bad.size());
    auto j = rng.below(bad.size());
    while (j == i) j = rng.below(bad.size());
    bad.flip(i);
    bad.flip(j);
    ASSERT_EQ(c.decode(bad).status, DecodeStatus::detected_uncorrectable)
        << i << "," << j;
  }
}

TEST(SecDed, UnidirectionalDoubleErrorsDetected) {
  // Read disturbance only flips 1 -> 0; confirm detection holds for that
  // error polarity specifically (the paper's failure mode).
  SecDedCode c(512);
  const auto data = random_data(512, 25);
  const auto cw = c.encode(data);
  const auto ones = cw.one_positions();
  ASSERT_GE(ones.size(), 2u);
  common::Rng rng(26);
  for (int trial = 0; trial < 500; ++trial) {
    auto bad = cw;
    const auto a = ones[rng.below(ones.size())];
    auto b = ones[rng.below(ones.size())];
    while (b == a) b = ones[rng.below(ones.size())];
    bad.reset(a);
    bad.reset(b);
    ASSERT_EQ(c.decode(bad).status, DecodeStatus::detected_uncorrectable);
  }
}

TEST(SecDed, TripleErrorsAreNotGuaranteed) {
  // d_min = 4: three errors may miscorrect or alias to clean; just confirm
  // the decoder never crashes and returns one of the defined statuses.
  SecDedCode c(64);
  const auto cw = c.encode(random_data(64, 27));
  common::Rng rng(28);
  for (int trial = 0; trial < 500; ++trial) {
    auto bad = cw;
    for (int e = 0; e < 3; ++e) bad.flip(rng.below(bad.size()));
    const auto res = c.decode(bad);
    EXPECT_TRUE(res.status == DecodeStatus::clean ||
                res.status == DecodeStatus::corrected ||
                res.status == DecodeStatus::detected_uncorrectable);
  }
}

TEST(SecDed, AllZeroDataCannotBeDisturbed) {
  // A line with no '1' cells has nothing for read disturbance to flip; its
  // encode must also contain no '1' (all-zero codeword), closing the loop
  // on the n-dependence of Eq. (2).
  SecDedCode c(512);
  common::BitVec zeros(512);
  EXPECT_EQ(c.encode(zeros).count_ones(), 0u);
}

}  // namespace
}  // namespace reap::ecc

#include "reap/ecc/hamming.hpp"

#include <gtest/gtest.h>

#include "reap/common/rng.hpp"

namespace reap::ecc {
namespace {

common::BitVec random_data(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  common::BitVec v(n);
  for (std::size_t i = 0; i < n; ++i)
    if (rng.chance(0.5)) v.set(i);
  return v;
}

TEST(Hamming, ParityBitCountsMatchTheory) {
  // Classic (7,4), (15,11), (31,26), (63,57), (72-ish,64), 512+10.
  EXPECT_EQ(HammingCode::parity_bits_for(4), 3u);
  EXPECT_EQ(HammingCode::parity_bits_for(11), 4u);
  EXPECT_EQ(HammingCode::parity_bits_for(26), 5u);
  EXPECT_EQ(HammingCode::parity_bits_for(57), 6u);
  EXPECT_EQ(HammingCode::parity_bits_for(64), 7u);
  EXPECT_EQ(HammingCode::parity_bits_for(512), 10u);
}

TEST(Hamming, CleanDecodeIsIdentity) {
  HammingCode c(64);
  const auto data = random_data(64, 10);
  const auto res = c.decode(c.encode(data));
  EXPECT_EQ(res.status, DecodeStatus::clean);
  EXPECT_EQ(res.data, data);
  EXPECT_EQ(res.corrected_bits, 0u);
}

TEST(Hamming, SystematicLayout) {
  HammingCode c(16);
  const auto data = random_data(16, 11);
  const auto cw = c.encode(data);
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_EQ(cw.test(i), data.test(i)) << i;
}

class HammingWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HammingWidths, CorrectsEverySingleBitError) {
  const std::size_t k = GetParam();
  HammingCode c(k);
  const auto data = random_data(k, k * 7 + 1);
  const auto cw = c.encode(data);
  for (std::size_t i = 0; i < cw.size(); ++i) {
    auto bad = cw;
    bad.flip(i);
    const auto res = c.decode(bad);
    EXPECT_EQ(res.status, DecodeStatus::corrected) << "bit " << i;
    EXPECT_EQ(res.data, data) << "bit " << i;
    EXPECT_EQ(res.corrected_bits, 1u);
    EXPECT_EQ(res.codeword, cw) << "bit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, HammingWidths,
                         ::testing::Values(4, 11, 26, 57, 64, 128, 256, 512));

TEST(Hamming, AllZeroAndAllOneData) {
  HammingCode c(32);
  common::BitVec zeros(32);
  common::BitVec ones(32);
  ones.fill_ones();
  EXPECT_EQ(c.decode(c.encode(zeros)).data, zeros);
  EXPECT_EQ(c.decode(c.encode(ones)).data, ones);
}

TEST(Hamming, DoubleErrorsMiscorrect) {
  // A pure SEC code cannot distinguish 2 errors from 1; the decode lands on
  // a *wrong* codeword (this is why the cache uses SEC-DED). Verify the
  // failure mode exists: the decoder claims success but the data differs.
  HammingCode c(32);
  const auto data = random_data(32, 12);
  const auto cw = c.encode(data);
  int miscorrections = 0;
  common::Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    auto bad = cw;
    const auto i = rng.below(bad.size());
    auto j = rng.below(bad.size());
    while (j == i) j = rng.below(bad.size());
    bad.flip(i);
    bad.flip(j);
    const auto res = c.decode(bad);
    if (res.status == DecodeStatus::corrected && res.data != data)
      ++miscorrections;
  }
  EXPECT_GT(miscorrections, 50);
}

TEST(Hamming, MinimumDistanceIsThree) {
  // d_min >= 3 <=> every pair of distinct single-bit flips of a codeword
  // decodes back to that codeword (no two codewords within distance 2).
  HammingCode c(11);
  const auto data = random_data(11, 14);
  const auto cw = c.encode(data);
  for (std::size_t i = 0; i < cw.size(); ++i) {
    auto bad = cw;
    bad.flip(i);
    EXPECT_EQ(c.decode(bad).codeword, cw);
  }
}

}  // namespace
}  // namespace reap::ecc

#include "reap/ecc/parity.hpp"

#include <gtest/gtest.h>

#include "reap/common/rng.hpp"

namespace reap::ecc {
namespace {

common::BitVec random_data(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  common::BitVec v(n);
  for (std::size_t i = 0; i < n; ++i)
    if (rng.chance(0.5)) v.set(i);
  return v;
}

TEST(Parity, Geometry) {
  ParityCode c(64);
  EXPECT_EQ(c.data_bits(), 64u);
  EXPECT_EQ(c.parity_bits(), 1u);
  EXPECT_EQ(c.codeword_bits(), 65u);
  EXPECT_EQ(c.correctable_bits(), 0u);
  EXPECT_EQ(c.detectable_bits(), 1u);
  EXPECT_EQ(c.name(), "parity(65,64)");
}

TEST(Parity, CleanRoundTrip) {
  ParityCode c(32);
  const auto data = random_data(32, 1);
  const auto cw = c.encode(data);
  EXPECT_EQ(cw.count_ones() % 2, 0u);  // even parity
  const auto res = c.decode(cw);
  EXPECT_EQ(res.status, DecodeStatus::clean);
  EXPECT_EQ(res.data, data);
}

TEST(Parity, DetectsEverySingleBitError) {
  ParityCode c(16);
  const auto data = random_data(16, 2);
  const auto cw = c.encode(data);
  for (std::size_t i = 0; i < cw.size(); ++i) {
    auto bad = cw;
    bad.flip(i);
    EXPECT_EQ(c.decode(bad).status, DecodeStatus::detected_uncorrectable)
        << i;
  }
}

TEST(Parity, MissesDoubleBitErrors) {
  ParityCode c(16);
  const auto cw = c.encode(random_data(16, 3));
  auto bad = cw;
  bad.flip(0);
  bad.flip(5);
  EXPECT_EQ(c.decode(bad).status, DecodeStatus::clean);  // undetected
}

}  // namespace
}  // namespace reap::ecc

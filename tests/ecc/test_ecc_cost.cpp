#include "reap/ecc/ecc_cost.hpp"

#include <gtest/gtest.h>

#include "reap/ecc/bch.hpp"
#include "reap/ecc/parity.hpp"
#include "reap/ecc/secded.hpp"

namespace reap::ecc {
namespace {

TEST(EccCost, AllFieldsPositive) {
  SecDedCode c(512);
  const auto cost = estimate_decoder_cost(c, gate_tech_32nm());
  EXPECT_GT(cost.gates, 0u);
  EXPECT_GT(cost.logic_depth, 0u);
  EXPECT_GT(cost.energy_per_decode.value, 0.0);
  EXPECT_GT(cost.area.value, 0.0);
  EXPECT_GT(cost.latency.value, 0.0);
  EXPECT_GT(cost.leakage.value, 0.0);
}

TEST(EccCost, StrongerCodesCostMore) {
  SecDedCode secded(512);
  BchCode bch2(512, 2);
  ParityCode parity(512);
  const auto t = gate_tech_32nm();
  const auto c_parity = estimate_decoder_cost(parity, t);
  const auto c_secded = estimate_decoder_cost(secded, t);
  const auto c_bch = estimate_decoder_cost(bch2, t);
  EXPECT_LT(c_parity.gates, c_secded.gates);
  EXPECT_LT(c_secded.gates, c_bch.gates);
  EXPECT_LT(c_secded.energy_per_decode.value, c_bch.energy_per_decode.value);
}

TEST(EccCost, WiderCodesCostMore) {
  SecDedCode c64(64), c512(512);
  const auto t = gate_tech_32nm();
  EXPECT_LT(estimate_decoder_cost(c64, t).gates,
            estimate_decoder_cost(c512, t).gates);
}

TEST(EccCost, NodeScalingReducesEnergyAndArea) {
  SecDedCode c(512);
  const auto c45 = estimate_decoder_cost(c, gate_tech_45nm());
  const auto c32 = estimate_decoder_cost(c, gate_tech_32nm());
  const auto c22 = estimate_decoder_cost(c, gate_tech_22nm());
  EXPECT_GT(c45.energy_per_decode.value, c32.energy_per_decode.value);
  EXPECT_GT(c32.energy_per_decode.value, c22.energy_per_decode.value);
  EXPECT_GT(c45.area.value, c22.area.value);
  EXPECT_GT(c45.latency.value, c22.latency.value);
}

TEST(EccCost, EncoderCheaperThanDecoder) {
  SecDedCode c(512);
  const auto t = gate_tech_32nm();
  EXPECT_LT(estimate_encoder_cost(c, t).gates,
            estimate_decoder_cost(c, t).gates);
}

// Characterization of decode energy vs correction strength t for the
// 512-bit cache line the experiments protect. This pins the REAP
// `ecc_t=2` energy-overhead behaviour (ROADMAP open item): the campaign
// sweeps show a large jump in REAP's decode share at t=2, and the jump is
// entirely this cliff.
//
// Findings, against the paper's first-order BCH cost story:
//  * t=1 -> t=2 is a 36.3x energy step. It is NOT the t-scaling of BCH --
//    it is the switch of decoder realization (SEC-DED syndrome trees ->
//    BCH constant-multiplier banks). The syndrome bank dominates
//    (2t*n*m^2/2 = 106400 of 161200 gates) because the model charges a
//    full GF(2^10) constant multiplier (~m^2/2 gates) per codeword
//    position. A paper-consistent realization folds those constants into
//    a binary XOR matrix (~m*n/2 gates per syndrome pair), about m=10x
//    cheaper; the model is deliberately the conservative worst case, so
//    REAP's t=2 overhead is an upper bound, not a contradiction.
//  * Beyond the cliff the scaling is mild and near-linear in t (1.54x to
//    t=3, 1.36x to t=4), matching the paper's expectation that BCH cost
//    grows smoothly with correction strength.
// The exact gate counts are pinned so a future model change shifts these
// numbers loudly, not silently under a campaign sweep.
TEST(EccCost, DecodeEnergyVsTCharacterization512) {
  const auto tech = gate_tech_32nm();

  SecDedCode secded(512);
  const auto c1 = estimate_decoder_cost(secded, tech);
  EXPECT_EQ(secded.codeword_bits(), 523u);
  EXPECT_EQ(c1.gates, 4440u);
  EXPECT_EQ(c1.logic_depth, 14u);

  BchCode bch2(512, 2);
  const auto c2 = estimate_decoder_cost(bch2, tech);
  EXPECT_EQ(bch2.field_m(), 10u);
  EXPECT_EQ(bch2.codeword_bits(), 532u);
  EXPECT_EQ(c2.gates, 161200u);
  EXPECT_EQ(c2.logic_depth, 44u);

  BchCode bch3(512, 3);
  const auto c3 = estimate_decoder_cost(bch3, tech);
  EXPECT_EQ(c3.gates, 247500u);

  BchCode bch4(512, 4);
  const auto c4 = estimate_decoder_cost(bch4, tech);
  EXPECT_EQ(c4.gates, 337600u);

  // Energy scales linearly with gates in this model, so the pinned ratios
  // characterize the per-decode energy curve directly.
  const double e1 = c1.energy_per_decode.value;
  const double e2 = c2.energy_per_decode.value;
  const double e3 = c3.energy_per_decode.value;
  const double e4 = c4.energy_per_decode.value;
  EXPECT_NEAR(e2 / e1, 36.31, 0.01);  // the t=2 cliff
  EXPECT_NEAR(e3 / e2, 1.535, 0.005);  // smooth past the cliff
  EXPECT_NEAR(e4 / e3, 1.364, 0.005);
}

TEST(EccCost, SecDedDecoderLatencySubNanosecond) {
  // Sec. V-B's performance argument requires the decode to fit comfortably
  // inside the data-array access so REAP can hide it under the tag path.
  SecDedCode c(512);
  const auto cost = estimate_decoder_cost(c, gate_tech_32nm());
  EXPECT_LT(common::in_nanoseconds(cost.latency), 1.0);
}

}  // namespace
}  // namespace reap::ecc

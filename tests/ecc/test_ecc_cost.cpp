#include "reap/ecc/ecc_cost.hpp"

#include <gtest/gtest.h>

#include "reap/ecc/bch.hpp"
#include "reap/ecc/parity.hpp"
#include "reap/ecc/secded.hpp"

namespace reap::ecc {
namespace {

TEST(EccCost, AllFieldsPositive) {
  SecDedCode c(512);
  const auto cost = estimate_decoder_cost(c, gate_tech_32nm());
  EXPECT_GT(cost.gates, 0u);
  EXPECT_GT(cost.logic_depth, 0u);
  EXPECT_GT(cost.energy_per_decode.value, 0.0);
  EXPECT_GT(cost.area.value, 0.0);
  EXPECT_GT(cost.latency.value, 0.0);
  EXPECT_GT(cost.leakage.value, 0.0);
}

TEST(EccCost, StrongerCodesCostMore) {
  SecDedCode secded(512);
  BchCode bch2(512, 2);
  ParityCode parity(512);
  const auto t = gate_tech_32nm();
  const auto c_parity = estimate_decoder_cost(parity, t);
  const auto c_secded = estimate_decoder_cost(secded, t);
  const auto c_bch = estimate_decoder_cost(bch2, t);
  EXPECT_LT(c_parity.gates, c_secded.gates);
  EXPECT_LT(c_secded.gates, c_bch.gates);
  EXPECT_LT(c_secded.energy_per_decode.value, c_bch.energy_per_decode.value);
}

TEST(EccCost, WiderCodesCostMore) {
  SecDedCode c64(64), c512(512);
  const auto t = gate_tech_32nm();
  EXPECT_LT(estimate_decoder_cost(c64, t).gates,
            estimate_decoder_cost(c512, t).gates);
}

TEST(EccCost, NodeScalingReducesEnergyAndArea) {
  SecDedCode c(512);
  const auto c45 = estimate_decoder_cost(c, gate_tech_45nm());
  const auto c32 = estimate_decoder_cost(c, gate_tech_32nm());
  const auto c22 = estimate_decoder_cost(c, gate_tech_22nm());
  EXPECT_GT(c45.energy_per_decode.value, c32.energy_per_decode.value);
  EXPECT_GT(c32.energy_per_decode.value, c22.energy_per_decode.value);
  EXPECT_GT(c45.area.value, c22.area.value);
  EXPECT_GT(c45.latency.value, c22.latency.value);
}

TEST(EccCost, EncoderCheaperThanDecoder) {
  SecDedCode c(512);
  const auto t = gate_tech_32nm();
  EXPECT_LT(estimate_encoder_cost(c, t).gates,
            estimate_decoder_cost(c, t).gates);
}

TEST(EccCost, SecDedDecoderLatencySubNanosecond) {
  // Sec. V-B's performance argument requires the decode to fit comfortably
  // inside the data-array access so REAP can hide it under the tag path.
  SecDedCode c(512);
  const auto cost = estimate_decoder_cost(c, gate_tech_32nm());
  EXPECT_LT(common::in_nanoseconds(cost.latency), 1.0);
}

}  // namespace
}  // namespace reap::ecc

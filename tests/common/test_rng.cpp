#include "reap/common/rng.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace reap::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(5);
  double acc = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInBound) {
  Rng r(11);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowCoversSmallRangeUniformly) {
  Rng r(17);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[r.below(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
}

TEST(Rng, RangeInclusive) {
  Rng r(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng r(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyTracksP) {
  Rng r(37);
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(41);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GeometricMeanMatches) {
  Rng r(43);
  const double p = 0.2;
  const int n = 100000;
  double acc = 0;
  for (int i = 0; i < n; ++i) acc += static_cast<double>(r.geometric(p));
  // E[failures before success] = (1-p)/p = 4.
  EXPECT_NEAR(acc / n, (1 - p) / p, 0.1);
}

TEST(Rng, GeometricWithPOneIsZero) {
  Rng r(47);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng r(53);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.weighted(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0], n * 0.1, n * 0.01);
  EXPECT_NEAR(counts[1], n * 0.3, n * 0.015);
  EXPECT_NEAR(counts[3], n * 0.6, n * 0.015);
}

TEST(ZipfSampler, RanksWithinDomain) {
  Rng r(59);
  ZipfSampler z(1000, 1.0);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z(r), 1000u);
}

TEST(ZipfSampler, RankZeroIsMostPopular) {
  Rng r(61);
  ZipfSampler z(1000, 1.0);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[z(r)];
  // Rank 0 should dominate every other rank.
  for (const auto& [rank, c] : counts) {
    if (rank == 0) continue;
    EXPECT_GE(counts[0], c) << "rank " << rank;
  }
}

TEST(ZipfSampler, PopularityRatioRoughlyZipfian) {
  Rng r(67);
  ZipfSampler z(10000, 1.0);
  std::vector<int> counts(10000, 0);
  const int n = 2000000;
  for (int i = 0; i < n; ++i) ++counts[z(r)];
  // With s=1, P(0)/P(9) = 10; allow generous tolerance.
  ASSERT_GT(counts[9], 0);
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[9]);
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 20.0);
}

TEST(ZipfSampler, SingleElementDomain) {
  Rng r(71);
  ZipfSampler z(1, 1.2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z(r), 0u);
}

TEST(ZipfSampler, ZeroExponentIsNearUniform) {
  Rng r(73);
  ZipfSampler z(100, 0.0);
  std::vector<int> counts(100, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z(r)];
  for (int c : counts) EXPECT_NEAR(c, n / 100, n / 200);
}

}  // namespace
}  // namespace reap::common

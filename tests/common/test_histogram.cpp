#include "reap/common/histogram.hpp"

#include <gtest/gtest.h>

namespace reap::common {
namespace {

TEST(LogHistogram, ZeroGetsOwnBin) {
  LogHistogram h;
  h.add(0, 1.0);
  h.add(0, 2.0);
  const auto bins = h.nonempty_bins();
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_EQ(bins[0].lo, 0u);
  EXPECT_EQ(bins[0].hi, 0u);
  EXPECT_EQ(bins[0].count, 2u);
  EXPECT_DOUBLE_EQ(bins[0].weight, 3.0);
}

TEST(LogHistogram, ValuesLandInCoveringBin) {
  LogHistogram h(4, 1000000);
  for (std::uint64_t v : {1ull, 5ull, 42ull, 999ull, 123456ull}) {
    LogHistogram fresh(4, 1000000);
    fresh.add(v);
    const auto bins = fresh.nonempty_bins();
    ASSERT_EQ(bins.size(), 1u) << v;
    EXPECT_LE(bins[0].lo, v);
    EXPECT_GE(bins[0].hi, v);
  }
}

TEST(LogHistogram, BinsArePartition) {
  // Every value in [1, 10000] must fall in exactly one bin, and bins must
  // be contiguous.
  LogHistogram h(8, 10000);
  for (std::uint64_t v = 0; v <= 10000; ++v) h.add(v);
  const auto bins = h.nonempty_bins();
  std::uint64_t expected_lo = 0;
  std::uint64_t total = 0;
  for (const auto& b : bins) {
    EXPECT_EQ(b.lo, expected_lo);
    expected_lo = b.hi + 1;
    total += b.count;
  }
  EXPECT_EQ(total, 10001u);
}

TEST(LogHistogram, OverflowClampsAndCounts) {
  LogHistogram h(4, 100);
  h.add(1000, 1.0);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total_count(), 1u);
  EXPECT_EQ(h.max_sample(), 1000u);
  const auto bins = h.nonempty_bins();
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_GE(bins[0].hi, 100u);
}

TEST(LogHistogram, TotalsAccumulate) {
  LogHistogram h;
  h.add(1, 0.5);
  h.add(10, 0.25);
  h.add(100, 0.25);
  EXPECT_EQ(h.total_count(), 3u);
  EXPECT_DOUBLE_EQ(h.total_weight(), 1.0);
}

TEST(LogHistogram, RenderContainsLabels) {
  LogHistogram h;
  h.add(0);
  h.add(7, 0.125);
  const std::string s = h.render("freq", "fail");
  EXPECT_NE(s.find("freq"), std::string::npos);
  EXPECT_NE(s.find("fail"), std::string::npos);
}

TEST(LogHistogram, RenderNormalization) {
  LogHistogram h;
  for (int i = 0; i < 200; ++i) h.add(0);
  h.add(50);
  // Normalized to the zero-bin count, the zero row shows 1 and the other
  // row shows 0.005.
  const std::string s = h.render("freq", "fail", 200.0);
  EXPECT_NE(s.find("0.005"), std::string::npos);
}

TEST(LinearHistogram, BinsAndEdges) {
  LinearHistogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.nbins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
  h.add(0.5);
  h.add(9.99);
  h.add(10.0);   // clamps to last bin
  h.add(-1.0);   // clamps to first bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
}

}  // namespace
}  // namespace reap::common

#include "reap/common/bitvec.hpp"

#include <gtest/gtest.h>

namespace reap::common {
namespace {

TEST(BitVec, StartsAllZero) {
  BitVec v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.count_ones(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.test(i));
}

TEST(BitVec, SetResetFlip) {
  BitVec v(70);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(69);
  EXPECT_EQ(v.count_ones(), 4u);
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  v.reset(63);
  EXPECT_FALSE(v.test(63));
  v.flip(63);
  EXPECT_TRUE(v.test(63));
  v.flip(63);
  EXPECT_FALSE(v.test(63));
  EXPECT_EQ(v.count_ones(), 3u);
}

TEST(BitVec, FillOnesRespectsSize) {
  for (std::size_t n : {1u, 63u, 64u, 65u, 512u, 523u}) {
    BitVec v(n);
    v.fill_ones();
    EXPECT_EQ(v.count_ones(), n) << "n=" << n;
  }
}

TEST(BitVec, ClearZeroesEverything) {
  BitVec v(130);
  v.fill_ones();
  v.clear();
  EXPECT_EQ(v.count_ones(), 0u);
}

TEST(BitVec, XorComputesHammingDistance) {
  BitVec a(80), b(80);
  a.set(3);
  a.set(40);
  b.set(40);
  b.set(79);
  const BitVec d = a ^ b;
  EXPECT_EQ(d.count_ones(), 2u);
  EXPECT_TRUE(d.test(3));
  EXPECT_TRUE(d.test(79));
  EXPECT_FALSE(d.test(40));
}

TEST(BitVec, RoundTripBytes) {
  BitVec v(64);
  v.set(0);
  v.set(9);
  v.set(63);
  const auto bytes = v.to_bytes();
  ASSERT_EQ(bytes.size(), 8u);
  const BitVec w = BitVec::from_bytes(bytes);
  EXPECT_EQ(v, w);
}

TEST(BitVec, RoundTripString) {
  const std::string s = "1010011100";
  const BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.size(), s.size());
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.count_ones(), 5u);
}

TEST(BitVec, OnePositionsMatchesTest) {
  BitVec v(200);
  v.set(1);
  v.set(64);
  v.set(128);
  v.set(199);
  const auto pos = v.one_positions();
  ASSERT_EQ(pos.size(), 4u);
  EXPECT_EQ(pos[0], 1u);
  EXPECT_EQ(pos[1], 64u);
  EXPECT_EQ(pos[2], 128u);
  EXPECT_EQ(pos[3], 199u);
}

TEST(BitVec, EqualityIsValueBased) {
  BitVec a(32), b(32);
  EXPECT_EQ(a, b);
  a.set(5);
  EXPECT_NE(a, b);
  b.set(5);
  EXPECT_EQ(a, b);
}

TEST(BitVec, FromBytesPreservesBitOrder) {
  const std::vector<std::uint8_t> bytes = {0x01, 0x80};
  const BitVec v = BitVec::from_bytes(bytes);
  EXPECT_TRUE(v.test(0));    // LSB of byte 0
  EXPECT_TRUE(v.test(15));   // MSB of byte 1
  EXPECT_EQ(v.count_ones(), 2u);
}

class BitVecWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVecWidths, CountOnesMatchesManualLoop) {
  const std::size_t n = GetParam();
  BitVec v(n);
  for (std::size_t i = 0; i < n; i += 3) v.set(i);
  std::size_t manual = 0;
  for (std::size_t i = 0; i < n; ++i) manual += v.test(i) ? 1 : 0;
  EXPECT_EQ(v.count_ones(), manual);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVecWidths,
                         ::testing::Values(1, 7, 63, 64, 65, 127, 128, 512,
                                           523, 1000));

}  // namespace
}  // namespace reap::common

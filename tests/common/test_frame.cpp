// REAPF1 stream framing: a frame round-trips byte-exactly however the
// stream is chopped; a corrupt frame (truncated header, bad hex, CRC
// mismatch from any single bit flip) is counted and never delivered; a
// non-frame line passes through as noise; an unterminated tail stays
// buffered until its newline arrives.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "reap/common/frame.hpp"

namespace reap::common {
namespace {

TEST(Frame, RoundTripsSinglePayload) {
  const std::string payload = "{\"row\":1,\"key\":\"mcf/reap/s0\"}";
  FrameParser p;
  p.feed(frame_line(payload));
  const auto got = p.take_payloads();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], payload);
  EXPECT_EQ(p.frames_ok(), 1u);
  EXPECT_EQ(p.frames_corrupt(), 0u);
  EXPECT_TRUE(p.take_noise().empty());
}

TEST(Frame, PayloadSurvivesArbitrarySplits) {
  const std::vector<std::string> payloads = {
      "{\"format\":\"reap-journal-v2\"}", "row one", "",
      std::string(300, 'x')};
  std::string stream;
  for (const auto& pl : payloads) stream += frame_line(pl);

  // Feed the identical stream one byte at a time, then in ragged chunks;
  // both must deliver the same payloads in order.
  for (const std::size_t chunk : {std::size_t(1), std::size_t(7)}) {
    FrameParser p;
    for (std::size_t i = 0; i < stream.size(); i += chunk)
      p.feed(std::string_view(stream).substr(i, chunk));
    EXPECT_EQ(p.take_payloads(), payloads) << "chunk=" << chunk;
    EXPECT_EQ(p.frames_ok(), payloads.size());
    EXPECT_EQ(p.frames_corrupt(), 0u);
    EXPECT_EQ(p.buffered(), 0u);
  }
}

TEST(Frame, UnterminatedTailStaysBuffered) {
  const auto line = frame_line("pending row");
  FrameParser p;
  p.feed(std::string_view(line).substr(0, line.size() - 1));  // no '\n'
  EXPECT_TRUE(p.take_payloads().empty());
  EXPECT_NE(p.buffered(), 0u);
  p.feed("\n");
  const auto got = p.take_payloads();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "pending row");
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(Frame, TruncatedFrameIsCorruptNotDelivered) {
  const auto line = frame_line("a complete row");
  // A terminated line that lost its tail mid-payload: the CRC no longer
  // matches. Also try cutting into the header itself.
  for (const std::size_t keep : {line.size() - 5, std::size_t(10),
                                 std::size_t(7)}) {
    FrameParser p;
    p.feed(line.substr(0, keep) + "\n");
    EXPECT_TRUE(p.take_payloads().empty()) << "keep=" << keep;
    EXPECT_EQ(p.frames_corrupt(), 1u) << "keep=" << keep;
    EXPECT_TRUE(p.take_noise().empty()) << "keep=" << keep;
  }
}

TEST(Frame, NoSingleBitFlipDeliversAWrongPayload) {
  const std::string payload = "{\"row\":42,\"cycles\":12345}";
  const auto line = frame_line(payload);
  // Flip each bit of every byte except the trailing newline. The safety
  // property is "never a *wrong* payload": a flip in the prefix demotes
  // the line to noise, a flip touching payload or CRC value is caught by
  // the CRC, and the one benign case -- a case flip inside a hex digit,
  // which parses to the same CRC -- still delivers the original bytes.
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = line;
      bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
      FrameParser p;
      p.feed(bad);
      for (const auto& got : p.take_payloads())
        EXPECT_EQ(got, payload) << "byte " << i << " bit " << bit
                                << " delivered a corrupted payload";
    }
  }
}

TEST(Frame, NoiseLinesPassThroughAroundFrames) {
  FrameParser p;
  p.feed("campaign 'x': 8 points on 1 threads\n");
  p.feed(frame_line("real row"));
  p.feed("some stray stderr-ish line\n");
  const auto payloads = p.take_payloads();
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "real row");
  const auto noise = p.take_noise();
  ASSERT_EQ(noise.size(), 2u);
  EXPECT_EQ(noise[0], "campaign 'x': 8 points on 1 threads");
  EXPECT_EQ(noise[1], "some stray stderr-ish line");
  EXPECT_EQ(p.frames_corrupt(), 0u);
}

}  // namespace
}  // namespace reap::common

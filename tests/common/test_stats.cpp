#include "reap/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace reap::common {
namespace {

TEST(RunningStats, EmptyIsZeroMean) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Means, ArithmeticAndGeometric) {
  EXPECT_DOUBLE_EQ(arithmetic_mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(arithmetic_mean({}), 0.0);
  EXPECT_NEAR(geometric_mean({1.0, 100.0}), 10.0, 1e-9);
  EXPECT_NEAR(geometric_mean({8.0}), 8.0, 1e-12);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Percentile, UnsortedInput) {
  std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
}

}  // namespace
}  // namespace reap::common

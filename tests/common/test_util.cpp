// Tests for TextTable, CsvWriter, CliArgs, string helpers, and the unit
// types.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "reap/common/cli.hpp"
#include "reap/common/csv.hpp"
#include "reap/common/jsonl.hpp"
#include "reap/common/strings.hpp"
#include "reap/common/table.hpp"
#include "reap/common/units.hpp"

namespace reap::common {
namespace {

TEST(TextTable, RendersAlignedGrid) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bee", "22222"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("| 22222"), std::string::npos);
  // Rules above header, below header, below body: 3 lines starting with +.
  std::size_t rules = 0;
  std::istringstream lines(s);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 3u);
}

TEST(TextTable, NumberFormatters) {
  EXPECT_EQ(TextTable::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::sci(1.3e-9), "1.30e-09");
  EXPECT_EQ(TextTable::num(12345.0), "1.234e+04");
}

TEST(CsvWriter, WritesHeaderAndEscapes) {
  const std::string path = ::testing::TempDir() + "/reap_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    ASSERT_TRUE(w.ok());
    w.add_row({"plain", "has,comma"});
    w.add_row({"has\"quote", "x"});
  }
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "plain,\"has,comma\"");
  EXPECT_EQ(l3, "\"has\"\"quote\",x");
  std::remove(path.c_str());
}

TEST(CliArgs, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--workload=mcf", "--fast", "pos1",
                        "--n=42"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_string("workload", "x"), "mcf");
  EXPECT_TRUE(args.get_bool("fast", false));
  EXPECT_EQ(args.get_u64("n", 0), 42u);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(CliArgs, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_u64("missing", 7), 7u);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, TracksUnconsumed) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  CliArgs args(3, argv);
  (void)args.get_u64("used", 0);
  const auto un = args.unconsumed();
  ASSERT_EQ(un.size(), 1u);
  EXPECT_EQ(un[0], "typo");
}

TEST(Units, ArithmeticAndConversions) {
  const Joules e = picojoules(2.0) + picojoules(3.0);
  EXPECT_NEAR(in_picojoules(e), 5.0, 1e-12);
  EXPECT_NEAR(in_picojoules(e * 2.0), 10.0, 1e-12);
  EXPECT_NEAR(in_picojoules(2.0 * e), 10.0, 1e-12);
  EXPECT_NEAR(e / picojoules(2.5), 2.0, 1e-12);

  const Seconds t = nanoseconds(4.0);
  const Watts p = e / t;
  EXPECT_NEAR(in_milliwatts(p), 5e-12 / 4e-9 * 1e3, 1e-9);
  EXPECT_NEAR((p * t).value, e.value, 1e-18);
}

TEST(Units, ComparisonOperators) {
  EXPECT_LT(nanoseconds(1.0), nanoseconds(2.0));
  EXPECT_EQ(picojoules(1000.0).value, nanojoules(1.0).value);
}

TEST(Strings, ParseU64IsStrict) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, ~0ULL);
  // strtoull alone would skip whitespace and wrap a leading '-'.
  EXPECT_FALSE(parse_u64("-1", v));
  EXPECT_FALSE(parse_u64("+1", v));
  EXPECT_FALSE(parse_u64(" 1", v));
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("1x", v));
}

TEST(Strings, HashAndHexAreStableRoundTrips) {
  // fnv1a64 is a cross-release fingerprint (journal spec hashes): pin the
  // reference vectors so it can never drift silently.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_hex64(fmt_hex64(0xDEADBEEF12345678ULL), v));
  EXPECT_EQ(v, 0xDEADBEEF12345678ULL);
  EXPECT_EQ(fmt_hex64(0x1ULL), "0000000000000001");
}

TEST(Csv, ParseLineInvertsEscape) {
  const std::vector<std::string> cells = {
      "plain", "with,comma", "with\"quote", "", "k=v k2=v2"};
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += csv_escape(cells[i]);
  }
  const auto back = parse_csv_line(line);
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, cells);
  EXPECT_FALSE(parse_csv_line("\"unterminated"));
  EXPECT_FALSE(parse_csv_line("\"closed\"junk"));
}

TEST(Jsonl, ParseLineInvertsEmission) {
  const auto fields = parse_jsonl_line(
      "{\"a\":\"x\\\"y\",\"b\":1.5e-3,\"c\":\"tab\\there\"}");
  ASSERT_TRUE(fields);
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[0].second, "x\"y");
  EXPECT_EQ((*fields)[1].second, "1.5e-3");  // raw token preserved
  EXPECT_EQ((*fields)[2].second, "tab\there");
  EXPECT_FALSE(parse_jsonl_line("{\"a\":1"));        // truncated
  EXPECT_FALSE(parse_jsonl_line("{\"a\":[1]}"));     // nested
  EXPECT_FALSE(parse_jsonl_line("not json"));
}

}  // namespace
}  // namespace reap::common

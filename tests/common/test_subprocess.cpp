// Child-process helper: exit/signal decoding, log redirection, exec
// failure reporting, kill, and the parse_shard CLI helper it ships with.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include "reap/common/cli.hpp"
#include "reap/common/subprocess.hpp"

namespace reap::common {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Subprocess, ReportsExitCodes) {
  auto ok = Child::spawn({"/bin/true"});
  ASSERT_TRUE(ok);
  const auto s = ok->wait();
  EXPECT_TRUE(s.exited);
  EXPECT_EQ(s.code, 0);
  EXPECT_TRUE(s.success());
  EXPECT_EQ(s.describe(), "exit 0");

  auto bad = Child::spawn({"/bin/false"});
  ASSERT_TRUE(bad);
  const auto f = bad->wait();
  EXPECT_TRUE(f.exited);
  EXPECT_NE(f.code, 0);
  EXPECT_FALSE(f.success());
}

TEST(Subprocess, RedirectsOutputToLog) {
  const auto log = temp_path("subprocess_log.txt");
  std::remove(log.c_str());
  auto child = Child::spawn({"/bin/sh", "-c", "echo out; echo err >&2"}, log);
  ASSERT_TRUE(child);
  EXPECT_TRUE(child->wait().success());
  std::ifstream in(log);
  const std::string bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  EXPECT_NE(bytes.find("out"), std::string::npos);
  EXPECT_NE(bytes.find("err"), std::string::npos);
  std::remove(log.c_str());
}

TEST(Subprocess, MissingBinaryIsASpawnError) {
  std::string error;
  auto child = Child::spawn({"/no/such/binary-xyz"}, "", &error);
  EXPECT_FALSE(child);
  EXPECT_NE(error.find("cannot exec"), std::string::npos) << error;
}

TEST(Subprocess, KillReportsTheSignal) {
  auto child = Child::spawn({"/bin/sleep", "30"});
  ASSERT_TRUE(child);
  EXPECT_FALSE(child->poll());  // still running
  EXPECT_TRUE(child->kill(SIGKILL));
  const auto s = child->wait();
  EXPECT_FALSE(s.exited);
  EXPECT_EQ(s.signal, SIGKILL);
  EXPECT_EQ(s.describe(), "signal 9");
  // poll() after reaping keeps returning the cached status.
  ASSERT_TRUE(child->poll());
  EXPECT_EQ(child->poll()->signal, SIGKILL);
}

TEST(ParseShard, AcceptsIOfNAndRejectsGarbage) {
  std::size_t i = 99, n = 99;
  EXPECT_TRUE(parse_shard("0/1", i, n));
  EXPECT_EQ(i, 0u);
  EXPECT_EQ(n, 1u);
  EXPECT_TRUE(parse_shard("2/8", i, n));
  EXPECT_EQ(i, 2u);
  EXPECT_EQ(n, 8u);
  for (const char* bad : {"", "3", "1/0", "2/2", "3/2", "a/b", "1/2/3"})
    EXPECT_FALSE(parse_shard(bad, i, n)) << bad;
}

}  // namespace
}  // namespace reap::common

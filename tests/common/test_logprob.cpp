#include "reap/common/logprob.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace reap::common {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(LogSumExp, MatchesDirectComputation) {
  const double la = std::log(0.3), lb = std::log(0.2);
  EXPECT_NEAR(std::exp(log_sum_exp(la, lb)), 0.5, 1e-12);
}

TEST(LogSumExp, HandlesNegInfOperands) {
  EXPECT_EQ(log_sum_exp(-kInf, std::log(0.4)), std::log(0.4));
  EXPECT_EQ(log_sum_exp(std::log(0.4), -kInf), std::log(0.4));
  EXPECT_EQ(log_sum_exp(-kInf, -kInf), -kInf);
}

TEST(LogSumExp, StableForVeryDifferentMagnitudes) {
  const double big = std::log(1e-5), small = std::log(1e-300);
  EXPECT_NEAR(log_sum_exp(big, small), big, 1e-12);
}

TEST(Log1mExp, MatchesNaiveInSafeRange) {
  for (double x : {-0.1, -0.5, -1.0, -3.0, -10.0}) {
    EXPECT_NEAR(log1m_exp(x), std::log(1.0 - std::exp(x)), 1e-12) << x;
  }
}

TEST(Log1mExp, TinyArgument) {
  // 1 - exp(-1e-18) ~ 1e-18; naive computation would give -inf.
  const double r = log1m_exp(-1e-18);
  EXPECT_NEAR(r, std::log(1e-18), 1e-6);
}

TEST(LogBinomialCoeff, SmallValuesExact) {
  EXPECT_NEAR(std::exp(log_binomial_coeff(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coeff(10, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial_coeff(10, 10)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial_coeff(52, 5)), 2598960.0, 1.0);
}

TEST(LogBinomialCoeff, KGreaterThanNIsZeroProbability) {
  EXPECT_EQ(log_binomial_coeff(3, 4), -kInf);
}

TEST(LogBinomialPmf, SumsToOne) {
  const std::uint64_t n = 20;
  const double p = 0.3;
  double acc = 0.0;
  for (std::uint64_t k = 0; k <= n; ++k)
    acc += std::exp(log_binomial_pmf(n, k, p));
  EXPECT_NEAR(acc, 1.0, 1e-12);
}

TEST(LogBinomialPmf, DegenerateP) {
  EXPECT_EQ(log_binomial_pmf(10, 0, 0.0), 0.0);
  EXPECT_EQ(log_binomial_pmf(10, 1, 0.0), -kInf);
  EXPECT_EQ(log_binomial_pmf(10, 10, 1.0), 0.0);
  EXPECT_EQ(log_binomial_pmf(10, 9, 1.0), -kInf);
}

TEST(BinomialTail, MatchesBruteForceSmall) {
  const std::uint64_t n = 30;
  const double p = 0.07;
  for (unsigned t : {0u, 1u, 2u, 3u}) {
    double brute = 0.0;
    for (std::uint64_t k = t + 1; k <= n; ++k)
      brute += std::exp(log_binomial_pmf(n, k, p));
    EXPECT_NEAR(binomial_tail_above(n, t, p), brute, 1e-12) << "t=" << t;
  }
}

TEST(BinomialTail, RareEventPrecision) {
  // P(X >= 2), n=100, p=1e-8: ~ C(100,2) p^2 = 4.95e-13. A (1-x) style
  // computation in doubles would lose everything.
  const double tail = binomial_tail_above(100, 1, 1e-8);
  EXPECT_NEAR(tail, 4.95e-13, 5e-15);
}

TEST(BinomialTail, PaperEquation4) {
  // Paper Sec. III-B numerical example: n = 100 ones, P_RD = 1e-8, no
  // concealed reads -> P_err = 5.0e-13 (their quoted value).
  const double p_err = binomial_tail_above(100, 1, 1e-8);
  EXPECT_GT(p_err, 4.5e-13);
  EXPECT_LT(p_err, 5.5e-13);
}

TEST(BinomialTail, PaperEquation5) {
  // Same line after 50 reads: trials = 100*50, P_err = 1.3e-9.
  const double p_err = binomial_tail_above(100 * 50, 1, 1e-8);
  EXPECT_NEAR(p_err, 1.25e-9, 0.1e-9);
}

TEST(BinomialTail, EdgeCases) {
  EXPECT_EQ(binomial_tail_above(10, 10, 0.5), 0.0);   // t >= n
  EXPECT_EQ(binomial_tail_above(10, 12, 0.5), 0.0);
  EXPECT_EQ(binomial_tail_above(10, 1, 0.0), 0.0);
  EXPECT_EQ(binomial_tail_above(10, 1, 1.0), 1.0);
}

TEST(BinomialTail, MonotonicInN) {
  double prev = 0.0;
  for (std::uint64_t n = 10; n <= 100000; n *= 10) {
    const double tail = binomial_tail_above(n, 1, 1e-7);
    EXPECT_GT(tail, prev);
    prev = tail;
  }
}

TEST(BinomialTail, MonotonicInP) {
  double prev = 0.0;
  for (double p = 1e-10; p < 1e-3; p *= 10) {
    const double tail = binomial_tail_above(512, 1, p);
    EXPECT_GT(tail, prev);
    prev = tail;
  }
}

TEST(BinomialCdf, NeverPositive) {
  for (std::uint64_t n : {1ull, 10ull, 1000ull}) {
    for (double p : {0.0, 1e-9, 0.5, 0.999}) {
      EXPECT_LE(log_binomial_cdf_upto(n, 1, p), 0.0);
    }
  }
}

}  // namespace
}  // namespace reap::common

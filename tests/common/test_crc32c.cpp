// CRC32C is part of the journal's on-disk format: these known-answer
// vectors pin the function to the standard Castagnoli variant so a
// refactor can never silently change the checksum of existing journals.
#include "reap/common/crc32c.hpp"

#include <gtest/gtest.h>

#include <string>

namespace reap::common {
namespace {

TEST(Crc32c, KnownAnswerVectors) {
  // The canonical CRC check string, plus vectors from RFC 3720 appendix.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0x00000000u);
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32c, IncrementalBytesVector) {
  // RFC 3720: bytes 0x00..0x1f.
  std::string data;
  for (int i = 0; i < 32; ++i) data.push_back(static_cast<char>(i));
  EXPECT_EQ(crc32c(data), 0x46DD794Eu);
}

TEST(Crc32c, SensitiveToSingleBitFlips) {
  const std::string row = "{\"key\":\"mcf/reap/t1/sc-/rr-/s0\",\"mttf\":1.5}";
  const std::uint32_t clean = crc32c(row);
  for (std::size_t i = 0; i < row.size(); ++i) {
    std::string damaged = row;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x01);
    EXPECT_NE(crc32c(damaged), clean) << "bit flip at byte " << i;
  }
}

TEST(Crc32c, HexFormatRoundTrips) {
  EXPECT_EQ(fmt_hex32(0x00000000u), "00000000");
  EXPECT_EQ(fmt_hex32(0xE3069283u), "e3069283");
  EXPECT_EQ(fmt_hex32(0xFFFFFFFFu), "ffffffff");
  for (std::uint32_t v : {0x0u, 0x1u, 0xE3069283u, 0xFFFFFFFFu}) {
    std::uint32_t parsed = 0;
    ASSERT_TRUE(parse_hex32(fmt_hex32(v), parsed));
    EXPECT_EQ(parsed, v);
  }
}

TEST(Crc32c, ParseHexRejectsAnythingButEightHexDigits) {
  std::uint32_t out = 0;
  EXPECT_FALSE(parse_hex32("", out));
  EXPECT_FALSE(parse_hex32("e306928", out));    // 7 digits
  EXPECT_FALSE(parse_hex32("e30692831", out));  // 9 digits
  EXPECT_FALSE(parse_hex32("e306928g", out));   // non-hex
  EXPECT_FALSE(parse_hex32(" e3069283", out));
  EXPECT_FALSE(parse_hex32("0xe30692", out));
}

}  // namespace
}  // namespace reap::common

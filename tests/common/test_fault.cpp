// The fault-injection registry is itself load-bearing test
// infrastructure (the chaos suite trusts it), so its grammar, matching
// and counting semantics get their own unit tests.
#include "reap/common/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

namespace reap::common::fault {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm(); }
  void TearDown() override {
    disarm();
    ::unsetenv(kEnvVar);
  }
};

TEST_F(FaultTest, UnarmedSitesAreSilent) {
  EXPECT_FALSE(armed());
  EXPECT_FALSE(hit("journal.write", "any/context").has_value());
  EXPECT_FALSE(hit("runner.point").has_value());
}

TEST_F(FaultTest, ArmRejectsBadGrammar) {
  std::string error;
  EXPECT_FALSE(arm("", &error));
  EXPECT_FALSE(arm("journal.write", &error));          // missing kind
  EXPECT_FALSE(arm("no.such.site:eio", &error));       // unknown site
  EXPECT_FALSE(arm("journal.write:sparks", &error));   // unknown kind
  EXPECT_FALSE(arm("journal.write:eio:0", &error));    // nth must be >= 1
  EXPECT_FALSE(arm("journal.write:eio:bogus", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(armed());  // nothing half-armed after a rejected spec
}

TEST_F(FaultTest, KnownSitesListTheCompiledInSet) {
  const auto& sites = known_sites();
  for (const char* site : {"journal.write", "journal.fsync", "worker.spawn",
                           "runner.point", "tailer.read", "transport.connect",
                           "transport.stream"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << site;
  }
}

TEST_F(FaultTest, DefaultNthIsOneShot) {
  ASSERT_TRUE(arm("journal.write:eio"));
  EXPECT_TRUE(armed());
  const auto first = hit("journal.write", "row-1");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->kind, Kind::eio);
  // One-shot: the second execution passes through.
  EXPECT_FALSE(hit("journal.write", "row-2").has_value());
}

TEST_F(FaultTest, NthFiresOnExactlyTheNthExecution) {
  ASSERT_TRUE(arm("journal.write:enospc:3"));
  EXPECT_FALSE(hit("journal.write").has_value());
  EXPECT_FALSE(hit("journal.write").has_value());
  const auto third = hit("journal.write");
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->kind, Kind::enospc);
  EXPECT_FALSE(hit("journal.write").has_value());
}

TEST_F(FaultTest, StarFiresOnEveryExecution) {
  ASSERT_TRUE(arm("journal.fsync:eio:*"));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(hit("journal.fsync").has_value()) << "execution " << i;
  }
}

TEST_F(FaultTest, KeySubstringScopesTheFaultToMatchingContexts) {
  ASSERT_TRUE(arm("runner.point:eio:*:key=mcf/reap"));
  EXPECT_FALSE(hit("runner.point", "gcc/reap/t1/sc-/rr-/s0").has_value());
  EXPECT_TRUE(hit("runner.point", "mcf/reap/t1/sc-/rr-/s0").has_value());
  // Counting is per *matching* execution: a non-matching context does not
  // consume the occurrence budget.
  disarm();
  ASSERT_TRUE(arm("runner.point:eio:2:key=mcf"));
  EXPECT_FALSE(hit("runner.point", "mcf/a").has_value());  // match #1
  EXPECT_FALSE(hit("runner.point", "gcc/a").has_value());  // no match
  EXPECT_TRUE(hit("runner.point", "mcf/b").has_value());   // match #2
}

TEST_F(FaultTest, SitesAreIndependent) {
  ASSERT_TRUE(arm("journal.write:eio:*"));
  EXPECT_FALSE(hit("journal.fsync").has_value());
  EXPECT_FALSE(hit("tailer.read").has_value());
  EXPECT_TRUE(hit("journal.write").has_value());
}

TEST_F(FaultTest, CommaSeparatedSpecsArmTogether) {
  ASSERT_TRUE(arm("journal.write:eio:*,tailer.read:enospc:*"));
  EXPECT_TRUE(hit("journal.write").has_value());
  const auto t = hit("tailer.read");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->kind, Kind::enospc);
}

TEST_F(FaultTest, TornWriteCarriesItsByteParam) {
  ASSERT_TRUE(arm("journal.write:torn-write:1:17"));
  const auto f = hit("journal.write");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->kind, Kind::torn_write);
  EXPECT_EQ(f->param, 17u);
}

TEST_F(FaultTest, SlowSleepsThenLetsTheCallProceed) {
  ASSERT_TRUE(arm("runner.point:slow:1:30"));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(hit("runner.point").has_value());  // acted, nothing to do
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST_F(FaultTest, DisarmResetsCountersAndArming) {
  ASSERT_TRUE(arm("journal.write:eio:2"));
  EXPECT_FALSE(hit("journal.write").has_value());
  disarm();
  EXPECT_FALSE(armed());
  ASSERT_TRUE(arm("journal.write:eio:2"));
  EXPECT_FALSE(hit("journal.write").has_value());  // count restarted at 0
  EXPECT_TRUE(hit("journal.write").has_value());
}

TEST_F(FaultTest, ArmFromEnvIsANoOpWhenUnset) {
  ::unsetenv(kEnvVar);
  std::string error;
  EXPECT_TRUE(arm_from_env(&error));
  EXPECT_FALSE(armed());
}

TEST_F(FaultTest, ArmFromEnvReadsTheVariable) {
  ::setenv(kEnvVar, "journal.write:eio:*", 1);
  ASSERT_TRUE(arm_from_env());
  EXPECT_TRUE(hit("journal.write").has_value());
  ::setenv(kEnvVar, "garbage", 1);
  disarm();
  std::string error;
  EXPECT_FALSE(arm_from_env(&error));
  EXPECT_FALSE(error.empty());
}

TEST_F(FaultTest, KindNamesRoundTripThroughToString) {
  EXPECT_STREQ(to_string(Kind::crash), "crash");
  EXPECT_STREQ(to_string(Kind::hang), "hang");
  EXPECT_STREQ(to_string(Kind::eio), "eio");
  EXPECT_STREQ(to_string(Kind::enospc), "enospc");
  EXPECT_STREQ(to_string(Kind::torn_write), "torn-write");
  EXPECT_STREQ(to_string(Kind::slow), "slow");
  EXPECT_STREQ(to_string(Kind::drop), "drop");
  EXPECT_STREQ(to_string(Kind::stall), "stall");
  EXPECT_STREQ(to_string(Kind::garble), "garble");
}

// The transport kinds are returned to the call site like the I/O kinds:
// hit() itself must not act on them.
TEST_F(FaultTest, TransportKindsAreReturnedNotActedOn) {
  ASSERT_TRUE(arm(
      "transport.stream:drop:1:key=hosta,"
      "transport.stream:stall:1:key=hostb,transport.connect:garble"));
  const auto drop = hit("transport.stream", "hosta");
  ASSERT_TRUE(drop.has_value());
  EXPECT_EQ(drop->kind, Kind::drop);
  const auto stall = hit("transport.stream", "hostb");
  ASSERT_TRUE(stall.has_value());
  EXPECT_EQ(stall->kind, Kind::stall);
  const auto garble = hit("transport.connect", "hostc");
  ASSERT_TRUE(garble.has_value());
  EXPECT_EQ(garble->kind, Kind::garble);
}

// crash acts inside hit(): the process _exits with kCrashExit. Run it in
// a death-test child so the suite survives.
TEST_F(FaultTest, CrashExitsWithTheDedicatedCode) {
  ASSERT_TRUE(arm("runner.point:crash"));
  EXPECT_EXIT(hit("runner.point"), ::testing::ExitedWithCode(kCrashExit),
              "");
}

}  // namespace
}  // namespace reap::common::fault

#include "reap/nvsim/cache_model.hpp"

#include <gtest/gtest.h>

#include "reap/ecc/secded.hpp"
#include "reap/mtj/mtj_params.hpp"
#include "reap/nvsim/report.hpp"

namespace reap::nvsim {
namespace {

CacheGeometry paper_l2() {
  CacheGeometry g;
  g.capacity_bytes = 1 << 20;
  g.ways = 8;
  g.block_bytes = 64;
  g.data_cell = CellType::stt_mram;
  return g;
}

class CacheModelTest : public ::testing::Test {
 protected:
  CacheModelTest()
      : code_(512),
        mtj_(mtj::paper_default()),
        model_(paper_l2(), tech_32nm(), code_, &mtj_) {}

  ecc::SecDedCode code_;
  mtj::MtjParams mtj_;
  CacheModel model_;
};

TEST_F(CacheModelTest, GeometryDerivations) {
  const auto& g = model_.geometry();
  EXPECT_EQ(g.sets(), 2048u);
  EXPECT_EQ(g.index_bits(), 11u);
  EXPECT_EQ(g.offset_bits(), 6u);
  EXPECT_EQ(g.tag_bits(), 48u - 11u - 6u);
  EXPECT_EQ(g.block_bits(), 512u);
}

TEST_F(CacheModelTest, EccDecodeEnergyShareIsSmall) {
  // Paper Sec. V-B: "the contribution of ECC decoder unit in total energy
  // consumption of the cache is less than 1%".
  const auto e = model_.energies();
  const double access = model_.parallel_read_access_energy(1).value;
  const double share = e.ecc_decode.value / access;
  EXPECT_GT(share, 0.0005);
  EXPECT_LT(share, 0.01);
}

TEST_F(CacheModelTest, ReapEnergyOverheadMatchesPaperBand) {
  // Eight decoders instead of one: the incremental read-access energy must
  // land in the paper's observed 1%..6.5% band (Fig. 6).
  const double e1 = model_.parallel_read_access_energy(1).value;
  const double e8 = model_.parallel_read_access_energy(8).value;
  const double overhead = (e8 - e1) / e1;
  EXPECT_GT(overhead, 0.005);
  EXPECT_LT(overhead, 0.08);
}

TEST_F(CacheModelTest, AreaOverheadUnderOnePercent) {
  // Paper: "area overhead due to increasing the number of ECC decoder units
  // from one to eight ... is less than 1%".
  const auto a1 = model_.area(1);
  const auto a8 = model_.area(8);
  const double overhead = (a8.total.value - a1.total.value) / a1.total.value;
  EXPECT_GT(overhead, 0.0);
  EXPECT_LT(overhead, 0.01);
}

TEST_F(CacheModelTest, SingleDecoderAreaShareTiny) {
  // Paper: "the contribution of ECC decoder unit in total cache area is
  // about 0.1%".
  const auto a = model_.area(1);
  const double share = a.ecc_decoders.value / a.total.value;
  EXPECT_LT(share, 0.005);
}

TEST_F(CacheModelTest, ReapReadPathNotSlower) {
  // Paper Sec. V-B: REAP's read path is <= the conventional one because the
  // ECC decode overlaps the tag compare.
  const auto t = model_.timing();
  EXPECT_LE(t.reap_total.value, t.conventional_total.value);
  EXPECT_GT(t.conventional_total.value, 0.0);
}

TEST_F(CacheModelTest, WriteEnergyExceedsReadEnergy) {
  const auto e = model_.energies();
  EXPECT_GT(e.way_data_write.value, e.way_data_read.value);
}

TEST_F(CacheModelTest, TagArrayMuchSmallerThanData) {
  const auto a = model_.area(1);
  EXPECT_LT(a.tag_array.value, a.data_array.value / 5.0);
}

TEST_F(CacheModelTest, ReportMentionsKeySections) {
  const std::string r = render_report(model_, "L2");
  EXPECT_NE(r.find("geometry"), std::string::npos);
  EXPECT_NE(r.find("ECC decode"), std::string::npos);
  EXPECT_NE(r.find("REAP"), std::string::npos);
  EXPECT_NE(r.find("leakage"), std::string::npos);
}

TEST(CacheModelSram, L1UsesSramCells) {
  CacheGeometry g;
  g.capacity_bytes = 32 * 1024;
  g.ways = 4;
  g.block_bytes = 64;
  g.data_cell = CellType::sram;
  ecc::SecDedCode code(512);
  CacheModel m(g, tech_32nm(), code, nullptr);
  EXPECT_EQ(m.geometry().sets(), 128u);
  // SRAM read and write within 3x of each other (no MTJ pulse asymmetry).
  const auto e = m.energies();
  EXPECT_LT(e.way_data_write.value, 3.0 * e.way_data_read.value);
}

}  // namespace
}  // namespace reap::nvsim

#include "reap/nvsim/array_model.hpp"

#include <gtest/gtest.h>

#include "reap/mtj/mtj_params.hpp"

namespace reap::nvsim {
namespace {

ArrayGeometry geom(std::size_t rows, std::size_t cols, CellType cell) {
  return {.rows = rows, .cols = cols, .cell = cell};
}

TEST(ArrayModel, CapacityArithmetic) {
  ArrayModel a(geom(2048, 4184, CellType::stt_mram), tech_32nm(), nullptr);
  EXPECT_EQ(a.capacity_bits(), 2048u * 4184u);
  EXPECT_NEAR(a.capacity_kb(), 2048.0 * 4184.0 / 8.0 / 1024.0, 1e-9);
}

TEST(ArrayModel, ReadEnergyScalesWithBits) {
  ArrayModel a(geom(1024, 512, CellType::sram), tech_32nm(), nullptr);
  const auto e1 = a.read_energy(64);
  const auto e2 = a.read_energy(128);
  EXPECT_NEAR(e2.value, 2.0 * e1.value, 1e-18);
}

TEST(ArrayModel, SttWriteMuchCostlierThanRead) {
  const auto mtj = mtj::paper_default();
  ArrayModel a(geom(2048, 4184, CellType::stt_mram), tech_32nm(), &mtj);
  EXPECT_GT(a.write_energy(512).value, 10.0 * a.read_energy(512).value);
}

TEST(ArrayModel, SramWriteComparableToRead) {
  ArrayModel a(geom(128, 256, CellType::sram), tech_32nm(), nullptr);
  const double ratio = a.write_energy(256) / a.read_energy(256);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 3.0);
}

TEST(ArrayModel, MtjParamsRefineSttEnergies) {
  const auto mtj = mtj::paper_default();
  ArrayModel with(geom(1024, 512, CellType::stt_mram), tech_32nm(), &mtj);
  ArrayModel without(geom(1024, 512, CellType::stt_mram), tech_32nm(),
                     nullptr);
  // Both must be in the same order of magnitude but need not match.
  const double r = with.read_energy(512) / without.read_energy(512);
  EXPECT_GT(r, 0.05);
  EXPECT_LT(r, 20.0);
}

TEST(ArrayModel, SttDenserThanSram) {
  ArrayModel stt(geom(1024, 512, CellType::stt_mram), tech_32nm(), nullptr);
  ArrayModel sram(geom(1024, 512, CellType::sram), tech_32nm(), nullptr);
  EXPECT_LT(stt.area().value, sram.area().value);
}

TEST(ArrayModel, SttCellsDoNotLeak) {
  ArrayModel stt(geom(1024, 512, CellType::stt_mram), tech_32nm(), nullptr);
  ArrayModel sram(geom(1024, 512, CellType::sram), tech_32nm(), nullptr);
  // Equal periphery, but SRAM adds per-bit cell leakage.
  EXPECT_LT(stt.leakage().value, sram.leakage().value);
}

TEST(ArrayModel, BiggerArraysSlowerDecode) {
  ArrayModel small(geom(128, 512, CellType::sram), tech_32nm(), nullptr);
  ArrayModel large(geom(8192, 512, CellType::sram), tech_32nm(), nullptr);
  EXPECT_LT(small.decode_delay().value, large.decode_delay().value);
}

TEST(ArrayModel, SttSensingSlowerThanSram) {
  ArrayModel stt(geom(1024, 512, CellType::stt_mram), tech_32nm(), nullptr);
  ArrayModel sram(geom(1024, 512, CellType::sram), tech_32nm(), nullptr);
  EXPECT_GT(stt.sense_delay().value, sram.sense_delay().value);
}

TEST(ArrayModel, PeripheryGrowsWithCapacity) {
  ArrayModel small(geom(256, 512, CellType::sram), tech_32nm(), nullptr);
  ArrayModel large(geom(16384, 512, CellType::sram), tech_32nm(), nullptr);
  EXPECT_LT(small.periphery_energy().value, large.periphery_energy().value);
}

}  // namespace
}  // namespace reap::nvsim

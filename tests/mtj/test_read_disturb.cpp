#include "reap/mtj/read_disturb.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "reap/mtj/mtj_params.hpp"

namespace reap::mtj {
namespace {

TEST(MtjParams, PresetsAreValid) {
  for (const auto& p : all_presets()) {
    EXPECT_TRUE(p.valid()) << p.name;
  }
}

TEST(MtjParams, InvalidWhenReadExceedsCritical) {
  MtjParams p = paper_default();
  p.read_current = common::microamps(120.0);
  EXPECT_FALSE(p.valid());
}

TEST(ReadDisturb, PaperOperatingPointIsTenToMinusEight) {
  // The paper's numerical example (Eqs. 4/5) uses P_RD-cell = 1e-8; the
  // paper_default preset is tuned to produce that value.
  const double p = read_disturb_probability(paper_default());
  EXPECT_GT(p, 0.5e-8);
  EXPECT_LT(p, 2.0e-8);
}

TEST(ReadDisturb, MatchesClosedFormEquation1) {
  const MtjParams p = paper_default();
  const double ratio = p.read_current / p.critical_current;
  const double expected =
      1.0 - std::exp(-(p.read_pulse / p.attempt_period) *
                     std::exp(-p.delta * (1.0 - ratio)));
  // expm1-based implementation vs naive form: relative agreement only.
  EXPECT_NEAR(read_disturb_probability(p), expected, expected * 1e-6);
}

TEST(ReadDisturb, IncreasesWithReadCurrent) {
  double prev = 0.0;
  for (double ratio : {0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    const double prd = read_disturb_probability(with_read_ratio(ratio));
    EXPECT_GT(prd, prev) << ratio;
    prev = prd;
  }
}

TEST(ReadDisturb, DecreasesWithThermalStability) {
  MtjParams lo = paper_default();
  lo.delta = 40.0;
  MtjParams hi = paper_default();
  hi.delta = 80.0;
  EXPECT_GT(read_disturb_probability(lo), read_disturb_probability(hi));
}

TEST(ReadDisturb, IncreasesWithPulseWidth) {
  MtjParams shrt = paper_default();
  shrt.read_pulse = common::nanoseconds(0.5);
  MtjParams lng = paper_default();
  lng.read_pulse = common::nanoseconds(4.0);
  EXPECT_GT(read_disturb_probability(lng), read_disturb_probability(shrt));
}

TEST(ReadDisturb, PerCellDeltaOverrideMatchesGlobal) {
  const MtjParams p = paper_default();
  EXPECT_DOUBLE_EQ(read_disturb_probability(p),
                   read_disturb_probability(p, p.delta));
  EXPECT_GT(read_disturb_probability(p, 40.0),
            read_disturb_probability(p, 60.0));
}

TEST(ReadDisturb, SurvivalMatchesPower) {
  const MtjParams p = paper_default();
  const double prd = read_disturb_probability(p);
  const double s1000 = survive_reads(p, 1000);
  EXPECT_NEAR(s1000, std::pow(1.0 - prd, 1000.0), 1e-12);
  EXPECT_DOUBLE_EQ(survive_reads(p, 0), 1.0);
}

TEST(ReadDisturb, RatioSweepIsMonotonic) {
  const auto pts = sweep_read_ratio(paper_default(), 0.3, 0.95, 20);
  ASSERT_EQ(pts.size(), 20u);
  EXPECT_DOUBLE_EQ(pts.front().ratio, 0.3);
  EXPECT_DOUBLE_EQ(pts.back().ratio, 0.95);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_GT(pts[i].p_rd, pts[i - 1].p_rd);
}

TEST(ReadDisturb, DeltaSweepIsMonotonicDecreasing) {
  const auto pts = sweep_delta(paper_default(), 40.0, 80.0, 9);
  ASSERT_EQ(pts.size(), 9u);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_LT(pts[i].p_rd, pts[i - 1].p_rd);
}

// Property sweep: P_RD is a probability for any sane operating point.
class ReadDisturbDomain
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ReadDisturbDomain, AlwaysAProbability) {
  const auto [ratio, delta] = GetParam();
  MtjParams p = with_read_ratio(ratio);
  p.delta = delta;
  const double prd = read_disturb_probability(p);
  EXPECT_GE(prd, 0.0);
  EXPECT_LE(prd, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Domain, ReadDisturbDomain,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9, 0.99),
                       ::testing::Values(20.0, 40.0, 60.0, 80.0, 120.0)));

}  // namespace
}  // namespace reap::mtj

#include "reap/mtj/variation.hpp"

#include <gtest/gtest.h>

#include "reap/mtj/read_disturb.hpp"

namespace reap::mtj {
namespace {

TEST(Variation, ZeroSigmaIsDeterministic) {
  VariationModel m(paper_default(), {.delta_sigma = 0.0});
  common::Rng rng(1);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(m.sample_delta(rng), paper_default().delta);
  EXPECT_DOUBLE_EQ(m.mean_p_rd(rng, 100),
                   read_disturb_probability(paper_default()));
}

TEST(Variation, SamplesRespectFloor) {
  VariationModel m(paper_default(), {.delta_sigma = 30.0, .delta_floor = 25.0});
  common::Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(m.sample_delta(rng), 25.0);
}

TEST(Variation, SampleMeanNearNominal) {
  VariationModel m(paper_default(), {.delta_sigma = 5.0});
  common::Rng rng(3);
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += m.sample_delta(rng);
  EXPECT_NEAR(acc / n, paper_default().delta, 0.1);
}

TEST(Variation, VariationInflatesMeanDisturbProbability) {
  // exp(-Delta) is convex in Delta, so E[P_RD(Delta)] > P_RD(E[Delta]):
  // the weak-cell tail dominates -- the key systems consequence of process
  // variation (paper ref [2]).
  const double nominal = read_disturb_probability(paper_default());
  VariationModel m(paper_default(), {.delta_sigma = 6.0});
  common::Rng rng(4);
  const double mean = m.mean_p_rd(rng, 200000);
  EXPECT_GT(mean, nominal * 2.0);
}

TEST(Variation, QuantilesAreOrdered) {
  VariationModel m(paper_default(), {.delta_sigma = 6.0});
  common::Rng rng(5);
  const auto qs = m.p_rd_quantiles(rng, 20000, {0.5, 0.9, 0.99, 0.999});
  ASSERT_EQ(qs.size(), 4u);
  for (std::size_t i = 1; i < qs.size(); ++i) EXPECT_GE(qs[i], qs[i - 1]);
  // The 99.9th percentile cell should be far worse than the median.
  EXPECT_GT(qs[3], qs[0] * 10.0);
}

TEST(Variation, QuantilesDeterministicPerSeed) {
  VariationModel m(paper_default(), {.delta_sigma = 4.0});
  common::Rng a(42), b(42);
  EXPECT_EQ(m.p_rd_quantiles(a, 5000, {0.5}),
            m.p_rd_quantiles(b, 5000, {0.5}));
}

}  // namespace
}  // namespace reap::mtj

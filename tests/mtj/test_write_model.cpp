#include "reap/mtj/write_model.hpp"

#include <gtest/gtest.h>

#include "reap/mtj/mtj_params.hpp"

namespace reap::mtj {
namespace {

TEST(WriteModel, FailureIsAProbability) {
  for (const auto& p : all_presets()) {
    const double wf = write_failure_probability(p);
    EXPECT_GE(wf, 0.0) << p.name;
    EXPECT_LE(wf, 1.0) << p.name;
  }
}

TEST(WriteModel, LongerPulseFailsLess) {
  MtjParams shrt = paper_default();
  shrt.write_pulse = common::nanoseconds(2.0);
  MtjParams lng = paper_default();
  lng.write_pulse = common::nanoseconds(30.0);
  EXPECT_GT(write_failure_probability(shrt), write_failure_probability(lng));
}

TEST(WriteModel, MoreOverdriveFailsLess) {
  MtjParams weak = paper_default();
  weak.write_current = common::microamps(110.0);
  MtjParams strong = paper_default();
  strong.write_current = common::microamps(250.0);
  EXPECT_GT(write_failure_probability(weak),
            write_failure_probability(strong));
}

TEST(WriteModel, MeanSwitchingTimeShrinksWithOverdrive) {
  MtjParams weak = paper_default();
  weak.write_current = common::microamps(120.0);
  MtjParams strong = paper_default();
  strong.write_current = common::microamps(300.0);
  EXPECT_GT(mean_switching_time(weak).value,
            mean_switching_time(strong).value);
}

TEST(WriteModel, PulseEnergiesScaleWithCurrentSquared) {
  const MtjParams p = paper_default();
  const double r = 2000.0;
  const common::Joules we = write_pulse_energy(p, r);
  const common::Joules re = read_pulse_energy(p, r);
  // I_write = 150uA for 10ns vs I_read = 69.3uA for 1ns.
  const double expected_ratio = (150.0 * 150.0 * 10.0) / (69.3 * 69.3 * 1.0);
  EXPECT_NEAR(we / re, expected_ratio, expected_ratio * 1e-9);
  EXPECT_GT(we.value, 0.0);
}

TEST(WriteModel, WriteEnergyDominatesReadEnergy) {
  // The STT-MRAM write-vs-read energy asymmetry the restore-policy critique
  // rests on.
  const MtjParams p = paper_default();
  EXPECT_GT(write_pulse_energy(p, 2000.0) / read_pulse_energy(p, 2000.0),
            10.0);
}

}  // namespace
}  // namespace reap::mtj

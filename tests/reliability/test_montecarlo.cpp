// Monte Carlo vs analytic model cross-validation -- the strongest evidence
// that the paper's Eqs. (3)/(6) implementation and the real SEC-DED codec
// agree with each other.
#include "reap/reliability/montecarlo.hpp"

#include <gtest/gtest.h>

#include "reap/reliability/binomial.hpp"
#include "reap/ecc/secded.hpp"
#include "reap/trace/datavalue.hpp"

namespace reap::reliability {
namespace {

common::BitVec payload_with_ones(std::size_t bits, std::size_t ones) {
  common::BitVec v(bits);
  for (std::size_t i = 0; i < ones; ++i) v.set(i * (bits / ones));
  return v;
}

TEST(MonteCarlo, NoDisturbanceNoFailures) {
  ecc::SecDedCode code(64);
  FaultInjector inj(code, 0.0, 1);
  const auto payload = payload_with_ones(64, 20);
  const auto out = inj.run_conventional(payload, 10, 200);
  EXPECT_EQ(out.clean, 200u);
  EXPECT_EQ(out.failure_rate(), 0.0);
}

TEST(MonteCarlo, ConventionalMatchesAnalyticEq3) {
  // Inflated p so events are observable: p = 2e-3, n_ones ~ codeword ones,
  // N = 8 reads. Compare against Eq. (3) with the codeword popcount.
  ecc::SecDedCode code(64);
  const auto payload = payload_with_ones(64, 32);
  const auto cw_ones = code.encode(payload).count_ones();
  const double p = 2e-3;
  const std::uint64_t reads = 8;

  FaultInjector inj(code, p, 42);
  const auto out = inj.run_conventional(payload, reads, 40000);

  // Analytic: >= 2 disturbed cells among the accumulated trials. The
  // analytic form slightly overcounts because once a cell flips it cannot
  // flip again (trials shrink), so allow a modest band.
  const double analytic = p_uncorrectable_block_acc(cw_ones, reads, p);
  EXPECT_GT(out.failure_rate(), analytic * 0.6);
  EXPECT_LT(out.failure_rate(), analytic * 1.4);
}

TEST(MonteCarlo, ReapMatchesAnalyticEq6) {
  ecc::SecDedCode code(64);
  const auto payload = payload_with_ones(64, 32);
  const auto cw_ones = code.encode(payload).count_ones();
  const double p = 2e-3;
  const std::uint64_t reads = 8;

  FaultInjector inj(code, p, 43);
  const auto out = inj.run_reap(payload, reads, 60000);

  const double analytic = p_uncorrectable_block_reap(cw_ones, reads, p);
  EXPECT_GT(out.failure_rate(), analytic * 0.5);
  EXPECT_LT(out.failure_rate(), analytic * 1.6);
}

TEST(MonteCarlo, ReapBeatsConventionalEmpirically) {
  // The paper's core claim, measured on real bits with a real decoder.
  ecc::SecDedCode code(64);
  const auto payload = payload_with_ones(64, 32);
  const double p = 2e-3;
  const std::uint64_t reads = 16;

  FaultInjector inj_c(code, p, 44);
  FaultInjector inj_r(code, p, 45);
  const auto conv = inj_c.run_conventional(payload, reads, 30000);
  const auto reap = inj_r.run_reap(payload, reads, 30000);

  ASSERT_GT(conv.failure_rate(), 0.0);
  ASSERT_GT(reap.failure_rate(), 0.0);
  const double gain = conv.failure_rate() / reap.failure_rate();
  // Expected gain ~ N = 16; require it to be clearly > 4.
  EXPECT_GT(gain, 4.0);
}

TEST(MonteCarlo, OutcomeCountsAreConsistent) {
  ecc::SecDedCode code(64);
  FaultInjector inj(code, 5e-3, 46);
  const auto payload = payload_with_ones(64, 30);
  const auto out = inj.run_conventional(payload, 4, 5000);
  EXPECT_EQ(out.clean + out.corrected + out.detected + out.miscorrected,
            out.trials);
}

TEST(MonteCarlo, SingleReadMostlyCleanOrCorrected) {
  ecc::SecDedCode code(512);
  trace::DataValueModel values({.mean_density = 0.35, .stddev_density = 0.1});
  FaultInjector inj(code, 1e-4, 47);
  const auto out = inj.run_conventional(values.payload_for(0x1000), 1, 5000);
  // E[flips] per read ~ 523 * 0.35 * 1e-4 ~ 0.018: nearly all trials clean,
  // occasionally one corrected, double flips vanishingly rare.
  EXPECT_GT(out.clean, 4800u);
  EXPECT_EQ(out.miscorrected, 0u);
  EXPECT_LT(out.detected, 5u);
}

TEST(MonteCarlo, ScrubPreventsAccumulationAcrossManyReads) {
  // p = 1e-3 over ~36 codeword ones: a single-read double flip has
  // probability ~C(36,2) p^2 ~ 6e-4, so 64 scrubbed reads stay mostly
  // clean, while 64 *accumulated* reads collect ~2.3 expected flips and
  // fail often.
  ecc::SecDedCode code(64);
  const auto payload = payload_with_ones(64, 32);
  const double p = 1e-3;

  FaultInjector inj_c(code, p, 48);
  FaultInjector inj_r(code, p, 49);
  const auto conv = inj_c.run_conventional(payload, 64, 4000);
  const auto reap = inj_r.run_reap(payload, 64, 4000);
  EXPECT_GT(conv.failure_rate(), 0.3);   // accumulation is fatal
  EXPECT_LT(reap.failure_rate(), 0.15);  // scrubbing contains it
}

TEST(MonteCarlo, DetectedDominatesMiscorrection) {
  // SEC-DED turns double flips into *detected* failures; silent corruption
  // needs >= 3 flips between checks. At ~0.3 expected flips per window the
  // 3-flip mass is ~10x rarer than the 2-flip mass.
  ecc::SecDedCode code(64);
  const auto payload = payload_with_ones(64, 32);
  FaultInjector inj(code, 1e-3, 50);
  const auto out = inj.run_conventional(payload, 8, 40000);
  ASSERT_GT(out.detected, 0u);
  EXPECT_LT(out.miscorrected * 3, out.detected);
}

}  // namespace
}  // namespace reap::reliability

#include "reap/reliability/binomial.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace reap::reliability {
namespace {

TEST(Binomial, PaperEquation4NoAccumulation) {
  // Sec. III-B: n = 100 ones, P_RD = 1e-8, no concealed reads:
  // P_err = 1 - P_corr = ~5.0e-13.
  const double p_err = p_uncorrectable_block(100, 1e-8);
  EXPECT_NEAR(p_err, 4.95e-13, 0.1e-13);
}

TEST(Binomial, PaperEquation5FiftyConcealedReads) {
  // Same line with 50 total reads accumulated: P_err = ~1.3e-9.
  const double p_err = p_uncorrectable_block_acc(100, 50, 1e-8);
  EXPECT_GT(p_err, 1.0e-9);
  EXPECT_LT(p_err, 1.5e-9);
}

TEST(Binomial, PaperSectionIVReapExample) {
  // Sec. IV: REAP on the same example gives ~2.6e-11, i.e. ~50x lower than
  // the conventional accumulation case.
  const double p_reap = p_uncorrectable_block_reap(100, 50, 1e-8);
  EXPECT_GT(p_reap, 2.0e-11);
  EXPECT_LT(p_reap, 3.0e-11);

  const double p_conv = p_uncorrectable_block_acc(100, 50, 1e-8);
  EXPECT_NEAR(p_conv / p_reap, 50.0, 2.0);
}

TEST(Binomial, ReapGainApproachesN) {
  // For rare events the conventional/REAP failure ratio tends to N (the
  // analytical heart of Fig. 5: MTTF gain tracks accumulated reads).
  for (std::uint64_t n_reads : {2ull, 10ull, 100ull, 1000ull}) {
    const double conv = p_uncorrectable_block_acc(128, n_reads, 1e-9);
    const double reap = p_uncorrectable_block_reap(128, n_reads, 1e-9);
    EXPECT_NEAR(conv / reap, static_cast<double>(n_reads),
                static_cast<double>(n_reads) * 0.02)
        << n_reads;
  }
}

TEST(Binomial, CorrectAndUncorrectableSumToOne) {
  for (double p : {1e-9, 1e-6, 1e-3}) {
    for (std::uint64_t n : {10ull, 100ull, 512ull}) {
      const double c = p_correct_block(n, p);
      const double u = p_uncorrectable_block(n, p);
      EXPECT_NEAR(c + u, 1.0, 1e-12);
    }
  }
}

TEST(Binomial, NoOnesMeansNoFailure) {
  EXPECT_EQ(p_uncorrectable_block(0, 1e-3), 0.0);
  EXPECT_EQ(p_uncorrectable_block_acc(0, 1000, 1e-3), 0.0);
  EXPECT_EQ(p_uncorrectable_block_reap(0, 1000, 1e-3), 0.0);
}

TEST(Binomial, SingleReadIsSpecialCaseOfBoth) {
  // With N = 1, Eq. (3) and Eq. (6) both reduce to Eq. (2).
  for (std::uint64_t n : {50ull, 100ull, 512ull}) {
    const double base = p_uncorrectable_block(n, 1e-8);
    EXPECT_NEAR(p_uncorrectable_block_acc(n, 1, 1e-8), base, base * 1e-9);
    EXPECT_NEAR(p_uncorrectable_block_reap(n, 1, 1e-8), base, base * 1e-9);
  }
}

TEST(Binomial, ReapNeverWorseThanConventional) {
  for (std::uint64_t n : {10ull, 100ull, 512ull}) {
    for (std::uint64_t reads : {1ull, 5ull, 50ull, 5000ull}) {
      for (double p : {1e-10, 1e-8, 1e-5}) {
        EXPECT_LE(p_uncorrectable_block_reap(n, reads, p),
                  p_uncorrectable_block_acc(n, reads, p) * (1.0 + 1e-9))
            << n << " " << reads << " " << p;
      }
    }
  }
}

TEST(Binomial, StrongerEccReducesFailure) {
  const double t1 = p_uncorrectable(512 * 50, 1, 1e-8);
  const double t2 = p_uncorrectable(512 * 50, 2, 1e-8);
  const double t3 = p_uncorrectable(512 * 50, 3, 1e-8);
  EXPECT_GT(t1, t2);
  EXPECT_GT(t2, t3);
  EXPECT_GT(t2, 0.0);
}

TEST(Binomial, AccumulationMonotonicInReads) {
  double prev = 0.0;
  for (std::uint64_t reads = 1; reads <= 100000; reads *= 10) {
    const double p = p_uncorrectable_block_acc(100, reads, 1e-9);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(UncorrectableModel, MatchesDirectFormulas) {
  UncorrectableModel m(1e-8, 1, 512);
  for (std::uint64_t n : {1ull, 100ull, 317ull, 512ull}) {
    EXPECT_NEAR(m.single(n), p_uncorrectable_block(n, 1e-8),
                p_uncorrectable_block(n, 1e-8) * 1e-9 + 1e-300)
        << n;
    for (std::uint64_t reads : {1ull, 7ull, 100ull}) {
      EXPECT_NEAR(m.conventional(n, reads),
                  p_uncorrectable_block_acc(n, reads, 1e-8),
                  p_uncorrectable_block_acc(n, reads, 1e-8) * 1e-9 + 1e-300);
      EXPECT_NEAR(m.reap(n, reads),
                  p_uncorrectable_block_reap(n, reads, 1e-8),
                  p_uncorrectable_block_reap(n, reads, 1e-8) * 1e-9 + 1e-300);
    }
  }
}

TEST(UncorrectableModel, BeyondCacheFallsBack) {
  UncorrectableModel m(1e-8, 1, 64);
  // n = 100 exceeds the cache size of 64; must still be correct.
  EXPECT_NEAR(m.single(100), p_uncorrectable_block(100, 1e-8),
              p_uncorrectable_block(100, 1e-8) * 1e-9);
}

TEST(UncorrectableModel, HoldsParameters) {
  UncorrectableModel m(1e-7, 2, 512);
  EXPECT_DOUBLE_EQ(m.p_rd(), 1e-7);
  EXPECT_EQ(m.t(), 2u);
}

}  // namespace
}  // namespace reap::reliability

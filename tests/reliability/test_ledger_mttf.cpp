#include <gtest/gtest.h>

#include <cmath>

#include "reap/reliability/ledger.hpp"
#include "reap/reliability/mttf.hpp"

namespace reap::reliability {
namespace {

TEST(Ledger, AccumulatesChecksAndWeight) {
  FailureLedger l;
  l.record_check(0, 1e-12);
  l.record_check(50, 2e-12);
  l.record_unattributed(3e-12);
  EXPECT_EQ(l.checks(), 3u);
  EXPECT_NEAR(l.total_failure_prob(), 6e-12, 1e-24);
  EXPECT_EQ(l.max_concealed(), 50u);
}

TEST(Ledger, HistogramSeparatesConcealedCounts) {
  FailureLedger l;
  for (int i = 0; i < 100; ++i) l.record_check(0, 1e-13);
  l.record_check(5000, 1e-9);
  const auto bins = l.histogram().nonempty_bins();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0].count, 100u);
  EXPECT_EQ(bins[1].count, 1u);
  // The rare high-accumulation event dominates the failure weight -- the
  // Fig. 3 phenomenon in miniature.
  EXPECT_GT(bins[1].weight, bins[0].weight * 10.0);
}

TEST(Ledger, UnattributedSkipsHistogram) {
  FailureLedger l;
  l.record_unattributed(1e-9);
  EXPECT_EQ(l.histogram().total_count(), 0u);
  EXPECT_EQ(l.checks(), 1u);
}

TEST(Ledger, ResetClearsEverything) {
  FailureLedger l;
  l.record_check(10, 1e-9);
  l.reset();
  EXPECT_EQ(l.checks(), 0u);
  EXPECT_EQ(l.total_failure_prob(), 0.0);
  EXPECT_EQ(l.histogram().total_count(), 0u);
}

TEST(Mttf, BasicRateArithmetic) {
  const auto r = compute_mttf(1e-6, 2.0);
  EXPECT_DOUBLE_EQ(r.failure_rate_per_s, 5e-7);
  EXPECT_DOUBLE_EQ(r.mttf_seconds, 2e6);
}

TEST(Mttf, NoFailuresMeansInfiniteMttf) {
  const auto r = compute_mttf(0.0, 1.0);
  EXPECT_TRUE(std::isinf(r.mttf_seconds));
  EXPECT_EQ(r.failure_rate_per_s, 0.0);
}

TEST(Mttf, RatioIsInverseRateRatio) {
  const auto conv = compute_mttf(171e-6, 1.0);
  const auto reap = compute_mttf(1e-6, 1.0);
  EXPECT_NEAR(mttf_ratio(reap, conv), 171.0, 1e-9);
  EXPECT_NEAR(mttf_ratio(conv, reap), 1.0 / 171.0, 1e-12);
}

TEST(Mttf, RatioWithDifferentDurations) {
  // Rates normalize by time, so halving one run's time doubles its rate.
  const auto a = compute_mttf(1e-6, 1.0);
  const auto b = compute_mttf(1e-6, 2.0);
  EXPECT_NEAR(mttf_ratio(b, a), 2.0, 1e-12);
}

TEST(Mttf, DegenerateRatios) {
  const auto none = compute_mttf(0.0, 1.0);
  const auto some = compute_mttf(1e-9, 1.0);
  EXPECT_EQ(mttf_ratio(none, none), 1.0);
  EXPECT_TRUE(std::isinf(mttf_ratio(none, some)));
  EXPECT_EQ(mttf_ratio(some, none), 0.0);
}

}  // namespace
}  // namespace reap::reliability

#include "reap/trace/workload.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace reap::trace {
namespace {

WorkloadProfile tiny_profile() {
  WorkloadProfile p;
  p.name = "tiny";
  p.loads_per_inst = 0.5;
  p.stores_per_inst = 0.25;
  p.code_bytes = 4096;
  p.jump_prob = 0.1;
  PatternSpec s;
  s.kind = PatternSpec::Kind::uniform;
  s.region_bytes = 64 * 1024;
  s.weight = 1.0;
  p.patterns = {s};
  p.seed = 77;
  return p;
}

TEST(Workload, FirstOpIsInstructionFetch) {
  WorkloadTraceSource src(tiny_profile());
  MemOp op;
  ASSERT_TRUE(src.next(op));
  EXPECT_EQ(op.type, OpType::inst_fetch);
}

TEST(Workload, DeterministicForSameProfile) {
  WorkloadTraceSource a(tiny_profile()), b(tiny_profile());
  MemOp oa, ob;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(a.next(oa));
    ASSERT_TRUE(b.next(ob));
    ASSERT_EQ(oa.type, ob.type);
    ASSERT_EQ(oa.addr, ob.addr);
  }
}

TEST(Workload, ResetReplaysExactly) {
  WorkloadTraceSource src(tiny_profile());
  std::vector<MemOp> first;
  MemOp op;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(src.next(op));
    first.push_back(op);
  }
  src.reset();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(src.next(op));
    EXPECT_EQ(op.addr, first[i].addr);
    EXPECT_EQ(op.type, first[i].type);
  }
}

TEST(Workload, MixRatiosApproximatelyHonored) {
  WorkloadTraceSource src(tiny_profile());
  MemOp op;
  std::map<OpType, int> counts;
  for (int i = 0; i < 300000; ++i) {
    ASSERT_TRUE(src.next(op));
    ++counts[op.type];
  }
  const double inst = counts[OpType::inst_fetch];
  EXPECT_NEAR(counts[OpType::load] / inst, 0.5, 0.02);
  EXPECT_NEAR(counts[OpType::store] / inst, 0.25, 0.02);
}

TEST(Workload, FetchAddressesStayInCodeRegion) {
  WorkloadTraceSource src(tiny_profile());
  MemOp op;
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(src.next(op));
    if (op.type == OpType::inst_fetch) {
      EXPECT_GE(op.addr, 0x400000u);
      EXPECT_LT(op.addr, 0x400000u + 4096u);
    }
  }
}

TEST(Workload, DataAddressesOutsideCodeRegion) {
  WorkloadTraceSource src(tiny_profile());
  MemOp op;
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(src.next(op));
    if (op.type != OpType::inst_fetch) {
      EXPECT_GE(op.addr, 0x10000000u);
    }
  }
}

TEST(Workload, MultiplePatternRegionsAreDisjoint) {
  WorkloadProfile p = tiny_profile();
  PatternSpec s2;
  s2.kind = PatternSpec::Kind::stream;
  s2.region_bytes = 1 << 20;
  s2.weight = 1.0;
  p.patterns.push_back(s2);
  WorkloadTraceSource src(p);
  // Pattern 0 occupies [heap, heap + 64K); pattern 1 starts at a 1MB-aligned
  // base past a 2MB-rounded gap plus the per-pattern set stagger (97 sets).
  constexpr std::uint64_t kR0 = 0x10000000u;
  constexpr std::uint64_t kR1 = 0x10200000u + 97 * 64;
  MemOp op;
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(src.next(op));
    if (op.type == OpType::inst_fetch) continue;
    const bool in_r0 = op.addr >= kR0 && op.addr < kR0 + 0x10000u;
    const bool in_r1 = op.addr >= kR1 && op.addr < kR1 + 0x100000u;
    EXPECT_TRUE(in_r0 || in_r1) << std::hex << op.addr;
  }
}

TEST(Workload, NeverEnds) {
  WorkloadTraceSource src(tiny_profile());
  MemOp op;
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(src.next(op));
}

TEST(Workload, BatchedPullMatchesPerOpSequence) {
  // next_batch must emit exactly the sequence per-op next() would: the
  // simulator's batched loop and the legacy loop replay identical traces.
  WorkloadTraceSource per_op(tiny_profile());
  WorkloadTraceSource batched(tiny_profile());
  std::vector<MemOp> buf(257);  // odd size: batches end mid-stream
  std::size_t checked = 0;
  while (checked < 5000) {
    const std::size_t n = batched.next_batch({buf.data(), buf.size()});
    ASSERT_GT(n, 0u);
    for (std::size_t i = 0; i < n; ++i) {
      MemOp op;
      ASSERT_TRUE(per_op.next(op));
      ASSERT_EQ(op.type, buf[i].type) << "op " << checked;
      ASSERT_EQ(op.addr, buf[i].addr) << "op " << checked;
      ++checked;
    }
  }
}

TEST(Workload, MixedPullStylesStayContinuous) {
  // Alternating per-op and batched pulls must not skip or repeat ops.
  WorkloadTraceSource reference(tiny_profile());
  WorkloadTraceSource mixed(tiny_profile());
  std::vector<MemOp> buf(64);
  std::size_t checked = 0;
  while (checked < 2000) {
    MemOp op;
    ASSERT_TRUE(mixed.next(op));  // may leave data ops pending
    MemOp want;
    ASSERT_TRUE(reference.next(want));
    ASSERT_EQ(op.addr, want.addr) << "op " << checked;
    ++checked;
    const std::size_t n = mixed.next_batch({buf.data(), buf.size()});
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(reference.next(want));
      ASSERT_EQ(buf[i].addr, want.addr) << "op " << checked;
      ++checked;
    }
  }
}

TEST(Workload, TinyBatchSpanStillProduces) {
  // A span smaller than one instruction group (3 ops) must still make
  // progress: 0 is reserved for end-of-trace.
  WorkloadTraceSource src(tiny_profile());
  MemOp one;
  for (int i = 0; i < 100; ++i)
    ASSERT_EQ(src.next_batch({&one, 1}), 1u);
}

}  // namespace
}  // namespace reap::trace

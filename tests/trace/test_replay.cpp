// MaterializedTrace / ReplayTraceSource: the packed arena must replay the
// producer's op stream byte-identically, the pack encoding must round-trip
// every op, and the replay reader must be bounds-checked at every edge.
#include <gtest/gtest.h>

#include <vector>

#include "reap/trace/replay.hpp"
#include "reap/trace/spec2006.hpp"
#include "reap/trace/trace_io.hpp"
#include "reap/trace/workload.hpp"

namespace reap::trace {
namespace {

WorkloadProfile profile(const char* name = "perlbench",
                        std::uint64_t seed = 0x5EED) {
  auto p = *spec2006_profile(name);
  p.seed = seed;
  return p;
}

TEST(MaterializedTrace, PackUnpackRoundTrips) {
  for (const OpType type : {OpType::inst_fetch, OpType::load, OpType::store}) {
    for (const std::uint64_t addr :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0x0040'0000},
          std::uint64_t{0x1234'5678'9ABC}, (std::uint64_t{1} << 62) - 1}) {
      const MemOp op{type, addr};
      const MemOp back = MaterializedTrace::unpack(MaterializedTrace::pack(op));
      EXPECT_EQ(back.type, op.type);
      EXPECT_EQ(back.addr, op.addr);
    }
  }
}

TEST(MaterializedTrace, ReplayStreamIdenticalToGenerator) {
  WorkloadTraceSource gen(profile());
  const auto trace = MaterializedTrace::materialize(gen, 10'000);

  // A fresh generator over the same profile produces the reference stream.
  WorkloadTraceSource ref(profile());
  ReplayTraceSource replay(trace);
  MemOp a, b;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_TRUE(replay.next(a));
    ASSERT_TRUE(ref.next(b));
    ASSERT_EQ(a.addr, b.addr) << "op " << i;
    ASSERT_EQ(a.type, b.type) << "op " << i;
  }
  EXPECT_FALSE(replay.next(a));  // arena exhausted
}

TEST(MaterializedTrace, HoldsBudgetPlusOneFetches) {
  // The consuming TraceCpu reads one instruction fetch past its budget;
  // the arena must contain it so replay never ends a run early.
  const std::uint64_t budget = 5'000;
  WorkloadTraceSource gen(profile());
  const auto trace = MaterializedTrace::materialize(gen, budget);
  std::uint64_t fetches = 0;
  ReplayTraceSource replay(trace);
  MemOp op;
  while (replay.next(op)) fetches += op.type == OpType::inst_fetch;
  EXPECT_GE(fetches, budget + 1);
}

TEST(MaterializedTrace, FiniteSourceEndsReplayAtSameOp) {
  std::vector<MemOp> ops;
  for (std::uint64_t i = 0; i < 100; ++i)
    ops.push_back({i % 3 == 0 ? OpType::inst_fetch : OpType::load, i * 64});
  VectorTraceSource finite(ops);
  const auto trace = MaterializedTrace::materialize(finite, 1'000'000);
  EXPECT_EQ(trace.size(), ops.size());
  ReplayTraceSource replay(trace);
  MemOp op;
  std::size_t n = 0;
  while (replay.next(op)) {
    EXPECT_EQ(op.addr, ops[n].addr);
    EXPECT_EQ(op.type, ops[n].type);
    ++n;
  }
  EXPECT_EQ(n, ops.size());
}

TEST(ReplayTraceSource, BatchPullsMatchPerOpPulls) {
  WorkloadTraceSource gen(profile("mcf"));
  const auto trace = MaterializedTrace::materialize(gen, 3'000);

  ReplayTraceSource per_op(trace);
  ReplayTraceSource batched(trace);
  std::vector<MemOp> a, b;
  MemOp op;
  while (per_op.next(op)) a.push_back(op);
  MemOp buf[777];  // deliberately unaligned with the arena size
  for (;;) {
    const std::size_t n = batched.next_batch({buf, 777});
    if (n == 0) break;
    b.insert(b.end(), buf, buf + n);
  }
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr);
    EXPECT_EQ(a[i].type, b[i].type);
  }
}

TEST(ReplayTraceSource, BoundsCheckedAtTheTail) {
  std::vector<MemOp> ops(10, MemOp{OpType::load, 0x1000});
  ops.insert(ops.begin(), {OpType::inst_fetch, 0x40});
  VectorTraceSource finite(ops);
  const auto trace = MaterializedTrace::materialize(finite, 1'000);

  ReplayTraceSource replay(trace);
  MemOp buf[64];
  // First pull: span larger than the whole arena — clamped, not overrun.
  EXPECT_EQ(replay.next_batch({buf, 64}), trace.size());
  // Past the end: 0 (end of trace), repeatedly.
  EXPECT_EQ(replay.next_batch({buf, 64}), 0u);
  EXPECT_EQ(replay.next_batch({buf, 64}), 0u);
  // reset() rewinds to the start.
  replay.reset();
  EXPECT_EQ(replay.next_batch({buf, 3}), 3u);
}

TEST(ReplayTraceSource, ReadClampsArbitraryOffsets) {
  WorkloadTraceSource gen(profile());
  const auto trace = MaterializedTrace::materialize(gen, 100);
  MemOp buf[8];
  EXPECT_EQ(trace.read(trace.size(), {buf, 8}), 0u);
  EXPECT_EQ(trace.read(trace.size() + 1000, {buf, 8}), 0u);
  EXPECT_EQ(trace.read(trace.size() - 2, {buf, 8}), 2u);
  EXPECT_EQ(trace.read(0, {buf, 0}), 0u);
}

TEST(MaterializedTrace, EstimateTracksActualBytes) {
  for (const char* name : {"perlbench", "mcf", "h264ref"}) {
    WorkloadTraceSource gen(profile(name));
    const auto trace = MaterializedTrace::materialize(gen, 50'000);
    const auto est = estimate_trace_bytes(profile(name), 50'000);
    // The op mix is stochastic; the estimate only needs to be the right
    // size class (dry-run reporting, cache-cap planning).
    EXPECT_GT(est, trace.bytes() / 2) << name;
    EXPECT_LT(est, trace.bytes() * 2) << name;
  }
}

TEST(MaterializedTrace, BytesReflectArenaFootprint) {
  WorkloadTraceSource gen(profile());
  const auto trace = MaterializedTrace::materialize(gen, 10'000);
  EXPECT_GE(trace.bytes(), trace.size() * sizeof(std::uint64_t));
  // Packed at 8 bytes per op — half of sizeof(MemOp) (16 with padding).
  EXPECT_LT(trace.bytes(), trace.size() * sizeof(MemOp));
}

}  // namespace
}  // namespace reap::trace

// .reaptrace store files: a written file must round-trip exactly (header,
// metadata, and body), an mmapped file must replay byte-identically to the
// arena it was written from, and — the centerpiece — a corrupted file must
// be *rejected at open* with a distinct reason for every failure mode. The
// battery below damages files the way disks and tools actually damage
// them (truncation, appended garbage, bit flips) and asserts that no
// single-bit flip anywhere in a file survives validation: every byte is
// covered by the header CRC, the body CRC, or is a stored CRC itself.
#include "reap/trace/trace_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <vector>

#include "reap/common/crc32c.hpp"
#include "reap/trace/replay.hpp"
#include "reap/trace/spec2006.hpp"
#include "reap/trace/trace_io.hpp"
#include "reap/trace/workload.hpp"

namespace reap::trace {
namespace {

WorkloadProfile profile(const char* name = "mcf") {
  auto p = *spec2006_profile(name);
  p.seed = 0x5EED;
  return p;
}

std::vector<std::uint64_t> sample_packed(std::size_t n = 64) {
  std::vector<std::uint64_t> ops;
  for (std::size_t i = 0; i < n; ++i)
    ops.push_back(MaterializedTrace::pack(
        {i % 3 == 0 ? OpType::inst_fetch : OpType::load, 0x1000 + i * 64}));
  return ops;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Writes a valid store file and returns its raw bytes, ready to damage.
std::string valid_file_bytes(const std::string& path) {
  const auto ops = sample_packed();
  std::string error;
  EXPECT_TRUE(write_trace_file(path, ops, 20, "mcf/rr-/s0",
                               {{"note", "battery"}}, &error))
      << error;
  return slurp(path);
}

// Builds a raw file by hand with *correct* CRCs around an arbitrary
// metadata block — the only way to reach the validation rungs behind the
// header CRC (misaligned body, malformed metadata, missing trace_key).
std::string craft(std::string meta_block,
                  const std::vector<std::uint64_t>& ops) {
  std::string body(reinterpret_cast<const char*>(ops.data()),
                   ops.size() * sizeof(std::uint64_t));
  std::string h;
  h.append("REAPTRC\0", 8);
  const auto put32 = [&h](std::uint32_t v) {
    h.append(reinterpret_cast<const char*>(&v), 4);
  };
  const auto put64 = [&h](std::uint64_t v) {
    h.append(reinterpret_cast<const char*>(&v), 8);
  };
  put32(kTraceStoreVersion);
  put32(static_cast<std::uint32_t>(meta_block.size()));
  put64(ops.size());
  put64(20);
  put32(common::crc32c(body));
  h += meta_block;
  put32(common::crc32c(h));
  return h + body;
}

std::string open_error(const std::string& path) {
  std::string error;
  EXPECT_EQ(MappedTraceFile::open(path, &error), nullptr) << path;
  return error;
}

TEST(TraceStore, RoundTripsHeaderMetadataAndBody) {
  const auto path = temp_path("roundtrip.reaptrace");
  const auto ops = sample_packed(100);
  std::string error;
  ASSERT_TRUE(write_trace_file(path, ops, 33, "mcf/rr-/s0",
                               {{"campaign", "unit"}, {"budget", "33"}},
                               &error))
      << error;

  const auto mapped = MappedTraceFile::open(path, &error);
  ASSERT_NE(mapped, nullptr) << error;
  EXPECT_EQ(mapped->info().version, kTraceStoreVersion);
  EXPECT_EQ(mapped->info().op_count, ops.size());
  EXPECT_EQ(mapped->info().instructions, 33u);
  EXPECT_EQ(mapped->info().trace_key, "mcf/rr-/s0");
  EXPECT_EQ(mapped->info().meta.at("campaign"), "unit");
  EXPECT_EQ(mapped->info().meta.at("budget"), "33");
  ASSERT_EQ(mapped->body().size(), ops.size());
  EXPECT_EQ(std::memcmp(mapped->body().data(), ops.data(),
                        ops.size() * sizeof(std::uint64_t)),
            0);
  std::remove(path.c_str());
}

TEST(TraceStore, BodyIsEightByteAlignedInTheMapping) {
  const auto path = temp_path("aligned.reaptrace");
  std::string error;
  ASSERT_TRUE(write_trace_file(path, sample_packed(), 20, "k",
                               {{"x", "a longer value to vary the block"}},
                               &error));
  const auto mapped = MappedTraceFile::open(path, &error);
  ASSERT_NE(mapped, nullptr) << error;
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(mapped->body().data()) % 8, 0u);
  std::remove(path.c_str());
}

TEST(TraceStore, FileReplayIsByteIdenticalToArenaReplay) {
  // The chain generator -> materialize -> file -> mmap must serve the
  // exact op stream of generator -> materialize -> ReplayTraceSource:
  // this is the property that makes --trace-dir output byte-identical.
  WorkloadTraceSource gen(profile());
  const auto trace = MaterializedTrace::materialize(gen, 5'000);
  const auto path = temp_path("replay.reaptrace");
  std::string error;
  ASSERT_TRUE(write_trace_file(path, trace, "mcf/rr-/s0", {}, &error))
      << error;

  const auto mapped = MappedTraceFile::open(path, &error);
  ASSERT_NE(mapped, nullptr) << error;
  EXPECT_EQ(mapped->info().instructions, trace.instructions());
  ReplayTraceSource ref(trace);
  FileTraceSource file_src(mapped);
  MemOp a, b;
  std::size_t n = 0;
  while (ref.next(a)) {
    ASSERT_TRUE(file_src.next(b)) << "op " << n;
    ASSERT_EQ(a.addr, b.addr) << "op " << n;
    ASSERT_EQ(a.type, b.type) << "op " << n;
    ++n;
  }
  EXPECT_FALSE(file_src.next(b));
  // Batch pulls and reset behave like ReplayTraceSource too.
  file_src.reset();
  MemOp buf[777];
  std::size_t total = 0;
  for (;;) {
    const auto got = file_src.next_batch({buf, 777});
    if (got == 0) break;
    total += got;
  }
  EXPECT_EQ(total, trace.size());
  std::remove(path.c_str());
}

TEST(TraceStore, BorrowedTraceAccountsZeroBytesAndSharesTheMapping) {
  const auto path = temp_path("borrow.reaptrace");
  const auto ops = sample_packed();
  std::string error;
  ASSERT_TRUE(write_trace_file(path, ops, 20, "k", {}, &error));

  auto mapped = MappedTraceFile::open(path, &error);
  ASSERT_NE(mapped, nullptr) << error;
  MaterializedTrace borrowed = mapped->borrow(mapped);
  EXPECT_EQ(borrowed.bytes(), 0u);  // a byte-capped cache retains it free
  EXPECT_EQ(borrowed.size(), ops.size());
  EXPECT_EQ(borrowed.instructions(), 20u);

  // The borrow (and copies of it) keep the mapping alive after the last
  // explicit handle is dropped; the file can even be unlinked.
  MaterializedTrace copy = borrowed;
  mapped.reset();
  std::remove(path.c_str());
  ReplayTraceSource replay(copy);
  MemOp op;
  std::size_t n = 0;
  while (replay.next(op)) {
    EXPECT_EQ(MaterializedTrace::pack(op), ops[n]);
    ++n;
  }
  EXPECT_EQ(n, ops.size());
}

TEST(TraceStore, FilenameEncodesAxisSeparators) {
  EXPECT_EQ(trace_store_filename("mcf/rr-/s0"), "mcf_rr-_s0.reaptrace");
  EXPECT_EQ(trace_store_filename("gcc/rr0.8/s12"), "gcc_rr0.8_s12.reaptrace");
}

TEST(TraceStore, WriterRejectsEmptyKeyAndNewlineMetadata) {
  const auto path = temp_path("reject.reaptrace");
  std::string error;
  EXPECT_FALSE(write_trace_file(path, sample_packed(), 20, "", {}, &error));
  EXPECT_NE(error.find("empty trace_key"), std::string::npos);
  EXPECT_FALSE(write_trace_file(path, sample_packed(), 20, "k",
                                {{"bad", "a\nb"}}, &error));
  EXPECT_FALSE(write_trace_file(path, sample_packed(), 20, "k",
                                {{"a=b", "v"}}, &error));
}

// ---- The corruption battery -------------------------------------------
// One test per failure mode, each pinned to its distinct error string, so
// a regression that collapses two modes into one message is caught.

TEST(TraceStoreCorruption, MissingFile) {
  EXPECT_NE(open_error(temp_path("nonexistent.reaptrace")).find("cannot open"),
            std::string::npos);
}

TEST(TraceStoreCorruption, EmptyFile) {
  const auto path = temp_path("empty.reaptrace");
  spit(path, "");
  EXPECT_NE(open_error(path).find("empty file"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceStoreCorruption, TruncatedHeader) {
  const auto path = temp_path("shorthdr.reaptrace");
  const auto good = valid_file_bytes(path);
  // Every prefix shorter than the fixed header must be refused; with 8+
  // magic bytes intact the reason is the truncation, not the magic.
  for (const std::size_t keep : {std::size_t{1}, std::size_t{8},
                                 std::size_t{20}, std::size_t{39}}) {
    spit(path, good.substr(0, keep));
    const auto err = open_error(path);
    if (keep >= 8) {
      EXPECT_NE(err.find("truncated header"), std::string::npos) << keep;
    }
    EXPECT_EQ(err.find("CRC"), std::string::npos) << keep;
  }
  std::remove(path.c_str());
}

TEST(TraceStoreCorruption, BadMagic) {
  const auto path = temp_path("badmagic.reaptrace");
  auto bytes = valid_file_bytes(path);
  bytes[0] = 'X';
  spit(path, bytes);
  EXPECT_NE(open_error(path).find("bad magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceStoreCorruption, UnsupportedVersion) {
  const auto path = temp_path("badver.reaptrace");
  auto bytes = valid_file_bytes(path);
  bytes[8] = 99;  // version field; the header CRC must be refreshed to
                  // prove the version check fires on an *intact* header
  const std::uint32_t meta_bytes =
      static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[12])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[13])) << 8);
  const std::uint32_t crc =
      common::crc32c({bytes.data(), std::size_t{36} + meta_bytes});
  std::memcpy(bytes.data() + 36 + meta_bytes, &crc, 4);
  spit(path, bytes);
  EXPECT_NE(open_error(path).find("unsupported version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceStoreCorruption, HeaderBitFlipCaughtByHeaderCrc) {
  const auto path = temp_path("hdrflip.reaptrace");
  const auto good = valid_file_bytes(path);
  // Flip one bit in each mutable header field: meta_bytes, op_count,
  // instructions, stored body CRC, and the metadata text itself.
  for (const std::size_t at : {std::size_t{12}, std::size_t{16},
                               std::size_t{24}, std::size_t{32},
                               std::size_t{40}}) {
    auto bytes = good;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x10);
    spit(path, bytes);
    const auto err = open_error(path);
    EXPECT_FALSE(err.empty()) << "offset " << at;
  }
  std::remove(path.c_str());
}

TEST(TraceStoreCorruption, BodyBitFlipCaughtByBodyCrc) {
  const auto path = temp_path("bodyflip.reaptrace");
  auto bytes = valid_file_bytes(path);
  bytes[bytes.size() - 5] = static_cast<char>(bytes[bytes.size() - 5] ^ 0x01);
  spit(path, bytes);
  EXPECT_NE(open_error(path).find("body CRC mismatch"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceStoreCorruption, TruncatedBody) {
  const auto path = temp_path("shortbody.reaptrace");
  const auto good = valid_file_bytes(path);
  spit(path, good.substr(0, good.size() - 8));
  EXPECT_NE(open_error(path).find("truncated body"), std::string::npos);
  // A ragged (non-multiple-of-8) truncation is the same failure.
  spit(path, good.substr(0, good.size() - 3));
  EXPECT_NE(open_error(path).find("truncated body"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceStoreCorruption, TrailingGarbage) {
  const auto path = temp_path("tail.reaptrace");
  const auto good = valid_file_bytes(path);
  spit(path, good + std::string(16, '\0'));
  EXPECT_NE(open_error(path).find("op count/file size mismatch"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceStoreCorruption, MisalignedBody) {
  const auto path = temp_path("misaligned.reaptrace");
  // Hand-crafted with correct CRCs and an unpadded metadata block: the
  // header is internally consistent, but the body would start misaligned.
  spit(path, craft("trace_key = k\n", sample_packed()));
  EXPECT_NE(open_error(path).find("misaligned body"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceStoreCorruption, MalformedMetadata) {
  const auto path = temp_path("badmeta.reaptrace");
  // 24 bytes -> 8-aligned header, valid CRCs, but a line with no '='.
  spit(path, craft("trace_key = k\nnonsense!\n", sample_packed()));
  EXPECT_NE(open_error(path).find("malformed metadata"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceStoreCorruption, MissingTraceKey) {
  const auto path = temp_path("nokey.reaptrace");
  // 32 bytes of well-formed lines, none of them trace_key.
  spit(path, craft("aa = bb\ncc = dd\nee = ff\ngg = hh\n", sample_packed()));
  EXPECT_NE(open_error(path).find("missing trace_key"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceStoreCorruption, EverySingleBitFlipIsRejected) {
  // Fuzz rung: CRCs cover every byte of the file (header fields and
  // metadata by the header CRC, ops by the body CRC, and a flip inside a
  // stored CRC mismatches by construction), so *no* single-bit flip may
  // open successfully. Randomized but deterministic.
  const auto path = temp_path("fuzz.reaptrace");
  const auto good = valid_file_bytes(path);
  std::mt19937_64 rng(0xF1195EED);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t byte_at = rng() % good.size();
    const int bit = static_cast<int>(rng() % 8);
    auto bytes = good;
    bytes[byte_at] = static_cast<char>(bytes[byte_at] ^ (1 << bit));
    spit(path, bytes);
    std::string error;
    EXPECT_EQ(MappedTraceFile::open(path, &error), nullptr)
        << "flip survived at byte " << byte_at << " bit " << bit;
    EXPECT_FALSE(error.empty());
  }
  // Control: the undamaged bytes still open.
  spit(path, good);
  std::string error;
  EXPECT_NE(MappedTraceFile::open(path, &error), nullptr) << error;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace reap::trace

#include "reap/trace/synth.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace reap::trace {
namespace {

TEST(SequentialStream, WalksAndWraps) {
  common::Rng rng(1);
  SequentialStream s(1000, 256, 64);
  EXPECT_EQ(s.next(rng), 1000u);
  EXPECT_EQ(s.next(rng), 1064u);
  EXPECT_EQ(s.next(rng), 1128u);
  EXPECT_EQ(s.next(rng), 1192u);
  EXPECT_EQ(s.next(rng), 1000u);  // wrapped
}

TEST(SequentialStream, ResetRestarts) {
  common::Rng rng(1);
  SequentialStream s(0, 1024, 8);
  s.next(rng);
  s.next(rng);
  s.reset();
  EXPECT_EQ(s.next(rng), 0u);
}

TEST(UniformRandom, StaysInRegionAndAligned) {
  common::Rng rng(2);
  UniformRandom u(4096, 8192, 8);
  for (int i = 0; i < 10000; ++i) {
    const auto a = u.next(rng);
    EXPECT_GE(a, 4096u);
    EXPECT_LT(a, 4096u + 8192u);
    EXPECT_EQ(a % 8, 0u);
  }
}

TEST(UniformRandom, CoversRegion) {
  common::Rng rng(3);
  UniformRandom u(0, 64 * 8, 64);  // 8 blocks
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(u.next(rng) / 64);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ZipfHotSet, StaysInRegion) {
  common::Rng rng(4);
  ZipfHotSet z(1 << 20, 1 << 16, 1.0, true);
  for (int i = 0; i < 10000; ++i) {
    const auto a = z.next(rng);
    EXPECT_GE(a, 1u << 20);
    EXPECT_LT(a, (1u << 20) + (1u << 16));
  }
}

TEST(ZipfHotSet, SkewConcentratesOnFewBlocks) {
  common::Rng rng(5);
  ZipfHotSet z(0, 64 * 4096, 1.1, false);
  std::map<std::uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.next(rng) / 64];
  // Top block should own a large share of accesses.
  int max_count = 0;
  for (const auto& [b, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, n / 20);
}

TEST(ZipfHotSet, ScramblePreservesDistribution) {
  common::Rng r1(6), r2(6);
  ZipfHotSet plain(0, 64 * 1024, 1.0, false);
  ZipfHotSet scrambled(0, 64 * 1024, 1.0, true);
  // Both must produce valid addresses; the scrambled one should differ from
  // the plain one in where the hot block lives.
  std::map<std::uint64_t, int> cp, cs;
  for (int i = 0; i < 20000; ++i) {
    ++cp[plain.next(r1) / 64];
    ++cs[scrambled.next(r2) / 64];
  }
  auto hottest = [](const std::map<std::uint64_t, int>& m) {
    std::uint64_t best = 0;
    int bc = -1;
    for (const auto& [b, c] : m)
      if (c > bc) {
        bc = c;
        best = b;
      }
    return best;
  };
  EXPECT_EQ(hottest(cp), 0u);       // unscrambled rank 0 = block 0
  EXPECT_NE(hottest(cs), 0u);       // scrambled hot block moved
}

TEST(PointerChase, DeterministicWalkInRegion) {
  common::Rng rng(7);
  PointerChase c1(0, 1 << 20), c2(0, 1 << 20);
  for (int i = 0; i < 1000; ++i) {
    const auto a = c1.next(rng), b = c2.next(rng);
    EXPECT_EQ(a, b);  // state-driven, not rng-driven
    EXPECT_LT(a, 1u << 20);
    EXPECT_EQ(a % 64, 0u);
  }
}

TEST(PointerChase, ResetReplays) {
  common::Rng rng(8);
  PointerChase c(4096, 1 << 16);
  const auto first = c.next(rng);
  c.next(rng);
  c.reset();
  EXPECT_EQ(c.next(rng), first);
}

TEST(PointerChase, LowReuseOverLargeRegion) {
  common::Rng rng(9);
  PointerChase c(0, 1 << 24);  // 16 MB, 262144 blocks
  std::set<std::uint64_t> seen;
  const int n = 10000;
  for (int i = 0; i < n; ++i) seen.insert(c.next(rng));
  // Nearly all accesses should be distinct (mcf-like).
  EXPECT_GT(seen.size(), static_cast<std::size_t>(n) * 95 / 100);
}

TEST(LoopNest, RepeatsTileThenAdvances) {
  common::Rng rng(10);
  // Region 256B, tile 128B, 2 repeats, stride 64: expect tile0 x2, tile1 x2.
  LoopNest l(0, 256, 128, 2, 64);
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 8; ++i) addrs.push_back(l.next(rng));
  EXPECT_EQ(addrs, (std::vector<std::uint64_t>{0, 64, 0, 64, 128, 192, 128,
                                               192}));
  // Wraps back to tile 0.
  EXPECT_EQ(l.next(rng), 0u);
}

TEST(SetHammer, HotBlocksCycleOneSetPeriodApart) {
  common::Rng rng(20);
  SetHammer h(0x1000, 128 * 1024, 5, 0, 0.0);
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 10; ++i) addrs.push_back(h.next(rng));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(addrs[i], 0x1000u + i * 128u * 1024u);
    EXPECT_EQ(addrs[i + 5], addrs[i]);  // cycles
  }
}

TEST(SetHammer, AllAddressesShareTheCacheSet) {
  // 2048-set, 64B-block geometry: set = (addr >> 6) & 2047. Every hammer
  // address (hot and resident) must land in the same set.
  common::Rng rng(21);
  SetHammer h(0x40000000, 128 * 1024, 5, 3, 0.2);
  const std::uint64_t set0 = (0x40000000u >> 6) & 2047u;
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ((h.next(rng) >> 6) & 2047u, set0);
  }
}

TEST(SetHammer, ResidentTouchRateMatchesProbability) {
  common::Rng rng(22);
  SetHammer h(0, 128 * 1024, 5, 2, 0.01);
  int resident = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (h.next(rng) >= 5u * 128u * 1024u) ++resident;
  }
  EXPECT_NEAR(static_cast<double>(resident) / n, 0.01, 0.002);
}

TEST(SetHammer, ZeroResidentProbNeverTouchesResidents) {
  common::Rng rng(23);
  SetHammer h(0, 128 * 1024, 5, 2, 0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(h.next(rng), 5u * 128u * 1024u);
}

TEST(SetHammer, ResetRestartsCycle) {
  common::Rng rng(24);
  SetHammer h(0x2000, 4096, 3, 1, 0.0);
  const auto first = h.next(rng);
  h.next(rng);
  h.reset();
  EXPECT_EQ(h.next(rng), first);
}

TEST(LoopNest, ResetRestoresStart) {
  common::Rng rng(11);
  LoopNest l(512, 4096, 1024, 3, 8);
  l.next(rng);
  l.next(rng);
  l.reset();
  EXPECT_EQ(l.next(rng), 512u);
}

// ZipfHotSet's scramble documents a non-bijective rank->block map for
// non-power-of-two block counts: collisions blend the popularity of the
// colliding ranks. These pins freeze the resulting blend for one such
// geometry (100 blocks) so a refactor of the scramble (or of the sampler's
// draw discipline) cannot silently change every trace distribution.

TEST(ZipfHotSet, ScrambledDrawSequencePinned) {
  // Exact first draws for a fixed seed: any change to mix constants, the
  // rank mapping, or rng consumption shows up here immediately.
  ZipfHotSet z(0, 100 * 64, 1.2, /*scramble=*/true);
  common::Rng rng(0xC0FFEE);
  const std::uint64_t expected[8] = {0x938, 0x450, 0x918, 0x2a8,
                                     0x440, 0x1288, 0x918, 0xa78};
  for (const std::uint64_t want : expected) EXPECT_EQ(z.next(rng), want);
}

TEST(ZipfHotSet, NonBijectiveScrambleBlendPinned) {
  // Aggregate shape of the blend over a long run: how many of the 100
  // blocks are reachable at all (collisions make it fewer than 100), which
  // block absorbed the hottest rank, and its exact draw count.
  ZipfHotSet z(0, 100 * 64, 1.2, /*scramble=*/true);
  common::Rng rng(0xC0FFEE);
  std::map<std::uint64_t, int> by_block;
  for (int i = 0; i < 200000; ++i) ++by_block[z.next(rng) / 64];

  EXPECT_EQ(by_block.size(), 62u);  // 38 of 100 blocks are scramble-shadowed

  std::uint64_t hottest = 0;
  int hottest_count = 0;
  for (const auto& [block, count] : by_block) {
    if (count > hottest_count) {
      hottest_count = count;
      hottest = block;
    }
  }
  EXPECT_EQ(hottest, 36u);
  EXPECT_EQ(hottest_count, 56209);
}

TEST(ZipfHotSet, UnscrambledKeepsRankOrder) {
  // Without scrambling, rank r maps to block r: block 0 must be the
  // hottest and every block reachable.
  ZipfHotSet z(0, 100 * 64, 1.2, /*scramble=*/false);
  common::Rng rng(0xC0FFEE);
  std::map<std::uint64_t, int> by_block;
  for (int i = 0; i < 100000; ++i) ++by_block[z.next(rng) / 64];
  int best = 0;
  std::uint64_t best_block = 99;
  for (const auto& [block, count] : by_block) {
    if (count > best) {
      best = count;
      best_block = block;
    }
  }
  EXPECT_EQ(best_block, 0u);
}

}  // namespace
}  // namespace reap::trace

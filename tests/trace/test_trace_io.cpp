#include "reap/trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace reap::trace {
namespace {

std::vector<MemOp> sample_ops() {
  return {
      {OpType::inst_fetch, 0x400000},
      {OpType::load, 0x10000040},
      {OpType::store, 0x10000080},
      {OpType::inst_fetch, 0x400004},
      {OpType::load, 0xdeadbeef},
  };
}

TEST(VectorTraceSource, YieldsInOrderAndEnds) {
  VectorTraceSource src(sample_ops());
  MemOp op;
  ASSERT_TRUE(src.next(op));
  EXPECT_EQ(op.type, OpType::inst_fetch);
  EXPECT_EQ(op.addr, 0x400000u);
  int count = 1;
  while (src.next(op)) ++count;
  EXPECT_EQ(count, 5);
  EXPECT_FALSE(src.next(op));
}

TEST(VectorTraceSource, ResetRestarts) {
  VectorTraceSource src(sample_ops());
  MemOp op;
  while (src.next(op)) {
  }
  src.reset();
  ASSERT_TRUE(src.next(op));
  EXPECT_EQ(op.addr, 0x400000u);
}

TEST(TextTrace, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/reap_trace.txt";
  VectorTraceSource src(sample_ops());
  ASSERT_TRUE(write_text_trace(path, src, 1000));

  TextTraceReader rd(path);
  ASSERT_TRUE(rd.ok());
  MemOp op;
  for (const MemOp& want : sample_ops()) {
    ASSERT_TRUE(rd.next(op));
    EXPECT_EQ(op.type, want.type);
    EXPECT_EQ(op.addr, want.addr);
  }
  EXPECT_FALSE(rd.next(op));
  std::remove(path.c_str());
}

TEST(TextTrace, ReaderResetRewinds) {
  const std::string path = ::testing::TempDir() + "/reap_trace2.txt";
  VectorTraceSource src(sample_ops());
  ASSERT_TRUE(write_text_trace(path, src, 1000));
  TextTraceReader rd(path);
  MemOp op;
  ASSERT_TRUE(rd.next(op));
  rd.reset();
  MemOp op2;
  ASSERT_TRUE(rd.next(op2));
  EXPECT_EQ(op.addr, op2.addr);
  std::remove(path.c_str());
}

TEST(TextTrace, CommentsSkipped) {
  const std::string path = ::testing::TempDir() + "/reap_trace3.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# header comment\nI 400000\n# mid comment\nL 10\n", f);
  std::fclose(f);
  TextTraceReader rd(path);
  MemOp op;
  ASSERT_TRUE(rd.next(op));
  EXPECT_EQ(op.type, OpType::inst_fetch);
  ASSERT_TRUE(rd.next(op));
  EXPECT_EQ(op.type, OpType::load);
  EXPECT_EQ(op.addr, 0x10u);
  EXPECT_FALSE(rd.next(op));
  std::remove(path.c_str());
}

TEST(TextTrace, MissingFileReportsError) {
  TextTraceReader rd("/nonexistent/path/trace.txt");
  EXPECT_FALSE(rd.ok());
  MemOp op;
  EXPECT_FALSE(rd.next(op));
  EXPECT_FALSE(rd.error().empty());
}

// next() returns false at both clean EOF and parse error; a caller that
// never checks error() cannot tell a complete trace from one truncated by
// a garbage tail. The cases below pin the contract: error() empty iff the
// stream ended cleanly, and a set error latches until reset().

TEST(TextTrace, CommentOnlyFileIsCleanEof) {
  const std::string path = ::testing::TempDir() + "/reap_comments.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# only\n# comments\n# here\n", f);
  std::fclose(f);
  TextTraceReader rd(path);
  ASSERT_TRUE(rd.ok());
  MemOp op;
  EXPECT_FALSE(rd.next(op));
  EXPECT_TRUE(rd.error().empty());  // EOF, not an error
  std::remove(path.c_str());
}

TEST(TextTrace, TrailingGarbageSetsErrorAndLatches) {
  const std::string path = ::testing::TempDir() + "/reap_garbage.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("I 400000\nL 10\nI zzz_not_hex\nS 20\n", f);
  std::fclose(f);
  TextTraceReader rd(path);
  MemOp op;
  ASSERT_TRUE(rd.next(op));
  ASSERT_TRUE(rd.next(op));
  EXPECT_FALSE(rd.next(op));  // the garbage line
  EXPECT_NE(rd.error().find("parse error"), std::string::npos);
  // Latched: the reader must not resume mid-garbage and serve "S 20" as
  // if the trace were intact.
  EXPECT_FALSE(rd.next(op));
  EXPECT_FALSE(rd.next(op));
  EXPECT_NE(rd.error().find("parse error"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TextTrace, UnknownOpKindSetsError) {
  const std::string path = ::testing::TempDir() + "/reap_unknown.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("I 400000\nQ 1234\n", f);
  std::fclose(f);
  TextTraceReader rd(path);
  MemOp op;
  ASSERT_TRUE(rd.next(op));
  EXPECT_FALSE(rd.next(op));
  EXPECT_NE(rd.error().find("unknown op kind"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TextTrace, ResetClearsALatchedError) {
  const std::string path = ::testing::TempDir() + "/reap_reset_err.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("I 400000\nnot a line\n", f);
  std::fclose(f);
  TextTraceReader rd(path);
  MemOp op;
  ASSERT_TRUE(rd.next(op));
  EXPECT_FALSE(rd.next(op));
  EXPECT_FALSE(rd.error().empty());
  rd.reset();
  EXPECT_TRUE(rd.error().empty());
  ASSERT_TRUE(rd.next(op));  // reads from the top again
  EXPECT_EQ(op.addr, 0x400000u);
  std::remove(path.c_str());
}

TEST(BinaryTrace, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/reap_trace.bin";
  VectorTraceSource src(sample_ops());
  ASSERT_TRUE(write_binary_trace(path, src, 1000));

  BinaryTraceReader rd(path);
  ASSERT_TRUE(rd.ok());
  MemOp op;
  for (const MemOp& want : sample_ops()) {
    ASSERT_TRUE(rd.next(op));
    EXPECT_EQ(op.type, want.type);
    EXPECT_EQ(op.addr, want.addr);
  }
  EXPECT_FALSE(rd.next(op));
  std::remove(path.c_str());
}

TEST(BinaryTrace, MaxOpsTruncates) {
  const std::string path = ::testing::TempDir() + "/reap_trace2.bin";
  VectorTraceSource src(sample_ops());
  ASSERT_TRUE(write_binary_trace(path, src, 2));
  BinaryTraceReader rd(path);
  MemOp op;
  EXPECT_TRUE(rd.next(op));
  EXPECT_TRUE(rd.next(op));
  EXPECT_FALSE(rd.next(op));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace reap::trace

#include "reap/trace/spec2006.hpp"

#include <gtest/gtest.h>

#include <set>

namespace reap::trace {
namespace {

TEST(Spec2006, BundlesAtLeastTwentyWorkloads) {
  EXPECT_GE(spec2006_all().size(), 20u);
}

TEST(Spec2006, NamesUniqueAndNonEmpty) {
  const auto names = spec2006_names();
  std::set<std::string> uniq(names.begin(), names.end());
  EXPECT_EQ(uniq.size(), names.size());
  for (const auto& n : names) EXPECT_FALSE(n.empty());
}

TEST(Spec2006, LookupByNameRoundTrips) {
  for (const auto& name : spec2006_names()) {
    const auto p = spec2006_profile(name);
    ASSERT_TRUE(p.has_value()) << name;
    EXPECT_EQ(p->name, name);
  }
  EXPECT_FALSE(spec2006_profile("not-a-benchmark").has_value());
}

TEST(Spec2006, ProfilesAreWellFormed) {
  for (const auto& p : spec2006_all()) {
    EXPECT_FALSE(p.patterns.empty()) << p.name;
    EXPECT_GT(p.loads_per_inst, 0.0) << p.name;
    EXPECT_LT(p.loads_per_inst + p.stores_per_inst, 1.0) << p.name;
    EXPECT_GT(p.code_bytes, 0u) << p.name;
    EXPECT_GT(p.values.mean_density, 0.0) << p.name;
    EXPECT_LT(p.values.mean_density, 1.0) << p.name;
    for (const auto& s : p.patterns) {
      EXPECT_GT(s.weight, 0.0) << p.name;
      EXPECT_GE(s.region_bytes, 64u) << p.name;
    }
  }
}

TEST(Spec2006, SeedsDifferAcrossWorkloads) {
  std::set<std::uint64_t> seeds;
  for (const auto& p : spec2006_all()) seeds.insert(p.seed);
  EXPECT_EQ(seeds.size(), spec2006_all().size());
}

TEST(Spec2006, Fig3WorkloadsExist) {
  for (const auto& name : fig3_names()) {
    EXPECT_TRUE(spec2006_profile(name).has_value()) << name;
  }
  EXPECT_EQ(fig3_names().size(), 4u);
}

TEST(Spec2006, KeyPaperWorkloadsPresent) {
  // The workloads the paper's text singles out must all be available.
  for (const char* name : {"mcf", "namd", "dealII", "h264ref", "cactusADM",
                           "xalancbmk", "perlbench", "calculix"}) {
    EXPECT_TRUE(spec2006_profile(name).has_value()) << name;
  }
}

TEST(Spec2006, McfIsPointerChaseHeavy) {
  const auto p = spec2006_profile("mcf");
  ASSERT_TRUE(p.has_value());
  double chase_weight = 0.0, total = 0.0;
  for (const auto& s : p->patterns) {
    total += s.weight;
    if (s.kind == PatternSpec::Kind::chase) chase_weight += s.weight;
  }
  EXPECT_GT(chase_weight / total, 0.5);
}

TEST(Spec2006, HighGainWorkloadsHaveHammerComponents) {
  for (const char* name : {"h264ref", "namd", "dealII", "calculix"}) {
    const auto p = spec2006_profile(name);
    ASSERT_TRUE(p.has_value());
    bool has_hammer = false;
    for (const auto& s : p->patterns)
      has_hammer |= s.kind == PatternSpec::Kind::hammer;
    EXPECT_TRUE(has_hammer) << name;
  }
}

TEST(Spec2006, CactusAdmReadDominated) {
  const auto p = spec2006_profile("cactusADM");
  ASSERT_TRUE(p.has_value());
  EXPECT_GT(p->loads_per_inst / p->stores_per_inst, 4.0);
}

TEST(Spec2006, XalancbmkStoreHeavy) {
  const auto p = spec2006_profile("xalancbmk");
  ASSERT_TRUE(p.has_value());
  EXPECT_GT(p->stores_per_inst, 0.2);
}

TEST(Spec2006, ProfilesGenerateTraces) {
  for (const auto& prof : spec2006_all()) {
    WorkloadTraceSource src(prof);
    MemOp op;
    int fetches = 0;
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(src.next(op)) << prof.name;
      fetches += op.type == OpType::inst_fetch ? 1 : 0;
    }
    EXPECT_GT(fetches, 1000) << prof.name;
  }
}

}  // namespace
}  // namespace reap::trace

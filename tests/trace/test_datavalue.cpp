#include "reap/trace/datavalue.hpp"

#include <gtest/gtest.h>

namespace reap::trace {
namespace {

TEST(DataValueModel, DeterministicPerAddress) {
  DataValueModel m({.mean_density = 0.35, .stddev_density = 0.1});
  for (std::uint64_t addr : {0x1000ull, 0xdeadbeefull, 0x7fff0000ull}) {
    EXPECT_EQ(m.ones_for(addr), m.ones_for(addr));
  }
}

TEST(DataValueModel, SubBlockAddressesShareValue) {
  DataValueModel m({.mean_density = 0.35, .stddev_density = 0.1});
  EXPECT_EQ(m.ones_for(0x1000), m.ones_for(0x1004));
  EXPECT_EQ(m.ones_for(0x1000), m.ones_for(0x103F));
  // Next block differs (with overwhelming probability for these params).
}

TEST(DataValueModel, OnesWithinValidRange) {
  DataValueModel m({.mean_density = 0.5, .stddev_density = 0.3});
  for (std::uint64_t b = 0; b < 5000; ++b) {
    const auto n = m.ones_for(b * 64);
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, 511u);
  }
}

TEST(DataValueModel, MeanTracksDensity) {
  DataValueModel m({.mean_density = 0.25, .stddev_density = 0.05});
  double acc = 0;
  const int n = 20000;
  for (int b = 0; b < n; ++b) acc += m.ones_for(static_cast<std::uint64_t>(b) * 64);
  EXPECT_NEAR(acc / n / 512.0, 0.25, 0.01);
}

TEST(DataValueModel, DifferentSeedsGiveDifferentAssignments) {
  DataValueModel a({.mean_density = 0.35, .stddev_density = 0.1}, 512, 1);
  DataValueModel b({.mean_density = 0.35, .stddev_density = 0.1}, 512, 2);
  int diff = 0;
  for (std::uint64_t blk = 0; blk < 100; ++blk)
    diff += a.ones_for(blk * 64) != b.ones_for(blk * 64) ? 1 : 0;
  EXPECT_GT(diff, 50);
}

TEST(DataValueModel, PayloadPopcountMatchesOnes) {
  DataValueModel m({.mean_density = 0.4, .stddev_density = 0.1});
  for (std::uint64_t blk = 0; blk < 50; ++blk) {
    const auto addr = blk * 64;
    EXPECT_EQ(m.payload_for(addr).count_ones(), m.ones_for(addr));
  }
}

TEST(DataValueModel, PayloadDeterministic) {
  DataValueModel m({.mean_density = 0.4, .stddev_density = 0.1});
  EXPECT_EQ(m.payload_for(0x4000), m.payload_for(0x4000));
}

TEST(DataValueModel, CustomLineBits) {
  DataValueModel m({.mean_density = 0.5, .stddev_density = 0.0}, 128);
  EXPECT_EQ(m.payload_for(0).size(), 128u);
  EXPECT_NEAR(m.ones_for(0), 64u, 2);
}

}  // namespace
}  // namespace reap::trace

// Unit tests driving the read-path policies directly on synthetic cache
// sets, verifying the accumulation bookkeeping, ledger entries, and energy
// event counts of each policy.
#include "reap/core/policies.hpp"

#include <gtest/gtest.h>

#include "reap/reliability/binomial.hpp"

namespace reap::core {
namespace {

constexpr double kPrd = 1e-8;

class PolicyFixture : public ::testing::Test {
 protected:
  PolicyFixture() : model_(kPrd, 1, 512) {
    ctx_.model = &model_;
    ctx_.ledger = &ledger_;
    ctx_.ways = 4;
    ctx_.write_fail_per_cell = 1e-9;
    ctx_.codeword_bits = 523;
    // 4-way set: ways 0..2 valid with 100 ones each, way 3 invalid.
    for (int w = 0; w < 3; ++w) {
      tagv_[w] = (std::uint64_t(10 + w) << 1) | 1;
      rel_[w].ones = 100;
    }
  }

  sim::CacheSetView ways() { return {tagv_, rel_, 4}; }

  reliability::UncorrectableModel model_;
  reliability::FailureLedger ledger_;
  PolicyContext ctx_;
  std::uint64_t tagv_[4] = {0, 0, 0, 0};
  sim::LineRel rel_[4];
};

TEST_F(PolicyFixture, FactoryProducesAllKinds) {
  for (const PolicyKind k : all_policies()) {
    const auto p = ReadPathPolicy::make(k, ctx_);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->kind(), k);
  }
}

TEST_F(PolicyFixture, PolicyNamesRoundTrip) {
  for (const PolicyKind k : all_policies()) {
    const auto parsed = policy_from_string(to_string(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(policy_from_string("bogus").has_value());
}

// ----------------------------------------------------------- conventional

TEST_F(PolicyFixture, ConventionalConcealedReadsAccumulate) {
  ConventionalParallelPolicy p(ctx_);
  p.on_read_lookup(ways(), /*hit_way=*/0);
  EXPECT_EQ(rel_[0].reads_since_check, 0u);  // checked
  EXPECT_EQ(rel_[1].reads_since_check, 1u);  // concealed
  EXPECT_EQ(rel_[2].reads_since_check, 1u);
  EXPECT_EQ(rel_[3].reads_since_check, 0u);  // invalid: untouched

  p.on_read_lookup(ways(), /*hit_way=*/-1);  // miss: everyone concealed
  EXPECT_EQ(rel_[0].reads_since_check, 1u);
  EXPECT_EQ(rel_[1].reads_since_check, 2u);
}

TEST_F(PolicyFixture, ConventionalChecksOnlyHitWay) {
  ConventionalParallelPolicy p(ctx_);
  p.on_read_lookup(ways(), 1);
  EXPECT_EQ(ledger_.checks(), 1u);
  EXPECT_EQ(p.events().ecc_decodes, 1u);
  p.on_read_lookup(ways(), -1);  // miss: no decode at all
  EXPECT_EQ(ledger_.checks(), 1u);
  EXPECT_EQ(p.events().ecc_decodes, 1u);
}

TEST_F(PolicyFixture, ConventionalFailureUsesEq3) {
  ConventionalParallelPolicy p(ctx_);
  // Accumulate 5 concealed reads on way 1 (6 misses would also bump others).
  for (int i = 0; i < 5; ++i) p.on_read_lookup(ways(), 0);
  ledger_.reset();
  p.on_read_lookup(ways(), 1);  // way 1 now read with N = 5 + 1
  EXPECT_NEAR(ledger_.total_failure_prob(),
              reliability::p_uncorrectable_block_acc(100, 6, kPrd), 1e-20);
  EXPECT_EQ(ledger_.max_concealed(), 5u);
}

TEST_F(PolicyFixture, ConventionalReadsAllWaysEvenOnMiss) {
  ConventionalParallelPolicy p(ctx_);
  p.on_read_lookup(ways(), -1);
  EXPECT_EQ(p.events().way_data_reads, 4u);
  EXPECT_EQ(p.events().tag_reads, 1u);
  EXPECT_EQ(p.events().lookups, 1u);
}

// ------------------------------------------------------------------- reap

TEST_F(PolicyFixture, ReapDecodesEveryWayEveryAccess) {
  ReapPolicy p(ctx_);
  p.on_read_lookup(ways(), 0);
  EXPECT_EQ(p.events().ecc_decodes, 4u);
  p.on_read_lookup(ways(), -1);
  EXPECT_EQ(p.events().ecc_decodes, 8u);
}

TEST_F(PolicyFixture, ReapFailureUsesEq6) {
  ReapPolicy p(ctx_);
  for (int i = 0; i < 5; ++i) p.on_read_lookup(ways(), 0);
  ledger_.reset();
  p.on_read_lookup(ways(), 1);
  EXPECT_NEAR(ledger_.total_failure_prob(),
              reliability::p_uncorrectable_block_reap(100, 6, kPrd), 1e-20);
}

TEST_F(PolicyFixture, ReapStrictlyBeatsConventionalOnAccumulatedLines) {
  ConventionalParallelPolicy pc(ctx_);
  reliability::FailureLedger ledger2;
  PolicyContext ctx2 = ctx_;
  ctx2.ledger = &ledger2;
  ReapPolicy pr(ctx2);

  std::uint64_t tagv2[4];
  sim::LineRel rel2[4];
  for (int w = 0; w < 4; ++w) {
    tagv2[w] = tagv_[w];
    rel2[w] = rel_[w];
  }
  const sim::CacheSetView set2{tagv2, rel2, 4};
  for (int i = 0; i < 50; ++i) {
    pc.on_read_lookup(ways(), 0);
    pr.on_read_lookup(set2, 0);
  }
  pc.on_read_lookup(ways(), 1);
  pr.on_read_lookup(set2, 1);
  EXPECT_GT(ledger_.total_failure_prob(), ledger2.total_failure_prob() * 10);
}

// ----------------------------------------------------------------- serial

TEST_F(PolicyFixture, SerialNeverCreatesConcealedReads) {
  SerialTagThenDataPolicy p(ctx_);
  for (int i = 0; i < 10; ++i) p.on_read_lookup(ways(), 0);
  EXPECT_EQ(rel_[1].reads_since_check, 0u);
  EXPECT_EQ(rel_[2].reads_since_check, 0u);
}

TEST_F(PolicyFixture, SerialReadsOnlyHitWay) {
  SerialTagThenDataPolicy p(ctx_);
  p.on_read_lookup(ways(), 2);
  EXPECT_EQ(p.events().way_data_reads, 1u);
  p.on_read_lookup(ways(), -1);
  EXPECT_EQ(p.events().way_data_reads, 1u);  // miss reads nothing
}

TEST_F(PolicyFixture, SerialFailureIsSingleRead) {
  SerialTagThenDataPolicy p(ctx_);
  p.on_read_lookup(ways(), 0);
  EXPECT_NEAR(ledger_.total_failure_prob(),
              reliability::p_uncorrectable_block(100, kPrd), 1e-20);
}

// ---------------------------------------------------------------- restore

TEST_F(PolicyFixture, RestoreWritesEveryValidWay) {
  DisruptiveRestorePolicy p(ctx_);
  p.on_read_lookup(ways(), 0);
  EXPECT_EQ(p.events().way_data_writes, 3u);  // 3 valid ways restored
  EXPECT_EQ(p.events().way_data_reads, 4u);
}

TEST_F(PolicyFixture, RestoreClearsAccumulationEverywhere) {
  DisruptiveRestorePolicy p(ctx_);
  p.on_read_lookup(ways(), 0);
  for (const auto& line : rel_) EXPECT_EQ(line.reads_since_check, 0u);
}

TEST_F(PolicyFixture, RestoreChargesWriteFailures) {
  DisruptiveRestorePolicy p(ctx_);
  EXPECT_GT(p.impl().restore_failure_prob(), 0.0);
  p.on_read_lookup(ways(), 0);
  // 1 checked read (single-read formula) + 3 restore failures... the hit
  // way's entry already folds its own restore failure in.
  const double expected =
      reliability::p_uncorrectable_block(100, kPrd) +
      3.0 * p.impl().restore_failure_prob();
  EXPECT_NEAR(ledger_.total_failure_prob(), expected, expected * 1e-9);
}

// ------------------------------------------------------------------ scrub

TEST_F(PolicyFixture, ScrubEveryOneMatchesReapDecodeCount) {
  ctx_.scrub_every = 1;
  ScrubPiggybackPolicy p(ctx_);
  p.on_read_lookup(ways(), 0);
  EXPECT_EQ(p.events().ecc_decodes, 4u);  // all ways, like REAP
  EXPECT_EQ(p.impl().scrubs_performed(), 1u);
  for (const auto& line : rel_) EXPECT_EQ(line.reads_since_check, 0u);
}

TEST_F(PolicyFixture, ScrubPeriodicityHonored) {
  ctx_.scrub_every = 4;
  ScrubPiggybackPolicy p(ctx_);
  for (int i = 0; i < 8; ++i) p.on_read_lookup(ways(), 0);
  EXPECT_EQ(p.impl().scrubs_performed(), 2u);
  // Non-scrub accesses decode only the hit way: 6 x 1 + 2 x 4.
  EXPECT_EQ(p.events().ecc_decodes, 6u + 8u);
}

TEST_F(PolicyFixture, ScrubClosesConcealedWindowsEarly) {
  ctx_.scrub_every = 3;
  ScrubPiggybackPolicy p(ctx_);
  // Two conventional lookups accumulate on ways 1 and 2; the third scrubs.
  p.on_read_lookup(ways(), 0);
  p.on_read_lookup(ways(), 0);
  EXPECT_EQ(rel_[1].reads_since_check, 2u);
  ledger_.reset();
  p.on_read_lookup(ways(), 0);  // scrub access
  EXPECT_EQ(rel_[1].reads_since_check, 0u);
  EXPECT_EQ(rel_[2].reads_since_check, 0u);
  // Ledger saw: the hit way (N=1) plus two scrubbed ways (N=3 windows).
  EXPECT_EQ(ledger_.checks(), 3u);
}

TEST_F(PolicyFixture, ScrubBetweenConventionalAndReap) {
  // Total accumulated failure mass: conventional >= scrub(16) >= reap.
  auto run_total = [&](PolicyKind kind, std::uint64_t every) {
    reliability::FailureLedger ledger;
    PolicyContext ctx = ctx_;
    ctx.ledger = &ledger;
    ctx.scrub_every = every;
    auto policy = ReadPathPolicy::make(kind, ctx);
    std::uint64_t tagv[4];
    sim::LineRel rel[4];
    for (int w = 0; w < 4; ++w) {
      tagv[w] = tagv_[w];
      rel[w] = rel_[w];
    }
    for (int i = 0; i < 200; ++i) {
      policy->on_read_lookup({tagv, rel, 4}, i % 50 == 0 ? 1 : 0);
    }
    return ledger.total_failure_prob();
  };
  const double conv = run_total(PolicyKind::conventional_parallel, 0);
  const double scrub = run_total(PolicyKind::scrub_piggyback, 16);
  const double reap = run_total(PolicyKind::reap, 0);
  EXPECT_GT(conv, scrub);
  EXPECT_GT(scrub, reap);
}

// ------------------------------------------------------- shared behaviour

TEST_F(PolicyFixture, WriteLookupCountsEncodeOnHit) {
  ConventionalParallelPolicy p(ctx_);
  p.on_write_lookup(ways(), 1);
  EXPECT_EQ(p.events().way_data_writes, 1u);
  EXPECT_EQ(p.events().ecc_encodes, 1u);
  p.on_write_lookup(ways(), -1);
  EXPECT_EQ(p.events().way_data_writes, 1u);  // miss writes nothing here
  EXPECT_EQ(p.events().lookups, 2u);
}

TEST_F(PolicyFixture, FillCountsAsWrite) {
  ReapPolicy p(ctx_);
  p.on_fill(rel_[3]);
  EXPECT_EQ(p.events().way_data_writes, 1u);
  EXPECT_EQ(p.events().ecc_encodes, 1u);
}

TEST_F(PolicyFixture, EvictionCheckOffByDefault) {
  ConventionalParallelPolicy p(ctx_);
  rel_[0].reads_since_check = 100;
  p.on_evict(rel_[0], /*dirty=*/true);
  EXPECT_EQ(ledger_.checks(), 0u);
  EXPECT_EQ(p.events().ecc_decodes, 0u);
}

TEST_F(PolicyFixture, EvictionCheckExtensionChargesDirtyVictims) {
  ctx_.check_on_dirty_eviction = true;
  ConventionalParallelPolicy p(ctx_);
  rel_[0].reads_since_check = 99;
  p.on_evict(rel_[0], /*dirty=*/true);
  EXPECT_EQ(ledger_.checks(), 1u);
  EXPECT_NEAR(ledger_.total_failure_prob(),
              reliability::p_uncorrectable_block_acc(100, 100, kPrd), 1e-18);
  // Clean victims stay free.
  p.on_evict(rel_[1], /*dirty=*/false);
  EXPECT_EQ(ledger_.checks(), 1u);
}

TEST_F(PolicyFixture, ResetEventsZeroes) {
  ReapPolicy p(ctx_);
  p.on_read_lookup(ways(), 0);
  p.reset_events();
  EXPECT_EQ(p.events().ecc_decodes, 0u);
  EXPECT_EQ(p.events().lookups, 0u);
}

}  // namespace
}  // namespace reap::core

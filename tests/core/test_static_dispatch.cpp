// Golden-equivalence test for the devirtualized engine: the static-dispatch
// path (run_experiment: batched trace pulls, policy inlined into the cache
// access path, vectorized drive loop) must produce results byte-identical
// to the runtime-dispatch reference path (run_experiment_virtual: per-op
// virtual TraceSource::next, virtual L2PolicyHooks) for every PolicyKind --
// and to run_experiment_basic, the same engine on the plain batched loop
// with no pre-decode/prefetch/SIMD. Any divergence means a refactor changed
// an observable result, not just its speed. The suite runs unchanged under
// REAP_SIMD=OFF (the CI scalar-fallback leg), so the chain virtual == basic
// == vectorized is pinned on both kernel flavours.
#include <gtest/gtest.h>

#include "reap/core/experiment.hpp"
#include "reap/trace/replay.hpp"
#include "reap/trace/spec2006.hpp"

namespace reap::core {
namespace {

ExperimentConfig small_cfg(const std::string& workload, PolicyKind policy) {
  ExperimentConfig cfg;
  const auto p = trace::spec2006_profile(workload);
  EXPECT_TRUE(p.has_value());
  cfg.workload = *p;
  cfg.policy = policy;
  cfg.instructions = 120'000;
  cfg.warmup_instructions = 20'000;
  return cfg;
}

// Exact comparison on every stat the result carries. EXPECT_EQ on doubles
// is deliberate: both paths must run the same arithmetic in the same
// order, so even the last ulp has to match.
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.policy, b.policy);

  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.l2_hit_cycles, b.l2_hit_cycles);

  const auto eq_cache = [](const sim::CacheStats& x, const sim::CacheStats& y,
                           const char* which) {
    EXPECT_EQ(x.read_lookups, y.read_lookups) << which;
    EXPECT_EQ(x.read_hits, y.read_hits) << which;
    EXPECT_EQ(x.write_lookups, y.write_lookups) << which;
    EXPECT_EQ(x.write_hits, y.write_hits) << which;
    EXPECT_EQ(x.fills, y.fills) << which;
    EXPECT_EQ(x.evictions, y.evictions) << which;
    EXPECT_EQ(x.dirty_evictions, y.dirty_evictions) << which;
  };
  eq_cache(a.hier.l1i, b.hier.l1i, "l1i");
  eq_cache(a.hier.l1d, b.hier.l1d, "l1d");
  eq_cache(a.hier.l2, b.hier.l2, "l2");
  EXPECT_EQ(a.hier.mem_reads, b.hier.mem_reads);
  EXPECT_EQ(a.hier.mem_writes, b.hier.mem_writes);

  EXPECT_EQ(a.mttf.failure_prob_sum, b.mttf.failure_prob_sum);
  EXPECT_EQ(a.mttf.failure_rate_per_s, b.mttf.failure_rate_per_s);
  EXPECT_EQ(a.mttf.mttf_seconds, b.mttf.mttf_seconds);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.max_concealed, b.max_concealed);

  // Fig. 3 histogram: same bins, same counts, same weights.
  EXPECT_EQ(a.concealed.total_count(), b.concealed.total_count());
  EXPECT_EQ(a.concealed.total_weight(), b.concealed.total_weight());
  EXPECT_EQ(a.concealed.max_sample(), b.concealed.max_sample());
  const auto bins_a = a.concealed.nonempty_bins();
  const auto bins_b = b.concealed.nonempty_bins();
  ASSERT_EQ(bins_a.size(), bins_b.size());
  for (std::size_t i = 0; i < bins_a.size(); ++i) {
    EXPECT_EQ(bins_a[i].lo, bins_b[i].lo);
    EXPECT_EQ(bins_a[i].count, bins_b[i].count);
    EXPECT_EQ(bins_a[i].weight, bins_b[i].weight);
  }

  EXPECT_EQ(a.events.lookups, b.events.lookups);
  EXPECT_EQ(a.events.way_data_reads, b.events.way_data_reads);
  EXPECT_EQ(a.events.way_data_writes, b.events.way_data_writes);
  EXPECT_EQ(a.events.tag_reads, b.events.tag_reads);
  EXPECT_EQ(a.events.tag_writes, b.events.tag_writes);
  EXPECT_EQ(a.events.ecc_decodes, b.events.ecc_decodes);
  EXPECT_EQ(a.events.ecc_encodes, b.events.ecc_encodes);

  EXPECT_EQ(a.energy.dynamic_total_j(), b.energy.dynamic_total_j());
  EXPECT_EQ(a.p_rd, b.p_rd);
}

TEST(StaticDispatch, IdenticalToVirtualPathForEveryPolicy) {
  for (const PolicyKind kind : all_policies()) {
    SCOPED_TRACE(to_string(kind));
    const auto cfg = small_cfg("perlbench", kind);
    expect_identical(run_experiment(cfg), run_experiment_virtual(cfg));
  }
}

TEST(StaticDispatch, IdenticalOnHotSetWorkload) {
  // h264ref drives the deep concealed-read tails (large-N ledger entries),
  // exercising the accumulation bookkeeping both paths must agree on.
  for (const PolicyKind kind :
       {PolicyKind::conventional_parallel, PolicyKind::reap}) {
    SCOPED_TRACE(to_string(kind));
    const auto cfg = small_cfg("h264ref", kind);
    expect_identical(run_experiment(cfg), run_experiment_virtual(cfg));
  }
}

TEST(StaticDispatch, IdenticalWithExtensionsEnabled) {
  auto cfg = small_cfg("gcc", PolicyKind::scrub_piggyback);
  cfg.scrub_every = 16;
  cfg.check_on_dirty_eviction = true;
  expect_identical(run_experiment(cfg), run_experiment_virtual(cfg));
}

TEST(StaticDispatch, IdenticalWithoutWarmup) {
  // No warmup means the batched path's buffered-ops boundary handling is
  // exercised from a cold start.
  auto cfg = small_cfg("mcf", PolicyKind::reap);
  cfg.warmup_instructions = 0;
  expect_identical(run_experiment(cfg), run_experiment_virtual(cfg));
}

// Vectorization equivalence: the vectorized drive loop (batch pre-decode,
// prefetch, SIMD set scans where built) must be byte-identical to the
// plain batched loop for every policy. This is the gate the perf work
// stands behind: run_experiment may only be faster than
// run_experiment_basic, never different.
TEST(StaticDispatch, VectorizedIdenticalToBasicForEveryPolicy) {
  for (const PolicyKind kind : all_policies()) {
    SCOPED_TRACE(to_string(kind));
    const auto cfg = small_cfg("perlbench", kind);
    expect_identical(run_experiment(cfg), run_experiment_basic(cfg));
  }
}

TEST(StaticDispatch, VectorizedIdenticalToBasicOnHotSetWorkload) {
  // h264ref's hot sets maximize accumulate_valid traffic, the loop the
  // vector kernel replaced.
  for (const PolicyKind kind :
       {PolicyKind::conventional_parallel, PolicyKind::reap}) {
    SCOPED_TRACE(to_string(kind));
    const auto cfg = small_cfg("h264ref", kind);
    expect_identical(run_experiment(cfg), run_experiment_basic(cfg));
  }
}

TEST(StaticDispatch, VectorizedIdenticalToBasicWithoutWarmup) {
  auto cfg = small_cfg("mcf", PolicyKind::disruptive_restore);
  cfg.warmup_instructions = 0;
  expect_identical(run_experiment(cfg), run_experiment_basic(cfg));
}

// Replay equivalence: feeding the engine from a materialized arena
// (run_experiment_replay) must be byte-identical to generating the trace
// inline — for every policy, since the campaign trace cache replays one
// arena across the whole policy axis.
TEST(StaticDispatch, ReplayIdenticalToGenerationForEveryPolicy) {
  for (const PolicyKind kind : all_policies()) {
    SCOPED_TRACE(to_string(kind));
    const auto cfg = small_cfg("perlbench", kind);
    trace::WorkloadTraceSource gen(cfg.workload);
    const auto trace = trace::MaterializedTrace::materialize(
        gen, cfg.warmup_instructions + cfg.instructions);
    trace::ReplayTraceSource source(trace);
    expect_identical(run_experiment_replay(cfg, source),
                     run_experiment(cfg));
  }
}

TEST(StaticDispatch, ReplayIdenticalWithoutWarmup) {
  auto cfg = small_cfg("h264ref", PolicyKind::reap);
  cfg.warmup_instructions = 0;
  trace::WorkloadTraceSource gen(cfg.workload);
  const auto trace =
      trace::MaterializedTrace::materialize(gen, cfg.instructions);
  trace::ReplayTraceSource source(trace);
  expect_identical(run_experiment_replay(cfg, source), run_experiment(cfg));
}

TEST(StaticDispatch, OneArenaServesManySequentialReplays) {
  // The sharing pattern the campaign cache relies on: one arena, several
  // consumers, each with its own cursor, every run byte-identical.
  const auto cfg = small_cfg("gcc", PolicyKind::conventional_parallel);
  trace::WorkloadTraceSource gen(cfg.workload);
  const auto trace = trace::MaterializedTrace::materialize(
      gen, cfg.warmup_instructions + cfg.instructions);
  const auto reference = run_experiment(cfg);
  for (int i = 0; i < 3; ++i) {
    trace::ReplayTraceSource source(trace);
    expect_identical(run_experiment_replay(cfg, source), reference);
  }
}

}  // namespace
}  // namespace reap::core

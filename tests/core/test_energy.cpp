#include "reap/core/energy.hpp"

#include <gtest/gtest.h>

namespace reap::core {
namespace {

nvsim::AccessEnergies unit_energies() {
  nvsim::AccessEnergies e;
  e.way_data_read = common::picojoules(10.0);
  e.way_data_write = common::picojoules(50.0);
  e.tag_read = common::picojoules(2.0);
  e.tag_write = common::picojoules(1.0);
  e.periphery = common::picojoules(20.0);
  e.ecc_decode = common::picojoules(3.0);
  e.ecc_encode = common::picojoules(2.0);
  return e;
}

TEST(Energy, ZeroEventsZeroEnergy) {
  const auto b = compute_energy(EnergyEvents{}, unit_energies());
  EXPECT_EQ(b.dynamic_total_j(), 0.0);
}

TEST(Energy, LinearInEventCounts) {
  EnergyEvents ev;
  ev.lookups = 2;
  ev.way_data_reads = 16;
  ev.way_data_writes = 1;
  ev.tag_reads = 2;
  ev.tag_writes = 1;
  ev.ecc_decodes = 2;
  ev.ecc_encodes = 1;
  const auto b = compute_energy(ev, unit_energies());
  EXPECT_NEAR(b.data_read_j, 160e-12, 1e-18);
  EXPECT_NEAR(b.data_write_j, 50e-12, 1e-18);
  EXPECT_NEAR(b.tag_j, 5e-12, 1e-18);
  EXPECT_NEAR(b.periphery_j, 40e-12, 1e-18);
  EXPECT_NEAR(b.ecc_decode_j, 6e-12, 1e-18);
  EXPECT_NEAR(b.ecc_encode_j, 2e-12, 1e-18);
  EXPECT_NEAR(b.dynamic_total_j(), 263e-12, 1e-18);
}

TEST(Energy, ReapVsConventionalDecodeDelta) {
  // Same traffic, different decode counts: the energy difference must be
  // exactly the decode-count difference times the unit decode energy.
  EnergyEvents conv, reap;
  conv.lookups = reap.lookups = 100;
  conv.way_data_reads = reap.way_data_reads = 800;
  conv.tag_reads = reap.tag_reads = 100;
  conv.ecc_decodes = 90;   // hits only
  reap.ecc_decodes = 800;  // all ways, all accesses
  const auto bc = compute_energy(conv, unit_energies());
  const auto br = compute_energy(reap, unit_energies());
  EXPECT_NEAR(br.dynamic_total_j() - bc.dynamic_total_j(),
              (800.0 - 90.0) * 3e-12, 1e-18);
}

}  // namespace
}  // namespace reap::core

// End-to-end integration tests: full experiments on shrunk workloads,
// asserting the paper's qualitative claims hold in the pipeline.
#include "reap/core/experiment.hpp"

#include <gtest/gtest.h>

#include "reap/ecc/secded.hpp"
#include "reap/trace/spec2006.hpp"

namespace reap::core {
namespace {

ExperimentConfig quick_cfg(const std::string& workload) {
  ExperimentConfig cfg;
  const auto p = trace::spec2006_profile(workload);
  EXPECT_TRUE(p.has_value());
  cfg.workload = *p;
  cfg.instructions = 300'000;
  cfg.warmup_instructions = 50'000;
  return cfg;
}

TEST(Experiment, RunsAndPopulatesResult) {
  auto cfg = quick_cfg("perlbench");
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.workload, "perlbench");
  EXPECT_EQ(r.instructions, 300'000u);
  EXPECT_GT(r.cycles, r.instructions);
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_GT(r.sim_seconds, 0.0);
  EXPECT_GT(r.hier.l2.read_lookups, 0u);
  EXPECT_GT(r.checks, 0u);
  EXPECT_GT(r.energy.dynamic_total_j(), 0.0);
  EXPECT_NEAR(r.p_rd, 1e-8, 1e-8);
}

TEST(Experiment, DeterministicAcrossRuns) {
  auto cfg = quick_cfg("gcc");
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.mttf.failure_prob_sum, b.mttf.failure_prob_sum);
  EXPECT_EQ(a.events.ecc_decodes, b.events.ecc_decodes);
}

TEST(Experiment, ReapImprovesMttf) {
  auto cfg = quick_cfg("perlbench");
  const auto c = compare_policies(cfg, PolicyKind::conventional_parallel,
                                  PolicyKind::reap);
  EXPECT_GT(c.mttf_gain, 2.0) << "REAP must clearly beat conventional";
}

TEST(Experiment, ReapEnergyOverheadSmallPositive) {
  auto cfg = quick_cfg("perlbench");
  const auto c = compare_policies(cfg, PolicyKind::conventional_parallel,
                                  PolicyKind::reap);
  EXPECT_GT(c.energy_overhead_pct, 0.0);
  EXPECT_LT(c.energy_overhead_pct, 10.0);
}

TEST(Experiment, ReapNoSlowdown) {
  auto cfg = quick_cfg("perlbench");
  const auto c = compare_policies(cfg, PolicyKind::conventional_parallel,
                                  PolicyKind::reap);
  EXPECT_GE(c.speedup, 0.999);
}

TEST(Experiment, SerialPolicyNoConcealedReads) {
  auto cfg = quick_cfg("perlbench");
  cfg.policy = PolicyKind::serial_tag_then_data;
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.max_concealed, 0u);
}

TEST(Experiment, SerialPolicySlower) {
  auto cfg = quick_cfg("perlbench");
  const auto c = compare_policies(cfg, PolicyKind::conventional_parallel,
                                  PolicyKind::serial_tag_then_data);
  EXPECT_GT(c.other.l2_hit_cycles, c.base.l2_hit_cycles);
  EXPECT_LT(c.speedup, 1.0);
}

TEST(Experiment, RestorePolicyBurnsWriteEnergy) {
  auto cfg = quick_cfg("perlbench");
  const auto c = compare_policies(cfg, PolicyKind::conventional_parallel,
                                  PolicyKind::disruptive_restore);
  // Restores turn every read into k writes: energy explodes -- the paper's
  // argument against the approach.
  EXPECT_GT(c.energy_ratio, 1.5);
}

TEST(Experiment, ConventionalAccumulatesConcealedReads) {
  auto cfg = quick_cfg("h264ref");
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.max_concealed, 100u)
      << "hot-set workload must show real accumulation";
}

TEST(Experiment, HitCyclesOrderingAcrossPolicies) {
  nvsim::CacheGeometry g;
  ecc::SecDedCode code(512);
  const auto mtj = mtj::paper_default();
  const nvsim::CacheModel model(g, nvsim::tech_32nm(), code, &mtj);
  const auto t = model.timing();
  const auto conv =
      l2_hit_cycles_for(PolicyKind::conventional_parallel, t, 2.0);
  const auto reap = l2_hit_cycles_for(PolicyKind::reap, t, 2.0);
  const auto serial =
      l2_hit_cycles_for(PolicyKind::serial_tag_then_data, t, 2.0);
  EXPECT_LE(reap, conv);
  EXPECT_GT(serial, conv);
}

TEST(Experiment, MakeLineCodeSelectsByT) {
  const auto sec = make_line_code(512, 1);
  EXPECT_EQ(sec->correctable_bits(), 1u);
  const auto bch = make_line_code(512, 2);
  EXPECT_EQ(bch->correctable_bits(), 2u);
  EXPECT_GT(bch->parity_bits(), sec->parity_bits());
}

TEST(Experiment, StrongerEccShrinksConventionalFailureRate) {
  auto cfg1 = quick_cfg("perlbench");
  auto cfg2 = quick_cfg("perlbench");
  cfg2.ecc_t = 2;
  const auto r1 = run_experiment(cfg1);
  const auto r2 = run_experiment(cfg2);
  EXPECT_LT(r2.mttf.failure_prob_sum, r1.mttf.failure_prob_sum);
}

TEST(Experiment, EvictionCheckExtensionAddsFailureMass) {
  auto base = quick_cfg("xalancbmk");
  auto ext = base;
  ext.check_on_dirty_eviction = true;
  const auto r1 = run_experiment(base);
  const auto r2 = run_experiment(ext);
  EXPECT_GE(r2.mttf.failure_prob_sum, r1.mttf.failure_prob_sum);
  EXPECT_GE(r2.events.ecc_decodes, r1.events.ecc_decodes);
}

TEST(Experiment, WarmupExcludedFromStats) {
  auto with_warmup = quick_cfg("gcc");
  auto no_warmup = quick_cfg("gcc");
  no_warmup.warmup_instructions = 0;
  const auto a = run_experiment(with_warmup);
  const auto b = run_experiment(no_warmup);
  // Cold-start misses in the no-warmup run should yield more memory reads
  // for the same measured instruction count.
  EXPECT_GT(b.hier.mem_reads, a.hier.mem_reads / 2);
  EXPECT_EQ(a.instructions, b.instructions);
}

}  // namespace
}  // namespace reap::core

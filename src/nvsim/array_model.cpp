#include "reap/nvsim/array_model.hpp"

#include <cmath>

#include "reap/common/assert.hpp"
#include "reap/mtj/write_model.hpp"

namespace reap::nvsim {

namespace {
// Nominal MTJ + access-transistor series resistance for pulse energies.
constexpr double kMtjResistanceOhm = 2000.0;
}

ArrayModel::ArrayModel(ArrayGeometry geom, const TechNode& tech,
                       const mtj::MtjParams* mtj_params)
    : geom_(geom), tech_(tech) {
  REAP_EXPECTS(geom_.rows >= 1 && geom_.cols >= 1);
  if (geom_.cell == CellType::sram) {
    read_per_bit_ = tech_.sram_read_per_bit;
    write_per_bit_ = tech_.sram_write_per_bit;
  } else if (mtj_params != nullptr) {
    read_per_bit_ = mtj::read_pulse_energy(*mtj_params, kMtjResistanceOhm);
    write_per_bit_ = mtj::write_pulse_energy(*mtj_params, kMtjResistanceOhm);
  } else {
    read_per_bit_ = tech_.stt_read_per_bit;
    write_per_bit_ = tech_.stt_write_per_bit;
  }
}

common::Joules ArrayModel::read_energy(std::size_t bits) const {
  REAP_EXPECTS(bits <= geom_.cols);
  const double b = static_cast<double>(bits);
  return read_per_bit_ * b + tech_.senseamp_per_bit * b;
}

common::Joules ArrayModel::write_energy(std::size_t bits) const {
  REAP_EXPECTS(bits <= geom_.cols);
  return write_per_bit_ * static_cast<double>(bits);
}

common::Joules ArrayModel::periphery_energy() const {
  return tech_.periphery_base +
         tech_.periphery_per_sqrt_kb * std::sqrt(capacity_kb());
}

common::Watts ArrayModel::leakage() const {
  common::Watts w{0.0};
  if (geom_.cell == CellType::sram) {
    w += tech_.sram_leakage_per_bit * static_cast<double>(capacity_bits());
  }
  w += common::Watts{tech_.periphery_leakage_per_kb.value * capacity_kb()};
  return w;
}

common::SquareMm ArrayModel::area() const {
  const common::SquareMm cell = tech_.cell_area(geom_.cell);
  const double cells = static_cast<double>(capacity_bits());
  return common::SquareMm{cell.value * cells /
                          tech_.area_efficiency(geom_.cell)};
}

common::Seconds ArrayModel::decode_delay() const {
  const double log2_rows = std::log2(static_cast<double>(geom_.rows) + 1.0);
  return tech_.decode_delay_base + tech_.decode_delay_per_log2_row * log2_rows;
}

common::Seconds ArrayModel::sense_delay() const {
  return geom_.cell == CellType::sram ? tech_.bitline_sense_delay_sram
                                      : tech_.bitline_sense_delay_stt;
}

}  // namespace reap::nvsim

#include "reap/nvsim/report.hpp"

#include <cstdio>

#include "reap/common/table.hpp"

namespace reap::nvsim {

using common::TextTable;

std::string render_report(const CacheModel& model, const std::string& title) {
  const auto& g = model.geometry();
  const AccessEnergies e = model.energies();
  const AreaBreakdown a1 = model.area(1);
  const AreaBreakdown ak = model.area(g.ways);
  const ReadPathTiming t = model.timing();

  std::string out = "== " + title + " ==\n";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "geometry: %zu KB, %zu-way, %zu B blocks, %zu sets, %s data "
                "cells, tech %s\n",
                g.capacity_bytes / 1024, g.ways, g.block_bytes, g.sets(),
                g.data_cell == CellType::stt_mram ? "STT-MRAM" : "SRAM",
                model.tech().name.c_str());
  out += buf;

  TextTable energy({"event", "energy (pJ)"});
  energy.add_row({"way data read", TextTable::fixed(common::in_picojoules(e.way_data_read), 3)});
  energy.add_row({"way data write", TextTable::fixed(common::in_picojoules(e.way_data_write), 3)});
  energy.add_row({"tag read (all ways)", TextTable::fixed(common::in_picojoules(e.tag_read), 3)});
  energy.add_row({"tag write (one way)", TextTable::fixed(common::in_picojoules(e.tag_write), 3)});
  energy.add_row({"periphery / access", TextTable::fixed(common::in_picojoules(e.periphery), 3)});
  energy.add_row({"ECC decode (one codeword)", TextTable::fixed(common::in_picojoules(e.ecc_decode), 3)});
  energy.add_row({"ECC encode", TextTable::fixed(common::in_picojoules(e.ecc_encode), 3)});
  energy.add_row({"parallel read access, 1 decoder", TextTable::fixed(common::in_picojoules(model.parallel_read_access_energy(1)), 1)});
  energy.add_row({"parallel read access, k decoders", TextTable::fixed(common::in_picojoules(model.parallel_read_access_energy(g.ways)), 1)});
  out += energy.render();

  TextTable area({"component", "area (mm^2)", "share"});
  auto share = [&](common::SquareMm x) {
    return TextTable::fixed(100.0 * x.value / ak.total.value, 3) + " %";
  };
  area.add_row({"data array", TextTable::num(a1.data_array.value), share(a1.data_array)});
  area.add_row({"tag array", TextTable::num(a1.tag_array.value), share(a1.tag_array)});
  area.add_row({"ECC decoder x1", TextTable::num(a1.ecc_decoders.value), share(a1.ecc_decoders)});
  area.add_row({"ECC decoders xk (REAP)", TextTable::num(ak.ecc_decoders.value), share(ak.ecc_decoders)});
  area.add_row({"total (conventional)", TextTable::num(a1.total.value), "100 %"});
  area.add_row({"total (REAP)", TextTable::num(ak.total.value),
                TextTable::fixed(100.0 * ak.total.value / a1.total.value, 3) + " %"});
  out += area.render();

  TextTable timing({"path", "latency (ns)"});
  timing.add_row({"tag path", TextTable::fixed(common::in_nanoseconds(t.tag_path), 3)});
  timing.add_row({"data path", TextTable::fixed(common::in_nanoseconds(t.data_path), 3)});
  timing.add_row({"ECC decode", TextTable::fixed(common::in_nanoseconds(t.ecc_decode), 3)});
  timing.add_row({"way MUX", TextTable::fixed(common::in_nanoseconds(t.mux), 3)});
  timing.add_row({"read total (conventional, Fig.2)", TextTable::fixed(common::in_nanoseconds(t.conventional_total), 3)});
  timing.add_row({"read total (REAP, Fig.4)", TextTable::fixed(common::in_nanoseconds(t.reap_total), 3)});
  out += timing.render();

  std::snprintf(buf, sizeof buf, "leakage: %.3f mW\n",
                common::in_milliwatts(model.leakage()));
  out += buf;
  return out;
}

}  // namespace reap::nvsim

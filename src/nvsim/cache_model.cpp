#include "reap/nvsim/cache_model.hpp"

#include <bit>
#include <cmath>

#include "reap/common/assert.hpp"

namespace reap::nvsim {

std::size_t CacheGeometry::index_bits() const {
  const std::size_t s = sets();
  REAP_EXPECTS(std::has_single_bit(s));
  return static_cast<std::size_t>(std::countr_zero(s));
}

std::size_t CacheGeometry::offset_bits() const {
  REAP_EXPECTS(std::has_single_bit(block_bytes));
  return static_cast<std::size_t>(std::countr_zero(block_bytes));
}

std::size_t CacheGeometry::tag_bits() const {
  return address_bits - index_bits() - offset_bits();
}

CacheModel::CacheModel(CacheGeometry geom, TechNode tech,
                       const ecc::Code& line_code,
                       const mtj::MtjParams* mtj_params)
    : geom_(geom), tech_(std::move(tech)), line_code_(line_code) {
  REAP_EXPECTS(geom_.capacity_bytes % (geom_.ways * geom_.block_bytes) == 0);
  REAP_EXPECTS(line_code.data_bits() == geom_.block_bits());

  // Data array: one row per set, row width = ways * codeword bits.
  ArrayGeometry dg;
  dg.rows = geom_.sets();
  dg.cols = geom_.ways * line_code.codeword_bits();
  dg.cell = geom_.data_cell;
  data_array_ = std::make_unique<ArrayModel>(dg, tech_, mtj_params);

  // Tag array: SRAM, one row per set, ways * (tag + valid + dirty + lru).
  ArrayGeometry tg;
  tg.rows = geom_.sets();
  const std::size_t lru_bits = 3;  // per-way replacement state
  tg.cols = geom_.ways * (geom_.tag_bits() + 2 + lru_bits);
  tg.cell = CellType::sram;
  tag_array_ = std::make_unique<ArrayModel>(tg, tech_, nullptr);

  decoder_cost_ = ecc::estimate_decoder_cost(line_code_, tech_.gates);
  encoder_cost_ = ecc::estimate_encoder_cost(line_code_, tech_.gates);
}

AccessEnergies CacheModel::energies() const {
  AccessEnergies e;
  const std::size_t cw = line_code_.codeword_bits();
  e.way_data_read = data_array_->read_energy(cw);
  e.way_data_write = data_array_->write_energy(cw);
  e.tag_read = tag_array_->read_energy(tag_array_->geometry().cols) +
               tag_array_->periphery_energy();
  e.tag_write = tag_array_->write_energy(tag_array_->geometry().cols /
                                         geom_.ways);
  e.periphery = data_array_->periphery_energy();
  e.ecc_decode = decoder_cost_.energy_per_decode;
  e.ecc_encode = encoder_cost_.energy_per_decode;
  return e;
}

common::Joules CacheModel::parallel_read_access_energy(
    std::size_t decoders) const {
  const AccessEnergies e = energies();
  return e.way_data_read * static_cast<double>(geom_.ways) + e.tag_read +
         e.periphery + e.ecc_decode * static_cast<double>(decoders);
}

AreaBreakdown CacheModel::area(std::size_t n_ecc_decoders) const {
  AreaBreakdown a;
  a.data_array = data_array_->area();
  a.tag_array = tag_array_->area();
  a.ecc_decoders =
      common::SquareMm{decoder_cost_.area.value *
                       static_cast<double>(n_ecc_decoders)};
  a.ecc_encoder = encoder_cost_.area;
  a.total = common::SquareMm{a.data_array.value + a.tag_array.value +
                             a.ecc_decoders.value + a.ecc_encoder.value};
  return a;
}

ReadPathTiming CacheModel::timing() const {
  ReadPathTiming t;
  t.tag_path = tag_array_->decode_delay() + tag_array_->sense_delay() +
               tech_.tag_compare_delay;
  t.data_path = data_array_->decode_delay() + data_array_->sense_delay();
  t.ecc_decode = decoder_cost_.latency;
  t.mux = tech_.mux_delay;

  const common::Seconds tag_or_data =
      t.tag_path > t.data_path ? t.tag_path : t.data_path;
  t.conventional_total = tag_or_data + t.mux + t.ecc_decode;

  const common::Seconds data_plus_ecc = t.data_path + t.ecc_decode;
  const common::Seconds reap_critical =
      t.tag_path > data_plus_ecc ? t.tag_path : data_plus_ecc;
  t.reap_total = reap_critical + t.mux;
  return t;
}

common::Watts CacheModel::leakage() const {
  return data_array_->leakage() + tag_array_->leakage();
}

}  // namespace reap::nvsim

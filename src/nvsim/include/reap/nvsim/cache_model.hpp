// Cache-level circuit model: assembles tag + data arrays, ECC logic, and the
// read-path timing comparison between the conventional structure (Fig. 2)
// and REAP (Fig. 4).
#pragma once

#include <cstddef>
#include <memory>

#include "reap/ecc/code.hpp"
#include "reap/ecc/ecc_cost.hpp"
#include "reap/mtj/mtj_params.hpp"
#include "reap/nvsim/array_model.hpp"
#include "reap/nvsim/tech.hpp"

namespace reap::nvsim {

struct CacheGeometry {
  std::size_t capacity_bytes = 1 << 20;  // 1 MB
  std::size_t ways = 8;
  std::size_t block_bytes = 64;
  CellType data_cell = CellType::stt_mram;
  std::size_t address_bits = 48;

  std::size_t sets() const { return capacity_bytes / (ways * block_bytes); }
  std::size_t block_bits() const { return block_bytes * 8; }
  std::size_t index_bits() const;
  std::size_t offset_bits() const;
  std::size_t tag_bits() const;
};

// Per-event energies consumed by the simulator's energy accounting.
struct AccessEnergies {
  common::Joules way_data_read{0.0};   // one way's data+ECC bits read
  common::Joules way_data_write{0.0};  // one way's data+ECC bits written
  common::Joules tag_read{0.0};        // all ways' tags read + compared
  common::Joules tag_write{0.0};       // one way's tag written
  common::Joules periphery{0.0};       // per-access decoder/H-tree
  common::Joules ecc_decode{0.0};      // one decoder instance, one codeword
  common::Joules ecc_encode{0.0};
};

struct AreaBreakdown {
  common::SquareMm data_array{0.0};
  common::SquareMm tag_array{0.0};
  common::SquareMm ecc_decoders{0.0};  // n_decoders instances
  common::SquareMm ecc_encoder{0.0};
  common::SquareMm total{0.0};
};

// Read-path latencies for the two structures (Sec. V-B performance claim).
struct ReadPathTiming {
  common::Seconds tag_path{0.0};     // decode + tag read + compare
  common::Seconds data_path{0.0};    // decode + data read
  common::Seconds ecc_decode{0.0};
  common::Seconds mux{0.0};
  // Conventional (Fig. 2): data and tag overlap, then MUX, then ECC.
  common::Seconds conventional_total{0.0};
  // REAP (Fig. 4): ECC overlaps the tag path too, then MUX.
  common::Seconds reap_total{0.0};
};

class CacheModel {
 public:
  // `line_code` protects one block (data_bits == block bits); the codec's
  // parity bits are stored alongside the data in the data array. `mtj`
  // may be null for SRAM caches.
  CacheModel(CacheGeometry geom, TechNode tech, const ecc::Code& line_code,
             const mtj::MtjParams* mtj_params);

  const CacheGeometry& geometry() const { return geom_; }
  const TechNode& tech() const { return tech_; }

  AccessEnergies energies() const;

  // Read access energy for a full parallel (fast) access: k way reads +
  // tags + periphery + `decoders` ECC decodes. Mirrors the event mix the
  // simulator counts; provided for reports and sanity tests.
  common::Joules parallel_read_access_energy(std::size_t decoders) const;

  AreaBreakdown area(std::size_t n_ecc_decoders) const;

  ReadPathTiming timing() const;

  common::Watts leakage() const;

 private:
  CacheGeometry geom_;
  TechNode tech_;
  const ecc::Code& line_code_;
  std::unique_ptr<ArrayModel> data_array_;
  std::unique_ptr<ArrayModel> tag_array_;
  ecc::DecoderCost decoder_cost_;
  ecc::DecoderCost encoder_cost_;
};

}  // namespace reap::nvsim

// Memory-array model: one logical array (tag or data) of rows x cols cells.
//
// Produces per-access read/write energy, leakage, area, and the decode +
// sense delay components the cache-level model assembles into read paths.
#pragma once

#include <cstddef>

#include "reap/common/units.hpp"
#include "reap/mtj/mtj_params.hpp"
#include "reap/nvsim/tech.hpp"

namespace reap::nvsim {

struct ArrayGeometry {
  std::size_t rows = 0;
  std::size_t cols = 0;         // bits read/written per row access
  CellType cell = CellType::sram;
};

class ArrayModel {
 public:
  // mtj may be null for SRAM arrays; for STT-MRAM arrays it refines the
  // per-bit read/write energy from the pulse model (I^2 * R * t).
  ArrayModel(ArrayGeometry geom, const TechNode& tech,
             const mtj::MtjParams* mtj_params);

  const ArrayGeometry& geometry() const { return geom_; }

  std::size_t capacity_bits() const { return geom_.rows * geom_.cols; }
  double capacity_kb() const {
    return static_cast<double>(capacity_bits()) / 8.0 / 1024.0;
  }

  // Energy of reading / writing `bits` cells in one access (bits <= cols).
  common::Joules read_energy(std::size_t bits) const;
  common::Joules write_energy(std::size_t bits) const;

  // Fixed periphery (decoder + wire) energy per access of this array.
  common::Joules periphery_energy() const;

  common::Watts leakage() const;
  common::SquareMm area() const;

  // Delay components.
  common::Seconds decode_delay() const;   // row decoder + wordline
  common::Seconds sense_delay() const;    // bitline development + sense

 private:
  ArrayGeometry geom_;
  // By value: callers routinely pass a freshly built node (tech_32nm() is
  // a factory), and a reference member would dangle the moment that
  // temporary dies. The struct is a handful of doubles; copying is free.
  TechNode tech_;
  common::Joules read_per_bit_;
  common::Joules write_per_bit_;
};

}  // namespace reap::nvsim

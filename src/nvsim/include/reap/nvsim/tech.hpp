// Technology-node parameters for the circuit-level cache model.
//
// This module stands in for NVSim (paper ref [21]): an analytical model that
// turns cache geometry into access energy, area, and latency. The constants
// below are first-order values calibrated against magnitudes NVSim reports
// for SRAM/STT-MRAM arrays at these nodes (cell sizes in F^2, per-bit sense
// energies, wire/periphery shares). Absolute joules are approximate; the
// *ratios* the paper's claims rest on (ECC decoder share <1%, STT write >>
// read, tag array << data array) are preserved.
#pragma once

#include <string>

#include "reap/common/units.hpp"
#include "reap/ecc/ecc_cost.hpp"

namespace reap::nvsim {

enum class CellType { sram, stt_mram };

struct TechNode {
  std::string name = "32nm";
  double feature_nm = 32.0;

  // Cell footprints in F^2 (feature-size-squared units).
  double sram_cell_f2 = 146.0;
  double stt_cell_f2 = 40.0;

  // Per-bit array energies (storage-cell + local bitline slice).
  common::Joules sram_read_per_bit{8e-15};    // 8 fJ/bit
  common::Joules sram_write_per_bit{10e-15};  // 10 fJ/bit
  // STT-MRAM read/write per-bit energies are derived from the MTJ pulse
  // model at run time; these are fallbacks when no MTJ params are supplied.
  common::Joules stt_read_per_bit{12e-15};
  common::Joules stt_write_per_bit{450e-15};

  // Sense amplifier energy per sensed bit.
  common::Joules senseamp_per_bit{4e-15};

  // Global interconnect (H-tree) + row/column decoder energy per array
  // access, per KB of array capacity routed past (wire length scales with
  // the array's physical extent ~ sqrt(capacity)).
  common::Joules periphery_base{20e-12};           // fixed per access
  common::Joules periphery_per_sqrt_kb{2.5e-12};   // x sqrt(capacity_kb)

  // Leakage per bit of storage (SRAM only; STT-MRAM cells do not leak, its
  // periphery leakage is folded into periphery_leakage_per_kb).
  common::Watts sram_leakage_per_bit{15e-12};
  common::Watts periphery_leakage_per_kb{40e-9};

  // Delay model: row decoder + wordline + bitline/sense per array,
  // comparator, and output mux.
  common::Seconds decode_delay_base{150e-12};
  common::Seconds decode_delay_per_log2_row{25e-12};
  common::Seconds bitline_sense_delay_sram{220e-12};
  common::Seconds bitline_sense_delay_stt{450e-12};  // MTJ sensing is slower
  common::Seconds tag_compare_delay{150e-12};
  common::Seconds mux_delay{80e-12};

  // Logic-gate parameters for the ECC encoder/decoder estimates.
  ecc::GateTech gates;

  // Layout efficiency: cell area / total mat area. STT-MRAM mats are far
  // less efficient than SRAM mats because every column needs bidirectional
  // write drivers and larger sense margin circuitry (NVSim reports 30-40%).
  double area_efficiency_sram = 0.65;
  double area_efficiency_stt = 0.35;

  double area_efficiency(CellType cell) const {
    return cell == CellType::sram ? area_efficiency_sram : area_efficiency_stt;
  }

  common::SquareMm cell_area(CellType cell) const;
};

TechNode tech_45nm();
TechNode tech_32nm();   // default used by the paper-configuration benches
TechNode tech_22nm();

}  // namespace reap::nvsim

// Human-readable breakdown of a CacheModel -- the "NVSim output" half of the
// Table I bench.
#pragma once

#include <string>

#include "reap/nvsim/cache_model.hpp"

namespace reap::nvsim {

// Renders geometry, per-event energies, area breakdown (for 1 and for
// `ways` ECC decoders), leakage, and the conventional-vs-REAP read timing.
std::string render_report(const CacheModel& model, const std::string& title);

}  // namespace reap::nvsim

#include "reap/nvsim/tech.hpp"

namespace reap::nvsim {

common::SquareMm TechNode::cell_area(CellType cell) const {
  const double f_mm = feature_nm * 1e-6;
  const double f2 = cell == CellType::sram ? sram_cell_f2 : stt_cell_f2;
  return common::SquareMm{f2 * f_mm * f_mm};
}

TechNode tech_45nm() {
  TechNode t;
  t.name = "45nm";
  t.feature_nm = 45.0;
  t.sram_read_per_bit = common::Joules{14e-15};
  t.sram_write_per_bit = common::Joules{17e-15};
  t.stt_read_per_bit = common::Joules{18e-15};
  t.stt_write_per_bit = common::Joules{600e-15};
  t.senseamp_per_bit = common::Joules{6e-15};
  t.periphery_base = common::Joules{30e-12};
  t.periphery_per_sqrt_kb = common::Joules{3.5e-12};
  t.decode_delay_base = common::Seconds{190e-12};
  t.bitline_sense_delay_sram = common::Seconds{280e-12};
  t.bitline_sense_delay_stt = common::Seconds{560e-12};
  t.gates = ecc::gate_tech_45nm();
  return t;
}

TechNode tech_32nm() {
  TechNode t;  // defaults are the 32nm values
  t.gates = ecc::gate_tech_32nm();
  return t;
}

TechNode tech_22nm() {
  TechNode t;
  t.name = "22nm";
  t.feature_nm = 22.0;
  t.sram_read_per_bit = common::Joules{5e-15};
  t.sram_write_per_bit = common::Joules{6.5e-15};
  t.stt_read_per_bit = common::Joules{9e-15};
  t.stt_write_per_bit = common::Joules{350e-15};
  t.senseamp_per_bit = common::Joules{2.5e-15};
  t.periphery_base = common::Joules{14e-12};
  t.periphery_per_sqrt_kb = common::Joules{1.8e-12};
  t.decode_delay_base = common::Seconds{120e-12};
  t.bitline_sense_delay_sram = common::Seconds{180e-12};
  t.bitline_sense_delay_stt = common::Seconds{380e-12};
  t.gates = ecc::gate_tech_22nm();
  return t;
}

}  // namespace reap::nvsim

#include "reap/common/subprocess.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "reap/common/fault.hpp"

namespace reap::common {
namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

ExitStatus decode(int wstatus) {
  ExitStatus s;
  if (WIFEXITED(wstatus)) {
    s.exited = true;
    s.code = WEXITSTATUS(wstatus);
  } else if (WIFSIGNALED(wstatus)) {
    s.signal = WTERMSIG(wstatus);
  }
  return s;
}

}  // namespace

std::string ExitStatus::describe() const {
  if (exited) return "exit " + std::to_string(code);
  if (signal != 0) return "signal " + std::to_string(signal);
  return "unknown status";
}

namespace {

// Shared body of spawn()/spawn_piped(): returns the child's pid, or
// nullopt on failure. When `stdout_fd` is non-null the child's stdout
// goes to a pipe (non-blocking read end returned through it) and only
// stderr goes to the log; otherwise both go to the log.
std::optional<long> spawn_impl(const std::vector<std::string>& argv,
                               const std::string& log_path, int* stdout_fd,
                               std::string* error, bool* transient) {
  if (transient) *transient = false;
  if (stdout_fd) *stdout_fd = -1;
  if (argv.empty()) {
    fail(error, "spawn: empty argv");
    return std::nullopt;
  }

  if (const auto f = fault::hit("worker.spawn", argv[0])) {
    if (transient) *transient = true;  // injected scarcity, not a bad argv
    fail(error, std::string("spawn: injected ") + fault::to_string(f->kind));
    return std::nullopt;
  }

  // Open the log in the parent so an unwritable path is a clean error
  // here, not a silent child death.
  int log_fd = -1;
  if (!log_path.empty()) {
    log_fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd < 0) {
      fail(error, "spawn: cannot open log " + log_path + ": " +
                      std::strerror(errno));
      return std::nullopt;
    }
  }

  int out_pipe[2] = {-1, -1};
  if (stdout_fd && ::pipe(out_pipe) != 0) {
    if (log_fd >= 0) ::close(log_fd);
    if (transient) *transient = true;  // fd exhaustion clears itself
    fail(error, std::string("spawn: pipe: ") + std::strerror(errno));
    return std::nullopt;
  }

  // Report an exec failure (e.g. missing binary) back through a
  // close-on-exec pipe: a successful exec closes it silently, a failed
  // one writes errno before _exit.
  int exec_pipe[2] = {-1, -1};
  if (::pipe(exec_pipe) != 0 ||
      ::fcntl(exec_pipe[1], F_SETFD, FD_CLOEXEC) != 0) {
    if (exec_pipe[0] >= 0) ::close(exec_pipe[0]);
    if (exec_pipe[1] >= 0) ::close(exec_pipe[1]);
    if (out_pipe[0] >= 0) ::close(out_pipe[0]);
    if (out_pipe[1] >= 0) ::close(out_pipe[1]);
    if (log_fd >= 0) ::close(log_fd);
    if (transient) *transient = true;  // fd exhaustion clears itself
    fail(error, std::string("spawn: pipe: ") + std::strerror(errno));
    return std::nullopt;
  }

  // execvp wants a mutable char* array; build it before fork so the child
  // only touches async-signal-safe calls.
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& arg : argv) cargv.push_back(const_cast<char*>(arg.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(exec_pipe[0]);
    ::close(exec_pipe[1]);
    if (out_pipe[0] >= 0) ::close(out_pipe[0]);
    if (out_pipe[1] >= 0) ::close(out_pipe[1]);
    if (log_fd >= 0) ::close(log_fd);
    if (transient) *transient = true;  // EAGAIN/ENOMEM: retry may succeed
    fail(error, std::string("spawn: fork: ") + std::strerror(errno));
    return std::nullopt;
  }

  if (pid == 0) {  // child
    ::close(exec_pipe[0]);
    if (out_pipe[1] >= 0) {
      ::close(out_pipe[0]);
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::close(out_pipe[1]);
      if (log_fd >= 0) {
        ::dup2(log_fd, STDERR_FILENO);
        ::close(log_fd);
      }
    } else if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    ::execvp(cargv[0], cargv.data());
    const int err = errno;
    [[maybe_unused]] const auto n =
        ::write(exec_pipe[1], &err, sizeof(err));
    ::_exit(127);
  }

  // parent
  ::close(exec_pipe[1]);
  if (out_pipe[1] >= 0) ::close(out_pipe[1]);
  if (log_fd >= 0) ::close(log_fd);
  int exec_errno = 0;
  const auto n = ::read(exec_pipe[0], &exec_errno, sizeof(exec_errno));
  ::close(exec_pipe[0]);
  if (n == sizeof(exec_errno)) {
    if (out_pipe[0] >= 0) ::close(out_pipe[0]);
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    fail(error, "spawn: cannot exec " + argv[0] + ": " +
                    std::strerror(exec_errno));
    return std::nullopt;
  }
  if (stdout_fd) {
    ::fcntl(out_pipe[0], F_SETFL, O_NONBLOCK);
    *stdout_fd = out_pipe[0];
  }
  return static_cast<long>(pid);
}

}  // namespace

std::optional<Child> Child::spawn(const std::vector<std::string>& argv,
                                  const std::string& log_path,
                                  std::string* error, bool* transient) {
  const auto pid = spawn_impl(argv, log_path, nullptr, error, transient);
  if (!pid) return std::nullopt;
  return Child(*pid);
}

std::optional<Child> Child::spawn_piped(const std::vector<std::string>& argv,
                                        int* stdout_fd,
                                        const std::string& log_path,
                                        std::string* error, bool* transient) {
  const auto pid = spawn_impl(argv, log_path, stdout_fd, error, transient);
  if (!pid) return std::nullopt;
  return Child(*pid);
}

Child::Child(Child&& other) noexcept
    : pid_(other.pid_), status_(other.status_) {
  other.pid_ = -1;
  other.status_.reset();
}

Child& Child::operator=(Child&& other) noexcept {
  if (this != &other) {
    if (pid_ >= 0 && !status_) {
      kill();
      wait();
    }
    pid_ = other.pid_;
    status_ = other.status_;
    other.pid_ = -1;
    other.status_.reset();
  }
  return *this;
}

Child::~Child() {
  if (pid_ >= 0 && !status_) {
    kill();
    wait();
  }
}

std::optional<ExitStatus> Child::poll() {
  if (status_ || pid_ < 0) return status_;
  int wstatus = 0;
  const pid_t r = ::waitpid(pid_, &wstatus, WNOHANG);
  if (r == pid_) {
    status_ = decode(wstatus);
  } else if (r < 0 && errno != EINTR) {
    // Unreapable (e.g. ECHILD because SIGCHLD is SIG_IGN and the kernel
    // auto-reaped): report a distinct non-success status rather than
    // spinning forever -- or worse, guessing "exit 0".
    status_ = ExitStatus{};
  }
  return status_;
}

ExitStatus Child::wait() {
  if (status_ || pid_ < 0) return status_.value_or(ExitStatus{});
  int wstatus = 0;
  pid_t r = -1;
  while ((r = ::waitpid(pid_, &wstatus, 0)) < 0 && errno == EINTR) {
  }
  status_ = r == pid_ ? decode(wstatus) : ExitStatus{};  // see poll()
  return *status_;
}

bool Child::kill(int sig) {
  if (pid_ < 0 || status_) return false;
  return ::kill(static_cast<pid_t>(pid_), sig) == 0;
}

}  // namespace reap::common

#include "reap/common/frame.hpp"

#include "reap/common/crc32c.hpp"

namespace reap::common {
namespace {

constexpr std::size_t kPrefixLen = sizeof(kFramePrefix) - 1;  // "REAPF1 "
constexpr std::size_t kHexLen = 8;
// Prefix + checksum + the space separating checksum from payload.
constexpr std::size_t kHeaderLen = kPrefixLen + kHexLen + 1;

}  // namespace

std::string frame_line(std::string_view payload) {
  std::string out;
  out.reserve(kHeaderLen + payload.size() + 1);
  out += kFramePrefix;
  out += fmt_hex32(crc32c(payload));
  out += ' ';
  out += payload;
  out += '\n';
  return out;
}

void FrameParser::feed(std::string_view bytes) {
  buf_.append(bytes);
  std::size_t pos = 0;
  for (;;) {
    const auto nl = buf_.find('\n', pos);
    if (nl == std::string::npos) break;
    classify(buf_.substr(pos, nl - pos));
    pos = nl + 1;
  }
  buf_.erase(0, pos);
}

void FrameParser::classify(const std::string& line) {
  if (line.compare(0, kPrefixLen, kFramePrefix) != 0) {
    if (!line.empty()) noise_.push_back(line);
    return;
  }
  // A line claiming to be a frame must verify or it is damage -- a short
  // header, a bad hex field, and a checksum mismatch are all `corrupt`,
  // never noise and never a delivered payload.
  std::uint32_t stored = 0;
  if (line.size() < kHeaderLen || line[kHeaderLen - 1] != ' ' ||
      !parse_hex32(line.substr(kPrefixLen, kHexLen), stored)) {
    ++corrupt_;
    return;
  }
  const std::string_view payload =
      std::string_view(line).substr(kHeaderLen);
  if (crc32c(payload) != stored) {
    ++corrupt_;
    return;
  }
  ++ok_;
  payloads_.emplace_back(payload);
}

std::vector<std::string> FrameParser::take_payloads() {
  std::vector<std::string> out;
  out.swap(payloads_);
  return out;
}

std::vector<std::string> FrameParser::take_noise() {
  std::vector<std::string> out;
  out.swap(noise_);
  return out;
}

}  // namespace reap::common

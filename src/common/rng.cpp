#include "reap/common/rng.hpp"

#include <cmath>
#include <numbers>

namespace reap::common {

namespace {

// splitmix64: seeds the xoshiro state from one 64-bit value.
inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state is invalid for xoshiro; splitmix64 of any seed avoids it,
  // but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_cached_normal_ = false;
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  REAP_EXPECTS(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // never 0: hi-lo < 2^63
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::geometric(double p) {
  REAP_EXPECTS(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 0;
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::size_t Rng::weighted(const std::vector<double>& weights) {
  REAP_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    REAP_EXPECTS(w >= 0.0);
    total += w;
  }
  REAP_EXPECTS(total > 0.0);
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numerical tail
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : n_(n), s_(s) {
  REAP_EXPECTS(n >= 1);
  REAP_EXPECTS(s >= 0.0);
  c_ = (s_ == 1.0) ? 0.0 : 0.0;  // h handles both branches directly
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n_) + 0.5);
}

double ZipfSampler::h(double x) const {
  // Integral of x^-s: handles s == 1 (log) and s != 1 (power) branches.
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::h_inv(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  if (n_ == 1) return 0;
  // Rejection sampling from the continuous envelope (Hormann-style).
  for (;;) {
    const double u = h_x1_ + rng.uniform() * (h_n_ - h_x1_);
    const double x = h_inv(u);
    const double k = std::floor(x + 0.5);
    if (k < 1.0) continue;
    if (k > static_cast<double>(n_)) continue;
    // s == 1 (the common profile setting) skips the pow: C/IEEE defines
    // pow(x, 1.0) == x exactly, so this is the same value, cheaper.
    const double ratio = s_ == 1.0 ? k / x : std::pow(k / x, s_);
    // Accept with probability proportional to pmf(k) / envelope(x).
    if (rng.uniform() * 1.2 <= ratio) {
      return static_cast<std::size_t>(k) - 1;
    }
  }
}

}  // namespace reap::common

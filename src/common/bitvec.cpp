#include "reap/common/bitvec.hpp"

#include <algorithm>

namespace reap::common {

BitVec BitVec::from_bytes(std::span<const std::uint8_t> bytes) {
  BitVec v(bytes.size() * 8);
  for (std::size_t j = 0; j < bytes.size(); ++j) {
    v.words_[j / 8] |= std::uint64_t{bytes[j]} << ((j % 8) * 8);
  }
  return v;
}

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    REAP_EXPECTS(bits[i] == '0' || bits[i] == '1');
    if (bits[i] == '1') v.set(i);
  }
  return v;
}

void BitVec::clear() { std::fill(words_.begin(), words_.end(), 0); }

void BitVec::fill_ones() {
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  mask_tail();
}

std::size_t BitVec::count_ones() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  REAP_EXPECTS(nbits_ == other.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

std::vector<std::uint8_t> BitVec::to_bytes() const {
  std::vector<std::uint8_t> out((nbits_ + 7) / 8, 0);
  for (std::size_t j = 0; j < out.size(); ++j) {
    out[j] = static_cast<std::uint8_t>(words_[j / 8] >> ((j % 8) * 8));
  }
  return out;
}

std::string BitVec::to_string() const {
  std::string s(nbits_, '0');
  for (std::size_t i = 0; i < nbits_; ++i)
    if (test(i)) s[i] = '1';
  return s;
}

std::vector<std::size_t> BitVec::one_positions() const {
  std::vector<std::size_t> out;
  out.reserve(count_ones());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int b = std::countr_zero(w);
      out.push_back(wi * 64 + static_cast<std::size_t>(b));
      w &= w - 1;
    }
  }
  return out;
}

void BitVec::mask_tail() {
  const std::size_t rem = nbits_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

}  // namespace reap::common

#include "reap/common/logprob.hpp"

#include <cmath>
#include <limits>

#include "reap/common/assert.hpp"

namespace reap::common {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

double log_sum_exp(double la, double lb) {
  if (la == kNegInf) return lb;
  if (lb == kNegInf) return la;
  const double m = la > lb ? la : lb;
  return m + std::log1p(std::exp((la > lb ? lb : la) - m));
}

double log1m_exp(double lx) {
  REAP_EXPECTS(lx <= 0.0);
  if (lx == 0.0) return kNegInf;
  // Threshold from Maechler (2012): use log(-expm1(x)) above -ln2, else
  // log1p(-exp(x)).
  if (lx > -0.6931471805599453) return std::log(-std::expm1(lx));
  return std::log1p(-std::exp(lx));
}

double log_binomial_coeff(std::uint64_t n, std::uint64_t k) {
  if (k > n) return kNegInf;
  if (k == 0 || k == n) return 0.0;
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  return std::lgamma(dn + 1.0) - std::lgamma(dk + 1.0) -
         std::lgamma(dn - dk + 1.0);
}

double log_binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  REAP_EXPECTS(p >= 0.0 && p <= 1.0);
  if (k > n) return kNegInf;
  if (p == 0.0) return k == 0 ? 0.0 : kNegInf;
  if (p == 1.0) return k == n ? 0.0 : kNegInf;
  const double dk = static_cast<double>(k);
  const double dnk = static_cast<double>(n - k);
  return log_binomial_coeff(n, k) + dk * std::log(p) + dnk * std::log1p(-p);
}

double log_binomial_cdf_upto(std::uint64_t n, std::uint64_t t, double p) {
  if (p == 0.0) return 0.0;  // P(X <= t) = 1 whenever t >= 0
  if (t >= n) return 0.0;    // X <= n <= t surely; avoids rounding residue
  double acc = kNegInf;
  const std::uint64_t top = t < n ? t : n;
  for (std::uint64_t k = 0; k <= top; ++k) {
    acc = log_sum_exp(acc, log_binomial_pmf(n, k, p));
  }
  // Clamp tiny positive drift from lgamma rounding.
  return acc > 0.0 ? 0.0 : acc;
}

double binomial_tail_above(std::uint64_t n, std::uint64_t t, double p) {
  if (t >= n) return 0.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;  // X == n > t surely
  const double lcdf = log_binomial_cdf_upto(n, t, p);
  return -std::expm1(lcdf);
}

}  // namespace reap::common

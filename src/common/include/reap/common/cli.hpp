// Tiny --key=value command-line parser shared by benches and examples.
//
// Usage:
//   CliArgs args(argc, argv);
//   auto n = args.get_u64("instructions", 5'000'000);
//   auto wl = args.get_string("workload", "perlbench");
//   if (args.has("help")) { ... }
// Unknown keys are collected so binaries can warn about typos.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace reap::common {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  // Keys given on the command line that were never queried via get_*/has.
  std::vector<std::string> unconsumed() const;

  // Positional (non --key) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> kv_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

// Parses a shard assignment "I/N" (e.g. "--shard=2/8"). Returns false on
// garbage, N == 0, or I >= N. Shared by reap_campaign (which runs one
// shard) and reap_dispatch (which assigns all of them).
bool parse_shard(const std::string& text, std::size_t& index,
                 std::size_t& count);

// Warns (to stderr) about every flag that was given but never queried --
// the typo guard every CLI main ends with.
void warn_unused(const CliArgs& args);

}  // namespace reap::common

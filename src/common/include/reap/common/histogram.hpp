// Histograms for concealed-read distributions (Fig. 3 reproduction).
//
// LogHistogram bins counts on a logarithmic x-axis (value 0 gets its own
// bin) because concealed-read counts span 0 .. 1e5+. Each bin carries both
// an event count and an accumulated weight so the same structure yields the
// paper's "normalized frequency" series (counts) and "failure rate" series
// (summed failure probability) per bin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace reap::common {

struct HistogramBin {
  std::uint64_t lo = 0;      // inclusive value range of the bin
  std::uint64_t hi = 0;      // inclusive
  std::uint64_t count = 0;   // number of samples
  double weight = 0.0;       // accumulated user weight (e.g. failure prob)
};

class LogHistogram {
 public:
  // bins_per_decade controls x resolution; max_value the last tracked value
  // (larger samples clamp into the final bin and are counted in
  // `overflow()`).
  explicit LogHistogram(unsigned bins_per_decade = 8,
                        std::uint64_t max_value = 10'000'000);

  void add(std::uint64_t value, double weight = 0.0);

  // Bins with nonzero count, in increasing value order.
  std::vector<HistogramBin> nonempty_bins() const;

  std::uint64_t total_count() const { return total_count_; }
  double total_weight() const { return total_weight_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t max_sample() const { return max_sample_; }

  // Renders "value-range  count  weight" rows; `normalize_to` scales counts
  // (the paper normalizes frequencies to the zero-concealed-read count).
  std::string render(const std::string& count_label,
                     const std::string& weight_label,
                     double normalize_to = 0.0) const;

 private:
  std::size_t bin_index(std::uint64_t value) const;

  unsigned bins_per_decade_;
  std::uint64_t max_value_;
  std::vector<HistogramBin> bins_;
  std::uint64_t total_count_ = 0;
  double total_weight_ = 0.0;
  std::uint64_t overflow_ = 0;
  std::uint64_t max_sample_ = 0;
};

// Simple fixed-width linear histogram (tests + diagnostics).
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t nbins);

  void add(double value);

  std::size_t nbins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace reap::common

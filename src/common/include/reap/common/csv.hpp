// Minimal CSV writer so bench output can be re-plotted externally, plus the
// matching line parser so campaign tools can read their own output back.
#pragma once

#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace reap::common {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. `ok()` reports
  // whether the stream is usable; writes on a failed stream are no-ops.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  bool ok() const { return static_cast<bool>(out_); }

  void add_row(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
  std::size_t ncols_;
};

// Canonical cell quoting: bare unless the cell contains , " or a newline,
// in which case RFC-4180 double-quoting. Because quoting is a pure function
// of the cell bytes, parse_csv_line followed by re-escaping reproduces a
// CsvWriter line byte-for-byte -- the property shard merging relies on.
std::string csv_escape(const std::string& cell);

// Parses one line previously produced by CsvWriter (cells contain no
// embedded newlines). Returns nullopt on malformed quoting (unterminated
// quote, text after a closing quote).
std::optional<std::vector<std::string>> parse_csv_line(
    const std::string& line);

}  // namespace reap::common

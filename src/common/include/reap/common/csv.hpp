// Minimal CSV writer so bench output can be re-plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace reap::common {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. `ok()` reports
  // whether the stream is usable; writes on a failed stream are no-ops.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  bool ok() const { return static_cast<bool>(out_); }

  void add_row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t ncols_;
};

}  // namespace reap::common

// Small statistics helpers shared by benches and the evaluator.
#pragma once

#include <cstdint>
#include <vector>

namespace reap::common {

// Streaming mean/variance (Welford) with min/max tracking.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Arithmetic mean of a vector (0 for empty input).
double arithmetic_mean(const std::vector<double>& xs);

// Geometric mean; all inputs must be > 0.
double geometric_mean(const std::vector<double>& xs);

// p-th percentile (0..100) by linear interpolation on a sorted copy.
double percentile(std::vector<double> xs, double p);

}  // namespace reap::common

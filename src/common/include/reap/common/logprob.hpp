// Numerically-stable probability arithmetic for rare events.
//
// The paper's failure probabilities live around 1e-13 .. 1e-9 per access and
// are summed over millions of accesses; naive (1-p)^n arithmetic underflows
// or loses all precision. Everything here works with log1p/expm1 identities:
//
//   log((1-p)^n)                 = n * log1p(-p)
//   P(at most one failure in n)  via log-sum-exp of the two binomial terms
//   1 - exp(x)                   = -expm1(x)
//
// These primitives implement the paper's Eqs. (2), (3) and (6) in
// reliability/binomial.hpp; here are only the generic building blocks.
#pragma once

#include <cstdint>

namespace reap::common {

// log(a + b) given la = log(a), lb = log(b); handles -inf operands.
double log_sum_exp(double la, double lb);

// log(1 - exp(lx)) for lx <= 0; stable for lx near 0 and for very negative lx.
double log1m_exp(double lx);

// log C(n, k) via lgamma.
double log_binomial_coeff(std::uint64_t n, std::uint64_t k);

// log of the binomial pmf: C(n,k) p^k (1-p)^(n-k), p in [0,1].
double log_binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

// log P(X <= t) for X ~ Binomial(n, p), summing t+1 pmf terms in log space.
// Intended for small t (ECC correction capability, typically <= 3).
double log_binomial_cdf_upto(std::uint64_t n, std::uint64_t t, double p);

// P(X > t) = 1 - P(X <= t), computed as -expm1(log_cdf); full double range.
double binomial_tail_above(std::uint64_t n, std::uint64_t t, double p);

}  // namespace reap::common

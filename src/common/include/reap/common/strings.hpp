// Strict numeric parsing and deterministic number formatting, shared by
// the config kv round-trip, campaign spec parsing, and result sinks.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace reap::common {

// Parse an entire string as an unsigned integer / double; reject empty
// input and trailing garbage ("1e6" is NOT a valid u64, "two" is nothing).
inline bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end && *end == '\0';
}

inline bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end && *end == '\0';
}

// Shortest decimal form that parses back to the same double ("%.17g" is
// exact but writes 2.0 as 2.0000000000000000e+00; try increasing precision
// until the round trip holds). The campaign byte-determinism guarantee
// rests on this being a pure function of the value.
inline std::string fmt_double(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace reap::common

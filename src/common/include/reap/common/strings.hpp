// Strict numeric parsing and deterministic number formatting, shared by
// the config kv round-trip, campaign spec parsing, and result sinks.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace reap::common {

// Parse an entire string as an unsigned integer / double; reject empty
// input and trailing garbage ("1e6" is NOT a valid u64, "two" is nothing).
// The first character must be a digit: strtoull alone would skip leading
// whitespace and silently wrap a leading '-' ("-1" -> 2^64-1).
inline bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s[0] < '0' || s[0] > '9') return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end && *end == '\0';
}

inline bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end && *end == '\0';
}

// Shortest decimal form that parses back to the same double ("%.17g" is
// exact but writes 2.0 as 2.0000000000000000e+00; try increasing precision
// until the round trip holds). The campaign byte-determinism guarantee
// rests on this being a pure function of the value.
inline std::string fmt_double(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// FNV-1a 64-bit hash. Used where a stable, platform-independent content
// fingerprint must survive across processes and releases (e.g. the campaign
// journal's spec hash) -- std::hash carries no such guarantee.
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Fixed-width lowercase hex, zero-padded to 16 digits; parse_hex64 accepts
// exactly that form (optionally 0x-prefixed).
inline std::string fmt_hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

inline bool parse_hex64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 16);
  return end && *end == '\0';
}

}  // namespace reap::common

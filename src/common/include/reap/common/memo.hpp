// Direct-mapped memo for pure uint64-keyed functions on simulator hot
// paths (binomial tails, per-block ones counts).
//
// Deliberately bounded and collision-evicting: a probe must stay
// cache-resident — an unbounded table measured slower than recomputing on
// huge-footprint workloads once probes outgrew the last-level cache. A
// collision simply recomputes, so memoizing a pure function through this
// cannot change any returned value. Not thread-safe; keep one memo per
// owning model instance.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace reap::common {

template <class Value, std::size_t Slots>
class DirectMappedMemo {
  static_assert(std::has_single_bit(Slots), "slot count must be 2^n");

 public:
  // nullptr on miss. Lazily allocates on first use (via insert), so
  // never-queried memos cost nothing.
  const Value* find(std::uint64_t key) const {
    if (keys_.empty()) return nullptr;
    const std::size_t slot = slot_of(key);
    if (keys_[slot] != key + 1) return nullptr;  // 0 marks an empty slot
    return &values_[slot];
  }

  // Software-prefetch the slot `key` maps to (both columns), for callers
  // that know a probe is coming a few operations ahead. A pure latency
  // hint: no allocation, no contents change.
  void prefetch(std::uint64_t key) const {
#if defined(__GNUC__)
    if (keys_.empty()) return;
    const std::size_t slot = slot_of(key);
    __builtin_prefetch(&keys_[slot], /*rw=*/0, /*locality=*/3);
    __builtin_prefetch(&values_[slot], /*rw=*/0, /*locality=*/3);
#else
    (void)key;
#endif
  }

  void insert(std::uint64_t key, const Value& value) {
    if (keys_.empty()) {
      keys_.assign(Slots, 0);
      values_.resize(Slots);
    }
    const std::size_t slot = slot_of(key);
    keys_[slot] = key + 1;
    values_[slot] = value;
  }

 private:
  static std::size_t slot_of(std::uint64_t key) {
    // splitmix64-finalizer mix folds low-entropy keys into distinct slots.
    std::uint64_t h = key;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    return static_cast<std::size_t>(h) & (Slots - 1);
  }

  std::vector<std::uint64_t> keys_;  // key + 1 per slot; 0 = empty
  std::vector<Value> values_;
};

}  // namespace reap::common

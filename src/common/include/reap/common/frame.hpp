// CRC32C line framing for journal streams crossing a lossy transport.
//
// A remote reap_campaign worker journals to its own disk and mirrors
// every journal line over stdout to the dispatcher (--journal-stdout).
// The pipe runs through ssh, so the dispatcher must tell an intact row
// from a connection that died mid-line, a corrupted chunk, and ordinary
// worker chatter sharing the stream. Each mirrored line is therefore
// wrapped in a one-line frame:
//
//   REAPF1 <hex8> <payload>\n
//
// where <hex8> is the lowercase 8-digit hex CRC32C of the payload (the
// journal line without its newline). The receiver accepts a payload only
// when the checksum verifies; a malformed or corrupted frame is counted
// and dropped (never delivered as wrong bytes), a line without the
// REAPF1 prefix passes through as noise (worker stdout chatter, routed
// to the worker log), and an unterminated tail stays buffered -- the
// signature of a connection cut mid-frame, so "rows up to the last
// intact frame" is exactly what the receiver keeps.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace reap::common {

inline constexpr char kFramePrefix[] = "REAPF1 ";

// Wraps one payload line (must not contain '\n') in a frame, newline
// included -- ready to write to the stream.
std::string frame_line(std::string_view payload);

// Incremental receiver: feed() bytes as they arrive, in any chunking;
// complete lines are classified and queued until taken.
class FrameParser {
 public:
  void feed(std::string_view bytes);

  // Intact frame payloads decoded since the last take, in stream order.
  std::vector<std::string> take_payloads();

  // Complete non-frame lines (stream noise), verbatim, in order.
  std::vector<std::string> take_noise();

  std::size_t frames_ok() const { return ok_; }
  // Frames whose checksum failed or whose header was malformed.
  std::size_t frames_corrupt() const { return corrupt_; }
  // Bytes of the unterminated trailing line still buffered.
  std::size_t buffered() const { return buf_.size(); }

 private:
  void classify(const std::string& line);

  std::string buf_;
  std::vector<std::string> payloads_;
  std::vector<std::string> noise_;
  std::size_t ok_ = 0;
  std::size_t corrupt_ = 0;
};

}  // namespace reap::common

// Deterministic, seedable random number generation for simulation.
//
// xoshiro256** core (public-domain algorithm by Blackman & Vigna) plus the
// distributions the trace generators and Monte Carlo engine need. All
// simulator randomness flows through Rng so experiments are reproducible
// from a single seed.
#pragma once

#include <cstdint>
#include <vector>

#include "reap/common/assert.hpp"

namespace reap::common {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // The per-draw primitives are defined inline: they sit on the trace
  // generator's per-operation path, where an out-of-line call per draw is
  // measurable.
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  // Uniform in [0, 1): 53 high bits -> double.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  // Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) {
    REAP_EXPECTS(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  // Bernoulli trial with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  // Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Geometric: number of failures before first success, p in (0, 1].
  std::uint64_t geometric(double p);

  // Samples an index from unnormalized weights.
  std::size_t weighted(const std::vector<double>& weights);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

// Zipf-distributed ranks in [0, n): P(k) ~ 1/(k+1)^s. Uses the rejection
// sampler of Jason Crease / Hormann which is O(1) per draw, suitable for the
// hot-set trace primitives where n can be large.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t operator()(Rng& rng) const;

  std::size_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double h(double x) const;
  double h_inv(double x) const;

  std::size_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double c_;  // normalizing shift
};

}  // namespace reap::common

// Deterministic, seedable random number generation for simulation.
//
// xoshiro256** core (public-domain algorithm by Blackman & Vigna) plus the
// distributions the trace generators and Monte Carlo engine need. All
// simulator randomness flows through Rng so experiments are reproducible
// from a single seed.
#pragma once

#include <cstdint>
#include <vector>

#include "reap/common/assert.hpp"

namespace reap::common {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  std::uint64_t next();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  // Uniform in [0, 1).
  double uniform();

  // Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  // Bernoulli trial with success probability p.
  bool chance(double p);

  // Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Geometric: number of failures before first success, p in (0, 1].
  std::uint64_t geometric(double p);

  // Samples an index from unnormalized weights.
  std::size_t weighted(const std::vector<double>& weights);

 private:
  std::uint64_t s_[4] = {};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

// Zipf-distributed ranks in [0, n): P(k) ~ 1/(k+1)^s. Uses the rejection
// sampler of Jason Crease / Hormann which is O(1) per draw, suitable for the
// hot-set trace primitives where n can be large.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t operator()(Rng& rng) const;

  std::size_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double h(double x) const;
  double h_inv(double x) const;

  std::size_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double c_;  // normalizing shift
};

}  // namespace reap::common

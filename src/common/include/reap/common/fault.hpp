// Deterministic fault injection for the campaign fleet.
//
// Robustness claims are only as good as the failures they were tested
// against, so the failure handling in reap_campaign / reap_dispatch is
// driven by *injected* faults, not by hoping the right crash happens in
// CI. Code that can fail declares a named fault site (`journal.write`,
// `runner.point`, ...) and calls fault::hit(site, context) at the moment
// the failure would occur. Sites are compiled in always and cost one
// relaxed atomic load when nothing is armed; arming happens only via the
// REAP_FAULT environment variable or an explicit --inject-fault flag, so
// production runs can never trip a fault by accident.
//
// Arming grammar (comma-separated list of faults):
//
//   site:kind[:N|:*][:PARAM][:key=SUBSTR]
//
//   site   one of known_sites() (unknown sites are a hard error)
//   kind   crash | hang | eio | enospc | torn-write | slow
//          | drop | stall | garble
//   N      fire on the Nth matching execution of the site (default 1,
//          one-shot); '*' fires on every matching execution
//   PARAM  kind parameter: milliseconds for `slow`, bytes written before
//          the crash for `torn-write` (0 = half the payload)
//   key=S  only executions whose context string contains S match (e.g. a
//          campaign row key: fault exactly one grid point)
//
// Examples:
//   REAP_FAULT='journal.write:enospc:3'           3rd row append ENOSPCs
//   REAP_FAULT='runner.point:hang:2'              2nd experiment hangs
//   REAP_FAULT='runner.point:crash:*:key=mcf/reap/t1/sc-/rr-/s0'
//                                                 one poisoned grid point
//
// Process-level kinds (crash, hang, slow) act inside hit(): crash _exits
// with kCrashExit, hang sleeps forever (only SIGKILL ends it, exactly
// like a real hang), slow sleeps PARAM ms and then lets the call proceed.
// I/O kinds (eio, enospc, torn-write) and transport kinds (drop, stall,
// garble -- a connection lost, a stream frozen open, bytes corrupted in
// flight) are returned to the call site, which alone knows how to
// realize them.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace reap::common::fault {

enum class Kind { crash, hang, eio, enospc, torn_write, slow, drop, stall,
                  garble };

const char* to_string(Kind kind);

// Exit code of an injected `crash` (and of `torn-write`, which crashes
// right after the partial payload lands). Distinct from every deliberate
// exit code in exit_codes.hpp so logs attribute the death correctly.
inline constexpr int kCrashExit = 70;

// Environment variable the CLI mains arm from (same grammar as arm()).
inline constexpr char kEnvVar[] = "REAP_FAULT";

// What an armed fault asks the call site to do.
struct Hit {
  Kind kind = Kind::eio;
  std::uint64_t param = 0;  // slow: ms; torn-write: bytes to keep (0 = half)
};

// Arms every fault in `spec` (additive across calls). Returns false and
// sets `error` on bad grammar, an unknown site, or an unknown kind.
bool arm(const std::string& spec, std::string* error = nullptr);

// Arms from REAP_FAULT when set; no-op (true) when unset.
bool arm_from_env(std::string* error = nullptr);

// Disarms everything and resets all hit counters (test teardown).
void disarm();

namespace detail {
extern std::atomic<unsigned> g_armed;
std::optional<Hit> hit_slow(const char* site, std::string_view context);
}  // namespace detail

// True when at least one fault is armed. The whole cost of an unarmed
// fault site is this one relaxed load.
inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed) != 0;
}

// Declares one execution of a fault site. When an armed fault matches
// (site, context-substring, occurrence count), process-level kinds act
// immediately (see header comment) and I/O kinds are returned for the
// call site to realize; otherwise returns nullopt.
inline std::optional<Hit> hit(const char* site,
                              std::string_view context = {}) {
  if (!armed()) return std::nullopt;
  return detail::hit_slow(site, context);
}

// Every fault site compiled into the tree. arm() validates against this
// list, and docs/robustness.md is pinned to document exactly this set.
const std::vector<std::string>& known_sites();

}  // namespace reap::common::fault

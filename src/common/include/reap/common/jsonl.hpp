// Single-line flat JSON objects: the interchange format of the campaign
// JSONL sink and the execution journal.
//
// The emitter writes one object per line whose values are either raw
// (unquoted) number tokens or escaped strings -- never nested containers.
// The parser accepts exactly that subset and hands every value back as the
// original cell text: an unquoted token verbatim, a quoted string
// unescaped. That makes emit(parse(line)) a byte-identical round trip,
// which journal replay and shard merging depend on.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace reap::common {

// Key/value pairs in document order; values are the raw cell text.
using JsonlFields = std::vector<std::pair<std::string, std::string>>;

// Escapes for embedding in a double-quoted JSON string.
std::string json_escape(const std::string& s);

// Parses one `{"k":v,...}` line of the subset described above. Returns
// nullopt on anything malformed (truncated line, nested containers,
// missing colon...). Duplicate keys are preserved in order.
std::optional<JsonlFields> parse_jsonl_line(const std::string& line);

}  // namespace reap::common

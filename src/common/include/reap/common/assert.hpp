// Contract macros in the Core Guidelines I.6/I.8 style.
//
// REAP_EXPECTS(cond)  -- precondition check
// REAP_ENSURES(cond)  -- postcondition check
// REAP_ASSERT(cond)   -- internal invariant
//
// All three abort with a source location on violation. They are active in
// all build types: the simulator is a research tool where a silently wrong
// answer is worse than a crash, and the checks are off the per-access hot
// path (hot-path loops use plain assert-free code validated by tests).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace reap::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "reap: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace reap::detail

#define REAP_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                           \
          : ::reap::detail::contract_violation("precondition", #cond,      \
                                               __FILE__, __LINE__))
#define REAP_ENSURES(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                           \
          : ::reap::detail::contract_violation("postcondition", #cond,     \
                                               __FILE__, __LINE__))
#define REAP_ASSERT(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::reap::detail::contract_violation("invariant", #cond,         \
                                               __FILE__, __LINE__))

// Strong unit types for the circuit-model interfaces (nvsim, ecc cost).
//
// Plain doubles with named wrappers: enough type-safety to stop joules and
// seconds being swapped at an interface (Core Guidelines I.4) without
// dragging in a units library. Arithmetic is intentionally minimal -- scale
// by dimensionless factors and add same-typed quantities.
#pragma once

#include <compare>

namespace reap::common {

template <class Tag>
struct Quantity {
  double value = 0.0;

  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value(v) {}

  constexpr auto operator<=>(const Quantity&) const = default;

  constexpr Quantity operator+(Quantity o) const { return Quantity{value + o.value}; }
  constexpr Quantity operator-(Quantity o) const { return Quantity{value - o.value}; }
  constexpr Quantity operator*(double k) const { return Quantity{value * k}; }
  constexpr Quantity operator/(double k) const { return Quantity{value / k}; }
  constexpr double operator/(Quantity o) const { return value / o.value; }
  constexpr Quantity& operator+=(Quantity o) { value += o.value; return *this; }
  constexpr Quantity& operator-=(Quantity o) { value -= o.value; return *this; }
  constexpr Quantity& operator*=(double k) { value *= k; return *this; }
};

template <class Tag>
constexpr Quantity<Tag> operator*(double k, Quantity<Tag> q) {
  return q * k;
}

struct EnergyTag {};
struct TimeTag {};
struct AreaTag {};
struct PowerTag {};
struct CurrentTag {};

using Joules = Quantity<EnergyTag>;      // energy
using Seconds = Quantity<TimeTag>;       // time
using SquareMm = Quantity<AreaTag>;      // silicon area
using Watts = Quantity<PowerTag>;        // power
using Amperes = Quantity<CurrentTag>;    // current

// Readable constructors for the magnitudes this domain uses.
constexpr Joules picojoules(double v) { return Joules{v * 1e-12}; }
constexpr Joules nanojoules(double v) { return Joules{v * 1e-9}; }
constexpr Seconds nanoseconds(double v) { return Seconds{v * 1e-9}; }
constexpr Seconds picoseconds(double v) { return Seconds{v * 1e-12}; }
constexpr Watts milliwatts(double v) { return Watts{v * 1e-3}; }
constexpr Amperes microamps(double v) { return Amperes{v * 1e-6}; }

constexpr double in_picojoules(Joules e) { return e.value * 1e12; }
constexpr double in_nanoseconds(Seconds t) { return t.value * 1e9; }
constexpr double in_milliwatts(Watts p) { return p.value * 1e3; }
constexpr double in_microamps(Amperes i) { return i.value * 1e6; }

// Energy over time gives power; time times power gives energy.
constexpr Watts operator/(Joules e, Seconds t) { return Watts{e.value / t.value}; }
constexpr Joules operator*(Watts p, Seconds t) { return Joules{p.value * t.value}; }

}  // namespace reap::common

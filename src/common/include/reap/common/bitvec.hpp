// Dynamic bit vector sized at construction, backed by 64-bit words.
//
// Used as the payload container for cache lines and as the codeword type for
// the ECC codecs. The popcount (`count_ones`) is the `n` of the paper's
// Eqs. (2)/(3)/(6): read disturbance is unidirectional and only cells holding
// logic '1' can flip.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "reap/common/assert.hpp"

namespace reap::common {

class BitVec {
 public:
  BitVec() = default;

  // Constructs an all-zero vector of `nbits` bits.
  explicit BitVec(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  // Constructs from raw bytes, bit i of byte j becomes bit j*8+i.
  static BitVec from_bytes(std::span<const std::uint8_t> bytes);

  // Constructs from a string of '0'/'1' characters, index 0 first.
  static BitVec from_string(const std::string& bits);

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool test(std::size_t i) const {
    REAP_EXPECTS(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i, bool v = true) {
    REAP_EXPECTS(i < nbits_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void reset(std::size_t i) { set(i, false); }

  void flip(std::size_t i) {
    REAP_EXPECTS(i < nbits_);
    words_[i >> 6] ^= std::uint64_t{1} << (i & 63);
  }

  void clear();         // all bits to 0
  void fill_ones();     // all bits to 1

  // Number of '1' bits -- the binomial trial count per read in Eq. (2).
  std::size_t count_ones() const;

  // XOR-accumulate `other` into *this (sizes must match). The Hamming
  // distance of two codewords is (a ^ b).count_ones().
  BitVec& operator^=(const BitVec& other);
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }

  bool operator==(const BitVec& other) const = default;

  // Word-level access for fast popcount-style consumers.
  std::span<const std::uint64_t> words() const { return words_; }

  // Serializes to bytes (little-endian bit order within bytes).
  std::vector<std::uint8_t> to_bytes() const;

  std::string to_string() const;

  // Indices of set bits in increasing order.
  std::vector<std::size_t> one_positions() const;

 private:
  void mask_tail();  // clears bits past nbits_ in the last word

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace reap::common

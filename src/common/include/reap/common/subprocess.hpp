// Minimal POSIX child-process helper for tools that supervise workers
// (reap_dispatch). Spawns an argv directly -- no shell, no quoting -- with
// stdout/stderr optionally appended to a log file, and exposes the three
// operations a supervisor needs: non-blocking poll, blocking wait, and
// kill. A Child still running when destroyed is killed and reaped so a
// supervisor that errors out cannot leak workers or zombies.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace reap::common {

// How a child ended. Exactly one of (exited, signal != 0) holds for a
// process that ran; spawn failures surface as spawn() returning nullopt.
struct ExitStatus {
  bool exited = false;  // terminated via exit(); `code` is its exit code
  int code = -1;        // exit code when `exited`, else -1
  int signal = 0;       // terminating signal when killed, else 0

  bool success() const { return exited && code == 0; }

  // "exit 3" / "signal 9" -- for log and error messages.
  std::string describe() const;
};

class Child {
 public:
  // Starts argv[0] with the given arguments (PATH-resolved when argv[0]
  // has no slash). When `log_path` is non-empty, the child's stdout and
  // stderr are appended to that file (created if needed); otherwise both
  // are inherited. Returns nullopt and sets `error` when the process
  // cannot be started (fork failure, unwritable log, missing binary).
  // When `transient` is non-null it reports whether the failure is worth
  // retrying: resource exhaustion (fork/pipe EAGAIN, injected
  // worker.spawn faults) is transient; a missing or non-executable
  // binary and an unwritable log are permanent -- retrying cannot help.
  static std::optional<Child> spawn(const std::vector<std::string>& argv,
                                    const std::string& log_path = "",
                                    std::string* error = nullptr,
                                    bool* transient = nullptr);

  // Like spawn(), but the child's stdout is connected to a pipe whose
  // non-blocking read end is returned in `*stdout_fd` (caller closes it);
  // only stderr goes to `log_path`. This is how a supervisor streams
  // framed journal rows from a remote worker while its chatter still
  // lands in the log. On failure `*stdout_fd` is -1.
  static std::optional<Child> spawn_piped(
      const std::vector<std::string>& argv, int* stdout_fd,
      const std::string& log_path = "", std::string* error = nullptr,
      bool* transient = nullptr);

  Child(Child&& other) noexcept;
  Child& operator=(Child&& other) noexcept;
  Child(const Child&) = delete;
  Child& operator=(const Child&) = delete;

  // Kills (SIGKILL) and reaps the child if it is still running.
  ~Child();

  long pid() const { return pid_; }

  // Non-blocking: the exit status if the child has ended, else nullopt.
  // Idempotent after exit (the status is cached once reaped).
  std::optional<ExitStatus> poll();

  // Blocks until the child ends and returns its status.
  ExitStatus wait();

  // Sends `sig` (default SIGKILL). Returns false when the child already
  // ended (it still must be poll()ed/wait()ed for its status).
  bool kill(int sig = 9);

 private:
  explicit Child(long pid) : pid_(pid) {}

  long pid_ = -1;  // -1 once moved-from or reaped-and-cached
  std::optional<ExitStatus> status_;
};

}  // namespace reap::common

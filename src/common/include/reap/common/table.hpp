// ASCII table rendering for bench output.
//
// The bench binaries print the same rows/series the paper's tables and
// figures report; TextTable keeps that output aligned and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace reap::common {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with %.4g.
  static std::string num(double v);
  // Fixed-point with `digits` decimals.
  static std::string fixed(double v, int digits);
  // Scientific with 2 significant decimals (e.g. 1.30e-09).
  static std::string sci(double v);

  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace reap::common

// CRC32C (Castagnoli) checksums for on-disk row integrity.
//
// The execution journal suffixes every row with a CRC so a reader can
// tell a row that was written and later damaged (bit rot, a partial
// overwrite, a buggy editor) from one that is merely torn at the tail.
// Software table-driven implementation: journal rows are a few hundred
// bytes written once per completed experiment, so throughput is
// irrelevant next to stability of the function -- the checksum is part of
// the on-disk format and must never change value.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace reap::common {

// CRC32C of `data` (reflected polynomial 0x82F63B78, init/xorout
// 0xFFFFFFFF): the widely deployed Castagnoli variant (iSCSI, ext4).
std::uint32_t crc32c(std::string_view data);

// Fixed-width lowercase hex, zero-padded to 8 digits; parse_hex32 accepts
// exactly that form.
std::string fmt_hex32(std::uint32_t v);
bool parse_hex32(const std::string& s, std::uint32_t& out);

}  // namespace reap::common

#include "reap/common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "reap/common/assert.hpp"

namespace reap::common {

LogHistogram::LogHistogram(unsigned bins_per_decade, std::uint64_t max_value)
    : bins_per_decade_(bins_per_decade), max_value_(max_value) {
  REAP_EXPECTS(bins_per_decade >= 1);
  REAP_EXPECTS(max_value >= 1);
  // Bin 0 holds value 0. Bin i>=1 holds the log-spaced range.
  const double decades = std::log10(static_cast<double>(max_value_));
  const std::size_t nlog =
      static_cast<std::size_t>(std::ceil(decades * bins_per_decade_)) + 1;
  bins_.resize(nlog + 1);
  bins_[0] = {0, 0, 0, 0.0};
  std::uint64_t prev_hi = 0;
  for (std::size_t i = 1; i < bins_.size(); ++i) {
    const double exp_hi =
        static_cast<double>(i) / static_cast<double>(bins_per_decade_);
    std::uint64_t hi =
        static_cast<std::uint64_t>(std::floor(std::pow(10.0, exp_hi)));
    hi = std::max<std::uint64_t>(hi, prev_hi + 1);
    bins_[i] = {prev_hi + 1, hi, 0, 0.0};
    prev_hi = hi;
  }
  bins_.back().hi = std::max(bins_.back().hi, max_value_);
}

std::size_t LogHistogram::bin_index(std::uint64_t value) const {
  if (value == 0) return 0;
  // Binary search over bin upper bounds (bins are few; this is cold path).
  std::size_t lo = 1, hi = bins_.size() - 1;
  if (value >= bins_.back().lo) return bins_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (value > bins_[mid].hi)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

void LogHistogram::add(std::uint64_t value, double weight) {
  max_sample_ = std::max(max_sample_, value);
  if (value > max_value_) {
    ++overflow_;
    value = max_value_;
  }
  auto& b = bins_[bin_index(value)];
  ++b.count;
  b.weight += weight;
  ++total_count_;
  total_weight_ += weight;
}

std::vector<HistogramBin> LogHistogram::nonempty_bins() const {
  std::vector<HistogramBin> out;
  for (const auto& b : bins_)
    if (b.count != 0) out.push_back(b);
  return out;
}

std::string LogHistogram::render(const std::string& count_label,
                                 const std::string& weight_label,
                                 double normalize_to) const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%16s %16s %16s\n", "concealed-reads",
                count_label.c_str(), weight_label.c_str());
  out += buf;
  for (const auto& b : nonempty_bins()) {
    const double c = normalize_to > 0.0
                         ? static_cast<double>(b.count) / normalize_to
                         : static_cast<double>(b.count);
    if (b.lo == b.hi) {
      std::snprintf(buf, sizeof buf, "%16llu %16.6g %16.6g\n",
                    static_cast<unsigned long long>(b.lo), c, b.weight);
    } else {
      char range[40];
      std::snprintf(range, sizeof range, "%llu-%llu",
                    static_cast<unsigned long long>(b.lo),
                    static_cast<unsigned long long>(b.hi));
      std::snprintf(buf, sizeof buf, "%16s %16.6g %16.6g\n", range, c,
                    b.weight);
    }
    out += buf;
  }
  return out;
}

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t nbins)
    : lo_(lo), hi_(hi), counts_(nbins, 0) {
  REAP_EXPECTS(nbins >= 1);
  REAP_EXPECTS(hi > lo);
}

void LinearHistogram::add(double value) {
  double t = (value - lo_) / (hi_ - lo_);
  t = std::clamp(t, 0.0, 1.0);
  std::size_t bin = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
  if (bin == counts_.size()) --bin;
  ++counts_[bin];
  ++total_;
}

double LinearHistogram::bin_lo(std::size_t bin) const {
  REAP_EXPECTS(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double LinearHistogram::bin_hi(std::size_t bin) const {
  REAP_EXPECTS(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(counts_.size());
}

}  // namespace reap::common

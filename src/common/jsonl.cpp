#include "reap/common/jsonl.hpp"

namespace reap::common {
namespace {

// Parses a double-quoted string starting at line[i] == '"'; advances i past
// the closing quote. Recognizes the escapes the emitter produces plus \/
// and \r for tolerance; \uXXXX is not needed (we never emit it).
bool parse_string(const std::string& line, std::size_t& i, std::string& out) {
  ++i;  // opening quote
  out.clear();
  while (i < line.size()) {
    const char c = line[i];
    if (c == '"') {
      ++i;
      return true;
    }
    if (c == '\\') {
      if (i + 1 >= line.size()) return false;
      const char e = line[i + 1];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: return false;
      }
      i += 2;
    } else {
      out += c;
      ++i;
    }
  }
  return false;  // unterminated
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::optional<JsonlFields> parse_jsonl_line(const std::string& line) {
  JsonlFields fields;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') return std::nullopt;
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
    skip_ws();
    return i == line.size() ? std::optional<JsonlFields>(fields)
                            : std::nullopt;
  }
  while (true) {
    skip_ws();
    if (i >= line.size() || line[i] != '"') return std::nullopt;
    std::string key;
    if (!parse_string(line, i, key)) return std::nullopt;
    skip_ws();
    if (i >= line.size() || line[i] != ':') return std::nullopt;
    ++i;
    skip_ws();
    if (i >= line.size()) return std::nullopt;
    std::string value;
    if (line[i] == '"') {
      if (!parse_string(line, i, value)) return std::nullopt;
    } else {
      // Raw token: everything up to the next comma or closing brace. The
      // emitter only writes number tokens here, but the parser does not
      // care -- the bytes ARE the cell.
      const auto end = line.find_first_of(",}", i);
      if (end == std::string::npos || end == i) return std::nullopt;
      value = line.substr(i, end - i);
      if (value.find_first_of("{[\"") != std::string::npos)
        return std::nullopt;  // nested containers are not in the subset
      i = end;
    }
    fields.emplace_back(std::move(key), std::move(value));
    skip_ws();
    if (i >= line.size()) return std::nullopt;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') {
      ++i;
      skip_ws();
      return i == line.size() ? std::optional<JsonlFields>(fields)
                              : std::nullopt;
    }
    return std::nullopt;
  }
}

}  // namespace reap::common

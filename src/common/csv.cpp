#include "reap/common/csv.hpp"

#include "reap/common/assert.hpp"

namespace reap::common {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), ncols_(header.size()) {
  REAP_EXPECTS(ncols_ > 0);
  if (out_) add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  REAP_EXPECTS(cells.size() == ncols_);
  if (!out_) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

std::optional<std::vector<std::string>> parse_csv_line(
    const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (true) {
    cell.clear();
    if (i < n && line[i] == '"') {
      ++i;  // opening quote
      bool closed = false;
      while (i < n) {
        if (line[i] == '"') {
          if (i + 1 < n && line[i + 1] == '"') {  // escaped quote
            cell += '"';
            i += 2;
          } else {
            ++i;  // closing quote
            closed = true;
            break;
          }
        } else {
          cell += line[i++];
        }
      }
      if (!closed) return std::nullopt;
      if (i < n && line[i] != ',') return std::nullopt;
    } else {
      while (i < n && line[i] != ',') {
        if (line[i] == '"') return std::nullopt;  // quote inside bare cell
        cell += line[i++];
      }
    }
    cells.push_back(cell);
    if (i >= n) break;
    ++i;  // the comma
    if (i == n) {  // trailing comma: final empty cell
      cells.emplace_back();
      break;
    }
  }
  return cells;
}

}  // namespace reap::common

#include "reap/common/csv.hpp"

#include "reap/common/assert.hpp"

namespace reap::common {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), ncols_(header.size()) {
  REAP_EXPECTS(ncols_ > 0);
  if (out_) add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  REAP_EXPECTS(cells.size() == ncols_);
  if (!out_) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace reap::common

#include "reap/common/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "reap/common/strings.hpp"

namespace reap::common::fault {
namespace {

struct ArmedFault {
  std::string site;
  Kind kind = Kind::eio;
  bool every = false;       // '*': fire on every matching execution
  std::uint64_t nth = 1;    // else fire exactly on the nth match
  std::uint64_t param = 0;
  std::string match;        // context substring filter ("" = any)
  std::uint64_t count = 0;  // matching executions observed so far
};

// Guarded by g_mu. Faults are armed once at process start and read on a
// path that is already "a failure is happening", so a plain mutex is fine.
std::mutex g_mu;
std::vector<ArmedFault>& registry() {
  static std::vector<ArmedFault> faults;
  return faults;
}

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const auto next = s.find(sep, pos);
    const auto end = next == std::string::npos ? s.size() : next;
    out.push_back(s.substr(pos, end - pos));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

std::optional<Kind> kind_from(const std::string& name) {
  if (name == "crash") return Kind::crash;
  if (name == "hang") return Kind::hang;
  if (name == "eio") return Kind::eio;
  if (name == "enospc") return Kind::enospc;
  if (name == "torn-write") return Kind::torn_write;
  if (name == "slow") return Kind::slow;
  if (name == "drop") return Kind::drop;
  if (name == "stall") return Kind::stall;
  if (name == "garble") return Kind::garble;
  return std::nullopt;
}

}  // namespace

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::crash: return "crash";
    case Kind::hang: return "hang";
    case Kind::eio: return "eio";
    case Kind::enospc: return "enospc";
    case Kind::torn_write: return "torn-write";
    case Kind::slow: return "slow";
    case Kind::drop: return "drop";
    case Kind::stall: return "stall";
    case Kind::garble: return "garble";
  }
  return "?";
}

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      "journal.write",  // one row append about to stream to the journal
      "journal.fsync",  // the flush that makes an appended row durable
      "worker.spawn",   // dispatcher launching a reap_campaign worker
      "runner.point",   // one grid point about to run (context: row key)
      "tailer.read",    // supervisor tailing a live worker journal
      "transport.connect",  // dispatcher reaching a worker host (context:
                            // host name) -- handshake or launch
      "transport.stream",   // the journal stream from a remote worker
                            // (context: host name)
  };
  return sites;
}

namespace detail {

std::atomic<unsigned> g_armed{0};

std::optional<Hit> hit_slow(const char* site, std::string_view context) {
  Hit fired;
  bool io_hit = false;
  {
    std::lock_guard lock(g_mu);
    for (auto& f : registry()) {
      if (f.site != site) continue;
      if (!f.match.empty() &&
          context.find(f.match) == std::string_view::npos)
        continue;
      ++f.count;
      if (!f.every && f.count != f.nth) continue;
      switch (f.kind) {
        case Kind::crash:
          std::_Exit(kCrashExit);
        case Kind::hang:
          // Hold nothing back (including this mutex: a hung process stops
          // hitting other sites too). Only SIGKILL ends a real hang.
          for (;;)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        case Kind::slow:
          break;  // sleep outside the lock
        case Kind::eio:
        case Kind::enospc:
        case Kind::torn_write:
        case Kind::drop:
        case Kind::stall:
        case Kind::garble:
          break;
      }
      fired = {f.kind, f.param};
      io_hit = true;
      break;
    }
  }
  if (!io_hit) return std::nullopt;
  if (fired.kind == Kind::slow) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fired.param));
    return std::nullopt;  // slowness is not an error: the call proceeds
  }
  return fired;
}

}  // namespace detail

bool arm(const std::string& spec, std::string* error) {
  if (spec.empty()) return fail(error, "empty fault spec");
  std::vector<ArmedFault> fresh;
  for (const auto& one : split(spec, ',')) {
    if (one.empty()) continue;
    const auto tokens = split(one, ':');
    if (tokens.size() < 2)
      return fail(error, "fault '" + one + "': want site:kind[:...]");
    ArmedFault f;
    f.site = tokens[0];
    const auto& sites = known_sites();
    bool known = false;
    for (const auto& s : sites) known = known || s == f.site;
    if (!known) return fail(error, "unknown fault site: " + f.site);
    const auto kind = kind_from(tokens[1]);
    if (!kind) return fail(error, "unknown fault kind: " + tokens[1]);
    f.kind = *kind;
    // Optional tail tokens: '*' or the occurrence N first, then a numeric
    // PARAM, and key=SUBSTR anywhere.
    bool saw_nth = false;
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      const auto& tok = tokens[i];
      if (tok == "*") {
        f.every = true;
        saw_nth = true;
      } else if (tok.rfind("key=", 0) == 0) {
        f.match = tok.substr(4);
        if (f.match.empty())
          return fail(error, "fault '" + one + "': empty key= filter");
      } else {
        std::uint64_t n = 0;
        if (!parse_u64(tok, n))
          return fail(error, "fault '" + one + "': bad token '" + tok + "'");
        if (!saw_nth) {
          if (n == 0)
            return fail(error, "fault '" + one + "': occurrence is 1-based");
          f.nth = n;
          saw_nth = true;
        } else {
          f.param = n;
        }
      }
    }
    fresh.push_back(std::move(f));
  }
  std::lock_guard lock(g_mu);
  for (auto& f : fresh) registry().push_back(std::move(f));
  detail::g_armed.store(static_cast<unsigned>(registry().size()),
                        std::memory_order_relaxed);
  return true;
}

bool arm_from_env(std::string* error) {
  const char* spec = std::getenv(kEnvVar);
  if (!spec || !*spec) return true;
  return arm(spec, error);
}

void disarm() {
  std::lock_guard lock(g_mu);
  registry().clear();
  detail::g_armed.store(0, std::memory_order_relaxed);
}

}  // namespace reap::common::fault

#include "reap/common/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "reap/common/strings.hpp"

namespace reap::common {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_[arg] = "true";
      } else {
        kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return false;
  consumed_[key] = true;
  return true;
}

std::string CliArgs::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  consumed_[key] = true;
  return it->second;
}

std::uint64_t CliArgs::get_u64(const std::string& key,
                               std::uint64_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  consumed_[key] = true;
  return std::strtoull(it->second.c_str(), nullptr, 0);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  consumed_[key] = true;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  consumed_[key] = true;
  return it->second == "true" || it->second == "1" || it->second == "yes" ||
         it->second == "on";
}

std::vector<std::string> CliArgs::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    (void)v;
    if (!consumed_.count(k)) out.push_back(k);
  }
  return out;
}

bool parse_shard(const std::string& text, std::size_t& index,
                 std::size_t& count) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return false;
  std::uint64_t i = 0, n = 0;
  if (!parse_u64(text.substr(0, slash), i)) return false;
  if (!parse_u64(text.substr(slash + 1), n)) return false;
  if (n == 0 || i >= n) return false;
  index = std::size_t(i);
  count = std::size_t(n);
  return true;
}

void warn_unused(const CliArgs& args) {
  for (const auto& key : args.unconsumed())
    std::fprintf(stderr, "warning: unused flag --%s\n", key.c_str());
}

}  // namespace reap::common

#include "reap/common/crc32c.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>

namespace reap::common {
namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32c(std::string_view data) {
  static const auto table = make_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data)
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string fmt_hex32(std::uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

bool parse_hex32(const std::string& s, std::uint32_t& out) {
  // Exactly 8 hex digits: strtoul alone would also take "0x…", spaces,
  // or a sign, none of which a well-formed CRC suffix can contain.
  if (s.size() != 8) return false;
  std::uint32_t v = 0;
  for (const char ch : s) {
    v <<= 4;
    if (ch >= '0' && ch <= '9') v |= static_cast<std::uint32_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f')
      v |= static_cast<std::uint32_t>(ch - 'a' + 10);
    else if (ch >= 'A' && ch <= 'F')
      v |= static_cast<std::uint32_t>(ch - 'A' + 10);
    else
      return false;
  }
  out = v;
  return true;
}

}  // namespace reap::common

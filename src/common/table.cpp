#include "reap/common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "reap/common/assert.hpp"

namespace reap::common {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  REAP_EXPECTS(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  REAP_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

std::string TextTable::fixed(double v, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string TextTable::sci(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2e", v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  auto rule = [&]() {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      line += "+";
      line.append(widths[c] + 2, '-');
    }
    line += "+\n";
    return line;
  };

  std::string out = rule() + emit_row(headers_) + rule();
  for (const auto& row : rows_) out += emit_row(row);
  out += rule();
  return out;
}

}  // namespace reap::common

#include "reap/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "reap/common/assert.hpp"

namespace reap::common {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  REAP_EXPECTS(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  REAP_EXPECTS(n_ > 0);
  return max_;
}

double arithmetic_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geometric_mean(const std::vector<double>& xs) {
  REAP_EXPECTS(!xs.empty());
  double acc = 0.0;
  for (double x : xs) {
    REAP_EXPECTS(x > 0.0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

double percentile(std::vector<double> xs, double p) {
  REAP_EXPECTS(!xs.empty());
  REAP_EXPECTS(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  const double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace reap::common

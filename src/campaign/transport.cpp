#include "reap/campaign/transport.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "reap/common/fault.hpp"
#include "reap/common/frame.hpp"
#include "reap/common/strings.hpp"

namespace reap::campaign {
namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

std::string join(const std::vector<std::string>& items, char sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const auto nl = s.find('\n', pos);
    const auto end = nl == std::string::npos ? s.size() : nl;
    out.push_back(s.substr(pos, end - pos));
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  return out;
}

// Single-quotes `s` for a POSIX shell: the one quoting form with no
// special cases except the quote itself.
std::string shq(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

// The worker running remotely, its framed stdout stream feeding the
// authoritative local journal. The Child here is the ssh process; with
// the test stub (and `exec` in the remote command) it *is* the worker.
class SshWorker final : public WorkerHandle {
 public:
  SshWorker(common::Child child, int fd, std::string host,
            const std::string& journal_path, const std::string& log_path)
      : child_(std::move(child)),
        fd_(fd),
        host_(std::move(host)),
        journal_path_(journal_path) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(journal_path, ec);
    // Only the first attempt writes the header; every remote attempt
    // mirrors one (fresh remote journal), so later ones are dropped.
    want_header_ = ec || size == 0;
    log_.open(log_path, std::ios::app);
  }

  ~SshWorker() override {
    if (fd_ >= 0) ::close(fd_);
  }

  long pid() const override { return child_.pid(); }
  std::optional<common::ExitStatus> poll() override { return child_.poll(); }
  bool kill(int sig) override { return child_.kill(sig); }

  void pump() override { pump_stream(); }
  void drain() override { pump_stream(); }

  bool host_failure(const common::ExitStatus& status) const override {
    // 255 is ssh's own "connection/authentication failed" exit -- the
    // one code that can never be the worker's.
    return stream_lost_ || stalled_ ||
           (status.exited && status.code == 255);
  }

 private:
  // The connection died: whatever is in flight is gone, and the remote
  // side is unreachable -- kill our end so poll() reports the loss.
  void sever() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    stream_lost_ = true;
    child_.kill(9);
  }

  void pump_stream() {
    if (const auto f = common::fault::hit("transport.stream", host_)) {
      switch (f->kind) {
        case common::fault::Kind::stall:
          // The stream freezes open: bytes stop, the connection does
          // not close. Only the dispatcher's watchdog can notice.
          stalled_ = true;
          break;
        case common::fault::Kind::garble:
          garble_ = true;  // corrupt the next chunk read off the wire
          break;
        default:
          sever();  // drop (and any I/O kind): the connection is gone
          break;
      }
    }
    if (stalled_ || fd_ < 0) return;
    char buf[4096];
    for (;;) {
      const auto n = ::read(fd_, buf, sizeof buf);
      if (n > 0) {
        if (garble_) {
          buf[0] ^= 0x01;
          garble_ = false;
        }
        parser_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        deliver();
        continue;
      }
      if (n == 0) {  // EOF: remote stdout closed cleanly
        ::close(fd_);
        fd_ = -1;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      sever();
      break;
    }
  }

  void deliver() {
    for (const auto& p : parser_.take_payloads()) {
      const bool is_header = p.rfind("{\"format\":", 0) == 0;
      if (is_header) {
        if (!want_header_) continue;  // a later attempt's header: dup
      } else if (want_header_) {
        // A row cannot land before a header (the journal would be
        // unreadable); if the header frame was lost, drop the row -- the
        // shard re-runs it on the next attempt, which mirrors a fresh
        // header first.
        continue;
      }
      // Open lazily on the first verified payload: an attempt that dies
      // before delivering anything must not leave an empty journal file
      // behind -- a local-transport retry would refuse to --resume it.
      if (!journal_.is_open()) journal_.open(journal_path_, std::ios::app);
      journal_ << p << '\n';
      journal_.flush();
      if (is_header) want_header_ = false;
    }
    const auto noise = parser_.take_noise();
    for (const auto& line : noise) log_ << line << '\n';
    if (!noise.empty()) log_.flush();
  }

  common::Child child_;
  int fd_ = -1;
  std::string host_;
  common::FrameParser parser_;
  std::string journal_path_;
  std::ofstream journal_;  // local authoritative journal (append)
  std::ofstream log_;      // stream noise lands with the worker's stderr
  bool want_header_ = true;
  bool stream_lost_ = false;
  bool stalled_ = false;
  bool garble_ = false;
};

// The local worker is just a Child; the stream hooks stay no-ops.
class LocalWorker final : public WorkerHandle {
 public:
  explicit LocalWorker(common::Child child) : child_(std::move(child)) {}
  long pid() const override { return child_.pid(); }
  std::optional<common::ExitStatus> poll() override { return child_.poll(); }
  bool kill(int sig) override { return child_.kill(sig); }

 private:
  common::Child child_;
};

}  // namespace

std::optional<std::vector<HostSpec>> parse_hosts(const std::string& text,
                                                 std::string* error) {
  std::vector<HostSpec> hosts;
  const auto lines = split_lines(text);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const auto at = [&](const std::string& msg) {
      fail(error, "hosts line " + std::to_string(li + 1) + ": " + msg);
      return std::nullopt;
    };
    std::string line = lines[li];
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto tokens = split_ws(line);
    if (tokens.empty()) continue;
    HostSpec h;
    h.name = tokens[0];
    for (const auto& prior : hosts)
      if (prior.name == h.name) return at("duplicate host " + h.name);
    std::size_t i = 1;
    if (i < tokens.size() && tokens[i].find('=') == std::string::npos) {
      std::uint64_t n = 0;
      if (!common::parse_u64(tokens[i], n) || n == 0)
        return at("bad slot count '" + tokens[i] + "'");
      h.slots = n;
      ++i;
    }
    for (; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == tokens[i].size())
        return at("bad option '" + tokens[i] + "' (want key=value)");
      const auto key = tokens[i].substr(0, eq);
      const auto value = tokens[i].substr(eq + 1);
      if (key == "binary")
        h.remote_binary = value;
      else if (key == "dir")
        h.remote_dir = value;
      else if (key == "ssh")
        h.ssh_command = value;
      else
        return at("unknown option '" + key + "'");
    }
    hosts.push_back(std::move(h));
  }
  if (hosts.empty()) {
    fail(error, "hosts file lists no hosts");
    return std::nullopt;
  }
  return hosts;
}

std::optional<std::vector<HostSpec>> parse_hosts_file(const std::string& path,
                                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open hosts file: " + path);
    return std::nullopt;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return parse_hosts(text, error);
}

LocalTransport::LocalTransport(std::string binary, std::size_t slots)
    : binary_(std::move(binary)), slots_(std::max<std::size_t>(slots, 1)) {}

std::unique_ptr<WorkerHandle> LocalTransport::launch(const WorkerPlan& plan,
                                                     std::string* error,
                                                     bool* transient) {
  std::vector<std::string> argv = {binary_};
  argv.insert(argv.end(), plan.flags.begin(), plan.flags.end());
  argv.push_back("--journal=" + plan.journal_path);
  argv.push_back("--resume");
  if (!plan.skip.empty())
    argv.push_back("--skip-rows=" + join(plan.skip, ','));
  auto child = common::Child::spawn(argv, plan.log_path, error, transient);
  if (!child) return nullptr;
  return std::make_unique<LocalWorker>(std::move(*child));
}

SshTransport::SshTransport(HostSpec spec) : spec_(std::move(spec)) {
  if (spec_.ssh_command.empty()) spec_.ssh_command = "ssh";
  if (spec_.slots == 0) spec_.slots = 1;
}

std::vector<std::string> SshTransport::ssh_argv(
    const std::string& remote_cmd) const {
  // Mimic ssh's calling convention: the remote command is one argument,
  // run by the remote shell (which is why every operand is shq()ed).
  auto argv = split_ws(spec_.ssh_command);
  argv.push_back(spec_.name);
  argv.push_back(remote_cmd);
  return argv;
}

HandshakeStatus SshTransport::handshake(const std::string& expected_version,
                                        const std::string& trace_dir,
                                        std::string* error,
                                        std::string* note) {
  bool garble = false;
  if (const auto f = common::fault::hit("transport.connect", spec_.name)) {
    if (f->kind == common::fault::Kind::garble) {
      garble = true;
    } else {
      fail(error, "host " + spec_.name + ": injected " +
                      common::fault::to_string(f->kind));
      return HandshakeStatus::unreachable;
    }
  }

  std::string cmd = shq(spec_.remote_binary) + " --version 2>&1";
  if (!trace_dir.empty())
    cmd += "; if test -d " + shq(trace_dir) +
           "; then echo TRACEDIR:ok; else echo TRACEDIR:missing; fi";

  int fd = -1;
  std::string spawn_error;
  auto child = common::Child::spawn_piped(ssh_argv(cmd), &fd, "",
                                          &spawn_error, nullptr);
  if (!child) {
    fail(error, "host " + spec_.name + ": " + spawn_error);
    return HandshakeStatus::unreachable;
  }
  std::string out;
  char buf[4096];
  while (fd >= 0) {
    const auto n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (fd >= 0) ::close(fd);
  const auto status = child->wait();
  if (garble && !out.empty()) out[0] ^= 0x01;

  if (!status.success()) {
    fail(error, "host " + spec_.name + ": handshake failed (" +
                    status.describe() + ")");
    return HandshakeStatus::unreachable;
  }

  std::string version;
  trace_dir_missing_ = false;
  for (const auto& line : split_lines(out)) {
    if (line == "TRACEDIR:ok") continue;
    if (line == "TRACEDIR:missing") {
      trace_dir_missing_ = true;
      continue;
    }
    if (version.empty() && !line.empty()) version = line;
  }
  if (!expected_version.empty() && version != expected_version) {
    fail(error, "host " + spec_.name + ": worker version skew: host runs '" +
                    version + "' but this dispatcher expects '" +
                    expected_version + "'");
    return HandshakeStatus::mismatch;
  }
  if (trace_dir_missing_ && note)
    *note = "host " + spec_.name + ": no trace store at " + trace_dir +
            "; its workers fall back to trace generation";
  return HandshakeStatus::ok;
}

std::unique_ptr<WorkerHandle> SshTransport::launch(const WorkerPlan& plan,
                                                   std::string* error,
                                                   bool* transient) {
  if (transient) *transient = false;
  if (const auto f = common::fault::hit("transport.connect", spec_.name)) {
    if (transient) *transient = true;  // connections come back; retry
    fail(error, "host " + spec_.name + ": injected " +
                    common::fault::to_string(f->kind));
    return nullptr;
  }

  const std::string remote_journal =
      spec_.remote_dir + "/shard_" + std::to_string(plan.shard) + ".journal";
  // `exec` so the launcher process *is* the worker: the dispatcher's
  // SIGTERM/SIGKILL land on the thing doing the work, not a wrapper.
  std::string cmd = "mkdir -p " + shq(spec_.remote_dir) + " && exec " +
                    shq(spec_.remote_binary);
  for (const auto& flag : plan.flags) {
    // The handshake found no trace store on this host: generation
    // fallback instead of a fleet of ENOENT deaths.
    if (trace_dir_missing_ && flag.rfind("--trace-dir=", 0) == 0) continue;
    cmd += " " + shq(flag);
  }
  cmd += " " + shq("--journal=" + remote_journal);
  cmd += " --journal-stdout";
  // Fresh remote journal every attempt; everything already durable
  // locally is excluded here, so a relaunch cannot duplicate a row.
  std::vector<std::string> skip = plan.skip;
  skip.insert(skip.end(), plan.done.begin(), plan.done.end());
  if (!skip.empty()) cmd += " " + shq("--skip-rows=" + join(skip, ','));

  int fd = -1;
  auto child = common::Child::spawn_piped(ssh_argv(cmd), &fd, plan.log_path,
                                          error, transient);
  if (!child) return nullptr;
  return std::make_unique<SshWorker>(std::move(*child), fd, spec_.name,
                                     plan.journal_path, plan.log_path);
}

}  // namespace reap::campaign

#include "reap/campaign/journal.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include "reap/common/crc32c.hpp"
#include "reap/common/fault.hpp"
#include "reap/common/jsonl.hpp"
#include "reap/common/strings.hpp"

namespace reap::campaign {
namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

std::string join(const std::vector<std::string>& items, char sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const auto next = s.find(sep, pos);
    const auto end = next == std::string::npos ? s.size() : next;
    out.push_back(s.substr(pos, end - pos));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

// Parses the header object of line 1. The journal is self-describing: all
// fields are flat scalars so the shared JSONL-subset parser handles it.
bool parse_header(const std::string& line, JournalHeader& h,
                  std::string* error) {
  const auto fields = common::parse_jsonl_line(line);
  if (!fields) return fail(error, "journal: malformed header line");
  bool saw_format = false;
  for (const auto& [key, value] : *fields) {
    if (key == "format") {
      h.format = value;
      saw_format = true;
    } else if (key == "name") {
      h.name = value;
    } else if (key == "spec_hash") {
      if (!common::parse_hex64(value, h.spec_hash))
        return fail(error, "journal: bad spec_hash: " + value);
    } else if (key == "points") {
      if (!common::parse_u64(value, h.points))
        return fail(error, "journal: bad points: " + value);
    } else if (key == "shard_index") {
      if (!common::parse_u64(value, h.shard_index))
        return fail(error, "journal: bad shard_index: " + value);
    } else if (key == "shard_count") {
      if (!common::parse_u64(value, h.shard_count))
        return fail(error, "journal: bad shard_count: " + value);
    } else if (key == "columns") {
      h.columns = split(value, ',');
    }
    // Unknown header fields are ignored: newer writers may add metadata.
  }
  if (!saw_format ||
      (h.format != "reap-journal-v1" && h.format != "reap-journal-v2"))
    return fail(error, "journal: not a reap-journal file");
  if (h.columns.empty()) return fail(error, "journal: header lists no columns");
  return true;
}

// The checksum suffix of a v2 row: `,"crc":"xxxxxxxx"}` closes the line.
// The CRC covers the row body -- the line with that suffix removed and the
// closing brace restored, i.e. exactly the v1 serialization of the row.
constexpr char kCrcSuffix[] = ",\"crc\":\"";
constexpr std::size_t kCrcSuffixLen = sizeof(kCrcSuffix) - 1;

// Splits a v2 line into (body, crc hex). Returns false for a line without
// the suffix -- a v1 row, which simply has no checksum to verify.
bool split_crc(const std::string& line, std::string& body, std::string& hex) {
  const auto pos = line.rfind(kCrcSuffix);
  if (pos == std::string::npos) return false;
  const auto tail = line.substr(pos + kCrcSuffixLen);
  if (tail.size() != 10 || tail.substr(8) != "\"}") return false;
  body = line.substr(0, pos) + "}";
  hex = tail.substr(0, 8);
  return true;
}

enum class RowParse { ok, malformed, bad_crc };

// Parses one row line into (key, cells), verifying the v2 checksum when
// present. The caller decides whether `malformed` is a torn tail
// (acceptable on the last line) or corruption; `bad_crc` is always
// corruption -- only a complete, well-formed line can carry a checksum
// that fails to verify.
RowParse parse_row(const std::string& line,
                   const std::vector<std::string>& columns,
                   JournalRow& row) {
  std::string body;
  std::string hex;
  const bool has_crc = split_crc(line, body, hex);
  if (has_crc) {
    std::uint32_t stored = 0;
    if (!common::parse_hex32(hex, stored)) return RowParse::malformed;
    if (common::crc32c(body) != stored) return RowParse::bad_crc;
  } else {
    body = line;
  }
  const auto fields = common::parse_jsonl_line(body);
  if (!fields) return RowParse::malformed;
  if (fields->size() != columns.size() + 1) return RowParse::malformed;
  if ((*fields)[0].first != "key") return RowParse::malformed;
  row.key = (*fields)[0].second;
  row.cells.clear();
  row.cells.reserve(columns.size());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const auto& [name, value] = (*fields)[i + 1];
    if (name != columns[i]) return RowParse::malformed;
    row.cells.push_back(value);
  }
  // Column 0 is the grid index by construction of result_header().
  if (columns.empty() || columns[0] != "index") return RowParse::malformed;
  return common::parse_u64(row.cells[0], row.index) ? RowParse::ok
                                                    : RowParse::malformed;
}

}  // namespace

JournalHeader JournalHeader::for_run(const CampaignSpec& spec,
                                     std::size_t n_points,
                                     std::size_t shard_index,
                                     std::size_t shard_count) {
  JournalHeader h;
  h.name = spec.name;
  h.spec_hash = campaign::spec_hash(spec);
  h.points = n_points;
  h.shard_index = shard_index;
  h.shard_count = shard_count;
  h.columns = result_header();
  return h;
}

JournalWriter::JournalWriter(const std::string& path,
                             const JournalHeader& header)
    : out_(path, std::ios::trunc), columns_(header.columns) {
  if (!out_) return;
  header_line_ =
      "{\"format\":\"" + common::json_escape(header.format) +
      "\",\"name\":\"" + common::json_escape(header.name) +
      "\",\"spec_hash\":\"" + common::fmt_hex64(header.spec_hash) +
      "\",\"points\":" + std::to_string(header.points) +
      ",\"shard_index\":" + std::to_string(header.shard_index) +
      ",\"shard_count\":" + std::to_string(header.shard_count) +
      ",\"columns\":\"" + common::json_escape(join(header.columns, ',')) +
      "\"}";
  out_ << header_line_ << '\n';
  out_.flush();
}

JournalWriter::JournalWriter(const std::string& path)
    : out_(path, std::ios::app), columns_(result_header()) {}

bool JournalWriter::ok() const { return static_cast<bool>(out_); }

void JournalWriter::set_mirror(std::function<void(const std::string&)> fn) {
  mirror_ = std::move(fn);
  // The receiver rebuilds the journal from the stream, so it needs the
  // header first, exactly as a reader of the file would see it.
  if (mirror_ && !header_line_.empty() && static_cast<bool>(out_))
    mirror_(header_line_);
}

void JournalWriter::add(const std::string& key,
                        const std::vector<std::string>& cells) {
  // Sticky after the first failure: appending past an error would put
  // rows after a hole and break "journal = durable prefix of the run".
  if (!out_ || io_errno_ != 0) return;

  const std::string body = "{\"key\":\"" + common::json_escape(key) + "\"," +
                           jsonl_fields(columns_, cells) + "}";
  const std::string line =
      body.substr(0, body.size() - 1) + kCrcSuffix +
      common::fmt_hex32(common::crc32c(body)) + "\"}\n";

  if (const auto f = common::fault::hit("journal.write", key)) {
    if (f->kind == common::fault::Kind::torn_write) {
      // A mid-write kill: some prefix of the line lands, then the
      // process dies. Exactly what read_journal's torn-tail path heals.
      const auto n = f->param ? std::min<std::size_t>(f->param, line.size())
                              : line.size() / 2;
      out_.write(line.data(), static_cast<std::streamsize>(n));
      out_.flush();
      std::_Exit(common::fault::kCrashExit);
    }
    io_errno_ = f->kind == common::fault::Kind::enospc ? ENOSPC : EIO;
    return;
  }

  errno = 0;
  out_ << line;
  out_.flush();
  if (const auto f = common::fault::hit("journal.fsync", key))
    io_errno_ = f->kind == common::fault::Kind::enospc ? ENOSPC : EIO;
  if (!out_ && io_errno_ == 0) io_errno_ = errno != 0 ? errno : EIO;
  if (io_errno_ == 0 && mirror_)
    mirror_(line.substr(0, line.size() - 1));  // without the '\n'
}

std::optional<Journal> read_journal(const std::string& path,
                                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open journal: " + path);
    return std::nullopt;
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  if (lines.empty()) {
    fail(error, "journal is empty: " + path);
    return std::nullopt;
  }

  Journal j;
  if (!parse_header(lines[0], j.header, error)) return std::nullopt;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    JournalRow row;
    switch (parse_row(lines[i], j.header.columns, row)) {
      case RowParse::ok:
        j.rows.push_back(std::move(row));
        break;
      case RowParse::malformed:
        if (i + 1 == lines.size()) {
          // A torn final line is the expected signature of a mid-write
          // kill; the row it carried simply re-runs on resume.
          j.truncated_tail = true;
        } else {
          j.corrupt.push_back({i + 1, "malformed row"});
        }
        break;
      case RowParse::bad_crc:
        // A complete line whose checksum fails is damage, not a tear --
        // even on the last line.
        j.corrupt.push_back({i + 1, "CRC mismatch"});
        break;
    }
  }
  return j;
}

std::optional<JournalHeader> read_journal_header(const std::string& path,
                                                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open journal: " + path);
    return std::nullopt;
  }
  std::string line;
  if (!std::getline(in, line) || line.empty()) {
    fail(error, "journal is empty: " + path);
    return std::nullopt;
  }
  JournalHeader h;
  if (!parse_header(line, h, error)) return std::nullopt;
  return h;
}

bool rewrite_journal(const std::string& path, const Journal& j,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    // Only parsed rows are re-serialized, so a rewrite heals corrupt
    // lines along with the torn tail -- and upgrades v1 files to v2,
    // since the writer always emits checksummed rows.
    JournalHeader header = j.header;
    header.format = "reap-journal-v2";
    JournalWriter writer(tmp, header);
    for (const auto& row : j.rows) writer.add(row.key, row.cells);
    if (!writer.ok()) return fail(error, "cannot write " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    return fail(error, "cannot replace " + path + ": " + ec.message());
  return true;
}

bool journal_compatible(const JournalHeader& header, const CampaignSpec& spec,
                        std::size_t n_points, std::size_t shard_index,
                        std::size_t shard_count, std::string* why) {
  const auto mismatch = [&](const std::string& what) {
    if (why) *why = "journal " + what;
    return false;
  };
  if (header.spec_hash != campaign::spec_hash(spec))
    return mismatch("was recorded for a different spec (spec hash " +
                    common::fmt_hex64(header.spec_hash) + " != " +
                    common::fmt_hex64(campaign::spec_hash(spec)) + ")");
  if (header.points != n_points)
    return mismatch("grid size mismatch (" + std::to_string(header.points) +
                    " != " + std::to_string(n_points) + ")");
  if (header.shard_index != shard_index || header.shard_count != shard_count)
    return mismatch("shard mismatch (" + std::to_string(header.shard_index) +
                    "/" + std::to_string(header.shard_count) + " != " +
                    std::to_string(shard_index) + "/" +
                    std::to_string(shard_count) + ")");
  if (header.columns != result_header())
    return mismatch("column schema differs from this binary's");
  return true;
}

JournalTailer::JournalTailer(std::string path) : path_(std::move(path)) {}

std::vector<std::string> JournalTailer::poll() {
  std::vector<std::string> fresh;
  // An injected read fault models a flaky shared filesystem: the poll
  // sees nothing this round and simply retries later.
  if (common::fault::hit("tailer.read", path_)) return fresh;
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  if (ec) return fresh;  // not created yet (worker still starting)
  // A shrink is resume's atomic torn-tail rewrite landing: the bytes at
  // our offset are no longer the bytes we consumed, so rescan from the
  // start. `seen_` keeps rescanned rows from being re-reported.
  if (size < offset_) offset_ = 0;
  if (size == offset_) return fresh;

  std::ifstream in(path_, std::ios::binary);
  if (!in) return fresh;
  in.seekg(static_cast<std::streamoff>(offset_));
  std::string appended(static_cast<std::size_t>(size - offset_), '\0');
  in.read(appended.data(), static_cast<std::streamsize>(appended.size()));
  appended.resize(static_cast<std::size_t>(in.gcount()));

  // Consume only through the last newline: everything after it is a line
  // still being written.
  const auto last_nl = appended.rfind('\n');
  if (last_nl == std::string::npos) return fresh;
  std::size_t pos = 0;
  while (pos <= last_nl) {
    const auto nl = appended.find('\n', pos);
    const std::string line = appended.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    // Rows lead with a "key" field; the header line (and any malformed
    // mid-flight content) does not and is skipped. A checksummed row
    // that fails to verify is damage, not progress: skip it unseen so
    // the supervisor still counts that point as outstanding.
    std::string body = line;
    std::string hex;
    if (split_crc(line, body, hex)) {
      std::uint32_t stored = 0;
      if (!common::parse_hex32(hex, stored) ||
          common::crc32c(body) != stored)
        continue;
    }
    const auto fields = common::parse_jsonl_line(body);
    if (!fields || fields->empty() || (*fields)[0].first != "key") continue;
    if (seen_.insert((*fields)[0].second).second)
      fresh.push_back((*fields)[0].second);
  }
  offset_ += last_nl + 1;
  return fresh;
}

std::vector<JournalRow> merge_journal_rows(std::vector<JournalRow> a,
                                           std::vector<JournalRow> b) {
  std::vector<JournalRow> all = std::move(a);
  all.insert(all.end(), std::make_move_iterator(b.begin()),
             std::make_move_iterator(b.end()));
  std::unordered_set<std::string> seen;
  std::vector<JournalRow> unique;
  unique.reserve(all.size());
  for (auto& row : all)
    if (seen.insert(row.key).second) unique.push_back(std::move(row));
  std::stable_sort(unique.begin(), unique.end(),
                   [](const JournalRow& x, const JournalRow& y) {
                     return x.index < y.index;
                   });
  return unique;
}

void emit_rows(const std::vector<JournalRow>& rows, ResultSink& sink) {
  for (const auto& row : rows) sink.add_cells(row.cells);
}

}  // namespace reap::campaign

#include "reap/campaign/aggregate.hpp"

#include <cmath>
#include <sstream>

#include "reap/common/table.hpp"
#include "reap/reliability/mttf.hpp"

namespace reap::campaign {
namespace {

PointComparison compare(std::size_t index, std::size_t baseline_index,
                        const core::ExperimentResult& r,
                        const core::ExperimentResult& base) {
  PointComparison c;
  c.index = index;
  c.baseline_index = baseline_index;
  c.mttf_gain = reliability::mttf_ratio(r.mttf, base.mttf);
  const double eb = base.energy.dynamic_total_j();
  const double eo = r.energy.dynamic_total_j();
  c.energy_ratio = eb > 0.0 ? eo / eb : 1.0;
  c.energy_overhead_pct = (c.energy_ratio - 1.0) * 100.0;
  c.speedup = base.ipc > 0.0 ? r.ipc / base.ipc : 1.0;
  return c;
}

}  // namespace

std::optional<CampaignAggregates> aggregate(
    const CampaignSpec& spec, const std::vector<CampaignPoint>& points,
    const std::vector<core::ExperimentResult>& results,
    core::PolicyKind baseline) {
  std::size_t baseline_pi = spec.policies.size();
  for (std::size_t i = 0; i < spec.policies.size(); ++i)
    if (spec.policies[i] == baseline) baseline_pi = i;
  if (baseline_pi == spec.policies.size()) return std::nullopt;

  CampaignAggregates agg;
  agg.baseline = baseline;

  // The expansion is row-major (workload, policy, ecc, scrub, ratio,
  // seed), so the baseline partner of a point differs only in the policy
  // digit.
  const std::size_t n_ratios =
      spec.read_ratios.empty() ? 1 : spec.read_ratios.size();
  const std::size_t n_scrubs =
      spec.scrub_everys.empty() ? 1 : spec.scrub_everys.size();
  const auto index_of = [&](const CampaignPoint& pt, std::size_t policy_i) {
    return ((((pt.workload_i * spec.policies.size() + policy_i) *
                  spec.ecc_ts.size() +
              pt.ecc_i) *
                 n_scrubs +
             pt.scrub_i) *
                n_ratios +
            pt.ratio_i) *
               spec.seeds.size() +
           pt.seed_i;
  };

  for (const auto& pt : points) {
    if (pt.policy_i == baseline_pi) continue;
    const std::size_t bi = index_of(pt, baseline_pi);
    agg.comparisons.push_back(
        compare(pt.index, bi, results[pt.index], results[bi]));
  }

  // Per-policy summaries, in spec policy order.
  for (std::size_t pi = 0; pi < spec.policies.size(); ++pi) {
    if (pi == baseline_pi) continue;
    PolicySummary s;
    s.policy = spec.policies[pi];
    double sum_gain = 0.0, sum_log_gain = 0.0, sum_ovh = 0.0, sum_spd = 0.0;
    bool geo_ok = true;
    for (const auto& c : agg.comparisons) {
      if (points[c.index].policy_i != pi) continue;
      if (s.n == 0) {
        s.min_mttf_gain = s.max_mttf_gain = c.mttf_gain;
        s.max_energy_overhead_pct = c.energy_overhead_pct;
      }
      ++s.n;
      sum_gain += c.mttf_gain;
      if (c.mttf_gain > 0.0 && std::isfinite(c.mttf_gain))
        sum_log_gain += std::log(c.mttf_gain);
      else
        geo_ok = false;
      sum_ovh += c.energy_overhead_pct;
      sum_spd += c.speedup;
      s.min_mttf_gain = std::min(s.min_mttf_gain, c.mttf_gain);
      s.max_mttf_gain = std::max(s.max_mttf_gain, c.mttf_gain);
      s.max_energy_overhead_pct =
          std::max(s.max_energy_overhead_pct, c.energy_overhead_pct);
    }
    if (s.n > 0) {
      const double n = static_cast<double>(s.n);
      s.mean_mttf_gain = sum_gain / n;
      s.geomean_mttf_gain = geo_ok ? std::exp(sum_log_gain / n) : 0.0;
      s.mean_energy_overhead_pct = sum_ovh / n;
      s.mean_speedup = sum_spd / n;
    }
    agg.by_policy.push_back(s);
  }

  // Per-workload x policy summaries (the Fig. 5 / Fig. 6 bars).
  for (std::size_t wi = 0; wi < spec.workloads.size(); ++wi) {
    for (std::size_t pi = 0; pi < spec.policies.size(); ++pi) {
      if (pi == baseline_pi) continue;
      WorkloadSummary ws;
      ws.workload = spec.workloads[wi];
      ws.policy = spec.policies[pi];
      double sum_gain = 0.0, sum_ovh = 0.0;
      std::size_t n = 0;
      for (const auto& c : agg.comparisons) {
        const auto& pt = points[c.index];
        if (pt.workload_i != wi || pt.policy_i != pi) continue;
        ++n;
        sum_gain += c.mttf_gain;
        sum_ovh += c.energy_overhead_pct;
      }
      if (n > 0) {
        ws.mean_mttf_gain = sum_gain / static_cast<double>(n);
        ws.mean_energy_overhead_pct = sum_ovh / static_cast<double>(n);
        agg.by_workload.push_back(ws);
      }
    }
  }
  return agg;
}

std::string CampaignAggregates::render() const {
  using common::TextTable;
  std::ostringstream out;

  out << "per-policy summary (vs " << core::to_string(baseline) << "):\n";
  TextTable pol({"policy", "n", "MTTF gain (mean)", "MTTF gain (geo)",
                 "MTTF gain [min,max]", "energy ovh % (mean)",
                 "energy ovh % (max)", "speedup (mean)"});
  for (const auto& s : by_policy) {
    pol.add_row({core::to_string(s.policy), std::to_string(s.n),
                 TextTable::fixed(s.mean_mttf_gain, 2),
                 TextTable::fixed(s.geomean_mttf_gain, 2),
                 "[" + TextTable::fixed(s.min_mttf_gain, 2) + ", " +
                     TextTable::fixed(s.max_mttf_gain, 2) + "]",
                 TextTable::fixed(s.mean_energy_overhead_pct, 2),
                 TextTable::fixed(s.max_energy_overhead_pct, 2),
                 TextTable::fixed(s.mean_speedup, 3)});
  }
  out << pol.render();

  out << "\nper-workload summary:\n";
  TextTable wl({"workload", "policy", "MTTF gain", "energy ovh %"});
  for (const auto& w : by_workload) {
    wl.add_row({w.workload, core::to_string(w.policy),
                TextTable::fixed(w.mean_mttf_gain, 2),
                TextTable::fixed(w.mean_energy_overhead_pct, 2)});
  }
  out << wl.render();
  return out.str();
}

}  // namespace reap::campaign

#include "reap/campaign/aggregate.hpp"

#include <cmath>
#include <sstream>

#include "reap/common/table.hpp"

namespace reap::campaign {

PointComparison compare_metrics(std::size_t index, std::size_t baseline_index,
                                const reliability::MttfResult& mttf,
                                double energy_j, double ipc,
                                const reliability::MttfResult& base_mttf,
                                double base_energy_j, double base_ipc) {
  PointComparison c;
  c.index = index;
  c.baseline_index = baseline_index;
  c.mttf_gain = reliability::mttf_ratio(mttf, base_mttf);
  c.energy_ratio = base_energy_j > 0.0 ? energy_j / base_energy_j : 1.0;
  c.energy_overhead_pct = (c.energy_ratio - 1.0) * 100.0;
  c.speedup = base_ipc > 0.0 ? ipc / base_ipc : 1.0;
  return c;
}

CampaignAggregates summarize_comparisons(
    core::PolicyKind baseline,
    const std::vector<AnnotatedComparison>& comparisons,
    const std::vector<core::PolicyKind>& policy_order,
    const std::vector<std::string>& workload_order) {
  CampaignAggregates agg;
  agg.baseline = baseline;
  agg.comparisons.reserve(comparisons.size());
  for (const auto& a : comparisons) agg.comparisons.push_back(a.c);

  // Per-policy summaries.
  for (const auto policy : policy_order) {
    PolicySummary s;
    s.policy = policy;
    double sum_gain = 0.0, sum_log_gain = 0.0, sum_ovh = 0.0, sum_spd = 0.0;
    bool geo_ok = true;
    for (const auto& a : comparisons) {
      if (a.policy != policy) continue;
      const auto& c = a.c;
      if (s.n == 0) {
        s.min_mttf_gain = s.max_mttf_gain = c.mttf_gain;
        s.max_energy_overhead_pct = c.energy_overhead_pct;
      }
      ++s.n;
      sum_gain += c.mttf_gain;
      if (c.mttf_gain > 0.0 && std::isfinite(c.mttf_gain))
        sum_log_gain += std::log(c.mttf_gain);
      else
        geo_ok = false;
      sum_ovh += c.energy_overhead_pct;
      sum_spd += c.speedup;
      s.min_mttf_gain = std::min(s.min_mttf_gain, c.mttf_gain);
      s.max_mttf_gain = std::max(s.max_mttf_gain, c.mttf_gain);
      s.max_energy_overhead_pct =
          std::max(s.max_energy_overhead_pct, c.energy_overhead_pct);
    }
    if (s.n > 0) {
      const double n = static_cast<double>(s.n);
      s.mean_mttf_gain = sum_gain / n;
      s.geomean_mttf_gain = geo_ok ? std::exp(sum_log_gain / n) : 0.0;
      s.mean_energy_overhead_pct = sum_ovh / n;
      s.mean_speedup = sum_spd / n;
    }
    agg.by_policy.push_back(s);
  }

  // Per-workload x policy summaries (the Fig. 5 / Fig. 6 bars).
  for (const auto& workload : workload_order) {
    for (const auto policy : policy_order) {
      WorkloadSummary ws;
      ws.workload = workload;
      ws.policy = policy;
      double sum_gain = 0.0, sum_ovh = 0.0;
      std::size_t n = 0;
      for (const auto& a : comparisons) {
        if (a.workload != workload || a.policy != policy) continue;
        ++n;
        sum_gain += a.c.mttf_gain;
        sum_ovh += a.c.energy_overhead_pct;
      }
      if (n > 0) {
        ws.mean_mttf_gain = sum_gain / static_cast<double>(n);
        ws.mean_energy_overhead_pct = sum_ovh / static_cast<double>(n);
        agg.by_workload.push_back(ws);
      }
    }
  }
  return agg;
}

std::optional<CampaignAggregates> aggregate(
    const CampaignSpec& spec, const std::vector<CampaignPoint>& points,
    const std::vector<core::ExperimentResult>& results,
    core::PolicyKind baseline) {
  std::size_t baseline_pi = spec.policies.size();
  for (std::size_t i = 0; i < spec.policies.size(); ++i)
    if (spec.policies[i] == baseline) baseline_pi = i;
  if (baseline_pi == spec.policies.size()) return std::nullopt;

  // The expansion is row-major (workload, policy, ecc, scrub, ratio,
  // seed), so the baseline partner of a point differs only in the policy
  // digit.
  const std::size_t n_ratios =
      spec.read_ratios.empty() ? 1 : spec.read_ratios.size();
  const std::size_t n_scrubs =
      spec.scrub_everys.empty() ? 1 : spec.scrub_everys.size();
  const auto index_of = [&](const CampaignPoint& pt, std::size_t policy_i) {
    return ((((pt.workload_i * spec.policies.size() + policy_i) *
                  spec.ecc_ts.size() +
              pt.ecc_i) *
                 n_scrubs +
             pt.scrub_i) *
                n_ratios +
            pt.ratio_i) *
               spec.seeds.size() +
           pt.seed_i;
  };

  std::vector<AnnotatedComparison> comparisons;
  for (const auto& pt : points) {
    if (pt.policy_i == baseline_pi) continue;
    const std::size_t bi = index_of(pt, baseline_pi);
    const auto& r = results[pt.index];
    const auto& base = results[bi];
    AnnotatedComparison a;
    a.c = compare_metrics(pt.index, bi, r.mttf, r.energy.dynamic_total_j(),
                          r.ipc, base.mttf, base.energy.dynamic_total_j(),
                          base.ipc);
    a.policy = spec.policies[pt.policy_i];
    a.workload = spec.workloads[pt.workload_i];
    comparisons.push_back(std::move(a));
  }

  std::vector<core::PolicyKind> policy_order;
  for (std::size_t pi = 0; pi < spec.policies.size(); ++pi)
    if (pi != baseline_pi) policy_order.push_back(spec.policies[pi]);

  return summarize_comparisons(baseline, comparisons, policy_order,
                               spec.workloads);
}

std::string CampaignAggregates::render() const {
  using common::TextTable;
  std::ostringstream out;

  out << "per-policy summary (vs " << core::to_string(baseline) << "):\n";
  TextTable pol({"policy", "n", "MTTF gain (mean)", "MTTF gain (geo)",
                 "MTTF gain [min,max]", "energy ovh % (mean)",
                 "energy ovh % (max)", "speedup (mean)"});
  for (const auto& s : by_policy) {
    pol.add_row({core::to_string(s.policy), std::to_string(s.n),
                 TextTable::fixed(s.mean_mttf_gain, 2),
                 TextTable::fixed(s.geomean_mttf_gain, 2),
                 "[" + TextTable::fixed(s.min_mttf_gain, 2) + ", " +
                     TextTable::fixed(s.max_mttf_gain, 2) + "]",
                 TextTable::fixed(s.mean_energy_overhead_pct, 2),
                 TextTable::fixed(s.max_energy_overhead_pct, 2),
                 TextTable::fixed(s.mean_speedup, 3)});
  }
  out << pol.render();

  out << "\nper-workload summary:\n";
  TextTable wl({"workload", "policy", "MTTF gain", "energy ovh %"});
  for (const auto& w : by_workload) {
    wl.add_row({w.workload, core::to_string(w.policy),
                TextTable::fixed(w.mean_mttf_gain, 2),
                TextTable::fixed(w.mean_energy_overhead_pct, 2)});
  }
  out << wl.render();
  return out.str();
}

}  // namespace reap::campaign

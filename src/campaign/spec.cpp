#include "reap/campaign/spec.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "reap/campaign/seed.hpp"
#include "reap/common/strings.hpp"
#include "reap/trace/spec2006.hpp"

namespace reap::campaign {
namespace {

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const auto comma = s.find(',', pos);
    const auto end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool set_error(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::size_t CampaignSpec::size() const {
  const std::size_t ratios = read_ratios.empty() ? 1 : read_ratios.size();
  const std::size_t scrubs = scrub_everys.empty() ? 1 : scrub_everys.size();
  return workloads.size() * policies.size() * ecc_ts.size() * scrubs *
         ratios * seeds.size();
}

namespace {

// Row keys are pure functions of coordinate *values*, so every axis must
// hold distinct values or two grid points would share a key (and the
// journal/resume machinery would treat them as one row). A duplicate axis
// value is always a spec mistake -- duplicated environment values even
// produce bit-identical experiments -- so reject it loudly.
template <typename T>
void require_distinct(const std::vector<T>& values, const char* axis) {
  for (std::size_t i = 0; i < values.size(); ++i)
    for (std::size_t j = i + 1; j < values.size(); ++j)
      if (values[i] == values[j])
        throw std::invalid_argument(
            std::string("campaign spec: duplicate value on axis ") + axis);
}

}  // namespace

std::vector<CampaignPoint> expand(const CampaignSpec& spec) {
  if (spec.workloads.empty())
    throw std::invalid_argument("campaign spec: no workloads");
  if (spec.policies.empty())
    throw std::invalid_argument("campaign spec: no policies");
  if (spec.ecc_ts.empty())
    throw std::invalid_argument("campaign spec: no ecc_t values");
  if (spec.seeds.empty())
    throw std::invalid_argument("campaign spec: no seeds");
  require_distinct(spec.workloads, "workloads");
  require_distinct(spec.policies, "policies");
  require_distinct(spec.ecc_ts, "ecc");
  require_distinct(spec.scrub_everys, "scrub_every");
  require_distinct(spec.read_ratios, "read_ratios");
  require_distinct(spec.seeds, "seeds");

  std::vector<trace::WorkloadProfile> profiles;
  profiles.reserve(spec.workloads.size());
  for (const auto& name : spec.workloads) {
    const auto p = trace::spec2006_profile(name);
    if (!p) throw std::invalid_argument("campaign spec: unknown workload " + name);
    profiles.push_back(*p);
  }

  const std::size_t n_ratios =
      spec.read_ratios.empty() ? 1 : spec.read_ratios.size();
  const std::size_t n_scrubs =
      spec.scrub_everys.empty() ? 1 : spec.scrub_everys.size();

  std::vector<CampaignPoint> points;
  points.reserve(spec.size());
  for (std::size_t w = 0; w < profiles.size(); ++w)
    for (std::size_t p = 0; p < spec.policies.size(); ++p)
      for (std::size_t e = 0; e < spec.ecc_ts.size(); ++e)
       for (std::size_t sc = 0; sc < n_scrubs; ++sc)
        for (std::size_t r = 0; r < n_ratios; ++r)
          for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
            CampaignPoint pt;
            pt.index = points.size();
            pt.workload_i = w;
            pt.policy_i = p;
            pt.ecc_i = e;
            pt.scrub_i = sc;
            pt.ratio_i = r;
            pt.seed_i = s;

            core::ExperimentConfig cfg = spec.base;
            cfg.workload = profiles[w];
            cfg.policy = spec.policies[p];
            cfg.ecc_t = spec.ecc_ts[e];
            if (!spec.scrub_everys.empty())
              cfg.scrub_every = spec.scrub_everys[sc];
            if (!spec.read_ratios.empty())
              cfg.mtj = mtj::with_read_ratio(spec.read_ratios[r]);

            // Seeds are derived from the *environment* coordinates only
            // (workload, operating point, replica) -- never from the
            // design axes under test (policy, ecc_t) -- so that, e.g.,
            // the REAP and conventional points of one comparison replay
            // the exact same trace (paired comparison, as the paper's
            // figures require).
            const std::uint64_t env_index =
                (w * n_ratios + r) * spec.seeds.size() + s;
            const std::uint64_t derived =
                derive_seed(spec.campaign_seed, env_index, spec.seeds[s]);
            cfg.seed = derived;
            cfg.workload.seed = derive_companion_seed(derived);

            // Row key from coordinate values (see CampaignPoint::key).
            const std::string env_suffix =
                "/rr" +
                (spec.read_ratios.empty()
                     ? std::string("-")
                     : common::fmt_double(spec.read_ratios[r])) +
                "/s" + std::to_string(spec.seeds[s]);
            std::string key = spec.workloads[w];
            key += '/';
            key += core::to_string(spec.policies[p]);
            key += "/t" + std::to_string(spec.ecc_ts[e]);
            key += "/sc" + (spec.scrub_everys.empty()
                                ? std::string("-")
                                : std::to_string(spec.scrub_everys[sc]));
            key += env_suffix;
            pt.key = std::move(key);
            // Trace identity: the environment coordinates alone (the seed
            // derivation's inputs), so equal trace_key <=> identical trace.
            pt.trace_key = spec.workloads[w] + env_suffix;

            pt.config = std::move(cfg);
            points.push_back(std::move(pt));
          }
  return points;
}

std::vector<CampaignPoint> shard(const std::vector<CampaignPoint>& points,
                                 std::size_t shard_index,
                                 std::size_t shard_count) {
  if (shard_count == 0)
    throw std::invalid_argument("shard: shard_count must be positive");
  if (shard_index >= shard_count)
    throw std::invalid_argument("shard: shard_index out of range");
  std::vector<CampaignPoint> out;
  out.reserve(points.size() / shard_count + 1);
  for (const auto& pt : points)
    if (pt.index % shard_count == shard_index) out.push_back(pt);
  return out;
}

std::size_t shard_size(std::size_t n_points, std::size_t shard_index,
                       std::size_t shard_count) {
  if (shard_count == 0)
    throw std::invalid_argument("shard_size: shard_count must be positive");
  if (shard_index >= shard_count)
    throw std::invalid_argument("shard_size: shard_index out of range");
  if (shard_index >= n_points) return 0;
  return (n_points - shard_index - 1) / shard_count + 1;
}

std::string canonical_string(const CampaignSpec& spec) {
  std::ostringstream out;
  out << "reap-campaign-spec-v1\n";
  out << "name=" << spec.name << '\n';
  const auto list = [&out](const char* key, const auto& values,
                           const auto& fmt) {
    out << key << '=';
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out << ',';
      out << fmt(values[i]);
    }
    out << '\n';
  };
  list("workloads", spec.workloads, [](const std::string& s) { return s; });
  list("policies", spec.policies, [](core::PolicyKind p) {
    return core::to_string(p);
  });
  list("ecc", spec.ecc_ts, [](unsigned t) { return std::to_string(t); });
  if (!spec.scrub_everys.empty())
    list("scrub_every", spec.scrub_everys,
         [](std::uint64_t v) { return std::to_string(v); });
  if (!spec.read_ratios.empty())
    list("read_ratios", spec.read_ratios,
         [](double v) { return common::fmt_double(v); });
  list("seeds", spec.seeds, [](std::uint64_t v) { return std::to_string(v); });
  out << "campaign_seed=" << spec.campaign_seed << '\n';
  // Base-config fields a spec (or library caller) can vary. The mtj line
  // covers base operating points set outside the read_ratios axis.
  const auto& b = spec.base;
  out << "instructions=" << b.instructions << '\n'
      << "warmup=" << b.warmup_instructions << '\n'
      << "clock_ghz=" << common::fmt_double(b.clock_ghz) << '\n'
      << "scrub_every=" << b.scrub_every << '\n'
      << "dirty_check=" << (b.check_on_dirty_eviction ? 1 : 0) << '\n'
      // Raw bytes, not KB: rounding here would let two configs in the
      // same 1 KB bucket share a spec hash and cross-resume.
      << "l2_bytes=" << b.hierarchy.l2.capacity_bytes << '\n'
      << "l2_ways=" << b.hierarchy.l2.ways << '\n'
      << "block_bytes=" << b.hierarchy.l2.block_bytes << '\n'
      << "mtj=" << b.mtj.name << '\n'
      << "mtj_read_ratio="
      << common::fmt_double(b.mtj.read_current.value /
                            b.mtj.critical_current.value)
      << '\n';
  return out.str();
}

std::uint64_t spec_hash(const CampaignSpec& spec) {
  return common::fnv1a64(canonical_string(spec));
}

std::optional<CampaignSpec> CampaignSpec::from_kv(
    const std::map<std::string, std::string>& kv, std::string* error) {
  CampaignSpec spec;
  bool ok = true;

  // Strict value parsers: reject garbage, trailing text, and empty lists
  // rather than silently running a wrong-but-plausible campaign.
  const auto u64_value = [&](const std::string& key, const std::string& v,
                             std::uint64_t& out) {
    if (common::parse_u64(v, out)) return true;
    ok = set_error(error, "bad value for " + key + ": '" + v + "'");
    return false;
  };
  const auto u64_list = [&](const std::string& key, const std::string& v,
                            std::vector<std::uint64_t>& out) {
    out.clear();
    for (const auto& item : split_list(v)) {
      std::uint64_t n = 0;
      if (!u64_value(key, item, n)) return;
      out.push_back(n);
    }
    if (out.empty()) ok = set_error(error, "empty list for " + key);
  };

  for (const auto& [key, value] : kv) {
    if (!ok) break;
    if (key == "name") {
      spec.name = value;
    } else if (key == "workloads") {
      spec.workloads = value == "all" ? trace::spec2006_names()
                                      : split_list(value);
      if (spec.workloads.empty())
        ok = set_error(error, "empty list for workloads");
    } else if (key == "policies") {
      spec.policies.clear();
      if (value == "all") {
        spec.policies = core::all_policies();
      } else {
        for (const auto& name : split_list(value)) {
          const auto kind = core::policy_from_string(name);
          if (!kind) {
            ok = set_error(error, "unknown policy: " + name);
            break;
          }
          spec.policies.push_back(*kind);
        }
        if (ok && spec.policies.empty())
          ok = set_error(error, "empty list for policies");
      }
    } else if (key == "ecc") {
      std::vector<std::uint64_t> raw;
      u64_list(key, value, raw);
      spec.ecc_ts.clear();
      for (const auto n : raw) spec.ecc_ts.push_back(unsigned(n));
    } else if (key == "read_ratios") {
      spec.read_ratios.clear();
      for (const auto& v : split_list(value)) {
        double d = 0.0;
        if (!common::parse_double(v, d)) {
          ok = set_error(error, "bad value for read_ratios: '" + v + "'");
          break;
        }
        spec.read_ratios.push_back(d);
      }
      if (ok && spec.read_ratios.empty())
        ok = set_error(error, "empty list for read_ratios");
    } else if (key == "seeds") {
      u64_list(key, value, spec.seeds);
    } else if (key == "campaign_seed") {
      u64_value(key, value, spec.campaign_seed);
    } else if (key == "instructions") {
      u64_value(key, value, spec.base.instructions);
    } else if (key == "warmup") {
      u64_value(key, value, spec.base.warmup_instructions);
    } else if (key == "clock_ghz") {
      if (!common::parse_double(value, spec.base.clock_ghz))
        ok = set_error(error, "bad value for clock_ghz: '" + value + "'");
    } else if (key == "scrub_every") {
      // A list populates the scrub axis; a single value degenerates to the
      // old scalar behaviour (axis of one).
      u64_list(key, value, spec.scrub_everys);
    } else if (key == "dirty_check") {
      spec.base.check_on_dirty_eviction = value == "1" || value == "true";
    } else if (key == "l2_kb") {
      std::uint64_t n = 0;
      if (u64_value(key, value, n))
        spec.base.hierarchy.l2.capacity_bytes = n * 1024;
    } else if (key == "l2_ways") {
      std::uint64_t n = 0;
      if (u64_value(key, value, n))
        spec.base.hierarchy.l2.ways = std::size_t(n);
    } else if (key == "block_bytes") {
      std::uint64_t n = 0;
      if (u64_value(key, value, n))
        spec.base.hierarchy.l2.block_bytes = std::size_t(n);
    } else {
      ok = set_error(error, "unknown spec key: " + key);
    }
  }
  if (!ok) return std::nullopt;
  if (spec.workloads.empty()) {
    set_error(error, "spec missing: workloads");
    return std::nullopt;
  }
  if (spec.policies.empty()) {
    set_error(error, "spec missing: policies");
    return std::nullopt;
  }
  return spec;
}

std::optional<std::map<std::string, std::string>> parse_spec_file(
    const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    set_error(error, "cannot open spec file: " + path);
    return std::nullopt;
  }
  std::map<std::string, std::string> kv;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      set_error(error, path + ":" + std::to_string(lineno) +
                           ": expected `key = value`");
      return std::nullopt;
    }
    kv[trim(line.substr(0, eq))] = trim(line.substr(eq + 1));
  }
  return kv;
}

const std::vector<std::string>& spec_cli_keys() {
  // Mirrors the from_kv dispatch above; from_kv rejects anything else, so
  // a key added there without being listed here fails loudly on the CLI.
  static const std::vector<std::string> keys = {
      "name",        "workloads",     "policies",    "ecc",
      "read_ratios", "seeds",         "campaign_seed", "instructions",
      "warmup",      "clock_ghz",     "scrub_every", "dirty_check",
      "l2_kb",       "l2_ways",       "block_bytes"};
  return keys;
}

std::optional<std::map<std::string, std::string>> spec_kv_from_cli(
    const common::CliArgs& args, std::string* error) {
  std::map<std::string, std::string> kv;
  if (args.has("spec")) {
    auto file_kv = parse_spec_file(args.get_string("spec", ""), error);
    if (!file_kv) return std::nullopt;
    kv = std::move(*file_kv);
  }
  for (const auto& key : spec_cli_keys())
    if (args.has(key)) kv[key] = args.get_string(key, "");
  return kv;
}

}  // namespace reap::campaign

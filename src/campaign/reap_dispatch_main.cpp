// reap_dispatch: one-command distributed campaign. Expands a spec, splits
// it into shards, keeps a pool of reap_campaign worker processes busy
// (restarting crashed workers from their journals, reassigning shards
// whose workers keep dying), live-tails the shard journals into one
// progress line, and merges the journals into CSV/JSONL/figures
// byte-identical to a single-process run. See docs/campaign.md.
//
// Usage:
//   reap_dispatch --spec=specs/fig5.spec --workers=8 --csv=fig5.csv
//   reap_dispatch --spec=grid.spec --workers=4 --jobs=16 --figures=figdata/
//   reap_dispatch --spec=grid.spec --workers=2 --work-dir=run1   # re-run to resume
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <unordered_set>

#include "reap/campaign/aggregate.hpp"
#include "reap/campaign/cli_usage.hpp"
#include "reap/campaign/dispatch.hpp"
#include "reap/campaign/exit_codes.hpp"
#include "reap/campaign/progress.hpp"
#include "reap/campaign/result_sink.hpp"
#include "reap/campaign/trace_cache.hpp"
#include "reap/campaign/transport.hpp"
#include "reap/campaign/version.hpp"
#include "reap/common/cli.hpp"
#include "reap/common/fault.hpp"
#include "reap/common/strings.hpp"

using namespace reap;

namespace {

int usage(const char* argv0) {
  std::printf(campaign::kDispatchUsage, argv0);
  return 0;
}

// reap_campaign normally sits next to reap_dispatch; a bare name (PATH
// lookup) is the fallback when argv[0] carries no directory.
std::string default_campaign_binary(const char* argv0) {
  const auto dir = std::filesystem::path(argv0).parent_path();
  if (dir.empty()) return "reap_campaign";
  return (dir / "reap_campaign").string();
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  if (args.has("help")) return usage(argv[0]);
  if (args.has("version")) {
    std::puts(campaign::build_info_line("reap_dispatch").c_str());
    return 0;
  }

  // Fault injection (chaos testing). --inject-fault arms sites in *this*
  // process (worker.spawn, tailer.read); REAP_FAULT is inherited by the
  // spawned workers too, so worker-side sites (runner.point,
  // journal.write, ...) are armed through the environment.
  {
    std::string ferr;
    if (!common::fault::arm_from_env(&ferr)) {
      std::fprintf(stderr, "bad %s: %s\n", common::fault::kEnvVar,
                   ferr.c_str());
      return 1;
    }
    if (args.has("inject-fault") &&
        !common::fault::arm(args.get_string("inject-fault", ""), &ferr)) {
      std::fprintf(stderr, "bad --inject-fault: %s\n", ferr.c_str());
      return 1;
    }
  }

  std::string error;
  const auto kv = campaign::spec_kv_from_cli(args, &error);
  if (!kv) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (kv->empty()) return usage(argv[0]);
  const auto spec = campaign::CampaignSpec::from_kv(*kv, &error);
  if (!spec) {
    std::fprintf(stderr, "bad spec: %s\n", error.c_str());
    return 1;
  }

  campaign::DispatchOptions opts;
  opts.campaign_binary =
      args.get_string("campaign-bin", default_campaign_binary(argv[0]));
  opts.work_dir = args.get_string("work-dir", spec->name + ".dispatch");
  opts.workers = std::size_t(args.get_u64("workers", 0));
  opts.jobs = std::size_t(args.get_u64("jobs", 0));
  opts.worker_threads = std::size_t(args.get_u64("worker-threads", 1));
  opts.max_attempts = std::size_t(args.get_u64("max-attempts", 3));
  opts.trace_cache_mb = std::size_t(args.get_u64("trace-cache-mb", 0));
  opts.trace_dir = args.get_string("trace-dir", "");
  opts.stall_timeout =
      std::chrono::milliseconds(args.get_u64("stall-timeout", 0) * 1000);
  opts.backoff_base =
      std::chrono::milliseconds(args.get_u64("backoff-ms", 100));
  opts.fail_fast = args.has("fail-fast");
  opts.max_quarantine = std::size_t(args.get_u64("max-quarantine", 4));

  // --hosts: multi-host dispatch. The file's transports replace the
  // default local pool; the handshake refuses hosts whose reap_campaign
  // answers --version with a different build line (fleet skew).
  if (args.has("hosts")) {
    const auto hosts_path = args.get_string("hosts", "");
    const auto hosts = campaign::parse_hosts_file(hosts_path, &error);
    if (!hosts) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    for (auto h : *hosts) {
      if (h.name == "local") {
        opts.transports.push_back(std::make_shared<campaign::LocalTransport>(
            h.remote_binary.empty() ? opts.campaign_binary : h.remote_binary,
            h.slots));
        continue;
      }
      if (h.remote_binary.empty()) h.remote_binary = opts.campaign_binary;
      if (h.remote_dir.empty())
        h.remote_dir = opts.work_dir + "/remote-" + h.name;
      opts.transports.push_back(
          std::make_shared<campaign::SshTransport>(std::move(h)));
    }
    opts.expected_worker_version =
        campaign::build_info_line("reap_campaign");
  }
  opts.on_host_lost = [](const std::string& host, const std::string& why) {
    std::fprintf(stderr, "\nlost host: %s (%s); redistributing its shards\n",
                 host.c_str(), why.c_str());
  };
  opts.on_host_note = [](const std::string&, const std::string& note) {
    std::fprintf(stderr, "note: %s\n", note.c_str());
  };

  // Consume every real flag before --dry-run can exit, so the unused-flag
  // typo warning never fires on flags the full run would honor.
  const bool quiet = args.has("quiet");
  const bool want_csv = args.has("csv");
  const bool want_jsonl = args.has("jsonl");
  const bool want_figures = args.has("figures");
  const auto csv_path = args.get_string("csv", "");
  const auto jsonl_path = args.get_string("jsonl", "");
  const auto figures_dir = args.get_string("figures", "");
  const auto baseline_name = args.get_string("baseline", "conventional");

  if (args.has("dry-run")) {
    std::vector<campaign::CampaignPoint> points;
    try {
      points = campaign::expand(*spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    // The exact plan Dispatcher::run would execute, including a shard
    // split adopted from existing work-dir journals.
    const auto plan =
        campaign::plan_dispatch(*spec, points.size(), opts, &error);
    if (!plan) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf(
        "campaign '%s': %zu points, %zu shards%s, %zu worker slots "
        "(<= %zu concurrent)\n",
        spec->name.c_str(), points.size(), plan->n_shards,
        plan->adopted_split ? " (split adopted from work-dir journals)" : "",
        plan->workers, std::min(plan->workers, plan->n_shards));
    std::printf("work dir: %s\n", opts.work_dir.c_str());
    // Trace-group plan next to the shard plan. Index striping scatters a
    // trace group's points across every shard, so each worker
    // materializes its shard's groups independently (caches are
    // per-process).
    const auto tplan = campaign::trace_plan(points);
    const double largest_mb =
        static_cast<double>(tplan.largest_bytes) / (1024.0 * 1024.0);
    if (opts.trace_cache_mb > 0)
      std::printf(
          "trace groups: %zu (largest ~%.1f MB; est. peak ~%.1f MB "
          "materialized per worker, cache cap %zu MB each)\n",
          tplan.groups, largest_mb,
          largest_mb * static_cast<double>(
                           std::max<std::size_t>(1, opts.worker_threads)),
          opts.trace_cache_mb);
    else
      std::printf(
          "trace groups: %zu (largest ~%.1f MB; replay off — enable with "
          "--trace-cache-mb=N)\n",
          tplan.groups, largest_mb);
    for (std::size_t i = 0; i < plan->n_shards; ++i)
      std::printf("  shard %zu/%zu: %zu points  (%s --shard=%zu/%zu ...)\n",
                  i, plan->n_shards,
                  campaign::shard_size(points.size(), i, plan->n_shards),
                  opts.campaign_binary.c_str(), i, plan->n_shards);
    common::warn_unused(args);
    return 0;
  }

  campaign::ProgressReporter progress;
  if (!quiet) {
    opts.on_progress = [&progress](std::size_t done, std::size_t total) {
      progress(done, total);
    };
    opts.on_worker_exit = [](std::size_t shard, std::size_t attempt,
                             bool ok, bool will_retry) {
      if (ok) return;
      std::fprintf(stderr, "\nworker for shard %zu died (attempt %zu); %s\n",
                   shard, attempt + 1,
                   will_retry ? "restarting with --resume"
                              : "giving up on this shard");
    };
  }
  // Validate the post-run flags and warn about typos up front: a bad
  // baseline name must not surface only after hours of simulation.
  std::optional<core::PolicyKind> baseline;
  if (baseline_name != "none") {
    baseline = core::policy_from_string(baseline_name);
    if (!baseline) {
      std::fprintf(stderr, "unknown --baseline policy: %s\n",
                   baseline_name.c_str());
      return 1;
    }
  } else if (want_figures) {
    std::fprintf(stderr,
                 "--figures needs aggregates; do not pass "
                 "--baseline=none with it\n");
    return 1;
  }
  common::warn_unused(args);

  campaign::Dispatcher dispatcher(*kv, opts);
  std::printf("dispatching campaign '%s' from %s\n", spec->name.c_str(),
              opts.work_dir.c_str());
  const auto run = dispatcher.run();
  if (!run.ok) {
    std::fprintf(stderr, "%s\n", run.error.c_str());
    switch (run.status) {
      case campaign::DispatchStatus::spec_mismatch:
        return campaign::kDispatchSpecMismatch;
      case campaign::DispatchStatus::abandoned:
        return campaign::kDispatchAbandoned;
      default:
        return campaign::kDispatchError;
    }
  }
  std::printf("%zu points across %zu shards complete", run.points,
              run.shards.size());
  if (run.restarts > 0)
    std::printf(" (%zu worker restart%s)", run.restarts,
                run.restarts == 1 ? "" : "s");
  if (run.stalls > 0)
    std::printf(" (%zu stalled worker%s killed)", run.stalls,
                run.stalls == 1 ? "" : "s");
  if (!run.quarantined.empty())
    std::printf(" (%zu point%s quarantined)", run.quarantined.size(),
                run.quarantined.size() == 1 ? "" : "s");
  if (!run.lost_hosts.empty())
    std::printf(" (%zu host%s lost)", run.lost_hosts.size(),
                run.lost_hosts.size() == 1 ? "" : "s");
  std::printf("\n");
  for (const auto& q : run.quarantined)
    std::fprintf(stderr, "quarantined: %s (index %llu, shard %zu): %s\n",
                 q.key.c_str(), static_cast<unsigned long long>(q.index),
                 q.shard, q.reason.c_str());

  // Merge step: shard journals -> one index-ordered table, re-emitted
  // through the ordinary sinks -- byte-identical to an un-sharded run,
  // minus exactly the quarantined rows (whose indices must account for
  // every hole; any other hole is a merge failure).
  auto merged = campaign::merge_dispatch_journals(run.journal_paths(), &error);
  if (!merged) {
    std::fprintf(stderr, "merge failed: %s\n", error.c_str());
    return campaign::kDispatchError;
  }
  if (run.quarantined.empty()) {
    if (!campaign::covers_all_indices(*merged)) {
      std::fprintf(stderr, "merge failed: journals do not cover the grid\n");
      return campaign::kDispatchError;
    }
  } else {
    const auto index_col = merged->col("index");
    if (!index_col) {
      std::fprintf(stderr, "merge failed: no `index` column\n");
      return campaign::kDispatchError;
    }
    std::unordered_set<std::uint64_t> present;
    for (const auto& row : merged->rows) {
      std::uint64_t idx = 0;
      if (common::parse_u64(row[*index_col], idx)) present.insert(idx);
    }
    std::unordered_set<std::uint64_t> poisoned;
    for (const auto& q : run.quarantined) poisoned.insert(q.index);
    for (std::uint64_t i = 0; i < run.points; ++i) {
      if (!present.count(i) && !poisoned.count(i)) {
        std::fprintf(stderr,
                     "merge failed: row %llu is missing but not "
                     "quarantined\n",
                     static_cast<unsigned long long>(i));
        return campaign::kDispatchError;
      }
      if (present.count(i) && poisoned.count(i)) {
        std::fprintf(stderr,
                     "merge failed: row %llu is quarantined yet present in "
                     "the journals\n",
                     static_cast<unsigned long long>(i));
        return campaign::kDispatchError;
      }
    }
  }
  if ((want_csv || want_jsonl) &&
      merged->header != campaign::result_header()) {
    std::fprintf(stderr,
                 "cannot write merged rows: worker journals use a different "
                 "column schema than this binary\n");
    return campaign::kDispatchError;
  }
  const auto emit_merged = [&](campaign::ResultSink& sink, bool ok,
                               const char* what, const std::string& path) {
    if (!ok) {
      std::fprintf(stderr, "cannot write %s output: %s\n", what,
                   path.c_str());
      return false;
    }
    for (const auto& row : merged->rows) sink.add_cells(row);
    return true;
  };
  if (want_csv) {
    campaign::CsvResultSink csv(csv_path);
    if (!emit_merged(csv, csv.ok(), "csv", csv_path))
      return campaign::kDispatchError;
  }
  if (want_jsonl) {
    campaign::JsonlResultSink jsonl(jsonl_path);
    if (!emit_merged(jsonl, jsonl.ok(), "jsonl", jsonl_path))
      return campaign::kDispatchError;
  }

  if (!run.quarantined.empty()) {
    // Aggregates (and figures) need the full grid; a quarantined run is
    // complete-minus-named-rows by construction, so say so and exit with
    // the distinct code instead of failing.
    if (baseline)
      std::printf(
          "(skipping aggregates: %zu quarantined row%s leave the grid "
          "partial; see %s/quarantine.jsonl)\n",
          run.quarantined.size(), run.quarantined.size() == 1 ? "" : "s",
          opts.work_dir.c_str());
    return campaign::kDispatchQuarantined;
  }

  std::optional<campaign::CampaignAggregates> agg;
  if (baseline) {
    agg = campaign::aggregate_rows(*merged, *baseline, &error);
    if (!agg) {
      std::fprintf(stderr, "no aggregates: %s\n", error.c_str());
      return campaign::kDispatchError;
    }
    std::printf("\n%s", agg->render().c_str());
  }
  if (want_figures) {
    const auto written =
        campaign::write_figure_data(*agg, figures_dir, &error);
    if (!written) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return campaign::kDispatchError;
    }
    for (const auto& path : *written)
      std::fprintf(stderr, "wrote %s\n", path.c_str());
  }
  // Every row ran and merged, but the fleet shrank along the way: the
  // outputs above are complete, and the exit code says hosts were lost.
  if (run.status == campaign::DispatchStatus::host_lost)
    return campaign::kDispatchHostLost;
  return campaign::kDispatchOk;
}

// The --help text of the three campaign CLIs, in one header so the mains
// and the documentation cross-check share the same bytes: each tool
// printf()s its string (the lone %s is argv[0]), and
// tests/campaign/test_docs.cpp extracts every --flag token from these
// strings and verifies docs/cli.md documents exactly that set, per tool.
// Add a flag to a main without adding it here (or to the docs) and the
// test fails -- the reference cannot rot.
#pragma once

namespace reap::campaign {

inline constexpr char kCampaignUsage[] =
    "usage: %s [--spec=FILE] [--key=value ...]\n"
    "\n"
    "spec keys (file or flags; flags override the file):\n"
    "  workloads=a,b|all     policies=conventional,reap,...|all\n"
    "  ecc=1,2               read_ratios=0.55,0.693,0.8\n"
    "  seeds=0,1,2           campaign_seed=N\n"
    "  instructions=N        warmup=N        clock_ghz=G\n"
    "  scrub_every=N,N,...   dirty_check=0|1\n"
    "  l2_kb=N  l2_ways=N    block_bytes=N   name=STR\n"
    "\n"
    "runner/output flags:\n"
    "  --threads=N           worker threads (0 = all cores)\n"
    "  --baseline=POLICY     aggregate vs this policy (default\n"
    "                        conventional; 'none' to skip aggregates)\n"
    "  --csv=PATH            per-experiment rows as CSV\n"
    "  --jsonl=PATH          per-experiment rows as JSONL\n"
    "  --quiet               no progress line\n"
    "  --dry-run             expand and list the grid, run nothing\n"
    "\n"
    "sharding / durability:\n"
    "  --shard=I/N           run only grid rows with index %% N == I;\n"
    "                        merge shard outputs with reap_report\n"
    "  --journal=PATH        journal each row as it completes (JSONL,\n"
    "                        crash-safe; rows survive a killed run)\n"
    "  --resume              skip rows already in --journal and\n"
    "                        continue (refuses a journal whose spec\n"
    "                        hash or shard assignment differs)\n"
    "\n"
    "other modes:\n"
    "  --config=\"k=v ...\"    run exactly one experiment from a row's\n"
    "                        config string and print its row\n"
    "  --list-workloads      bundled workload profile names\n"
    "  --list-policies       read-path policy names\n"
    "  --help                this text\n";

inline constexpr char kReportUsage[] =
    "usage: %s [flags] ROWS [ROWS...]\n"
    "\n"
    "ROWS are campaign row files: .csv / .jsonl sink output or an\n"
    "execution journal. Multiple files (e.g. the outputs of --shard\n"
    "runs) are merged by grid index before any processing.\n"
    "\n"
    "flags:\n"
    "  --baseline=POLICY     aggregate vs this policy (default\n"
    "                        conventional; 'none' skips the tables)\n"
    "  --merged-csv=PATH     write the merged rows as CSV (byte-\n"
    "                        identical to a single-process run)\n"
    "  --merged-jsonl=PATH   write the merged rows as JSONL\n"
    "  --figures=DIR         write fig5/fig6/policy-summary CSV data\n"
    "                        and gnuplot scripts into DIR\n"
    "  --help                this text\n";

inline constexpr char kDispatchUsage[] =
    "usage: %s --spec=FILE [--key=value ...] [--workers=K] [flags]\n"
    "\n"
    "Distributes a campaign across a pool of reap_campaign worker\n"
    "processes: expands the spec, splits it into shards, runs each shard\n"
    "as `reap_campaign --shard=i/N --journal=... --resume`, restarts a\n"
    "crashed worker from its journal, reassigns a shard whose worker\n"
    "keeps dying, live-tails the journals into one progress line, and\n"
    "merges the shard journals into output byte-identical to a\n"
    "single-process run. Spec keys are the same file-or-flag set\n"
    "reap_campaign accepts (see its --help).\n"
    "\n"
    "distribution flags:\n"
    "  --workers=K           worker process slots (0 = all cores); at\n"
    "                        most one worker runs per pending shard,\n"
    "                        spare slots host reassigned shards\n"
    "  --jobs=N              shard count (default: the worker count;\n"
    "                        N > K queues shards and backfills idle\n"
    "                        workers)\n"
    "  --worker-threads=T    simulation threads per worker (default 1)\n"
    "  --work-dir=DIR        journals + worker logs; a re-run with the\n"
    "                        same dir resumes completed rows (default:\n"
    "                        <campaign-name>.dispatch)\n"
    "  --campaign-bin=PATH   reap_campaign binary to launch (default:\n"
    "                        next to this binary)\n"
    "  --max-attempts=M      give up on a shard after M failed worker\n"
    "                        attempts (default 3)\n"
    "\n"
    "merged-output flags (after all shards complete):\n"
    "  --csv=PATH            merged rows as CSV, byte-identical to an\n"
    "                        un-sharded reap_campaign run\n"
    "  --jsonl=PATH          merged rows as JSONL\n"
    "  --baseline=POLICY     aggregate vs this policy (default\n"
    "                        conventional; 'none' to skip aggregates)\n"
    "  --figures=DIR         fig5/fig6/policy-summary CSV + gnuplot\n"
    "\n"
    "other:\n"
    "  --quiet               no progress line\n"
    "  --dry-run             print the shard plan, launch nothing\n"
    "  --help                this text\n";

}  // namespace reap::campaign

// Cross-experiment aggregates: the paper's headline numbers computed over
// a whole campaign.
//
// Every non-baseline point is matched with the baseline-policy point that
// shares its (workload, ecc_t, operating point, seed) coordinates, giving
// per-point MTTF gain / energy overhead / IPC delta (Figs. 5 and 6); these
// are then summarized per policy and per workload. Aggregation always
// iterates in grid-index order over an index-ordered results vector, so the
// numbers -- and their rendered text -- are bit-identical for any runner
// thread count.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "reap/campaign/spec.hpp"
#include "reap/core/experiment.hpp"
#include "reap/reliability/mttf.hpp"

namespace reap::campaign {

// One matched (policy point, baseline point) comparison.
struct PointComparison {
  std::size_t index = 0;           // the non-baseline point
  std::size_t baseline_index = 0;  // its baseline partner
  double mttf_gain = 0.0;          // MTTF_point / MTTF_baseline (Fig. 5)
  double energy_ratio = 0.0;       // E_point / E_baseline       (Fig. 6)
  double energy_overhead_pct = 0.0;
  double speedup = 0.0;  // IPC_point / IPC_baseline
};

// The per-comparison metrics from the raw quantities both sources can
// supply: the in-memory ExperimentResult pair and a CSV/JSONL row pair
// (whose shortest-round-trip cells parse back to the exact doubles). Both
// aggregation paths funnel through this one function so their numbers --
// and rendered reports -- cannot drift apart.
PointComparison compare_metrics(std::size_t index, std::size_t baseline_index,
                                const reliability::MttfResult& mttf,
                                double energy_j, double ipc,
                                const reliability::MttfResult& base_mttf,
                                double base_energy_j, double base_ipc);

// A comparison annotated with the grouping coordinates summaries need.
struct AnnotatedComparison {
  PointComparison c;
  core::PolicyKind policy;  // the non-baseline policy
  std::string workload;
};

struct PolicySummary {
  core::PolicyKind policy;
  std::size_t n = 0;
  double mean_mttf_gain = 0.0;
  double geomean_mttf_gain = 0.0;
  double min_mttf_gain = 0.0;
  double max_mttf_gain = 0.0;
  double mean_energy_overhead_pct = 0.0;
  double max_energy_overhead_pct = 0.0;
  double mean_speedup = 0.0;
};

struct WorkloadSummary {
  std::string workload;
  core::PolicyKind policy;
  double mean_mttf_gain = 0.0;
  double mean_energy_overhead_pct = 0.0;
};

struct CampaignAggregates {
  core::PolicyKind baseline;
  std::vector<PointComparison> comparisons;
  std::vector<PolicySummary> by_policy;      // spec policy order, no baseline
  std::vector<WorkloadSummary> by_workload;  // workload-major, policy-minor

  // ASCII report (TextTable-based) of both summaries.
  std::string render() const;
};

// Shared summarization: builds by_policy / by_workload from comparisons in
// their given order (must be grid-index order for determinism).
// `policy_order` lists the non-baseline policies, `workload_order` the
// workloads, in the order summaries should appear. Used by aggregate()
// and by the offline row-based aggregation in report.hpp.
CampaignAggregates summarize_comparisons(
    core::PolicyKind baseline,
    const std::vector<AnnotatedComparison>& comparisons,
    const std::vector<core::PolicyKind>& policy_order,
    const std::vector<std::string>& workload_order);

// Computes aggregates for `spec`'s expansion `points` with `results`
// indexed by CampaignPoint::index. Returns nullopt when `baseline` is not
// one of the spec's policies (nothing to normalize against).
std::optional<CampaignAggregates> aggregate(
    const CampaignSpec& spec, const std::vector<CampaignPoint>& points,
    const std::vector<core::ExperimentResult>& results,
    core::PolicyKind baseline);

}  // namespace reap::campaign

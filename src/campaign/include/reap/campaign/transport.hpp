// Worker transports: how the dispatcher launches and observes workers.
//
// The dispatcher's supervision loop (tail journals, watchdog stalls,
// restart with backoff, quarantine poison) does not care *where* a
// `reap_campaign` worker runs -- only that rows land in a local journal
// it can tail. A WorkerTransport owns that difference:
//
//   LocalTransport  today's path: fork/exec the binary, journal written
//                   directly to the shard's local journal via --resume.
//   SshTransport    the worker runs on a remote host (launched through
//                   an ssh-style command). It journals to its *own*
//                   disk and mirrors every journal line over stdout as
//                   CRC32C-framed records (reap_campaign
//                   --journal-stdout, common/frame.hpp); the transport
//                   decodes the stream and appends intact rows to the
//                   authoritative local journal. The tailer, watchdog,
//                   and byte-identical merge then work unchanged.
//
// Failure mapping is the point of the design: a dropped connection, a
// stalled stream, and a corrupted frame all leave the local journal a
// durable prefix of the shard's work, so the existing restart machinery
// recovers them -- relaunch the shard, skip the rows that made it,
// re-run the rest. Remote attempts always start a fresh remote journal
// and are told what is already done via --skip-rows, so a reconnect
// never duplicates a row. Hosts that keep failing are quarantined by
// the dispatcher (drained from the slot pool); see dispatch.hpp.
//
// Fault sites `transport.connect` (handshake/launch) and
// `transport.stream` (the journal stream), with kinds drop/stall/
// garble, drive every one of these paths in tests.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "reap/common/subprocess.hpp"

namespace reap::campaign {

// One line of a --hosts file:
//
//   <host> [slots] [binary=PATH] [dir=PATH] [ssh=CMD]   # comment
//
// `slots` defaults to 1. `binary` and `dir` default to the dispatcher's
// campaign binary and <work_dir>/remote-<host>; `ssh` is the command the
// host is reached through (default "ssh", split on spaces -- a test stub
// like tools/fake_ssh.sh slots in here). The reserved host name "local"
// runs its slots in-process-host through LocalTransport.
struct HostSpec {
  std::string name;
  std::size_t slots = 1;
  std::string remote_binary;
  std::string remote_dir;
  std::string ssh_command;
};

// Parses hosts-file text / the file at `path`. Returns nullopt and sets
// `error` (with a line number) on bad grammar, zero hosts, a duplicate
// host, or an unreadable file.
std::optional<std::vector<HostSpec>> parse_hosts(const std::string& text,
                                                 std::string* error = nullptr);
std::optional<std::vector<HostSpec>> parse_hosts_file(
    const std::string& path, std::string* error = nullptr);

// Everything a transport needs to launch one shard attempt. The
// dispatcher fills it; the transport turns it into an argv.
struct WorkerPlan {
  std::size_t shard = 0;
  // Spec/shard/threads/trace flags, transport-independent. The transport
  // adds the journal and row-exclusion flags itself, because those are
  // where local and remote execution genuinely differ.
  std::vector<std::string> flags;
  // Keys the attempt must not run (quarantined + probe exclusions).
  std::vector<std::string> skip;
  // Keys already durable in the local journal. Local workers skip them
  // via --resume on that same journal; remote workers (fresh remote
  // journal every attempt) get them appended to --skip-rows.
  std::vector<std::string> done;
  std::string journal_path;  // authoritative local journal
  std::string log_path;
};

// One running worker, however it runs. poll()/kill() mirror
// common::Child; pump()/drain() give stream-backed workers a place to
// move bytes from the wire into the local journal (no-ops for local
// workers). Destroying a handle kills and reaps whatever is running.
class WorkerHandle {
 public:
  virtual ~WorkerHandle() = default;

  virtual long pid() const = 0;
  virtual std::optional<common::ExitStatus> poll() = 0;
  virtual bool kill(int sig = 9) = 0;

  // Called every supervisor tick while the worker runs: consume whatever
  // the stream has buffered (never blocks).
  virtual void pump() {}

  // Called once after poll() reports an exit: consume the stream's
  // remainder so rows that landed just before death are not lost.
  virtual void drain() {}

  // Whether `status` says the *machine/connection* failed (stream lost,
  // stalled, ssh's exit 255) rather than the worker itself -- what the
  // dispatcher counts toward quarantining the host instead of burning
  // the shard's failure budget.
  virtual bool host_failure(const common::ExitStatus& status) const {
    (void)status;
    return false;
  }
};

enum class HandshakeStatus {
  ok,
  unreachable,  // host cannot run workers now; dispatch degrades past it
  mismatch,     // host runs a *different build* -- a hard configuration
                // error (fleet skew corrupts the merge), never degraded
};

class WorkerTransport {
 public:
  virtual ~WorkerTransport() = default;

  virtual const std::string& host() const = 0;
  virtual std::size_t slots() const = 0;
  virtual bool local() const = 0;

  // Pre-flight check, once per dispatch. Remote transports verify the
  // worker binary answers --version with `expected_version` (empty =
  // don't check) and probe `trace_dir` (empty = don't probe); a missing
  // trace dir is reported once through `note` and the transport launches
  // workers without --trace-dir (falling back to generation) instead of
  // silently diverging. `error` is set for both failure statuses.
  virtual HandshakeStatus handshake(const std::string& expected_version,
                                    const std::string& trace_dir,
                                    std::string* error,
                                    std::string* note) = 0;

  // Starts one worker for `plan`. Returns nullptr and sets `error` on
  // failure; `transient` follows Child::spawn's retry classification.
  virtual std::unique_ptr<WorkerHandle> launch(const WorkerPlan& plan,
                                               std::string* error,
                                               bool* transient) = 0;
};

// Today's path, unchanged semantics: fork/exec `binary` with the shard
// journal and --resume; stdout+stderr go to the shard log.
class LocalTransport final : public WorkerTransport {
 public:
  LocalTransport(std::string binary, std::size_t slots);

  const std::string& host() const override { return host_; }
  std::size_t slots() const override { return slots_; }
  bool local() const override { return true; }
  HandshakeStatus handshake(const std::string&, const std::string&,
                            std::string*, std::string*) override {
    return HandshakeStatus::ok;
  }
  std::unique_ptr<WorkerHandle> launch(const WorkerPlan& plan,
                                       std::string* error,
                                       bool* transient) override;

 private:
  std::string binary_;
  std::size_t slots_;
  std::string host_ = "local";
};

// Launches workers on `spec.name` through `spec.ssh_command` and feeds
// their framed stdout stream into the local shard journal. The caller
// must resolve remote_binary and remote_dir before constructing.
class SshTransport final : public WorkerTransport {
 public:
  explicit SshTransport(HostSpec spec);

  const std::string& host() const override { return spec_.name; }
  std::size_t slots() const override { return spec_.slots; }
  bool local() const override { return false; }
  HandshakeStatus handshake(const std::string& expected_version,
                            const std::string& trace_dir, std::string* error,
                            std::string* note) override;
  std::unique_ptr<WorkerHandle> launch(const WorkerPlan& plan,
                                       std::string* error,
                                       bool* transient) override;

 private:
  std::vector<std::string> ssh_argv(const std::string& remote_cmd) const;

  HostSpec spec_;
  // Set by handshake: the host has no trace store, so --trace-dir is
  // withheld from its launches (generation fallback).
  bool trace_dir_missing_ = false;
};

}  // namespace reap::campaign

// Campaign-level trace replay cache.
//
// Every point of one paired comparison (the policy / ecc / scrub design
// axes) replays the byte-identical op stream — the seed rule guarantees it
// (spec.hpp / seed.hpp) and CampaignPoint::trace_key names it. The cache
// materializes each distinct trace once (trace::MaterializedTrace) and
// hands shared references to every grid point of the group, so the
// RNG-driven generation cost is paid once per *trace*, not once per grid
// point. Combined with the runner's group_key schedule (points of one
// trace group run contiguously), a cap of roughly one trace per worker
// thread already serves a whole campaign.
//
// Memory discipline: the cache accounts the real arena bytes of every
// trace it retains and evicts least-recently-used idle entries to stay
// under cap_bytes. A trace whose arena alone exceeds the cap is handed to
// the requester uncached (still correct — every consumer can rematerialize
// — just unshared). In-use traces are never evicted: consumers hold
// shared_ptrs, so eviction only drops the cache's reference and the arena
// dies when its last replayer finishes.
//
// Thread-safe; concurrent requests for one key materialize once (single
// flight) while the other requesters block on the entry.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "reap/campaign/spec.hpp"
#include "reap/trace/replay.hpp"

namespace reap::campaign {

// The trace-group plan of a point list: the number of distinct trace
// keys (traces to materialize) and the estimated arena bytes of the
// largest one. Shared by the reap_campaign and reap_dispatch --dry-run
// reports so the two plans cannot drift.
struct TracePlan {
  std::size_t groups = 0;
  std::size_t largest_bytes = 0;
};
TracePlan trace_plan(const std::vector<CampaignPoint>& points);

// Counters are cumulative and readable while the campaign runs (the
// progress line samples hits/misses); loads are relaxed snapshots.
struct TraceCacheStats {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};      // includes uncached oversize
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> uncached{0};    // oversize bypasses
  std::atomic<std::size_t> bytes{0};         // currently accounted
  std::atomic<std::size_t> peak_bytes{0};    // max of bytes over the run
};

class TraceCache {
 public:
  using TracePtr = std::shared_ptr<const trace::MaterializedTrace>;
  using Materializer = std::function<trace::MaterializedTrace()>;

  // cap_bytes: retained-arena budget. The cap bounds what the cache keeps;
  // it is a cache, never a correctness gate — an oversize trace streams
  // through uncached rather than failing.
  explicit TraceCache(std::size_t cap_bytes) : cap_bytes_(cap_bytes) {}

  // The trace for `key`: the cached arena on a hit, otherwise the result
  // of `make()` (run outside the lock; concurrent same-key requests wait
  // for the one in flight instead of materializing again).
  TracePtr acquire(const std::string& key, const Materializer& make);

  std::size_t cap_bytes() const { return cap_bytes_; }
  const TraceCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    TracePtr trace;             // null while the materialization is in flight
    bool building = false;
    std::list<std::string>::iterator lru;  // valid when trace != null
  };

  void evict_idle_locked(std::size_t incoming);

  const std::size_t cap_bytes_;
  TraceCacheStats stats_;
  std::mutex mu_;
  std::condition_variable built_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  // Keys whose arena is known to exceed the cap (trace size is a pure
  // function of the key). Later acquires materialize immediately instead
  // of funnelling through the single-flight protocol — concurrent bypass
  // builds of one key must run in parallel, exactly as they would with
  // the cache off.
  std::unordered_set<std::string> oversize_;
};

}  // namespace reap::campaign

// ResultSink: streams per-experiment rows to durable formats.
//
// Sinks consume *rendered* rows (the cell vector of result_cells), so the
// same bytes flow whether a row arrives straight from the runner or is
// replayed from a journal / merged from shard outputs -- the byte-identical
// merge guarantee rests on this. Rows must be fed in grid-index order, and
// every row ends with the full config_kv string, so each line of output is
// independently reproducible: paste the kv string back into
// `reap_campaign --config="..."` (or core::config_from_kv) to re-run
// exactly that point.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "reap/campaign/spec.hpp"
#include "reap/core/experiment.hpp"

namespace reap::campaign {

// Column names of the flattened per-experiment row.
std::vector<std::string> result_header();

// One row; cells align 1:1 with result_header(). Numeric formatting is
// deterministic (shortest round-trip form), which the byte-identical
// determinism guarantee depends on.
std::vector<std::string> result_cells(const CampaignPoint& point,
                                      const core::ExperimentResult& r);

// The comma-joined `"key":value` field list of one JSONL object (no
// braces): plain finite numbers go out unquoted, everything else as an
// escaped JSON string. Shared by the JSONL sink and the execution journal
// so their lines parse back identically.
std::string jsonl_fields(const std::vector<std::string>& header,
                         const std::vector<std::string>& cells);

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  // Streams one already-rendered row; cells align with result_header().
  virtual void add_cells(const std::vector<std::string>& cells) = 0;

  // Convenience: renders and streams (point, result).
  void add(const CampaignPoint& point, const core::ExperimentResult& r) {
    add_cells(result_cells(point, r));
  }
};

// CSV file with result_header() columns.
class CsvResultSink final : public ResultSink {
 public:
  explicit CsvResultSink(const std::string& path);
  ~CsvResultSink() override;
  bool ok() const;
  void add_cells(const std::vector<std::string>& cells) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// One JSON object per line (JSONL); keys are result_header() names.
class JsonlResultSink final : public ResultSink {
 public:
  explicit JsonlResultSink(const std::string& path);
  ~JsonlResultSink() override;
  bool ok() const;
  void add_cells(const std::vector<std::string>& cells) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Fans one add_cells() out to several sinks.
class MultiSink final : public ResultSink {
 public:
  void attach(ResultSink* sink);  // non-owning; ignores nullptr
  void add_cells(const std::vector<std::string>& cells) override;

 private:
  std::vector<ResultSink*> sinks_;
};

// Convenience: streams every (point, result) pair into `sink` in index
// order.
void emit_all(const std::vector<CampaignPoint>& points,
              const std::vector<core::ExperimentResult>& results,
              ResultSink& sink);

}  // namespace reap::campaign

// Offline result post-processing: everything reap_report does.
//
// Campaign rows written by the CSV/JSONL sinks (or the execution journal)
// are loaded back as raw cell tables, merged across shard outputs, and
// re-aggregated without re-running a single experiment. Because numeric
// cells use shortest-round-trip formatting, parsing them back yields the
// exact doubles the runner produced, and because both aggregation paths
// share compare_metrics/summarize_comparisons, the offline report is
// byte-identical to the one an in-process run prints.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "reap/campaign/aggregate.hpp"

namespace reap::campaign {

// A loaded row file: raw cells, one vector per row, aligned with `header`.
struct RowTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  // Full-grid point count, when the source recorded it (an execution
  // journal's header does; plain CSV/JSONL sink output cannot). Lets the
  // completeness check catch a dense *prefix* -- a killed index-ordered
  // run -- that covers_all_indices alone would call complete.
  std::optional<std::uint64_t> expected_points;

  // A torn final line was dropped (source written by a killed run).
  bool truncated_tail = false;

  // Column index by name; nullopt when absent.
  std::optional<std::size_t> col(const std::string& name) const;
};

// Loaders. load_rows() sniffs the format: a '{' first byte means JSONL
// (sink output or an execution journal -- journal header lines and "key"
// fields are skipped), anything else is CSV. All loaders verify rows are
// rectangular and return nullopt with a description on malformed input.
std::optional<RowTable> load_rows_csv(const std::string& path,
                                      std::string* error = nullptr);
std::optional<RowTable> load_rows_jsonl(const std::string& path,
                                        std::string* error = nullptr);
std::optional<RowTable> load_rows(const std::string& path,
                                  std::string* error = nullptr);

// Merges shard outputs: headers must match, rows are concatenated,
// deduplicated by index (byte-identical duplicates collapse, conflicting
// ones are an error) and sorted by the numeric `index` column.
// expected_points/truncated_tail propagate (inputs that state different
// expected counts are an error). The merge of all shards of a campaign is
// byte-identical, cell for cell, to the table a single-process run writes.
std::optional<RowTable> merge_tables(std::vector<RowTable> tables,
                                     std::string* error = nullptr);

// True when the table covers a dense index range 0..n-1 and, when the
// source recorded a grid size (expected_points), n matches it. Without a
// recorded grid size a dense prefix of a bigger campaign is
// indistinguishable from a complete smaller one -- journals close that
// hole, plain CSV cannot.
bool covers_all_indices(const RowTable& table);

// Recomputes the cross-experiment aggregates from rows alone. Baseline
// partners are matched by their config column stripped of the policy key
// (exactly "same coordinates, different policy"). Rows must be in index
// order (merge_tables guarantees it). Returns nullopt when the baseline
// policy has no rows or a needed column is missing.
std::optional<CampaignAggregates> aggregate_rows(
    const RowTable& table, core::PolicyKind baseline,
    std::string* error = nullptr);

// Writes the figure data the paper's evaluation plots, derived offline
// from the aggregates: fig5_mttf.csv / fig6_energy.csv (per-workload
// bars), policy_summary.csv (the ablation table), and gnuplot scripts
// fig5.gp / fig6.gp that render them. Creates `dir` if needed; returns
// the paths written, or nullopt on I/O failure.
std::optional<std::vector<std::string>> write_figure_data(
    const CampaignAggregates& agg, const std::string& dir,
    std::string* error = nullptr);

}  // namespace reap::campaign

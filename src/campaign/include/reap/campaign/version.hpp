// Build identity for the campaign fleet.
//
// Every CLI answers --version with build_info_line(), and the dispatcher
// compares a remote worker's line against its own expectation before
// handing it shards: a fleet whose hosts run skewed binaries would merge
// journals produced under different semantics, which is exactly the kind
// of silent divergence the byte-identical merge guarantee exists to rule
// out. The line names the journal format and the stream frame version so
// a mismatch message says *what* is incompatible, not just "different".
#pragma once

#include <string>

namespace reap::campaign {

inline constexpr char kBuildVersion[] = "0.10.0";

// "reap_campaign reap/0.10.0 (journal reap-journal-v2, frame REAPF1)".
// `tool` is the fixed tool name, never argv[0]: a renamed or
// path-qualified binary must still hand the dispatcher a comparable line.
inline std::string build_info_line(const char* tool) {
  return std::string(tool) + " reap/" + kBuildVersion +
         " (journal reap-journal-v2, frame REAPF1)";
}

}  // namespace reap::campaign

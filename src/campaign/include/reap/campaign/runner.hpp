// CampaignRunner: shards expanded grid points across worker threads.
//
// Work distribution is a bounded-range work-stealing scheme: the point list
// is pre-split into one contiguous shard per worker; a worker pops from the
// front of its own shard and, when empty, steals the back half of the
// largest remaining shard. Experiments are pure functions of their config
// and every result is written to results[point.index], so the output -- and
// any aggregate computed from it in index order -- is bit-identical for any
// thread count, including 1 (the determinism contract tested in
// tests/campaign/test_runner_determinism.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "reap/campaign/spec.hpp"
#include "reap/core/experiment.hpp"

namespace reap::campaign {

struct RunnerOptions {
  // 0 = std::thread::hardware_concurrency().
  unsigned threads = 0;

  // Called after each finished experiment with (done, total). Invoked from
  // worker threads under a mutex; keep it cheap.
  std::function<void(std::size_t done, std::size_t total)> on_progress;

  // Streaming hook: called with each finished (point, result) in
  // *completion* order, serialized under the same mutex as on_progress
  // (and before it, so a progress line never precedes its row). This is
  // what the execution journal hangs off: rows become durable the moment
  // they finish, independent of the index-ordered vector returned at the
  // end.
  std::function<void(const CampaignPoint& point,
                     const core::ExperimentResult& result)>
      on_result;

  // Test seam; defaults to core::run_experiment.
  std::function<core::ExperimentResult(const core::ExperimentConfig&)> run_fn;

  // Like run_fn but receives the whole grid point — for executions that
  // depend on grid coordinates, e.g. the trace-replay path keyed on
  // CampaignPoint::trace_key. Wins over run_fn when both are set.
  std::function<core::ExperimentResult(const CampaignPoint&)> run_point_fn;

  // Early-stop predicate, checked by each worker between experiments.
  // When it returns true workers finish the point in hand and stop
  // claiming new ones, so run() returns with some results still
  // default-constructed -- the caller is expected to consult its journal
  // (which has exactly the completed rows) rather than the return value.
  // This is how SIGTERM and journal I/O errors end a run at a row
  // boundary instead of mid-write.
  std::function<bool()> should_stop;

  // Optional schedule grouping. When set, workers visit points in an order
  // that keeps points with equal group_key contiguous (groups ordered by
  // the smallest input position they contain, points within a group in
  // input order), so a per-group resource — a materialized trace — is
  // produced once and stays hot while its group runs. Results remain
  // positionally aligned with the input (results[i] belongs to points[i])
  // and index-ordered emission is untouched; only the *completion* order
  // seen by on_result/on_progress changes, which the journal/merge path is
  // already indifferent to (rows are re-sorted by grid index on merge).
  std::function<std::string(const CampaignPoint&)> group_key;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerOptions opts = {});

  // Runs every point; returns results positionally aligned with `points`
  // (results[i] belongs to points[i]). For a full expansion position and
  // CampaignPoint::index coincide; for a shard/resume subset they do not.
  std::vector<core::ExperimentResult> run(
      const std::vector<CampaignPoint>& points) const;

  unsigned effective_threads(std::size_t n_points) const;

 private:
  RunnerOptions opts_;
};

}  // namespace reap::campaign

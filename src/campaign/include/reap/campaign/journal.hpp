// Execution journal: completion-order durability for campaign rows.
//
// A journal is a JSONL file. Line 1 is a header object recording what ran
// (spec hash, point count, shard) and the column schema; every following
// line is one completed row -- the JSONL sink's field set prefixed with the
// point's stable row key -- flushed as soon as the experiment finishes.
// Kill the process at any moment and the journal loses at most the line
// being written; read_journal tolerates exactly that torn tail, so
// `--resume` can skip every completed row and continue. A final merge step
// (merge_journal_rows + emit_rows) replays the rows in grid-index order
// into the ordinary sinks, producing output byte-identical to an
// uninterrupted run.
//
// Format v2 ("reap-journal-v2") suffixes every row with a CRC32C over the
// row body (the line up to but excluding the `,"crc":"..."` suffix, with
// the closing brace restored), so a reader can tell three states apart:
//   ok      the row parses and its checksum matches (v1 rows, which carry
//           no checksum, parse-check only);
//   torn    the *final* line is an unparseable prefix -- the signature of a
//           mid-write kill; the row re-runs on resume;
//   corrupt anything else -- an unparseable line before the tail, or a
//           parseable row whose checksum does not match (bit rot, partial
//           overwrite). Corrupt rows are reported, skipped, and healed by
//           the next rewrite; they never abort a read.
// Readers accept v1 and v2 files, and mixed rows: each row is
// self-describing by the presence of its "crc" field.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "reap/campaign/result_sink.hpp"
#include "reap/campaign/spec.hpp"

namespace reap::campaign {

struct JournalHeader {
  std::string format = "reap-journal-v2";
  std::string name;                 // campaign name
  std::uint64_t spec_hash = 0;      // campaign::spec_hash of the spec
  std::uint64_t points = 0;         // full-grid point count
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  std::vector<std::string> columns;  // result_header() at write time

  static JournalHeader for_run(const CampaignSpec& spec,
                               std::size_t n_points,
                               std::size_t shard_index,
                               std::size_t shard_count);
};

// One journaled row: the point's stable key plus its rendered cells
// (aligned with the header's columns).
struct JournalRow {
  std::string key;
  std::uint64_t index = 0;
  std::vector<std::string> cells;
};

// One line read_journal could not accept as a row: where and why. Corrupt
// lines are data already lost on disk -- the reader's job is to contain
// the damage (skip, report, re-run that point), not to refuse the file.
struct CorruptLine {
  std::size_t line_no = 0;  // 1-based line number in the file
  std::string reason;       // "malformed row" / "CRC mismatch (...)"
};

struct Journal {
  JournalHeader header;
  std::vector<JournalRow> rows;      // completion order
  bool truncated_tail = false;       // last line was torn (mid-write kill)
  std::vector<CorruptLine> corrupt;  // damaged lines before the tail
};

// Appends rows to a journal file, flushing after every line so a killed
// run loses at most the row being written.
class JournalWriter {
 public:
  // Creates/truncates `path` and writes the header line.
  JournalWriter(const std::string& path, const JournalHeader& header);

  // Opens `path` for append (resume; the header line must already exist).
  explicit JournalWriter(const std::string& path);

  bool ok() const;
  void add(const std::string& key, const std::vector<std::string>& cells);

  // Mirrors every line this writer lands durably -- the header (replayed
  // immediately when one was written by this writer) and then each row,
  // without the trailing newline -- to `fn`. --journal-stdout feeds this
  // into the CRC32C stream framing; a line that failed to append locally
  // is never mirrored, so the stream can't claim rows the disk lost.
  void set_mirror(std::function<void(const std::string&)> fn);

  // 0 while appends are landing; the errno (EIO, ENOSPC, ...) of the
  // first failed append otherwise. Once set, further add() calls are
  // no-ops: the journal ends cleanly at the last durable row and the
  // caller should stop the run (reap_campaign exits kExitJournalIo) so
  // --resume can continue from exactly that boundary.
  int io_errno() const { return io_errno_; }

 private:
  std::ofstream out_;
  std::vector<std::string> columns_;
  std::string header_line_;  // set by the truncate ctor, for the mirror
  std::function<void(const std::string&)> mirror_;
  int io_errno_ = 0;
};

// Reads a journal back. A torn final line (the signature of a mid-write
// kill) is dropped and flagged, and damaged lines before the tail are
// collected in `corrupt` (the rows they carried re-run on resume);
// neither aborts the read. Returns nullopt and sets `error` only when
// the file itself is unusable: unopenable, empty, or a bad header line.
std::optional<Journal> read_journal(const std::string& path,
                                    std::string* error = nullptr);

// Reads only the header line -- O(1) regardless of journal size. What
// the dispatcher's work-dir scan uses to learn a journal's spec hash and
// shard split without parsing every row.
std::optional<JournalHeader> read_journal_header(const std::string& path,
                                                 std::string* error = nullptr);

// Atomically replaces `path` with a clean serialization of `j` (temp file
// + rename). Resume uses this to drop a torn tail before appending -- new
// rows written after an unterminated line would corrupt both.
bool rewrite_journal(const std::string& path, const Journal& j,
                     std::string* error = nullptr);

// Whether a journal recorded the same campaign this process is about to
// run: same spec hash, grid size, shard assignment, and column schema.
// On mismatch returns false and, if `why` is non-null, names the first
// differing field.
bool journal_compatible(const JournalHeader& header, const CampaignSpec& spec,
                        std::size_t n_points, std::size_t shard_index,
                        std::size_t shard_count, std::string* why = nullptr);

// Incrementally tails a journal that another process is appending to --
// the live-progress primitive of reap_dispatch. Each poll() scans only
// the bytes appended since the previous poll and reports the keys of
// newly completed rows. Tolerant of everything a live worker journal
// does: the file not existing yet (worker still starting), a torn tail
// (the in-flight line stays unreported until its '\n' lands), and the
// file *shrinking* (a resumed worker's atomic torn-tail rewrite) -- a
// shrink restarts the scan from byte 0, and the per-key dedupe set keeps
// already-reported rows from being counted twice.
class JournalTailer {
 public:
  explicit JournalTailer(std::string path);

  // Returns the keys of rows completed since the last poll (possibly
  // empty). Malformed complete lines and rows whose CRC does not verify
  // are skipped, not fatal: a live file is allowed to be mid-anything.
  std::vector<std::string> poll();

  // Distinct row keys observed so far (header line excluded).
  std::size_t rows_seen() const { return seen_.size(); }

  // Bytes consumed through the last complete line. The dispatcher's
  // watchdog uses this as a worker heartbeat: an offset that stops
  // moving is a worker that stopped writing.
  std::uint64_t offset() const { return offset_; }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;  // bytes consumed through the last complete line
  std::unordered_set<std::string> seen_;
};

// Concatenates completion-order row batches, drops duplicate keys (first
// occurrence wins), and sorts by grid index: the merge step that turns a
// journal back into index-ordered sink input.
std::vector<JournalRow> merge_journal_rows(std::vector<JournalRow> a,
                                           std::vector<JournalRow> b);

// Streams merged rows into a sink (rows must already be index-ordered).
void emit_rows(const std::vector<JournalRow>& rows, ResultSink& sink);

}  // namespace reap::campaign

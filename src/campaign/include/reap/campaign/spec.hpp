// CampaignSpec: a declarative parameter grid over ExperimentConfig.
//
// A campaign is the cross-product
//
//   workloads x policies x ecc_t x mtj operating points x seed replicas
//
// expanded -- in that fixed row-major order, seeds fastest -- into a
// deterministic list of CampaignPoints. Each point's RNG seeds are derived
// via seed.hpp from the campaign seed and the point's *environment*
// coordinates (workload, operating point, seed replica); the design axes
// under test (policy, ecc_t) are deliberately excluded so that the points
// of one paired comparison replay identical traces. The expansion is a
// pure function of the spec: any two processes that expand the same spec
// agree on every config, which is what makes sharding across threads (or
// machines) safe.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "reap/common/cli.hpp"
#include "reap/core/experiment.hpp"

namespace reap::campaign {

struct CampaignSpec {
  std::string name = "campaign";

  // Template for every point; the grid axes below overwrite their fields.
  core::ExperimentConfig base;

  // Grid axes. `workloads` and `policies` must be non-empty to expand.
  std::vector<std::string> workloads;        // spec2006 profile names
  std::vector<core::PolicyKind> policies;
  std::vector<unsigned> ecc_ts = {1};
  // Scrub periods (design axis, like policy/ecc: excluded from seed
  // derivation); empty = keep base.scrub_every. Only the scrub_piggyback
  // policy reads the value; for other policies the axis just replicates
  // points, so sweep it with policies={scrub} (reference policies go in a
  // separate campaign — same campaign_seed and environment axes replay
  // identical traces across campaigns).
  std::vector<std::uint64_t> scrub_everys;
  // MTJ operating points as I_read/I_C0 ratios; empty = keep base.mtj.
  std::vector<double> read_ratios;
  // Seed-axis values (replica ids); each is folded into the derived seed.
  std::vector<std::uint64_t> seeds = {0};

  std::uint64_t campaign_seed = 0x5EEDCA3DULL;

  std::size_t size() const;

  // Parses a key=value map (from CLI flags or a spec file). Recognized
  // keys: name, workloads, policies, ecc, read_ratios, seeds,
  // campaign_seed, instructions, warmup, clock_ghz, scrub_every,
  // dirty_check, l2_kb, l2_ways, block_bytes. List values are
  // comma-separated; `policies=all` selects every policy; `scrub_every`
  // accepts a list and populates the scrub axis. Returns nullopt and sets
  // `error` on unknown keys/values.
  static std::optional<CampaignSpec> from_kv(
      const std::map<std::string, std::string>& kv,
      std::string* error = nullptr);
};

// One expanded grid point. Axis indices are retained so downstream
// aggregation can regroup points without re-deriving the mixed-radix
// decomposition.
struct CampaignPoint {
  std::size_t index = 0;  // position in expansion order
  std::size_t workload_i = 0;
  std::size_t policy_i = 0;
  std::size_t ecc_i = 0;
  std::size_t scrub_i = 0;  // 0 when the scrub axis is empty
  std::size_t ratio_i = 0;  // 0 when the ratio axis is empty
  std::size_t seed_i = 0;
  // Stable row key, `<workload>/<policy>/t<ecc>/sc<scrub|->/rr<ratio|->/
  // s<replica>`: a pure function of the point's grid-coordinate *values*,
  // never of its expansion position, so a key survives appending values to
  // any axis and identifies the same row across shards, resumed runs, and
  // spec revisions. `-` marks an axis left at its base value.
  std::string key;
  // Trace identity, `<workload>/rr<ratio|->/s<replica>`: the key restricted
  // to the *environment* coordinates — exactly the inputs of the seed
  // derivation, with the design axes (policy, ecc, scrub) dropped. Two
  // points share a trace_key iff they replay the byte-identical op stream,
  // which is what the campaign trace cache and the grouped runner schedule
  // key on.
  std::string trace_key;
  core::ExperimentConfig config;
};

// Expands the grid. Throws std::invalid_argument on an invalid spec
// (empty mandatory axis, unknown workload name, duplicate values on an
// axis -- row keys are value-derived, so axis values must be distinct).
std::vector<CampaignPoint> expand(const CampaignSpec& spec);

// The points of shard `shard_index` of `shard_count`: every point with
// index % shard_count == shard_index, expansion order preserved (original
// indices retained). The shards of a spec partition its expansion exactly;
// striping by index balances expensive workloads (contiguous in expansion
// order) across shards. Throws std::invalid_argument when shard_count == 0
// or shard_index >= shard_count.
std::vector<CampaignPoint> shard(const std::vector<CampaignPoint>& points,
                                 std::size_t shard_index,
                                 std::size_t shard_count);

// |shard(points, shard_index, shard_count)| for a grid of `n_points`,
// without materializing anything: the count of indices in [0, n_points)
// congruent to shard_index mod shard_count. Same argument contract as
// shard().
std::size_t shard_size(std::size_t n_points, std::size_t shard_index,
                       std::size_t shard_count);

// Deterministic serialization of every field that affects expansion or
// experiment outcomes (axes, base-config overrides, campaign seed). Two
// specs with equal canonical strings expand to identical configs.
std::string canonical_string(const CampaignSpec& spec);

// fnv1a64 of canonical_string: the fingerprint a journal records so
// --resume can refuse to continue a different campaign.
std::uint64_t spec_hash(const CampaignSpec& spec);

// Parses a spec file: one `key = value` per line, '#' comments, blank
// lines ignored. Returns the raw map; feed it to CampaignSpec::from_kv.
std::optional<std::map<std::string, std::string>> parse_spec_file(
    const std::string& path, std::string* error = nullptr);

// The spec keys a campaign CLI accepts as --key=value flags: exactly the
// set CampaignSpec::from_kv parses. Shared by reap_campaign and
// reap_dispatch so their spec-flag vocabularies cannot drift.
const std::vector<std::string>& spec_cli_keys();

// Assembles the fully resolved spec key/value map of a CLI invocation:
// the --spec=FILE contents first (when the flag is present), then any
// spec-key flags override the file's values. Returns an empty map when
// neither is given, and nullopt (with `error` set) on an unreadable or
// malformed spec file.
std::optional<std::map<std::string, std::string>> spec_kv_from_cli(
    const common::CliArgs& args, std::string* error = nullptr);

}  // namespace reap::campaign

// Per-experiment seed derivation for campaign grids.
//
// A campaign must hand every grid point an independent, reproducible RNG
// seed that depends only on (campaign_seed, grid_index, replica) -- never on
// thread count or completion order -- so a K-thread run is bit-identical to
// a serial run. We use splitmix64 (Steele, Lea & Flood; the seeding
// generator of java.util.SplittableRandom): the campaign seed selects a
// stream, the grid index jumps along it by the 64-bit golden ratio, and the
// finalizer decorrelates neighbouring indices.
#pragma once

#include <cstdint>

namespace reap::campaign {

inline constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

// splitmix64 finalizer: bijective 64-bit mix.
constexpr std::uint64_t splitmix64(std::uint64_t z) {
  z += kGolden;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Seed for grid point `grid_index` whose seed-axis value is `replica_seed`.
// O(1), order-independent, and stable across releases (tested against
// golden values in tests/campaign/test_seed_derivation.cpp).
constexpr std::uint64_t derive_seed(std::uint64_t campaign_seed,
                                    std::uint64_t grid_index,
                                    std::uint64_t replica_seed) {
  const std::uint64_t stream = splitmix64(campaign_seed + grid_index * kGolden);
  return splitmix64(stream ^ replica_seed);
}

// Decorrelated companion seed (e.g. the workload trace seed) for the same
// grid point.
constexpr std::uint64_t derive_companion_seed(std::uint64_t derived) {
  return splitmix64(derived ^ 0xA5A5A5A55A5A5A5AULL);
}

}  // namespace reap::campaign

// Terminal progress reporting for long campaigns.
#pragma once

#include <chrono>
#include <cstdio>

namespace reap::campaign {

struct TraceCacheStats;

// Prints "  done/total (pct%)  rows/s  elapsed .. eta" to `out`, rewriting
// the line when `out` is a terminal-ish stream. Rate-limited so a fast
// grid does not flood the log, with the limiter check first so the
// mutex-held common path stays cheap. Call from the runner's on_progress
// hook (already serialized by the runner).
class ProgressReporter {
 public:
  explicit ProgressReporter(std::FILE* out = stderr) : out_(out) {}

  // Appends a "trace NhNm" hit/miss field to the line, sampled from
  // `stats` (borrowed; must outlive the reporter). The sample happens
  // after the rate limiter, so the common path stays a clock read and a
  // compare — same discipline as the rows/s field.
  void watch_trace_cache(const TraceCacheStats* stats) { cache_ = stats; }

  void operator()(std::size_t done, std::size_t total);

 private:
  using Clock = std::chrono::steady_clock;
  std::FILE* out_;
  const TraceCacheStats* cache_ = nullptr;
  Clock::time_point start_ = Clock::now();
  Clock::time_point last_print_{};
  bool started_ = false;
};

}  // namespace reap::campaign

// Dispatcher: automatic shard distribution over a local worker pool.
//
// PR 3 made a campaign a durable, partitionable artifact (--shard,
// --journal, --resume); the dispatcher turns that into a one-command
// distributed run. It expands the spec, splits the grid into N shards,
// and keeps K `reap_campaign --shard=i/N --journal=... --resume` worker
// processes busy until every shard's journal is complete:
//
//   - a worker that crashes (or is killed) is restarted on the same
//     journal; --resume skips the rows that already landed, so no work
//     is lost and no row runs twice;
//   - a shard whose worker dies repeatedly is reassigned to a different
//     worker slot (and given up on, with its log path, after
//     max_attempts failures);
//   - the per-shard journals are live-tailed (JournalTailer) into one
//     aggregated rows-done count for a single progress line;
//   - on completion the shard journals merge through the report layer
//     into CSV/JSONL byte-identical to an un-sharded single-process run
//     (the same guarantee reap_report gives, pinned by
//     tests/campaign/test_dispatch.cpp and the CI dispatch smoke).
//
// Because every shard journals into work_dir, the dispatcher itself is
// resumable: re-running it with the same spec and work_dir re-launches
// the workers, which skip every journaled row.
//
// PR 6 extends supervision beyond crash faults:
//
//   - a progress *watchdog* (stall_timeout): each worker's heartbeat is
//     its journal tailer offset; a worker whose journal stops growing
//     for too long is sent SIGTERM (graceful: it flushes and exits at a
//     row boundary), then SIGKILL after kill_grace, and restarts as an
//     ordinary failed attempt;
//   - *exponential backoff* between restarts of a shard that is failing
//     without progress, with deterministic seeded jitter so a fleet of
//     crashing workers does not restart in lockstep (and test runs
//     replay exactly);
//   - *point quarantine*: a shard that keeps dying without journaling a
//     new row has a poisoned point. Instead of abandoning the whole
//     shard, the dispatcher bisects -- relaunching with --skip-rows over
//     halves of the un-journaled keys -- until the poison is pinned to a
//     single point, records it in work_dir/quarantine.jsonl, and lets
//     the rest of the shard complete. --fail-fast restores the old
//     abandon-at-max_attempts behavior;
//   - *graceful degradation*: an abandoned shard no longer aborts the
//     dispatch; the other shards finish and the result reports the
//     worst condition seen (see DispatchStatus / exit_codes.hpp).
//
// This PR abstracts *where* workers run behind WorkerTransport
// (transport.hpp): the slot pool is the concatenation of every
// transport's slots, remote workers stream their journal rows into the
// local shard journals, and machine-level failures (lost connection,
// stalled stream, unreachable host) are counted per *host* -- a host
// that fails host_max_failures times in a row is lost (drained from the
// pool, its shards redistributed to the survivors), and a run that
// finished despite losing hosts reports DispatchStatus::host_lost.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "reap/campaign/report.hpp"
#include "reap/campaign/spec.hpp"
#include "reap/campaign/transport.hpp"

namespace reap::campaign {

struct DispatchOptions {
  // The reap_campaign binary each worker runs. Required.
  std::string campaign_binary;

  // Directory for the per-shard journals and worker logs. Required;
  // created if missing. Re-dispatching with the same dir (and spec)
  // resumes from whatever the journals already hold.
  std::string work_dir;

  // Worker process slots. 0 = hardware concurrency. Concurrency is
  // naturally bounded by pending shards (never more than one worker per
  // shard); slots beyond that stay idle as spares, which is what lets a
  // repeatedly-dying shard be reassigned off its old slot even when it
  // is the only shard left.
  std::size_t workers = 0;

  // Shard count N (workers run `--shard=i/N`). 0 = the effective worker
  // count. More jobs than workers queues shards and backfills idle slots.
  std::size_t jobs = 0;

  // --threads for each worker. The dispatcher's parallelism is
  // workers x worker_threads simulation threads.
  std::size_t worker_threads = 1;

  // --trace-cache-mb for each worker (0 = off): workers materialize each
  // paired trace once and replay it across the policy/ecc/scrub axes.
  // Per-worker caches — processes share nothing — so shards split by
  // index stripe each materialize their own copy of a group's trace (see
  // docs/campaign.md on how trace grouping interacts with --shard).
  std::size_t trace_cache_mb = 0;

  // --trace-dir for each worker (empty = off): workers mmap .reaptrace
  // store files from this directory instead of generating. Unlike the
  // per-process cache, the mapped pages are shared by every worker on the
  // machine, so fleet-wide replay costs one materialization, once, on
  // disk.
  std::string trace_dir;

  // A shard's failure budget: after this many *consecutive* failed
  // attempts that journal no new row, the shard is given up on --
  // quarantine-probed when possible (see fail_fast), abandoned
  // otherwise. Attempts that make progress reset the count: a worker
  // that crashes midway but lands rows is converging, not failing.
  std::size_t max_attempts = 3;

  // Supervisor poll cadence: child liveness + journal tailing.
  std::chrono::milliseconds poll_interval{50};

  // Progress watchdog. 0 = disabled. A worker whose journal offset is
  // unchanged for this long is presumed wedged: it gets SIGTERM (the
  // worker's graceful path flushes and exits at a row boundary), then
  // SIGKILL once kill_grace expires, and is retried like any crash.
  // Must comfortably exceed the slowest single experiment -- the journal
  // only grows at row boundaries, so a long compute looks idle.
  std::chrono::milliseconds stall_timeout{0};
  std::chrono::milliseconds kill_grace{2000};

  // Restart backoff for shards failing without progress: delay
  // min(backoff_base * 2^(n-1), backoff_max) after the n-th consecutive
  // no-progress failure, plus deterministic jitter (up to half the
  // delay, derived from backoff_seed, the shard, and the attempt) so
  // restarts de-synchronize reproducibly.
  std::chrono::milliseconds backoff_base{100};
  std::chrono::milliseconds backoff_max{10000};
  std::uint64_t backoff_seed = 0;

  // When true, a shard that exhausts max_attempts is abandoned
  // immediately (pre-PR6 behavior). When false, the dispatcher first
  // bisects for a poisoned point and quarantines it, abandoning only
  // when no single point is to blame.
  bool fail_fast = false;

  // Abandon a shard rather than quarantine more than this many points:
  // a campaign shedding rows wholesale is broken, not poisoned.
  std::size_t max_quarantine = 4;

  // Where workers run. Empty = one LocalTransport over `campaign_binary`
  // with the planned worker count (today's behavior, byte-identical).
  // Non-empty (what --hosts builds) = the slot pool is the concatenation
  // of every transport's slots and `workers` is ignored.
  std::vector<std::shared_ptr<WorkerTransport>> transports;

  // A host's failure budget: this many *consecutive* machine-level
  // failures (lost/stalled stream, unreachable, failed remote launch)
  // and the host is declared lost -- its slots drain from the pool and
  // its shards redistribute. A worker that completes or lands rows over
  // an intact stream resets the count. Local transports are exempt:
  // losing the dispatcher's own machine is not a recoverable event.
  std::size_t host_max_failures = 3;

  // When non-empty, every remote transport's handshake must see the
  // worker binary answer --version with exactly this line; a mismatch
  // aborts the dispatch up front (fleet skew corrupts merges).
  std::string expected_worker_version;

  // Host-level observability. on_host_lost fires once when a host is
  // declared lost (handshake failure or exhausted failure budget);
  // on_host_note carries per-host warnings worth one stderr line (e.g.
  // a missing remote trace store).
  std::function<void(const std::string& host, const std::string& reason)>
      on_host_lost;
  std::function<void(const std::string& host, const std::string& note)>
      on_host_note;

  // Aggregated progress: (rows done across all shards, full grid size).
  // Called from the supervisor loop, monotone in `done`.
  std::function<void(std::size_t done, std::size_t total)> on_progress;

  // Observability / test seams. on_spawn fires for every worker launch
  // (attempt 0 is the first try); on_worker_exit fires when one ends --
  // `ok` means "exited 0 with a complete shard journal", and on failure
  // `will_retry` distinguishes a restart from the shard being abandoned;
  // on_shard_rows fires when tailing observes a shard's journal growing.
  std::function<void(std::size_t shard, std::size_t attempt,
                     std::size_t slot, long pid)>
      on_spawn;
  std::function<void(std::size_t shard, std::size_t attempt, bool ok,
                     bool will_retry)>
      on_worker_exit;
  std::function<void(std::size_t shard, std::size_t rows)> on_shard_rows;

  // Watchdog and quarantine observability. on_stall fires when a worker
  // is declared stalled (before the SIGTERM); on_quarantine fires when a
  // point is pinned as poisoned and recorded in the sidecar.
  std::function<void(std::size_t shard, std::size_t attempt)> on_stall;
  std::function<void(const std::string& key, std::uint64_t index,
                     std::size_t shard)>
      on_quarantine;
};

// How a dispatch ended, worst condition wins; exit_codes.hpp maps these
// onto the reap_dispatch exit-code contract.
enum class DispatchStatus {
  ok,             // every row ran
  error,          // configuration/environment failure (nothing useful ran)
  spec_mismatch,  // work dir belongs to a different spec or shard split
  quarantined,    // complete except for explicitly quarantined points
  abandoned,      // at least one shard was given up on
  host_lost,      // every row ran, but only by surviving lost host(s)
};

// One poisoned point: pinned by the quarantine bisect and recorded in
// work_dir/quarantine.jsonl (one JSON object per line, these fields).
struct QuarantinedPoint {
  std::string key;
  std::uint64_t index = 0;
  std::size_t shard = 0;
  std::string reason;
};

// Where one shard ended up.
struct ShardOutcome {
  std::size_t shard = 0;
  std::size_t attempts = 0;  // worker launches consumed
  bool completed = false;
  std::size_t rows = 0;  // journaled rows observed (== shard size if done)
  std::string journal_path;
  std::string log_path;
};

struct DispatchResult {
  // True when every non-quarantined row ran (status ok or quarantined):
  // "the merged outputs are worth writing".
  bool ok = false;
  DispatchStatus status = DispatchStatus::error;
  std::string error;  // set when !ok
  std::size_t points = 0;          // full grid size
  std::size_t restarts = 0;        // failed attempts that were retried
  std::size_t stalls = 0;          // watchdog interventions
  std::vector<ShardOutcome> shards;
  std::vector<QuarantinedPoint> quarantined;  // sidecar contents
  std::vector<std::string> lost_hosts;        // hosts declared lost, in order

  // The shard journal paths, for the merge step.
  std::vector<std::string> journal_paths() const;
};

// The resolved execution plan of a dispatch: slot-pool size and shard
// count for a grid of `n_points`, after scanning opts.work_dir (when it
// exists) for journals of a previous run -- their recorded shard split
// wins over opts.jobs/workers (shards are meaningless under a different
// N), and every readable journal's spec hash must match `spec` or the
// plan fails up front with the real reason instead of letting workers
// burn their attempts on 'cannot resume' exits. Shared by
// Dispatcher::run and the CLI's --dry-run so the printed plan cannot
// drift from the executed one.
struct DispatchPlan {
  std::size_t workers = 1;
  std::size_t n_shards = 1;
  bool adopted_split = false;  // shard count taken from existing journals
};
std::optional<DispatchPlan> plan_dispatch(const CampaignSpec& spec,
                                          std::size_t n_points,
                                          const DispatchOptions& opts,
                                          std::string* error = nullptr);

class Dispatcher {
 public:
  // `spec_kv` is the fully resolved key/value spec (what spec_kv_from_cli
  // returns). The dispatcher expands it locally for the shard plan and
  // forwards it to every worker as --key=value flags, so supervisor and
  // workers parse the identical spec (and the workers' journal spec-hash
  // check would refuse any drift).
  Dispatcher(std::map<std::string, std::string> spec_kv,
             DispatchOptions opts);

  // Runs the campaign to completion (or failure). Never throws: spec
  // errors, spawn errors, and abandoned shards all surface as
  // DispatchResult{ok=false, error}.
  DispatchResult run();

 private:
  std::map<std::string, std::string> spec_kv_;
  DispatchOptions opts_;
};

// The merge step: loads every shard journal of a completed dispatch and
// merges them (report layer) into one index-ordered table -- cell-for-cell
// identical to what a single-process run writes. Returns nullopt and sets
// `error` on unreadable/incomplete journals.
std::optional<RowTable> merge_dispatch_journals(
    const std::vector<std::string>& journal_paths,
    std::string* error = nullptr);

}  // namespace reap::campaign

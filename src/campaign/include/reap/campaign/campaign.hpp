// Umbrella header for the campaign subsystem: spec -> expand -> run ->
// sinks/aggregates. See docs/campaign.md for the workflow.
#pragma once

#include "reap/campaign/aggregate.hpp"    // IWYU pragma: export
#include "reap/campaign/journal.hpp"      // IWYU pragma: export
#include "reap/campaign/progress.hpp"     // IWYU pragma: export
#include "reap/campaign/report.hpp"       // IWYU pragma: export
#include "reap/campaign/result_sink.hpp"  // IWYU pragma: export
#include "reap/campaign/runner.hpp"       // IWYU pragma: export
#include "reap/campaign/seed.hpp"         // IWYU pragma: export
#include "reap/campaign/spec.hpp"         // IWYU pragma: export
#include "reap/campaign/trace_cache.hpp"  // IWYU pragma: export

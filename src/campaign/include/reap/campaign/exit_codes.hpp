// The exit-code contract of the campaign CLIs, in one header so the
// binaries, the dispatcher's worker-exit classification, the tests, and
// docs/robustness.md all agree on the same numbers. Callers script
// against these; treat them as a stable interface.
#pragma once

namespace reap::campaign {

// reap_campaign --------------------------------------------------------
// 0   every requested row ran and was emitted/journaled
// 1   usage, spec, or configuration error (nothing ran, or setup failed)
// 3   journal append hit EIO/ENOSPC: the run stopped cleanly at a row
//     boundary; every journaled row is intact and --resume continues it
// 4   SIGTERM/SIGINT: the journal was flushed and closed at a row
//     boundary (no torn tail by construction); --resume continues it
inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;
inline constexpr int kExitJournalIo = 3;
inline constexpr int kExitInterrupted = 4;

// reap_dispatch --------------------------------------------------------
// A run reports the *worst* condition it saw. 0 clean; 2 the work dir
// belongs to a different spec or shard split (nothing launched); 3
// complete except for explicitly quarantined points (merged outputs
// written, quarantine sidecar names every skipped row); 4 at least one
// shard was abandoned (no merged outputs); 5 every row ran and merged,
// but only by surviving the loss of one or more hosts (numbers are
// stable, so 5 sits outside the 0..4 severity ladder: it ranks between
// 0 and 3 -- complete outputs, degraded fleet).
inline constexpr int kDispatchOk = 0;
inline constexpr int kDispatchError = 1;
inline constexpr int kDispatchSpecMismatch = 2;
inline constexpr int kDispatchQuarantined = 3;
inline constexpr int kDispatchAbandoned = 4;
inline constexpr int kDispatchHostLost = 5;

}  // namespace reap::campaign

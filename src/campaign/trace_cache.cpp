#include "reap/campaign/trace_cache.hpp"

#include <algorithm>
#include <utility>

namespace reap::campaign {

TracePlan trace_plan(const std::vector<CampaignPoint>& points) {
  TracePlan plan;
  std::unordered_set<std::string> seen;
  for (const auto& pt : points) {
    if (!seen.insert(pt.trace_key).second) continue;
    plan.largest_bytes = std::max(
        plan.largest_bytes,
        trace::estimate_trace_bytes(
            pt.config.workload,
            pt.config.warmup_instructions + pt.config.instructions));
  }
  plan.groups = seen.size();
  return plan;
}

namespace {

void bump_peak(TraceCacheStats& stats, std::size_t now) {
  std::size_t peak = stats.peak_bytes.load(std::memory_order_relaxed);
  while (now > peak &&
         !stats.peak_bytes.compare_exchange_weak(peak, now,
                                                 std::memory_order_relaxed)) {
  }
}

}  // namespace

TraceCache::TracePtr TraceCache::acquire(const std::string& key,
                                         const Materializer& make) {
  std::unique_lock lock(mu_);
  for (;;) {
    if (oversize_.count(key)) {
      // Known too big to retain: materialize without registering in the
      // single-flight map, so concurrent requesters build in parallel
      // rather than serializing behind a build none of them can reuse.
      // (Checked inside the loop: a waiter can learn this mid-wait.)
      stats_.misses.fetch_add(1, std::memory_order_relaxed);
      stats_.uncached.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      return std::make_shared<const trace::MaterializedTrace>(make());
    }
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // miss: this thread materializes
    if (it->second.trace) {
      stats_.hits.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
      return it->second.trace;
    }
    // Another thread is materializing this key; wait for it. The builder
    // erases the entry on an uncached (oversize) outcome, so waiters
    // re-check from scratch rather than assuming success.
    built_.wait(lock);
  }

  entries_[key].building = true;
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();

  // Materialization runs unlocked: it is seconds of RNG work and other
  // keys' requests must not serialize behind it.
  TracePtr trace;
  try {
    trace = std::make_shared<const trace::MaterializedTrace>(make());
  } catch (...) {
    // Unblock waiters (they will retry and hit the same failure themselves
    // rather than hanging on a build that will never finish).
    lock.lock();
    entries_.erase(key);
    built_.notify_all();
    throw;
  }
  const std::size_t cost = trace->bytes();

  lock.lock();
  auto it = entries_.find(key);
  if (cost > cap_bytes_) {
    // Too big to retain: hand it to this requester only, and remember the
    // key so later acquires take the parallel bypass path up front.
    // Waiters restart and materialize their own copy (each counted).
    stats_.uncached.fetch_add(1, std::memory_order_relaxed);
    oversize_.insert(key);
    entries_.erase(it);
    built_.notify_all();
    return trace;
  }
  // Make room *before* accounting the new arena, so the accounted total
  // (and its recorded peak) never exceeds the cap while idle entries
  // exist to evict.
  evict_idle_locked(cost);
  it->second.trace = trace;
  it->second.building = false;
  lru_.push_front(key);
  it->second.lru = lru_.begin();
  const std::size_t now =
      stats_.bytes.fetch_add(cost, std::memory_order_relaxed) + cost;
  bump_peak(stats_, now);
  built_.notify_all();
  return trace;
}

void TraceCache::evict_idle_locked(std::size_t incoming) {
  // Walk from the cold end, dropping idle entries until `incoming` more
  // bytes fit under the cap. An entry still referenced outside the cache
  // (a running experiment) is skipped: evicting it would free nothing —
  // the consumer's shared_ptr keeps the arena alive — and a later
  // admission catches it once idle. With every evictable entry gone the
  // admission proceeds over cap: the cache serves correctness first and
  // the cap bounds what it *retains*, not what running experiments pin.
  auto it = lru_.end();
  while (stats_.bytes.load(std::memory_order_relaxed) + incoming >
             cap_bytes_ &&
         it != lru_.begin()) {
    --it;
    auto entry = entries_.find(*it);
    if (entry->second.trace.use_count() > 1) continue;
    stats_.bytes.fetch_sub(entry->second.trace->bytes(),
                           std::memory_order_relaxed);
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    entries_.erase(entry);
    it = lru_.erase(it);
  }
}

}  // namespace reap::campaign

#include "reap/campaign/report.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <unordered_map>
#include <utility>

#include "reap/common/crc32c.hpp"
#include "reap/common/csv.hpp"
#include "reap/common/jsonl.hpp"
#include "reap/common/strings.hpp"
#include "reap/common/table.hpp"
#include "reap/core/config_kv.hpp"

namespace reap::campaign {
namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

// The config column minus its policy key: rows that agree on this string
// are the same experiment under different policies -- the pairing the
// paper's normalized figures need.
std::string partner_key(const std::string& config_kv) {
  auto kv = core::kv_parse(config_kv);
  kv.erase("policy");
  std::string out;
  for (const auto& [k, v] : kv) {  // std::map: deterministic key order
    if (!out.empty()) out += ' ';
    out += k + "=" + v;
  }
  return out;
}

}  // namespace

std::optional<std::size_t> RowTable::col(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  return std::nullopt;
}

std::optional<RowTable> load_rows_csv(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open: " + path);
    return std::nullopt;
  }
  RowTable table;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto cells = common::parse_csv_line(line);
    if (!cells) {
      fail(error, path + ":" + std::to_string(lineno) + ": malformed CSV");
      return std::nullopt;
    }
    if (table.header.empty()) {
      table.header = std::move(*cells);
    } else {
      if (cells->size() != table.header.size()) {
        fail(error, path + ":" + std::to_string(lineno) +
                        ": row has " + std::to_string(cells->size()) +
                        " cells, header has " +
                        std::to_string(table.header.size()));
        return std::nullopt;
      }
      table.rows.push_back(std::move(*cells));
    }
  }
  if (table.header.empty()) {
    fail(error, path + ": no header row");
    return std::nullopt;
  }
  return table;
}

std::optional<RowTable> load_rows_jsonl(const std::string& path,
                                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open: " + path);
    return std::nullopt;
  }
  RowTable table;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto fields = common::parse_jsonl_line(line);
    if (!fields) {
      // Tolerate one torn final line (a killed run's last write), but
      // surface it: the caller decides whether a lost row matters.
      if (!table.truncated_tail &&
          in.peek() == std::ifstream::traits_type::eof()) {
        table.truncated_tail = true;
        continue;
      }
      fail(error, path + ":" + std::to_string(lineno) + ": malformed JSONL");
      return std::nullopt;
    }
    // A journal header line carries the grid size; keep it so the
    // completeness check can catch a dense prefix. Strip the journal's
    // leading key field from data lines.
    std::size_t begin = 0;
    if (!fields->empty() && (*fields)[0].first == "format") {
      for (const auto& [key, value] : *fields) {
        std::uint64_t n = 0;
        if (key == "points" && common::parse_u64(value, n))
          table.expected_points = n;
      }
      continue;
    }
    if (!fields->empty() && (*fields)[0].first == "key") begin = 1;

    // Journal v2 rows close with a checksum over the rest of the line;
    // verify it and strip the field. A mismatch here is a hard error:
    // reports run on settled files, where bad bytes mean real damage.
    std::size_t end = fields->size();
    if (begin == 1 && end > begin && (*fields)[end - 1].first == "crc") {
      const auto pos = line.rfind(",\"crc\":\"");
      std::uint32_t stored = 0;
      if (pos == std::string::npos ||
          !common::parse_hex32((*fields)[end - 1].second, stored) ||
          common::crc32c(line.substr(0, pos) + "}") != stored) {
        fail(error, path + ":" + std::to_string(lineno) + ": row CRC mismatch");
        return std::nullopt;
      }
      --end;
    }

    std::vector<std::string> names, cells;
    for (std::size_t i = begin; i < end; ++i) {
      names.push_back((*fields)[i].first);
      cells.push_back((*fields)[i].second);
    }
    if (table.header.empty()) table.header = names;
    if (names != table.header) {
      fail(error,
           path + ":" + std::to_string(lineno) + ": inconsistent columns");
      return std::nullopt;
    }
    table.rows.push_back(std::move(cells));
  }
  if (table.header.empty()) {
    fail(error, path + ": no rows");
    return std::nullopt;
  }
  return table;
}

std::optional<RowTable> load_rows(const std::string& path,
                                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open: " + path);
    return std::nullopt;
  }
  const int first = in.peek();
  in.close();
  return first == '{' ? load_rows_jsonl(path, error)
                      : load_rows_csv(path, error);
}

std::optional<RowTable> merge_tables(std::vector<RowTable> tables,
                                     std::string* error) {
  if (tables.empty()) {
    fail(error, "nothing to merge");
    return std::nullopt;
  }
  RowTable merged;
  merged.header = tables[0].header;
  const auto index_col = tables[0].col("index");
  if (!index_col) {
    fail(error, "merge: no `index` column");
    return std::nullopt;
  }
  for (auto& t : tables) {
    if (t.header != merged.header) {
      fail(error, "merge: input headers differ");
      return std::nullopt;
    }
    if (t.expected_points) {
      if (merged.expected_points &&
          *merged.expected_points != *t.expected_points) {
        fail(error, "merge: inputs record different grid sizes (" +
                        std::to_string(*merged.expected_points) + " vs " +
                        std::to_string(*t.expected_points) + ")");
        return std::nullopt;
      }
      merged.expected_points = t.expected_points;
    }
    merged.truncated_tail = merged.truncated_tail || t.truncated_tail;
    for (auto& row : t.rows) merged.rows.push_back(std::move(row));
  }

  // Numeric index sort (stable: ties keep input order for the dup check).
  std::vector<std::pair<std::uint64_t, std::size_t>> order;
  order.reserve(merged.rows.size());
  for (std::size_t i = 0; i < merged.rows.size(); ++i) {
    std::uint64_t idx = 0;
    if (!common::parse_u64(merged.rows[i][*index_col], idx)) {
      fail(error, "merge: non-numeric index cell: " +
                      merged.rows[i][*index_col]);
      return std::nullopt;
    }
    order.emplace_back(idx, i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  std::vector<std::vector<std::string>> sorted;
  sorted.reserve(order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    auto& row = merged.rows[order[k].second];
    if (k > 0 && order[k].first == order[k - 1].first) {
      if (row != sorted.back()) {
        fail(error, "merge: conflicting duplicate rows for index " +
                        std::to_string(order[k].first));
        return std::nullopt;
      }
      continue;  // byte-identical duplicate (same shard fed twice)
    }
    sorted.push_back(std::move(row));
  }
  merged.rows = std::move(sorted);
  return merged;
}

bool covers_all_indices(const RowTable& table) {
  const auto index_col = table.col("index");
  if (!index_col) return false;
  if (table.expected_points && *table.expected_points != table.rows.size())
    return false;  // dense prefix of a bigger grid, or overfull
  // merge_tables leaves rows index-sorted and unique; a dense range is
  // then exactly "row i has index i".
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    std::uint64_t idx = 0;
    if (!common::parse_u64(table.rows[i][*index_col], idx)) return false;
    if (idx != i) return false;
  }
  return !table.rows.empty();
}

std::optional<CampaignAggregates> aggregate_rows(const RowTable& table,
                                                 core::PolicyKind baseline,
                                                 std::string* error) {
  struct Cols {
    std::size_t index, workload, policy, ipc, sim_seconds, mttf_seconds,
        failure_rate, failure_prob, energy, config;
  } c{};
  const auto need = [&](const char* name, std::size_t& out) {
    const auto i = table.col(name);
    if (!i) return fail(error, std::string("missing column: ") + name);
    out = *i;
    return true;
  };
  if (!need("index", c.index) || !need("workload", c.workload) ||
      !need("policy", c.policy) || !need("ipc", c.ipc) ||
      !need("sim_seconds", c.sim_seconds) ||
      !need("mttf_seconds", c.mttf_seconds) ||
      !need("failure_rate_per_s", c.failure_rate) ||
      !need("failure_prob_sum", c.failure_prob) ||
      !need("energy_dynamic_j", c.energy) || !need("config", c.config))
    return std::nullopt;

  struct Parsed {
    std::uint64_t index = 0;
    core::PolicyKind policy{};
    reliability::MttfResult mttf;
    double energy_j = 0.0;
    double ipc = 0.0;
  };
  const auto parse = [&](const std::vector<std::string>& row, Parsed& p) {
    const auto kind = core::policy_from_string(row[c.policy]);
    if (!kind) return fail(error, "unknown policy in rows: " + row[c.policy]);
    p.policy = *kind;
    if (!common::parse_u64(row[c.index], p.index) ||
        !common::parse_double(row[c.ipc], p.ipc) ||
        !common::parse_double(row[c.energy], p.energy_j) ||
        !common::parse_double(row[c.sim_seconds], p.mttf.sim_seconds) ||
        !common::parse_double(row[c.mttf_seconds], p.mttf.mttf_seconds) ||
        !common::parse_double(row[c.failure_rate],
                              p.mttf.failure_rate_per_s) ||
        !common::parse_double(row[c.failure_prob], p.mttf.failure_prob_sum))
      return fail(error, "non-numeric cell in row " + row[c.index]);
    return true;
  };

  // Pass 1: baseline rows by partner key.
  std::unordered_map<std::string, std::size_t> baseline_by_key;
  bool baseline_seen = false;
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    const auto kind = core::policy_from_string(table.rows[i][c.policy]);
    if (!kind) {
      fail(error, "unknown policy in rows: " + table.rows[i][c.policy]);
      return std::nullopt;
    }
    if (*kind != baseline) continue;
    baseline_seen = true;
    baseline_by_key.emplace(partner_key(table.rows[i][c.config]), i);
  }
  if (!baseline_seen) {
    fail(error, "baseline policy " + core::to_string(baseline) +
                    " has no rows; nothing to normalize against");
    return std::nullopt;
  }

  // Pass 2: comparisons in row (= index) order, plus first-appearance
  // orders. For a row-major expansion first appearance reproduces the
  // spec's axis order, so summaries match the in-process report.
  std::vector<AnnotatedComparison> comparisons;
  std::vector<core::PolicyKind> policy_order;
  std::vector<std::string> workload_order;
  for (const auto& row : table.rows) {
    Parsed p;
    if (!parse(row, p)) return std::nullopt;
    const auto& workload = row[c.workload];
    if (std::find(workload_order.begin(), workload_order.end(), workload) ==
        workload_order.end())
      workload_order.push_back(workload);
    if (p.policy == baseline) continue;
    if (std::find(policy_order.begin(), policy_order.end(), p.policy) ==
        policy_order.end())
      policy_order.push_back(p.policy);

    const auto it = baseline_by_key.find(partner_key(row[c.config]));
    if (it == baseline_by_key.end()) continue;  // partner in another shard
    Parsed base;
    if (!parse(table.rows[it->second], base)) return std::nullopt;

    AnnotatedComparison a;
    a.c = compare_metrics(p.index, base.index, p.mttf, p.energy_j, p.ipc,
                          base.mttf, base.energy_j, base.ipc);
    a.policy = p.policy;
    a.workload = workload;
    comparisons.push_back(std::move(a));
  }

  return summarize_comparisons(baseline, comparisons, policy_order,
                               workload_order);
}

std::optional<std::vector<std::string>> write_figure_data(
    const CampaignAggregates& agg, const std::string& dir,
    std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    fail(error, "cannot create " + dir + ": " + ec.message());
    return std::nullopt;
  }
  std::vector<std::string> written;
  const auto join = [&dir](const std::string& name) {
    return (fs::path(dir) / name).string();
  };

  // Per-workload bar data. One row per workload, one column per policy, so
  // gnuplot's clustered-histogram mode consumes the files directly.
  std::vector<std::string> policies;
  for (const auto& s : agg.by_policy)
    policies.push_back(core::to_string(s.policy));
  const auto write_bars = [&](const std::string& name, auto value_of) {
    std::vector<std::string> header = {"workload"};
    header.insert(header.end(), policies.begin(), policies.end());
    common::CsvWriter csv(join(name), header);
    if (!csv.ok()) return false;
    std::vector<std::string> workloads;
    for (const auto& w : agg.by_workload)
      if (std::find(workloads.begin(), workloads.end(), w.workload) ==
          workloads.end())
        workloads.push_back(w.workload);
    for (const auto& workload : workloads) {
      std::vector<std::string> row = {workload};
      for (const auto& s : agg.by_policy) {
        std::string cell = "nan";
        for (const auto& w : agg.by_workload)
          if (w.workload == workload && w.policy == s.policy)
            cell = common::fmt_double(value_of(w));
        row.push_back(cell);
      }
      csv.add_row(row);
    }
    written.push_back(join(name));
    return true;
  };
  if (!write_bars("fig5_mttf.csv", [](const WorkloadSummary& w) {
        return w.mean_mttf_gain;
      })) {
    fail(error, "cannot write fig5_mttf.csv in " + dir);
    return std::nullopt;
  }
  if (!write_bars("fig6_energy.csv", [](const WorkloadSummary& w) {
        return w.mean_energy_overhead_pct;
      })) {
    fail(error, "cannot write fig6_energy.csv in " + dir);
    return std::nullopt;
  }

  {
    common::CsvWriter csv(join("policy_summary.csv"),
                          {"policy", "n", "mttf_gain_mean", "mttf_gain_geo",
                           "mttf_gain_min", "mttf_gain_max",
                           "energy_overhead_pct_mean",
                           "energy_overhead_pct_max", "speedup_mean"});
    if (!csv.ok()) {
      fail(error, "cannot write policy_summary.csv in " + dir);
      return std::nullopt;
    }
    for (const auto& s : agg.by_policy)
      csv.add_row({core::to_string(s.policy), std::to_string(s.n),
                   common::fmt_double(s.mean_mttf_gain),
                   common::fmt_double(s.geomean_mttf_gain),
                   common::fmt_double(s.min_mttf_gain),
                   common::fmt_double(s.max_mttf_gain),
                   common::fmt_double(s.mean_energy_overhead_pct),
                   common::fmt_double(s.max_energy_overhead_pct),
                   common::fmt_double(s.mean_speedup)});
    written.push_back(join("policy_summary.csv"));
  }

  // Gnuplot companions: clustered bars, CVD-safe fixed-order palette
  // (Okabe-Ito), single axis, recessive grid. Fig. 5 spans orders of
  // magnitude, so it gets a log y-axis like the paper's plot.
  const auto write_gp = [&](const std::string& name, const std::string& data,
                            const std::string& ylabel, bool logy) {
    std::ofstream gp(join(name));
    if (!gp) return false;
    gp << "# gnuplot -p " << name << "  (expects " << data
       << " alongside)\n"
          "set datafile separator ','\n"
          "set style data histograms\n"
          "set style histogram clustered gap 1\n"
          "set style fill solid 0.9 border lc rgb '#303030'\n"
          "set boxwidth 0.9\n"
          "set key top left\n"
          "set grid ytics lc rgb '#d0d0d0' lt 1 dt 3\n"
          "set xtics rotate by -35\n"
          "set ylabel '"
       << ylabel << "'\n";
    if (logy) gp << "set logscale y\n";
    gp << "colors = \"#0072B2 #E69F00 #009E73 #CC79A7 #56B4E9\"\n"
          "plot for [i=2:*] '"
       << data
       << "' using i:xtic(1) title columnheader(i) "
          "lc rgb word(colors, i-1)\n";
    written.push_back(join(name));
    return true;
  };
  if (!write_gp("fig5.gp", "fig5_mttf.csv",
                "MTTF gain vs baseline (log)", true) ||
      !write_gp("fig6.gp", "fig6_energy.csv",
                "dynamic energy overhead (%)", false)) {
    fail(error, "cannot write gnuplot scripts in " + dir);
    return std::nullopt;
  }
  return written;
}

}  // namespace reap::campaign

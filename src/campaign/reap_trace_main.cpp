// reap_trace: the trace-store tool. Materializes a campaign spec's
// synthetic workloads into .reaptrace files (one per distinct trace key),
// imports externally captured text traces, and verifies/dumps store files.
// reap_campaign --trace-dir=DIR replays the files this tool writes;
// see docs/campaign.md ("Trace store") for the format and workflow.
//
// Usage:
//   reap_trace --materialize --spec=specs/fig5.spec --out-dir=traces/
//   reap_trace --import=capture.txt --out=traces/custom.reaptrace
//              --trace-key=custom/rr-/s0
//   reap_trace --verify traces/*.reaptrace
//   reap_trace --dump traces/mcf_rr-_s0.reaptrace --max-ops=100
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "reap/campaign/cli_usage.hpp"
#include "reap/campaign/spec.hpp"
#include "reap/campaign/version.hpp"
#include "reap/common/cli.hpp"
#include "reap/trace/replay.hpp"
#include "reap/trace/trace_io.hpp"
#include "reap/trace/trace_store.hpp"

using namespace reap;

namespace {

int usage(const char* argv0) {
  std::printf(campaign::kTraceUsage, argv0);
  return 0;
}

double mb(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

// --materialize: one store file per distinct trace key of the expanded
// grid. The recorded metadata names the spec and the generator budget, so
// a dumped file is self-describing.
int materialize(const common::CliArgs& args) {
  std::string error;
  const auto kv = campaign::spec_kv_from_cli(args, &error);
  if (!kv) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (kv->empty()) {
    std::fprintf(stderr, "--materialize needs a spec (--spec=FILE and/or "
                         "key=value flags)\n");
    return 1;
  }
  const auto spec = campaign::CampaignSpec::from_kv(*kv, &error);
  if (!spec) {
    std::fprintf(stderr, "bad spec: %s\n", error.c_str());
    return 1;
  }
  const std::string out_dir = args.get_string("out-dir", "");
  if (out_dir.empty()) {
    std::fprintf(stderr, "--materialize needs --out-dir=DIR\n");
    return 1;
  }
  const bool force = args.has("force");
  common::warn_unused(args);

  std::vector<campaign::CampaignPoint> points;
  try {
    points = campaign::expand(*spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  std::unordered_set<std::string> seen;
  std::size_t written = 0, skipped = 0;
  for (const auto& pt : points) {
    if (!seen.insert(pt.trace_key).second) continue;
    const auto path =
        (std::filesystem::path(out_dir) /
         trace::trace_store_filename(pt.trace_key)).string();
    if (!force && std::filesystem::exists(path)) {
      std::printf("%s: exists, skipping (--force overwrites)\n",
                  path.c_str());
      ++skipped;
      continue;
    }
    const std::uint64_t budget =
        pt.config.warmup_instructions + pt.config.instructions;
    trace::WorkloadTraceSource gen(pt.config.workload);
    const auto trace = trace::MaterializedTrace::materialize(gen, budget);
    const std::map<std::string, std::string> meta = {
        {"campaign", spec->name},
        {"workload", pt.config.workload.name},
        {"budget", std::to_string(budget)},
    };
    if (!trace::write_trace_file(path, trace, pt.trace_key, meta, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("%s: %zu ops, %" PRIu64 " instructions, %.1f MB\n",
                path.c_str(), trace.size(), trace.instructions(),
                mb(trace.size() * sizeof(std::uint64_t)));
    ++written;
  }
  std::printf("%zu trace file%s written to %s (%zu skipped)\n", written,
              written == 1 ? "" : "s", out_dir.c_str(), skipped);
  return 0;
}

// --import: text trace -> store file. The reader's EOF and parse-error
// cases both end the stream; the importer refuses on error() so a garbage
// tail aborts loudly instead of writing a silently short trace.
int import_text(const common::CliArgs& args) {
  const std::string in = args.get_string("import", "");
  const std::string out = args.get_string("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--import needs --out=FILE\n");
    return 1;
  }
  std::string key = args.get_string("trace-key", "");
  if (key.empty()) key = std::filesystem::path(in).stem().string();
  common::warn_unused(args);

  trace::TextTraceReader reader(in);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.error().c_str());
    return 1;
  }
  std::vector<std::uint64_t> packed;
  std::uint64_t fetches = 0;
  trace::MemOp op;
  while (reader.next(op)) {
    if (op.addr >= (std::uint64_t{1} << 62)) {
      std::fprintf(stderr,
                   "%s: op %zu address %" PRIx64 " exceeds the packed "
                   "62-bit address space\n",
                   in.c_str(), packed.size(), op.addr);
      return 1;
    }
    fetches += op.type == trace::OpType::inst_fetch;
    packed.push_back(trace::MaterializedTrace::pack(op));
  }
  if (!reader.error().empty()) {
    std::fprintf(stderr, "import refused: %s (op %zu)\n",
                 reader.error().c_str(), packed.size());
    return 1;
  }
  if (packed.empty()) {
    std::fprintf(stderr, "import refused: %s holds no ops\n", in.c_str());
    return 1;
  }
  // A TraceCpu reads one fetch past its budget, so a file with F fetches
  // covers budgets up to F - 1 instructions.
  const std::uint64_t instructions = fetches > 0 ? fetches - 1 : 0;
  std::string error;
  if (!trace::write_trace_file(out, packed, instructions, key,
                               {{"imported_from", in}}, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("%s: %zu ops, %" PRIu64 " instructions, trace_key %s\n",
              out.c_str(), packed.size(), instructions, key.c_str());
  return 0;
}

int verify(const std::vector<std::string>& files) {
  if (files.empty()) {
    std::fprintf(stderr, "--verify needs store files as arguments\n");
    return 1;
  }
  for (const auto& path : files) {
    std::string error;
    const auto mapped = trace::MappedTraceFile::open(path, &error);
    if (!mapped) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("%s: ok (trace_key %s, %" PRIu64 " ops, %" PRIu64
                " instructions)\n",
                path.c_str(), mapped->info().trace_key.c_str(),
                mapped->info().op_count, mapped->info().instructions);
  }
  return 0;
}

int dump(const std::vector<std::string>& files, std::uint64_t max_ops) {
  if (files.empty()) {
    std::fprintf(stderr, "--dump needs store files as arguments\n");
    return 1;
  }
  for (const auto& path : files) {
    std::string error;
    const auto mapped = trace::MappedTraceFile::open(path, &error);
    if (!mapped) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("# %s: version %u, %" PRIu64 " ops, %" PRIu64
                " instructions\n",
                path.c_str(), mapped->info().version, mapped->info().op_count,
                mapped->info().instructions);
    for (const auto& [k, v] : mapped->info().meta)
      std::printf("# %s = %s\n", k.c_str(), v.c_str());
    trace::FileTraceSource source(mapped);
    trace::MemOp op;
    std::uint64_t n = 0;
    while (n < max_ops && source.next(op)) {
      const char kind = op.type == trace::OpType::inst_fetch ? 'I'
                        : op.type == trace::OpType::load     ? 'L'
                                                             : 'S';
      std::printf("%c %" PRIx64 "\n", kind, op.addr);
      ++n;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  if (args.has("help")) return usage(argv[0]);
  if (args.has("version")) {
    std::puts(campaign::build_info_line("reap_trace").c_str());
    return 0;
  }

  const bool mode_materialize = args.has("materialize");
  const bool mode_import = args.has("import");
  const bool mode_verify = args.has("verify");
  const bool mode_dump = args.has("dump");
  if (mode_materialize + mode_import + mode_verify + mode_dump != 1)
    return usage(argv[0]);

  if (mode_materialize) return materialize(args);
  if (mode_import) return import_text(args);
  const auto max_ops = args.get_u64("max-ops", UINT64_MAX);
  common::warn_unused(args);
  if (mode_verify) return verify(args.positional());
  return dump(args.positional(), max_ops);
}

#include "reap/campaign/result_sink.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "reap/common/csv.hpp"
#include "reap/common/jsonl.hpp"
#include "reap/common/strings.hpp"
#include "reap/core/config_kv.hpp"

namespace reap::campaign {
namespace {

std::string fmt(double v) { return common::fmt_double(v); }
std::string fmt(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::vector<std::string> result_header() {
  return {"index",
          "workload",
          "policy",
          "ecc_t",
          "mtj",
          "seed",
          "p_rd",
          "instructions",
          "cycles",
          "ipc",
          "sim_seconds",
          "l2_hit_cycles",
          "l2_read_hit_rate",
          "mttf_seconds",
          "failure_rate_per_s",
          "failure_prob_sum",
          "checks",
          "max_concealed",
          "energy_dynamic_j",
          "energy_ecc_decode_j",
          "energy_data_write_j",
          "config"};
}

std::vector<std::string> result_cells(const CampaignPoint& point,
                                      const core::ExperimentResult& r) {
  const auto& cfg = point.config;
  return {fmt(std::uint64_t(point.index)),
          r.workload,
          core::to_string(r.policy),
          fmt(std::uint64_t(cfg.ecc_t)),
          cfg.mtj.name,
          fmt(cfg.seed),
          fmt(r.p_rd),
          fmt(r.instructions),
          fmt(r.cycles),
          fmt(r.ipc),
          fmt(r.sim_seconds),
          fmt(std::uint64_t(r.l2_hit_cycles)),
          fmt(r.hier.l2.read_hit_rate()),
          fmt(r.mttf.mttf_seconds),
          fmt(r.mttf.failure_rate_per_s),
          fmt(r.mttf.failure_prob_sum),
          fmt(r.checks),
          fmt(r.max_concealed),
          fmt(r.energy.dynamic_total_j()),
          fmt(r.energy.ecc_decode_j),
          fmt(r.energy.data_write_j),
          core::to_kv_string(cfg)};
}

// ---------------------------------------------------------------- CSV sink

struct CsvResultSink::Impl {
  explicit Impl(const std::string& path)
      : writer(path, result_header()) {}
  common::CsvWriter writer;
};

CsvResultSink::CsvResultSink(const std::string& path)
    : impl_(std::make_unique<Impl>(path)) {}
CsvResultSink::~CsvResultSink() = default;
bool CsvResultSink::ok() const { return impl_->writer.ok(); }

void CsvResultSink::add_cells(const std::vector<std::string>& cells) {
  impl_->writer.add_row(cells);
}

// -------------------------------------------------------------- JSONL sink

namespace {

// Cells that are plain *finite* numbers representable in a double are
// emitted unquoted; everything else becomes a JSON string. Two traps this
// avoids: strtod happily parses "inf"/"nan" (bare inf is invalid JSON),
// and 64-bit seeds exceed 2^53, so double-based JSON parsers would
// silently round them -- those go out quoted.
bool emit_unquoted(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double d = std::strtod(s.c_str(), &end);
  if (!end || *end != '\0' || !std::isfinite(d)) return false;
  // Integers above 2^53 are not exactly representable as doubles.
  if (s.find_first_of(".eE") == std::string::npos) {
    std::uint64_t u = 0;
    if (!common::parse_u64(s, u)) return false;
    if (u > (1ULL << 53)) return false;
  }
  return true;
}
}  // namespace

std::string jsonl_fields(const std::vector<std::string>& header,
                         const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size() && i < header.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += header[i];
    out += "\":";
    if (emit_unquoted(cells[i]) && header[i] != "workload") {
      out += cells[i];
    } else {
      out += '"';
      out += common::json_escape(cells[i]);
      out += '"';
    }
  }
  return out;
}

struct JsonlResultSink::Impl {
  explicit Impl(const std::string& path) : out(path) {}
  std::ofstream out;
  std::vector<std::string> header = result_header();
};

JsonlResultSink::JsonlResultSink(const std::string& path)
    : impl_(std::make_unique<Impl>(path)) {}
JsonlResultSink::~JsonlResultSink() = default;
bool JsonlResultSink::ok() const { return static_cast<bool>(impl_->out); }

void JsonlResultSink::add_cells(const std::vector<std::string>& cells) {
  if (!impl_->out) return;
  impl_->out << '{' << jsonl_fields(impl_->header, cells) << "}\n";
}

// -------------------------------------------------------------- multi sink

void MultiSink::attach(ResultSink* sink) {
  if (sink) sinks_.push_back(sink);
}

void MultiSink::add_cells(const std::vector<std::string>& cells) {
  for (auto* s : sinks_) s->add_cells(cells);
}

void emit_all(const std::vector<CampaignPoint>& points,
              const std::vector<core::ExperimentResult>& results,
              ResultSink& sink) {
  for (std::size_t i = 0; i < points.size() && i < results.size(); ++i)
    sink.add(points[i], results[i]);
}

}  // namespace reap::campaign

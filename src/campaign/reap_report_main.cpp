// reap_report: offline campaign post-processing. Reads rows written by
// reap_campaign (CSV, JSONL, or execution journals), merges shard outputs,
// recomputes the cross-experiment aggregates, and emits figure data --
// all without re-running a single experiment. See docs/campaign.md.
//
// Usage:
//   reap_report rows.csv                      # print aggregate tables
//   reap_report shard0.csv shard1.csv --merged-csv=all.csv
//   reap_report all.csv --figures=figdata/    # fig5/fig6 CSV + gnuplot
#include <cstdio>
#include <string>
#include <vector>

#include "reap/campaign/cli_usage.hpp"
#include "reap/campaign/report.hpp"
#include "reap/campaign/version.hpp"
#include "reap/campaign/result_sink.hpp"
#include "reap/common/cli.hpp"

using namespace reap;

namespace {

int usage(const char* argv0) {
  std::printf(campaign::kReportUsage, argv0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  if (args.has("version")) {
    std::puts(campaign::build_info_line("reap_report").c_str());
    return 0;
  }
  if (args.has("help") || args.positional().empty()) return usage(argv[0]);

  std::string error;
  std::vector<campaign::RowTable> tables;
  for (const auto& path : args.positional()) {
    auto table = campaign::load_rows(path, &error);
    if (!table) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded %zu rows from %s\n", table->rows.size(),
                 path.c_str());
    tables.push_back(std::move(*table));
  }

  auto merged = campaign::merge_tables(std::move(tables), &error);
  if (!merged) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (merged->truncated_tail)
    std::fprintf(stderr,
                 "warning: an input ended in a torn line (killed run?); "
                 "one row was dropped\n");
  if (!campaign::covers_all_indices(*merged)) {
    if (merged->expected_points)
      std::fprintf(stderr,
                   "warning: rows cover %zu of %llu grid points; "
                   "aggregates use the pairs that are present\n",
                   merged->rows.size(),
                   static_cast<unsigned long long>(*merged->expected_points));
    else
      std::fprintf(stderr,
                   "warning: merged rows do not cover a dense 0..n-1 index "
                   "range (missing shard or partial run?); aggregates use "
                   "the pairs that are present\n");
  }

  // Merged row re-emission: cells pass through the ordinary sinks, so the
  // output is byte-identical to what one un-sharded run would have
  // written. The sinks emit this binary's schema, so rows from a binary
  // with a different column set cannot be re-emitted (aggregation below
  // still works -- it looks columns up by name). Checked before any sink
  // opens: constructing one truncates its output file.
  if ((args.has("merged-csv") || args.has("merged-jsonl")) &&
      merged->header != campaign::result_header()) {
    std::fprintf(stderr,
                 "cannot write merged rows: input columns differ from this "
                 "binary's row schema\n");
    return 1;
  }
  const auto emit_merged = [&](campaign::ResultSink& sink, bool ok,
                               const char* what, const std::string& path) {
    if (!ok) {
      std::fprintf(stderr, "cannot write %s output: %s\n", what,
                   path.c_str());
      return false;
    }
    for (const auto& row : merged->rows) sink.add_cells(row);
    return true;
  };
  if (args.has("merged-csv")) {
    const auto path = args.get_string("merged-csv", "");
    campaign::CsvResultSink csv(path);
    if (!emit_merged(csv, csv.ok(), "csv", path)) return 1;
  }
  if (args.has("merged-jsonl")) {
    const auto path = args.get_string("merged-jsonl", "");
    campaign::JsonlResultSink jsonl(path);
    if (!emit_merged(jsonl, jsonl.ok(), "jsonl", path)) return 1;
  }

  const std::string baseline_name =
      args.get_string("baseline", "conventional");
  std::optional<campaign::CampaignAggregates> agg;
  if (baseline_name != "none") {
    const auto baseline = core::policy_from_string(baseline_name);
    if (!baseline) {
      std::fprintf(stderr, "unknown --baseline policy: %s\n",
                   baseline_name.c_str());
      return 1;
    }
    agg = campaign::aggregate_rows(*merged, *baseline, &error);
    if (!agg) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("%zu rows, %zu matched comparisons\n\n",
                merged->rows.size(), agg->comparisons.size());
    std::printf("%s", agg->render().c_str());
  }

  if (args.has("figures")) {
    if (!agg) {
      std::fprintf(stderr,
                   "--figures needs aggregates; do not pass "
                   "--baseline=none with it\n");
      return 1;
    }
    const auto dir = args.get_string("figures", "");
    const auto written = campaign::write_figure_data(*agg, dir, &error);
    if (!written) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    for (const auto& path : *written)
      std::fprintf(stderr, "wrote %s\n", path.c_str());
  }

  common::warn_unused(args);
  return 0;
}

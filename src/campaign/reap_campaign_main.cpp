// reap_campaign: expand a campaign spec, run it across threads, emit rows
// and aggregates. Campaigns are durable, partitionable artifacts: a grid
// can be split across machines with --shard, every completed row is
// journaled the moment it finishes (--journal), and a killed run continues
// from its journal with --resume. Merging shard outputs and rendering
// figures offline is reap_report's job. See docs/campaign.md.
//
// Usage:
//   reap_campaign --spec=grid.spec [overrides]
//   reap_campaign --workloads=mcf,h264ref --policies=conventional,reap
//                 --ecc=1,2 --seeds=0,1 --threads=8 --csv=out.csv
//   reap_campaign --spec=grid.spec --shard=0/4 --journal=s0.journal
//   reap_campaign --spec=grid.spec --shard=0/4 --journal=s0.journal --resume
//   reap_campaign --config="workload=mcf policy=reap ..."   # one row re-run
//   reap_campaign --list-workloads | --list-policies
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "reap/campaign/campaign.hpp"
#include "reap/campaign/cli_usage.hpp"
#include "reap/campaign/exit_codes.hpp"
#include "reap/campaign/version.hpp"
#include "reap/common/cli.hpp"
#include "reap/common/fault.hpp"
#include "reap/common/frame.hpp"
#include "reap/core/config_kv.hpp"
#include "reap/trace/replay.hpp"
#include "reap/trace/spec2006.hpp"
#include "reap/trace/trace_store.hpp"

using namespace reap;

namespace {

int usage(const char* argv0) {
  std::printf(campaign::kCampaignUsage, argv0);
  return 0;
}

// SIGTERM/SIGINT request a graceful stop: workers finish the row in
// hand, the journal flushes at a row boundary (it is flushed per row
// already, so there is no torn tail to heal), and the process exits
// kExitInterrupted so a supervisor can tell "asked to stop" from
// "crashed". The handler only sets a flag; the runner's should_stop
// does the rest.
volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

double mb(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

void print_row(const campaign::CampaignPoint& pt,
               const core::ExperimentResult& r) {
  const auto header = campaign::result_header();
  const auto cells = campaign::result_cells(pt, r);
  for (std::size_t i = 0; i < header.size(); ++i)
    std::printf("%-20s %s\n", header[i].c_str(), cells[i].c_str());
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  if (args.has("help")) return usage(argv[0]);
  if (args.has("version")) {
    std::puts(campaign::build_info_line("reap_campaign").c_str());
    return 0;
  }

  // Fault injection (chaos testing): sites armed from the REAP_FAULT
  // environment (inherited by dispatched workers) and/or --inject-fault.
  {
    std::string ferr;
    if (!common::fault::arm_from_env(&ferr)) {
      std::fprintf(stderr, "bad %s: %s\n", common::fault::kEnvVar,
                   ferr.c_str());
      return 1;
    }
    if (args.has("inject-fault") &&
        !common::fault::arm(args.get_string("inject-fault", ""), &ferr)) {
      std::fprintf(stderr, "bad --inject-fault: %s\n", ferr.c_str());
      return 1;
    }
  }

  if (args.has("list-workloads")) {
    for (const auto& name : trace::spec2006_names()) std::puts(name.c_str());
    return 0;
  }
  if (args.has("list-policies")) {
    for (const auto kind : core::all_policies())
      std::puts(core::to_string(kind).c_str());
    return 0;
  }

  // Single-config mode: reproduce one emitted row.
  if (args.has("config")) {
    std::string error;
    const auto cfg = core::config_from_kv(args.get_string("config", ""), &error);
    if (!cfg) {
      std::fprintf(stderr, "bad --config: %s\n", error.c_str());
      return 1;
    }
    campaign::CampaignPoint pt;
    pt.config = *cfg;
    print_row(pt, core::run_experiment(*cfg));
    return 0;
  }

  // Assemble the spec key/value map: file first, flags override.
  std::string error;
  const auto kv = campaign::spec_kv_from_cli(args, &error);
  if (!kv) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (kv->empty()) return usage(argv[0]);

  const auto spec = campaign::CampaignSpec::from_kv(*kv, &error);
  if (!spec) {
    std::fprintf(stderr, "bad spec: %s\n", error.c_str());
    return 1;
  }

  std::vector<campaign::CampaignPoint> points;
  try {
    points = campaign::expand(*spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  // Shard selection: deterministic, disjoint coverage by index stripe.
  std::size_t shard_index = 0, shard_count = 1;
  if (args.has("shard") &&
      !common::parse_shard(args.get_string("shard", ""), shard_index,
                           shard_count)) {
    std::fprintf(stderr, "bad --shard (want I/N with I < N): %s\n",
                 args.get_string("shard", "").c_str());
    return 1;
  }
  const bool sharded = shard_count > 1;
  const auto mine = campaign::shard(points, shard_index, shard_count);

  // Trace replay: 0 (default) = off, generate per point exactly as before.
  const std::uint64_t trace_cache_mb = args.get_u64("trace-cache-mb", 0);
  // Trace store: keys that resolve to a .reaptrace file in this directory
  // replay the mmapped file instead of generating (see docs/campaign.md,
  // "Trace store").
  const std::string trace_dir = args.get_string("trace-dir", "");

  if (args.has("dry-run")) {
    std::printf("campaign '%s': %zu points\n", spec->name.c_str(),
                points.size());
    if (sharded)
      std::printf("shard %zu/%zu: %zu points\n", shard_index, shard_count,
                  mine.size());
    // The trace-group plan, next to the shard plan: how many distinct
    // traces this (shard of the) grid replays and the estimated peak of
    // materialized bytes — with grouped scheduling, one trace per worker
    // thread is live at a time, plus whatever the cache retains.
    const auto plan = campaign::trace_plan(mine);
    campaign::RunnerOptions thread_probe;
    thread_probe.threads = static_cast<unsigned>(args.get_u64("threads", 0));
    const unsigned threads =
        campaign::CampaignRunner(thread_probe).effective_threads(mine.size());
    if (trace_cache_mb > 0)
      std::printf(
          "trace groups: %zu (largest ~%.1f MB; est. peak ~%.1f MB "
          "materialized on %u threads, cache cap %llu MB)\n",
          plan.groups, mb(plan.largest_bytes),
          mb(plan.largest_bytes * threads), threads,
          static_cast<unsigned long long>(trace_cache_mb));
    else
      std::printf(
          "trace groups: %zu (largest ~%.1f MB; replay off — enable with "
          "--trace-cache-mb=N)\n",
          plan.groups, mb(plan.largest_bytes));
    if (!trace_dir.empty()) {
      std::unordered_set<std::string> keys, found;
      for (const auto& pt : mine) {
        if (!keys.insert(pt.trace_key).second) continue;
        const auto path = std::filesystem::path(trace_dir) /
                          trace::trace_store_filename(pt.trace_key);
        if (std::filesystem::exists(path)) found.insert(pt.trace_key);
      }
      std::printf(
          "trace store: %zu of %zu trace keys resolve to files in %s "
          "(the rest generate)\n",
          found.size(), keys.size(), trace_dir.c_str());
    }
    for (const auto& pt : mine)
      std::printf("%4zu  %s\n", pt.index,
                  core::to_kv_string(pt.config).c_str());
    return 0;
  }

  // Resume: load the journal, verify it describes this exact run, and
  // collect the rows that are already durable.
  const std::string journal_path = args.get_string("journal", "");
  const bool resume = args.has("resume");
  if (resume && journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal=PATH\n");
    return 1;
  }
  // --journal-stdout: mirror the journal over stdout as CRC32C-framed
  // records for a dispatcher tailing this worker across a connection.
  const bool journal_stdout = args.has("journal-stdout");
  if (journal_stdout && journal_path.empty()) {
    std::fprintf(stderr, "--journal-stdout requires --journal=PATH\n");
    return 1;
  }
  // A dispatcher that dies (or drops the connection) closes our stdout;
  // the default SIGPIPE would kill this worker too, losing the local
  // journal's value as the backup copy. Ignore it -- writes fail
  // silently, the disk journal stays authoritative on this side.
  if (journal_stdout) std::signal(SIGPIPE, SIG_IGN);
  std::vector<campaign::JournalRow> prior;
  bool append_journal = false;
  if (resume && std::filesystem::exists(journal_path)) {
    auto loaded = campaign::read_journal(journal_path, &error);
    if (!loaded) {
      std::fprintf(stderr, "cannot resume: %s\n", error.c_str());
      return 1;
    }
    std::string why;
    if (!campaign::journal_compatible(loaded->header, *spec, points.size(),
                                      shard_index, shard_count, &why)) {
      std::fprintf(stderr, "cannot resume: %s\n", why.c_str());
      return 1;
    }
    if (loaded->truncated_tail)
      std::fprintf(stderr,
                   "note: journal ends in a torn line (killed mid-write); "
                   "that row will re-run\n");
    for (const auto& bad : loaded->corrupt)
      std::fprintf(stderr,
                   "note: journal line %zu is corrupt (%s); skipped, its "
                   "row will re-run\n",
                   bad.line_no, bad.reason.c_str());
    if (loaded->truncated_tail || !loaded->corrupt.empty()) {
      // Heal the journal before appending: new rows written after an
      // unterminated line would corrupt both, and re-serializing only
      // the parsed rows drops the corrupt ones for good.
      if (!campaign::rewrite_journal(journal_path, *loaded, &error)) {
        std::fprintf(stderr, "cannot resume: %s\n", error.c_str());
        return 1;
      }
    }
    prior = campaign::merge_journal_rows(std::move(loaded->rows), {});
    append_journal = true;
  } else if (resume) {
    std::fprintf(stderr, "note: no journal at %s; starting fresh\n",
                 journal_path.c_str());
  }

  // --skip-rows: keys excluded from this run (the dispatcher's
  // quarantine/bisect mechanism). A run is complete -- exit 0 -- when
  // every *non-skipped* row of its shard is journaled.
  std::unordered_set<std::string> skipped;
  if (args.has("skip-rows")) {
    const std::string list = args.get_string("skip-rows", "");
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const auto next = list.find(',', pos);
      const auto end = next == std::string::npos ? list.size() : next;
      if (end > pos) skipped.insert(list.substr(pos, end - pos));
      if (next == std::string::npos) break;
      pos = next + 1;
    }
  }

  std::unordered_set<std::string> completed;
  for (const auto& row : prior) completed.insert(row.key);
  std::vector<campaign::CampaignPoint> to_run;
  to_run.reserve(mine.size());
  for (const auto& pt : mine)
    if (!completed.count(pt.key) && !skipped.count(pt.key))
      to_run.push_back(pt);

  // Trace store resolution: map every distinct trace key of the rows about
  // to run to its .reaptrace file, opening and *fully* validating each one
  // (header and body CRC32C) before any output file is created — a corrupt
  // or too-short store file refuses the run with a prompt exit 1 and a
  // distinct reason, never wrong bytes discovered mid-run. A key with no
  // file falls back to in-process generation.
  std::unordered_map<std::string, trace::MaterializedTrace> mapped_traces;
  if (!trace_dir.empty()) {
    for (const auto& pt : to_run) {
      if (mapped_traces.count(pt.trace_key)) continue;
      const auto path = (std::filesystem::path(trace_dir) /
                         trace::trace_store_filename(pt.trace_key))
                            .string();
      if (!std::filesystem::exists(path)) continue;
      const auto mapped = trace::MappedTraceFile::open(path, &error);
      if (!mapped) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      if (mapped->info().trace_key != pt.trace_key) {
        std::fprintf(stderr,
                     "%s: trace_key mismatch (file records '%s', this run "
                     "wants '%s')\n",
                     path.c_str(), mapped->info().trace_key.c_str(),
                     pt.trace_key.c_str());
        return 1;
      }
      const std::uint64_t budget =
          pt.config.warmup_instructions + pt.config.instructions;
      if (mapped->info().instructions < budget) {
        std::fprintf(stderr,
                     "%s: trace covers %llu instructions, this run needs "
                     "%llu (warmup + instructions)\n",
                     path.c_str(),
                     static_cast<unsigned long long>(
                         mapped->info().instructions),
                     static_cast<unsigned long long>(budget));
        return 1;
      }
      mapped_traces.emplace(pt.trace_key, mapped->borrow(mapped));
    }
  }

  // Open sinks before running so an unwritable path fails fast instead of
  // after the whole grid has been simulated.
  campaign::MultiSink sinks;
  std::unique_ptr<campaign::CsvResultSink> csv;
  std::unique_ptr<campaign::JsonlResultSink> jsonl;
  if (args.has("csv")) {
    csv = std::make_unique<campaign::CsvResultSink>(
        args.get_string("csv", ""));
    if (!csv->ok()) {
      std::fprintf(stderr, "cannot write csv output: %s\n",
                   args.get_string("csv", "").c_str());
      return 1;
    }
    sinks.attach(csv.get());
  }
  if (args.has("jsonl")) {
    jsonl = std::make_unique<campaign::JsonlResultSink>(
        args.get_string("jsonl", ""));
    if (!jsonl->ok()) {
      std::fprintf(stderr, "cannot write jsonl output: %s\n",
                   args.get_string("jsonl", "").c_str());
      return 1;
    }
    sinks.attach(jsonl.get());
  }

  std::optional<campaign::JournalWriter> journal;
  if (!journal_path.empty()) {
    if (append_journal) {
      journal.emplace(journal_path);
    } else {
      journal.emplace(journal_path,
                      campaign::JournalHeader::for_run(
                          *spec, points.size(), shard_index, shard_count));
    }
    if (!journal->ok()) {
      std::fprintf(stderr, "cannot write journal: %s\n",
                   journal_path.c_str());
      return 1;
    }
    if (journal_stdout)
      journal->set_mirror([](const std::string& line) {
        const auto framed = common::frame_line(line);
        std::fwrite(framed.data(), 1, framed.size(), stdout);
        std::fflush(stdout);
      });
  }

  // Streaming pipeline: rows are journaled (and buffered for the merge)
  // in completion order the moment each experiment finishes; the runner's
  // mutex serializes the callback.
  std::vector<campaign::JournalRow> fresh;
  fresh.reserve(to_run.size());
  campaign::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  opts.on_result = [&](const campaign::CampaignPoint& pt,
                       const core::ExperimentResult& r) {
    auto cells = campaign::result_cells(pt, r);
    if (journal) journal->add(pt.key, cells);
    fresh.push_back({pt.key, pt.index, std::move(cells)});
  };
  // Stop claiming points on SIGTERM/SIGINT or after a journal append
  // fails (EIO/ENOSPC): either way the run ends cleanly at a row
  // boundary and --resume continues from the journal.
  opts.should_stop = [&journal] {
    return g_signal != 0 || (journal && journal->io_errno() != 0);
  };
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  campaign::ProgressReporter progress;
  const bool quiet = args.has("quiet");
  if (!quiet)
    opts.on_progress = [&progress](std::size_t d, std::size_t t) {
      progress(d, t);
    };

  // Trace replay: group the schedule by trace identity and materialize
  // each paired trace once; every other point of the group replays the
  // byte-identical stream from the cache instead of regenerating it.
  // Keys with a store file replay the mmapped arena instead: borrowed
  // traces account zero bytes, so the cache retains them for free even at
  // cap 0 (--trace-dir alone, no --trace-cache-mb).
  std::optional<campaign::TraceCache> trace_cache;
  if (trace_cache_mb > 0 || !mapped_traces.empty()) {
    trace_cache.emplace(static_cast<std::size_t>(trace_cache_mb) << 20);
    opts.group_key = [](const campaign::CampaignPoint& pt) {
      return pt.trace_key;
    };
    opts.run_point_fn = [&cache = *trace_cache, &mapped_traces,
                         trace_cache_mb](const campaign::CampaignPoint& pt) {
      const auto it = mapped_traces.find(pt.trace_key);
      if (it == mapped_traces.end() && trace_cache_mb == 0) {
        // --trace-dir without a cache: keys with no store file generate
        // per point, exactly the default path.
        return core::run_experiment(pt.config);
      }
      const auto trace = cache.acquire(pt.trace_key, [&] {
        if (it != mapped_traces.end()) return it->second;  // shares the mmap
        const std::uint64_t budget =
            pt.config.warmup_instructions + pt.config.instructions;
        trace::WorkloadTraceSource gen(pt.config.workload);
        return trace::MaterializedTrace::materialize(gen, budget);
      });
      trace::ReplayTraceSource source(*trace);
      return core::run_experiment_replay(pt.config, source);
    };
    if (!quiet) progress.watch_trace_cache(&trace_cache->stats());
  }

  campaign::CampaignRunner runner(opts);
  std::printf("campaign '%s': %zu points on %u threads\n", spec->name.c_str(),
              points.size(), runner.effective_threads(to_run.size()));
  if (sharded)
    std::printf("shard %zu/%zu: %zu points\n", shard_index, shard_count,
                mine.size());
  if (!prior.empty())
    std::printf("resuming: %zu of %zu rows already journaled, %zu to run\n",
                prior.size(), mine.size(), to_run.size());
  const auto results = runner.run(to_run);

  // An aborted run stops here: the journal holds every completed row
  // (flushed per row, no torn tail), the in-memory results are partial,
  // and the distinct exit codes tell a supervisor which case this is.
  if (journal && journal->io_errno() != 0) {
    std::fprintf(stderr,
                 "journal append failed (%s); stopped at a row boundary, "
                 "re-run with --resume to continue\n",
                 std::strerror(journal->io_errno()));
    return campaign::kExitJournalIo;
  }
  if (g_signal != 0) {
    std::fprintf(stderr,
                 "interrupted (signal %d); journal is complete through the "
                 "last finished row, re-run with --resume to continue\n",
                 static_cast<int>(g_signal));
    return campaign::kExitInterrupted;
  }

  // Merge step: journaled + fresh rows, deduplicated and re-ordered by
  // grid index, stream through the sinks -- byte-identical to an
  // uninterrupted single-process run over the same rows.
  const auto merged =
      campaign::merge_journal_rows(std::move(prior), std::move(fresh));
  campaign::emit_rows(merged, sinks);

  // Aggregates.
  const std::string baseline_name =
      args.get_string("baseline", "conventional");
  if (baseline_name != "none" && sharded) {
    std::printf(
        "\n(shard %zu/%zu is a partial grid; merge the shard outputs with "
        "reap_report for aggregates)\n",
        shard_index, shard_count);
  } else if (baseline_name != "none") {
    const auto baseline = core::policy_from_string(baseline_name);
    if (!baseline) {
      std::fprintf(stderr, "unknown --baseline policy: %s\n",
                   baseline_name.c_str());
      return 1;
    }
    std::optional<campaign::CampaignAggregates> agg;
    if (to_run.size() == points.size()) {
      // Fresh full run: every result is in memory, indexed by grid index.
      agg = campaign::aggregate(*spec, points, results, *baseline);
    } else {
      // Resumed run: journaled rows stand in for re-running; the offline
      // row aggregation reproduces the in-memory numbers exactly.
      campaign::RowTable table;
      table.header = campaign::result_header();
      table.expected_points = points.size();
      for (const auto& row : merged) table.rows.push_back(row.cells);
      if (campaign::covers_all_indices(table)) {
        agg = campaign::aggregate_rows(table, *baseline, &error);
        if (!agg) std::printf("\n(no aggregates: %s)\n", error.c_str());
      } else {
        std::printf("\n(journal covers a partial grid; no aggregates)\n");
      }
    }
    if (agg) {
      std::printf("\n%s", agg->render().c_str());
    } else if (to_run.size() == points.size()) {
      std::printf("\n(baseline %s not in the grid; no aggregates)\n",
                  baseline_name.c_str());
    }
  }

  common::warn_unused(args);
  return 0;
}

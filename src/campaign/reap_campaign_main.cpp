// reap_campaign: expand a campaign spec, run it across threads, emit rows
// and aggregates. See docs/campaign.md.
//
// Usage:
//   reap_campaign --spec=grid.spec [overrides]
//   reap_campaign --workloads=mcf,h264ref --policies=conventional,reap
//                 --ecc=1,2 --seeds=0,1 --threads=8 --csv=out.csv
//   reap_campaign --config="workload=mcf policy=reap ..."   # one row re-run
//   reap_campaign --list-workloads | --list-policies
#include <cstdio>
#include <string>

#include "reap/campaign/campaign.hpp"
#include "reap/common/cli.hpp"
#include "reap/core/config_kv.hpp"
#include "reap/trace/spec2006.hpp"

using namespace reap;

namespace {

int usage(const char* argv0) {
  std::printf(
      "usage: %s [--spec=FILE] [--key=value ...]\n"
      "\n"
      "spec keys (file or flags; flags override the file):\n"
      "  workloads=a,b|all     policies=conventional,reap,...|all\n"
      "  ecc=1,2               read_ratios=0.55,0.693,0.8\n"
      "  seeds=0,1,2           campaign_seed=N\n"
      "  instructions=N        warmup=N        clock_ghz=G\n"
      "  scrub_every=N,N,...   dirty_check=0|1\n"
      "  l2_kb=N  l2_ways=N    block_bytes=N   name=STR\n"
      "\n"
      "runner/output flags:\n"
      "  --threads=N           worker threads (0 = all cores)\n"
      "  --baseline=POLICY     aggregate vs this policy (default\n"
      "                        conventional; 'none' to skip aggregates)\n"
      "  --csv=PATH            per-experiment rows as CSV\n"
      "  --jsonl=PATH          per-experiment rows as JSONL\n"
      "  --quiet               no progress line\n"
      "  --dry-run             expand and list the grid, run nothing\n"
      "\n"
      "other modes:\n"
      "  --config=\"k=v ...\"    run exactly one experiment from a row's\n"
      "                        config string and print its row\n"
      "  --list-workloads      bundled workload profile names\n"
      "  --list-policies       read-path policy names\n",
      argv0);
  return 0;
}

void print_row(const campaign::CampaignPoint& pt,
               const core::ExperimentResult& r) {
  const auto header = campaign::result_header();
  const auto cells = campaign::result_cells(pt, r);
  for (std::size_t i = 0; i < header.size(); ++i)
    std::printf("%-20s %s\n", header[i].c_str(), cells[i].c_str());
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  if (args.has("help")) return usage(argv[0]);

  if (args.has("list-workloads")) {
    for (const auto& name : trace::spec2006_names()) std::puts(name.c_str());
    return 0;
  }
  if (args.has("list-policies")) {
    for (const auto kind : core::all_policies())
      std::puts(core::to_string(kind).c_str());
    return 0;
  }

  // Single-config mode: reproduce one emitted row.
  if (args.has("config")) {
    std::string error;
    const auto cfg = core::config_from_kv(args.get_string("config", ""), &error);
    if (!cfg) {
      std::fprintf(stderr, "bad --config: %s\n", error.c_str());
      return 1;
    }
    campaign::CampaignPoint pt;
    pt.config = *cfg;
    print_row(pt, core::run_experiment(*cfg));
    return 0;
  }

  // Assemble the spec key/value map: file first, flags override.
  std::map<std::string, std::string> kv;
  std::string error;
  if (args.has("spec")) {
    const auto file_kv =
        campaign::parse_spec_file(args.get_string("spec", ""), &error);
    if (!file_kv) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    kv = *file_kv;
  }
  for (const char* key :
       {"name", "workloads", "policies", "ecc", "read_ratios", "seeds",
        "campaign_seed", "instructions", "warmup", "clock_ghz", "scrub_every",
        "dirty_check", "l2_kb", "l2_ways", "block_bytes"}) {
    if (args.has(key)) kv[key] = args.get_string(key, "");
  }
  if (kv.empty()) return usage(argv[0]);

  const auto spec = campaign::CampaignSpec::from_kv(kv, &error);
  if (!spec) {
    std::fprintf(stderr, "bad spec: %s\n", error.c_str());
    return 1;
  }

  std::vector<campaign::CampaignPoint> points;
  try {
    points = campaign::expand(*spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  if (args.has("dry-run")) {
    std::printf("campaign '%s': %zu points\n", spec->name.c_str(),
                points.size());
    for (const auto& pt : points)
      std::printf("%4zu  %s\n", pt.index,
                  core::to_kv_string(pt.config).c_str());
    return 0;
  }

  // Open sinks before running so an unwritable path fails fast instead of
  // after the whole grid has been simulated.
  campaign::MultiSink sinks;
  std::unique_ptr<campaign::CsvResultSink> csv;
  std::unique_ptr<campaign::JsonlResultSink> jsonl;
  if (args.has("csv")) {
    csv = std::make_unique<campaign::CsvResultSink>(
        args.get_string("csv", ""));
    if (!csv->ok()) {
      std::fprintf(stderr, "cannot write csv output: %s\n",
                   args.get_string("csv", "").c_str());
      return 1;
    }
    sinks.attach(csv.get());
  }
  if (args.has("jsonl")) {
    jsonl = std::make_unique<campaign::JsonlResultSink>(
        args.get_string("jsonl", ""));
    if (!jsonl->ok()) {
      std::fprintf(stderr, "cannot write jsonl output: %s\n",
                   args.get_string("jsonl", "").c_str());
      return 1;
    }
    sinks.attach(jsonl.get());
  }

  campaign::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  campaign::ProgressReporter progress;
  const bool quiet = args.has("quiet");
  if (!quiet)
    opts.on_progress = [&progress](std::size_t d, std::size_t t) {
      progress(d, t);
    };

  campaign::CampaignRunner runner(opts);
  std::printf("campaign '%s': %zu points on %u threads\n", spec->name.c_str(),
              points.size(), runner.effective_threads(points.size()));
  const auto results = runner.run(points);
  campaign::emit_all(points, results, sinks);

  // Aggregates.
  const std::string baseline_name =
      args.get_string("baseline", "conventional");
  if (baseline_name != "none") {
    const auto baseline = core::policy_from_string(baseline_name);
    if (!baseline) {
      std::fprintf(stderr, "unknown --baseline policy: %s\n",
                   baseline_name.c_str());
      return 1;
    }
    const auto agg =
        campaign::aggregate(*spec, points, results, *baseline);
    if (agg) {
      std::printf("\n%s", agg->render().c_str());
    } else {
      std::printf("\n(baseline %s not in the grid; no aggregates)\n",
                  baseline_name.c_str());
    }
  }

  for (const auto& key : args.unconsumed())
    std::fprintf(stderr, "warning: unused flag --%s\n", key.c_str());
  return 0;
}

#include "reap/campaign/progress.hpp"

#include "reap/campaign/trace_cache.hpp"

namespace reap::campaign {

void ProgressReporter::operator()(std::size_t done, std::size_t total) {
  const auto now = Clock::now();
  if (!started_) {
    start_ = now;
    started_ = true;
  }
  // Rate-limit to ~5 updates/second (but always print the final one) and
  // return before any formatting: this runs under the runner's progress
  // mutex, so the common path must stay a clock read and a compare.
  if (done != total &&
      now - last_print_ < std::chrono::milliseconds(200))
    return;
  last_print_ = now;

  const double elapsed =
      std::chrono::duration<double>(now - start_).count();
  const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
  const double eta =
      rate > 0.0 ? static_cast<double>(total - done) / rate : 0.0;
  std::fprintf(out_,
               "\r  campaign: %zu/%zu (%.0f%%)  %.2f rows/s  "
               "%.1fs elapsed, %.1fs eta",
               done, total,
               100.0 * static_cast<double>(done) / static_cast<double>(total),
               rate, elapsed, eta);
  if (cache_) {
    // Relaxed snapshots: the counters move under the workers' feet and the
    // field is informational, not an invariant.
    const auto h = cache_->hits.load(std::memory_order_relaxed);
    const auto m = cache_->misses.load(std::memory_order_relaxed);
    std::fprintf(out_, "  trace %lluh/%llum",
                 static_cast<unsigned long long>(h),
                 static_cast<unsigned long long>(m));
  }
  if (done == total) std::fputc('\n', out_);
  std::fflush(out_);
}

}  // namespace reap::campaign

#include "reap/campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

namespace reap::campaign {
namespace {

// A contiguous, mutex-guarded range of point indices. Owners pop from the
// front; thieves take the back half. Each pop corresponds to one whole
// experiment (milliseconds to seconds of work), so the lock is cold.
class Shard {
 public:
  void assign(std::size_t begin, std::size_t end) {
    std::lock_guard lock(mu_);
    begin_ = begin;
    end_ = end;
  }

  bool pop(std::size_t& idx) {
    std::lock_guard lock(mu_);
    if (begin_ >= end_) return false;
    idx = begin_++;
    return true;
  }

  // Removes the back half (at least one element) of the range; returns
  // false if fewer than two elements remain (stealing a lone element from
  // a worker that is about to pop it would just bounce work around).
  bool steal(std::size_t& begin, std::size_t& end) {
    std::lock_guard lock(mu_);
    const std::size_t remaining = end_ - begin_;
    if (remaining < 2) return false;
    const std::size_t take = remaining / 2;
    begin = end_ - take;
    end = end_;
    end_ -= take;
    return true;
  }

  std::size_t remaining() {
    std::lock_guard lock(mu_);
    return end_ - begin_;
  }

 private:
  std::mutex mu_;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
};

}  // namespace

CampaignRunner::CampaignRunner(RunnerOptions opts) : opts_(std::move(opts)) {
  if (!opts_.run_fn) opts_.run_fn = core::run_experiment;
}

unsigned CampaignRunner::effective_threads(std::size_t n_points) const {
  unsigned n = opts_.threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(
      std::min<std::size_t>(n, std::max<std::size_t>(1, n_points)));
}

std::vector<core::ExperimentResult> CampaignRunner::run(
    const std::vector<CampaignPoint>& points) const {
  const std::size_t total = points.size();
  std::vector<core::ExperimentResult> results(total);
  if (total == 0) return results;

  const unsigned n_threads = effective_threads(total);

  // Pre-split [0, total) into one contiguous shard per worker.
  std::vector<Shard> shards(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) {
    const std::size_t begin = total * t / n_threads;
    const std::size_t end = total * (t + 1) / n_threads;
    shards[t].assign(begin, end);
  }

  std::atomic<std::size_t> done{0};
  // Exact termination: a stolen range is briefly invisible between the
  // victim's steal() and the thief's assign(), so scanning shard sizes can
  // transiently read zero while work remains. `unclaimed` counts points
  // not yet popped anywhere and is decremented only at pop time, making
  // "nothing left" an exact condition.
  std::atomic<std::size_t> unclaimed{total};
  std::mutex progress_mu;

  const auto run_one = [&](std::size_t idx) {
    unclaimed.fetch_sub(1, std::memory_order_relaxed);
    results[idx] = opts_.run_fn(points[idx].config);
    const std::size_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (opts_.on_result || opts_.on_progress) {
      std::lock_guard lock(progress_mu);
      if (opts_.on_result) opts_.on_result(points[idx], results[idx]);
      if (opts_.on_progress) opts_.on_progress(d, total);
    }
  };

  const auto worker = [&](unsigned self) {
    for (;;) {
      std::size_t idx;
      if (shards[self].pop(idx)) {
        run_one(idx);
        continue;
      }
      // Own shard drained: steal the back half of the fullest victim, or
      // take its lone element directly when halving is not worthwhile.
      std::size_t best = 0, best_remaining = 0;
      for (unsigned v = 0; v < n_threads; ++v) {
        if (v == self) continue;
        const std::size_t r = shards[v].remaining();
        if (r > best_remaining) {
          best_remaining = r;
          best = v;
        }
      }
      if (best_remaining == 0) {
        if (unclaimed.load(std::memory_order_relaxed) == 0)
          return;  // every point has been popped somewhere
        std::this_thread::yield();  // a steal is mid-flight; rescan
        continue;
      }
      std::size_t b, e;
      if (best_remaining >= 2 && shards[best].steal(b, e)) {
        shards[self].assign(b, e);
      } else if (shards[best].pop(idx)) {
        run_one(idx);
      } else {
        std::this_thread::yield();  // lost a race; rescan
      }
    }
  };

  if (n_threads == 1) {
    worker(0);
    return results;
  }

  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) threads.emplace_back(worker, t);
  for (auto& th : threads) th.join();
  return results;
}

}  // namespace reap::campaign

#include "reap/campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <unordered_map>

#include "reap/common/fault.hpp"

namespace reap::campaign {
namespace {

// A contiguous, mutex-guarded range of point indices. Owners pop from the
// front; thieves take the back half. Each pop corresponds to one whole
// experiment (milliseconds to seconds of work), so the lock is cold.
class Shard {
 public:
  void assign(std::size_t begin, std::size_t end) {
    std::lock_guard lock(mu_);
    begin_ = begin;
    end_ = end;
  }

  bool pop(std::size_t& idx) {
    std::lock_guard lock(mu_);
    if (begin_ >= end_) return false;
    idx = begin_++;
    return true;
  }

  // Removes the back half (at least one element) of the range; returns
  // false if fewer than two elements remain (stealing a lone element from
  // a worker that is about to pop it would just bounce work around).
  bool steal(std::size_t& begin, std::size_t& end) {
    std::lock_guard lock(mu_);
    const std::size_t remaining = end_ - begin_;
    if (remaining < 2) return false;
    const std::size_t take = remaining / 2;
    begin = end_ - take;
    end = end_;
    end_ -= take;
    return true;
  }

  std::size_t remaining() {
    std::lock_guard lock(mu_);
    return end_ - begin_;
  }

 private:
  std::mutex mu_;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
};

// The visiting order of the workers: positions into `points`, identity by
// default, grouped by group_key when one is set. Grouping is a stable
// reorder — groups sorted by the smallest input position they contain,
// members in input order — so a 1-thread run visits every group en bloc
// and deterministically.
std::vector<std::size_t> schedule_order(
    const std::vector<CampaignPoint>& points,
    const std::function<std::string(const CampaignPoint&)>& group_key) {
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (!group_key) return order;
  std::unordered_map<std::string, std::size_t> rank;
  rank.reserve(points.size());
  std::vector<std::size_t> ranks(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    ranks[i] = rank.emplace(group_key(points[i]), rank.size()).first->second;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ranks[a] < ranks[b];
                   });
  return order;
}

}  // namespace

CampaignRunner::CampaignRunner(RunnerOptions opts) : opts_(std::move(opts)) {
  if (!opts_.run_fn) opts_.run_fn = core::run_experiment;
}

unsigned CampaignRunner::effective_threads(std::size_t n_points) const {
  unsigned n = opts_.threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(
      std::min<std::size_t>(n, std::max<std::size_t>(1, n_points)));
}

std::vector<core::ExperimentResult> CampaignRunner::run(
    const std::vector<CampaignPoint>& points) const {
  const std::size_t total = points.size();
  std::vector<core::ExperimentResult> results(total);
  if (total == 0) return results;

  const unsigned n_threads = effective_threads(total);
  const std::vector<std::size_t> order = schedule_order(points, opts_.group_key);

  // Pre-split [0, total) into one contiguous shard per worker. Shards hold
  // *schedule positions*; order[] maps a position to its input index, so
  // grouped scheduling never disturbs the positional results contract.
  std::vector<Shard> shards(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) {
    const std::size_t begin = total * t / n_threads;
    const std::size_t end = total * (t + 1) / n_threads;
    shards[t].assign(begin, end);
  }

  std::atomic<std::size_t> done{0};
  // Exact termination: a stolen range is briefly invisible between the
  // victim's steal() and the thief's assign(), so scanning shard sizes can
  // transiently read zero while work remains. `unclaimed` counts points
  // not yet popped anywhere and is decremented only at pop time, making
  // "nothing left" an exact condition.
  std::atomic<std::size_t> unclaimed{total};
  std::mutex progress_mu;

  const auto run_one = [&](std::size_t pos) {
    unclaimed.fetch_sub(1, std::memory_order_relaxed);
    const std::size_t idx = order[pos];
    // The per-point fault site, matched on the row key: this is where an
    // injected crash/hang lands to model an experiment taking the whole
    // process down, deterministically, at one named grid point.
    common::fault::hit("runner.point", points[idx].key);
    results[idx] = opts_.run_point_fn ? opts_.run_point_fn(points[idx])
                                      : opts_.run_fn(points[idx].config);
    const std::size_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (opts_.on_result || opts_.on_progress) {
      std::lock_guard lock(progress_mu);
      if (opts_.on_result) opts_.on_result(points[idx], results[idx]);
      if (opts_.on_progress) opts_.on_progress(d, total);
    }
  };

  const auto worker = [&](unsigned self) {
    for (;;) {
      if (opts_.should_stop && opts_.should_stop())
        return;  // stop claiming; the point in hand already finished
      std::size_t pos;
      if (shards[self].pop(pos)) {
        run_one(pos);
        continue;
      }
      // Own shard drained: steal the back half of the fullest victim, or
      // take its lone element directly when halving is not worthwhile.
      std::size_t best = 0, best_remaining = 0;
      for (unsigned v = 0; v < n_threads; ++v) {
        if (v == self) continue;
        const std::size_t r = shards[v].remaining();
        if (r > best_remaining) {
          best_remaining = r;
          best = v;
        }
      }
      if (best_remaining == 0) {
        if (unclaimed.load(std::memory_order_relaxed) == 0)
          return;  // every point has been popped somewhere
        std::this_thread::yield();  // a steal is mid-flight; rescan
        continue;
      }
      std::size_t b, e;
      if (best_remaining >= 2 && shards[best].steal(b, e)) {
        shards[self].assign(b, e);
      } else if (shards[best].pop(pos)) {
        run_one(pos);
      } else {
        std::this_thread::yield();  // lost a race; rescan
      }
    }
  };

  if (n_threads == 1) {
    worker(0);
    return results;
  }

  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) threads.emplace_back(worker, t);
  for (auto& th : threads) th.join();
  return results;
}

}  // namespace reap::campaign

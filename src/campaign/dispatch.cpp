#include "reap/campaign/dispatch.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <deque>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "reap/campaign/journal.hpp"
#include "reap/campaign/seed.hpp"
#include "reap/common/jsonl.hpp"
#include "reap/common/strings.hpp"
#include "reap/common/subprocess.hpp"

namespace reap::campaign {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

// Supervisor-side view of one shard.
struct ShardState {
  std::size_t expected = 0;  // points in this shard
  std::size_t attempts = 0;
  // Consecutive failed attempts that journaled no new row. Progress
  // resets it: a worker that crashes midway but lands rows is
  // converging, not failing. This -- not `attempts` -- is what exhausts
  // the max_attempts budget and what drives the backoff exponent.
  std::size_t no_progress = 0;
  std::size_t last_slot = kNoSlot;  // slot of the most recent attempt
  bool completed = false;
  bool abandoned = false;
  std::string journal_path;
  std::string log_path;
  std::optional<JournalTailer> tailer;
  std::unordered_set<std::string> done_keys;     // journaled row keys
  std::unordered_set<std::string> quarantined;   // poisoned keys (this shard)
  // Quarantine bisect state. `suspects` is the candidate set the poison
  // is known to live in (index order); each probe runs the first half
  // (`probe_target`) and skips the rest, narrowing by outcome.
  bool probing = false;
  std::vector<std::string> suspects;
  std::vector<std::string> probe_target;
  Clock::time_point eligible_at{};  // backoff gate for the next launch
};

// One busy worker slot.
struct Slot {
  std::unique_ptr<WorkerHandle> worker;
  std::size_t shard = 0;
  std::size_t transport = 0;  // index into the transports vector
  std::size_t attempt = 0;
  std::size_t rows_at_spawn = 0;
  // Watchdog heartbeat: the shard journal's tailer offset. A worker
  // whose offset stops moving has stopped completing rows.
  std::uint64_t last_offset = 0;
  Clock::time_point last_change{};
  std::optional<Clock::time_point> term_at;  // SIGTERM sent, grace running
};

// Per-host (per-transport) failure accounting; see
// DispatchOptions::host_max_failures.
struct HostState {
  std::size_t fails = 0;  // consecutive machine-level failures
  bool dead = false;
};

}  // namespace

std::vector<std::string> DispatchResult::journal_paths() const {
  std::vector<std::string> paths;
  paths.reserve(shards.size());
  for (const auto& s : shards) paths.push_back(s.journal_path);
  return paths;
}

Dispatcher::Dispatcher(std::map<std::string, std::string> spec_kv,
                       DispatchOptions opts)
    : spec_kv_(std::move(spec_kv)), opts_(std::move(opts)) {}

std::optional<DispatchPlan> plan_dispatch(const CampaignSpec& spec,
                                          std::size_t n_points,
                                          const DispatchOptions& opts,
                                          std::string* error) {
  const auto fail = [error](const std::string& msg) {
    if (error) *error = msg;
    return std::nullopt;
  };
  DispatchPlan plan;
  if (!opts.transports.empty()) {
    // The slot pool is whatever the transports bring; --workers is a
    // local-pool knob and does not apply.
    plan.workers = 0;
    for (const auto& t : opts.transports) plan.workers += t->slots();
    plan.workers = std::max<std::size_t>(plan.workers, 1);
  } else {
    plan.workers = opts.workers != 0
                       ? opts.workers
                       : std::max(1u, std::thread::hardware_concurrency());
  }
  // More shards than points would leave empty shards whose workers have
  // nothing to do; clamp the shard count to the grid. The slot pool is
  // NOT clamped to the shard count: a spare slot is what lets a
  // repeatedly-dying shard be reassigned away from its old slot even
  // when it is the only shard left.
  plan.n_shards = opts.jobs != 0 ? opts.jobs
                                 : std::min(plan.workers, n_points);
  plan.n_shards = std::max<std::size_t>(std::min(plan.n_shards, n_points), 1);

  // A work dir that already holds journals defines the shard split: the
  // resume contract is "re-run with the same spec and work dir", not
  // "...and the same worker count". Every readable journal must belong
  // to this spec and agree on the split.
  std::optional<std::size_t> adopted;
  std::size_t scan_end = plan.n_shards;
  for (std::size_t i = 0; i < scan_end; ++i) {
    const auto path =
        opts.work_dir + "/shard_" + std::to_string(i) + ".journal";
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec) continue;
    const auto prior = read_journal_header(path);
    if (!prior) continue;  // unreadable/corrupt: the worker will complain
    if (prior->spec_hash != spec_hash(spec))
      return fail("work dir " + opts.work_dir +
                  " holds journals for a different spec (" + path +
                  "); use a fresh --work-dir");
    const auto split = std::max<std::size_t>(prior->shard_count, 1);
    if (adopted && *adopted != split)
      return fail("work dir " + opts.work_dir +
                  " holds journals from two different shard splits (" +
                  std::to_string(*adopted) + " and " +
                  std::to_string(split) + "-way); use a fresh --work-dir");
    adopted = split;
    scan_end = std::max(scan_end, split);  // check the whole old range too
  }
  if (adopted) {
    plan.adopted_split = plan.n_shards != *adopted;
    plan.n_shards = *adopted;
  }
  return plan;
}

DispatchResult Dispatcher::run() {
  DispatchResult result;
  const auto fail = [&result](std::string msg,
                              DispatchStatus st = DispatchStatus::error) {
    result.ok = false;
    result.status = st;
    result.error = std::move(msg);
    return result;
  };

  if (opts_.campaign_binary.empty() && opts_.transports.empty())
    return fail("dispatch: no campaign binary configured");
  if (opts_.work_dir.empty()) return fail("dispatch: no work dir configured");
  if (opts_.max_attempts == 0)
    return fail("dispatch: max_attempts must be >= 1");

  std::string error;
  const auto spec = CampaignSpec::from_kv(spec_kv_, &error);
  if (!spec) return fail("bad spec: " + error);
  std::vector<CampaignPoint> points;
  try {
    points = expand(*spec);
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  result.points = points.size();

  // plan_dispatch only fails when the work dir belongs to a different
  // spec or shard split -- the spec_mismatch exit condition.
  const auto plan = plan_dispatch(*spec, points.size(), opts_, &error);
  if (!plan) return fail(error, DispatchStatus::spec_mismatch);
  const std::size_t workers = plan->workers;
  const std::size_t n_shards = plan->n_shards;

  std::error_code ec;
  std::filesystem::create_directories(opts_.work_dir, ec);
  if (ec)
    return fail("cannot create work dir " + opts_.work_dir + ": " +
                ec.message());

  // The slot pool: every transport's slots, concatenated. No transports
  // configured means today's local pool, unchanged.
  auto transports = opts_.transports;
  if (transports.empty())
    transports.push_back(
        std::make_shared<LocalTransport>(opts_.campaign_binary, workers));
  std::vector<HostState> hosts(transports.size());
  std::vector<std::size_t> slot_owner;  // slot index -> transport index
  for (std::size_t t = 0; t < transports.size(); ++t)
    for (std::size_t k = 0; k < transports[t]->slots(); ++k)
      slot_owner.push_back(t);

  const auto lose_host = [&](std::size_t t, const std::string& reason) {
    if (hosts[t].dead) return;
    hosts[t].dead = true;
    result.lost_hosts.push_back(transports[t]->host());
    if (opts_.on_host_lost) opts_.on_host_lost(transports[t]->host(), reason);
  };

  // One machine-level failure against host `t`; enough of them in a row
  // and the host is lost.
  const auto host_fail = [&](std::size_t t, const std::string& reason) {
    if (hosts[t].dead) return;
    if (++hosts[t].fails >= opts_.host_max_failures) lose_host(t, reason);
  };

  // Pre-flight every transport once. An unreachable host is lost before
  // it ever holds a shard (the run degrades to the survivors); a host
  // running a *different build* is a hard error -- degrading around
  // fleet skew would hide exactly the divergence it causes.
  for (std::size_t t = 0; t < transports.size(); ++t) {
    std::string note;
    const auto hs = transports[t]->handshake(opts_.expected_worker_version,
                                             opts_.trace_dir, &error, &note);
    if (hs == HandshakeStatus::mismatch)
      return fail(error, DispatchStatus::error);
    if (hs == HandshakeStatus::unreachable) lose_host(t, error);
    if (!note.empty() && opts_.on_host_note)
      opts_.on_host_note(transports[t]->host(), note);
  }
  {
    bool any_live = false;
    for (const auto& h : hosts) any_live = any_live || !h.dead;
    if (!any_live)
      return fail("dispatch: no usable hosts (" + error + ")",
                  DispatchStatus::error);
  }

  std::vector<ShardState> shards(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    auto& s = shards[i];
    s.expected = shard_size(points.size(), i, n_shards);
    const auto base = opts_.work_dir + "/shard_" + std::to_string(i);
    s.journal_path = base + ".journal";
    s.log_path = base + ".log";
    s.tailer.emplace(s.journal_path);
  }

  // Shard membership (index striping, matching campaign::shard) and the
  // key->point map the quarantine machinery navigates by.
  std::vector<std::vector<const CampaignPoint*>> members(n_shards);
  std::unordered_map<std::string, const CampaignPoint*> by_key;
  by_key.reserve(points.size());
  for (const auto& p : points) {
    members[p.index % n_shards].push_back(&p);
    by_key.emplace(p.key, &p);
  }

  // Quarantine sidecar: already-quarantined points of a previous run
  // stay quarantined -- a re-dispatch must not re-poison itself on them.
  const std::string sidecar = opts_.work_dir + "/quarantine.jsonl";
  {
    std::ifstream in(sidecar);
    std::string line;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      const auto fields = common::parse_jsonl_line(line);
      if (!fields) continue;
      std::string key, reason;
      for (const auto& [k, v] : *fields) {
        if (k == "key") key = v;
        else if (k == "reason") reason = v;
      }
      const auto it = by_key.find(key);
      if (it == by_key.end()) continue;  // stale entry; spec check caught worse
      const std::size_t shard_i = it->second->index % n_shards;
      if (!shards[shard_i].quarantined.insert(key).second) continue;
      result.quarantined.push_back(
          {key, it->second->index, shard_i, reason});
    }
  }

  const auto quarantine_point = [&](std::size_t shard_i,
                                    const std::string& key,
                                    const std::string& reason) {
    auto& s = shards[shard_i];
    if (!s.quarantined.insert(key).second) return;
    const std::uint64_t index = by_key.at(key)->index;
    result.quarantined.push_back({key, index, shard_i, reason});
    std::ofstream out(sidecar, std::ios::app);
    out << "{\"key\":\"" << common::json_escape(key)
        << "\",\"index\":" << index << ",\"shard\":" << shard_i
        << ",\"reason\":\"" << common::json_escape(reason) << "\"}\n";
    out.flush();
    if (opts_.on_quarantine) opts_.on_quarantine(key, index, shard_i);
  };

  // Worker launch plan: the resolved spec as flags (workers parse the
  // identical spec; their journal spec-hash check enforces it), plus the
  // shard assignment and durability flags. The transport adds the
  // journal/resume flags itself (local workers resume the local journal
  // in place; remote ones start fresh and skip what is already durable).
  // Quarantined keys -- and, while probing, the suspects outside the
  // probe target -- are excluded via the plan's skip set.
  const auto worker_plan = [&](std::size_t shard_i) {
    const auto& s = shards[shard_i];
    WorkerPlan plan;
    plan.shard = shard_i;
    for (const auto& [k, v] : spec_kv_)
      plan.flags.push_back("--" + k + "=" + v);
    plan.flags.push_back("--shard=" + std::to_string(shard_i) + "/" +
                         std::to_string(n_shards));
    plan.flags.push_back("--threads=" + std::to_string(opts_.worker_threads));
    if (opts_.trace_cache_mb > 0)
      plan.flags.push_back("--trace-cache-mb=" +
                           std::to_string(opts_.trace_cache_mb));
    if (!opts_.trace_dir.empty())
      plan.flags.push_back("--trace-dir=" + opts_.trace_dir);
    plan.flags.push_back("--baseline=none");
    plan.flags.push_back("--quiet");
    plan.skip.assign(s.quarantined.begin(), s.quarantined.end());
    std::sort(plan.skip.begin(), plan.skip.end());
    if (s.probing)
      plan.skip.insert(plan.skip.end(),
                       s.suspects.begin() + s.probe_target.size(),
                       s.suspects.end());
    plan.done.assign(s.done_keys.begin(), s.done_keys.end());
    std::sort(plan.done.begin(), plan.done.end());
    plan.journal_path = s.journal_path;
    plan.log_path = s.log_path;
    return plan;
  };

  // Probe-round bookkeeping, run just before a probing shard launches:
  // suspects that journaled in the meantime (or were quarantined) are
  // settled; the first half of what remains is this round's target.
  const auto prepare_probe = [&](std::size_t shard_i) {
    auto& s = shards[shard_i];
    if (!s.probing) return;
    std::vector<std::string> live;
    for (const auto& k : s.suspects)
      if (!s.done_keys.count(k) && !s.quarantined.count(k))
        live.push_back(k);
    s.suspects = std::move(live);
    if (s.suspects.empty()) {  // every suspect settled: back to normal
      s.probing = false;
      s.probe_target.clear();
      return;
    }
    const std::size_t take = (s.suspects.size() + 1) / 2;
    s.probe_target.assign(s.suspects.begin(),
                          s.suspects.begin() + static_cast<long>(take));
  };

  std::size_t remaining = n_shards;

  const auto abandon = [&](std::size_t shard_i, std::string msg) {
    auto& s = shards[shard_i];
    s.abandoned = true;
    --remaining;
    if (result.error.empty()) result.error = std::move(msg);
  };

  const auto backoff_delay = [&](std::size_t shard_i) {
    const auto& s = shards[shard_i];
    if (s.no_progress == 0) return std::chrono::milliseconds{0};
    const std::size_t exp = std::min<std::size_t>(s.no_progress - 1, 16);
    auto delay = opts_.backoff_base * (1LL << exp);
    if (delay > opts_.backoff_max) delay = opts_.backoff_max;
    if (delay.count() > 0) {
      // Deterministic jitter: same seed/shard/attempt -> same delay, so
      // chaos tests replay exactly while real fleets de-synchronize.
      const std::uint64_t j =
          splitmix64(opts_.backoff_seed ^
                     (static_cast<std::uint64_t>(shard_i) << 32) ^
                     static_cast<std::uint64_t>(s.attempts));
      delay += std::chrono::milliseconds(
          j % static_cast<std::uint64_t>(delay.count() / 2 + 1));
    }
    return std::chrono::duration_cast<std::chrono::milliseconds>(delay);
  };

  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < n_shards; ++i) queue.push_back(i);
  std::vector<std::optional<Slot>> slots(slot_owner.size());

  const auto finish = [&](bool ok, std::string msg, DispatchStatus st) {
    slots.clear();  // ~WorkerHandle kills and reaps anything still running
    result.shards.clear();
    for (std::size_t i = 0; i < n_shards; ++i) {
      const auto& s = shards[i];
      result.shards.push_back({i, s.attempts, s.completed,
                               s.tailer->rows_seen(), s.journal_path,
                               s.log_path});
    }
    if (!ok) return fail(std::move(msg), st);
    result.ok = true;
    result.status = st;
    return result;
  };

  std::size_t last_reported = static_cast<std::size_t>(-1);
  const auto report_progress = [&] {
    std::size_t done = 0;
    for (const auto& s : shards) done += s.tailer->rows_seen();
    if (opts_.on_progress && done != last_reported) {
      last_reported = done;
      opts_.on_progress(done, points.size());
    }
  };

  while (remaining > 0) {
    const auto now = Clock::now();

    // Fill idle slots with backoff-eligible queued shards. A requeued
    // shard is *reassigned*: it takes a free slot other than the one it
    // just died on when one exists, and only reuses its old slot rather
    // than leave it idle.
    for (std::size_t qi = 0; qi < queue.size();) {
      const std::size_t shard_i = queue[qi];
      auto& s = shards[shard_i];
      if (now < s.eligible_at) {  // still backing off
        ++qi;
        continue;
      }
      std::size_t slot_i = kNoSlot;
      for (std::size_t c = 0; c < slots.size(); ++c) {
        if (slots[c] || hosts[slot_owner[c]].dead) continue;
        slot_i = c;
        if (c != s.last_slot) break;  // keep looking past the death slot
      }
      if (slot_i == kNoSlot) break;  // every live slot busy
      queue.erase(queue.begin() + static_cast<long>(qi));
      prepare_probe(shard_i);
      const std::size_t t = slot_owner[slot_i];
      bool transient = false;
      auto worker =
          transports[t]->launch(worker_plan(shard_i), &error, &transient);
      if (!worker) {
        // A permanent spawn failure (missing binary, unwritable log)
        // would fail every shard identically: stop the dispatch with
        // the real reason. A transient one (fork/fd pressure, injected
        // worker.spawn fault) is just a failed attempt -- and on a
        // remote transport it is the *host's* failure, not the shard's:
        // count it against the host budget and requeue without touching
        // the shard's no-progress streak.
        if (!transient) return finish(false, error, DispatchStatus::error);
        s.attempts++;
        if (!transports[t]->local()) {
          host_fail(t, error);
          result.restarts++;
          s.eligible_at = now + backoff_delay(shard_i);
          queue.push_back(shard_i);
          continue;
        }
        s.no_progress++;
        if (s.no_progress >= opts_.max_attempts) {
          abandon(shard_i,
                  "shard " + std::to_string(shard_i) + " failed " +
                      std::to_string(s.no_progress) + "/" +
                      std::to_string(opts_.max_attempts) + " attempts (" +
                      error + "); see " + s.log_path);
        } else {
          result.restarts++;
          s.eligible_at = now + backoff_delay(shard_i);
          queue.push_back(shard_i);
        }
        continue;
      }
      if (opts_.on_spawn)
        opts_.on_spawn(shard_i, s.attempts, slot_i, worker->pid());
      s.last_slot = slot_i;
      slots[slot_i].emplace(Slot{std::move(worker), shard_i, t, s.attempts,
                                 s.tailer->rows_seen(), s.tailer->offset(),
                                 now, std::nullopt});
    }

    // Stranded check: every host lost and nothing running means the
    // queued shards can never launch again.
    {
      bool any_live = false, any_busy = false;
      for (const auto& h : hosts) any_live = any_live || !h.dead;
      for (const auto& slot : slots) any_busy = any_busy || slot.has_value();
      if (!any_live && !any_busy) {
        for (std::size_t i = 0; i < n_shards; ++i)
          if (!shards[i].completed && !shards[i].abandoned)
            abandon(i, "shard " + std::to_string(i) +
                           " stranded: every host was lost");
        break;
      }
    }

    // Move remote journal streams into the local journals before the
    // tailers look: the stream is how those journals grow.
    for (auto& slot : slots)
      if (slot) slot->worker->pump();

    // Tail journals for live progress (and the done_keys bookkeeping the
    // quarantine bisect navigates by).
    for (auto& s : shards) {
      if (s.completed || s.abandoned) continue;
      const auto fresh = s.tailer->poll();
      for (const auto& k : fresh) s.done_keys.insert(k);
      if (!fresh.empty() && opts_.on_shard_rows)
        opts_.on_shard_rows(std::size_t(&s - shards.data()),
                            s.tailer->rows_seen());
    }
    report_progress();

    // Watchdog: a worker whose journal offset has not moved within
    // stall_timeout gets SIGTERM (graceful row-boundary exit), then
    // SIGKILL after kill_grace. The kill surfaces below as an ordinary
    // failed attempt -- restart, backoff, quarantine all apply.
    for (auto& slot : slots) {
      if (!slot) continue;
      const auto off = shards[slot->shard].tailer->offset();
      if (off != slot->last_offset) {
        slot->last_offset = off;
        slot->last_change = now;
      }
      if (opts_.stall_timeout.count() > 0 && !slot->term_at &&
          now - slot->last_change >= opts_.stall_timeout) {
        result.stalls++;
        if (opts_.on_stall) opts_.on_stall(slot->shard, slot->attempt);
        slot->worker->kill(SIGTERM);
        slot->term_at = now;
      }
      if (slot->term_at && now - *slot->term_at >= opts_.kill_grace)
        slot->worker->kill(SIGKILL);
    }

    // Reap finished workers.
    for (auto& slot : slots) {
      if (!slot) continue;
      const auto status = slot->worker->poll();
      if (!status) continue;
      slot->worker->drain();  // stream remainder -> local journal
      auto& s = shards[slot->shard];
      s.attempts++;
      for (const auto& k : s.tailer->poll())  // rows landed just before exit
        s.done_keys.insert(k);
      const std::size_t rows = s.tailer->rows_seen();
      const bool progressed = rows > slot->rows_at_spawn;

      // "Done" means exited 0 *and* every non-quarantined point of the
      // shard is journaled: a worker that exits cleanly without
      // journaling its rows (wrong binary, journal path lost) must not
      // count as success.
      std::size_t covered = s.quarantined.size();
      for (const auto& k : s.done_keys)
        if (!s.quarantined.count(k)) ++covered;
      const bool done = status->success() && covered >= s.expected;

      if (done) {
        if (opts_.on_worker_exit)
          opts_.on_worker_exit(slot->shard, slot->attempt, true, false);
        s.completed = true;
        s.probing = false;
        --remaining;
        hosts[slot->transport].fails = 0;  // the machine works
        slot.reset();
        continue;
      }

      // A machine-level failure (lost/stalled stream, ssh's exit 255) is
      // the host's fault, not the shard's: count it against the host
      // budget and requeue the shard -- its no-progress streak, probe
      // state, and abandonment budget stay untouched, because nothing
      // was learned about the *work*.
      if (!transports[slot->transport]->local() &&
          slot->worker->host_failure(*status)) {
        host_fail(slot->transport,
                  "worker " + status->describe() + " (connection lost)");
        if (opts_.on_worker_exit)
          opts_.on_worker_exit(slot->shard, slot->attempt, false, true);
        result.restarts++;
        s.eligible_at = now + backoff_delay(slot->shard);
        queue.push_back(slot->shard);
        slot.reset();
        continue;
      }

      if (progressed) {
        s.no_progress = 0;
        hosts[slot->transport].fails = 0;  // rows moved: the machine works
      } else {
        s.no_progress++;
      }

      bool give_up = false;
      std::string give_up_msg;

      if (s.probing) {
        // Narrow the bisect. Journaled targets are innocent; a failure
        // pins the poison inside the un-journaled targets; a clean exit
        // pins it in the excluded half (which prepare_probe recomputes).
        std::vector<std::string> still;
        for (const auto& k : s.probe_target)
          if (!s.done_keys.count(k)) still.push_back(k);
        if (!status->success()) {
          if (s.probe_target.size() == 1 && still.size() == 1) {
            // The probe ran exactly one un-journaled point and died on
            // it: that point is the poison.
            if (result.quarantined.size() >= opts_.max_quarantine) {
              give_up = true;
              give_up_msg =
                  "shard " + std::to_string(slot->shard) +
                  " would quarantine more than " +
                  std::to_string(opts_.max_quarantine) +
                  " points (--max-quarantine); see " + s.log_path;
            } else {
              quarantine_point(slot->shard, still[0],
                               "worker " + status->describe() +
                                   " isolating this point");
              s.no_progress = 0;  // pinning the poison is progress
            }
          } else if (!still.empty()) {
            s.suspects = still;
          }
          // still.empty(): every target journaled yet the worker died
          // in teardown -- no information; prepare_probe widens again.
        }
      } else if (s.no_progress >= opts_.max_attempts) {
        // The shard is failing without progress. Bisect for a poisoned
        // point when allowed and possible; abandon otherwise. No
        // journal at all means the worker never even started a run --
        // skipping rows cannot fix that.
        std::error_code jec;
        const bool has_journal =
            std::filesystem::exists(s.journal_path, jec) && !jec;
        std::vector<std::string> fresh_suspects;
        if (!opts_.fail_fast && has_journal)
          for (const auto* p : members[slot->shard])
            if (!s.done_keys.count(p->key) && !s.quarantined.count(p->key))
              fresh_suspects.push_back(p->key);
        if (!fresh_suspects.empty()) {
          s.probing = true;
          s.suspects = std::move(fresh_suspects);
          s.no_progress = 0;  // the bisect gets its own budget
        } else {
          give_up = true;
          give_up_msg = "shard " + std::to_string(slot->shard) + " failed " +
                        std::to_string(std::max(s.no_progress,
                                                opts_.max_attempts)) +
                        "/" + std::to_string(opts_.max_attempts) +
                        " attempts (" + status->describe() + "); see " +
                        s.log_path;
        }
      }

      const bool will_retry = !give_up;
      if (opts_.on_worker_exit)
        opts_.on_worker_exit(slot->shard, slot->attempt, false, will_retry);
      if (give_up) {
        abandon(slot->shard, std::move(give_up_msg));
      } else {
        result.restarts++;
        s.eligible_at = now + backoff_delay(slot->shard);
        queue.push_back(slot->shard);  // restart via --resume, other slot
      }
      slot.reset();
    }

    if (remaining > 0) std::this_thread::sleep_for(opts_.poll_interval);
  }

  report_progress();
  bool any_abandoned = false;
  for (const auto& s : shards) any_abandoned = any_abandoned || s.abandoned;
  if (any_abandoned)
    return finish(false, result.error, DispatchStatus::abandoned);
  if (!result.quarantined.empty())
    return finish(true, "", DispatchStatus::quarantined);
  if (!result.lost_hosts.empty())
    return finish(true, "", DispatchStatus::host_lost);
  return finish(true, "", DispatchStatus::ok);
}

std::optional<RowTable> merge_dispatch_journals(
    const std::vector<std::string>& journal_paths, std::string* error) {
  std::vector<RowTable> tables;
  tables.reserve(journal_paths.size());
  for (const auto& path : journal_paths) {
    auto table = load_rows(path, error);
    if (!table) return std::nullopt;
    tables.push_back(std::move(*table));
  }
  return merge_tables(std::move(tables), error);
}

}  // namespace reap::campaign

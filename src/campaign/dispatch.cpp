#include "reap/campaign/dispatch.hpp"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <thread>

#include "reap/campaign/journal.hpp"
#include "reap/common/subprocess.hpp"

namespace reap::campaign {
namespace {

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

// Supervisor-side view of one shard.
struct ShardState {
  std::size_t expected = 0;  // points in this shard
  std::size_t attempts = 0;
  std::size_t last_slot = kNoSlot;  // slot of the most recent attempt
  bool completed = false;
  std::string journal_path;
  std::string log_path;
  std::optional<JournalTailer> tailer;
};

// One busy worker slot.
struct Slot {
  common::Child child;
  std::size_t shard = 0;
  std::size_t attempt = 0;
};

}  // namespace

std::vector<std::string> DispatchResult::journal_paths() const {
  std::vector<std::string> paths;
  paths.reserve(shards.size());
  for (const auto& s : shards) paths.push_back(s.journal_path);
  return paths;
}

Dispatcher::Dispatcher(std::map<std::string, std::string> spec_kv,
                       DispatchOptions opts)
    : spec_kv_(std::move(spec_kv)), opts_(std::move(opts)) {}

std::optional<DispatchPlan> plan_dispatch(const CampaignSpec& spec,
                                          std::size_t n_points,
                                          const DispatchOptions& opts,
                                          std::string* error) {
  const auto fail = [error](const std::string& msg) {
    if (error) *error = msg;
    return std::nullopt;
  };
  DispatchPlan plan;
  plan.workers = opts.workers != 0
                     ? opts.workers
                     : std::max(1u, std::thread::hardware_concurrency());
  // More shards than points would leave empty shards whose workers have
  // nothing to do; clamp the shard count to the grid. The slot pool is
  // NOT clamped to the shard count: a spare slot is what lets a
  // repeatedly-dying shard be reassigned away from its old slot even
  // when it is the only shard left.
  plan.n_shards = opts.jobs != 0 ? opts.jobs
                                 : std::min(plan.workers, n_points);
  plan.n_shards = std::max<std::size_t>(std::min(plan.n_shards, n_points), 1);

  // A work dir that already holds journals defines the shard split: the
  // resume contract is "re-run with the same spec and work dir", not
  // "...and the same worker count". Every readable journal must belong
  // to this spec and agree on the split.
  std::optional<std::size_t> adopted;
  std::size_t scan_end = plan.n_shards;
  for (std::size_t i = 0; i < scan_end; ++i) {
    const auto path =
        opts.work_dir + "/shard_" + std::to_string(i) + ".journal";
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec) continue;
    const auto prior = read_journal_header(path);
    if (!prior) continue;  // unreadable/corrupt: the worker will complain
    if (prior->spec_hash != spec_hash(spec))
      return fail("work dir " + opts.work_dir +
                  " holds journals for a different spec (" + path +
                  "); use a fresh --work-dir");
    const auto split = std::max<std::size_t>(prior->shard_count, 1);
    if (adopted && *adopted != split)
      return fail("work dir " + opts.work_dir +
                  " holds journals from two different shard splits (" +
                  std::to_string(*adopted) + " and " +
                  std::to_string(split) + "-way); use a fresh --work-dir");
    adopted = split;
    scan_end = std::max(scan_end, split);  // check the whole old range too
  }
  if (adopted) {
    plan.adopted_split = plan.n_shards != *adopted;
    plan.n_shards = *adopted;
  }
  return plan;
}

DispatchResult Dispatcher::run() {
  DispatchResult result;
  const auto fail = [&result](std::string msg) {
    result.ok = false;
    result.error = std::move(msg);
    return result;
  };

  if (opts_.campaign_binary.empty())
    return fail("dispatch: no campaign binary configured");
  if (opts_.work_dir.empty()) return fail("dispatch: no work dir configured");
  if (opts_.max_attempts == 0)
    return fail("dispatch: max_attempts must be >= 1");

  std::string error;
  const auto spec = CampaignSpec::from_kv(spec_kv_, &error);
  if (!spec) return fail("bad spec: " + error);
  std::vector<CampaignPoint> points;
  try {
    points = expand(*spec);
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  result.points = points.size();

  const auto plan = plan_dispatch(*spec, points.size(), opts_, &error);
  if (!plan) return fail(error);
  const std::size_t workers = plan->workers;
  const std::size_t n_shards = plan->n_shards;

  std::error_code ec;
  std::filesystem::create_directories(opts_.work_dir, ec);
  if (ec)
    return fail("cannot create work dir " + opts_.work_dir + ": " +
                ec.message());

  std::vector<ShardState> shards(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    auto& s = shards[i];
    s.expected = shard_size(points.size(), i, n_shards);
    const auto base = opts_.work_dir + "/shard_" + std::to_string(i);
    s.journal_path = base + ".journal";
    s.log_path = base + ".log";
    s.tailer.emplace(s.journal_path);
  }

  // Worker command line: the resolved spec as flags (workers parse the
  // identical spec; their journal spec-hash check enforces it), plus the
  // shard assignment and durability flags. --resume makes first runs,
  // crash restarts, and dispatcher re-runs the same code path.
  const auto worker_argv = [&](std::size_t shard_i) {
    std::vector<std::string> argv = {opts_.campaign_binary};
    for (const auto& [k, v] : spec_kv_) argv.push_back("--" + k + "=" + v);
    argv.push_back("--shard=" + std::to_string(shard_i) + "/" +
                   std::to_string(n_shards));
    argv.push_back("--journal=" + shards[shard_i].journal_path);
    argv.push_back("--resume");
    argv.push_back("--threads=" + std::to_string(opts_.worker_threads));
    if (opts_.trace_cache_mb > 0)
      argv.push_back("--trace-cache-mb=" +
                     std::to_string(opts_.trace_cache_mb));
    argv.push_back("--baseline=none");
    argv.push_back("--quiet");
    return argv;
  };

  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < n_shards; ++i) queue.push_back(i);
  std::vector<std::optional<Slot>> slots(workers);

  const auto finish = [&](bool ok, std::string msg) {
    slots.clear();  // ~Child kills and reaps anything still running
    result.shards.clear();
    for (std::size_t i = 0; i < n_shards; ++i) {
      const auto& s = shards[i];
      result.shards.push_back({i, s.attempts, s.completed,
                               s.tailer->rows_seen(), s.journal_path,
                               s.log_path});
    }
    if (!ok) return fail(std::move(msg));
    result.ok = true;
    return result;
  };

  std::size_t last_reported = static_cast<std::size_t>(-1);
  const auto report_progress = [&] {
    std::size_t done = 0;
    for (const auto& s : shards) done += s.tailer->rows_seen();
    if (opts_.on_progress && done != last_reported) {
      last_reported = done;
      opts_.on_progress(done, points.size());
    }
  };

  std::size_t remaining = n_shards;
  while (remaining > 0) {
    // Fill idle slots. A requeued shard is *reassigned*: it takes a free
    // slot other than the one it just died on when one exists, and only
    // reuses its old slot rather than leave it idle.
    while (!queue.empty()) {
      const std::size_t shard_i = queue.front();
      auto& s = shards[shard_i];
      std::size_t slot_i = kNoSlot;
      for (std::size_t c = 0; c < slots.size(); ++c) {
        if (slots[c]) continue;
        slot_i = c;
        if (c != s.last_slot) break;  // keep looking past the death slot
      }
      if (slot_i == kNoSlot) break;  // every slot busy
      queue.pop_front();
      auto child =
          common::Child::spawn(worker_argv(shard_i), s.log_path, &error);
      if (!child)
        return finish(false, error);  // environmental: binary/log unusable
      if (opts_.on_spawn)
        opts_.on_spawn(shard_i, s.attempts, slot_i, child->pid());
      s.last_slot = slot_i;
      slots[slot_i].emplace(Slot{std::move(*child), shard_i, s.attempts});
    }

    // Tail journals for live progress.
    for (auto& s : shards) {
      if (s.completed) continue;
      if (!s.tailer->poll().empty() && opts_.on_shard_rows)
        opts_.on_shard_rows(std::size_t(&s - shards.data()),
                            s.tailer->rows_seen());
    }
    report_progress();

    // Reap finished workers.
    for (auto& slot : slots) {
      if (!slot) continue;
      const auto status = slot->child.poll();
      if (!status) continue;
      auto& s = shards[slot->shard];
      s.attempts++;
      s.tailer->poll();  // pick up rows that landed just before exit
      // "Done" means exited 0 *and* the journal holds the whole shard: a
      // worker that exits cleanly without journaling its rows (wrong
      // binary, journal path lost) must not count as success.
      const bool done =
          status->success() && s.tailer->rows_seen() >= s.expected;
      const bool will_retry = !done && s.attempts < opts_.max_attempts;
      if (opts_.on_worker_exit)
        opts_.on_worker_exit(slot->shard, slot->attempt, done, will_retry);
      if (done) {
        s.completed = true;
        --remaining;
      } else if (!will_retry) {
        return finish(
            false, "shard " + std::to_string(slot->shard) + " failed " +
                       std::to_string(s.attempts) + "/" +
                       std::to_string(opts_.max_attempts) + " attempts (" +
                       status->describe() + "); see " + s.log_path);
      } else {
        result.restarts++;
        queue.push_back(slot->shard);  // restart via --resume, other slot
      }
      slot.reset();
    }

    if (remaining > 0) std::this_thread::sleep_for(opts_.poll_interval);
  }

  report_progress();
  return finish(true, "");
}

std::optional<RowTable> merge_dispatch_journals(
    const std::vector<std::string>& journal_paths, std::string* error) {
  std::vector<RowTable> tables;
  tables.reserve(journal_paths.size());
  for (const auto& path : journal_paths) {
    auto table = load_rows(path, error);
    if (!table) return std::nullopt;
    tables.push_back(std::move(*table));
  }
  return merge_tables(std::move(tables), error);
}

}  // namespace reap::campaign

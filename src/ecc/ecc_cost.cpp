#include "reap/ecc/ecc_cost.hpp"

#include <cmath>

#include "reap/common/assert.hpp"
#include "reap/ecc/bch.hpp"

namespace reap::ecc {

GateTech gate_tech_45nm() {
  GateTech t;
  t.node_name = "45nm";
  t.energy_per_gate = common::Joules{0.7e-15};
  t.area_per_gate = common::SquareMm{0.5e-6};
  t.delay_per_level = common::picoseconds(25.0);
  t.leakage_w_per_gate = 6e-9;
  return t;
}

GateTech gate_tech_32nm() { return GateTech{}; }

GateTech gate_tech_22nm() {
  GateTech t;
  t.node_name = "22nm";
  t.energy_per_gate = common::Joules{0.19e-15};
  t.area_per_gate = common::SquareMm{0.13e-6};
  t.delay_per_level = common::picoseconds(13.0);
  t.leakage_w_per_gate = 3e-9;
  return t;
}

namespace {

std::size_t ceil_log2(std::size_t x) {
  std::size_t l = 0;
  while ((std::size_t{1} << l) < x) ++l;
  return l;
}

DecoderCost finish(std::size_t gates, std::size_t depth, const GateTech& tech) {
  DecoderCost c;
  c.gates = gates;
  c.logic_depth = depth;
  const double g = static_cast<double>(gates);
  c.energy_per_decode = tech.energy_per_gate * g;
  c.area = common::SquareMm{tech.area_per_gate.value * g};
  c.latency = tech.delay_per_level * static_cast<double>(depth);
  c.leakage = common::Watts{tech.leakage_w_per_gate * g};
  return c;
}

}  // namespace

DecoderCost estimate_decoder_cost(const Code& code, const GateTech& tech) {
  const std::size_t n = code.codeword_bits();
  const std::size_t r = code.parity_bits();
  const std::size_t t = code.correctable_bits();

  std::size_t gates = 0;
  std::size_t depth = 0;

  if (const auto* bch = dynamic_cast<const BchCode*>(&code)) {
    const std::size_t m = bch->field_m();
    const std::size_t m2 = m * m;
    // 2t syndrome evaluators, each an n-term GF(2^m) Horner chain that
    // hardware parallelizes into an XOR tree of constant-multiplier outputs.
    gates += 2 * t * n * (m2 / 2);
    // BM iterations (unrolled): (2t)^2 GF multiplies.
    gates += (2 * t) * (2 * t) * m2;
    // Chien search evaluator bank: t constant multipliers per position.
    gates += n * t * (m2 / 2);
    depth = ceil_log2(n) + 2 * t * (ceil_log2(m) + 2) + ceil_log2(n);
  } else if (t >= 1) {
    // Hamming / SEC-DED: r syndrome XOR trees over ~n/2 inputs each, then an
    // r-to-n position decoder (~2 gate-equivalents per output with shared
    // predecoding) and n correction XORs.
    gates += r * (n / 2);  // syndrome trees
    gates += n * 2;        // position decode
    gates += n;            // correction XOR
    depth = ceil_log2(n / 2 + 1) + ceil_log2(r + 1) + 1;
  } else {
    // Parity: one XOR tree.
    gates += n;
    depth = ceil_log2(n);
  }

  return finish(gates, depth, tech);
}

DecoderCost estimate_encoder_cost(const Code& code, const GateTech& tech) {
  const std::size_t k = code.data_bits();
  const std::size_t r = code.parity_bits();
  // Encoder: r parity trees over ~k/2 data bits each (BCH's LFSR unrolls to
  // a comparable XOR network per parity bit).
  const std::size_t gates = r * (k / 2);
  const std::size_t depth = ceil_log2(k / 2 + 1);
  return finish(gates, depth, tech);
}

}  // namespace reap::ecc

#include "reap/ecc/hamming.hpp"

#include <bit>

#include "reap/common/assert.hpp"

namespace reap::ecc {

std::size_t HammingCode::parity_bits_for(std::size_t data_bits) {
  std::size_t r = 0;
  while ((std::size_t{1} << r) < data_bits + r + 1) ++r;
  return r;
}

HammingCode::HammingCode(std::size_t data_bits)
    : data_bits_(data_bits), parity_bits_(parity_bits_for(data_bits)) {
  REAP_EXPECTS(data_bits >= 1);
  const std::size_t n = data_bits_ + parity_bits_;
  data_position_.reserve(data_bits_);
  parity_position_.resize(parity_bits_);
  pos_to_index_.assign(n + 1, 0);

  std::size_t next_data = 0;
  for (std::size_t pos = 1; pos <= n; ++pos) {
    if (std::has_single_bit(pos)) {
      const std::size_t j =
          static_cast<std::size_t>(std::countr_zero(pos));
      parity_position_[j] = pos;
      pos_to_index_[pos] = data_bits_ + j;
    } else {
      data_position_.push_back(pos);
      pos_to_index_[pos] = next_data++;
    }
  }
  REAP_ENSURES(next_data == data_bits_);
}

std::string HammingCode::name() const {
  return "hamming(" + std::to_string(codeword_bits()) + "," +
         std::to_string(data_bits_) + ")";
}

BitVec HammingCode::encode(const BitVec& data) const {
  REAP_EXPECTS(data.size() == data_bits_);
  BitVec cw(codeword_bits());
  std::size_t syndrome = 0;
  for (std::size_t i = 0; i < data_bits_; ++i) {
    if (data.test(i)) {
      cw.set(i);
      syndrome ^= data_position_[i];
    }
  }
  for (std::size_t j = 0; j < parity_bits_; ++j) {
    if (syndrome & (std::size_t{1} << j)) cw.set(data_bits_ + j);
  }
  return cw;
}

DecodeResult HammingCode::decode(const BitVec& codeword) const {
  REAP_EXPECTS(codeword.size() == codeword_bits());
  DecodeResult r;
  r.codeword = codeword;

  std::size_t syndrome = 0;
  for (std::size_t i = 0; i < data_bits_; ++i)
    if (codeword.test(i)) syndrome ^= data_position_[i];
  for (std::size_t j = 0; j < parity_bits_; ++j)
    if (codeword.test(data_bits_ + j)) syndrome ^= parity_position_[j];

  if (syndrome == 0) {
    r.status = DecodeStatus::clean;
  } else if (syndrome <= codeword_bits()) {
    r.codeword.flip(pos_to_index_[syndrome]);
    r.status = DecodeStatus::corrected;
    r.corrected_bits = 1;
  } else {
    // Syndrome names a position outside the codeword: only reachable with
    // >= 2 errors, which a pure SEC code detects here only by luck.
    r.status = DecodeStatus::detected_uncorrectable;
  }

  r.data = BitVec(data_bits_);
  if (r.status != DecodeStatus::detected_uncorrectable) {
    for (std::size_t i = 0; i < data_bits_; ++i)
      if (r.codeword.test(i)) r.data.set(i);
  }
  return r;
}

}  // namespace reap::ecc

#include "reap/ecc/interleave.hpp"

#include "reap/common/assert.hpp"

namespace reap::ecc {

InterleavedCode::InterleavedCode(
    std::size_t data_bits, std::size_t ways,
    const std::function<std::unique_ptr<Code>(std::size_t)>& make_inner)
    : data_bits_(data_bits), chunk_bits_(data_bits / ways) {
  REAP_EXPECTS(ways >= 1);
  REAP_EXPECTS(data_bits % ways == 0);
  inners_.reserve(ways);
  for (std::size_t w = 0; w < ways; ++w) {
    inners_.push_back(make_inner(chunk_bits_));
    REAP_EXPECTS(inners_.back() != nullptr);
    REAP_EXPECTS(inners_.back()->data_bits() == chunk_bits_);
  }
}

std::string InterleavedCode::name() const {
  return "interleave(" + std::to_string(inners_.size()) + "x " +
         inners_.front()->name() + ")";
}

std::size_t InterleavedCode::parity_bits() const {
  std::size_t total = 0;
  for (const auto& c : inners_) total += c->parity_bits();
  return total;
}

std::size_t InterleavedCode::correctable_bits() const {
  // Guaranteed capability for arbitrary error placement is the per-chunk t
  // (all errors could land in one chunk).
  return inners_.front()->correctable_bits();
}

std::size_t InterleavedCode::detectable_bits() const {
  return inners_.front()->detectable_bits();
}

BitVec InterleavedCode::encode(const BitVec& data) const {
  REAP_EXPECTS(data.size() == data_bits_);
  BitVec cw(codeword_bits());
  std::size_t out = 0;
  for (std::size_t w = 0; w < inners_.size(); ++w) {
    BitVec chunk(chunk_bits_);
    for (std::size_t i = 0; i < chunk_bits_; ++i)
      if (data.test(w * chunk_bits_ + i)) chunk.set(i);
    const BitVec inner_cw = inners_[w]->encode(chunk);
    for (std::size_t i = 0; i < inner_cw.size(); ++i, ++out)
      if (inner_cw.test(i)) cw.set(out);
  }
  REAP_ENSURES(out == codeword_bits());
  return cw;
}

DecodeResult InterleavedCode::decode(const BitVec& codeword) const {
  REAP_EXPECTS(codeword.size() == codeword_bits());
  DecodeResult r;
  r.data = BitVec(data_bits_);
  r.codeword = BitVec(codeword_bits());
  r.status = DecodeStatus::clean;

  std::size_t in = 0;
  for (std::size_t w = 0; w < inners_.size(); ++w) {
    const std::size_t inner_n = inners_[w]->codeword_bits();
    BitVec chunk_cw(inner_n);
    for (std::size_t i = 0; i < inner_n; ++i)
      if (codeword.test(in + i)) chunk_cw.set(i);

    const DecodeResult cr = inners_[w]->decode(chunk_cw);
    if (cr.status == DecodeStatus::detected_uncorrectable) {
      r.status = DecodeStatus::detected_uncorrectable;
      r.codeword = codeword;
      return r;
    }
    if (cr.status == DecodeStatus::corrected) {
      r.status = DecodeStatus::corrected;
      r.corrected_bits += cr.corrected_bits;
    }
    for (std::size_t i = 0; i < chunk_bits_; ++i)
      if (cr.data.test(i)) r.data.set(w * chunk_bits_ + i);
    for (std::size_t i = 0; i < inner_n; ++i)
      if (cr.codeword.test(i)) r.codeword.set(in + i);
    in += inner_n;
  }
  return r;
}

}  // namespace reap::ecc

// GF(2^m) arithmetic with log/antilog tables, m in [3, 14].
//
// Substrate for the BCH codec: elements are represented as unsigned
// polynomial bit masks; multiplication/division go through discrete-log
// tables built from a fixed primitive polynomial per field size.
#pragma once

#include <cstdint>
#include <vector>

#include "reap/common/assert.hpp"

namespace reap::ecc {

class GaloisField {
 public:
  explicit GaloisField(unsigned m);

  unsigned m() const { return m_; }
  std::uint32_t size() const { return size_; }        // 2^m
  std::uint32_t order() const { return size_ - 1; }   // multiplicative order
  std::uint32_t primitive_poly() const { return prim_poly_; }

  // alpha^i for any integer exponent (reduced mod order).
  std::uint32_t alpha_pow(std::int64_t i) const {
    std::int64_t e = i % static_cast<std::int64_t>(order());
    if (e < 0) e += order();
    return exp_[static_cast<std::size_t>(e)];
  }

  // Discrete log; x must be nonzero.
  std::uint32_t log(std::uint32_t x) const {
    REAP_EXPECTS(x != 0 && x < size_);
    return log_[x];
  }

  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const {
    if (a == 0 || b == 0) return 0;
    const std::uint32_t s = log_[a] + log_[b];
    return exp_[s >= order() ? s - order() : s];
  }

  std::uint32_t div(std::uint32_t a, std::uint32_t b) const {
    REAP_EXPECTS(b != 0);
    if (a == 0) return 0;
    const std::int64_t s = static_cast<std::int64_t>(log_[a]) - log_[b];
    return alpha_pow(s);
  }

  std::uint32_t inv(std::uint32_t a) const {
    REAP_EXPECTS(a != 0);
    return alpha_pow(-static_cast<std::int64_t>(log_[a]));
  }

  // Addition in characteristic 2 is XOR; provided for readability.
  static std::uint32_t add(std::uint32_t a, std::uint32_t b) { return a ^ b; }

  // Evaluates poly(x) where poly[i] is the coefficient of x^i.
  std::uint32_t eval_poly(const std::vector<std::uint32_t>& poly,
                          std::uint32_t x) const;

  // Minimal polynomial of alpha^e as a GF(2) bit mask (bit i = coeff of x^i).
  std::uint64_t minimal_polynomial(std::uint32_t e) const;

 private:
  unsigned m_;
  std::uint32_t size_;
  std::uint32_t prim_poly_;
  std::vector<std::uint32_t> exp_;  // exp_[i] = alpha^i, i in [0, order)
  std::vector<std::uint32_t> log_;  // log_[x], x in [1, size)
};

}  // namespace reap::ecc

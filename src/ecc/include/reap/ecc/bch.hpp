// Binary primitive BCH codec, shortened to the requested data width.
//
// Used by the stronger-ECC ablation: the paper argues REAP-cache removes
// accumulation outright; the alternative of just deploying a t=2/t=3 code
// keeps accumulation and pays more parity + decoder cost. BchCode lets the
// bench quantify that trade-off with a real codec.
//
// Construction: field GF(2^m) with n_full = 2^m - 1; generator polynomial
// g(x) = lcm of minimal polynomials of alpha^1, alpha^3, ..., alpha^(2t-1);
// systematic encoding via polynomial division; decoding via syndrome
// computation, Berlekamp-Massey, and Chien search. Shortening pins the top
// (k_full - data_bits) message coefficients to zero.
#pragma once

#include <vector>

#include "reap/ecc/code.hpp"
#include "reap/ecc/gf2.hpp"

namespace reap::ecc {

class BchCode final : public Code {
 public:
  // Picks the smallest field GF(2^m) that fits data_bits + m*t parity bits.
  BchCode(std::size_t data_bits, unsigned t);

  std::string name() const override;
  std::size_t data_bits() const override { return data_bits_; }
  std::size_t parity_bits() const override { return parity_bits_; }
  std::size_t correctable_bits() const override { return t_; }
  std::size_t detectable_bits() const override { return t_; }

  BitVec encode(const BitVec& data) const override;
  DecodeResult decode(const BitVec& codeword) const override;

  unsigned field_m() const { return gf_.m(); }
  std::size_t full_length() const { return gf_.order(); }

 private:
  // Degree (exponent of x) for systematic codeword index i: data bit i is
  // the coefficient of x^(parity + data_bits - 1 - i); parity bit j is the
  // coefficient of x^(parity - 1 - j).
  std::size_t degree_of_index(std::size_t i) const;
  std::size_t index_of_degree(std::size_t deg) const;

  std::size_t data_bits_;
  unsigned t_;
  GaloisField gf_;
  std::vector<bool> generator_;  // generator_[i] = coeff of x^i in g(x)
  std::size_t parity_bits_;      // deg(g)
};

}  // namespace reap::ecc

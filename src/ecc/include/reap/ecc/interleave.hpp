// Interleaved code wrapper: splits the data into `ways` equal chunks, each
// protected by its own inner codeword. A t-correcting inner code then
// corrects up to t errors *per chunk*, which raises burst tolerance for the
// same redundancy class -- a classic DRAM/SRAM trick included in the ECC
// ablation sweep. Chunk codewords are concatenated: [cw0 | cw1 | ...].
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "reap/ecc/code.hpp"

namespace reap::ecc {

class InterleavedCode final : public Code {
 public:
  // `make_inner` builds the per-chunk code given the chunk's data width.
  // data_bits must divide evenly by ways.
  InterleavedCode(std::size_t data_bits, std::size_t ways,
                  const std::function<std::unique_ptr<Code>(std::size_t)>& make_inner);

  std::string name() const override;
  std::size_t data_bits() const override { return data_bits_; }
  std::size_t parity_bits() const override;
  std::size_t correctable_bits() const override;
  std::size_t detectable_bits() const override;

  BitVec encode(const BitVec& data) const override;
  DecodeResult decode(const BitVec& codeword) const override;

  std::size_t ways() const { return inners_.size(); }

 private:
  std::size_t data_bits_;
  std::size_t chunk_bits_;
  std::vector<std::unique_ptr<Code>> inners_;
};

}  // namespace reap::ecc

// Hamming single-error-correcting (SEC) code for arbitrary data width.
//
// Classic construction: codeword positions are numbered 1..n, parity bits
// sit at power-of-two positions, and the syndrome (XOR of the position
// numbers of all set bits) directly names the erroneous position. Exposed
// systematically: the public codeword layout is [data | parity]; the
// position shuffling is internal.
#pragma once

#include <vector>

#include "reap/ecc/code.hpp"

namespace reap::ecc {

class HammingCode final : public Code {
 public:
  explicit HammingCode(std::size_t data_bits);

  std::string name() const override;
  std::size_t data_bits() const override { return data_bits_; }
  std::size_t parity_bits() const override { return parity_bits_; }
  std::size_t correctable_bits() const override { return 1; }
  std::size_t detectable_bits() const override { return 1; }

  BitVec encode(const BitVec& data) const override;
  DecodeResult decode(const BitVec& codeword) const override;

  // Number of parity bits the construction needs for `data_bits`.
  static std::size_t parity_bits_for(std::size_t data_bits);

 private:
  // Internal position (1-based Hamming position) for each systematic
  // codeword index, and the reverse map.
  std::size_t data_bits_;
  std::size_t parity_bits_;
  std::vector<std::size_t> data_position_;    // data i   -> hamming position
  std::vector<std::size_t> parity_position_;  // parity j -> hamming position
  std::vector<std::size_t> pos_to_index_;     // hamming position -> systematic
                                              // index (data_bits_+j for parity)
};

}  // namespace reap::ecc

// SEC-DED: extended Hamming (Hsiao-class) code.
//
// Hamming SEC plus one overall parity bit. Decode logic:
//   syndrome == 0, overall parity even  -> clean
//   syndrome != 0, overall parity odd   -> single error, corrected
//   syndrome != 0, overall parity even  -> double error, detected
//   syndrome == 0, overall parity odd   -> overall parity bit flipped
//
// This is the paper's per-line protection: with data_bits = 512 it corrects
// one disturbed cell per cache line and detects two (the uncorrectable case
// whose probability Eqs. (3)/(6) track).
#pragma once

#include "reap/ecc/code.hpp"
#include "reap/ecc/hamming.hpp"

namespace reap::ecc {

class SecDedCode final : public Code {
 public:
  explicit SecDedCode(std::size_t data_bits);

  std::string name() const override;
  std::size_t data_bits() const override { return inner_.data_bits(); }
  std::size_t parity_bits() const override { return inner_.parity_bits() + 1; }
  std::size_t correctable_bits() const override { return 1; }
  std::size_t detectable_bits() const override { return 2; }

  BitVec encode(const BitVec& data) const override;
  DecodeResult decode(const BitVec& codeword) const override;

 private:
  HammingCode inner_;
};

}  // namespace reap::ecc

// Decoder hardware cost estimates: gate count, energy, area, latency.
//
// The paper's overhead story rests on the ECC decoder being ~0.1% of cache
// area and <1% of cache energy, so replicating it k times costs <1% area and
// ~2.7% dynamic energy. This model derives those shares from first-order
// gate counts:
//   Hamming/SEC-DED syndrome: r parity trees, each XORing ~n/2 codeword bits
//   corrector: n-way decoder (AND) + n XOR
//   BCH: 2t syndrome evaluators (n GF multiply-accumulate each, ~m^2 gates
//        per MAC), Berlekamp-Massey (~(2t)^2 m^2), Chien (n m^2 / cycle-share)
// Gate energy/area/delay scale with the technology node supplied by nvsim.
#pragma once

#include <cstddef>
#include <string>

#include "reap/common/units.hpp"
#include "reap/ecc/code.hpp"

namespace reap::ecc {

// Per-gate parameters for a technology node (2-input NAND equivalents).
// Area assumes high-density datapath layout (XOR arrays pack well below
// random-logic standard-cell density).
struct GateTech {
  std::string node_name = "32nm";
  common::Joules energy_per_gate = common::Joules{0.36e-15};   // 0.36 fJ
  common::SquareMm area_per_gate = common::SquareMm{0.25e-6};  // 0.25 um^2
  common::Seconds delay_per_level = common::picoseconds(18.0);
  double leakage_w_per_gate = 4e-9;
};

GateTech gate_tech_45nm();
GateTech gate_tech_32nm();
GateTech gate_tech_22nm();

struct DecoderCost {
  std::size_t gates = 0;          // NAND2-equivalent count
  std::size_t logic_depth = 0;    // levels on the critical path
  common::Joules energy_per_decode{0.0};
  common::SquareMm area{0.0};
  common::Seconds latency{0.0};
  common::Watts leakage{0.0};
};

// Cost of one decoder instance for `code` in `tech`.
DecoderCost estimate_decoder_cost(const Code& code, const GateTech& tech);

// Cost of the (cheaper) encoder, used on the write path.
DecoderCost estimate_encoder_cost(const Code& code, const GateTech& tech);

}  // namespace reap::ecc

// Error-correcting code interface.
//
// Codecs are systematic over BitVec payloads: `encode` produces a codeword
// whose first data_bits() bits are the data verbatim, followed by
// parity_bits() check bits. `decode` takes a (possibly corrupted) codeword
// and reports what the hardware decoder would: clean, corrected, or
// detected-uncorrectable. A decoder cannot know about miscorrections --
// tests compare against ground truth to characterize those.
//
// The paper's baseline protection is a single-error-correcting code per
// 512-bit cache line ("ECC decoder unit is capable of delivering the correct
// data iff at most one data cell is erroneous", Sec. III-B), i.e. the
// SecDedCode here with data_bits = 512.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "reap/common/bitvec.hpp"

namespace reap::ecc {

using common::BitVec;

enum class DecodeStatus {
  clean,                  // no error detected
  corrected,              // error(s) detected and corrected
  detected_uncorrectable, // error detected, beyond correction capability
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::clean;
  BitVec data;                  // best-effort data (valid for clean/corrected)
  BitVec codeword;              // corrected codeword (clean/corrected)
  unsigned corrected_bits = 0;  // number of bit corrections applied
};

class Code {
 public:
  virtual ~Code() = default;

  Code(const Code&) = delete;
  Code& operator=(const Code&) = delete;

  virtual std::string name() const = 0;
  virtual std::size_t data_bits() const = 0;
  virtual std::size_t parity_bits() const = 0;
  std::size_t codeword_bits() const { return data_bits() + parity_bits(); }

  // Guaranteed correction capability t (bit errors per codeword).
  virtual std::size_t correctable_bits() const = 0;
  // Guaranteed detection capability (>= correctable_bits()).
  virtual std::size_t detectable_bits() const = 0;

  // data.size() must equal data_bits().
  virtual BitVec encode(const BitVec& data) const = 0;

  // codeword.size() must equal codeword_bits().
  virtual DecodeResult decode(const BitVec& codeword) const = 0;

 protected:
  Code() = default;
};

}  // namespace reap::ecc

// Single even-parity bit: detects any odd number of errors, corrects none.
// The weakest protection level in the ablation sweep.
#pragma once

#include "reap/ecc/code.hpp"

namespace reap::ecc {

class ParityCode final : public Code {
 public:
  explicit ParityCode(std::size_t data_bits);

  std::string name() const override;
  std::size_t data_bits() const override { return data_bits_; }
  std::size_t parity_bits() const override { return 1; }
  std::size_t correctable_bits() const override { return 0; }
  std::size_t detectable_bits() const override { return 1; }

  BitVec encode(const BitVec& data) const override;
  DecodeResult decode(const BitVec& codeword) const override;

 private:
  std::size_t data_bits_;
};

}  // namespace reap::ecc

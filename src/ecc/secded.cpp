#include "reap/ecc/secded.hpp"

#include "reap/common/assert.hpp"

namespace reap::ecc {

SecDedCode::SecDedCode(std::size_t data_bits) : inner_(data_bits) {}

std::string SecDedCode::name() const {
  return "secded(" + std::to_string(codeword_bits()) + "," +
         std::to_string(data_bits()) + ")";
}

BitVec SecDedCode::encode(const BitVec& data) const {
  const BitVec inner_cw = inner_.encode(data);
  BitVec cw(codeword_bits());
  for (std::size_t i = 0; i < inner_cw.size(); ++i)
    if (inner_cw.test(i)) cw.set(i);
  cw.set(cw.size() - 1, inner_cw.count_ones() % 2 == 1);  // even overall parity
  return cw;
}

DecodeResult SecDedCode::decode(const BitVec& codeword) const {
  REAP_EXPECTS(codeword.size() == codeword_bits());

  BitVec inner_cw(inner_.codeword_bits());
  for (std::size_t i = 0; i < inner_cw.size(); ++i)
    if (codeword.test(i)) inner_cw.set(i);

  const bool overall_odd = codeword.count_ones() % 2 == 1;
  DecodeResult inner_res = inner_.decode(inner_cw);

  DecodeResult r;
  r.codeword = codeword;
  r.data = BitVec(data_bits());

  const bool inner_saw_error = inner_res.status != DecodeStatus::clean;

  if (!inner_saw_error && !overall_odd) {
    r.status = DecodeStatus::clean;
  } else if (inner_saw_error && overall_odd &&
             inner_res.status == DecodeStatus::corrected) {
    r.status = DecodeStatus::corrected;
    r.corrected_bits = 1;
    // Rebuild the outer codeword from the corrected inner one.
    r.codeword = BitVec(codeword_bits());
    for (std::size_t i = 0; i < inner_res.codeword.size(); ++i)
      if (inner_res.codeword.test(i)) r.codeword.set(i);
    r.codeword.set(r.codeword.size() - 1,
                   inner_res.codeword.count_ones() % 2 == 1);
  } else if (!inner_saw_error && overall_odd) {
    // The overall parity bit itself flipped; data is intact.
    r.status = DecodeStatus::corrected;
    r.corrected_bits = 1;
    r.codeword.flip(r.codeword.size() - 1);
  } else {
    // syndrome != 0 with even overall parity (classic double error), or an
    // inner decode that already declared failure.
    r.status = DecodeStatus::detected_uncorrectable;
    return r;
  }

  for (std::size_t i = 0; i < data_bits(); ++i)
    if (r.codeword.test(i)) r.data.set(i);
  return r;
}

}  // namespace reap::ecc

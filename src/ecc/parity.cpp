#include "reap/ecc/parity.hpp"

#include "reap/common/assert.hpp"

namespace reap::ecc {

ParityCode::ParityCode(std::size_t data_bits) : data_bits_(data_bits) {
  REAP_EXPECTS(data_bits >= 1);
}

std::string ParityCode::name() const {
  return "parity(" + std::to_string(data_bits_ + 1) + "," +
         std::to_string(data_bits_) + ")";
}

BitVec ParityCode::encode(const BitVec& data) const {
  REAP_EXPECTS(data.size() == data_bits_);
  BitVec cw(data_bits_ + 1);
  for (std::size_t i = 0; i < data_bits_; ++i)
    if (data.test(i)) cw.set(i);
  cw.set(data_bits_, data.count_ones() % 2 == 1);
  return cw;
}

DecodeResult ParityCode::decode(const BitVec& codeword) const {
  REAP_EXPECTS(codeword.size() == data_bits_ + 1);
  DecodeResult r;
  r.codeword = codeword;
  r.data = BitVec(data_bits_);
  for (std::size_t i = 0; i < data_bits_; ++i)
    if (codeword.test(i)) r.data.set(i);
  const bool parity_ok = codeword.count_ones() % 2 == 0;
  r.status =
      parity_ok ? DecodeStatus::clean : DecodeStatus::detected_uncorrectable;
  return r;
}

}  // namespace reap::ecc

#include "reap/ecc/gf2.hpp"

#include <array>

namespace reap::ecc {

namespace {
// Primitive polynomials (bit mask includes the x^m term), indexed by m.
constexpr std::array<std::uint32_t, 15> kPrimPoly = {
    0,      0,      0,
    0b1011,          // m=3:  x^3 + x + 1
    0b10011,         // m=4:  x^4 + x + 1
    0b100101,        // m=5:  x^5 + x^2 + 1
    0b1000011,       // m=6:  x^6 + x + 1
    0b10001001,      // m=7:  x^7 + x^3 + 1
    0b100011101,     // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0b1000010001,    // m=9:  x^9 + x^4 + 1
    0b10000001001,   // m=10: x^10 + x^3 + 1
    0b100000000101,  // m=11: x^11 + x^2 + 1
    0b1000001010011, // m=12: x^12 + x^6 + x^4 + x + 1
    0b10000000011011,// m=13: x^13 + x^4 + x^3 + x + 1
    0b100010001000011// m=14: x^14 + x^10 + x^6 + x + 1
};
}  // namespace

GaloisField::GaloisField(unsigned m) : m_(m) {
  REAP_EXPECTS(m >= 3 && m <= 14);
  size_ = std::uint32_t{1} << m;
  prim_poly_ = kPrimPoly[m];
  exp_.resize(order());
  log_.resize(size_);
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < order(); ++i) {
    exp_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x & size_) x ^= prim_poly_;
  }
  REAP_ENSURES(x == 1);  // alpha^order == 1 confirms primitivity
}

std::uint32_t GaloisField::eval_poly(const std::vector<std::uint32_t>& poly,
                                     std::uint32_t x) const {
  std::uint32_t acc = 0;
  for (std::size_t i = poly.size(); i-- > 0;) {
    acc = add(mul(acc, x), poly[i]);
  }
  return acc;
}

std::uint64_t GaloisField::minimal_polynomial(std::uint32_t e) const {
  // Collect the cyclotomic coset {e, 2e, 4e, ...} mod order, then expand
  // prod (x - alpha^c). Coefficients of the product land in GF(2).
  std::vector<std::uint32_t> coset;
  std::uint32_t c = e % order();
  do {
    coset.push_back(c);
    c = static_cast<std::uint32_t>((std::uint64_t{c} * 2) % order());
  } while (c != e % order());

  // poly over GF(2^m): start with 1, multiply by (x + alpha^c).
  std::vector<std::uint32_t> poly = {1};
  for (std::uint32_t ci : coset) {
    const std::uint32_t root = alpha_pow(ci);
    std::vector<std::uint32_t> next(poly.size() + 1, 0);
    for (std::size_t i = 0; i < poly.size(); ++i) {
      next[i + 1] ^= poly[i];            // x * poly
      next[i] ^= mul(poly[i], root);     // root * poly
    }
    poly = std::move(next);
  }

  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < poly.size(); ++i) {
    REAP_ASSERT(poly[i] == 0 || poly[i] == 1);  // must collapse to GF(2)
    if (poly[i]) mask |= std::uint64_t{1} << i;
  }
  return mask;
}

}  // namespace reap::ecc

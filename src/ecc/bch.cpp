#include "reap/ecc/bch.hpp"

#include <algorithm>

#include "reap/common/assert.hpp"

namespace reap::ecc {

namespace {

// lcm accumulation over GF(2) polynomials represented as bool vectors
// (index = power of x).
std::vector<bool> poly_mul(const std::vector<bool>& a,
                           const std::vector<bool>& b) {
  std::vector<bool> out(a.size() + b.size() - 1, false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i]) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (b[j]) out[i + j] = !out[i + j];
    }
  }
  return out;
}

std::vector<bool> mask_to_poly(std::uint64_t mask) {
  std::vector<bool> p;
  while (mask) {
    p.push_back(mask & 1);
    mask >>= 1;
  }
  return p;
}

unsigned pick_field_m(std::size_t data_bits, unsigned t) {
  for (unsigned m = 3; m <= 14; ++m) {
    const std::size_t n_full = (std::size_t{1} << m) - 1;
    const std::size_t max_parity = static_cast<std::size_t>(m) * t;
    if (n_full >= data_bits + max_parity) return m;
  }
  REAP_EXPECTS(false && "data width too large for supported BCH fields");
  return 0;
}

}  // namespace

BchCode::BchCode(std::size_t data_bits, unsigned t)
    : data_bits_(data_bits), t_(t), gf_(pick_field_m(data_bits, t)) {
  REAP_EXPECTS(data_bits >= 1);
  REAP_EXPECTS(t >= 1 && t <= 8);

  // g(x) = lcm of minimal polys of alpha^(2i-1), i = 1..t. Distinct cosets
  // are multiplied once (lcm of coprime irreducibles is the product).
  std::vector<std::uint64_t> seen;
  std::vector<bool> g = {true};  // 1
  for (unsigned i = 1; i <= t_; ++i) {
    const std::uint64_t mp = gf_.minimal_polynomial(2 * i - 1);
    if (std::find(seen.begin(), seen.end(), mp) != seen.end()) continue;
    seen.push_back(mp);
    g = poly_mul(g, mask_to_poly(mp));
  }
  generator_ = g;
  parity_bits_ = generator_.size() - 1;
  REAP_ENSURES(parity_bits_ >= t_);
  REAP_ENSURES(data_bits_ + parity_bits_ <= gf_.order());
}

std::string BchCode::name() const {
  return "bch(" + std::to_string(codeword_bits()) + "," +
         std::to_string(data_bits_) + ",t=" + std::to_string(t_) + ")";
}

std::size_t BchCode::degree_of_index(std::size_t i) const {
  if (i < data_bits_) return parity_bits_ + (data_bits_ - 1 - i);
  return parity_bits_ - 1 - (i - data_bits_);
}

std::size_t BchCode::index_of_degree(std::size_t deg) const {
  if (deg >= parity_bits_) return data_bits_ - 1 - (deg - parity_bits_);
  return data_bits_ + (parity_bits_ - 1 - deg);
}

BitVec BchCode::encode(const BitVec& data) const {
  REAP_EXPECTS(data.size() == data_bits_);

  // Long division of x^parity * d(x) by g(x) over GF(2). Work over a dense
  // bool buffer indexed by degree.
  const std::size_t top_deg = parity_bits_ + data_bits_ - 1;
  std::vector<bool> rem(top_deg + 1, false);
  for (std::size_t i = 0; i < data_bits_; ++i)
    if (data.test(i)) rem[degree_of_index(i)] = true;

  for (std::size_t deg = top_deg + 1; deg-- > parity_bits_;) {
    if (!rem[deg]) continue;
    const std::size_t shift = deg - parity_bits_;
    for (std::size_t gi = 0; gi < generator_.size(); ++gi) {
      if (generator_[gi]) rem[gi + shift] = !rem[gi + shift];
    }
  }

  BitVec cw(codeword_bits());
  for (std::size_t i = 0; i < data_bits_; ++i)
    if (data.test(i)) cw.set(i);
  for (std::size_t j = 0; j < parity_bits_; ++j)
    if (rem[parity_bits_ - 1 - j]) cw.set(data_bits_ + j);
  return cw;
}

DecodeResult BchCode::decode(const BitVec& codeword) const {
  REAP_EXPECTS(codeword.size() == codeword_bits());
  DecodeResult r;
  r.codeword = codeword;
  r.data = BitVec(data_bits_);

  // Syndromes S_i = r(alpha^i), i = 1..2t.
  std::vector<std::uint32_t> synd(2 * t_ + 1, 0);  // 1-based
  bool any_nonzero = false;
  const auto ones = codeword.one_positions();
  for (unsigned i = 1; i <= 2 * t_; ++i) {
    std::uint32_t s = 0;
    for (const std::size_t idx : ones) {
      const std::size_t deg = degree_of_index(idx);
      s = GaloisField::add(
          s, gf_.alpha_pow(static_cast<std::int64_t>(deg) * i));
    }
    synd[i] = s;
    any_nonzero |= (s != 0);
  }

  if (!any_nonzero) {
    r.status = DecodeStatus::clean;
    for (std::size_t i = 0; i < data_bits_; ++i)
      if (codeword.test(i)) r.data.set(i);
    return r;
  }

  // Berlekamp-Massey over GF(2^m): find the error locator sigma(x).
  std::vector<std::uint32_t> sigma = {1};
  std::vector<std::uint32_t> prev_b = {1};
  unsigned L = 0;
  unsigned shift = 1;
  std::uint32_t b = 1;
  for (unsigned n = 0; n < 2 * t_; ++n) {
    std::uint32_t d = synd[n + 1];
    for (unsigned i = 1; i <= L && i < sigma.size(); ++i) {
      if (n + 1 >= i + 1)  // S index n+1-i >= 1
        d = GaloisField::add(d, gf_.mul(sigma[i], synd[n + 1 - i]));
    }
    if (d == 0) {
      ++shift;
      continue;
    }
    const std::uint32_t coef = gf_.div(d, b);
    std::vector<std::uint32_t> next = sigma;
    if (next.size() < prev_b.size() + shift)
      next.resize(prev_b.size() + shift, 0);
    for (std::size_t i = 0; i < prev_b.size(); ++i) {
      next[i + shift] =
          GaloisField::add(next[i + shift], gf_.mul(coef, prev_b[i]));
    }
    if (2 * L <= n) {
      prev_b = sigma;
      b = d;
      L = n + 1 - L;
      shift = 1;
    } else {
      ++shift;
    }
    sigma = std::move(next);
  }

  // Trim trailing zeros; if deg(sigma) != L or L > t the error pattern is
  // beyond the decoder, declare failure.
  while (sigma.size() > 1 && sigma.back() == 0) sigma.pop_back();
  const unsigned deg_sigma = static_cast<unsigned>(sigma.size() - 1);
  if (deg_sigma != L || L > t_) {
    r.status = DecodeStatus::detected_uncorrectable;
    return r;
  }

  // Chien search restricted to degrees that exist in the shortened code.
  std::vector<std::size_t> error_indices;
  const std::size_t n_short = codeword_bits();
  for (std::size_t deg = 0; deg < n_short; ++deg) {
    // Root X^-1 = alpha^-deg  <=>  sigma(alpha^-deg) == 0.
    const std::uint32_t x = gf_.alpha_pow(-static_cast<std::int64_t>(deg));
    if (gf_.eval_poly(sigma, x) == 0) {
      error_indices.push_back(index_of_degree(deg));
      if (error_indices.size() > L) break;
    }
  }

  if (error_indices.size() != L) {
    // Roots outside the shortened range (or repeated): uncorrectable.
    r.status = DecodeStatus::detected_uncorrectable;
    return r;
  }

  for (const std::size_t idx : error_indices) r.codeword.flip(idx);
  r.status = DecodeStatus::corrected;
  r.corrected_bits = L;
  for (std::size_t i = 0; i < data_bits_; ++i)
    if (r.codeword.test(i)) r.data.set(i);
  return r;
}

}  // namespace reap::ecc

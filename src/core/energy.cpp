#include "reap/core/energy.hpp"

namespace reap::core {

EnergyBreakdown compute_energy(const EnergyEvents& events,
                               const nvsim::AccessEnergies& unit) {
  EnergyBreakdown e;
  auto mul = [](common::Joules j, std::uint64_t n) {
    return j.value * static_cast<double>(n);
  };
  e.data_read_j = mul(unit.way_data_read, events.way_data_reads);
  e.data_write_j = mul(unit.way_data_write, events.way_data_writes);
  e.tag_j = mul(unit.tag_read, events.tag_reads) +
            mul(unit.tag_write, events.tag_writes);
  e.periphery_j = mul(unit.periphery, events.lookups);
  e.ecc_decode_j = mul(unit.ecc_decode, events.ecc_decodes);
  e.ecc_encode_j = mul(unit.ecc_encode, events.ecc_encodes);
  return e;
}

}  // namespace reap::core

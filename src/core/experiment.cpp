#include "reap/core/experiment.hpp"

#include <cmath>

#include "reap/common/assert.hpp"
#include "reap/ecc/bch.hpp"
#include "reap/ecc/secded.hpp"
#include "reap/mtj/read_disturb.hpp"
#include "reap/mtj/write_model.hpp"
#include "reap/trace/datavalue.hpp"

namespace reap::core {

std::unique_ptr<ecc::Code> make_line_code(std::size_t data_bits, unsigned t) {
  REAP_EXPECTS(t >= 1);
  if (t == 1) return std::make_unique<ecc::SecDedCode>(data_bits);
  return std::make_unique<ecc::BchCode>(data_bits, t);
}

std::uint32_t l2_hit_cycles_for(PolicyKind kind,
                                const nvsim::ReadPathTiming& timing,
                                double clock_ghz) {
  // Fixed pipeline overhead (request queue, controller, bus turnaround)
  // on top of the array path.
  constexpr std::uint32_t kControllerCycles = 6;
  const double period_ns = 1.0 / clock_ghz;

  double path_ns = 0.0;
  switch (kind) {
    case PolicyKind::conventional_parallel:
      path_ns = common::in_nanoseconds(timing.conventional_total);
      break;
    case PolicyKind::reap:
      path_ns = common::in_nanoseconds(timing.reap_total);
      break;
    case PolicyKind::serial_tag_then_data:
      path_ns = common::in_nanoseconds(timing.tag_path + timing.data_path +
                                       timing.ecc_decode + timing.mux);
      break;
    case PolicyKind::disruptive_restore:
      // Conventional path plus the restore write occupying the array.
      path_ns = common::in_nanoseconds(timing.conventional_total) * 2.0;
      break;
    case PolicyKind::scrub_piggyback:
      // Scrub decodes happen off the return path; latency is conventional.
      path_ns = common::in_nanoseconds(timing.conventional_total);
      break;
  }
  return kControllerCycles +
         static_cast<std::uint32_t>(std::ceil(path_ns / period_ns));
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  REAP_EXPECTS(cfg.instructions > 0);
  REAP_EXPECTS(!cfg.workload.patterns.empty());

  const std::size_t block_bits = cfg.hierarchy.l2.block_bytes * 8;
  const auto line_code = make_line_code(block_bits, cfg.ecc_t);

  // Device operating point.
  const double p_rd = mtj::read_disturb_probability(cfg.mtj);
  const double p_wf = mtj::write_failure_probability(cfg.mtj);

  // Circuit model for energies and the policy-dependent read-path latency.
  nvsim::CacheGeometry geom;
  geom.capacity_bytes = cfg.hierarchy.l2.capacity_bytes;
  geom.ways = cfg.hierarchy.l2.ways;
  geom.block_bytes = cfg.hierarchy.l2.block_bytes;
  geom.data_cell = nvsim::CellType::stt_mram;
  const nvsim::CacheModel circuit(geom, cfg.tech, *line_code, &cfg.mtj);

  // Reliability machinery.
  reliability::UncorrectableModel model(p_rd, cfg.ecc_t, block_bits);
  reliability::FailureLedger ledger;

  PolicyContext ctx;
  ctx.model = &model;
  ctx.ledger = &ledger;
  ctx.ways = cfg.hierarchy.l2.ways;
  ctx.write_fail_per_cell = p_wf;
  ctx.codeword_bits = line_code->codeword_bits();
  ctx.check_on_dirty_eviction = cfg.check_on_dirty_eviction;
  ctx.scrub_every = cfg.scrub_every;
  const auto policy = ReadPathPolicy::make(cfg.policy, ctx);

  // Hierarchy + workload.
  sim::HierarchyConfig hcfg = cfg.hierarchy;
  sim::MemoryHierarchy hier(hcfg, cfg.seed);
  hier.set_l2_hooks(policy.get());
  const std::uint32_t hit_cycles =
      l2_hit_cycles_for(cfg.policy, circuit.timing(), cfg.clock_ghz);
  hier.set_l2_hit_cycles(hit_cycles);

  trace::DataValueModel values(cfg.workload.values, block_bits,
                               cfg.workload.seed ^ 0xABCD);
  hier.set_l2_ones_model(
      [&values](std::uint64_t addr) { return values.ones_for(addr); });

  trace::WorkloadTraceSource source(cfg.workload);
  sim::TraceCpu cpu(source, hier, cfg.clock_ghz);

  // Warmup: populate caches, then reset all accounting.
  if (cfg.warmup_instructions > 0) {
    cpu.run(cfg.warmup_instructions);
    hier.reset_stats();
    ledger.reset();
    policy->reset_events();
    cpu.reset_counters();
  }

  cpu.run(cfg.instructions);

  ExperimentResult r;
  r.workload = cfg.workload.name;
  r.policy = cfg.policy;
  r.instructions = cpu.instructions();
  r.cycles = cpu.cycles();
  r.ipc = cpu.ipc();
  r.sim_seconds = cpu.seconds();
  r.l2_hit_cycles = hit_cycles;
  r.hier = hier.stats();
  r.mttf = reliability::compute_mttf(ledger.total_failure_prob(),
                                     cpu.seconds());
  r.checks = ledger.checks();
  r.max_concealed = ledger.max_concealed();
  r.concealed = ledger.histogram();
  r.events = policy->events();
  r.energy = compute_energy(r.events, circuit.energies());
  r.p_rd = p_rd;
  return r;
}

PolicyComparison compare_policies(const ExperimentConfig& cfg,
                                  PolicyKind base, PolicyKind other) {
  ExperimentConfig base_cfg = cfg;
  base_cfg.policy = base;
  ExperimentConfig other_cfg = cfg;
  other_cfg.policy = other;

  PolicyComparison c;
  c.base = run_experiment(base_cfg);
  c.other = run_experiment(other_cfg);
  c.mttf_gain = reliability::mttf_ratio(c.other.mttf, c.base.mttf);
  const double eb = c.base.energy.dynamic_total_j();
  const double eo = c.other.energy.dynamic_total_j();
  c.energy_ratio = eb > 0.0 ? eo / eb : 1.0;
  c.energy_overhead_pct = (c.energy_ratio - 1.0) * 100.0;
  c.speedup = c.base.ipc > 0.0 ? c.other.ipc / c.base.ipc : 1.0;
  return c;
}

}  // namespace reap::core

#include "reap/core/experiment.hpp"

#include <cmath>

#include "reap/common/assert.hpp"
#include "reap/core/policy_impl.hpp"
#include "reap/core/read_path.hpp"
#include "reap/ecc/bch.hpp"
#include "reap/ecc/secded.hpp"
#include "reap/mtj/read_disturb.hpp"
#include "reap/mtj/write_model.hpp"
#include "reap/reliability/binomial.hpp"
#include "reap/trace/datavalue.hpp"

namespace reap::core {

std::unique_ptr<ecc::Code> make_line_code(std::size_t data_bits, unsigned t) {
  REAP_EXPECTS(t >= 1);
  if (t == 1) return std::make_unique<ecc::SecDedCode>(data_bits);
  return std::make_unique<ecc::BchCode>(data_bits, t);
}

std::uint32_t l2_hit_cycles_for(PolicyKind kind,
                                const nvsim::ReadPathTiming& timing,
                                double clock_ghz) {
  // Fixed pipeline overhead (request queue, controller, bus turnaround)
  // on top of the array path.
  constexpr std::uint32_t kControllerCycles = 6;
  const double period_ns = 1.0 / clock_ghz;

  double path_ns = 0.0;
  switch (kind) {
    case PolicyKind::conventional_parallel:
      path_ns = common::in_nanoseconds(timing.conventional_total);
      break;
    case PolicyKind::reap:
      path_ns = common::in_nanoseconds(timing.reap_total);
      break;
    case PolicyKind::serial_tag_then_data:
      path_ns = common::in_nanoseconds(timing.tag_path + timing.data_path +
                                       timing.ecc_decode + timing.mux);
      break;
    case PolicyKind::disruptive_restore:
      // Conventional path plus the restore write occupying the array.
      path_ns = common::in_nanoseconds(timing.conventional_total) * 2.0;
      break;
    case PolicyKind::scrub_piggyback:
      // Scrub decodes happen off the return path; latency is conventional.
      path_ns = common::in_nanoseconds(timing.conventional_total);
      break;
  }
  return kControllerCycles +
         static_cast<std::uint32_t>(std::ceil(path_ns / period_ns));
}

namespace {

nvsim::CacheGeometry l2_geometry(const ExperimentConfig& cfg) {
  nvsim::CacheGeometry geom;
  geom.capacity_bytes = cfg.hierarchy.l2.capacity_bytes;
  geom.ways = cfg.hierarchy.l2.ways;
  geom.block_bytes = cfg.hierarchy.l2.block_bytes;
  geom.data_cell = nvsim::CellType::stt_mram;
  return geom;
}

// Everything an experiment wires together except the policy object, shared
// by the static- and virtual-dispatch drivers so the two runs differ only
// in how the policy is invoked.
struct ExperimentRig {
  std::unique_ptr<ecc::Code> line_code;
  double p_rd;
  double p_wf;
  nvsim::CacheModel circuit;
  reliability::UncorrectableModel model;
  reliability::FailureLedger ledger;
  PolicyContext ctx;
  sim::MemoryHierarchy hier;
  trace::DataValueModel values;
  // The op stream: the config's own generator by default, or an external
  // source (e.g. a trace::ReplayTraceSource over a materialized arena) —
  // which must yield the byte-identical sequence the generator would.
  std::unique_ptr<trace::WorkloadTraceSource> own_source;
  trace::TraceSource& source;
  sim::TraceCpu cpu;
  std::uint32_t hit_cycles;

  explicit ExperimentRig(const ExperimentConfig& cfg,
                         trace::TraceSource* external = nullptr)
      : line_code(make_line_code(cfg.hierarchy.l2.block_bytes * 8, cfg.ecc_t)),
        p_rd(mtj::read_disturb_probability(cfg.mtj)),
        p_wf(mtj::write_failure_probability(cfg.mtj)),
        circuit(l2_geometry(cfg), cfg.tech, *line_code, &cfg.mtj),
        model(p_rd, cfg.ecc_t, cfg.hierarchy.l2.block_bytes * 8),
        hier(cfg.hierarchy, cfg.seed),
        values(cfg.workload.values, cfg.hierarchy.l2.block_bytes * 8,
               cfg.workload.seed ^ 0xABCD),
        own_source(external ? nullptr
                            : std::make_unique<trace::WorkloadTraceSource>(
                                  cfg.workload)),
        source(external ? *external : *own_source),
        cpu(source, hier, cfg.clock_ghz),
        hit_cycles(l2_hit_cycles_for(cfg.policy, circuit.timing(),
                                     cfg.clock_ghz)) {
    ctx.model = &model;
    ctx.ledger = &ledger;
    ctx.ways = cfg.hierarchy.l2.ways;
    ctx.write_fail_per_cell = p_wf;
    ctx.codeword_bits = line_code->codeword_bits();
    ctx.check_on_dirty_eviction = cfg.check_on_dirty_eviction;
    ctx.scrub_every = cfg.scrub_every;
    hier.set_l2_hit_cycles(hit_cycles);
    hier.set_l2_ones_provider(sim::OnesProvider(values));
  }

  void reset_accounting() {
    hier.reset_stats();
    ledger.reset();
    cpu.reset_counters();
  }
};

// Collects the result after the run; `policy` only needs events().
template <class Policy>
ExperimentResult collect(const ExperimentConfig& cfg, const ExperimentRig& rig,
                         const Policy& policy) {
  ExperimentResult r;
  r.workload = cfg.workload.name;
  r.policy = cfg.policy;
  r.instructions = rig.cpu.instructions();
  r.cycles = rig.cpu.cycles();
  r.ipc = rig.cpu.ipc();
  r.sim_seconds = rig.cpu.seconds();
  r.l2_hit_cycles = rig.hit_cycles;
  r.hier = rig.hier.stats();
  r.mttf = reliability::compute_mttf(rig.ledger.total_failure_prob(),
                                     rig.cpu.seconds());
  r.checks = rig.ledger.checks();
  r.max_concealed = rig.ledger.max_concealed();
  r.concealed = rig.ledger.histogram();
  r.events = policy.events();
  r.energy = compute_energy(r.events, rig.circuit.energies());
  r.p_rd = rig.p_rd;
  return r;
}

void check_config(const ExperimentConfig& cfg) {
  REAP_EXPECTS(cfg.instructions > 0);
  REAP_EXPECTS(!cfg.workload.patterns.empty());
}

}  // namespace

namespace {

// `vectorized` picks the drive loop: TraceCpu::run_vectorized (batch
// pre-decode + prefetch + pre-decoded L2 lookups) or the plain batched
// run. Both produce byte-identical results; the branch is per run, not
// per op.
ExperimentResult run_static(const ExperimentConfig& cfg, ExperimentRig& rig,
                            bool vectorized = true) {
  return with_policy_impl(cfg.policy, rig.ctx, [&](auto& policy) {
    // Warmup: populate caches, then reset all accounting.
    if (cfg.warmup_instructions > 0) {
      if (vectorized)
        rig.cpu.run_vectorized(cfg.warmup_instructions, policy);
      else
        rig.cpu.run(cfg.warmup_instructions, policy);
      rig.reset_accounting();
      policy.reset_events();
    }
    if (vectorized)
      rig.cpu.run_vectorized(cfg.instructions, policy);
    else
      rig.cpu.run(cfg.instructions, policy);
    return collect(cfg, rig, policy);
  });
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  check_config(cfg);
  ExperimentRig rig(cfg);
  return run_static(cfg, rig);
}

ExperimentResult run_experiment_basic(const ExperimentConfig& cfg) {
  check_config(cfg);
  ExperimentRig rig(cfg);
  return run_static(cfg, rig, /*vectorized=*/false);
}

ExperimentResult run_experiment_replay(const ExperimentConfig& cfg,
                                       trace::TraceSource& source) {
  check_config(cfg);
  ExperimentRig rig(cfg, &source);
  return run_static(cfg, rig);
}

ExperimentResult run_experiment_virtual(const ExperimentConfig& cfg) {
  check_config(cfg);
  ExperimentRig rig(cfg);
  const auto policy = ReadPathPolicy::make(cfg.policy, rig.ctx);
  rig.hier.set_l2_hooks(policy.get());
  if (cfg.warmup_instructions > 0) {
    rig.cpu.run(cfg.warmup_instructions);
    rig.reset_accounting();
    policy->reset_events();
  }
  rig.cpu.run(cfg.instructions);
  return collect(cfg, rig, *policy);
}

PolicyComparison compare_policies(const ExperimentConfig& cfg,
                                  PolicyKind base, PolicyKind other) {
  ExperimentConfig base_cfg = cfg;
  base_cfg.policy = base;
  ExperimentConfig other_cfg = cfg;
  other_cfg.policy = other;

  PolicyComparison c;
  c.base = run_experiment(base_cfg);
  c.other = run_experiment(other_cfg);
  c.mttf_gain = reliability::mttf_ratio(c.other.mttf, c.base.mttf);
  const double eb = c.base.energy.dynamic_total_j();
  const double eo = c.other.energy.dynamic_total_j();
  c.energy_ratio = eb > 0.0 ? eo / eb : 1.0;
  c.energy_overhead_pct = (c.energy_ratio - 1.0) * 100.0;
  c.speedup = c.base.ipc > 0.0 ? c.other.ipc / c.base.ipc : 1.0;
  return c;
}

}  // namespace reap::core

// Runtime-dispatch adapters over the concrete policy implementations in
// policy_impl.hpp; see read_path.hpp for the taxonomy.
//
// PolicyAdapter<Impl> is the "existing virtual interface" kept for tests
// and exploratory code: it forwards every L2PolicyHooks call to the same
// impl the static dispatch path inlines, so both paths run literally the
// same policy arithmetic (the golden-equivalence test pins this down).
#pragma once

#include "reap/core/policy_impl.hpp"
#include "reap/core/read_path.hpp"

namespace reap::core {

template <class Impl>
class PolicyAdapter final : public ReadPathPolicy {
 public:
  explicit PolicyAdapter(const PolicyContext& ctx) : impl_(ctx) {}

  PolicyKind kind() const override { return Impl::kKind; }
  const EnergyEvents& events() const override { return impl_.events(); }
  void reset_events() override { impl_.reset_events(); }

  void on_read_lookup(sim::CacheSetView set, int hit_way) override {
    impl_.on_read_lookup(set, hit_way);
  }
  void on_write_lookup(sim::CacheSetView set, int hit_way) override {
    impl_.on_write_lookup(set, hit_way);
  }
  void on_fill(sim::LineRel& rel) override { impl_.on_fill(rel); }
  void on_evict(sim::LineRel& rel, bool dirty) override {
    impl_.on_evict(rel, dirty);
  }

  // Access to impl-specific surface (restore_failure_prob,
  // scrubs_performed, ...).
  Impl& impl() { return impl_; }
  const Impl& impl() const { return impl_; }

 private:
  Impl impl_;
};

using ConventionalParallelPolicy = PolicyAdapter<ConventionalPolicyImpl>;
using ReapPolicy = PolicyAdapter<ReapPolicyImpl>;
using SerialTagThenDataPolicy = PolicyAdapter<SerialPolicyImpl>;
using DisruptiveRestorePolicy = PolicyAdapter<RestorePolicyImpl>;
using ScrubPiggybackPolicy = PolicyAdapter<ScrubPolicyImpl>;

}  // namespace reap::core

// Concrete read-path policies; see read_path.hpp for the taxonomy.
#pragma once

#include "reap/core/read_path.hpp"

namespace reap::core {

// Fig. 2: parallel access, single ECC decoder after the way MUX.
class ConventionalParallelPolicy final : public ReadPathPolicy {
 public:
  explicit ConventionalParallelPolicy(const PolicyContext& ctx)
      : ReadPathPolicy(ctx) {}
  PolicyKind kind() const override { return PolicyKind::conventional_parallel; }
  void on_read_lookup(std::span<sim::CacheLine> ways, int hit_way) override;

 protected:
  double check_failure(const sim::CacheLine& line) const override;
};

// Fig. 4: parallel access, k ECC decoders before the way MUX (the paper's
// proposal).
class ReapPolicy final : public ReadPathPolicy {
 public:
  explicit ReapPolicy(const PolicyContext& ctx) : ReadPathPolicy(ctx) {}
  PolicyKind kind() const override { return PolicyKind::reap; }
  void on_read_lookup(std::span<sim::CacheLine> ways, int hit_way) override;

 protected:
  double check_failure(const sim::CacheLine& line) const override;
};

// Sec. IV approach (1): read the data way only after the tag compare.
class SerialTagThenDataPolicy final : public ReadPathPolicy {
 public:
  explicit SerialTagThenDataPolicy(const PolicyContext& ctx)
      : ReadPathPolicy(ctx) {}
  PolicyKind kind() const override { return PolicyKind::serial_tag_then_data; }
  void on_read_lookup(std::span<sim::CacheLine> ways, int hit_way) override;

 protected:
  double check_failure(const sim::CacheLine& line) const override;
};

// Refs [14][15]: parallel access with a restore write after every read of
// every way. Removes accumulation without extra decoders, but each restore
// can fail as a write and burns write energy -- the trade-off the paper
// criticizes.
class DisruptiveRestorePolicy final : public ReadPathPolicy {
 public:
  explicit DisruptiveRestorePolicy(const PolicyContext& ctx);
  PolicyKind kind() const override { return PolicyKind::disruptive_restore; }
  void on_read_lookup(std::span<sim::CacheLine> ways, int hit_way) override;

  double restore_failure_prob() const { return p_restore_fail_; }

 protected:
  double check_failure(const sim::CacheLine& line) const override;

 private:
  double p_restore_fail_;  // P(> t write failures in one restored codeword)
};

// Extension: conventional read path + periodic piggyback scrubbing. Every
// scrub_every-th read lookup behaves like a REAP access for its set (all
// ways checked and scrubbed); all other lookups are plain conventional.
// Interpolates between the two designs at proportional decode energy.
class ScrubPiggybackPolicy final : public ReadPathPolicy {
 public:
  explicit ScrubPiggybackPolicy(const PolicyContext& ctx);
  PolicyKind kind() const override { return PolicyKind::scrub_piggyback; }
  void on_read_lookup(std::span<sim::CacheLine> ways, int hit_way) override;

  std::uint64_t scrubs_performed() const { return scrubs_; }

 protected:
  double check_failure(const sim::CacheLine& line) const override;

 private:
  std::uint64_t countdown_;
  std::uint64_t scrubs_ = 0;
};

}  // namespace reap::core

// Human-readable key/value round-trip for ExperimentConfig.
//
// Every campaign result row and log line carries the exact configuration
// that produced it, as a single "k=v k=v ..." string with a fixed key order,
// so any emitted row can be re-run verbatim:
//
//   workload=mcf policy=reap ecc_t=1 mtj=paper_default mtj_read_ratio=0.693
//   instructions=3000000 warmup=200000 clock_ghz=2 seed=42
//   workload_seed=24285 scrub_every=64 dirty_check=0 l2_kb=1024 l2_ways=8
//   block_bytes=64
//
// Workloads are referenced by spec2006 profile name (custom profiles are
// not representable; config_from_kv reports them as an error).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "reap/core/experiment.hpp"

namespace reap::core {

// Serializes the experiment-defining fields. Round-trip guarantee:
// config_from_kv(to_kv_string(cfg)) reproduces cfg bit-for-bit for any cfg
// whose workload is a bundled spec2006 profile.
std::string to_kv_string(const ExperimentConfig& cfg);

// Parses a "k=v k=v" string (whitespace-separated). Unknown keys are
// errors, as is a missing/unknown workload or policy. On failure returns
// nullopt and, if `error` is non-null, stores a description.
std::optional<ExperimentConfig> config_from_kv(const std::string& text,
                                               std::string* error = nullptr);

// Shared low-level parser: splits "k=v k=v ..." into a map. Later
// duplicates win. Tokens without '=' produce an empty-string value.
std::map<std::string, std::string> kv_parse(const std::string& text);

}  // namespace reap::core

// Concrete, non-virtual read-path policy implementations: the compile-time
// dispatch targets the experiment engine instantiates the cache/hierarchy
// access path over. See read_path.hpp for the policy taxonomy and the
// runtime-dispatch adapter that wraps these for tests.
//
// Each impl has the sim hooks shape (on_read_lookup / on_write_lookup /
// on_fill / on_evict) plus events(). Shared write/fill/evict bookkeeping
// lives in PolicyImplBase, a CRTP base so the eviction path reaches the
// derived check_failure without a vtable.
//
// Loops that only bump accumulation counters go through
// CacheSetView::accumulate_valid — a whole-set vector kernel
// (sim/simd.hpp) when the view spans the cache's padded columns, the
// branchless scalar walk (counter += valid_bit) otherwise; both are
// value-identical. Loops that append ledger entries per way keep the
// branchy form: the ledger's floating-point sum and histogram sequence
// must stay in exact way order.
#pragma once

#include "reap/common/assert.hpp"
#include "reap/core/read_path.hpp"
#include "reap/reliability/binomial.hpp"

namespace reap::core {

template <class Derived>
class PolicyImplBase {
 public:
  explicit PolicyImplBase(const PolicyContext& ctx) : ctx_(ctx) {
    REAP_EXPECTS(ctx.model != nullptr);
    REAP_EXPECTS(ctx.ledger != nullptr);
    REAP_EXPECTS(ctx.ways >= 1);
  }

  const EnergyEvents& events() const { return events_; }
  void reset_events() { events_ = EnergyEvents{}; }

  void on_write_lookup(sim::CacheSetView set, int hit_way) {
    (void)set;
    ++events_.lookups;
    ++events_.tag_reads;
    if (hit_way >= 0) {
      // The hit way's data (and its freshly-encoded ECC) is rewritten; the
      // cache clears reads_since_check and refreshes ones after this hook.
      ++events_.way_data_writes;
      ++events_.ecc_encodes;
      ++events_.tag_writes;  // dirty-bit / LRU state update
    }
  }

  void on_fill(sim::LineRel& rel) {
    (void)rel;
    ++events_.way_data_writes;
    ++events_.ecc_encodes;
    ++events_.tag_writes;
  }

  void on_evict(sim::LineRel& rel, bool dirty) {
    if (!ctx_.check_on_dirty_eviction || !dirty) return;
    // Extension: the victim is read out through the ECC path before its
    // writeback, which both costs a decode and realizes any accumulated
    // uncorrectable state.
    ++events_.ecc_decodes;
    ++events_.way_data_reads;
    ctx_.ledger->record_unattributed(derived().check_failure(rel));
    rel.reads_since_check = 0;
  }

 protected:
  const Derived& derived() const {
    return static_cast<const Derived&>(*this);
  }

  // The Fig. 2 lookup shape: every way sensed in parallel, only the hit
  // way ECC-checked with Eq. (3)'s accumulated window. Shared by
  // ConventionalPolicyImpl and ScrubPolicyImpl's non-scrub accesses.
  void conventional_read_lookup(sim::CacheSetView set, int hit_way) {
    ++events_.lookups;
    ++events_.tag_reads;
    // Fast-access mode: every way's data is read in parallel with the tag
    // compare, hit or miss.
    events_.way_data_reads += set.size();

    // Every valid way's data is sensed; count the read on all of them,
    // then rewind the hit way, whose read is checked, not concealed.
    set.accumulate_valid();

    if (hit_way >= 0) {
      // The requested way goes through the single ECC decoder. Its failure
      // probability reflects the disturbance accumulated over the
      // concealed reads since its last check, plus this read (Eq. 3's N).
      ++events_.ecc_decodes;
      sim::LineRel& line = set.rel(static_cast<std::size_t>(hit_way));
      const std::uint64_t concealed = line.reads_since_check - 1;
      ctx_.ledger->record_check(
          concealed, ctx_.model->conventional(line.ones, concealed + 1));
      line.reads_since_check = 0;  // checked (and scrubbed) now
    }
  }

  PolicyContext ctx_;
  EnergyEvents events_;
};

// Fig. 2: parallel access, single ECC decoder after the way MUX.
class ConventionalPolicyImpl final
    : public PolicyImplBase<ConventionalPolicyImpl> {
 public:
  static constexpr PolicyKind kKind = PolicyKind::conventional_parallel;
  using PolicyImplBase::PolicyImplBase;

  void on_read_lookup(sim::CacheSetView set, int hit_way) {
    conventional_read_lookup(set, hit_way);
  }

  double check_failure(const sim::LineRel& rel) const {
    return ctx_.model->conventional(rel.ones, rel.reads_since_check + 1);
  }
};

// Fig. 4: parallel access, k ECC decoders before the way MUX (the paper's
// proposal).
class ReapPolicyImpl final : public PolicyImplBase<ReapPolicyImpl> {
 public:
  static constexpr PolicyKind kKind = PolicyKind::reap;
  using PolicyImplBase::PolicyImplBase;

  void on_read_lookup(sim::CacheSetView set, int hit_way) {
    ++events_.lookups;
    ++events_.tag_reads;
    events_.way_data_reads += set.size();
    // One decoder per way: all of them fire on every read access (Fig. 4).
    events_.ecc_decodes += set.size();

    // The counter still advances on concealed reads so Eq. (6)'s N is
    // known at the next real read; the physical scrub is what
    // distinguishes this from the conventional counter (the formula, not
    // the bookkeeping, changes).
    set.accumulate_valid();

    if (hit_way >= 0) {
      // Every read since the last delivery was individually checked and
      // scrubbed; correct delivery requires all N per-read checks to have
      // passed (Eq. 6).
      sim::LineRel& line = set.rel(static_cast<std::size_t>(hit_way));
      const std::uint64_t concealed = line.reads_since_check - 1;
      ctx_.ledger->record_check(concealed,
                                ctx_.model->reap(line.ones, concealed + 1));
      line.reads_since_check = 0;
    }
  }

  double check_failure(const sim::LineRel& rel) const {
    return ctx_.model->reap(rel.ones, rel.reads_since_check + 1);
  }
};

// Sec. IV approach (1): read the data way only after the tag compare.
class SerialPolicyImpl final : public PolicyImplBase<SerialPolicyImpl> {
 public:
  static constexpr PolicyKind kKind = PolicyKind::serial_tag_then_data;
  using PolicyImplBase::PolicyImplBase;

  void on_read_lookup(sim::CacheSetView set, int hit_way) {
    ++events_.lookups;
    ++events_.tag_reads;
    if (hit_way < 0) return;  // miss costs only the tag compare

    // Only the matching way is ever read, after the compare: no concealed
    // reads exist anywhere, so every check sees N = 1.
    sim::LineRel& line = set.rel(static_cast<std::size_t>(hit_way));
    ++events_.way_data_reads;
    ++events_.ecc_decodes;
    REAP_ASSERT(line.reads_since_check == 0);
    ctx_.ledger->record_check(0, ctx_.model->single(line.ones));
  }

  double check_failure(const sim::LineRel& rel) const {
    return ctx_.model->single(rel.ones);
  }
};

// Refs [14][15]: parallel access with a restore write after every read of
// every way. Removes accumulation without extra decoders, but each restore
// can fail as a write and burns write energy -- the trade-off the paper
// criticizes.
class RestorePolicyImpl final : public PolicyImplBase<RestorePolicyImpl> {
 public:
  static constexpr PolicyKind kKind = PolicyKind::disruptive_restore;

  explicit RestorePolicyImpl(const PolicyContext& ctx) : PolicyImplBase(ctx) {
    REAP_EXPECTS(ctx.write_fail_per_cell >= 0.0 &&
                 ctx.write_fail_per_cell < 1.0);
    // A restore rewrites the whole codeword; the line fails when more
    // write errors land than the code corrects.
    p_restore_fail_ = reliability::p_uncorrectable(
        ctx.codeword_bits, ctx.model->t(), ctx.write_fail_per_cell);
  }

  double restore_failure_prob() const { return p_restore_fail_; }

  void on_read_lookup(sim::CacheSetView set, int hit_way) {
    ++events_.lookups;
    ++events_.tag_reads;
    events_.way_data_reads += set.size();

    // Branchy on purpose: every valid way appends a ledger entry, and the
    // ledger sum must accumulate in exact way order.
    for (int w = 0; w < static_cast<int>(set.size()); ++w) {
      if (!set.valid(static_cast<std::size_t>(w))) continue;
      sim::LineRel& line = set.rel(static_cast<std::size_t>(w));
      // Restore-after-read: the sensed value (captured before the
      // disturbance manifests) is immediately written back, so no
      // accumulation survives -- but the restore write itself can fail.
      ++events_.way_data_writes;
      if (w == hit_way) {
        ++events_.ecc_decodes;
        ctx_.ledger->record_check(line.reads_since_check,
                                  ctx_.model->single(line.ones) +
                                      p_restore_fail_);
      } else {
        ctx_.ledger->record_unattributed(p_restore_fail_);
      }
      line.reads_since_check = 0;
    }
  }

  double check_failure(const sim::LineRel& rel) const {
    return ctx_.model->single(rel.ones);
  }

 private:
  double p_restore_fail_;  // P(> t write failures in one restored codeword)
};

// Extension: conventional read path + periodic piggyback scrubbing. Every
// scrub_every-th read lookup behaves like a REAP access for its set (all
// ways checked and scrubbed); all other lookups are plain conventional.
// Interpolates between the two designs at proportional decode energy.
class ScrubPolicyImpl final : public PolicyImplBase<ScrubPolicyImpl> {
 public:
  static constexpr PolicyKind kKind = PolicyKind::scrub_piggyback;

  explicit ScrubPolicyImpl(const PolicyContext& ctx)
      : PolicyImplBase(ctx), countdown_(ctx.scrub_every) {
    REAP_EXPECTS(ctx.scrub_every >= 1);
  }

  std::uint64_t scrubs_performed() const { return scrubs_; }

  void on_read_lookup(sim::CacheSetView set, int hit_way) {
    const bool scrub_now = --countdown_ == 0;
    if (!scrub_now) {
      conventional_read_lookup(set, hit_way);
      return;
    }

    ++events_.lookups;
    ++events_.tag_reads;
    events_.way_data_reads += set.size();
    countdown_ = ctx_.scrub_every;
    ++scrubs_;
    // Scrub access: every way's window closes with a full check, so the
    // ledger sees one entry per valid way — keep exact way order.
    for (int w = 0; w < static_cast<int>(set.size()); ++w) {
      ++events_.ecc_decodes;  // decoder fires even on invalid ways
      if (!set.valid(static_cast<std::size_t>(w))) continue;
      sim::LineRel& line = set.rel(static_cast<std::size_t>(w));
      if (w == hit_way) {
        // The requested way is always checked (conventional behaviour).
        // Its window accumulated since the last check or scrub (Eq. 3).
        const std::uint64_t concealed = line.reads_since_check;
        ctx_.ledger->record_check(
            concealed, ctx_.model->conventional(line.ones, concealed + 1));
      } else {
        // Scrubbed concealed way: its window ends here with a full check,
        // so the accumulated risk is realized now instead of at the next
        // real read (same Eq. 3 window, just closed early).
        ctx_.ledger->record_check(
            line.reads_since_check,
            ctx_.model->conventional(line.ones, line.reads_since_check + 1));
      }
      line.reads_since_check = 0;
    }
  }

  double check_failure(const sim::LineRel& rel) const {
    return ctx_.model->conventional(rel.ones, rel.reads_since_check + 1);
  }

 private:
  std::uint64_t countdown_;
  std::uint64_t scrubs_ = 0;
};

// The single point where a runtime PolicyKind becomes a compile-time type:
// constructs the matching impl and invokes fn with it. Every caller's fn
// must return the same type for all impls.
template <class Fn>
decltype(auto) with_policy_impl(PolicyKind kind, const PolicyContext& ctx,
                                Fn&& fn) {
  switch (kind) {
    case PolicyKind::conventional_parallel: {
      ConventionalPolicyImpl p(ctx);
      return fn(p);
    }
    case PolicyKind::reap: {
      ReapPolicyImpl p(ctx);
      return fn(p);
    }
    case PolicyKind::serial_tag_then_data: {
      SerialPolicyImpl p(ctx);
      return fn(p);
    }
    case PolicyKind::disruptive_restore: {
      RestorePolicyImpl p(ctx);
      return fn(p);
    }
    case PolicyKind::scrub_piggyback: {
      ScrubPolicyImpl p(ctx);
      return fn(p);
    }
  }
  REAP_ASSERT(false && "unreachable: sealed PolicyKind");
  ConventionalPolicyImpl p(ctx);
  return fn(p);
}

}  // namespace reap::core

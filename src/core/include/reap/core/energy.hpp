// Converts L2 event counts into joules using the nvsim per-event energies.
#pragma once

#include "reap/core/read_path.hpp"
#include "reap/nvsim/cache_model.hpp"

namespace reap::core {

struct EnergyBreakdown {
  double data_read_j = 0.0;
  double data_write_j = 0.0;
  double tag_j = 0.0;
  double periphery_j = 0.0;
  double ecc_decode_j = 0.0;
  double ecc_encode_j = 0.0;

  double dynamic_total_j() const {
    return data_read_j + data_write_j + tag_j + periphery_j + ecc_decode_j +
           ecc_encode_j;
  }
};

EnergyBreakdown compute_energy(const EnergyEvents& events,
                               const nvsim::AccessEnergies& unit);

}  // namespace reap::core

// Experiment runner: one workload x one read-path policy -> reliability,
// energy, performance. This is the facade the benches and examples drive;
// it wires together every substrate exactly the way the paper's evaluation
// does (Sec. V): synthetic workload -> 2-level hierarchy -> policy hooks ->
// failure ledger -> MTTF, with nvsim supplying energies/latencies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "reap/common/histogram.hpp"
#include "reap/core/energy.hpp"
#include "reap/core/read_path.hpp"
#include "reap/mtj/mtj_params.hpp"
#include "reap/nvsim/cache_model.hpp"
#include "reap/reliability/mttf.hpp"
#include "reap/sim/cpu.hpp"
#include "reap/sim/hierarchy.hpp"
#include "reap/trace/workload.hpp"

namespace reap::core {

struct ExperimentConfig {
  trace::WorkloadProfile workload;
  PolicyKind policy = PolicyKind::conventional_parallel;

  sim::HierarchyConfig hierarchy;  // defaults = paper Table I
  mtj::MtjParams mtj = mtj::paper_default();
  nvsim::TechNode tech = nvsim::tech_32nm();
  unsigned ecc_t = 1;  // line-code correction capability (1 = SEC-DED)

  std::uint64_t instructions = 5'000'000;
  std::uint64_t warmup_instructions = 500'000;
  double clock_ghz = 2.0;
  std::uint64_t seed = 42;

  bool check_on_dirty_eviction = false;  // extension, off = paper-faithful
  std::uint64_t scrub_every = 64;        // scrub_piggyback policy period
};

struct ExperimentResult {
  std::string workload;
  PolicyKind policy = PolicyKind::conventional_parallel;

  // Performance.
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  double ipc = 0.0;
  double sim_seconds = 0.0;
  std::uint32_t l2_hit_cycles = 0;

  // Hierarchy behaviour.
  sim::HierarchyStats hier;

  // Reliability.
  reliability::MttfResult mttf;
  std::uint64_t checks = 0;
  std::uint64_t max_concealed = 0;
  common::LogHistogram concealed;  // Fig. 3 source data

  // Energy.
  EnergyEvents events;
  EnergyBreakdown energy;

  double p_rd = 0.0;  // device operating point used
};

// Runs one experiment end to end. Dispatch is static: the simulator inner
// loop (trace batch -> L1 -> L2 -> policy) is instantiated per PolicyKind
// with no per-access virtual calls. The drive loop is the vectorized one
// (TraceCpu::run_vectorized): batch address pre-decode, software prefetch
// of upcoming set columns, SIMD set scans where the build enables them
// (REAP_SIMD) -- all byte-identical to the unvectorized loop below.
ExperimentResult run_experiment(const ExperimentConfig& cfg);

// The same static-dispatch engine driven by the plain batched loop
// (TraceCpu::run(n, policy)): no pre-decode, no prefetch, scalar per-way
// walks. Kept as bench_e2e's E2E/static baseline -- the simd/static ratio
// isolates this PR's vectorization win inside one binary -- and as a
// golden-equivalence midpoint (pinned byte-identical to run_experiment by
// tests/core/test_static_dispatch.cpp).
ExperimentResult run_experiment_basic(const ExperimentConfig& cfg);

// Same static-dispatch drive loop, but ops are pulled from `source`
// instead of a freshly constructed WorkloadTraceSource(cfg.workload).
// `source` must yield the byte-identical op sequence that generator would
// (e.g. a trace::ReplayTraceSource over an arena materialized from it);
// results are then byte-identical to run_experiment (golden-pinned by
// tests/core/test_static_dispatch.cpp). The campaign trace cache hangs off
// this: one materialized trace serves every point of a paired comparison.
ExperimentResult run_experiment_replay(const ExperimentConfig& cfg,
                                       trace::TraceSource& source);

// Reference implementation driving the same wiring through the runtime
// interfaces (per-op virtual TraceSource::next, virtual L2PolicyHooks).
// Kept as the equivalence baseline: for any config it must produce results
// byte-identical to run_experiment (pinned by
// tests/core/test_static_dispatch.cpp) and is what bench_e2e reports the
// static path's speedup against.
ExperimentResult run_experiment_virtual(const ExperimentConfig& cfg);

// Runs `base` and `other` on the same workload/seed and reports the
// headline comparisons the paper's figures plot.
struct PolicyComparison {
  ExperimentResult base;
  ExperimentResult other;
  double mttf_gain = 0.0;            // MTTF_other / MTTF_base  (Fig. 5)
  double energy_ratio = 0.0;         // E_other / E_base        (Fig. 6)
  double energy_overhead_pct = 0.0;  // (ratio - 1) * 100
  double speedup = 0.0;              // IPC_other / IPC_base
};

PolicyComparison compare_policies(const ExperimentConfig& cfg,
                                  PolicyKind base, PolicyKind other);

// The ECC line code the configuration implies (SEC-DED for t=1, BCH above);
// shared by benches that need codec-level costs.
std::unique_ptr<ecc::Code> make_line_code(std::size_t data_bits, unsigned t);

// Policy-dependent L2 hit latency in cycles, derived from the nvsim read
// path (Sec. V-B: REAP <= conventional; serial pays the full sum).
std::uint32_t l2_hit_cycles_for(PolicyKind kind,
                                const nvsim::ReadPathTiming& timing,
                                double clock_ghz);

}  // namespace reap::core

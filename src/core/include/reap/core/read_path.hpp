// Read-path policies: the paper's contribution and its baselines.
//
//   conventional_parallel -- Fig. 2: all k ways read in parallel with the
//       tag compare; only the requested way is ECC-checked; the other k-1
//       reads are concealed and their disturbance accumulates (Eq. 3).
//   reap -- Fig. 4: the ECC decoder is replicated k times and swapped with
//       the way-select MUX, so every way read in parallel is checked (and
//       scrubbed) on every access; accumulation is eliminated (Eq. 6).
//   serial_tag_then_data -- Sec. IV approach (1): data is read only after
//       the tag compare, so no concealed reads exist, at the cost of a
//       longer read path.
//   disruptive_restore -- Sec. II related work (refs [14][15]): every read
//       of every way is followed by a restore write; accumulation is gone
//       but each restore risks a write failure and costs write energy.
//
// A policy owns the per-line accumulation bookkeeping, the
// failure-probability ledger entries, and the energy event counts; the
// cache supplies the mechanism (tags, LRU, dirty bits). The concrete
// implementations live in policy_impl.hpp as non-virtual types the
// simulator statically dispatches over; ReadPathPolicy is the runtime
// (virtual) view of the same implementations -- a thin adapter
// (policies.hpp) for tests and exploratory code.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "reap/reliability/ledger.hpp"
#include "reap/sim/cache.hpp"

namespace reap::reliability {
class UncorrectableModel;
}

namespace reap::core {

enum class PolicyKind {
  conventional_parallel,
  reap,
  serial_tag_then_data,
  disruptive_restore,
  // Extension (not in the paper): conventional parallel access, but every
  // `scrub_every`-th read lookup piggybacks a full-set check-and-scrub --
  // a REAP-cache that fires only occasionally. scrub_every = 1 is
  // reliability-equivalent to REAP; large values approach conventional.
  scrub_piggyback,
};

std::string to_string(PolicyKind kind);
std::optional<PolicyKind> policy_from_string(const std::string& name);
std::vector<PolicyKind> all_policies();

// L2 event counts; converted to joules by core/energy.hpp.
struct EnergyEvents {
  std::uint64_t lookups = 0;          // read + write lookups (periphery)
  std::uint64_t way_data_reads = 0;   // one way's data+ECC bits
  std::uint64_t way_data_writes = 0;
  std::uint64_t tag_reads = 0;        // full tag-set read + compare
  std::uint64_t tag_writes = 0;
  std::uint64_t ecc_decodes = 0;
  std::uint64_t ecc_encodes = 0;
};

struct PolicyContext {
  const reliability::UncorrectableModel* model = nullptr;  // required
  reliability::FailureLedger* ledger = nullptr;            // required
  std::size_t ways = 8;

  // disruptive_restore only: per-cell write-failure probability and the
  // codeword size being rewritten on each restore.
  double write_fail_per_cell = 0.0;
  std::size_t codeword_bits = 523;

  // Extension (off = paper-faithful): dirty evictions read the line out
  // through the ECC path and account its accumulated failure probability.
  bool check_on_dirty_eviction = false;

  // scrub_piggyback only: one in this many read lookups scrubs its whole
  // set (checks + resets every valid way).
  std::uint64_t scrub_every = 64;
};

// Runtime-dispatch view of a read-path policy: the virtual L2PolicyHooks
// interface plus kind/events accessors. make() returns an adapter wrapping
// the matching policy_impl.hpp implementation.
class ReadPathPolicy : public sim::L2PolicyHooks {
 public:
  static std::unique_ptr<ReadPathPolicy> make(PolicyKind kind,
                                              const PolicyContext& ctx);

  virtual PolicyKind kind() const = 0;
  virtual const EnergyEvents& events() const = 0;
  virtual void reset_events() = 0;
};

}  // namespace reap::core

#include "reap/core/policies.hpp"

#include "reap/common/assert.hpp"

namespace reap::core {

// ---------------------------------------------------------------- conventional

void ConventionalParallelPolicy::on_read_lookup(
    std::span<sim::CacheLine> ways, int hit_way) {
  ++events_.lookups;
  ++events_.tag_reads;
  // Fast-access mode: every way's data is read in parallel with the tag
  // compare, hit or miss.
  events_.way_data_reads += ways.size();

  for (int w = 0; w < static_cast<int>(ways.size()); ++w) {
    sim::CacheLine& line = ways[w];
    if (!line.valid) continue;
    if (w == hit_way) {
      // The requested way goes through the single ECC decoder. Its failure
      // probability reflects the disturbance accumulated over the concealed
      // reads since its last check, plus this read (Eq. 3's N).
      ++events_.ecc_decodes;
      const std::uint64_t concealed = line.reads_since_check;
      ctx_.ledger->record_check(
          concealed, ctx_.model->conventional(line.ones, concealed + 1));
      line.reads_since_check = 0;  // checked (and scrubbed) now
    } else {
      // Concealed read: data sensed and discarded unchecked.
      ++line.reads_since_check;
    }
  }
}

double ConventionalParallelPolicy::check_failure(
    const sim::CacheLine& line) const {
  return ctx_.model->conventional(line.ones, line.reads_since_check + 1);
}

// ------------------------------------------------------------------------ reap

void ReapPolicy::on_read_lookup(std::span<sim::CacheLine> ways, int hit_way) {
  ++events_.lookups;
  ++events_.tag_reads;
  events_.way_data_reads += ways.size();
  // One decoder per way: all of them fire on every read access (Fig. 4).
  events_.ecc_decodes += ways.size();

  for (int w = 0; w < static_cast<int>(ways.size()); ++w) {
    sim::CacheLine& line = ways[w];
    if (!line.valid) continue;
    if (w == hit_way) {
      // Every read since the last delivery was individually checked and
      // scrubbed; correct delivery requires all N per-read checks to have
      // passed (Eq. 6).
      const std::uint64_t concealed = line.reads_since_check;
      ctx_.ledger->record_check(concealed,
                                ctx_.model->reap(line.ones, concealed + 1));
      line.reads_since_check = 0;
    } else {
      // Still counted so Eq. (6)'s N is known at the next real read; the
      // physical scrub is what distinguishes this from the conventional
      // counter (the formula, not the bookkeeping, changes).
      ++line.reads_since_check;
    }
  }
}

double ReapPolicy::check_failure(const sim::CacheLine& line) const {
  return ctx_.model->reap(line.ones, line.reads_since_check + 1);
}

// ---------------------------------------------------------------------- serial

void SerialTagThenDataPolicy::on_read_lookup(std::span<sim::CacheLine> ways,
                                             int hit_way) {
  ++events_.lookups;
  ++events_.tag_reads;
  if (hit_way < 0) return;  // miss costs only the tag compare

  // Only the matching way is ever read, after the compare: no concealed
  // reads exist anywhere, so every check sees N = 1.
  sim::CacheLine& line = ways[hit_way];
  ++events_.way_data_reads;
  ++events_.ecc_decodes;
  REAP_ASSERT(line.reads_since_check == 0);
  ctx_.ledger->record_check(0, ctx_.model->single(line.ones));
}

double SerialTagThenDataPolicy::check_failure(
    const sim::CacheLine& line) const {
  return ctx_.model->single(line.ones);
}

// --------------------------------------------------------------------- restore

DisruptiveRestorePolicy::DisruptiveRestorePolicy(const PolicyContext& ctx)
    : ReadPathPolicy(ctx) {
  REAP_EXPECTS(ctx.write_fail_per_cell >= 0.0 &&
               ctx.write_fail_per_cell < 1.0);
  // A restore rewrites the whole codeword; the line fails when more write
  // errors land than the code corrects.
  p_restore_fail_ = reliability::p_uncorrectable(
      ctx.codeword_bits, ctx.model->t(), ctx.write_fail_per_cell);
}

void DisruptiveRestorePolicy::on_read_lookup(std::span<sim::CacheLine> ways,
                                             int hit_way) {
  ++events_.lookups;
  ++events_.tag_reads;
  events_.way_data_reads += ways.size();

  for (int w = 0; w < static_cast<int>(ways.size()); ++w) {
    sim::CacheLine& line = ways[w];
    if (!line.valid) continue;
    // Restore-after-read: the sensed value (captured before the disturbance
    // manifests) is immediately written back, so no accumulation survives
    // -- but the restore write itself can fail.
    ++events_.way_data_writes;
    if (w == hit_way) {
      ++events_.ecc_decodes;
      ctx_.ledger->record_check(line.reads_since_check,
                                ctx_.model->single(line.ones) +
                                    p_restore_fail_);
    } else {
      ctx_.ledger->record_unattributed(p_restore_fail_);
    }
    line.reads_since_check = 0;
  }
}

double DisruptiveRestorePolicy::check_failure(
    const sim::CacheLine& line) const {
  return ctx_.model->single(line.ones);
}

// ----------------------------------------------------------------- scrub

ScrubPiggybackPolicy::ScrubPiggybackPolicy(const PolicyContext& ctx)
    : ReadPathPolicy(ctx), countdown_(ctx.scrub_every) {
  REAP_EXPECTS(ctx.scrub_every >= 1);
}

void ScrubPiggybackPolicy::on_read_lookup(std::span<sim::CacheLine> ways,
                                          int hit_way) {
  ++events_.lookups;
  ++events_.tag_reads;
  events_.way_data_reads += ways.size();

  const bool scrub_now = --countdown_ == 0;
  if (scrub_now) {
    countdown_ = ctx_.scrub_every;
    ++scrubs_;
  }

  for (int w = 0; w < static_cast<int>(ways.size()); ++w) {
    sim::CacheLine& line = ways[w];
    if (scrub_now) ++events_.ecc_decodes;  // decoder fires even on invalid ways
    if (!line.valid) continue;
    if (w == hit_way) {
      // The requested way is always checked (conventional behaviour). Its
      // window accumulated since the last check or scrub (Eq. 3).
      if (!scrub_now) ++events_.ecc_decodes;
      const std::uint64_t concealed = line.reads_since_check;
      ctx_.ledger->record_check(
          concealed, ctx_.model->conventional(line.ones, concealed + 1));
      line.reads_since_check = 0;
    } else if (scrub_now) {
      // Scrubbed concealed way: its window ends here with a full check, so
      // the accumulated risk is realized now instead of at the next real
      // read (same Eq. 3 window, just closed early).
      ctx_.ledger->record_check(
          line.reads_since_check,
          ctx_.model->conventional(line.ones, line.reads_since_check + 1));
      line.reads_since_check = 0;
    } else {
      ++line.reads_since_check;
    }
  }
}

double ScrubPiggybackPolicy::check_failure(const sim::CacheLine& line) const {
  return ctx_.model->conventional(line.ones, line.reads_since_check + 1);
}

}  // namespace reap::core

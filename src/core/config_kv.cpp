#include "reap/core/config_kv.hpp"

#include <sstream>

#include "reap/common/strings.hpp"
#include "reap/trace/spec2006.hpp"

namespace reap::core {
namespace {

using common::fmt_double;
using common::parse_double;
using common::parse_u64;

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

}  // namespace

std::map<std::string, std::string> kv_parse(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      kv[token] = "";
    } else {
      kv[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return kv;
}

std::string to_kv_string(const ExperimentConfig& cfg) {
  const double read_ratio =
      cfg.mtj.read_current.value / cfg.mtj.critical_current.value;
  std::ostringstream out;
  out << "workload=" << cfg.workload.name           //
      << " policy=" << to_string(cfg.policy)        //
      << " ecc_t=" << cfg.ecc_t                     //
      << " mtj=" << cfg.mtj.name                    //
      << " mtj_read_ratio=" << fmt_double(read_ratio)
      << " instructions=" << cfg.instructions       //
      << " warmup=" << cfg.warmup_instructions      //
      << " clock_ghz=" << fmt_double(cfg.clock_ghz) //
      << " seed=" << cfg.seed                       //
      << " workload_seed=" << cfg.workload.seed     //
      << " scrub_every=" << cfg.scrub_every         //
      << " dirty_check=" << (cfg.check_on_dirty_eviction ? 1 : 0)
      << " l2_kb=" << cfg.hierarchy.l2.capacity_bytes / 1024
      << " l2_ways=" << cfg.hierarchy.l2.ways
      << " block_bytes=" << cfg.hierarchy.l2.block_bytes;
  return out.str();
}

std::optional<ExperimentConfig> config_from_kv(const std::string& text,
                                               std::string* error) {
  auto kv = kv_parse(text);
  ExperimentConfig cfg;

  const auto take = [&kv](const char* key) -> std::optional<std::string> {
    auto it = kv.find(key);
    if (it == kv.end()) return std::nullopt;
    std::string v = it->second;
    kv.erase(it);
    return v;
  };

  const auto wl = take("workload");
  if (!wl) {
    fail(error, "missing required key: workload");
    return std::nullopt;
  }
  const auto profile = trace::spec2006_profile(*wl);
  if (!profile) {
    fail(error, "unknown workload (not a bundled spec2006 profile): " + *wl);
    return std::nullopt;
  }
  cfg.workload = *profile;

  if (const auto v = take("policy")) {
    const auto kind = policy_from_string(*v);
    if (!kind) {
      fail(error, "unknown policy: " + *v);
      return std::nullopt;
    }
    cfg.policy = *kind;
  }

  std::uint64_t u = 0;
  double d = 0.0;
  const auto want_u64 = [&](const char* key, auto apply) {
    if (const auto v = take(key)) {
      if (!parse_u64(*v, u)) return fail(error, std::string("bad ") + key);
      apply(u);
    }
    return true;
  };
  const auto want_double = [&](const char* key, auto apply) {
    if (const auto v = take(key)) {
      if (!parse_double(*v, d)) return fail(error, std::string("bad ") + key);
      apply(d);
    }
    return true;
  };

  std::string mtj_name = cfg.mtj.name;
  if (const auto v = take("mtj")) mtj_name = *v;
  bool mtj_known = false;
  for (const auto& preset : mtj::all_presets()) {
    if (preset.name == mtj_name) {
      cfg.mtj = preset;
      mtj_known = true;
    }
  }
  if (!mtj_known && mtj_name != "ratio") {
    fail(error, "unknown mtj preset: " + mtj_name);
    return std::nullopt;
  }
  if (mtj_name == "ratio") cfg.mtj = mtj::with_read_ratio(0.693);

  bool ok = true;
  ok = ok && want_double("mtj_read_ratio", [&](double r) {
         cfg.mtj.read_current =
             common::Amperes{cfg.mtj.critical_current.value * r};
       });
  ok = ok && want_u64("ecc_t",
                      [&](std::uint64_t n) { cfg.ecc_t = unsigned(n); });
  ok = ok && want_u64("instructions",
                      [&](std::uint64_t n) { cfg.instructions = n; });
  ok = ok && want_u64("warmup",
                      [&](std::uint64_t n) { cfg.warmup_instructions = n; });
  ok = ok && want_double("clock_ghz", [&](double g) { cfg.clock_ghz = g; });
  ok = ok && want_u64("seed", [&](std::uint64_t n) { cfg.seed = n; });
  ok = ok && want_u64("workload_seed",
                      [&](std::uint64_t n) { cfg.workload.seed = n; });
  ok = ok && want_u64("scrub_every",
                      [&](std::uint64_t n) { cfg.scrub_every = n; });
  ok = ok && want_u64("dirty_check", [&](std::uint64_t n) {
         cfg.check_on_dirty_eviction = n != 0;
       });
  ok = ok && want_u64("l2_kb", [&](std::uint64_t n) {
         cfg.hierarchy.l2.capacity_bytes = n * 1024;
       });
  ok = ok && want_u64("l2_ways", [&](std::uint64_t n) {
         cfg.hierarchy.l2.ways = std::size_t(n);
       });
  ok = ok && want_u64("block_bytes", [&](std::uint64_t n) {
         cfg.hierarchy.l2.block_bytes = std::size_t(n);
       });
  if (!ok) return std::nullopt;

  if (!kv.empty()) {
    fail(error, "unknown key: " + kv.begin()->first);
    return std::nullopt;
  }
  return cfg;
}

}  // namespace reap::core

#include "reap/core/read_path.hpp"

#include "reap/common/assert.hpp"
#include "reap/core/policies.hpp"

namespace reap::core {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::conventional_parallel: return "conventional";
    case PolicyKind::reap: return "reap";
    case PolicyKind::serial_tag_then_data: return "serial";
    case PolicyKind::disruptive_restore: return "restore";
    case PolicyKind::scrub_piggyback: return "scrub";
  }
  return "unknown";
}

std::optional<PolicyKind> policy_from_string(const std::string& name) {
  if (name == "conventional") return PolicyKind::conventional_parallel;
  if (name == "reap") return PolicyKind::reap;
  if (name == "serial") return PolicyKind::serial_tag_then_data;
  if (name == "restore") return PolicyKind::disruptive_restore;
  if (name == "scrub") return PolicyKind::scrub_piggyback;
  return std::nullopt;
}

std::vector<PolicyKind> all_policies() {
  return {PolicyKind::conventional_parallel, PolicyKind::reap,
          PolicyKind::serial_tag_then_data, PolicyKind::disruptive_restore,
          PolicyKind::scrub_piggyback};
}

ReadPathPolicy::ReadPathPolicy(const PolicyContext& ctx) : ctx_(ctx) {
  REAP_EXPECTS(ctx.model != nullptr);
  REAP_EXPECTS(ctx.ledger != nullptr);
  REAP_EXPECTS(ctx.ways >= 1);
}

std::unique_ptr<ReadPathPolicy> ReadPathPolicy::make(PolicyKind kind,
                                                     const PolicyContext& ctx) {
  switch (kind) {
    case PolicyKind::conventional_parallel:
      return std::make_unique<ConventionalParallelPolicy>(ctx);
    case PolicyKind::reap:
      return std::make_unique<ReapPolicy>(ctx);
    case PolicyKind::serial_tag_then_data:
      return std::make_unique<SerialTagThenDataPolicy>(ctx);
    case PolicyKind::disruptive_restore:
      return std::make_unique<DisruptiveRestorePolicy>(ctx);
    case PolicyKind::scrub_piggyback:
      return std::make_unique<ScrubPiggybackPolicy>(ctx);
  }
  return nullptr;
}

void ReadPathPolicy::on_write_lookup(std::span<sim::CacheLine> ways,
                                     int hit_way) {
  (void)ways;
  ++events_.lookups;
  ++events_.tag_reads;
  if (hit_way >= 0) {
    // The hit way's data (and its freshly-encoded ECC) is rewritten; the
    // cache clears reads_since_check and refreshes ones after this hook.
    ++events_.way_data_writes;
    ++events_.ecc_encodes;
    ++events_.tag_writes;  // dirty-bit / LRU state update
  }
}

void ReadPathPolicy::on_fill(sim::CacheLine& line) {
  (void)line;
  ++events_.way_data_writes;
  ++events_.ecc_encodes;
  ++events_.tag_writes;
}

void ReadPathPolicy::on_evict(sim::CacheLine& line) {
  if (!ctx_.check_on_dirty_eviction || !line.dirty) return;
  // Extension: the victim is read out through the ECC path before its
  // writeback, which both costs a decode and realizes any accumulated
  // uncorrectable state.
  ++events_.ecc_decodes;
  ++events_.way_data_reads;
  ctx_.ledger->record_unattributed(check_failure(line));
  line.reads_since_check = 0;
}

}  // namespace reap::core

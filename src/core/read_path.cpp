#include "reap/core/read_path.hpp"

#include "reap/core/policies.hpp"

namespace reap::core {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::conventional_parallel: return "conventional";
    case PolicyKind::reap: return "reap";
    case PolicyKind::serial_tag_then_data: return "serial";
    case PolicyKind::disruptive_restore: return "restore";
    case PolicyKind::scrub_piggyback: return "scrub";
  }
  return "unknown";
}

std::optional<PolicyKind> policy_from_string(const std::string& name) {
  if (name == "conventional") return PolicyKind::conventional_parallel;
  if (name == "reap") return PolicyKind::reap;
  if (name == "serial") return PolicyKind::serial_tag_then_data;
  if (name == "restore") return PolicyKind::disruptive_restore;
  if (name == "scrub") return PolicyKind::scrub_piggyback;
  return std::nullopt;
}

std::vector<PolicyKind> all_policies() {
  return {PolicyKind::conventional_parallel, PolicyKind::reap,
          PolicyKind::serial_tag_then_data, PolicyKind::disruptive_restore,
          PolicyKind::scrub_piggyback};
}

std::unique_ptr<ReadPathPolicy> ReadPathPolicy::make(PolicyKind kind,
                                                     const PolicyContext& ctx) {
  switch (kind) {
    case PolicyKind::conventional_parallel:
      return std::make_unique<ConventionalParallelPolicy>(ctx);
    case PolicyKind::reap:
      return std::make_unique<ReapPolicy>(ctx);
    case PolicyKind::serial_tag_then_data:
      return std::make_unique<SerialTagThenDataPolicy>(ctx);
    case PolicyKind::disruptive_restore:
      return std::make_unique<DisruptiveRestorePolicy>(ctx);
    case PolicyKind::scrub_piggyback:
      return std::make_unique<ScrubPiggybackPolicy>(ctx);
  }
  return nullptr;
}

}  // namespace reap::core

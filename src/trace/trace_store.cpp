#include "reap/trace/trace_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "reap/common/crc32c.hpp"

namespace reap::trace {

namespace {

// 8 bytes, never version-bumped: the version field after it is.
constexpr char kMagic[8] = {'R', 'E', 'A', 'P', 'T', 'R', 'C', '\0'};
// Fixed fields before the metadata block: magic + version + meta_bytes +
// op_count + instructions + body CRC.
constexpr std::size_t kFixedBytes = 8 + 4 + 4 + 8 + 8 + 4;  // 36
constexpr std::size_t kHeaderCrcBytes = 4;

bool fail(std::string* error, const std::string& path,
          const std::string& reason) {
  if (error) *error = path + ": " + reason;
  return false;
}

// Little-endian scalar I/O via memcpy; the format is defined little-endian
// and every supported host is (the binary trace format and the journal
// already assume the same).
template <typename T>
T load_le(const unsigned char* p) {
  T v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

template <typename T>
void store_le(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

}  // namespace

std::string trace_store_filename(const std::string& trace_key) {
  std::string name = trace_key;
  for (char& c : name)
    if (c == '/') c = '_';
  return name + kTraceStoreExt;
}

bool write_trace_file(const std::string& path,
                      std::span<const std::uint64_t> packed_ops,
                      std::uint64_t instructions,
                      const std::string& trace_key,
                      const std::map<std::string, std::string>& meta,
                      std::string* error) {
  if (trace_key.empty()) return fail(error, path, "empty trace_key");

  // Metadata block: sorted "key = value" lines (std::map order), the
  // mandatory trace_key among them, padded with newlines to 8-align the
  // body.
  std::map<std::string, std::string> kv = meta;
  kv["trace_key"] = trace_key;
  std::string meta_block;
  for (const auto& [k, v] : kv) {
    if (k.empty() || k.find_first_of("=\n") != std::string::npos ||
        v.find('\n') != std::string::npos)
      return fail(error, path, "metadata keys/values must be newline-free "
                               "and keys '='-free: '" + k + "'");
    meta_block += k + " = " + v + "\n";
  }
  while ((kFixedBytes + meta_block.size() + kHeaderCrcBytes) % 8 != 0)
    meta_block += '\n';
  if (meta_block.size() > UINT32_MAX)
    return fail(error, path, "metadata too large");

  const auto body =
      std::string_view(reinterpret_cast<const char*>(packed_ops.data()),
                       packed_ops.size() * sizeof(std::uint64_t));
  std::string header;
  header.reserve(kFixedBytes + meta_block.size() + kHeaderCrcBytes);
  header.append(kMagic, sizeof kMagic);
  store_le<std::uint32_t>(header, kTraceStoreVersion);
  store_le<std::uint32_t>(header, static_cast<std::uint32_t>(meta_block.size()));
  store_le<std::uint64_t>(header, packed_ops.size());
  store_le<std::uint64_t>(header, instructions);
  store_le<std::uint32_t>(header, common::crc32c(body));
  header += meta_block;
  store_le<std::uint32_t>(header, common::crc32c(header));

  // Atomic publish: a reader never sees a half-written store file, and a
  // crashed writer leaves only a .tmp to sweep up.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return fail(error, path, "cannot create " + tmp);
  bool ok = std::fwrite(header.data(), 1, header.size(), f) == header.size();
  ok = ok && (body.empty() ||
              std::fwrite(body.data(), 1, body.size(), f) == body.size());
  ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail(error, path, "write failed");
  }
  return true;
}

bool write_trace_file(const std::string& path, const MaterializedTrace& trace,
                      const std::string& trace_key,
                      const std::map<std::string, std::string>& meta,
                      std::string* error) {
  return write_trace_file(path, trace.packed(), trace.instructions(),
                          trace_key, meta, error);
}

std::shared_ptr<const MappedTraceFile> MappedTraceFile::open(
    const std::string& path, std::string* error) {
  const auto reject = [&](const std::string& reason) {
    fail(error, path, reason);
    return std::shared_ptr<const MappedTraceFile>();
  };

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return reject("cannot open");
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return reject("cannot stat");
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return reject("empty file");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (map == MAP_FAILED) return reject("mmap failed");

  // From here on every exit must unmap; hand the mapping to the object
  // first and validate through it.
  auto file = std::shared_ptr<MappedTraceFile>(new MappedTraceFile());
  file->path_ = path;
  file->map_ = map;
  file->map_bytes_ = size;
  const auto* bytes = static_cast<const unsigned char*>(map);

  // Validation ladder: each rung has a distinct error so the corruption
  // battery can pin them one by one. Order matters -- nothing is trusted
  // before the check that covers it (sizes before reads, header CRC
  // before the fields it protects are *used*, body size before body CRC).
  if (size >= sizeof kMagic &&
      std::memcmp(bytes, kMagic, sizeof kMagic) != 0)
    return reject("bad magic");
  if (size < kFixedBytes + kHeaderCrcBytes) return reject("truncated header");
  const auto version = load_le<std::uint32_t>(bytes + 8);
  if (version != kTraceStoreVersion)
    return reject("unsupported version " + std::to_string(version));
  const auto meta_bytes = load_le<std::uint32_t>(bytes + 12);
  const std::uint64_t header_bytes =
      std::uint64_t{kFixedBytes} + meta_bytes + kHeaderCrcBytes;
  if (header_bytes > size) return reject("truncated header");
  const auto header_crc =
      load_le<std::uint32_t>(bytes + kFixedBytes + meta_bytes);
  const auto computed_header_crc = common::crc32c(
      {reinterpret_cast<const char*>(bytes), kFixedBytes + meta_bytes});
  if (header_crc != computed_header_crc) return reject("header CRC mismatch");
  if (header_bytes % 8 != 0) return reject("misaligned body");

  // The header is now trustworthy; decode it.
  auto& info = file->info_;
  info.version = version;
  info.op_count = load_le<std::uint64_t>(bytes + 16);
  info.instructions = load_le<std::uint64_t>(bytes + 24);
  const std::string_view meta{reinterpret_cast<const char*>(bytes) +
                                  kFixedBytes,
                              meta_bytes};
  std::size_t pos = 0;
  while (pos < meta.size()) {
    auto eol = meta.find('\n', pos);
    if (eol == std::string_view::npos) eol = meta.size();
    const std::string line{meta.substr(pos, eol - pos)};
    pos = eol + 1;
    if (trimmed(line).empty()) continue;  // alignment padding
    const auto eq = line.find('=');
    if (eq == std::string::npos) return reject("malformed metadata");
    const auto key = trimmed(line.substr(0, eq));
    if (key.empty()) return reject("malformed metadata");
    info.meta[key] = trimmed(line.substr(eq + 1));
  }
  const auto tk = info.meta.find("trace_key");
  if (tk == info.meta.end() || tk->second.empty())
    return reject("missing trace_key");
  info.trace_key = tk->second;

  // Body extent: the file must hold exactly header + op_count ops.
  if (info.op_count > (UINT64_MAX - header_bytes) / sizeof(std::uint64_t) ||
      header_bytes + info.op_count * sizeof(std::uint64_t) > size)
    return reject("truncated body");
  if (header_bytes + info.op_count * sizeof(std::uint64_t) < size)
    return reject("op count/file size mismatch");
  file->body_ = reinterpret_cast<const std::uint64_t*>(bytes + header_bytes);

  const auto body_crc = load_le<std::uint32_t>(bytes + 32);
  const auto computed_body_crc = common::crc32c(
      {reinterpret_cast<const char*>(file->body_),
       info.op_count * sizeof(std::uint64_t)});
  if (body_crc != computed_body_crc) return reject("body CRC mismatch");

  return file;
}

MappedTraceFile::~MappedTraceFile() {
  if (map_) ::munmap(map_, map_bytes_);
}

MaterializedTrace MappedTraceFile::borrow(
    std::shared_ptr<const MappedTraceFile> self) const {
  return MaterializedTrace::borrow(body(), info_.instructions,
                                   std::move(self));
}

bool FileTraceSource::next(MemOp& op) {
  return next_batch({&op, 1}) == 1;
}

std::size_t FileTraceSource::next_batch(std::span<MemOp> out) {
  const auto body = file_->body();
  if (pos_ >= body.size()) return 0;
  const std::size_t n = std::min(out.size(), body.size() - pos_);
  const std::uint64_t* src = body.data() + pos_;
  for (std::size_t i = 0; i < n; ++i)
    out[i] = MaterializedTrace::unpack(src[i]);
  pos_ += n;
  return n;
}

}  // namespace reap::trace

#include "reap/trace/synth.hpp"

#include "reap/common/assert.hpp"

namespace reap::trace {

namespace {
// Stateless 64-bit mix (splitmix64 finalizer); used for address scrambling.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

SequentialStream::SequentialStream(std::uint64_t base, std::uint64_t size_bytes,
                                   std::uint64_t stride_bytes)
    : base_(base), size_(size_bytes), stride_(stride_bytes) {
  REAP_EXPECTS(size_bytes > 0);
  REAP_EXPECTS(stride_bytes > 0 && stride_bytes <= size_bytes);
}

std::uint64_t SequentialStream::next(common::Rng&) {
  const std::uint64_t addr = base_ + cursor_;
  cursor_ += stride_;
  if (cursor_ >= size_) cursor_ = 0;
  return addr;
}

UniformRandom::UniformRandom(std::uint64_t base, std::uint64_t size_bytes,
                             std::uint64_t granule)
    : base_(base), granules_(size_bytes / granule), granule_(granule) {
  REAP_EXPECTS(granule > 0);
  REAP_EXPECTS(granules_ > 0);
}

std::uint64_t UniformRandom::next(common::Rng& rng) {
  return base_ + rng.below(granules_) * granule_;
}

ZipfHotSet::ZipfHotSet(std::uint64_t base, std::uint64_t size_bytes,
                       double zipf_s, bool scramble, std::uint64_t block_bytes)
    : base_(base),
      blocks_(size_bytes / block_bytes),
      block_bytes_(block_bytes),
      offset_granules_(block_bytes / 8),
      scramble_(scramble),
      zipf_(size_bytes / block_bytes, zipf_s) {
  REAP_EXPECTS(blocks_ > 0);
}

std::uint64_t ZipfHotSet::map_rank(std::uint64_t rank) const {
  if (!scramble_) return rank;
  // Cheap stateless permutation: mix and fold into range. Not bijective for
  // non-power-of-two block counts, but collision harm is only a slight
  // popularity blend, acceptable for a locality model.
  return mix64(rank * 0x9e3779b97f4a7c15ULL + 0x51ULL) % blocks_;
}

std::uint64_t ZipfHotSet::next(common::Rng& rng) {
  const std::uint64_t rank = zipf_(rng);
  const std::uint64_t block = map_rank(rank);
  // Vary the offset within the block so loads look realistic.
  const std::uint64_t offset = rng.below(offset_granules_) * 8;
  return base_ + block * block_bytes_ + offset;
}

PointerChase::PointerChase(std::uint64_t base, std::uint64_t size_bytes,
                           std::uint64_t granule)
    : base_(base), granules_(size_bytes / granule), granule_(granule) {
  REAP_EXPECTS(granules_ > 0);
}

std::uint64_t PointerChase::next(common::Rng&) {
  state_ = mix64(state_ + 0x632be59bd9b4e019ULL);
  return base_ + (state_ % granules_) * granule_;
}

SetHammer::SetHammer(std::uint64_t base, std::uint64_t set_period,
                     std::uint64_t hot_blocks, std::uint64_t resident_blocks,
                     double resident_prob)
    : base_(base),
      period_(set_period),
      hot_blocks_(hot_blocks),
      resident_blocks_(resident_blocks),
      resident_prob_(resident_prob) {
  REAP_EXPECTS(set_period >= 64);
  REAP_EXPECTS(hot_blocks >= 1);
  REAP_EXPECTS(resident_prob >= 0.0 && resident_prob < 1.0);
}

std::uint64_t SetHammer::next(common::Rng& rng) {
  if (resident_blocks_ > 0 && rng.chance(resident_prob_)) {
    const std::uint64_t addr =
        base_ + (hot_blocks_ + resident_cursor_) * period_;
    resident_cursor_ = (resident_cursor_ + 1) % resident_blocks_;
    return addr;
  }
  const std::uint64_t addr = base_ + hot_cursor_ * period_;
  hot_cursor_ = (hot_cursor_ + 1) % hot_blocks_;
  return addr;
}

LoopNest::LoopNest(std::uint64_t base, std::uint64_t size_bytes,
                   std::uint64_t tile_bytes, std::uint64_t inner_repeats,
                   std::uint64_t stride_bytes)
    : base_(base),
      size_(size_bytes),
      tile_(tile_bytes),
      repeats_(inner_repeats),
      stride_(stride_bytes) {
  REAP_EXPECTS(tile_bytes > 0 && tile_bytes <= size_bytes);
  REAP_EXPECTS(inner_repeats >= 1);
  REAP_EXPECTS(stride_bytes > 0 && stride_bytes <= tile_bytes);
}

std::uint64_t LoopNest::next(common::Rng&) {
  const std::uint64_t addr = base_ + tile_base_ + cursor_;
  cursor_ += stride_;
  if (cursor_ >= tile_) {
    cursor_ = 0;
    if (++rep_ >= repeats_) {
      rep_ = 0;
      tile_base_ += tile_;
      if (tile_base_ + tile_ > size_) tile_base_ = 0;
    }
  }
  return addr;
}

void LoopNest::reset() {
  tile_base_ = cursor_ = rep_ = 0;
}

}  // namespace reap::trace

#include "reap/trace/replay.hpp"

#include <algorithm>

#include "reap/common/assert.hpp"

namespace reap::trace {

namespace {
// Matches sim::TraceCpu::kBatchOps (not included here: trace must stay
// below sim in the layer stack). The value only affects materialization
// chunking, never the stream: the producer emits the same op sequence for
// any span size. Pinned by test_replay's chunk-size-invariance test.
constexpr std::size_t kChunkOps = 4096;
}  // namespace

MaterializedTrace MaterializedTrace::materialize(TraceSource& source,
                                                 std::uint64_t instructions) {
  MaterializedTrace t;
  t.instructions_ = instructions;
  // +1: see the header comment — the consuming TraceCpu reads one fetch
  // past its budget.
  const std::uint64_t want_fetches = instructions + 1;
  t.packed_.reserve(static_cast<std::size_t>(
      want_fetches + (want_fetches / 2) + kChunkOps));

  MemOp buf[kChunkOps];
  std::uint64_t fetches = 0;
  while (fetches < want_fetches) {
    const std::size_t n = source.next_batch({buf, kChunkOps});
    if (n == 0) break;  // finite source ended early; replay ends there too
    for (std::size_t i = 0; i < n; ++i) {
      REAP_EXPECTS(buf[i].addr < (std::uint64_t{1} << 62));
      fetches += buf[i].type == OpType::inst_fetch;
      t.packed_.push_back(pack(buf[i]));
    }
  }
  t.packed_.shrink_to_fit();
  return t;
}

MaterializedTrace MaterializedTrace::borrow(
    std::span<const std::uint64_t> packed, std::uint64_t instructions,
    std::shared_ptr<const void> backing) {
  MaterializedTrace t;
  t.ext_ = packed.data();
  t.ext_size_ = packed.size();
  t.backing_ = std::move(backing);
  t.instructions_ = instructions;
  return t;
}

std::size_t MaterializedTrace::read(std::size_t begin,
                                    std::span<MemOp> out) const {
  const auto ops = packed();
  if (begin >= ops.size()) return 0;
  const std::size_t n = std::min(out.size(), ops.size() - begin);
  const std::uint64_t* src = ops.data() + begin;
  for (std::size_t i = 0; i < n; ++i) out[i] = unpack(src[i]);
  return n;
}

bool ReplayTraceSource::next(MemOp& op) {
  return next_batch({&op, 1}) == 1;
}

std::size_t ReplayTraceSource::next_batch(std::span<MemOp> out) {
  const std::size_t n = trace_->read(pos_, out);
  pos_ += n;
  return n;
}

std::size_t estimate_trace_bytes(const WorkloadProfile& profile,
                                 std::uint64_t instructions) {
  const double ops_per_inst =
      1.0 + profile.loads_per_inst + profile.stores_per_inst;
  const double ops = static_cast<double>(instructions + 1) * ops_per_inst;
  return static_cast<std::size_t>(ops) * sizeof(std::uint64_t) +
         kChunkOps * sizeof(std::uint64_t);
}

}  // namespace reap::trace

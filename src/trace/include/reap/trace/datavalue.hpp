// Data-value model: how many '1' bits a cache line holds.
//
// Read disturbance only threatens cells storing '1' (unidirectional), so a
// line's failure probability scales with its popcount n (Eq. 2). Traces do
// not carry store values, so the model assigns each line address a
// deterministic ones-count drawn from a configurable distribution; the same
// address always maps to the same count for reproducibility. It can also
// materialize a concrete payload with that popcount for the Monte Carlo
// engine, which runs real codecs on real bits.
#pragma once

#include <cstdint>

#include "reap/common/bitvec.hpp"
#include "reap/common/memo.hpp"

namespace reap::trace {

struct OnesDensitySpec {
  double mean_density = 0.35;   // fraction of '1' bits; SPEC data skews zero-heavy
  double stddev_density = 0.12; // cross-line spread
};

class DataValueModel {
 public:
  DataValueModel(OnesDensitySpec spec, std::uint64_t line_bits = 512,
                 std::uint64_t seed = 0xD5EED);

  std::uint64_t line_bits() const { return line_bits_; }

  // Deterministic ones-count for the line containing `line_addr`
  // (block-aligned or not; the low 6 bits are ignored for 64B lines).
  // Sits on the simulator's L2 fill path, so a direct-mapped memo caches
  // the count per block; the draw is a pure function of the address, so
  // memoization (and collisions, which just recompute) cannot change any
  // returned value. Not thread-safe: use one model per experiment.
  std::uint32_t ones_for(std::uint64_t line_addr) const;

  // Software-prefetch the memo slot ones_for(line_addr) would probe; the
  // vectorized drive loop issues this a few ops ahead of the access. Pure
  // latency hint, no semantic effect.
  void prefetch(std::uint64_t line_addr) const {
    memo_.prefetch(line_addr >> 6);
  }

  // A concrete payload whose popcount equals ones_for(line_addr); bit
  // positions are deterministic in the address too.
  common::BitVec payload_for(std::uint64_t line_addr) const;

 private:
  std::uint32_t compute_ones(std::uint64_t block) const;

  OnesDensitySpec spec_;
  std::uint64_t line_bits_;
  std::uint64_t seed_;
  // Per-block memo (bounded at 768KB — see memo.hpp for why it must stay
  // cache-resident rather than grow with the footprint).
  mutable common::DirectMappedMemo<std::uint32_t, 1 << 16> memo_;
};

}  // namespace reap::trace

// Synthetic address-pattern primitives.
//
// Workload profiles (spec2006.hpp) compose these into mixtures. Each
// primitive owns a region of the address space and yields successive data
// addresses within it. The primitives are chosen to span the locality
// regimes that drive the paper's concealed-read behaviour:
//   - streams: no reuse, lines evicted quickly (small accumulation)
//   - zipf hot sets: long-resident lines in frequently-accessed sets
//     (the 1e4..1e5 concealed-read tails of Fig. 3)
//   - pointer chases: large-footprint low-locality walks (mcf-like)
//   - loop nests: periodic re-sweeps (calculix/dealII-like)
#pragma once

#include <cstdint>
#include <memory>

#include "reap/common/rng.hpp"

namespace reap::trace {

class AddressPattern {
 public:
  virtual ~AddressPattern() = default;
  virtual std::uint64_t next(common::Rng& rng) = 0;
  virtual void reset() = 0;
};

// Sequential sweep with fixed stride, wrapping at the region end.
class SequentialStream final : public AddressPattern {
 public:
  SequentialStream(std::uint64_t base, std::uint64_t size_bytes,
                   std::uint64_t stride_bytes);
  std::uint64_t next(common::Rng& rng) override;
  void reset() override { cursor_ = 0; }

 private:
  std::uint64_t base_, size_, stride_;
  std::uint64_t cursor_ = 0;
};

// Uniform random accesses over the region at `granule` alignment.
class UniformRandom final : public AddressPattern {
 public:
  UniformRandom(std::uint64_t base, std::uint64_t size_bytes,
                std::uint64_t granule = 8);
  std::uint64_t next(common::Rng& rng) override;
  void reset() override {}

 private:
  std::uint64_t base_, granules_, granule_;
};

// Zipf-popularity accesses over the region's cache blocks. `scramble`
// permutes rank->block so hot blocks spread over cache sets; without it the
// hottest blocks are contiguous and concentrate in a few sets, which is the
// behaviour that maximizes read-disturbance accumulation in sibling lines.
class ZipfHotSet final : public AddressPattern {
 public:
  ZipfHotSet(std::uint64_t base, std::uint64_t size_bytes, double zipf_s,
             bool scramble, std::uint64_t block_bytes = 64);
  std::uint64_t next(common::Rng& rng) override;
  void reset() override {}

 private:
  std::uint64_t map_rank(std::uint64_t rank) const;

  std::uint64_t base_, blocks_, block_bytes_;
  std::uint64_t offset_granules_;  // block_bytes / 8, hoisted off the draw
  bool scramble_;
  common::ZipfSampler zipf_;
};

// Pseudo-random pointer chase: the next address is a hash of the current
// one, confined to the region. Models dependent-load workloads (mcf, astar).
class PointerChase final : public AddressPattern {
 public:
  PointerChase(std::uint64_t base, std::uint64_t size_bytes,
               std::uint64_t granule = 64);
  std::uint64_t next(common::Rng& rng) override;
  void reset() override { state_ = 0x1234; }

 private:
  std::uint64_t base_, granules_, granule_;
  std::uint64_t state_ = 0x1234;
};

// Set hammer: the construction behind the paper's Fig. 3 tails.
//
// `hot_blocks` lines spaced exactly one cache-set period apart are swept
// continuously: with hot_blocks above the L1 associativity they thrash L1
// and stream read hits into a single L2 set. `resident_blocks` further
// lines in the SAME set are touched only with probability `resident_prob`
// per access: they stay L2-resident (the set has spare ways) while the
// hammer's concealed reads accumulate on them, so each rare touch is a
// checked read with an enormous N -- the rare-but-dominant failure events
// of Fig. 3.
class SetHammer final : public AddressPattern {
 public:
  SetHammer(std::uint64_t base, std::uint64_t set_period,
            std::uint64_t hot_blocks, std::uint64_t resident_blocks,
            double resident_prob);
  std::uint64_t next(common::Rng& rng) override;
  void reset() override { hot_cursor_ = resident_cursor_ = 0; }

 private:
  std::uint64_t base_, period_, hot_blocks_, resident_blocks_;
  double resident_prob_;
  std::uint64_t hot_cursor_ = 0, resident_cursor_ = 0;
};

// Blocked loop nest: sweeps a tile sequentially `inner_repeats` times, then
// advances to the next tile; wraps over the region.
class LoopNest final : public AddressPattern {
 public:
  LoopNest(std::uint64_t base, std::uint64_t size_bytes,
           std::uint64_t tile_bytes, std::uint64_t inner_repeats,
           std::uint64_t stride_bytes = 8);
  std::uint64_t next(common::Rng& rng) override;
  void reset() override;

 private:
  std::uint64_t base_, size_, tile_, repeats_, stride_;
  std::uint64_t tile_base_ = 0, cursor_ = 0, rep_ = 0;
};

}  // namespace reap::trace

// SPEC CPU2006-named workload profiles.
//
// SPEC CPU2006 is proprietary, so the evaluation runs these synthetic
// stand-ins instead (DESIGN.md, "Substitutions"). Each profile's mixture is
// chosen from the benchmark's published memory behaviour -- footprint,
// streaming vs. pointer-chasing character, read/write balance -- so that the
// L2-level observables the paper depends on (reuse structure, concealed-read
// tails, read/write energy mix) land in the right qualitative regime:
//
//   mcf            huge-footprint pointer chase, L2 thrash   -> smallest gain
//   h264ref/namd/  hot-set reuse with set-hammering strides  -> 1e4+ tails,
//   dealII/calculix                                              >1000x gain
//   lbm/libquantum/bwaves  pure streams, little L2 reuse     -> small gain
//   cactusADM      read-dominated L2 traffic                 -> max energy ovh
//   xalancbmk      store/writeback-heavy L2 traffic          -> min energy ovh
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "reap/trace/workload.hpp"

namespace reap::trace {

// All bundled profile names, in the order benches report them.
std::vector<std::string> spec2006_names();

// Profile by name; nullopt if unknown.
std::optional<WorkloadProfile> spec2006_profile(const std::string& name);

// All bundled profiles.
std::vector<WorkloadProfile> spec2006_all();

// The four workloads Fig. 3 plots.
std::vector<std::string> fig3_names();

}  // namespace reap::trace

// Workload profiles: parameterized synthetic programs.
//
// A profile describes instruction mix (loads/stores per instruction), code
// footprint and branchiness, a weighted mixture of data address patterns,
// and a data-value (ones-density) model. WorkloadTraceSource turns a
// profile into a deterministic operation stream.
//
// This is the SPEC CPU2006 substitution (see DESIGN.md): profiles are
// parameterized directly on the observables that drive the paper's results
// -- L2 reuse distance structure, set concentration, read/write mix -- and
// spec2006.hpp instantiates one profile per benchmark name with parameters
// chosen to reproduce each benchmark's qualitative behaviour.
//
// The pattern mixture is stored as a std::variant over the sealed set of
// synth.hpp primitives, so per-operation generation dispatches through a
// jump table into inlinable concrete code instead of a virtual call; the
// batched next_batch override amortizes the TraceSource dispatch itself.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "reap/common/rng.hpp"
#include "reap/trace/datavalue.hpp"
#include "reap/trace/record.hpp"
#include "reap/trace/synth.hpp"

namespace reap::trace {

struct PatternSpec {
  enum class Kind {
    stream,   // sequential sweep (stride_bytes)
    uniform,  // uniform random over region
    zipf,     // zipf popularity over blocks (zipf_s, zipf_scramble)
    chase,    // pointer chase
    loop,     // blocked loop nest (tile_bytes, inner_repeats)
    hammer,   // set hammer: stream with stride = one cache-set period, so a
              // handful of blocks in the SAME L2 set are hit continuously;
              // sized to thrash L1 but fit in the L2 set (see spec2006.cpp)
  };

  Kind kind = Kind::uniform;
  double weight = 1.0;              // mixture weight among data accesses
  std::uint64_t region_bytes = 1 << 20;
  std::uint64_t stride_bytes = 64;  // stream
  double zipf_s = 0.9;              // zipf
  bool zipf_scramble = true;        // zipf
  std::uint64_t tile_bytes = 64 * 1024;  // loop
  std::uint64_t inner_repeats = 4;       // loop
  // hammer (see synth.hpp SetHammer): hot sweep size, rarely-touched
  // resident lines in the same set, their touch probability, and the byte
  // distance between same-set lines (L2 sets x block size).
  std::uint64_t hammer_blocks = 5;
  std::uint64_t hammer_resident_blocks = 2;
  double hammer_resident_prob = 0.0008;
  std::uint64_t hammer_set_period = 128 * 1024;
};

struct WorkloadProfile {
  std::string name = "custom";
  double loads_per_inst = 0.25;
  double stores_per_inst = 0.10;
  std::uint64_t code_bytes = 128 * 1024;
  double jump_prob = 0.02;  // chance an instruction redirects fetch randomly
  std::vector<PatternSpec> patterns;
  OnesDensitySpec values;
  std::uint64_t seed = 0x5EED;
};

class WorkloadTraceSource final : public TraceSource {
 public:
  explicit WorkloadTraceSource(WorkloadProfile profile);

  const WorkloadProfile& profile() const { return profile_; }

  bool next(MemOp& op) override;
  std::size_t next_batch(std::span<MemOp> out) override;
  void reset() override;

 private:
  // The sealed pattern set; value semantics so generation is one visit
  // (jump table) into concrete, inlinable code.
  using PatternVariant = std::variant<SequentialStream, UniformRandom,
                                      ZipfHotSet, PointerChase, SetHammer,
                                      LoopNest>;

  void build_patterns();

  // Generates one whole instruction (fetch + 0..2 data ops) into dst;
  // returns the op count. The single producer both next() and next_batch()
  // drain, so the two entry points emit byte-identical sequences.
  unsigned gen_instruction(MemOp* dst);

  std::uint64_t pattern_next(std::size_t index);
  std::size_t pick_pattern();

  WorkloadProfile profile_;
  common::Rng rng_;
  std::vector<PatternVariant> patterns_;
  std::vector<double> weights_;
  double total_weight_ = 0.0;
  std::uint64_t pc_;
  // Pending data ops for the current instruction (0..2 entries).
  MemOp pending_[2];
  unsigned pending_count_ = 0;
  unsigned pending_pos_ = 0;
  static constexpr std::uint64_t kCodeBase = 0x0040'0000;
  static constexpr std::uint64_t kHeapBase = 0x1000'0000;
};

}  // namespace reap::trace

// The .reaptrace on-disk trace store: a durable home for the
// MaterializedTrace 8 B/op arena, so "new workload" means "drop a file in
// a directory" instead of "write C++" and a fleet of campaign workers can
// mmap one materialized trace read-only instead of regenerating it
// per process.
//
// Format (little-endian, version 1):
//
//   [0,  8)    magic "REAPTRC\0"
//   [8, 12)    u32 version (= 1)
//   [12, 16)   u32 meta_bytes (M)
//   [16, 24)   u64 op_count (N)
//   [24, 32)   u64 instructions the trace covers (a replay budget of up
//              to this many instructions never ends early; see
//              MaterializedTrace::materialize on the +1-fetch rule)
//   [32, 36)   u32 CRC32C of the body
//   [36, 36+M) metadata: spec-style "key = value\n" lines; `trace_key`
//              is mandatory. Padded with trailing newlines so the body
//              offset is 8-byte aligned.
//   [36+M, 40+M) u32 CRC32C of the header (bytes [0, 36+M))
//   [40+M, 40+M+8N) body: N packed ops, (addr << 2) | type, byte-for-byte
//              the MaterializedTrace arena
//
// The file size must equal the header + body exactly. Every field that
// sizes or locates anything is covered by the header CRC and the body by
// its own CRC, so any single damaged byte anywhere in the file is caught
// at open (pinned by the corruption battery in
// tests/trace/test_trace_store.cpp). Readers reject each failure mode
// with a distinct error: "empty file", "truncated header", "bad magic",
// "unsupported version", "header CRC mismatch", "misaligned body",
// "malformed metadata", "missing trace_key", "truncated body",
// "op count/file size mismatch", "body CRC mismatch".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "reap/trace/record.hpp"
#include "reap/trace/replay.hpp"

namespace reap::trace {

inline constexpr char kTraceStoreExt[] = ".reaptrace";
inline constexpr std::uint32_t kTraceStoreVersion = 1;

// Parsed header of a store file.
struct TraceFileInfo {
  std::uint32_t version = 0;
  std::uint64_t op_count = 0;
  std::uint64_t instructions = 0;
  std::string trace_key;
  // Every metadata line, trace_key included.
  std::map<std::string, std::string> meta;
};

// The file name a trace_key maps to inside a store directory: '/' (the
// key's axis separator) becomes '_', plus the .reaptrace extension --
// "mcf/rr-/s0" -> "mcf_rr-_s0.reaptrace". The mapping need not be
// injective in theory; readers verify the trace_key recorded *inside* the
// file against the one they asked for, so a collision is a reported
// error, never a silently wrong trace.
std::string trace_store_filename(const std::string& trace_key);

// Serializes a packed-op arena to `path` (written atomically: a temp file
// in the same directory, fsynced, then renamed). `meta` rides along as
// spec-style lines; `trace_key` must be non-empty. Returns false and sets
// `error` on I/O failure or an op count whose body the format cannot
// describe.
bool write_trace_file(const std::string& path,
                      std::span<const std::uint64_t> packed_ops,
                      std::uint64_t instructions,
                      const std::string& trace_key,
                      const std::map<std::string, std::string>& meta = {},
                      std::string* error = nullptr);

// Convenience: write a materialized trace (its packed() arena verbatim).
bool write_trace_file(const std::string& path, const MaterializedTrace& trace,
                      const std::string& trace_key,
                      const std::map<std::string, std::string>& meta = {},
                      std::string* error = nullptr);

// A read-only mmap of one store file, fully validated at open: header
// checks in the order listed in the format comment above, then the body
// CRC over the whole mapping. Immutable and thread-safe after open; one
// mapping serves any number of concurrent FileTraceSources / borrowed
// MaterializedTraces (shared_ptr keeps it alive).
class MappedTraceFile {
 public:
  // Opens, maps, and verifies `path`. Returns null and sets `error`
  // ("<path>: <reason>") on any validation failure.
  static std::shared_ptr<const MappedTraceFile> open(
      const std::string& path, std::string* error = nullptr);

  ~MappedTraceFile();
  MappedTraceFile(const MappedTraceFile&) = delete;
  MappedTraceFile& operator=(const MappedTraceFile&) = delete;

  const TraceFileInfo& info() const { return info_; }
  const std::string& path() const { return path_; }

  // The packed-op body, 8-byte aligned inside the mapping.
  std::span<const std::uint64_t> body() const {
    return {body_, info_.op_count};
  }

  // The body wrapped as a zero-owned-byte MaterializedTrace; `self` must
  // be this object (it becomes the borrow's keep-alive).
  MaterializedTrace borrow(std::shared_ptr<const MappedTraceFile> self) const;

 private:
  MappedTraceFile() = default;

  std::string path_;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  const std::uint64_t* body_ = nullptr;
  TraceFileInfo info_;
};

// Replays a store file. Holds its mapping alive; next_batch is the same
// bounds-checked unpack loop as ReplayTraceSource, so the served stream
// is byte-identical to replaying the arena the file was written from
// (pinned by tests/trace/test_trace_store.cpp).
class FileTraceSource final : public TraceSource {
 public:
  explicit FileTraceSource(std::shared_ptr<const MappedTraceFile> file)
      : file_(std::move(file)) {}

  bool next(MemOp& op) override;
  std::size_t next_batch(std::span<MemOp> out) override;
  void reset() override { pos_ = 0; }

 private:
  std::shared_ptr<const MappedTraceFile> file_;
  std::size_t pos_ = 0;
};

}  // namespace reap::trace

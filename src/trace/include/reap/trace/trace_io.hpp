// Trace file formats: users can bring externally-captured traces (e.g. from
// a real gem5 run) instead of the synthetic generators.
//
// Text format, one op per line:   I|L|S <hex-or-dec address>
// Binary format: little-endian records of [u8 type][u64 addr], no header.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "reap/trace/record.hpp"

namespace reap::trace {

// In-memory trace; also the unit-test workhorse.
class VectorTraceSource final : public TraceSource {
 public:
  VectorTraceSource() = default;
  explicit VectorTraceSource(std::vector<MemOp> ops) : ops_(std::move(ops)) {}

  void push(MemOp op) { ops_.push_back(op); }
  std::size_t size() const { return ops_.size(); }

  bool next(MemOp& op) override;
  void reset() override { pos_ = 0; }

 private:
  std::vector<MemOp> ops_;
  std::size_t pos_ = 0;
};

// Reads the text format. next() returns false at both clean EOF and
// parse error, so a caller that stops there and never looks further
// cannot tell a complete trace from one truncated by a garbage tail:
// check error() after the stream ends (empty = clean EOF). Once an error
// is set it latches -- further next() calls return false without reading
// on -- until reset() rewinds and clears it.
class TextTraceReader final : public TraceSource {
 public:
  explicit TextTraceReader(std::string path);
  ~TextTraceReader() override;

  TextTraceReader(const TextTraceReader&) = delete;
  TextTraceReader& operator=(const TextTraceReader&) = delete;

  bool ok() const { return file_ != nullptr; }
  const std::string& error() const { return error_; }

  bool next(MemOp& op) override;
  void reset() override;

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::string error_;
};

// Writers return false on IO failure.
bool write_text_trace(const std::string& path, TraceSource& source,
                      std::uint64_t max_ops);
bool write_binary_trace(const std::string& path, TraceSource& source,
                        std::uint64_t max_ops);

class BinaryTraceReader final : public TraceSource {
 public:
  explicit BinaryTraceReader(std::string path);
  ~BinaryTraceReader() override;

  BinaryTraceReader(const BinaryTraceReader&) = delete;
  BinaryTraceReader& operator=(const BinaryTraceReader&) = delete;

  bool ok() const { return file_ != nullptr; }

  bool next(MemOp& op) override;
  void reset() override;

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

}  // namespace reap::trace

// Memory-operation records and the pull-based trace source interface.
//
// The simulator is trace-driven (the gem5 substitution, see DESIGN.md): a
// TraceSource yields instruction fetches and data accesses one at a time, so
// multi-million-operation workloads never need to be materialized in memory.
#pragma once

#include <cstdint>

namespace reap::trace {

enum class OpType : std::uint8_t {
  inst_fetch = 0,  // instruction boundary; addr = pc
  load = 1,
  store = 2,
};

struct MemOp {
  OpType type = OpType::inst_fetch;
  std::uint64_t addr = 0;
};

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  // Produces the next operation; returns false at end of trace.
  virtual bool next(MemOp& op) = 0;

  // Restarts the trace from the beginning (same sequence for the same
  // construction parameters/seed).
  virtual void reset() = 0;
};

}  // namespace reap::trace

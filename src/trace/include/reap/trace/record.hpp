// Memory-operation records and the pull-based trace source interface.
//
// The simulator is trace-driven (the gem5 substitution, see DESIGN.md): a
// TraceSource yields instruction fetches and data accesses, so
// multi-million-operation workloads never need to be materialized in
// memory. Consumers that care about throughput pull whole batches via
// next_batch — one virtual call per few thousand operations instead of one
// per operation.
#pragma once

#include <cstdint>
#include <span>

namespace reap::trace {

enum class OpType : std::uint8_t {
  inst_fetch = 0,  // instruction boundary; addr = pc
  load = 1,
  store = 2,
};

struct MemOp {
  OpType type = OpType::inst_fetch;
  std::uint64_t addr = 0;
};

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  // Produces the next operation; returns false at end of trace.
  virtual bool next(MemOp& op) = 0;

  // Fills `out` with up to out.size() operations, in the same sequence
  // next() would produce; returns the count filled. A return of 0 means
  // end of trace; a short (non-zero) batch does NOT imply the trace is
  // over. The default implementation loops over next(); generators
  // override it to amortize dispatch across the whole batch.
  virtual std::size_t next_batch(std::span<MemOp> out) {
    std::size_t n = 0;
    while (n < out.size() && next(out[n])) ++n;
    return n;
  }

  // Restarts the trace from the beginning (same sequence for the same
  // construction parameters/seed).
  virtual void reset() = 0;
};

}  // namespace reap::trace

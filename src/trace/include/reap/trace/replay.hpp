// Trace replay: materialize a generator's op stream once, replay it many
// times.
//
// RNG-driven generation is the dominant residual cost of the simulator hot
// path (see docs/performance.md): every instruction pays several
// data-dependent uniform draws whose branches the host cannot predict. But
// the points of one paired campaign comparison (policy / ecc / scrub axes)
// replay the byte-identical trace by construction — the seed rule excludes
// the design axes — so the stream can be generated once, stored compactly,
// and replayed from flat memory for every other point of the group.
//
// MaterializedTrace packs each MemOp into 8 bytes ((addr << 2) | type, half
// of sizeof(MemOp)); ReplayTraceSource is a TraceSource whose next_batch is
// a bounds-checked unpack loop — no RNG, no branches on draw results. The
// replayed stream is byte-identical to the producer's, op for op, so every
// simulator observable is unchanged (pinned by tests/trace/test_replay.cpp
// and the golden suite in tests/core/test_static_dispatch.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "reap/trace/record.hpp"
#include "reap/trace/workload.hpp"

namespace reap::trace {

class MaterializedTrace {
 public:
  MaterializedTrace() = default;

  // Drains `source` in TraceCpu-sized batches until the arena holds
  // `instructions` + 1 whole instruction fetches (or the source ends).
  // The +1 matters: a TraceCpu stops a budgeted run only after *reading*
  // the fetch that begins the next instruction, so a replay that ended
  // exactly at the budget would report a premature end of trace. Whole
  // batches are kept, so the arena covers every op a TraceCpu driving the
  // same budget would ever pull from the live generator.
  static MaterializedTrace materialize(TraceSource& source,
                                       std::uint64_t instructions);

  // Wraps an externally owned packed-op arena — the mmapped body of a
  // .reaptrace store file (trace_store.hpp) — without copying. `backing`
  // keeps the arena alive (the mapping is dropped with the last borrower);
  // bytes() is 0, so a byte-capped cache retains borrowed traces for free:
  // the pages are the kernel's to reclaim, not the process's to account.
  static MaterializedTrace borrow(std::span<const std::uint64_t> packed,
                                  std::uint64_t instructions,
                                  std::shared_ptr<const void> backing);

  // Ops stored (owned arena or borrowed view).
  std::size_t size() const {
    return packed_.empty() ? ext_size_ : packed_.size();
  }
  std::uint64_t instructions() const { return instructions_; }

  // Arena footprint, the number a byte-capped cache accounts. Includes the
  // vector's allocation only (0 for a borrowed arena); the object header
  // is noise.
  std::size_t bytes() const { return packed_.capacity() * sizeof(std::uint64_t); }

  // The packed 8 B/op words, whichever arena holds them — what a trace
  // store writer serializes.
  std::span<const std::uint64_t> packed() const {
    return packed_.empty() ? std::span<const std::uint64_t>{ext_, ext_size_}
                           : std::span<const std::uint64_t>{packed_};
  }

  // Decodes ops [begin, begin + out.size()) into `out`; returns the count
  // written (clamped at the end of the arena, 0 when begin is past it).
  std::size_t read(std::size_t begin, std::span<MemOp> out) const;

  // Packs one op. Addresses are confined to the low 62 bits (the synthetic
  // address spaces top out far below that; checked on materialization).
  static std::uint64_t pack(MemOp op) {
    return (op.addr << 2) | static_cast<std::uint64_t>(op.type);
  }
  static MemOp unpack(std::uint64_t p) {
    return {static_cast<OpType>(p & 3u), p >> 2};
  }

 private:
  // Exactly one arena is populated: `packed_` owns the materialized case;
  // `ext_`/`ext_size_` view the borrowed case with `backing_` pinning the
  // owner. Accessors branch on packed_.empty(), so the default copy/move
  // semantics stay correct (an owned copy re-owns, a borrowed copy shares).
  std::vector<std::uint64_t> packed_;
  const std::uint64_t* ext_ = nullptr;
  std::size_t ext_size_ = 0;
  std::shared_ptr<const void> backing_;
  std::uint64_t instructions_ = 0;
};

// Replays a MaterializedTrace. The trace is borrowed, not owned: one
// materialized arena serves any number of concurrent ReplayTraceSources
// (each holds only its own cursor), which is what lets a campaign share a
// trace across the policy axis.
class ReplayTraceSource final : public TraceSource {
 public:
  explicit ReplayTraceSource(const MaterializedTrace& trace)
      : trace_(&trace) {}

  bool next(MemOp& op) override;
  std::size_t next_batch(std::span<MemOp> out) override;
  void reset() override { pos_ = 0; }

 private:
  const MaterializedTrace* trace_;
  std::size_t pos_ = 0;
};

// Expected arena bytes for materializing `instructions` of `profile`:
// (instructions + 1) x (1 + loads/inst + stores/inst) ops x 8 bytes, plus
// one TraceCpu batch of slack for the whole-batch tail. An estimate (the
// op mix is stochastic), used for --dry-run reporting and cache-cap
// planning, not accounting — the cache accounts real bytes().
std::size_t estimate_trace_bytes(const WorkloadProfile& profile,
                                 std::uint64_t instructions);

}  // namespace reap::trace

#include "reap/trace/workload.hpp"

#include "reap/common/assert.hpp"

namespace reap::trace {

WorkloadTraceSource::WorkloadTraceSource(WorkloadProfile profile)
    : profile_(std::move(profile)), rng_(profile_.seed), pc_(kCodeBase) {
  REAP_EXPECTS(!profile_.patterns.empty());
  REAP_EXPECTS(profile_.loads_per_inst >= 0.0 &&
               profile_.loads_per_inst <= 1.0);
  REAP_EXPECTS(profile_.stores_per_inst >= 0.0 &&
               profile_.stores_per_inst <= 1.0);
  build_patterns();
}

void WorkloadTraceSource::build_patterns() {
  patterns_.clear();
  weights_.clear();
  std::uint64_t next_base = kHeapBase;
  std::size_t index = 0;
  for (const PatternSpec& s : profile_.patterns) {
    REAP_EXPECTS(s.weight > 0.0);
    REAP_EXPECTS(s.region_bytes >= 64);
    // Regions are disjoint and 1MB-aligned so patterns never alias; the
    // per-pattern set stagger keeps multiple hammers (whose 1MB-aligned
    // bases would otherwise all land on set 0) on distinct cache sets.
    const std::uint64_t base = next_base + index * 97 * 64;
    next_base += (s.region_bytes + (2 << 20)) & ~std::uint64_t{(1 << 20) - 1};
    ++index;
    switch (s.kind) {
      case PatternSpec::Kind::stream:
        patterns_.emplace_back(std::in_place_type<SequentialStream>, base,
                               s.region_bytes, s.stride_bytes);
        break;
      case PatternSpec::Kind::uniform:
        patterns_.emplace_back(std::in_place_type<UniformRandom>, base,
                               s.region_bytes);
        break;
      case PatternSpec::Kind::zipf:
        patterns_.emplace_back(std::in_place_type<ZipfHotSet>, base,
                               s.region_bytes, s.zipf_s, s.zipf_scramble);
        break;
      case PatternSpec::Kind::chase:
        patterns_.emplace_back(std::in_place_type<PointerChase>, base,
                               s.region_bytes);
        break;
      case PatternSpec::Kind::loop:
        patterns_.emplace_back(std::in_place_type<LoopNest>, base,
                               s.region_bytes, s.tile_bytes, s.inner_repeats);
        break;
      case PatternSpec::Kind::hammer:
        patterns_.emplace_back(std::in_place_type<SetHammer>, base,
                               s.hammer_set_period, s.hammer_blocks,
                               s.hammer_resident_blocks,
                               s.hammer_resident_prob);
        break;
    }
    weights_.push_back(s.weight);
  }
  total_weight_ = 0.0;
  for (const double w : weights_) total_weight_ += w;
}

std::uint64_t WorkloadTraceSource::pattern_next(std::size_t index) {
  // A switch over the sealed alternative set instead of std::visit: the
  // visit lowers to a function-pointer table the compiler cannot inline
  // through, and this is the per-data-op hot path.
  PatternVariant& v = patterns_[index];
  switch (v.index()) {
    case 0: return std::get<0>(v).next(rng_);
    case 1: return std::get<1>(v).next(rng_);
    case 2: return std::get<2>(v).next(rng_);
    case 3: return std::get<3>(v).next(rng_);
    case 4: return std::get<4>(v).next(rng_);
    default: return std::get<5>(v).next(rng_);
  }
}

// Same selection (and same single uniform draw) as Rng::weighted, with the
// per-call weight-vector validation and total hoisted to construction.
std::size_t WorkloadTraceSource::pick_pattern() {
  double x = rng_.uniform() * total_weight_;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    x -= weights_[i];
    if (x < 0.0) return i;
  }
  return weights_.size() - 1;  // numerical tail
}

unsigned WorkloadTraceSource::gen_instruction(MemOp* dst) {
  dst[0] = {OpType::inst_fetch, pc_};
  if (rng_.chance(profile_.jump_prob)) {
    pc_ = kCodeBase + rng_.below(profile_.code_bytes / 4) * 4;
  } else {
    pc_ += 4;
    if (pc_ >= kCodeBase + profile_.code_bytes) pc_ = kCodeBase;
  }
  unsigned count = 1;
  if (rng_.chance(profile_.loads_per_inst)) {
    dst[count++] = {OpType::load, pattern_next(pick_pattern())};
  }
  if (rng_.chance(profile_.stores_per_inst)) {
    dst[count++] = {OpType::store, pattern_next(pick_pattern())};
  }
  return count;
}

bool WorkloadTraceSource::next(MemOp& op) {
  if (pending_pos_ < pending_count_) {
    op = pending_[pending_pos_++];
    return true;
  }
  MemOp group[3];
  const unsigned count = gen_instruction(group);
  op = group[0];
  pending_count_ = count - 1;
  pending_pos_ = 0;
  for (unsigned i = 1; i < count; ++i) pending_[i - 1] = group[i];
  return true;
}

std::size_t WorkloadTraceSource::next_batch(std::span<MemOp> out) {
  std::size_t n = 0;
  // Drain data ops a prior per-op next() left behind so the sequence stays
  // continuous when callers mix the two pull styles.
  while (pending_pos_ < pending_count_ && n < out.size())
    out[n++] = pending_[pending_pos_++];
  // Whole instructions only: an instruction group is at most 3 ops, so stop
  // once fewer than 3 slots remain rather than splitting a group.
  while (n + 3 <= out.size()) n += gen_instruction(out.data() + n);
  if (n == 0 && !out.empty()) {
    // Span smaller than one instruction group: fall back to per-op pulls
    // (which buffer the group's tail) so 0 keeps meaning end-of-trace.
    while (n < out.size() && next(out[n])) ++n;
  }
  return n;
}

void WorkloadTraceSource::reset() {
  rng_.reseed(profile_.seed);
  pc_ = kCodeBase;
  pending_count_ = pending_pos_ = 0;
  for (auto& p : patterns_)
    std::visit([](auto& pattern) { pattern.reset(); }, p);
}

}  // namespace reap::trace

#include "reap/trace/workload.hpp"

#include "reap/common/assert.hpp"

namespace reap::trace {

WorkloadTraceSource::WorkloadTraceSource(WorkloadProfile profile)
    : profile_(std::move(profile)), rng_(profile_.seed), pc_(kCodeBase) {
  REAP_EXPECTS(!profile_.patterns.empty());
  REAP_EXPECTS(profile_.loads_per_inst >= 0.0 &&
               profile_.loads_per_inst <= 1.0);
  REAP_EXPECTS(profile_.stores_per_inst >= 0.0 &&
               profile_.stores_per_inst <= 1.0);
  build_patterns();
}

void WorkloadTraceSource::build_patterns() {
  patterns_.clear();
  weights_.clear();
  std::uint64_t next_base = kHeapBase;
  std::size_t index = 0;
  for (const PatternSpec& s : profile_.patterns) {
    REAP_EXPECTS(s.weight > 0.0);
    REAP_EXPECTS(s.region_bytes >= 64);
    // Regions are disjoint and 1MB-aligned so patterns never alias; the
    // per-pattern set stagger keeps multiple hammers (whose 1MB-aligned
    // bases would otherwise all land on set 0) on distinct cache sets.
    const std::uint64_t base = next_base + index * 97 * 64;
    next_base += (s.region_bytes + (2 << 20)) & ~std::uint64_t{(1 << 20) - 1};
    ++index;
    switch (s.kind) {
      case PatternSpec::Kind::stream:
        patterns_.push_back(std::make_unique<SequentialStream>(
            base, s.region_bytes, s.stride_bytes));
        break;
      case PatternSpec::Kind::uniform:
        patterns_.push_back(
            std::make_unique<UniformRandom>(base, s.region_bytes));
        break;
      case PatternSpec::Kind::zipf:
        patterns_.push_back(std::make_unique<ZipfHotSet>(
            base, s.region_bytes, s.zipf_s, s.zipf_scramble));
        break;
      case PatternSpec::Kind::chase:
        patterns_.push_back(
            std::make_unique<PointerChase>(base, s.region_bytes));
        break;
      case PatternSpec::Kind::loop:
        patterns_.push_back(std::make_unique<LoopNest>(
            base, s.region_bytes, s.tile_bytes, s.inner_repeats));
        break;
      case PatternSpec::Kind::hammer:
        patterns_.push_back(std::make_unique<SetHammer>(
            base, s.hammer_set_period, s.hammer_blocks,
            s.hammer_resident_blocks, s.hammer_resident_prob));
        break;
    }
    weights_.push_back(s.weight);
  }
}

bool WorkloadTraceSource::next(MemOp& op) {
  if (pending_pos_ < pending_count_) {
    op = pending_[pending_pos_++];
    return true;
  }
  // New instruction: fetch, then queue this instruction's data accesses.
  op = {OpType::inst_fetch, pc_};
  if (rng_.chance(profile_.jump_prob)) {
    pc_ = kCodeBase + rng_.below(profile_.code_bytes / 4) * 4;
  } else {
    pc_ += 4;
    if (pc_ >= kCodeBase + profile_.code_bytes) pc_ = kCodeBase;
  }
  pending_count_ = 0;
  pending_pos_ = 0;
  if (rng_.chance(profile_.loads_per_inst)) {
    const std::size_t p = rng_.weighted(weights_);
    pending_[pending_count_++] = {OpType::load, patterns_[p]->next(rng_)};
  }
  if (rng_.chance(profile_.stores_per_inst)) {
    const std::size_t p = rng_.weighted(weights_);
    pending_[pending_count_++] = {OpType::store, patterns_[p]->next(rng_)};
  }
  return true;
}

void WorkloadTraceSource::reset() {
  rng_.reseed(profile_.seed);
  pc_ = kCodeBase;
  pending_count_ = pending_pos_ = 0;
  for (auto& p : patterns_) p->reset();
}

}  // namespace reap::trace

#include "reap/trace/datavalue.hpp"

#include <algorithm>
#include <cmath>

#include "reap/common/assert.hpp"
#include "reap/common/rng.hpp"

namespace reap::trace {

DataValueModel::DataValueModel(OnesDensitySpec spec, std::uint64_t line_bits,
                               std::uint64_t seed)
    : spec_(spec), line_bits_(line_bits), seed_(seed) {
  REAP_EXPECTS(line_bits >= 8);
  REAP_EXPECTS(spec.mean_density > 0.0 && spec.mean_density < 1.0);
  REAP_EXPECTS(spec.stddev_density >= 0.0);
}

std::uint32_t DataValueModel::compute_ones(std::uint64_t block) const {
  common::Rng rng(seed_ ^ (block * 0x9e3779b97f4a7c15ULL));
  const double nbits = static_cast<double>(line_bits_);
  const double density =
      rng.normal(spec_.mean_density, spec_.stddev_density);
  const double clamped = std::clamp(density, 0.01, 0.99);
  const double ones = std::round(clamped * nbits);
  return static_cast<std::uint32_t>(
      std::clamp(ones, 1.0, nbits - 1.0));
}

std::uint32_t DataValueModel::ones_for(std::uint64_t line_addr) const {
  const std::uint64_t block = line_addr >> 6;
  if (const std::uint32_t* hit = memo_.find(block)) return *hit;
  const std::uint32_t ones = compute_ones(block);
  memo_.insert(block, ones);
  return ones;
}

common::BitVec DataValueModel::payload_for(std::uint64_t line_addr) const {
  const std::uint32_t target = ones_for(line_addr);
  const std::uint64_t block = line_addr >> 6;
  common::Rng rng(seed_ ^ ~(block * 0xbf58476d1ce4e5b9ULL));
  common::BitVec v(line_bits_);
  // Reservoir-style: set exactly `target` distinct positions.
  std::uint32_t placed = 0;
  while (placed < target) {
    const std::size_t pos = static_cast<std::size_t>(rng.below(line_bits_));
    if (!v.test(pos)) {
      v.set(pos);
      ++placed;
    }
  }
  REAP_ENSURES(v.count_ones() == target);
  return v;
}

}  // namespace reap::trace

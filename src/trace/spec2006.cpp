#include "reap/trace/spec2006.hpp"

namespace reap::trace {

namespace {

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

PatternSpec stream(double w, std::uint64_t region, std::uint64_t stride = 64) {
  PatternSpec p;
  p.kind = PatternSpec::Kind::stream;
  p.weight = w;
  p.region_bytes = region;
  p.stride_bytes = stride;
  return p;
}

PatternSpec uniform(double w, std::uint64_t region) {
  PatternSpec p;
  p.kind = PatternSpec::Kind::uniform;
  p.weight = w;
  p.region_bytes = region;
  return p;
}

PatternSpec zipf(double w, std::uint64_t region, double s,
                 bool scramble = true) {
  PatternSpec p;
  p.kind = PatternSpec::Kind::zipf;
  p.weight = w;
  p.region_bytes = region;
  p.zipf_s = s;
  p.zipf_scramble = scramble;
  return p;
}

PatternSpec chase(double w, std::uint64_t region) {
  PatternSpec p;
  p.kind = PatternSpec::Kind::chase;
  p.weight = w;
  p.region_bytes = region;
  return p;
}

PatternSpec loop(double w, std::uint64_t region, std::uint64_t tile,
                 std::uint64_t repeats) {
  PatternSpec p;
  p.kind = PatternSpec::Kind::loop;
  p.weight = w;
  p.region_bytes = region;
  p.tile_bytes = tile;
  p.inner_repeats = repeats;
  return p;
}

// Set hammer (synth.hpp SetHammer): `hot` lines spaced one L2-set period
// (sets*64B = 128KB for the Table I L2) apart thrash the 4-way L1 and
// stream read hits into a single L2 set; `resident` lines in the same set
// are touched with probability `touch` per hammer access, so they sit
// L2-resident collecting concealed reads and each rare touch is a checked
// read with a very large N -- the Fig. 3 tail events.
PatternSpec hammer(double w, double touch = 0.0008, std::uint64_t hot = 5,
                   std::uint64_t resident = 2) {
  PatternSpec p;
  p.kind = PatternSpec::Kind::hammer;
  p.weight = w;
  p.hammer_blocks = hot;
  p.hammer_resident_blocks = resident;
  p.hammer_resident_prob = touch;
  p.hammer_set_period = 128 * KB;
  p.region_bytes = (hot + resident) * p.hammer_set_period;
  return p;
}

WorkloadProfile make(const std::string& name, double loads, double stores,
                     std::uint64_t code_bytes, double jump_prob,
                     std::vector<PatternSpec> pats, double ones_mean,
                     double ones_sd = 0.10) {
  WorkloadProfile p;
  p.name = name;
  p.loads_per_inst = loads;
  p.stores_per_inst = stores;
  p.code_bytes = code_bytes;
  p.jump_prob = jump_prob;
  p.patterns = std::move(pats);
  p.values.mean_density = ones_mean;
  p.values.stddev_density = ones_sd;
  // Stable per-workload seed so every bench sees the same trace.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  p.seed = h;
  return p;
}

std::vector<WorkloadProfile> build_all() {
  std::vector<WorkloadProfile> v;

  // ---- SPEC CPU2006 integer ----
  v.push_back(make("perlbench", 0.28, 0.12, 512 * KB, 0.03,
                   {zipf(0.45, 256 * KB, 1.00), hammer(0.20, 0.004),
                    stream(0.20, 2 * MB), uniform(0.15, 1 * MB)},
                   0.34));
  v.push_back(make("bzip2", 0.26, 0.18, 128 * KB, 0.01,
                   {stream(0.50, 4 * MB), zipf(0.30, 512 * KB, 0.90),
                    uniform(0.20, 1 * MB)},
                   0.45));
  v.push_back(make("gcc", 0.25, 0.13, 1 * MB, 0.04,
                   {zipf(0.45, 1 * MB, 0.95), uniform(0.30, 2 * MB),
                    stream(0.25, 1 * MB)},
                   0.30));
  v.push_back(make("mcf", 0.35, 0.09, 64 * KB, 0.02,
                   {chase(0.65, 32 * MB), uniform(0.35, 16 * MB)},
                   0.28));
  v.push_back(make("gobmk", 0.24, 0.11, 512 * KB, 0.04,
                   {zipf(0.55, 512 * KB, 1.05), chase(0.25, 2 * MB),
                    uniform(0.20, 1 * MB)},
                   0.32));
  v.push_back(make("hmmer", 0.30, 0.14, 128 * KB, 0.01,
                   {loop(0.60, 512 * KB, 64 * KB, 6), stream(0.40, 2 * MB)},
                   0.38));
  v.push_back(make("sjeng", 0.22, 0.10, 256 * KB, 0.05,
                   {zipf(0.60, 256 * KB, 1.10), uniform(0.40, 4 * MB)},
                   0.33));
  v.push_back(make("libquantum", 0.27, 0.10, 32 * KB, 0.005,
                   {stream(0.75, 8 * MB), zipf(0.25, 128 * KB, 1.30)},
                   0.25));
  v.push_back(make("h264ref", 0.35, 0.10, 128 * KB, 0.02,
                   {hammer(0.42, 0.00025, 5, 3), zipf(0.38, 96 * KB, 1.35),
                    stream(0.20, 24 * KB)},
                   0.40));
  v.push_back(make("omnetpp", 0.26, 0.14, 512 * KB, 0.03,
                   {chase(0.45, 4 * MB), zipf(0.40, 512 * KB, 0.90),
                    uniform(0.15, 1 * MB)},
                   0.31));
  v.push_back(make("astar", 0.30, 0.10, 128 * KB, 0.02,
                   {chase(0.50, 8 * MB), zipf(0.50, 256 * KB, 1.00)},
                   0.29));
  // Writeback-heavy: stores dirty large regions, so L2 dynamic energy is
  // dominated by fills and writebacks and the decode premium is smallest
  // (the paper's 1.0% best case).
  v.push_back(make("xalancbmk", 0.24, 0.34, 1 * MB, 0.04,
                   {zipf(0.45, 1 * MB, 0.85), stream(0.55, 3 * MB)},
                   0.30));

  // ---- SPEC CPU2006 floating point ----
  v.push_back(make("bwaves", 0.32, 0.15, 64 * KB, 0.005,
                   {stream(0.72, 16 * MB), loop(0.28, 512 * KB, 64 * KB, 4)},
                   0.42));
  v.push_back(make("gamess", 0.28, 0.10, 256 * KB, 0.02,
                   {zipf(0.70, 128 * KB, 1.10), stream(0.30, 512 * KB)},
                   0.36));
  v.push_back(make("milc", 0.30, 0.16, 64 * KB, 0.01,
                   {stream(0.60, 8 * MB), uniform(0.25, 4 * MB),
                    zipf(0.15, 192 * KB, 1.00)},
                   0.41));
  v.push_back(make("zeusmp", 0.29, 0.14, 128 * KB, 0.01,
                   {stream(0.55, 8 * MB), loop(0.45, 768 * KB, 128 * KB, 4)},
                   0.39));
  v.push_back(make("gromacs", 0.27, 0.12, 256 * KB, 0.02,
                   {loop(0.55, 256 * KB, 32 * KB, 6),
                    zipf(0.45, 256 * KB, 1.00)},
                   0.37));
  // Resident stencil working set: almost all L2 traffic is read hits, so
  // the k-1 extra decodes are the largest relative energy adder (the
  // paper's 6.5% worst case).
  v.push_back(make("cactusADM", 0.40, 0.02, 128 * KB, 0.005,
                   {loop(0.45, 384 * KB, 64 * KB, 5),
                    zipf(0.35, 256 * KB, 1.10), stream(0.20, 192 * KB)},
                   0.43));
  v.push_back(make("namd", 0.33, 0.08, 128 * KB, 0.01,
                   {hammer(0.38, 0.00015, 5, 3), loop(0.27, 256 * KB, 16 * KB, 8),
                    zipf(0.35, 64 * KB, 1.45)},
                   0.36));
  v.push_back(make("dealII", 0.31, 0.11, 128 * KB, 0.02,
                   {hammer(0.40, 0.00018, 5, 3), loop(0.25, 192 * KB, 16 * KB, 8),
                    zipf(0.35, 64 * KB, 1.45)},
                   0.34));
  v.push_back(make("soplex", 0.29, 0.10, 512 * KB, 0.02,
                   {stream(0.40, 4 * MB), zipf(0.35, 512 * KB, 0.90),
                    chase(0.25, 1 * MB)},
                   0.31));
  v.push_back(make("povray", 0.30, 0.08, 512 * KB, 0.03,
                   {zipf(0.80, 128 * KB, 1.20), uniform(0.20, 512 * KB)},
                   0.33));
  v.push_back(make("calculix", 0.32, 0.12, 256 * KB, 0.01,
                   {hammer(0.26, 0.0005, 5, 3), loop(0.39, 256 * KB, 16 * KB, 6),
                    zipf(0.35, 160 * KB, 1.10)},
                   0.38));
  v.push_back(make("GemsFDTD", 0.33, 0.14, 128 * KB, 0.01,
                   {stream(0.55, 8 * MB), loop(0.45, 768 * KB, 256 * KB, 3)},
                   0.40));
  v.push_back(make("tonto", 0.28, 0.11, 512 * KB, 0.02,
                   {zipf(0.55, 256 * KB, 1.00), stream(0.45, 1 * MB)},
                   0.35));
  v.push_back(make("lbm", 0.30, 0.25, 32 * KB, 0.002,
                   {stream(0.82, 16 * MB), zipf(0.18, 128 * KB, 1.00)},
                   0.44));
  v.push_back(make("wrf", 0.30, 0.13, 512 * KB, 0.01,
                   {loop(0.50, 768 * KB, 128 * KB, 4), stream(0.50, 4 * MB)},
                   0.39));
  v.push_back(make("sphinx3", 0.31, 0.09, 256 * KB, 0.02,
                   {zipf(0.45, 512 * KB, 0.95), stream(0.35, 2 * MB),
                    uniform(0.20, 1 * MB)},
                   0.35));
  return v;
}

}  // namespace

std::vector<WorkloadProfile> spec2006_all() { return build_all(); }

std::vector<std::string> spec2006_names() {
  std::vector<std::string> names;
  for (const auto& p : build_all()) names.push_back(p.name);
  return names;
}

std::optional<WorkloadProfile> spec2006_profile(const std::string& name) {
  for (auto& p : build_all()) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

std::vector<std::string> fig3_names() {
  return {"perlbench", "calculix", "h264ref", "dealII"};
}

}  // namespace reap::trace

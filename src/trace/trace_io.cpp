#include "reap/trace/trace_io.hpp"

#include <cinttypes>
#include <cstring>

namespace reap::trace {

bool VectorTraceSource::next(MemOp& op) {
  if (pos_ >= ops_.size()) return false;
  op = ops_[pos_++];
  return true;
}

TextTraceReader::TextTraceReader(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "r");
  if (!file_) error_ = "cannot open " + path_;
}

TextTraceReader::~TextTraceReader() {
  if (file_) std::fclose(file_);
}

bool TextTraceReader::next(MemOp& op) {
  // A set error latches: EOF and a parse failure both surface as `return
  // false`, so a caller that kept pulling past an error would otherwise
  // resume mid-garbage and silently truncate the trace. Callers tell the
  // two apart via error() (empty = clean EOF).
  if (!file_ || !error_.empty()) return false;
  for (;;) {
    char kind = 0;
    const int rk = std::fscanf(file_, " %c", &kind);
    if (rk == EOF) return false;
    if (kind == '#') {  // comment line: skip to newline
      int ch;
      while ((ch = std::fgetc(file_)) != EOF && ch != '\n') {
      }
      continue;
    }
    std::uint64_t addr = 0;
    if (std::fscanf(file_, " %" SCNx64, &addr) != 1) {
      error_ = "parse error in " + path_;
      return false;
    }
    switch (kind) {
      case 'I': op = {OpType::inst_fetch, addr}; return true;
      case 'L': op = {OpType::load, addr}; return true;
      case 'S': op = {OpType::store, addr}; return true;
      default:
        error_ = "unknown op kind in " + path_;
        return false;
    }
  }
}

void TextTraceReader::reset() {
  if (!file_) return;  // keep the cannot-open error
  std::rewind(file_);
  error_.clear();
}

bool write_text_trace(const std::string& path, TraceSource& source,
                      std::uint64_t max_ops) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  MemOp op;
  std::uint64_t n = 0;
  bool ok = true;
  while (n < max_ops && source.next(op)) {
    const char kind = op.type == OpType::inst_fetch ? 'I'
                      : op.type == OpType::load     ? 'L'
                                                    : 'S';
    if (std::fprintf(f, "%c %" PRIx64 "\n", kind, op.addr) < 0) {
      ok = false;
      break;
    }
    ++n;
  }
  return std::fclose(f) == 0 && ok;
}

bool write_binary_trace(const std::string& path, TraceSource& source,
                        std::uint64_t max_ops) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  MemOp op;
  std::uint64_t n = 0;
  bool ok = true;
  while (n < max_ops && source.next(op)) {
    unsigned char rec[9];
    rec[0] = static_cast<unsigned char>(op.type);
    std::memcpy(rec + 1, &op.addr, 8);
    if (std::fwrite(rec, 1, sizeof rec, f) != sizeof rec) {
      ok = false;
      break;
    }
    ++n;
  }
  return std::fclose(f) == 0 && ok;
}

BinaryTraceReader::BinaryTraceReader(std::string path)
    : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "rb");
}

BinaryTraceReader::~BinaryTraceReader() {
  if (file_) std::fclose(file_);
}

bool BinaryTraceReader::next(MemOp& op) {
  if (!file_) return false;
  unsigned char rec[9];
  if (std::fread(rec, 1, sizeof rec, file_) != sizeof rec) return false;
  if (rec[0] > 2) return false;
  op.type = static_cast<OpType>(rec[0]);
  std::memcpy(&op.addr, rec + 1, 8);
  return true;
}

void BinaryTraceReader::reset() {
  if (file_) std::rewind(file_);
}

}  // namespace reap::trace

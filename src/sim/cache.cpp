#include "reap/sim/cache.hpp"

#include <bit>

#include "reap/common/assert.hpp"

namespace reap::sim {

SetAssocCache::SetAssocCache(CacheConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed) {
  REAP_EXPECTS(cfg_.ways >= 1);
  REAP_EXPECTS(std::has_single_bit(cfg_.block_bytes));
  REAP_EXPECTS(cfg_.capacity_bytes % (cfg_.ways * cfg_.block_bytes) == 0);
  sets_ = cfg_.sets();
  REAP_EXPECTS(std::has_single_bit(sets_));
  offset_bits_ = static_cast<unsigned>(std::countr_zero(cfg_.block_bytes));
  index_bits_ = static_cast<unsigned>(std::countr_zero(sets_));
  lines_.resize(sets_ * cfg_.ways);
}

std::size_t SetAssocCache::set_of(std::uint64_t addr) const {
  return (addr >> offset_bits_) & (sets_ - 1);
}

std::uint64_t SetAssocCache::tag_of(std::uint64_t addr) const {
  return addr >> (offset_bits_ + index_bits_);
}

std::uint64_t SetAssocCache::line_addr(std::uint64_t tag,
                                       std::size_t set) const {
  return (tag << (offset_bits_ + index_bits_)) |
         (static_cast<std::uint64_t>(set) << offset_bits_);
}

std::span<CacheLine> SetAssocCache::set_span(std::size_t set) {
  return {&lines_[set * cfg_.ways], cfg_.ways};
}

std::span<const CacheLine> SetAssocCache::set_view(std::size_t set) const {
  REAP_EXPECTS(set < sets_);
  return {&lines_[set * cfg_.ways], cfg_.ways};
}

int SetAssocCache::find_way(std::size_t set, std::uint64_t tag) const {
  const CacheLine* base = &lines_[set * cfg_.ways];
  for (std::size_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return static_cast<int>(w);
  }
  return -1;
}

std::size_t SetAssocCache::victim_way(std::size_t set) {
  auto ways = set_span(set);
  // Invalid ways first.
  for (std::size_t w = 0; w < ways.size(); ++w) {
    if (!ways[w].valid) return w;
  }
  switch (cfg_.replacement) {
    case ReplacementKind::lru: {
      std::size_t v = 0;
      for (std::size_t w = 1; w < ways.size(); ++w) {
        if (ways[w].lru_stamp < ways[v].lru_stamp) v = w;
      }
      return v;
    }
    case ReplacementKind::fifo: {
      std::size_t v = 0;
      for (std::size_t w = 1; w < ways.size(); ++w) {
        if (ways[w].fill_stamp < ways[v].fill_stamp) v = w;
      }
      return v;
    }
    case ReplacementKind::random_repl:
      return static_cast<std::size_t>(rng_.below(ways.size()));
    case ReplacementKind::least_error_rate: {
      std::size_t v = 0;
      for (std::size_t w = 1; w < ways.size(); ++w) {
        if (ways[w].reads_since_check > ways[v].reads_since_check ||
            (ways[w].reads_since_check == ways[v].reads_since_check &&
             ways[w].lru_stamp < ways[v].lru_stamp)) {
          v = w;
        }
      }
      return v;
    }
  }
  return 0;
}

std::uint32_t SetAssocCache::ones_for(std::uint64_t addr) const {
  if (ones_model_) return ones_model_(addr);
  return static_cast<std::uint32_t>(cfg_.block_bytes * 8 / 2);
}

bool SetAssocCache::read(std::uint64_t addr) {
  const std::size_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  ++stats_.read_lookups;
  const int way = find_way(set, tag);
  if (hooks_) hooks_->on_read_lookup(set_span(set), way);
  if (way < 0) return false;
  ++stats_.read_hits;
  touch(lines_[set * cfg_.ways + static_cast<std::size_t>(way)]);
  return true;
}

bool SetAssocCache::write(std::uint64_t addr) {
  const std::size_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  ++stats_.write_lookups;
  const int way = find_way(set, tag);
  if (hooks_) hooks_->on_write_lookup(set_span(set), way);
  if (way < 0) return false;
  ++stats_.write_hits;
  CacheLine& line = lines_[set * cfg_.ways + static_cast<std::size_t>(way)];
  line.dirty = true;
  line.ones = ones_for(addr);
  line.reads_since_check = 0;  // a rewrite refreshes every cell
  touch(line);
  return true;
}

SetAssocCache::Evicted SetAssocCache::fill(std::uint64_t addr, bool dirty) {
  const std::size_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  REAP_EXPECTS(find_way(set, tag) < 0);  // caller must not double-fill

  Evicted ev;
  const std::size_t w = victim_way(set);
  CacheLine& line = lines_[set * cfg_.ways + w];
  if (line.valid) {
    if (hooks_) hooks_->on_evict(line);
    ev.any = true;
    ev.dirty = line.dirty;
    ev.addr = line_addr(line.tag, set);
    ++stats_.evictions;
    if (line.dirty) ++stats_.dirty_evictions;
  }
  line.tag = tag;
  line.valid = true;
  line.dirty = dirty;
  line.ones = ones_for(addr);
  line.reads_since_check = 0;
  line.fill_stamp = ++clock_;
  line.lru_stamp = clock_;
  ++stats_.fills;
  if (hooks_) hooks_->on_fill(line);
  return ev;
}

bool SetAssocCache::probe(std::uint64_t addr) const {
  return find_way(set_of(addr), tag_of(addr)) >= 0;
}

bool SetAssocCache::invalidate(std::uint64_t addr) {
  const std::size_t set = set_of(addr);
  const int way = find_way(set, tag_of(addr));
  if (way < 0) return false;
  CacheLine& line = lines_[set * cfg_.ways + static_cast<std::size_t>(way)];
  const bool was_dirty = line.dirty;
  line = CacheLine{};
  return was_dirty;
}

}  // namespace reap::sim

#include "reap/sim/cache.hpp"

#include <bit>

#include "reap/common/assert.hpp"

namespace reap::sim {

SetAssocCache::SetAssocCache(CacheConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed) {
  REAP_EXPECTS(cfg_.ways >= 1);
  REAP_EXPECTS(std::has_single_bit(cfg_.block_bytes));
  REAP_EXPECTS(cfg_.capacity_bytes % (cfg_.ways * cfg_.block_bytes) == 0);
  sets_ = cfg_.sets();
  REAP_EXPECTS(std::has_single_bit(sets_));
  offset_bits_ = static_cast<unsigned>(std::countr_zero(cfg_.block_bytes));
  index_bits_ = static_cast<unsigned>(std::countr_zero(sets_));
  tags_.resize(sets_ * cfg_.ways, 0);
  rel_.resize(sets_ * cfg_.ways);
  state_.resize(sets_ * cfg_.ways);
  default_ones_ = static_cast<std::uint32_t>(cfg_.block_bytes * 8 / 2);
}

SetAssocCache::LineInfo SetAssocCache::line_info(std::size_t set,
                                                 std::size_t way) const {
  REAP_EXPECTS(set < sets_);
  REAP_EXPECTS(way < cfg_.ways);
  const std::size_t idx = set * cfg_.ways + way;
  LineInfo info;
  info.valid = state_[idx].valid;
  info.dirty = state_[idx].dirty;
  info.tag = tags_[idx] >> 1;
  info.ones = rel_[idx].ones;
  info.reads_since_check = rel_[idx].reads_since_check;
  info.lru_stamp = state_[idx].lru_stamp;
  info.fill_stamp = state_[idx].fill_stamp;
  return info;
}

std::size_t SetAssocCache::victim_way(std::size_t set) {
  const std::size_t base = set * cfg_.ways;
  const LineState* st = &state_[base];
  // lru/fifo need no separate invalid-ways pass: an invalid line's stamps
  // are 0 and every valid line's are >= 1 (clock_ pre-increments), so the
  // single min-stamp scan already prefers the first invalid way — the same
  // victim the two-pass form picked.
  switch (cfg_.replacement) {
    case ReplacementKind::lru: {
      std::size_t v = 0;
      for (std::size_t w = 1; w < cfg_.ways; ++w) {
        if (st[w].lru_stamp < st[v].lru_stamp) v = w;
      }
      return v;
    }
    case ReplacementKind::fifo: {
      std::size_t v = 0;
      for (std::size_t w = 1; w < cfg_.ways; ++w) {
        if (st[w].fill_stamp < st[v].fill_stamp) v = w;
      }
      return v;
    }
    default:
      break;
  }
  // Invalid ways first.
  for (std::size_t w = 0; w < cfg_.ways; ++w) {
    if (!st[w].valid) return w;
  }
  if (cfg_.replacement == ReplacementKind::random_repl)
    return static_cast<std::size_t>(rng_.below(cfg_.ways));
  // least_error_rate
  const LineRel* rel = &rel_[base];
  std::size_t v = 0;
  for (std::size_t w = 1; w < cfg_.ways; ++w) {
    if (rel[w].reads_since_check > rel[v].reads_since_check ||
        (rel[w].reads_since_check == rel[v].reads_since_check &&
         st[w].lru_stamp < st[v].lru_stamp)) {
      v = w;
    }
  }
  return v;
}

bool SetAssocCache::invalidate(std::uint64_t addr) {
  const std::size_t set = set_of(addr);
  const int way = find_way(set, tagv_of(addr));
  if (way < 0) return false;
  const std::size_t idx = set * cfg_.ways + static_cast<std::size_t>(way);
  const bool was_dirty = state_[idx].dirty;
  tags_[idx] = 0;
  rel_[idx] = LineRel{};
  state_[idx] = LineState{};
  return was_dirty;
}

}  // namespace reap::sim

#include "reap/sim/cache.hpp"

#include <bit>

#include "reap/common/assert.hpp"

namespace reap::sim {

SetAssocCache::SetAssocCache(CacheConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed) {
  REAP_EXPECTS(cfg_.ways >= 1);
  REAP_EXPECTS(std::has_single_bit(cfg_.block_bytes));
  REAP_EXPECTS(cfg_.capacity_bytes % (cfg_.ways * cfg_.block_bytes) == 0);
  sets_ = cfg_.sets();
  REAP_EXPECTS(std::has_single_bit(sets_));
  stride_ = simd::padded_ways(cfg_.ways);
  offset_bits_ = static_cast<unsigned>(std::countr_zero(cfg_.block_bytes));
  index_bits_ = static_cast<unsigned>(std::countr_zero(sets_));
  // Hot columns: 64 B-aligned, stride padded to the vector width, zeroed
  // (zero = invalid tagv / LineRel{0,0}) -- see the layout note up top.
  tags_ = simd::AlignedVec<std::uint64_t>(sets_ * stride_);
  rel_ = simd::AlignedVec<LineRel>(sets_ * stride_);
  lru_ = simd::AlignedVec<std::uint64_t>(sets_ * stride_);
  // The lru column's padding lanes hold the never-wins sentinel so the
  // vector victim scan can run whole padded sets. Set in every build --
  // the layout is REAP_SIMD-independent by design.
  for (std::size_t s = 0; s < sets_; ++s) {
    for (std::size_t w = cfg_.ways; w < stride_; ++w)
      lru_[s * stride_ + w] = simd::kLruPad;
  }
  state_.resize(sets_ * stride_);
  default_ones_ = static_cast<std::uint32_t>(cfg_.block_bytes * 8 / 2);
}

SetAssocCache::LineInfo SetAssocCache::line_info(std::size_t set,
                                                 std::size_t way) const {
  REAP_EXPECTS(set < sets_);
  REAP_EXPECTS(way < cfg_.ways);
  const std::size_t idx = set * stride_ + way;
  LineInfo info;
  info.valid = state_[idx].valid;
  info.dirty = state_[idx].dirty;
  info.tag = tags_[idx] >> 1;
  info.ones = rel_[idx].ones;
  info.reads_since_check = rel_[idx].reads_since_check;
  info.lru_stamp = lru_[idx];
  info.fill_stamp = state_[idx].fill_stamp;
  return info;
}

// random / least_error_rate victim pick -- the cold tail of victim_way
// (the lru/fifo scans live in the header with the hot paths).
std::size_t SetAssocCache::victim_way_rare(std::size_t set) {
  const std::size_t base = set * stride_;
  const LineState* st = &state_[base];
  // Invalid ways first.
  for (std::size_t w = 0; w < cfg_.ways; ++w) {
    if (!st[w].valid) return w;
  }
  if (cfg_.replacement == ReplacementKind::random_repl)
    return static_cast<std::size_t>(rng_.below(cfg_.ways));
  // least_error_rate: most accumulated unchecked reads, LRU tie-break.
  const LineRel* rel = &rel_[base];
  const std::uint64_t* lru = &lru_[base];
  std::size_t v = 0;
  for (std::size_t w = 1; w < cfg_.ways; ++w) {
    if (rel[w].reads_since_check > rel[v].reads_since_check ||
        (rel[w].reads_since_check == rel[v].reads_since_check &&
         lru[w] < lru[v])) {
      v = w;
    }
  }
  return v;
}

bool SetAssocCache::invalidate(std::uint64_t addr) {
  const std::size_t set = set_of(addr);
  const int way = find_way(set, tagv_of(addr));
  if (way < 0) return false;
  const std::size_t idx = set * stride_ + static_cast<std::size_t>(way);
  const bool was_dirty = state_[idx].dirty;
  tags_[idx] = 0;
  rel_[idx] = LineRel{};
  lru_[idx] = 0;  // stamp 0 = prime victim, like any invalid line
  state_[idx] = LineState{};
  return was_dirty;
}

}  // namespace reap::sim

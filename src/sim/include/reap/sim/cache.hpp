// Set-associative cache with a pluggable read-path observer.
//
// The cache implements the *mechanism* shared by every read-path variant:
// tag match, replacement, dirty tracking, per-line reliability metadata.
// The *policy* differences the paper studies (who gets ECC-checked when,
// which reads count as concealed) live in core read-path implementations,
// which the cache invokes on every access.
//
// Storage is structure-of-arrays, split by access temperature:
//   tags_  -- dense (tag << 1 | valid) uint64 column; the only data
//             find_way scans (one 64B host cache line covers an 8-way set)
//   rel_   -- LineRel {ones, reads_since_check}, the reliability metadata
//             the policy loop walks on every lookup (8 bytes per line)
//   lru_   -- lru-stamp uint64 column: written on every hit (the LRU
//             touch) and min-scanned on every fill (the victim pick)
//   state_ -- LineState {valid, dirty, fill stamp}, touched only on
//             fills/evictions
//
// The hot columns (tags_, rel_, lru_) are 64 B-aligned and the per-set
// stride is padded to the vector width (sim/simd.hpp): an 8-way set's tag
// column is exactly one host cache line and every whole-set scan --
// find_way's tag compare, the policies' accumulation walk, the LRU victim
// scan -- runs in full vectors over padding that can never win (zero for
// tags/rel, simd::kLruPad for lru). The layout is identical in scalar
// builds; only the kernels switch on REAP_SIMD.
//
// Dispatch is compile-time: the access paths are templates over a Hooks
// type with the L2PolicyHooks shape, so a concrete policy inlines into the
// loop. The runtime L2PolicyHooks interface survives as VirtualHooks, a
// thin adapter the untemplated convenience overloads route through — tests
// and exploratory code keep injecting observers dynamically while the
// campaign engine pays no virtual call per access.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "reap/common/rng.hpp"
#include "reap/sim/simd.hpp"
#include "reap/trace/datavalue.hpp"

namespace reap::sim {

// Hot per-line reliability metadata (used by the STT-MRAM L2; ignored for
// SRAM L1s). Kept to 8 bytes so a policy's per-way loop over an 8-way set
// stays within one host cache line.
struct LineRel {
  std::uint32_t ones = 0;               // popcount of the stored payload
  std::uint32_t reads_since_check = 0;  // concealed reads since last ECC
                                        // check / rewrite (paper's N - 1)
};

// Cold per-line state: the dirty bit and the fifo stamp. `valid` mirrors
// the tag column's valid bit (the cache is the sole writer of both). The
// LRU stamp is NOT here -- it lives in its own hot column (lru_), because
// the per-hit touch and the per-fill victim scan walk it constantly and a
// set's stamps should sit on one host line, not be strided through this
// struct.
struct LineState {
  bool valid = false;
  bool dirty = false;
  std::uint64_t fill_stamp = 0;
};

// One set's SoA columns, as handed to the policy hooks: the tag|valid
// column (read-only) and the reliability column (mutable). `padded` says
// both columns are readable/writable up to simd::padded_ways(ways)
// entries with zeroed padding -- true for views the cache builds over its
// own columns, false for views tests construct over raw arrays.
class CacheSetView {
 public:
  CacheSetView(const std::uint64_t* tagv, LineRel* rel, std::size_t ways,
               bool padded = false)
      : tagv_(tagv), rel_(rel), ways_(ways), padded_(padded) {}

  std::size_t size() const { return ways_; }
  bool valid(std::size_t way) const { return (tagv_[way] & 1) != 0; }
  // 1 for a valid way, 0 otherwise; lets accumulation loops stay
  // branchless (counter += valid_bit).
  std::uint32_t valid_bit(std::size_t way) const {
    return static_cast<std::uint32_t>(tagv_[way] & 1);
  }
  LineRel& rel(std::size_t way) const { return rel_[way]; }

  // The policies' shared accumulation walk, whole set per vector:
  // reads_since_check += valid_bit for every way. Value-identical to the
  // per-way scalar loop (pinned by tests/sim/test_simd.cpp); the vector
  // form needs the padded-column guarantee.
  void accumulate_valid() const {
    if (padded_) {
      simd::accumulate_valid(tagv_, rel_, ways_);
    } else {
      for (std::size_t w = 0; w < ways_; ++w)
        rel_[w].reads_since_check += valid_bit(w);
    }
  }

 private:
  const std::uint64_t* tagv_;
  LineRel* rel_;
  std::size_t ways_;
  bool padded_;
};

// lru/fifo/random are the classic policies; least_error_rate follows the
// idea of the paper's ref [13] (LER replacement for STT-RAM caches): prefer
// evicting the line with the most accumulated unchecked reads, so the
// blocks most at risk of uncorrectable errors leave the cache first.
// Ties fall back to LRU.
enum class ReplacementKind { lru, fifo, random_repl, least_error_rate };

struct CacheConfig {
  std::string name = "cache";
  std::size_t capacity_bytes = 32 * 1024;
  std::size_t ways = 4;
  std::size_t block_bytes = 64;
  ReplacementKind replacement = ReplacementKind::lru;

  std::size_t sets() const { return capacity_bytes / (ways * block_bytes); }
};

// Observer for the read path; see core/read_path.hpp for implementations.
// Concrete (non-virtual) hook types with the same shape plug into the
// templated access paths directly; this interface is the runtime-dispatch
// fallback.
class L2PolicyHooks {
 public:
  virtual ~L2PolicyHooks() = default;

  // A read lookup touched this set (parallel-access caches physically read
  // every way). The view spans all k ways, valid or not; hit_way is the
  // matching index or -1 on a miss.
  virtual void on_read_lookup(CacheSetView set, int hit_way) = 0;

  // A write lookup (L1 writeback / store update) touched this set; on a hit
  // the line is about to be rewritten. Write lookups compare tags but do
  // not read the data ways, so they cause no concealed reads.
  virtual void on_write_lookup(CacheSetView set, int hit_way) = 0;

  // `rel` belongs to a line that was just filled (ones already set).
  virtual void on_fill(LineRel& rel) = 0;

  // `rel` belongs to a (still valid) line about to be evicted.
  virtual void on_evict(LineRel& rel, bool dirty) = 0;
};

// Static hooks that do nothing: the L1 instantiation of the access paths.
struct NullHooks {
  void on_read_lookup(CacheSetView, int) {}
  void on_write_lookup(CacheSetView, int) {}
  void on_fill(LineRel&) {}
  void on_evict(LineRel&, bool) {}
};

// Adapter presenting an optional runtime observer through the static hooks
// shape; the untemplated access overloads route through it.
struct VirtualHooks {
  L2PolicyHooks* hooks = nullptr;

  void on_read_lookup(CacheSetView set, int hit_way) {
    if (hooks) hooks->on_read_lookup(set, hit_way);
  }
  void on_write_lookup(CacheSetView set, int hit_way) {
    if (hooks) hooks->on_write_lookup(set, hit_way);
  }
  void on_fill(LineRel& rel) {
    if (hooks) hooks->on_fill(rel);
  }
  void on_evict(LineRel& rel, bool dirty) {
    if (hooks) hooks->on_evict(rel, dirty);
  }
};

// Ones-count source for filled lines. A concrete type (not a type-erased
// std::function) so the fill path is a predictable branch plus a direct
// call: either a DataValueModel, a fixed count for tests, or the cache's
// default (half the block bits).
//
// Contract: a provider is a pure function of the address -- the same line
// address always yields the same count (what makes experiments
// reproducible from a seed). The cache relies on this: a write hit keeps
// the count installed at fill instead of re-deriving it, because the
// re-derivation could only return the same value.
class OnesProvider {
 public:
  OnesProvider() = default;
  explicit OnesProvider(const trace::DataValueModel& model) : model_(&model) {}

  static OnesProvider fixed(std::uint32_t ones) {
    OnesProvider p;
    p.fixed_ = ones;
    p.has_fixed_ = true;
    return p;
  }

  std::uint32_t ones_for(std::uint64_t addr, std::uint32_t fallback) const {
    if (model_) return model_->ones_for(addr);
    return has_fixed_ ? fixed_ : fallback;
  }

  // Software-prefetch whatever ones_for(addr, ...) would probe (the
  // model's memo slot); a no-op for fixed/default providers.
  void prefetch(std::uint64_t addr) const {
    if (model_) model_->prefetch(addr);
  }

 private:
  const trace::DataValueModel* model_ = nullptr;
  std::uint32_t fixed_ = 0;
  bool has_fixed_ = false;
};

struct CacheStats {
  std::uint64_t read_lookups = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t write_lookups = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;

  double read_hit_rate() const {
    return read_lookups == 0
               ? 0.0
               : static_cast<double>(read_hits) /
                     static_cast<double>(read_lookups);
  }
};

class SetAssocCache {
 public:
  explicit SetAssocCache(CacheConfig cfg, std::uint64_t seed = 1);

  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  // Runtime policy observer; may be null (L1 caches). Used only by the
  // untemplated access overloads.
  void set_hooks(L2PolicyHooks* hooks) { hooks_ = hooks; }
  L2PolicyHooks* hooks() const { return hooks_; }

  // Ones-count provider for filled/rewritten lines; default keeps ones at
  // half the block bits.
  void set_ones_provider(OnesProvider provider) { ones_ = provider; }

  struct Evicted {
    bool any = false;
    bool dirty = false;
    std::uint64_t addr = 0;
  };

  // Read lookup. Returns hit; does NOT fill on miss (caller decides).
  //
  // The lookup paths are templated on a kernel flavor as well as the hooks
  // type. kVector=true (the default) scans with the build's wide kernels;
  // kVector=false keeps the pre-vectorization scalar walks. The two
  // flavors are value-identical (pinned by tests/sim/test_simd.cpp); the
  // scalar flavor exists so the plain batched drive loop -- bench_e2e's
  // E2E/static baseline -- stays a faithful reconstruction of the
  // pre-vectorization engine that the E2E/simd series is gated against.
  template <bool kVector = true, class Hooks>
  bool read(std::uint64_t addr, Hooks& hooks) {
    return read_pre<kVector>(set_of(addr), tagv_of(addr), hooks);
  }

  // Pre-decoded read lookup: `set`/`tagv` must equal set_of(addr)/
  // tagv_of(addr) for the looked-up address (the batch pre-decode pass
  // hoists that derivation out of the per-access path).
  template <bool kVector = true, class Hooks>
  bool read_pre(std::size_t set, std::uint64_t tagv, Hooks& hooks) {
    ++stats_.read_lookups;
    const int way = find_way<kVector>(set, tagv);
    hooks.on_read_lookup(view_of<kVector>(set), way);
    if (way < 0) return false;
    ++stats_.read_hits;
    touch(set * stride_ + static_cast<std::size_t>(way));
    return true;
  }

  // Write lookup. On a hit the line is rewritten in place (dirty,
  // accumulation cleared). The installed ones count is kept: providers
  // are address-deterministic (the OnesProvider contract), so re-deriving
  // it for the same line is the same value -- the hot path skips the
  // probe. Returns hit.
  template <bool kVector = true, class Hooks>
  bool write(std::uint64_t addr, Hooks& hooks) {
    return write_pre<kVector>(set_of(addr), tagv_of(addr), hooks);
  }

  // Pre-decoded write lookup; same contract as read_pre.
  template <bool kVector = true, class Hooks>
  bool write_pre(std::size_t set, std::uint64_t tagv, Hooks& hooks) {
    ++stats_.write_lookups;
    const int way = find_way<kVector>(set, tagv);
    hooks.on_write_lookup(view_of<kVector>(set), way);
    if (way < 0) return false;
    ++stats_.write_hits;
    const std::size_t idx = set * stride_ + static_cast<std::size_t>(way);
    state_[idx].dirty = true;
    rel_[idx].reads_since_check = 0;  // a rewrite refreshes every cell
    touch(idx);
    return true;
  }

  // Installs addr's block, evicting if needed; returns the evicted victim.
  // Precondition (validated by tests, not re-scanned here — this is the
  // hot miss path): addr's block is not already present. kVector flavors
  // the LRU victim scan, same contract as the lookup paths.
  template <bool kVector = true, class Hooks>
  Evicted fill(std::uint64_t addr, bool dirty, Hooks& hooks) {
    const std::size_t set = set_of(addr);
    const std::uint64_t tag = tag_of(addr);

    Evicted ev;
    const std::size_t w = victim_way<kVector>(set);
    const std::size_t idx = set * stride_ + w;
    LineState& st = state_[idx];
    if (st.valid) {
      hooks.on_evict(rel_[idx], st.dirty);
      ev.any = true;
      ev.dirty = st.dirty;
      ev.addr = line_addr(tags_[idx] >> 1, set);
      ++stats_.evictions;
      if (st.dirty) ++stats_.dirty_evictions;
    }
    tags_[idx] = (tag << 1) | 1;
    st.valid = true;
    st.dirty = dirty;
    rel_[idx].ones = ones_.ones_for(addr, default_ones_);
    rel_[idx].reads_since_check = 0;
    st.fill_stamp = ++clock_;
    lru_[idx] = clock_;
    ++stats_.fills;
    hooks.on_fill(rel_[idx]);
    return ev;
  }

  // Untemplated overloads: dispatch through the configured runtime hooks.
  bool read(std::uint64_t addr) {
    VirtualHooks h{hooks_};
    return read(addr, h);
  }
  bool write(std::uint64_t addr) {
    VirtualHooks h{hooks_};
    return write(addr, h);
  }
  Evicted fill(std::uint64_t addr, bool dirty) {
    VirtualHooks h{hooks_};
    return fill(addr, dirty, h);
  }

  // True if addr's block is present (no stats/hook side effects).
  bool probe(std::uint64_t addr) const {
    return find_way(set_of(addr), tagv_of(addr)) >= 0;
  }

  // Invalidates addr's block if present; returns whether it was dirty.
  bool invalidate(std::uint64_t addr);

  // Snapshot of one line for tests and diagnostics.
  struct LineInfo {
    bool valid = false;
    bool dirty = false;
    std::uint64_t tag = 0;
    std::uint32_t ones = 0;
    std::uint32_t reads_since_check = 0;
    std::uint64_t lru_stamp = 0;
    std::uint64_t fill_stamp = 0;
  };
  LineInfo line_info(std::size_t set, std::size_t way) const;

  std::size_t set_of(std::uint64_t addr) const {
    return (addr >> offset_bits_) & (sets_ - 1);
  }
  std::uint64_t tag_of(std::uint64_t addr) const {
    return addr >> (offset_bits_ + index_bits_);
  }
  // Dense column entry: (tag << 1) | valid. Invalid entries are 0, which
  // never equals a valid key (those are odd), so the scan needs no
  // separate valid test.
  std::uint64_t tagv_of(std::uint64_t addr) const {
    return (tag_of(addr) << 1) | 1;
  }
  std::uint64_t line_addr(std::uint64_t tag, std::size_t set) const {
    return (tag << (offset_bits_ + index_bits_)) |
           (static_cast<std::uint64_t>(set) << offset_bits_);
  }

  // Geometry for the batch pre-decode pass (simd::predecode must produce
  // exactly set_of / tagv_of).
  unsigned offset_bits() const { return offset_bits_; }
  unsigned index_bits() const { return index_bits_; }

  // Software-prefetch a set's hot metadata (tag + LineRel + lru columns)
  // ahead of its lookup. A hint only: no stats, no state, no output
  // effect.
  void prefetch_set(std::size_t set) const {
    const std::size_t base = set * stride_;
    simd::prefetch(&tags_[base]);
    simd::prefetch(&rel_[base]);
    simd::prefetch(&lru_[base]);
  }

  // Software-prefetch the ones-memo slot that filling/rewriting addr's
  // block would probe (the data-value model's table is far larger than
  // the set columns, and a low-locality op stream misses it constantly).
  // Hint only, like prefetch_set.
  void prefetch_ones(std::uint64_t addr) const { ones_.prefetch(addr); }

 private:
  // The view's padded flag doubles as the accumulate_valid routing switch:
  // scalar-flavor lookups hand the policies a view that accumulates with
  // the scalar walk, vector-flavor lookups one that uses the wide kernel.
  // (The columns themselves are padded either way.)
  template <bool kVector = true>
  CacheSetView view_of(std::size_t set) {
    const std::size_t base = set * stride_;
    return {&tags_[base], &rel_[base], cfg_.ways, /*padded=*/kVector};
  }

  template <bool kVector = true>
  int find_way(std::size_t set, std::uint64_t tagv) const {
    if constexpr (kVector)
      return simd::find_way(&tags_[set * stride_], cfg_.ways, tagv);
    else
      return simd::find_way_scalar(&tags_[set * stride_], cfg_.ways, tagv);
  }

  // Victim selection. LRU is the hot case -- a single min-stamp scan over
  // the set's lru column -- and is the flavored one. lru/fifo need no
  // separate invalid-ways pass: an invalid line's stamps are 0 and every
  // valid line's are >= 1 (clock_ pre-increments), so the min-stamp scan
  // already prefers the first invalid way — the same victim the two-pass
  // form picked. random/LER fall through to the cold helper.
  template <bool kVector = true>
  std::size_t victim_way(std::size_t set) {
    const std::size_t base = set * stride_;
    switch (cfg_.replacement) {
      case ReplacementKind::lru:
        if constexpr (kVector)
          return simd::victim_min(&lru_[base], cfg_.ways);
        else
          return simd::victim_min_scalar(&lru_[base], cfg_.ways);
      case ReplacementKind::fifo: {
        const LineState* st = &state_[base];
        std::size_t v = 0;
        for (std::size_t w = 1; w < cfg_.ways; ++w) {
          if (st[w].fill_stamp < st[v].fill_stamp) v = w;
        }
        return v;
      }
      default:
        break;
    }
    return victim_way_rare(set);
  }

  std::size_t victim_way_rare(std::size_t set);
  void touch(std::size_t idx) { lru_[idx] = ++clock_; }

  CacheConfig cfg_;
  std::size_t sets_;
  std::size_t stride_;  // simd::padded_ways(cfg_.ways) entries per set
  unsigned offset_bits_;
  unsigned index_bits_;
  simd::AlignedVec<std::uint64_t> tags_;  // dense (tag << 1) | valid column
  simd::AlignedVec<LineRel> rel_;         // hot reliability column
  simd::AlignedVec<std::uint64_t> lru_;   // hot lru-stamp column
  std::vector<LineState> state_;          // cold valid/dirty/fifo column
  CacheStats stats_;
  L2PolicyHooks* hooks_ = nullptr;
  OnesProvider ones_;
  std::uint32_t default_ones_ = 0;
  std::uint64_t clock_ = 0;
  common::Rng rng_;
};

}  // namespace reap::sim

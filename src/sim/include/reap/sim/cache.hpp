// Set-associative cache with a pluggable read-path observer.
//
// The cache implements the *mechanism* shared by every read-path variant:
// tag match, replacement, dirty tracking, per-line reliability metadata.
// The *policy* differences the paper studies (who gets ECC-checked when,
// which reads count as concealed) live in core read-path implementations,
// which the cache invokes on every access.
//
// Storage is structure-of-arrays, split by access temperature:
//   tags_  -- dense (tag << 1 | valid) uint64 column; the only data
//             find_way scans (one 64B host cache line covers an 8-way set)
//   rel_   -- LineRel {ones, reads_since_check}, the reliability metadata
//             the policy loop walks on every lookup (8 bytes per line)
//   state_ -- LineState {valid, dirty, lru/fill stamps}, touched only on
//             hits (LRU update) and fills/evictions
//
// Dispatch is compile-time: the access paths are templates over a Hooks
// type with the L2PolicyHooks shape, so a concrete policy inlines into the
// loop. The runtime L2PolicyHooks interface survives as VirtualHooks, a
// thin adapter the untemplated convenience overloads route through — tests
// and exploratory code keep injecting observers dynamically while the
// campaign engine pays no virtual call per access.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "reap/common/rng.hpp"
#include "reap/trace/datavalue.hpp"

namespace reap::sim {

// Hot per-line reliability metadata (used by the STT-MRAM L2; ignored for
// SRAM L1s). Kept to 8 bytes so a policy's per-way loop over an 8-way set
// stays within one host cache line.
struct LineRel {
  std::uint32_t ones = 0;               // popcount of the stored payload
  std::uint32_t reads_since_check = 0;  // concealed reads since last ECC
                                        // check / rewrite (paper's N - 1)
};

// Cold per-line state: replacement bookkeeping and the dirty bit. `valid`
// mirrors the tag column's valid bit (the cache is the sole writer of
// both).
struct LineState {
  bool valid = false;
  bool dirty = false;
  std::uint64_t lru_stamp = 0;
  std::uint64_t fill_stamp = 0;
};

// One set's SoA columns, as handed to the policy hooks: the tag|valid
// column (read-only) and the reliability column (mutable).
class CacheSetView {
 public:
  CacheSetView(const std::uint64_t* tagv, LineRel* rel, std::size_t ways)
      : tagv_(tagv), rel_(rel), ways_(ways) {}

  std::size_t size() const { return ways_; }
  bool valid(std::size_t way) const { return (tagv_[way] & 1) != 0; }
  // 1 for a valid way, 0 otherwise; lets accumulation loops stay
  // branchless (counter += valid_bit).
  std::uint32_t valid_bit(std::size_t way) const {
    return static_cast<std::uint32_t>(tagv_[way] & 1);
  }
  LineRel& rel(std::size_t way) const { return rel_[way]; }

 private:
  const std::uint64_t* tagv_;
  LineRel* rel_;
  std::size_t ways_;
};

// lru/fifo/random are the classic policies; least_error_rate follows the
// idea of the paper's ref [13] (LER replacement for STT-RAM caches): prefer
// evicting the line with the most accumulated unchecked reads, so the
// blocks most at risk of uncorrectable errors leave the cache first.
// Ties fall back to LRU.
enum class ReplacementKind { lru, fifo, random_repl, least_error_rate };

struct CacheConfig {
  std::string name = "cache";
  std::size_t capacity_bytes = 32 * 1024;
  std::size_t ways = 4;
  std::size_t block_bytes = 64;
  ReplacementKind replacement = ReplacementKind::lru;

  std::size_t sets() const { return capacity_bytes / (ways * block_bytes); }
};

// Observer for the read path; see core/read_path.hpp for implementations.
// Concrete (non-virtual) hook types with the same shape plug into the
// templated access paths directly; this interface is the runtime-dispatch
// fallback.
class L2PolicyHooks {
 public:
  virtual ~L2PolicyHooks() = default;

  // A read lookup touched this set (parallel-access caches physically read
  // every way). The view spans all k ways, valid or not; hit_way is the
  // matching index or -1 on a miss.
  virtual void on_read_lookup(CacheSetView set, int hit_way) = 0;

  // A write lookup (L1 writeback / store update) touched this set; on a hit
  // the line is about to be rewritten. Write lookups compare tags but do
  // not read the data ways, so they cause no concealed reads.
  virtual void on_write_lookup(CacheSetView set, int hit_way) = 0;

  // `rel` belongs to a line that was just filled (ones already set).
  virtual void on_fill(LineRel& rel) = 0;

  // `rel` belongs to a (still valid) line about to be evicted.
  virtual void on_evict(LineRel& rel, bool dirty) = 0;
};

// Static hooks that do nothing: the L1 instantiation of the access paths.
struct NullHooks {
  void on_read_lookup(CacheSetView, int) {}
  void on_write_lookup(CacheSetView, int) {}
  void on_fill(LineRel&) {}
  void on_evict(LineRel&, bool) {}
};

// Adapter presenting an optional runtime observer through the static hooks
// shape; the untemplated access overloads route through it.
struct VirtualHooks {
  L2PolicyHooks* hooks = nullptr;

  void on_read_lookup(CacheSetView set, int hit_way) {
    if (hooks) hooks->on_read_lookup(set, hit_way);
  }
  void on_write_lookup(CacheSetView set, int hit_way) {
    if (hooks) hooks->on_write_lookup(set, hit_way);
  }
  void on_fill(LineRel& rel) {
    if (hooks) hooks->on_fill(rel);
  }
  void on_evict(LineRel& rel, bool dirty) {
    if (hooks) hooks->on_evict(rel, dirty);
  }
};

// Ones-count source for filled/rewritten lines. A concrete type (not a
// type-erased std::function) so the fill path is a predictable branch plus
// a direct call: either a DataValueModel, a fixed count for tests, or the
// cache's default (half the block bits).
class OnesProvider {
 public:
  OnesProvider() = default;
  explicit OnesProvider(const trace::DataValueModel& model) : model_(&model) {}

  static OnesProvider fixed(std::uint32_t ones) {
    OnesProvider p;
    p.fixed_ = ones;
    p.has_fixed_ = true;
    return p;
  }

  std::uint32_t ones_for(std::uint64_t addr, std::uint32_t fallback) const {
    if (model_) return model_->ones_for(addr);
    return has_fixed_ ? fixed_ : fallback;
  }

 private:
  const trace::DataValueModel* model_ = nullptr;
  std::uint32_t fixed_ = 0;
  bool has_fixed_ = false;
};

struct CacheStats {
  std::uint64_t read_lookups = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t write_lookups = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;

  double read_hit_rate() const {
    return read_lookups == 0
               ? 0.0
               : static_cast<double>(read_hits) /
                     static_cast<double>(read_lookups);
  }
};

class SetAssocCache {
 public:
  explicit SetAssocCache(CacheConfig cfg, std::uint64_t seed = 1);

  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  // Runtime policy observer; may be null (L1 caches). Used only by the
  // untemplated access overloads.
  void set_hooks(L2PolicyHooks* hooks) { hooks_ = hooks; }
  L2PolicyHooks* hooks() const { return hooks_; }

  // Ones-count provider for filled/rewritten lines; default keeps ones at
  // half the block bits.
  void set_ones_provider(OnesProvider provider) { ones_ = provider; }

  struct Evicted {
    bool any = false;
    bool dirty = false;
    std::uint64_t addr = 0;
  };

  // Read lookup. Returns hit; does NOT fill on miss (caller decides).
  template <class Hooks>
  bool read(std::uint64_t addr, Hooks& hooks) {
    const std::size_t set = set_of(addr);
    ++stats_.read_lookups;
    const int way = find_way(set, tagv_of(addr));
    hooks.on_read_lookup(view_of(set), way);
    if (way < 0) return false;
    ++stats_.read_hits;
    touch(state_[set * cfg_.ways + static_cast<std::size_t>(way)]);
    return true;
  }

  // Write lookup. On a hit the line is rewritten in place (dirty, ones
  // refreshed, accumulation cleared). Returns hit.
  template <class Hooks>
  bool write(std::uint64_t addr, Hooks& hooks) {
    const std::size_t set = set_of(addr);
    ++stats_.write_lookups;
    const int way = find_way(set, tagv_of(addr));
    hooks.on_write_lookup(view_of(set), way);
    if (way < 0) return false;
    ++stats_.write_hits;
    const std::size_t idx = set * cfg_.ways + static_cast<std::size_t>(way);
    state_[idx].dirty = true;
    rel_[idx].ones = ones_.ones_for(addr, default_ones_);
    rel_[idx].reads_since_check = 0;  // a rewrite refreshes every cell
    touch(state_[idx]);
    return true;
  }

  // Installs addr's block, evicting if needed; returns the evicted victim.
  // Precondition (validated by tests, not re-scanned here — this is the
  // hot miss path): addr's block is not already present.
  template <class Hooks>
  Evicted fill(std::uint64_t addr, bool dirty, Hooks& hooks) {
    const std::size_t set = set_of(addr);
    const std::uint64_t tag = tag_of(addr);

    Evicted ev;
    const std::size_t w = victim_way(set);
    const std::size_t idx = set * cfg_.ways + w;
    LineState& st = state_[idx];
    if (st.valid) {
      hooks.on_evict(rel_[idx], st.dirty);
      ev.any = true;
      ev.dirty = st.dirty;
      ev.addr = line_addr(tags_[idx] >> 1, set);
      ++stats_.evictions;
      if (st.dirty) ++stats_.dirty_evictions;
    }
    tags_[idx] = (tag << 1) | 1;
    st.valid = true;
    st.dirty = dirty;
    rel_[idx].ones = ones_.ones_for(addr, default_ones_);
    rel_[idx].reads_since_check = 0;
    st.fill_stamp = ++clock_;
    st.lru_stamp = clock_;
    ++stats_.fills;
    hooks.on_fill(rel_[idx]);
    return ev;
  }

  // Untemplated overloads: dispatch through the configured runtime hooks.
  bool read(std::uint64_t addr) {
    VirtualHooks h{hooks_};
    return read(addr, h);
  }
  bool write(std::uint64_t addr) {
    VirtualHooks h{hooks_};
    return write(addr, h);
  }
  Evicted fill(std::uint64_t addr, bool dirty) {
    VirtualHooks h{hooks_};
    return fill(addr, dirty, h);
  }

  // True if addr's block is present (no stats/hook side effects).
  bool probe(std::uint64_t addr) const {
    return find_way(set_of(addr), tagv_of(addr)) >= 0;
  }

  // Invalidates addr's block if present; returns whether it was dirty.
  bool invalidate(std::uint64_t addr);

  // Snapshot of one line for tests and diagnostics.
  struct LineInfo {
    bool valid = false;
    bool dirty = false;
    std::uint64_t tag = 0;
    std::uint32_t ones = 0;
    std::uint32_t reads_since_check = 0;
    std::uint64_t lru_stamp = 0;
    std::uint64_t fill_stamp = 0;
  };
  LineInfo line_info(std::size_t set, std::size_t way) const;

  std::size_t set_of(std::uint64_t addr) const {
    return (addr >> offset_bits_) & (sets_ - 1);
  }
  std::uint64_t tag_of(std::uint64_t addr) const {
    return addr >> (offset_bits_ + index_bits_);
  }
  std::uint64_t line_addr(std::uint64_t tag, std::size_t set) const {
    return (tag << (offset_bits_ + index_bits_)) |
           (static_cast<std::uint64_t>(set) << offset_bits_);
  }

 private:
  // Dense column entry: (tag << 1) | valid. Invalid entries are 0, which
  // never equals a valid key (those are odd), so the scan needs no
  // separate valid test.
  std::uint64_t tagv_of(std::uint64_t addr) const {
    return (tag_of(addr) << 1) | 1;
  }

  CacheSetView view_of(std::size_t set) {
    const std::size_t base = set * cfg_.ways;
    return {&tags_[base], &rel_[base], cfg_.ways};
  }

  int find_way(std::size_t set, std::uint64_t tagv) const {
    const std::uint64_t* base = &tags_[set * cfg_.ways];
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
      if (base[w] == tagv) return static_cast<int>(w);
    }
    return -1;
  }

  std::size_t victim_way(std::size_t set);
  void touch(LineState& st) { st.lru_stamp = ++clock_; }

  CacheConfig cfg_;
  std::size_t sets_;
  unsigned offset_bits_;
  unsigned index_bits_;
  std::vector<std::uint64_t> tags_;  // dense (tag << 1) | valid column
  std::vector<LineRel> rel_;         // hot reliability column
  std::vector<LineState> state_;     // cold replacement/dirty column
  CacheStats stats_;
  L2PolicyHooks* hooks_ = nullptr;
  OnesProvider ones_;
  std::uint32_t default_ones_ = 0;
  std::uint64_t clock_ = 0;
  common::Rng rng_;
};

}  // namespace reap::sim

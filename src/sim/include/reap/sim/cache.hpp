// Set-associative cache with a pluggable read-path observer.
//
// The cache implements the *mechanism* shared by every read-path variant:
// tag match, replacement, dirty tracking, per-line reliability metadata.
// The *policy* differences the paper studies (who gets ECC-checked when,
// which reads count as concealed) live in core/read_path.hpp implementations
// of L2PolicyHooks, which this class invokes on every access.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "reap/common/rng.hpp"

namespace reap::sim {

struct CacheLine {
  std::uint64_t tag = 0;
  bool valid = false;
  bool dirty = false;

  // Reliability metadata (used by the STT-MRAM L2; ignored for SRAM L1s).
  std::uint32_t ones = 0;               // popcount of the stored payload
  std::uint32_t reads_since_check = 0;  // concealed reads since last ECC
                                        // check / rewrite (paper's N - 1)

  std::uint64_t lru_stamp = 0;
  std::uint64_t fill_stamp = 0;
};

// lru/fifo/random are the classic policies; least_error_rate follows the
// idea of the paper's ref [13] (LER replacement for STT-RAM caches): prefer
// evicting the line with the most accumulated unchecked reads, so the
// blocks most at risk of uncorrectable errors leave the cache first.
// Ties fall back to LRU.
enum class ReplacementKind { lru, fifo, random_repl, least_error_rate };

struct CacheConfig {
  std::string name = "cache";
  std::size_t capacity_bytes = 32 * 1024;
  std::size_t ways = 4;
  std::size_t block_bytes = 64;
  ReplacementKind replacement = ReplacementKind::lru;

  std::size_t sets() const { return capacity_bytes / (ways * block_bytes); }
};

// Observer for the read path; see core/read_path.hpp for implementations.
class L2PolicyHooks {
 public:
  virtual ~L2PolicyHooks() = default;

  // A read lookup touched this set (parallel-access caches physically read
  // every way). `ways` spans all k lines, valid or not; hit_way is the
  // matching index or -1 on a miss.
  virtual void on_read_lookup(std::span<CacheLine> ways, int hit_way) = 0;

  // A write lookup (L1 writeback / store update) touched this set; on a hit
  // the line is about to be rewritten. Write lookups compare tags but do
  // not read the data ways, so they cause no concealed reads.
  virtual void on_write_lookup(std::span<CacheLine> ways, int hit_way) = 0;

  // `line` was just filled (metadata and ones already set).
  virtual void on_fill(CacheLine& line) = 0;

  // `line` is about to be evicted (still valid here).
  virtual void on_evict(CacheLine& line) = 0;
};

struct CacheStats {
  std::uint64_t read_lookups = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t write_lookups = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;

  double read_hit_rate() const {
    return read_lookups == 0
               ? 0.0
               : static_cast<double>(read_hits) /
                     static_cast<double>(read_lookups);
  }
};

class SetAssocCache {
 public:
  explicit SetAssocCache(CacheConfig cfg, std::uint64_t seed = 1);

  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  // Policy observer; may be null (L1 caches).
  void set_hooks(L2PolicyHooks* hooks) { hooks_ = hooks; }

  // Ones-count provider for filled/rewritten lines; null keeps ones at a
  // fixed default (half the block bits).
  void set_ones_model(std::function<std::uint32_t(std::uint64_t)> fn) {
    ones_model_ = std::move(fn);
  }

  // Read lookup. Returns hit; does NOT fill on miss (caller decides).
  bool read(std::uint64_t addr);

  // Write lookup. On a hit the line is rewritten in place (dirty, ones
  // refreshed, accumulation cleared). Returns hit.
  bool write(std::uint64_t addr);

  struct Evicted {
    bool any = false;
    bool dirty = false;
    std::uint64_t addr = 0;
  };

  // Installs addr's block, evicting if needed; returns the evicted victim.
  Evicted fill(std::uint64_t addr, bool dirty);

  // True if addr's block is present (no stats/hook side effects).
  bool probe(std::uint64_t addr) const;

  // Invalidates addr's block if present; returns whether it was dirty.
  bool invalidate(std::uint64_t addr);

  // Direct set access for tests and diagnostics.
  std::span<const CacheLine> set_view(std::size_t set) const;
  std::size_t set_of(std::uint64_t addr) const;
  std::uint64_t tag_of(std::uint64_t addr) const;
  std::uint64_t line_addr(std::uint64_t tag, std::size_t set) const;

 private:
  std::span<CacheLine> set_span(std::size_t set);
  int find_way(std::size_t set, std::uint64_t tag) const;
  std::size_t victim_way(std::size_t set);
  std::uint32_t ones_for(std::uint64_t addr) const;
  void touch(CacheLine& line) { line.lru_stamp = ++clock_; }

  CacheConfig cfg_;
  std::size_t sets_;
  unsigned offset_bits_;
  unsigned index_bits_;
  std::vector<CacheLine> lines_;
  CacheStats stats_;
  L2PolicyHooks* hooks_ = nullptr;
  std::function<std::uint32_t(std::uint64_t)> ones_model_;
  std::uint64_t clock_ = 0;
  common::Rng rng_;
};

}  // namespace reap::sim

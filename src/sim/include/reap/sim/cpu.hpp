// Trace-driven in-order core.
//
// One instruction per cycle plus memory stall cycles from the hierarchy --
// the timing fidelity the paper's evaluation needs (it reports no IPC
// results; cycle counts only convert failure-probability sums into MTTF
// and let us confirm REAP's "no performance impact" claim via the L2
// latency each policy reports).
#pragma once

#include <cstdint>

#include "reap/sim/hierarchy.hpp"
#include "reap/trace/record.hpp"

namespace reap::sim {

class TraceCpu {
 public:
  TraceCpu(trace::TraceSource& source, MemoryHierarchy& mem,
           double clock_ghz = 2.0);

  // Executes up to `max_instructions`; stops early at end of trace.
  // Returns instructions executed in this call.
  std::uint64_t run(std::uint64_t max_instructions);

  std::uint64_t instructions() const { return instructions_; }
  std::uint64_t cycles() const { return cycles_; }
  double ipc() const {
    return cycles_ == 0 ? 0.0
                        : static_cast<double>(instructions_) /
                              static_cast<double>(cycles_);
  }
  double seconds() const {
    return static_cast<double>(cycles_) / (clock_ghz_ * 1e9);
  }
  double clock_ghz() const { return clock_ghz_; }

  void reset_counters() { instructions_ = cycles_ = 0; }

 private:
  trace::TraceSource& source_;
  MemoryHierarchy& mem_;
  double clock_ghz_;
  std::uint64_t instructions_ = 0;
  std::uint64_t cycles_ = 0;
  // Instruction boundary seen past the budget, replayed on the next run().
  trace::MemOp pending_{};
  bool pending_valid_ = false;
};

}  // namespace reap::sim

// Trace-driven in-order core.
//
// One instruction per cycle plus memory stall cycles from the hierarchy --
// the timing fidelity the paper's evaluation needs (it reports no IPC
// results; cycle counts only convert failure-probability sums into MTTF
// and let us confirm REAP's "no performance impact" claim via the L2
// latency each policy reports).
//
// Three drive styles share one core:
//   run(n)          -- the legacy loop: one virtual TraceSource::next per
//                      op, L2 policy dispatched through the configured
//                      runtime hooks. Kept as the reference path for the
//                      golden-equivalence test and bench_e2e baseline.
//   run(n, policy)  -- the batched loop: ops are pulled kBatchOps at a
//                      time and the hierarchy is instantiated over the
//                      concrete policy type, so the whole instruction ->
//                      L1 -> L2 -> policy path inlines with no per-op
//                      virtual dispatch.
//   run_vectorized(n, policy)
//                   -- the batched loop plus a vectorizable pre-pass per
//                      batch (simd::predecode: each op's L2 set/tagv into
//                      flat arrays), a software prefetch of the set
//                      columns a fixed distance ahead, and pre-decoded L2
//                      lookups (L2Hint) instead of per-access address
//                      derivation. Byte-identical results to run(n,
//                      policy) -- only the host-side schedule changes.
// The per-op style must not be mixed with the batched styles on one
// TraceCpu instance: each buffers upcoming ops in its own member
// (pending_ vs batch buffer) and would skip what the other buffered. The
// two batched styles share the batch buffer and may be mixed.
#pragma once

#include <cstdint>
#include <vector>

#include "reap/sim/hierarchy.hpp"
#include "reap/sim/simd.hpp"
#include "reap/trace/record.hpp"

namespace reap::sim {

class TraceCpu {
 public:
  TraceCpu(trace::TraceSource& source, MemoryHierarchy& mem,
           double clock_ghz = 2.0);

  // Ops pulled per TraceSource::next_batch call in the batched loop.
  static constexpr std::size_t kBatchOps = 4096;

  // How many ops ahead run_vectorized prefetches the L2 set columns.
  // Far enough that the lines arrive before the op needs them (several
  // ops' worth of simulation work), near enough that they are not evicted
  // again in between.
  static constexpr std::size_t kPrefetchAhead = 8;

  // Executes up to `max_instructions`; stops early at end of trace.
  // Returns instructions executed in this call.
  std::uint64_t run(std::uint64_t max_instructions);

  // Batched variant driving the L2 with a concrete policy type.
  template <class L2Hooks>
  std::uint64_t run(std::uint64_t max_instructions, L2Hooks& l2_hooks) {
    if (buf_.empty()) buf_.resize(kBatchOps);
    std::uint64_t executed = 0;
    for (;;) {
      if (buf_pos_ == buf_len_) {
        buf_len_ = source_.next_batch({buf_.data(), buf_.size()});
        buf_pos_ = 0;
        pre_len_ = 0;  // a fresh batch invalidates any pre-decode
        if (buf_len_ == 0) break;  // end of trace
      }
      const trace::MemOp op = buf_[buf_pos_];
      switch (op.type) {
        case trace::OpType::inst_fetch:
          // An instruction boundary past the budget stays buffered for the
          // next run() call so the current instruction's data ops stay
          // with it.
          if (executed == max_instructions) return executed;
          ++buf_pos_;
          ++executed;
          ++instructions_;
          cycles_ += 1 + mem_.inst_fetch(op.addr, l2_hooks);
          break;
        case trace::OpType::load:
          ++buf_pos_;
          cycles_ += mem_.load(op.addr, l2_hooks);
          break;
        case trace::OpType::store:
          ++buf_pos_;
          cycles_ += mem_.store(op.addr, l2_hooks);
          break;
      }
    }
    return executed;
  }

  // Vectorized batched loop: pre-decode the whole batch, prefetch ahead,
  // indirect the L2 demand path through the pre-decoded coordinates. Op
  // consumption and budget semantics are exactly run(n, policy)'s.
  template <class L2Hooks>
  std::uint64_t run_vectorized(std::uint64_t max_instructions,
                               L2Hooks& l2_hooks) {
    if (buf_.empty()) buf_.resize(kBatchOps);
    if (pre_set_.empty()) {
      pre_set_.resize(kBatchOps);
      pre_tagv_.resize(kBatchOps);
    }
    const SetAssocCache& l2 = mem_.l2();
    // A batch buffered by a previous run(n, policy) call has no decode
    // arrays yet; (re-)decode it so the two batched styles can hand off.
    if (buf_len_ != 0 && pre_len_ != buf_len_) {
      simd::predecode(buf_.data(), buf_len_, l2.offset_bits(),
                      l2.index_bits(), pre_set_.data(), pre_tagv_.data());
      pre_len_ = buf_len_;
    }
    std::uint64_t executed = 0;
    for (;;) {
      if (buf_pos_ == buf_len_) {
        buf_len_ = source_.next_batch({buf_.data(), buf_.size()});
        buf_pos_ = 0;
        if (buf_len_ == 0) break;  // end of trace
        // The pre-pass: pure shifts/masks over the fresh batch, hoisting
        // every op's L2 set/tagv derivation out of the access path.
        simd::predecode(buf_.data(), buf_len_, l2.offset_bits(),
                        l2.index_bits(), pre_set_.data(), pre_tagv_.data());
        pre_len_ = buf_len_;
      }
      // Pull the metadata an op will touch kPrefetchAhead ops from now --
      // its L2 set columns and its block's ones-memo slot; the
      // intervening (independent) ops hide the miss latency.
      if (buf_pos_ + kPrefetchAhead < buf_len_) {
        const std::size_t ahead = buf_pos_ + kPrefetchAhead;
        mem_.prefetch_l2(pre_set_[ahead], buf_[ahead].addr);
      }
      const trace::MemOp op = buf_[buf_pos_];
      const L2Hint hint{pre_set_[buf_pos_], pre_tagv_[buf_pos_]};
      switch (op.type) {
        case trace::OpType::inst_fetch:
          if (executed == max_instructions) return executed;
          ++buf_pos_;
          ++executed;
          ++instructions_;
          cycles_ += 1 + mem_.inst_fetch(op.addr, l2_hooks, hint);
          break;
        case trace::OpType::load:
          ++buf_pos_;
          cycles_ += mem_.load(op.addr, l2_hooks, hint);
          break;
        case trace::OpType::store:
          ++buf_pos_;
          cycles_ += mem_.store(op.addr, l2_hooks, hint);
          break;
      }
    }
    return executed;
  }

  std::uint64_t instructions() const { return instructions_; }
  std::uint64_t cycles() const { return cycles_; }
  double ipc() const {
    return cycles_ == 0 ? 0.0
                        : static_cast<double>(instructions_) /
                              static_cast<double>(cycles_);
  }
  double seconds() const {
    return static_cast<double>(cycles_) / (clock_ghz_ * 1e9);
  }
  double clock_ghz() const { return clock_ghz_; }

  void reset_counters() { instructions_ = cycles_ = 0; }

 private:
  trace::TraceSource& source_;
  MemoryHierarchy& mem_;
  double clock_ghz_;
  std::uint64_t instructions_ = 0;
  std::uint64_t cycles_ = 0;
  // Legacy path: instruction boundary seen past the budget, replayed on
  // the next run() call.
  trace::MemOp pending_{};
  bool pending_valid_ = false;
  // Batched path: buffered ops not yet consumed.
  std::vector<trace::MemOp> buf_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
  // Vectorized path: the batch's pre-decoded L2 coordinates (valid for
  // buf_[0..pre_len_)).
  std::vector<std::uint32_t> pre_set_;
  std::vector<std::uint64_t> pre_tagv_;
  std::size_t pre_len_ = 0;
};

}  // namespace reap::sim

// Trace-driven in-order core.
//
// One instruction per cycle plus memory stall cycles from the hierarchy --
// the timing fidelity the paper's evaluation needs (it reports no IPC
// results; cycle counts only convert failure-probability sums into MTTF
// and let us confirm REAP's "no performance impact" claim via the L2
// latency each policy reports).
//
// Two drive styles share one core:
//   run(n)          -- the legacy loop: one virtual TraceSource::next per
//                      op, L2 policy dispatched through the configured
//                      runtime hooks. Kept as the reference path for the
//                      golden-equivalence test and bench_e2e baseline.
//   run(n, policy)  -- the batched loop: ops are pulled kBatchOps at a
//                      time and the hierarchy is instantiated over the
//                      concrete policy type, so the whole instruction ->
//                      L1 -> L2 -> policy path inlines with no per-op
//                      virtual dispatch.
// The two styles must not be mixed on one TraceCpu instance: each buffers
// upcoming ops in its own member (pending_ vs batch buffer) and would skip
// what the other buffered.
#pragma once

#include <cstdint>
#include <vector>

#include "reap/sim/hierarchy.hpp"
#include "reap/trace/record.hpp"

namespace reap::sim {

class TraceCpu {
 public:
  TraceCpu(trace::TraceSource& source, MemoryHierarchy& mem,
           double clock_ghz = 2.0);

  // Ops pulled per TraceSource::next_batch call in the batched loop.
  static constexpr std::size_t kBatchOps = 4096;

  // Executes up to `max_instructions`; stops early at end of trace.
  // Returns instructions executed in this call.
  std::uint64_t run(std::uint64_t max_instructions);

  // Batched variant driving the L2 with a concrete policy type.
  template <class L2Hooks>
  std::uint64_t run(std::uint64_t max_instructions, L2Hooks& l2_hooks) {
    if (buf_.empty()) buf_.resize(kBatchOps);
    std::uint64_t executed = 0;
    for (;;) {
      if (buf_pos_ == buf_len_) {
        buf_len_ = source_.next_batch({buf_.data(), buf_.size()});
        buf_pos_ = 0;
        if (buf_len_ == 0) break;  // end of trace
      }
      const trace::MemOp op = buf_[buf_pos_];
      switch (op.type) {
        case trace::OpType::inst_fetch:
          // An instruction boundary past the budget stays buffered for the
          // next run() call so the current instruction's data ops stay
          // with it.
          if (executed == max_instructions) return executed;
          ++buf_pos_;
          ++executed;
          ++instructions_;
          cycles_ += 1 + mem_.inst_fetch(op.addr, l2_hooks);
          break;
        case trace::OpType::load:
          ++buf_pos_;
          cycles_ += mem_.load(op.addr, l2_hooks);
          break;
        case trace::OpType::store:
          ++buf_pos_;
          cycles_ += mem_.store(op.addr, l2_hooks);
          break;
      }
    }
    return executed;
  }

  std::uint64_t instructions() const { return instructions_; }
  std::uint64_t cycles() const { return cycles_; }
  double ipc() const {
    return cycles_ == 0 ? 0.0
                        : static_cast<double>(instructions_) /
                              static_cast<double>(cycles_);
  }
  double seconds() const {
    return static_cast<double>(cycles_) / (clock_ghz_ * 1e9);
  }
  double clock_ghz() const { return clock_ghz_; }

  void reset_counters() { instructions_ = cycles_ = 0; }

 private:
  trace::TraceSource& source_;
  MemoryHierarchy& mem_;
  double clock_ghz_;
  std::uint64_t instructions_ = 0;
  std::uint64_t cycles_ = 0;
  // Legacy path: instruction boundary seen past the budget, replayed on
  // the next run() call.
  trace::MemOp pending_{};
  bool pending_valid_ = false;
  // Batched path: buffered ops not yet consumed.
  std::vector<trace::MemOp> buf_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
};

}  // namespace reap::sim

// Two-level memory hierarchy matching the paper's Table I:
//   L1I / L1D: 32KB 4-way SRAM, 64B blocks, write-back
//   L2:        1MB 8-way STT-MRAM, 64B blocks, write-back, shared
//
// Write-allocate everywhere; non-inclusive (an L2 eviction does not
// back-invalidate L1, matching the simple gem5 classic-cache behaviour the
// paper's setup uses). The L2 read path invokes the L2 policy hooks so
// read-path policies can track disturbance accumulation.
//
// The access paths are templates over the L2 hooks type: the experiment
// engine instantiates them with a concrete policy (no virtual dispatch per
// access), while the untemplated overloads keep the runtime-observer
// behaviour by routing through VirtualHooks. L1 accesses always use
// NullHooks — policies observe the L2 only.
#pragma once

#include <cstdint>

#include "reap/sim/cache.hpp"

namespace reap::sim {

struct HierarchyConfig {
  CacheConfig l1i{.name = "L1I",
                  .capacity_bytes = 32 * 1024,
                  .ways = 4,
                  .block_bytes = 64};
  CacheConfig l1d{.name = "L1D",
                  .capacity_bytes = 32 * 1024,
                  .ways = 4,
                  .block_bytes = 64};
  CacheConfig l2{.name = "L2",
                 .capacity_bytes = 1024 * 1024,
                 .ways = 8,
                 .block_bytes = 64};

  // Stall cycles beyond the pipelined L1 hit.
  std::uint32_t l2_hit_cycles = 10;
  std::uint32_t mem_cycles = 150;
};

struct HierarchyStats {
  CacheStats l1i;
  CacheStats l1d;
  CacheStats l2;
  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writes = 0;
};

// Pre-decoded L2 coordinates of a demand address, produced by the batch
// pre-decode pass (simd::predecode over the L2 geometry). Must equal
// l2.set_of(addr) / l2.tagv_of(addr) for the op's address; only the
// demand path uses it -- writeback addresses (which differ) re-derive.
struct L2Hint {
  std::uint32_t set = 0;
  std::uint64_t tagv = 0;
};

class MemoryHierarchy {
 public:
  MemoryHierarchy(HierarchyConfig cfg, std::uint64_t seed = 1);

  // Runtime observer for the L2 read path; used by the untemplated access
  // overloads.
  void set_l2_hooks(L2PolicyHooks* hooks) { l2_.set_hooks(hooks); }

  // Ones-count provider for L2 lines (the data-value model).
  void set_l2_ones_provider(OnesProvider provider) {
    l2_.set_ones_provider(provider);
  }

  // Override the L2 hit latency (read-path policies differ here).
  void set_l2_hit_cycles(std::uint32_t cycles) { cfg_.l2_hit_cycles = cycles; }

  // Each returns stall cycles beyond the 1-cycle pipelined issue. The
  // templated forms drive the L2 with a concrete policy; the untemplated
  // forms use the hooks configured via set_l2_hooks.
  //
  // The un-hinted forms run the caches' scalar kernel flavor
  // (cache.hpp): they serve the legacy per-op loop and the plain batched
  // loop, which together are the pre-vectorization reference engine the
  // vectorized path is benchmarked against. The hinted forms (below) are
  // the production path and use the wide kernels. Both flavors are
  // value-identical.
  template <class L2Hooks>
  std::uint64_t inst_fetch(std::uint64_t pc, L2Hooks& l2_hooks) {
    // Fetch-buffer model: sequential fetches within the current block do
    // not re-access L1I (a real front end reads a whole fetch group at
    // once). Shift, not divide: this runs once per instruction, and the
    // block size is a power of two (the cache constructor enforces it).
    const std::uint64_t block = pc >> fetch_block_bits_;
    if (block == last_fetch_block_) return 0;
    last_fetch_block_ = block;
    return l1_access<false>(l1i_, pc, /*is_store=*/false, l2_hooks);
  }

  template <class L2Hooks>
  std::uint64_t load(std::uint64_t addr, L2Hooks& l2_hooks) {
    return l1_access<false>(l1d_, addr, /*is_store=*/false, l2_hooks);
  }

  template <class L2Hooks>
  std::uint64_t store(std::uint64_t addr, L2Hooks& l2_hooks) {
    return l1_access<false>(l1d_, addr, /*is_store=*/true, l2_hooks);
  }

  // Pre-decoded forms: identical behaviour, but an L1 miss looks the L2
  // up through the hint instead of re-deriving set/tag from the address.
  template <class L2Hooks>
  std::uint64_t inst_fetch(std::uint64_t pc, L2Hooks& l2_hooks, L2Hint hint) {
    const std::uint64_t block = pc >> fetch_block_bits_;
    if (block == last_fetch_block_) return 0;
    last_fetch_block_ = block;
    return l1_access(l1i_, pc, /*is_store=*/false, l2_hooks, hint);
  }

  template <class L2Hooks>
  std::uint64_t load(std::uint64_t addr, L2Hooks& l2_hooks, L2Hint hint) {
    return l1_access(l1d_, addr, /*is_store=*/false, l2_hooks, hint);
  }

  template <class L2Hooks>
  std::uint64_t store(std::uint64_t addr, L2Hooks& l2_hooks, L2Hint hint) {
    return l1_access(l1d_, addr, /*is_store=*/true, l2_hooks, hint);
  }

  // Prefetch the L2-side state an upcoming op may touch (from the batch
  // pre-decode): the set's metadata columns and the ones-memo slot the
  // op's block maps to (the fill path probes it on every L2 miss and
  // write hit). Pure latency hints, no semantic effect.
  void prefetch_l2(std::size_t set, std::uint64_t addr) const {
    l2_.prefetch_set(set);
    l2_.prefetch_ones(addr);
  }

  std::uint64_t inst_fetch(std::uint64_t pc) {
    VirtualHooks h{l2_.hooks()};
    return inst_fetch(pc, h);
  }
  std::uint64_t load(std::uint64_t addr) {
    VirtualHooks h{l2_.hooks()};
    return load(addr, h);
  }
  std::uint64_t store(std::uint64_t addr) {
    VirtualHooks h{l2_.hooks()};
    return store(addr, h);
  }

  HierarchyStats stats() const;
  void reset_stats();

  SetAssocCache& l2() { return l2_; }
  const SetAssocCache& l2() const { return l2_; }
  SetAssocCache& l1d() { return l1d_; }
  SetAssocCache& l1i() { return l1i_; }
  const HierarchyConfig& config() const { return cfg_; }

 private:
  // L1 access; on miss goes to L2. Returns stall cycles. kVector picks
  // the cache kernel flavor for every lookup on the path.
  template <bool kVector, class L2Hooks>
  std::uint64_t l1_access(SetAssocCache& l1, std::uint64_t addr, bool is_store,
                          L2Hooks& l2_hooks) {
    NullHooks l1_hooks;
    if (is_store ? l1.write<kVector>(addr, l1_hooks)
                 : l1.read<kVector>(addr, l1_hooks))
      return 0;

    // L1 miss: fetch the block from L2 (write-allocate on stores too).
    const std::uint64_t stall = l2_read<kVector>(addr, l2_hooks);
    const SetAssocCache::Evicted ev =
        l1.fill<kVector>(addr, /*dirty=*/is_store, l1_hooks);
    if (ev.any && ev.dirty) l2_write<kVector>(ev.addr, l2_hooks);
    if (is_store) {
      // The allocating store dirties the freshly-filled line.
      l1.write<kVector>(addr, l1_hooks);
    }
    return stall;
  }

  // Hinted variant: the demand-path L2 lookup goes through the
  // pre-decoded coordinates; everything else (fills, writebacks, the L1
  // walk) is the exact same code, on the vector kernel flavor.
  template <class L2Hooks>
  std::uint64_t l1_access(SetAssocCache& l1, std::uint64_t addr, bool is_store,
                          L2Hooks& l2_hooks, L2Hint hint) {
    NullHooks l1_hooks;
    if (is_store ? l1.write(addr, l1_hooks) : l1.read(addr, l1_hooks))
      return 0;

    const std::uint64_t stall = l2_read(addr, l2_hooks, hint);
    const SetAssocCache::Evicted ev =
        l1.fill(addr, /*dirty=*/is_store, l1_hooks);
    if (ev.any && ev.dirty) l2_write<true>(ev.addr, l2_hooks);
    if (is_store) {
      l1.write(addr, l1_hooks);
    }
    return stall;
  }

  // L2 read request (from an L1 fill). Returns stall cycles.
  template <bool kVector, class L2Hooks>
  std::uint64_t l2_read(std::uint64_t addr, L2Hooks& l2_hooks) {
    if (l2_.read<kVector>(addr, l2_hooks)) return cfg_.l2_hit_cycles;

    ++mem_reads_;
    const SetAssocCache::Evicted ev =
        l2_.fill<kVector>(addr, /*dirty=*/false, l2_hooks);
    if (ev.any && ev.dirty) ++mem_writes_;
    return cfg_.mem_cycles;
  }

  template <class L2Hooks>
  std::uint64_t l2_read(std::uint64_t addr, L2Hooks& l2_hooks, L2Hint hint) {
    if (l2_.read_pre(hint.set, hint.tagv, l2_hooks)) return cfg_.l2_hit_cycles;

    ++mem_reads_;
    const SetAssocCache::Evicted ev = l2_.fill(addr, /*dirty=*/false, l2_hooks);
    if (ev.any && ev.dirty) ++mem_writes_;
    return cfg_.mem_cycles;
  }

  // L2 write request (L1 dirty writeback). Off the critical path.
  template <bool kVector, class L2Hooks>
  void l2_write(std::uint64_t addr, L2Hooks& l2_hooks) {
    if (l2_.write<kVector>(addr, l2_hooks)) return;

    // Write-allocate: fetch, install dirty. (The fetch is a memory read,
    // not an L2 data-array read, so it does not disturb resident lines.)
    ++mem_reads_;
    const SetAssocCache::Evicted ev =
        l2_.fill<kVector>(addr, /*dirty=*/true, l2_hooks);
    if (ev.any && ev.dirty) ++mem_writes_;
  }

  HierarchyConfig cfg_;
  SetAssocCache l1i_;
  SetAssocCache l1d_;
  SetAssocCache l2_;
  unsigned fetch_block_bits_ = 6;
  std::uint64_t mem_reads_ = 0;
  std::uint64_t mem_writes_ = 0;
  std::uint64_t last_fetch_block_ = ~std::uint64_t{0};
};

}  // namespace reap::sim

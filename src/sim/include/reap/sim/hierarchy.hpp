// Two-level memory hierarchy matching the paper's Table I:
//   L1I / L1D: 32KB 4-way SRAM, 64B blocks, write-back
//   L2:        1MB 8-way STT-MRAM, 64B blocks, write-back, shared
//
// Write-allocate everywhere; non-inclusive (an L2 eviction does not
// back-invalidate L1, matching the simple gem5 classic-cache behaviour the
// paper's setup uses). The L2 read path invokes the configured
// L2PolicyHooks so read-path policies can track disturbance accumulation.
#pragma once

#include <cstdint>
#include <functional>

#include "reap/sim/cache.hpp"

namespace reap::sim {

struct HierarchyConfig {
  CacheConfig l1i{.name = "L1I",
                  .capacity_bytes = 32 * 1024,
                  .ways = 4,
                  .block_bytes = 64};
  CacheConfig l1d{.name = "L1D",
                  .capacity_bytes = 32 * 1024,
                  .ways = 4,
                  .block_bytes = 64};
  CacheConfig l2{.name = "L2",
                 .capacity_bytes = 1024 * 1024,
                 .ways = 8,
                 .block_bytes = 64};

  // Stall cycles beyond the pipelined L1 hit.
  std::uint32_t l2_hit_cycles = 10;
  std::uint32_t mem_cycles = 150;
};

struct HierarchyStats {
  CacheStats l1i;
  CacheStats l1d;
  CacheStats l2;
  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writes = 0;
};

class MemoryHierarchy {
 public:
  MemoryHierarchy(HierarchyConfig cfg, std::uint64_t seed = 1);

  // Observer for the L2 read path (the policy under study).
  void set_l2_hooks(L2PolicyHooks* hooks) { l2_.set_hooks(hooks); }

  // Ones-count provider for L2 lines (the data-value model).
  void set_l2_ones_model(std::function<std::uint32_t(std::uint64_t)> fn) {
    l2_.set_ones_model(std::move(fn));
  }

  // Override the L2 hit latency (read-path policies differ here).
  void set_l2_hit_cycles(std::uint32_t cycles) { cfg_.l2_hit_cycles = cycles; }

  // Each returns stall cycles beyond the 1-cycle pipelined issue.
  std::uint64_t inst_fetch(std::uint64_t pc);
  std::uint64_t load(std::uint64_t addr);
  std::uint64_t store(std::uint64_t addr);

  HierarchyStats stats() const;
  void reset_stats();

  SetAssocCache& l2() { return l2_; }
  const SetAssocCache& l2() const { return l2_; }
  SetAssocCache& l1d() { return l1d_; }
  SetAssocCache& l1i() { return l1i_; }
  const HierarchyConfig& config() const { return cfg_; }

 private:
  // L1 access; on miss goes to L2. Returns stall cycles.
  std::uint64_t l1_access(SetAssocCache& l1, std::uint64_t addr,
                          bool is_store);
  // L2 read request (from an L1 fill). Returns stall cycles.
  std::uint64_t l2_read(std::uint64_t addr);
  // L2 write request (L1 dirty writeback). Off the critical path.
  void l2_write(std::uint64_t addr);

  HierarchyConfig cfg_;
  SetAssocCache l1i_;
  SetAssocCache l1d_;
  SetAssocCache l2_;
  std::uint64_t mem_reads_ = 0;
  std::uint64_t mem_writes_ = 0;
  std::uint64_t last_fetch_block_ = ~std::uint64_t{0};
};

}  // namespace reap::sim

// Portable vector kernels for the policy hot loop.
//
// The simulated-L2 metadata scans are the hot path's residual cost (see
// docs/performance.md "Vectorized hot loop"): every lookup scans a set's
// (tag << 1 | valid) column, and every read lookup walks the same set's
// LineRel column. Both columns are flat arrays shaped for wide scans, so
// this header provides the wide scans:
//
//   find_way           vector tag-column scan (whole set per compare)
//   victim_min         vector first-minimum scan (the LRU victim pick)
//   accumulate_valid   vector reads_since_check += valid_bit over a set
//   predecode          batch address -> (set, tagv) pre-pass
//   prefetch           software prefetch of the next op's set columns
//   AlignedVec         64 B-aligned column storage
//   padded_ways        per-set column stride (vector-safe, line-aware)
//
// Implementation is GCC/Clang vector extensions -- no intrinsics, no ISA
// dispatch; the compiler lowers the 256-bit ops to whatever the target
// has. The scalar forms (find_way_scalar, accumulate_valid_scalar) are
// always compiled: they are the reference the fuzz test compares against
// and the fallback when REAP_SIMD is off or the platform is unsuitable
// (non-little-endian, other compilers). Every kernel is value-identical
// to its scalar form -- same result, same memory effects -- so a scalar
// build is byte-identical to a vector build (architecture invariant 7,
// pinned by tests/sim/test_simd.cpp and the CI scalar-fallback leg).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <type_traits>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "reap/common/assert.hpp"
#include "reap/trace/record.hpp"

// REAP_SIMD is defined (=1) by CMake's -DREAP_SIMD=ON (the default) on
// GCC/Clang. The vector path additionally requires little-endian: the
// LineRel accumulate treats {ones, reads_since_check} as one 64-bit lane.
#if defined(REAP_SIMD) && defined(__GNUC__) && \
    (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
#define REAP_SIMD_VECTOR 1
#else
#define REAP_SIMD_VECTOR 0
#endif

namespace reap::sim::simd {

inline constexpr bool kEnabled = REAP_SIMD_VECTOR != 0;

// Host cache line the metadata layout targets.
inline constexpr std::size_t kLineBytes = 64;

// u64 lanes per vector op (256-bit).
inline constexpr std::size_t kLanes = 4;

// Per-set column stride in entries. Rounding the stride up to a multiple
// of the vector width makes every whole-set scan safe to run in full
// vectors (padding entries are zero, which never matches a valid key --
// those are odd); keeping 8-byte entries at a 64 B-aligned base means an
// 8-way set's tag column (and its LineRel column) is exactly one host
// line, and a 4-way set's 32 B column never straddles two. The padding is
// applied in scalar builds too, so the layout -- and thus every observable
// result -- is structurally identical across REAP_SIMD settings.
inline constexpr std::size_t padded_ways(std::size_t ways) {
  return (ways + kLanes - 1) & ~(kLanes - 1);
}

// 64 B-aligned, zero-initialized storage for the hot columns. Only what
// the cache needs: construct-with-size, data/index access. Zero bytes are
// the columns' reset state (invalid tagv, LineRel{0,0}).
template <class T>
class AlignedVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);

 public:
  AlignedVec() = default;
  explicit AlignedVec(std::size_t n) : size_(n) {
    // std::aligned_alloc requires the size to be a multiple of the
    // alignment; round up (the tail is never addressed through T).
    const std::size_t bytes =
        (n * sizeof(T) + kLineBytes - 1) & ~(kLineBytes - 1);
    ptr_.reset(static_cast<T*>(std::aligned_alloc(kLineBytes, bytes)));
    REAP_EXPECTS(ptr_ != nullptr);
    std::memset(static_cast<void*>(ptr_.get()), 0, bytes);
  }

  T* data() { return ptr_.get(); }
  const T* data() const { return ptr_.get(); }
  T& operator[](std::size_t i) { return ptr_.get()[i]; }
  const T& operator[](std::size_t i) const { return ptr_.get()[i]; }
  std::size_t size() const { return size_; }

 private:
  struct Free {
    void operator()(T* p) const { std::free(p); }
  };
  std::unique_ptr<T, Free> ptr_;
  std::size_t size_ = 0;
};

// Software prefetch (read intent). A hint, never a semantic effect.
inline void prefetch(const void* p) {
#if defined(__GNUC__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

// --- find_way -------------------------------------------------------------
//
// First index w in [0, ways) with tagv[w] == key, else -1. `key` must be a
// valid lookup key, i.e. odd ((tag << 1) | 1): padding and invalid entries
// are zero and therefore can never match.

inline int find_way_scalar(const std::uint64_t* tagv, std::size_t ways,
                           std::uint64_t key) {
  for (std::size_t w = 0; w < ways; ++w) {
    if (tagv[w] == key) return static_cast<int>(w);
  }
  return -1;
}

#if REAP_SIMD_VECTOR

namespace detail {

typedef std::uint64_t v4u64 __attribute__((vector_size(32)));

inline v4u64 load4(const std::uint64_t* p) {
  v4u64 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store4(std::uint64_t* p, v4u64 v) { std::memcpy(p, &v, sizeof(v)); }

// 4-bit match mask of v == key (bit i set when lane i matches).
inline unsigned match_mask(v4u64 v, v4u64 key) {
  const v4u64 eq = v == key;  // lanes are all-ones / all-zeros
#if defined(__AVX2__)
  // One movemask of the lane sign bits; the generic lane-extract form
  // below compiles to four extracts, which costs more than the whole
  // compare.
  return static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_castsi256_pd((__m256i)eq)));
#else
  return static_cast<unsigned>((eq[0] & 1) | (eq[1] & 2) | (eq[2] & 4) |
                               (eq[3] & 8));
#endif
}

}  // namespace detail

// Vector scan over the padded column: the caller guarantees tagv is
// readable (and zero) up to padded_ways(ways) entries. First-match
// semantics are preserved exactly -- the mask is scanned low lane first.
inline int find_way(const std::uint64_t* tagv, std::size_t ways,
                    std::uint64_t key) {
  // No contract check here: this is the per-access hot path (assert.hpp's
  // convention). Key oddness is by construction (tagv_of) and pinned by
  // the fuzz test.
  const detail::v4u64 splat = {key, key, key, key};
  const std::size_t lanes = padded_ways(ways);
  for (std::size_t base = 0; base < lanes; base += kLanes) {
    const unsigned mask = detail::match_mask(detail::load4(tagv + base), splat);
    if (mask != 0)
      return static_cast<int>(base) + __builtin_ctz(mask);
  }
  return -1;
}

#else  // !REAP_SIMD_VECTOR

inline int find_way(const std::uint64_t* tagv, std::size_t ways,
                    std::uint64_t key) {
  return find_way_scalar(tagv, ways, key);
}

#endif  // REAP_SIMD_VECTOR

// --- victim_min -----------------------------------------------------------
//
// Index of the first minimum in a set's lru-stamp column: the LRU victim
// pick, which runs on every fill (the dominant sim operation on
// low-locality workloads). Invalid ways hold stamp 0 and valid stamps are
// >= 1, so the first invalid way wins naturally; padding lanes hold
// kLruPad, which never wins (stamps are clock values, nowhere near 2^63).
// Stamps staying below 2^63 also means the lanes order correctly under
// signed compares -- the only 64-bit lane compare AVX2 has.

inline constexpr std::uint64_t kLruPad = ~std::uint64_t{0} >> 1;  // INT64_MAX

inline std::size_t victim_min_scalar(const std::uint64_t* stamps,
                                     std::size_t ways) {
  std::size_t v = 0;
  for (std::size_t w = 1; w < ways; ++w) {
    if (stamps[w] < stamps[v]) v = w;
  }
  return v;
}

#if REAP_SIMD_VECTOR

namespace detail {

typedef std::int64_t v4i64 __attribute__((vector_size(32)));

inline v4i64 load4s(const std::uint64_t* p) {
  v4i64 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Lanewise signed min via compare + blend (AVX2 has no 64-bit lane min).
inline v4i64 lanemin(v4i64 a, v4i64 b) {
  const v4i64 take = b < a;  // all-ones where b is smaller
  return (b & take) | (a & ~take);
}

}  // namespace detail

// Vector form over the padded column: lanewise min across the set, a
// register-resident horizontal min (two shuffle+min steps broadcast the
// minimum to every lane), then a first-match scan for its index. The
// strict-< scalar scan keeps the first occurrence of the minimum value,
// and so does the first-match scan -- same victim, exactly.
inline std::size_t victim_min(const std::uint64_t* stamps, std::size_t ways) {
  const std::size_t lanes = padded_ways(ways);
  detail::v4i64 acc = detail::load4s(stamps);
  for (std::size_t base = kLanes; base < lanes; base += kLanes) {
    acc = detail::lanemin(acc, detail::load4s(stamps + base));
  }
  detail::v4i64 m =
      detail::lanemin(acc, __builtin_shufflevector(acc, acc, 2, 3, 0, 1));
  m = detail::lanemin(m, __builtin_shufflevector(m, m, 1, 0, 3, 2));
  const detail::v4u64 splat = (detail::v4u64)m;
  for (std::size_t base = 0; base < lanes; base += kLanes) {
    const unsigned mask =
        detail::match_mask(detail::load4(stamps + base), splat);
    if (mask != 0) return base + __builtin_ctz(mask);
  }
  return 0;  // unreachable: the minimum was read from the column
}

#else  // !REAP_SIMD_VECTOR

inline std::size_t victim_min(const std::uint64_t* stamps, std::size_t ways) {
  return victim_min_scalar(stamps, ways);
}

#endif  // REAP_SIMD_VECTOR

// --- accumulate_valid -----------------------------------------------------
//
// The policy accumulation loop: for each way, reads_since_check +=
// valid_bit. `rel` points at the set's LineRel column viewed as raw bytes
// (8 B per line: ones in the low word, reads_since_check in the high word
// on little-endian). Adding (valid_bit << 32) per 64-bit lane is exactly
// the scalar uint32 increment -- the carry out of bit 63 is discarded just
// as the uint32 wrap discards it, and the low word is untouched.

inline void accumulate_valid_scalar(const std::uint64_t* tagv, void* rel,
                                    std::size_t ways) {
  unsigned char* bytes = static_cast<unsigned char*>(rel);
  for (std::size_t w = 0; w < ways; ++w) {
    std::uint32_t reads;
    std::memcpy(&reads, bytes + w * 8 + 4, sizeof(reads));
    reads += static_cast<std::uint32_t>(tagv[w] & 1);
    std::memcpy(bytes + w * 8 + 4, &reads, sizeof(reads));
  }
}

#if REAP_SIMD_VECTOR

// Vector form over the padded columns (caller guarantees both columns are
// valid up to padded_ways(ways) entries). Padding lanes have tagv 0, so
// their increment is zero: writing them back is a no-op by value.
inline void accumulate_valid(const std::uint64_t* tagv, void* rel,
                             std::size_t ways) {
  std::uint64_t* lanes64 = static_cast<std::uint64_t*>(rel);
  const std::size_t lanes = padded_ways(ways);
  const detail::v4u64 one = {1, 1, 1, 1};
  for (std::size_t base = 0; base < lanes; base += kLanes) {
    const detail::v4u64 valid = detail::load4(tagv + base) & one;
    detail::v4u64 r = detail::load4(lanes64 + base);
    r += valid << 32;
    detail::store4(lanes64 + base, r);
  }
}

#else  // !REAP_SIMD_VECTOR

inline void accumulate_valid(const std::uint64_t* tagv, void* rel,
                             std::size_t ways) {
  accumulate_valid_scalar(tagv, rel, ways);
}

#endif  // REAP_SIMD_VECTOR

// --- predecode ------------------------------------------------------------
//
// Batch address pre-decode: set index and lookup key for each op of a
// batch against one cache geometry (the L2's). Pure shifts and masks with
// no data-dependent branches -- the loop pipelines/vectorizes freely --
// and the outputs are exactly set_of(addr) / tagv_of(addr), just hoisted
// out of the per-access path so the hot loop can indirect through them
// and prefetch ahead.

struct DecodedAddr {
  std::uint32_t set = 0;
  std::uint64_t tagv = 0;
};

inline void predecode(const trace::MemOp* ops, std::size_t n,
                      unsigned offset_bits, unsigned index_bits,
                      std::uint32_t* set_out, std::uint64_t* tagv_out) {
  const std::uint64_t set_mask = (std::uint64_t{1} << index_bits) - 1;
  const unsigned tag_shift = offset_bits + index_bits;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t addr = ops[i].addr;
    set_out[i] = static_cast<std::uint32_t>((addr >> offset_bits) & set_mask);
    tagv_out[i] = ((addr >> tag_shift) << 1) | 1;
  }
}

}  // namespace reap::sim::simd

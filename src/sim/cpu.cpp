#include "reap/sim/cpu.hpp"

#include "reap/common/assert.hpp"

namespace reap::sim {

TraceCpu::TraceCpu(trace::TraceSource& source, MemoryHierarchy& mem,
                   double clock_ghz)
    : source_(source), mem_(mem), clock_ghz_(clock_ghz) {
  REAP_EXPECTS(clock_ghz > 0.0);
}

std::uint64_t TraceCpu::run(std::uint64_t max_instructions) {
  std::uint64_t executed = 0;
  trace::MemOp op;
  for (;;) {
    if (pending_valid_) {
      op = pending_;
      pending_valid_ = false;
    } else if (!source_.next(op)) {
      break;
    }
    switch (op.type) {
      case trace::OpType::inst_fetch:
        // An instruction boundary past the budget is deferred to the next
        // run() call so the current instruction's data ops stay with it.
        if (executed == max_instructions) {
          pending_ = op;
          pending_valid_ = true;
          return executed;
        }
        ++executed;
        ++instructions_;
        cycles_ += 1 + mem_.inst_fetch(op.addr);
        break;
      case trace::OpType::load:
        cycles_ += mem_.load(op.addr);
        break;
      case trace::OpType::store:
        cycles_ += mem_.store(op.addr);
        break;
    }
  }
  return executed;
}

}  // namespace reap::sim

#include "reap/sim/hierarchy.hpp"

#include <bit>

namespace reap::sim {

MemoryHierarchy::MemoryHierarchy(HierarchyConfig cfg, std::uint64_t seed)
    : cfg_(cfg),
      l1i_(cfg.l1i, seed * 3 + 1),
      l1d_(cfg.l1d, seed * 5 + 2),
      l2_(cfg.l2, seed * 7 + 3),
      fetch_block_bits_(
          static_cast<unsigned>(std::countr_zero(cfg.l1i.block_bytes))) {}

HierarchyStats MemoryHierarchy::stats() const {
  HierarchyStats s;
  s.l1i = l1i_.stats();
  s.l1d = l1d_.stats();
  s.l2 = l2_.stats();
  s.mem_reads = mem_reads_;
  s.mem_writes = mem_writes_;
  return s;
}

void MemoryHierarchy::reset_stats() {
  l1i_.reset_stats();
  l1d_.reset_stats();
  l2_.reset_stats();
  mem_reads_ = 0;
  mem_writes_ = 0;
}

}  // namespace reap::sim

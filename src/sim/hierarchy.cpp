#include "reap/sim/hierarchy.hpp"

namespace reap::sim {

MemoryHierarchy::MemoryHierarchy(HierarchyConfig cfg, std::uint64_t seed)
    : cfg_(cfg),
      l1i_(cfg.l1i, seed * 3 + 1),
      l1d_(cfg.l1d, seed * 5 + 2),
      l2_(cfg.l2, seed * 7 + 3) {}

std::uint64_t MemoryHierarchy::inst_fetch(std::uint64_t pc) {
  // Fetch-buffer model: sequential fetches within the current block do not
  // re-access L1I (a real front end reads a whole fetch group at once).
  const std::uint64_t block = pc / cfg_.l1i.block_bytes;
  if (block == last_fetch_block_) return 0;
  last_fetch_block_ = block;
  return l1_access(l1i_, pc, /*is_store=*/false);
}

std::uint64_t MemoryHierarchy::load(std::uint64_t addr) {
  return l1_access(l1d_, addr, /*is_store=*/false);
}

std::uint64_t MemoryHierarchy::store(std::uint64_t addr) {
  return l1_access(l1d_, addr, /*is_store=*/true);
}

std::uint64_t MemoryHierarchy::l1_access(SetAssocCache& l1, std::uint64_t addr,
                                         bool is_store) {
  if (is_store ? l1.write(addr) : l1.read(addr)) return 0;

  // L1 miss: fetch the block from L2 (write-allocate on stores too).
  const std::uint64_t stall = l2_read(addr);
  const SetAssocCache::Evicted ev = l1.fill(addr, /*dirty=*/is_store);
  if (ev.any && ev.dirty) l2_write(ev.addr);
  if (is_store) {
    // The allocating store dirties the freshly-filled line.
    l1.write(addr);
  }
  return stall;
}

std::uint64_t MemoryHierarchy::l2_read(std::uint64_t addr) {
  if (l2_.read(addr)) return cfg_.l2_hit_cycles;

  ++mem_reads_;
  const SetAssocCache::Evicted ev = l2_.fill(addr, /*dirty=*/false);
  if (ev.any && ev.dirty) ++mem_writes_;
  return cfg_.mem_cycles;
}

void MemoryHierarchy::l2_write(std::uint64_t addr) {
  if (l2_.write(addr)) return;

  // Write-allocate: fetch, install dirty. (The fetch is a memory read, not
  // an L2 data-array read, so it does not disturb resident lines.)
  ++mem_reads_;
  const SetAssocCache::Evicted ev = l2_.fill(addr, /*dirty=*/true);
  if (ev.any && ev.dirty) ++mem_writes_;
}

HierarchyStats MemoryHierarchy::stats() const {
  HierarchyStats s;
  s.l1i = l1i_.stats();
  s.l1d = l1d_.stats();
  s.l2 = l2_.stats();
  s.mem_reads = mem_reads_;
  s.mem_writes = mem_writes_;
  return s;
}

void MemoryHierarchy::reset_stats() {
  l1i_.reset_stats();
  l1d_.reset_stats();
  l2_.reset_stats();
  mem_reads_ = 0;
  mem_writes_ = 0;
}

}  // namespace reap::sim

// STT-MRAM device (MTJ + access transistor) parameter sets.
//
// The cell stores a bit in the relative orientation of the MTJ free layer
// (parallel = '0' low resistance, anti-parallel = '1' high resistance).
// Reads apply a small unidirectional current; because the read direction
// coincides with the write-'0' direction, a read can spuriously switch a
// cell holding '1' -- the read disturbance of the paper (Sec. II, Fig. 1b).
#pragma once

#include <string>
#include <vector>

#include "reap/common/units.hpp"

namespace reap::mtj {

struct MtjParams {
  std::string name;

  // Thermal stability factor Delta = E_barrier / kT. Typical 40..80.
  double delta = 60.0;

  // Critical switching current at 0 K (paper's I_C0).
  common::Amperes critical_current{100e-6};

  // Read current magnitude (paper's I_read); must be < critical_current for
  // a sane design point, the closer it is the higher the disturb rate.
  common::Amperes read_current{69.3e-6};

  // Write current magnitude; > critical_current (over-drive) so the write
  // completes within the pulse with high probability.
  common::Amperes write_current{150e-6};

  // Pulse widths.
  common::Seconds read_pulse{1e-9};    // paper's t_read
  common::Seconds write_pulse{10e-9};

  // Attempt period tau (paper assumes 1 ns).
  common::Seconds attempt_period{1e-9};

  // Sanity bounds used by REAP_EXPECTS checks in the model functions.
  bool valid() const;
};

// Named presets.
//
// paper_default: tuned so the per-cell read-disturb probability comes out at
// 1e-8 -- the value the paper's numerical example (Eq. 4/5) uses.
MtjParams paper_default();

// conservative: larger read margin (I_read = 0.55 I_C0) -> P_RD ~ 1.9e-12.
MtjParams conservative();

// aggressive: scaled node with thin margin (I_read = 0.8 I_C0) -> P_RD ~ 6e-6;
// used by stress tests and the device-corner ablation bench.
MtjParams aggressive();

// Sweep helper: paper_default with read_current set to ratio*I_C0.
MtjParams with_read_ratio(double ratio);

// All presets, for parameterized tests/benches.
std::vector<MtjParams> all_presets();

}  // namespace reap::mtj

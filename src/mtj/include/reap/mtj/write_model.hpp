// Write-failure model for STT-MRAM cells.
//
// Needed by the DisruptiveReadRestore baseline (paper Sec. II, refs [14][15]):
// restore-after-read schemes convert read disturbance into extra writes, and
// each write itself fails to switch with nonzero probability, so the scheme
// trades one reliability problem for another -- exactly the criticism the
// paper levels at it. Supra-critical switching follows the Sun precessional
// model: the non-switching probability decays exponentially with pulse width
// over a characteristic time that shrinks as the over-drive grows.
#pragma once

#include "reap/mtj/mtj_params.hpp"

namespace reap::mtj {

// Probability that a single write pulse fails to switch the cell.
// write_current must exceed critical_current (checked).
double write_failure_probability(const MtjParams& p);

// Mean switching time under the over-driven pulse (diagnostics/benches).
common::Seconds mean_switching_time(const MtjParams& p);

// Energy of one write pulse: I^2 * R_avg * t_pulse with a nominal MTJ+access
// resistance; used by nvsim's STT-MRAM write-energy term.
common::Joules write_pulse_energy(const MtjParams& p, double resistance_ohm);

// Energy of one read pulse.
common::Joules read_pulse_energy(const MtjParams& p, double resistance_ohm);

}  // namespace reap::mtj

// Process-variation extension (paper reference [2]: Cheshmikhani et al.,
// "Investigating the effects of process variations ... on reliability of
// STT-RAM caches", EDCC 2016).
//
// Die-to-die and cell-to-cell variation makes the thermal stability factor
// Delta a random variable; because P_RD depends exponentially on Delta, the
// *average* disturb probability across cells is dominated by the weak tail.
// VariationModel samples per-cell Delta and reports the resulting effective
// disturb statistics. Used by the device-corner ablation bench.
#pragma once

#include <vector>

#include "reap/common/rng.hpp"
#include "reap/mtj/mtj_params.hpp"

namespace reap::mtj {

struct VariationSpec {
  double delta_sigma = 0.0;        // std-dev of per-cell Delta (absolute)
  double delta_floor = 20.0;       // samples are clamped below at this value
};

class VariationModel {
 public:
  VariationModel(MtjParams nominal, VariationSpec spec);

  const MtjParams& nominal() const { return nominal_; }
  const VariationSpec& spec() const { return spec_; }

  // One per-cell Delta draw.
  double sample_delta(common::Rng& rng) const;

  // Per-cell disturb probability for one draw.
  double sample_p_rd(common::Rng& rng) const;

  // Monte Carlo estimate of E[P_RD] over the Delta distribution. With
  // sigma = 0 this equals the nominal closed form exactly.
  double mean_p_rd(common::Rng& rng, std::size_t samples) const;

  // Quantiles of per-cell P_RD (e.g. {0.5, 0.99, 0.999}) from `samples`
  // draws; returned in the same order as `qs`.
  std::vector<double> p_rd_quantiles(common::Rng& rng, std::size_t samples,
                                     const std::vector<double>& qs) const;

 private:
  MtjParams nominal_;
  VariationSpec spec_;
};

}  // namespace reap::mtj

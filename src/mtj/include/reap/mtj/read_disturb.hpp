// Read-disturbance probability model -- the paper's Eq. (1).
//
//   P_RD = 1 - exp( -(t_read / tau) * exp( -Delta * (1 - I_read / I_C0) ) )
//
// Thermal-activation switching under a sub-critical current: the inner
// exponential is the attempt-rate reduction from the current-lowered energy
// barrier; the outer exponential converts rate * time into a switching
// probability. Note on signs: the paper prints the inner exponent as
// -Delta*(I_read - I_C0)/I_C0, which for I_read < I_C0 equals
// +Delta*(1 - I_read/I_C0); the physical model (and the paper's own numbers)
// require the barrier to *shrink* as I_read approaches I_C0, i.e. the form
// implemented here. Disturbance is unidirectional: only cells holding '1'
// are at risk (read current shares the write-'0' direction, Fig. 1b).
#pragma once

#include "reap/mtj/mtj_params.hpp"

namespace reap::mtj {

// Per-read, per-cell disturbance probability (Eq. 1).
double read_disturb_probability(const MtjParams& p);

// Same with an explicit per-cell thermal stability (process variation).
double read_disturb_probability(const MtjParams& p, double delta_cell);

// Probability that a cell holding '1' survives N reads undisturbed:
// (1 - P_RD)^N, computed stably in log space.
double survive_reads(const MtjParams& p, std::uint64_t reads);

// Sensitivity sweep: P_RD as read_current/I_C0 ratio varies over
// [lo_ratio, hi_ratio] in `steps` points (inclusive endpoints).
struct RatioPoint {
  double ratio;
  double p_rd;
};
std::vector<RatioPoint> sweep_read_ratio(const MtjParams& base, double lo_ratio,
                                         double hi_ratio, unsigned steps);

// Sensitivity sweep over thermal stability Delta.
struct DeltaPoint {
  double delta;
  double p_rd;
};
std::vector<DeltaPoint> sweep_delta(const MtjParams& base, double lo_delta,
                                    double hi_delta, unsigned steps);

}  // namespace reap::mtj

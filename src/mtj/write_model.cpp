#include "reap/mtj/write_model.hpp"

#include <cmath>

#include "reap/common/assert.hpp"

namespace reap::mtj {

namespace {
// Characteristic precessional time at 2x over-drive; calibrated so a 10 ns
// pulse at 1.5x over-drive leaves a ~1e-9 write failure probability
// (exp(-10ns / (0.24ns / 0.5)) ~ 9e-10), in the range reported for scaled
// STT-MRAM parts.
constexpr double kTau0Seconds = 0.24e-9;
}  // namespace

double write_failure_probability(const MtjParams& p) {
  REAP_EXPECTS(p.valid());
  const double overdrive = p.write_current / p.critical_current;
  REAP_EXPECTS(overdrive > 1.0);
  // Sun model: switching rate ~ (I/Ic0 - 1)/tau0; P_fail = exp(-t/tau_sw).
  const double tau_sw = kTau0Seconds / (overdrive - 1.0);
  const double exponent = -(p.write_pulse.value / tau_sw);
  // exponent is very negative for sane configs; exp() underflows to 0 for
  // pulses far longer than tau_sw, which is the correct limit.
  return std::exp(exponent);
}

common::Seconds mean_switching_time(const MtjParams& p) {
  REAP_EXPECTS(p.valid());
  const double overdrive = p.write_current / p.critical_current;
  REAP_EXPECTS(overdrive > 1.0);
  return common::Seconds{kTau0Seconds / (overdrive - 1.0)};
}

common::Joules write_pulse_energy(const MtjParams& p, double resistance_ohm) {
  REAP_EXPECTS(resistance_ohm > 0.0);
  const double i = p.write_current.value;
  return common::Joules{i * i * resistance_ohm * p.write_pulse.value};
}

common::Joules read_pulse_energy(const MtjParams& p, double resistance_ohm) {
  REAP_EXPECTS(resistance_ohm > 0.0);
  const double i = p.read_current.value;
  return common::Joules{i * i * resistance_ohm * p.read_pulse.value};
}

}  // namespace reap::mtj

#include "reap/mtj/mtj_params.hpp"

namespace reap::mtj {

bool MtjParams::valid() const {
  return delta > 0.0 && critical_current.value > 0.0 &&
         read_current.value > 0.0 &&
         read_current.value < critical_current.value &&
         write_current.value > critical_current.value &&
         read_pulse.value > 0.0 && write_pulse.value > 0.0 &&
         attempt_period.value > 0.0;
}

MtjParams paper_default() {
  MtjParams p;
  p.name = "paper_default";
  // delta * (1 - I_read/I_C0) = 60 * 0.307 = 18.42 => inner exp = 1e-8;
  // with t_read == tau the full expression stays ~1e-8.
  p.delta = 60.0;
  p.critical_current = common::microamps(100.0);
  p.read_current = common::microamps(69.3);
  p.write_current = common::microamps(150.0);
  p.read_pulse = common::nanoseconds(1.0);
  p.write_pulse = common::nanoseconds(10.0);
  p.attempt_period = common::nanoseconds(1.0);
  return p;
}

MtjParams conservative() {
  MtjParams p = paper_default();
  p.name = "conservative";
  p.read_current = common::microamps(55.0);
  return p;
}

MtjParams aggressive() {
  MtjParams p = paper_default();
  p.name = "aggressive";
  p.read_current = common::microamps(80.0);
  return p;
}

MtjParams with_read_ratio(double ratio) {
  MtjParams p = paper_default();
  p.name = "ratio";
  p.read_current = common::Amperes{p.critical_current.value * ratio};
  return p;
}

std::vector<MtjParams> all_presets() {
  return {paper_default(), conservative(), aggressive()};
}

}  // namespace reap::mtj

#include "reap/mtj/read_disturb.hpp"

#include <cmath>

#include "reap/common/assert.hpp"

namespace reap::mtj {

double read_disturb_probability(const MtjParams& p) {
  return read_disturb_probability(p, p.delta);
}

double read_disturb_probability(const MtjParams& p, double delta_cell) {
  REAP_EXPECTS(p.valid());
  REAP_EXPECTS(delta_cell > 0.0);
  const double ratio = p.read_current / p.critical_current;
  const double barrier = delta_cell * (1.0 - ratio);
  const double rate_scale = std::exp(-barrier);
  const double exponent = -(p.read_pulse / p.attempt_period) * rate_scale;
  return -std::expm1(exponent);  // 1 - exp(exponent), stable for tiny values
}

double survive_reads(const MtjParams& p, std::uint64_t reads) {
  const double prd = read_disturb_probability(p);
  return std::exp(static_cast<double>(reads) * std::log1p(-prd));
}

std::vector<RatioPoint> sweep_read_ratio(const MtjParams& base, double lo_ratio,
                                         double hi_ratio, unsigned steps) {
  REAP_EXPECTS(steps >= 2);
  REAP_EXPECTS(lo_ratio > 0.0 && hi_ratio < 1.0 && lo_ratio < hi_ratio);
  std::vector<RatioPoint> out;
  out.reserve(steps);
  for (unsigned i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(steps - 1);
    const double ratio = lo_ratio + t * (hi_ratio - lo_ratio);
    MtjParams p = base;
    p.read_current = common::Amperes{p.critical_current.value * ratio};
    out.push_back({ratio, read_disturb_probability(p)});
  }
  return out;
}

std::vector<DeltaPoint> sweep_delta(const MtjParams& base, double lo_delta,
                                    double hi_delta, unsigned steps) {
  REAP_EXPECTS(steps >= 2);
  REAP_EXPECTS(lo_delta > 0.0 && lo_delta < hi_delta);
  std::vector<DeltaPoint> out;
  out.reserve(steps);
  for (unsigned i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(steps - 1);
    MtjParams p = base;
    p.delta = lo_delta + t * (hi_delta - lo_delta);
    out.push_back({p.delta, read_disturb_probability(p)});
  }
  return out;
}

}  // namespace reap::mtj

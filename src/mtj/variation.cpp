#include "reap/mtj/variation.hpp"

#include <algorithm>
#include <cmath>

#include "reap/common/assert.hpp"
#include "reap/mtj/read_disturb.hpp"

namespace reap::mtj {

VariationModel::VariationModel(MtjParams nominal, VariationSpec spec)
    : nominal_(std::move(nominal)), spec_(spec) {
  REAP_EXPECTS(nominal_.valid());
  REAP_EXPECTS(spec_.delta_sigma >= 0.0);
  REAP_EXPECTS(spec_.delta_floor > 0.0);
  REAP_EXPECTS(spec_.delta_floor < nominal_.delta);
}

double VariationModel::sample_delta(common::Rng& rng) const {
  if (spec_.delta_sigma == 0.0) return nominal_.delta;
  const double d = rng.normal(nominal_.delta, spec_.delta_sigma);
  return std::max(d, spec_.delta_floor);
}

double VariationModel::sample_p_rd(common::Rng& rng) const {
  return read_disturb_probability(nominal_, sample_delta(rng));
}

double VariationModel::mean_p_rd(common::Rng& rng, std::size_t samples) const {
  REAP_EXPECTS(samples > 0);
  if (spec_.delta_sigma == 0.0) return read_disturb_probability(nominal_);
  double acc = 0.0;
  for (std::size_t i = 0; i < samples; ++i) acc += sample_p_rd(rng);
  return acc / static_cast<double>(samples);
}

std::vector<double> VariationModel::p_rd_quantiles(
    common::Rng& rng, std::size_t samples, const std::vector<double>& qs) const {
  REAP_EXPECTS(samples > 0);
  std::vector<double> draws(samples);
  for (auto& d : draws) d = sample_p_rd(rng);
  std::sort(draws.begin(), draws.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    REAP_EXPECTS(q >= 0.0 && q <= 1.0);
    const double idx = q * static_cast<double>(samples - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, samples - 1);
    const double frac = idx - static_cast<double>(lo);
    out.push_back(draws[lo] * (1.0 - frac) + draws[hi] * frac);
  }
  return out;
}

}  // namespace reap::mtj

#include "reap/reliability/binomial.hpp"

#include <cmath>

#include "reap/common/assert.hpp"
#include "reap/common/logprob.hpp"

namespace reap::reliability {

using common::binomial_tail_above;
using common::log_binomial_cdf_upto;

double p_correct(std::uint64_t trials, unsigned t, double p) {
  return std::exp(log_binomial_cdf_upto(trials, t, p));
}

double p_uncorrectable(std::uint64_t trials, unsigned t, double p) {
  return binomial_tail_above(trials, t, p);
}

double p_correct_block(std::uint64_t n_ones, double p_rd, unsigned t) {
  return p_correct(n_ones, t, p_rd);
}

double p_uncorrectable_block(std::uint64_t n_ones, double p_rd, unsigned t) {
  return p_uncorrectable(n_ones, t, p_rd);
}

double p_correct_block_acc(std::uint64_t n_ones, std::uint64_t n_reads,
                           double p_rd, unsigned t) {
  return p_correct(n_ones * n_reads, t, p_rd);
}

double p_uncorrectable_block_acc(std::uint64_t n_ones, std::uint64_t n_reads,
                                 double p_rd, unsigned t) {
  return p_uncorrectable(n_ones * n_reads, t, p_rd);
}

double p_correct_block_reap(std::uint64_t n_ones, std::uint64_t n_reads,
                            double p_rd, unsigned t) {
  const double lp = log_binomial_cdf_upto(n_ones, t, p_rd);
  return std::exp(static_cast<double>(n_reads) * lp);
}

double p_uncorrectable_block_reap(std::uint64_t n_ones, std::uint64_t n_reads,
                                  double p_rd, unsigned t) {
  const double lp = log_binomial_cdf_upto(n_ones, t, p_rd);
  return -std::expm1(static_cast<double>(n_reads) * lp);
}

UncorrectableModel::UncorrectableModel(double p_rd, unsigned t,
                                       std::uint64_t max_cached_ones)
    : p_rd_(p_rd), t_(t) {
  REAP_EXPECTS(p_rd >= 0.0 && p_rd < 1.0);
  REAP_EXPECTS(max_cached_ones >= 1);
  log_pcorr_cache_.resize(max_cached_ones + 1);
  for (std::uint64_t n = 0; n <= max_cached_ones; ++n) {
    log_pcorr_cache_[n] = log_binomial_cdf_upto(n, t_, p_rd_);
  }
}

double UncorrectableModel::log_p_correct_single(std::uint64_t n_ones) const {
  if (n_ones < log_pcorr_cache_.size()) return log_pcorr_cache_[n_ones];
  return log_binomial_cdf_upto(n_ones, t_, p_rd_);
}

double UncorrectableModel::single(std::uint64_t n_ones) const {
  return -std::expm1(log_p_correct_single(n_ones));
}

double UncorrectableModel::conventional(std::uint64_t n_ones,
                                        std::uint64_t n_reads) const {
  // Eq. (3)'s tail depends only on the total trial count; memoize on it.
  const std::uint64_t trials = n_ones * n_reads;
  if (const double* hit = conv_memo_.find(trials)) return *hit;
  const double v = binomial_tail_above(trials, t_, p_rd_);
  conv_memo_.insert(trials, v);
  return v;
}

double UncorrectableModel::reap(std::uint64_t n_ones,
                                std::uint64_t n_reads) const {
  const double lp = log_p_correct_single(n_ones);
  return -std::expm1(static_cast<double>(n_reads) * lp);
}

}  // namespace reap::reliability

#include "reap/reliability/ledger.hpp"

namespace reap::reliability {

namespace {
constexpr unsigned kBinsPerDecade = 8;
constexpr std::uint64_t kMaxConcealedTracked = 10'000'000;
}  // namespace

FailureLedger::FailureLedger()
    : histogram_(kBinsPerDecade, kMaxConcealedTracked) {}

void FailureLedger::record_check(std::uint64_t concealed, double p_fail) {
  total_failure_prob_ += p_fail;
  ++checks_;
  histogram_.add(concealed, p_fail);
}

void FailureLedger::record_unattributed(double p_fail) {
  total_failure_prob_ += p_fail;
  ++checks_;
}

void FailureLedger::reset() {
  total_failure_prob_ = 0.0;
  checks_ = 0;
  histogram_ = common::LogHistogram(kBinsPerDecade, kMaxConcealedTracked);
}

}  // namespace reap::reliability

// Failure ledger: accumulates per-checked-read failure probabilities and
// (optionally) the Fig. 3 distribution of concealed-read counts.
//
// Every checked read contributes its uncorrectable probability; the sum
// over a run divided by simulated time is the cache failure rate, whose
// reciprocal is MTTF (mttf.hpp). The ledger also bins each event by its
// concealed-read count so one run yields both Fig. 3 series (frequency and
// failure-rate contribution per concealed-read count).
#pragma once

#include <cstdint>

#include "reap/common/histogram.hpp"

namespace reap::reliability {

class FailureLedger {
 public:
  FailureLedger();

  // Records one checked read: `concealed` reads went unchecked before it
  // (x-axis of Fig. 3) and the check fails with probability `p_fail`.
  void record_check(std::uint64_t concealed, double p_fail);

  // Records a failure probability with no concealed-read attribution
  // (restore-policy write failures, eviction checks).
  void record_unattributed(double p_fail);

  double total_failure_prob() const { return total_failure_prob_; }
  std::uint64_t checks() const { return checks_; }
  std::uint64_t max_concealed() const { return histogram_.max_sample(); }

  const common::LogHistogram& histogram() const { return histogram_; }

  void reset();

 private:
  double total_failure_prob_ = 0.0;
  std::uint64_t checks_ = 0;
  common::LogHistogram histogram_;
};

}  // namespace reap::reliability

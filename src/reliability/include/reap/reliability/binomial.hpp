// The paper's block-correctness formulas (Eqs. 2, 3, 6), generalized to a
// t-error-correcting code and computed stably in log space.
//
// Eq. (2): correct delivery with no accumulation --
//   P_corr(n, p)        = P[X <= t], X ~ Binomial(n, p)         (paper: t=1)
// Eq. (3): after N-1 concealed reads plus the real read --
//   P_corr_acc(n, N, p) = P[X <= t], X ~ Binomial(N*n, p)
// Eq. (6): REAP checks every read --
//   P_corr_reap(n,N,p)  = P_corr(n, p)^N
//
// `n` is the line's count of '1' cells (disturbance is unidirectional),
// `p` the per-cell per-read disturb probability (mtj::read_disturb), and
// `N` the total reads between two checked reads (concealed + 1).
#pragma once

#include <cstdint>
#include <vector>

#include "reap/common/memo.hpp"

namespace reap::reliability {

// P[X <= t] for X ~ Binomial(trials, p) -- probability the code corrects.
double p_correct(std::uint64_t trials, unsigned t, double p);

// 1 - p_correct, full precision for rare events.
double p_uncorrectable(std::uint64_t trials, unsigned t, double p);

// Eq. (2): one checked read of a line with n ones, SEC-style capability t.
double p_correct_block(std::uint64_t n_ones, double p_rd, unsigned t = 1);
double p_uncorrectable_block(std::uint64_t n_ones, double p_rd, unsigned t = 1);

// Eq. (3): checked read after accumulation across N total reads.
double p_correct_block_acc(std::uint64_t n_ones, std::uint64_t n_reads,
                           double p_rd, unsigned t = 1);
double p_uncorrectable_block_acc(std::uint64_t n_ones, std::uint64_t n_reads,
                                 double p_rd, unsigned t = 1);

// Eq. (6): REAP -- every one of the N reads individually checked.
double p_correct_block_reap(std::uint64_t n_ones, std::uint64_t n_reads,
                            double p_rd, unsigned t = 1);
double p_uncorrectable_block_reap(std::uint64_t n_ones, std::uint64_t n_reads,
                                  double p_rd, unsigned t = 1);

// Memoized evaluator bound to fixed (p_rd, t): the policies call this once
// per checked read. Single-read factors are cached eagerly per ones count;
// conventional() keeps a direct-mapped memo keyed by its trial count (the
// only input the tail depends on), so the simulator's hot loop pays the
// log-space tail computation only on a memo miss. The memos never change a
// returned value -- a collision just recomputes -- so results are identical
// with or without them. Not thread-safe: use one model per experiment (the
// campaign runner already does).
class UncorrectableModel {
 public:
  UncorrectableModel(double p_rd, unsigned t, std::uint64_t max_cached_ones);

  double p_rd() const { return p_rd_; }
  unsigned t() const { return t_; }

  // Eq. (3) failure for a conventional checked read.
  double conventional(std::uint64_t n_ones, std::uint64_t n_reads) const;

  // Eq. (6) failure for a REAP checked read.
  double reap(std::uint64_t n_ones, std::uint64_t n_reads) const;

  // Single-read failure (Eq. 2), cached for n_ones <= max_cached_ones.
  double single(std::uint64_t n_ones) const;

  // log P_corr(n, p) for one read, cached likewise.
  double log_p_correct_single(std::uint64_t n_ones) const;

 private:
  double p_rd_;
  unsigned t_;
  // cache_[n] = log p_correct(n, t, p_rd); filled eagerly at construction.
  std::vector<double> log_pcorr_cache_;
  // Memo for conventional(), keyed by the trial count (the only input the
  // tail depends on).
  mutable common::DirectMappedMemo<double, 1 << 13> conv_memo_;
};

}  // namespace reap::reliability

// Monte Carlo fault injection: validates the analytic model against real
// codecs flipping real bits.
//
// One trial mirrors the life of a cache line between two checked reads:
// encode a payload, then for each of N reads flip every stored '1' cell to
// '0' independently with probability p_rd (disturbance is unidirectional
// and a flipped cell stays flipped), then run the hardware decoder and
// classify the outcome. Under the REAP discipline the decoder instead runs
// after *every* read and the corrected codeword is written back (scrub).
//
// Inflate p_rd (e.g. 1e-3) to make events observable in feasible trial
// counts; the analytic comparison in tests uses matching p values.
#pragma once

#include <cstdint>

#include "reap/common/rng.hpp"
#include "reap/ecc/code.hpp"

namespace reap::reliability {

struct InjectionOutcome {
  std::uint64_t trials = 0;
  std::uint64_t clean = 0;          // decoder saw no error
  std::uint64_t corrected = 0;      // decoder corrected, data matches
  std::uint64_t detected = 0;       // decoder flagged uncorrectable
  std::uint64_t miscorrected = 0;   // decoder claimed success, data wrong

  // "Failure" in the paper's sense: the cache could not deliver correct
  // data (detected-uncorrectable or silent miscorrection).
  double failure_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(detected + miscorrected) /
                             static_cast<double>(trials);
  }
};

class FaultInjector {
 public:
  // `code` protects one payload; p_rd is the per-cell per-read disturb
  // probability applied to '1' cells of the *codeword* (parity cells are
  // stored in the same STT-MRAM array and disturb like data cells).
  FaultInjector(const ecc::Code& code, double p_rd, std::uint64_t seed);

  // Conventional discipline: N reads accumulate, one decode at the end.
  InjectionOutcome run_conventional(const common::BitVec& payload,
                                    std::uint64_t reads_between_checks,
                                    std::uint64_t trials);

  // REAP discipline: decode-and-scrub after every one of the N reads.
  InjectionOutcome run_reap(const common::BitVec& payload,
                            std::uint64_t reads_between_checks,
                            std::uint64_t trials);

 private:
  // Applies one read's disturbance to `codeword` in place.
  void disturb_once(common::BitVec& codeword);

  const ecc::Code& code_;
  double p_rd_;
  common::Rng rng_;
};

}  // namespace reap::reliability

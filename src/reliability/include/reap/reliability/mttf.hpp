// Mean Time To Failure from accumulated failure probabilities.
//
// With per-check failure probabilities p_i (rare, independent), the number
// of failures over a run is approximately Poisson with mean sum(p_i); the
// failure rate is lambda = sum(p_i) / T_sim and MTTF = 1 / lambda. Fig. 5
// reports MTTF_REAP / MTTF_conventional = lambda_conv / lambda_reap over
// identical instruction windows.
#pragma once

#include <cstdint>

namespace reap::reliability {

struct MttfResult {
  double failure_prob_sum = 0.0;
  double sim_seconds = 0.0;
  double failure_rate_per_s = 0.0;  // lambda
  double mttf_seconds = 0.0;        // +inf when no failure mass accumulated
};

MttfResult compute_mttf(double failure_prob_sum, double sim_seconds);

// MTTF_a / MTTF_b given the two failure-rate results; returns +inf when b
// accumulated no failure mass, 1.0 when both are empty.
double mttf_ratio(const MttfResult& a, const MttfResult& b);

}  // namespace reap::reliability
